// Package plshuffle is a Go reproduction of "Why Globally Re-shuffle?
// Revisiting Data Shuffling in Large Scale Deep Learning" (Nguyen et al.,
// IPDPS 2022): dataset partitioning, balanced partial sample exchange
// between data-parallel workers (Algorithm 1), and the epoch scheduler
// that overlaps the exchange with training — together with every substrate
// the study needs (an in-process MPI-like runtime, a small neural-network
// stack, synthetic dataset proxies, storage accounting, machine models,
// and the Section IV-B shuffling-error analysis).
//
// The three shuffling strategies compared by the paper:
//
//   - Global(): every epoch draws a fresh global permutation of the whole
//     dataset (PyTorch DistributedSampler's default). Requires every
//     sample to be reachable by every worker.
//   - Local(): workers keep their initial partition forever and only
//     re-shuffle locally — no inter-worker sample traffic at all.
//   - Partial(q): before each epoch every worker exchanges the fraction q
//     of its local samples with randomly chosen peers; the shared-seed
//     per-slot rank permutations make the exchange perfectly balanced,
//     and peak local storage is bounded by (1+q)·N/M.
//   - Corgi2(g): the hybrid offline/online follow-up — samples live in an
//     immutable sharded on-disk store (IngestDataset), shard-to-rank
//     assignments reshuffle every g epochs (offline, paid in PFS refetches
//     instead of peer traffic), and each epoch shuffles samples online
//     within cache-sized shard windows streamed through a bounded
//     node-local cache tier.
//
// Quick start:
//
//	ds, _ := plshuffle.GenerateDataset(plshuffle.DatasetSpec{
//	    Name: "demo", NumSamples: 2048, NumVal: 512,
//	    Classes: 16, FeatureDim: 24, ClassSep: 4, NoiseStd: 1, Seed: 1,
//	})
//	model := plshuffle.MLP("demo", 64).WithData(ds.FeatureDim, ds.Classes)
//	res, _ := plshuffle.Train(plshuffle.TrainConfig{
//	    Workers: 8, Strategy: plshuffle.Partial(0.1), Dataset: ds,
//	    Model: model, Epochs: 10, BatchSize: 16, BaseLR: 0.1,
//	    Momentum: 0.9, Seed: 42,
//	})
//	fmt.Println("top-1:", res.FinalValAcc)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every regenerated table and figure.
package plshuffle

import (
	"io"

	"plshuffle/internal/analysis"
	"plshuffle/internal/cluster"
	"plshuffle/internal/data"
	"plshuffle/internal/eventsim"
	"plshuffle/internal/mpi"
	"plshuffle/internal/nn"
	"plshuffle/internal/perfmodel"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/store"
	"plshuffle/internal/store/shard"
	"plshuffle/internal/telemetry"
	"plshuffle/internal/trace"
	"plshuffle/internal/train"
)

// Strategy selects a shuffling scheme (global, local, or partial-local
// with an exchange fraction Q).
type Strategy = shuffle.Strategy

// Global returns the global-shuffling baseline strategy.
func Global() Strategy { return shuffle.GlobalShuffling() }

// Local returns the pure local-shuffling strategy (Q = 0).
func Local() Strategy { return shuffle.LocalShuffling() }

// Partial returns the paper's partial local shuffling with exchange
// fraction q in [0, 1].
func Partial(q float64) Strategy { return shuffle.Partial(q) }

// Corgi2 returns the hybrid offline/online shuffling strategy: shard
// assignments reshuffle across ranks every groupEpochs epochs, and samples
// shuffle online within cache-sized shard windows. It trains from an
// ingested on-disk dataset (set TrainConfig.DataDir) through a bounded
// node-local cache tier (TrainConfig.CacheBytes).
func Corgi2(groupEpochs int) Strategy { return shuffle.Corgi2Shuffling(groupEpochs) }

// Sample is one training example with a simulated on-disk byte size.
type Sample = data.Sample

// Dataset is an in-memory dataset with a train/validation split.
type Dataset = data.Dataset

// DatasetSpec configures the synthetic Gaussian-mixture generator.
type DatasetSpec = data.SyntheticSpec

// DatasetInfo is a Table I registry entry (real metadata + proxy spec).
type DatasetInfo = data.DatasetInfo

// GenerateDataset builds a synthetic dataset from the spec.
func GenerateDataset(spec DatasetSpec) (*Dataset, error) { return data.Generate(spec) }

// ProxyDataset generates the scaled-down proxy for one of the paper's
// datasets: "imagenet-1k", "imagenet-50", "imagenet-21k", "cifar-100",
// "stanford-cars", or "deepcam".
func ProxyDataset(key string) (*Dataset, error) { return data.LoadProxy(key) }

// PaperDatasets lists the Table I registry keys.
func PaperDatasets() []string { return data.DatasetKeys() }

// PaperDatasetInfo returns the Table I entry for a registry key.
func PaperDatasetInfo(key string) (DatasetInfo, error) { return data.Info(key) }

// ModelSpec describes an MLP proxy model (see the nn package for the
// architecture mapping).
type ModelSpec = nn.ModelSpec

// Param is a flat view of one learnable tensor and its gradient.
type Param = nn.Param

// Schedule maps training progress (fractional epochs) to a learning rate.
type Schedule = nn.Schedule

// NormKind selects the normalization layer of a model spec.
type NormKind = nn.Norm

// Normalization choices: batch norm (the paper's architectures), group
// norm (the Section IV-A.1 alternative, immune to shard bias), or none.
const (
	NormBatch = nn.NormBatch
	NormGroup = nn.NormGroup
	NormNone  = nn.NormNone
)

// ProxyModel returns the proxy spec for one of the paper's architectures:
// "resnet50", "densenet161", "wideresnet28", "inceptionv4", "deepcam", or
// "mlp". Bind it to a dataset with WithData before training.
func ProxyModel(name string) (ModelSpec, error) { return nn.ProxySpec(name) }

// MLP returns a plain single-hidden-layer model spec (no batch norm).
func MLP(name string, hidden int) ModelSpec {
	return ModelSpec{Name: name, Hidden: []int{hidden}}
}

// TransferWeights copies weights between parameter sets wherever shapes
// match (the transfer-learning initializer used by the Figure 8
// experiment). It returns the number of tensors transferred.
func TransferWeights(dst, src []Param) int { return nn.TransferWeights(dst, src) }

// Model is a built network (a sequential stack of layers).
type Model = nn.Sequential

// SaveWeights writes a model checkpoint (weights plus batch-norm running
// statistics) in a stable binary format.
func SaveWeights(w io.Writer, model *Model) error { return nn.SaveWeights(w, model) }

// LoadWeights restores a checkpoint written by SaveWeights into a model of
// the identical architecture.
func LoadWeights(r io.Reader, model *Model) error { return nn.LoadWeights(r, model) }

// TrainConfig configures one distributed training run.
type TrainConfig = train.Config

// TrainResult aggregates a run: per-epoch accuracy/loss/phase accounting,
// final and best validation accuracy, and the peak per-worker storage.
type TrainResult = train.Result

// EpochStats records one epoch's outcome.
type EpochStats = train.EpochStats

// Train runs distributed synchronous SGD with the configured shuffling
// strategy, one goroutine per worker, averaging gradients with a ring
// allreduce each iteration.
func Train(cfg TrainConfig) (*TrainResult, error) { return train.Run(cfg) }

// TraceRecorder collects per-phase training events (set TrainConfig.Trace
// to capture the Figure 10 style breakdown of a run).
type TraceRecorder = trace.Recorder

// TraceEvent is one recorded phase execution.
type TraceEvent = trace.Event

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// WriteChromeTrace renders recorded events as Chrome trace-event JSON
// (load the output in chrome://tracing or https://ui.perfetto.dev).
func WriteChromeTrace(w io.Writer, rec *TraceRecorder) error {
	return trace.WriteChromeTrace(w, rec.Events())
}

// --- Live telemetry (DESIGN.md §11) ---

// TelemetryRegistry is a set of live Prometheus-style metrics. Pass one as
// TrainConfig.Telemetry to have the trainer register and update its
// progress, phase-time, and wire counters; serve it with NewTelemetryServer.
type TelemetryRegistry = telemetry.Registry

// NewTelemetryRegistry returns an empty metrics registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// TelemetryServerConfig configures a telemetry HTTP server.
type TelemetryServerConfig = telemetry.ServerConfig

// TelemetryServer serves /metrics (Prometheus text), /trace (Chrome JSON +
// JSONL), /healthz, and /debug/pprof for a live run.
type TelemetryServer = telemetry.Server

// NewTelemetryServer starts a telemetry HTTP server; Close stops it.
func NewTelemetryServer(cfg TelemetryServerConfig) (*TelemetryServer, error) {
	return telemetry.NewServer(cfg)
}

// --- Performance model (Figures 7b, 9, 10) ---

// Machine holds a platform's calibrated performance parameters.
type Machine = cluster.Machine

// ABCI returns the AI Bridging Cloud Infrastructure machine model.
func ABCI() Machine { return cluster.ABCI() }

// Fugaku returns the Fugaku machine model.
func Fugaku() Machine { return cluster.Fugaku() }

// Workload describes a training configuration for the performance model.
type Workload = perfmodel.Workload

// EpochBreakdown is the Figure 10 phase decomposition of one epoch.
type EpochBreakdown = perfmodel.Breakdown

// ModelProfile carries a network's gradient volume and per-sample compute
// time for the performance model.
type ModelProfile = perfmodel.ModelProfile

// PerfProfile returns the performance profile for one of the paper's
// models.
func PerfProfile(name string) (ModelProfile, error) { return perfmodel.Profile(name) }

// EpochTime models one epoch of the workload on the machine with the
// given worker count and strategy.
func EpochTime(mc Machine, w Workload, workers int, s Strategy) (EpochBreakdown, error) {
	return perfmodel.EpochTime(mc, w, workers, s)
}

// CacheWorkload describes one epoch's storage traffic for the cache-tier
// read model.
type CacheWorkload = perfmodel.CacheWorkload

// CachedEpochReadTime models one epoch's sample-read time through a
// node-local cache of the given size over the machine's PFS: the cached
// fraction streams at local sequential bandwidth, the rest pays the
// per-client PFS rate plus a metadata cost per missed shard.
func CachedEpochReadTime(mc Machine, w CacheWorkload) (float64, error) {
	return perfmodel.CachedEpochReadTime(mc, w)
}

// SimConfig configures a discrete-event epoch simulation.
type SimConfig = eventsim.Config

// SimResult is a simulated epoch's phase decomposition.
type SimResult = eventsim.Result

// SimulateEpoch plays out one training epoch event by event: shared-PFS
// contention, heavy-tailed request jitter, fat-tree exchange bandwidth,
// and allreduce barriers. Stragglers and congestion emerge from the
// mechanics instead of being fitted — an independent cross-check of
// EpochTime (see the "eventsim" experiment).
func SimulateEpoch(cfg SimConfig) (SimResult, error) { return eventsim.SimulateEpoch(cfg) }

// PFSLowerBound returns the minimum epoch time of PFS-based global
// shuffling (dataset bytes over the PFS theoretical peak) — the red line
// of Figure 7(b).
func PFSLowerBound(mc Machine, datasetBytes int64) float64 {
	return perfmodel.PFSLowerBound(mc, datasetBytes)
}

// StorageRequired returns the per-worker storage a strategy needs.
func StorageRequired(w Workload, workers int, s Strategy) int64 {
	return perfmodel.StorageRequired(w, workers, s)
}

// FitsLocalStorage reports whether the strategy's storage requirement fits
// the machine's per-worker dedicated capacity.
func FitsLocalStorage(mc Machine, w Workload, workers int, s Strategy) bool {
	return perfmodel.FitsLocalStorage(mc, w, workers, s)
}

// --- Shuffling-error analysis (Section IV-B) ---

// ShufflingError returns ε(A,h,N) for partial local shuffling with
// fraction q on n samples over m workers (corrected permutation count,
// clamped to [0,1]).
func ShufflingError(n, m int, q float64) (float64, error) {
	return analysis.ShufflingError(n, m, q)
}

// ShufflingErrorPaper evaluates the paper's Equation 9 verbatim (clamped);
// see internal/analysis for the documented overcount at small m.
func ShufflingErrorPaper(n, m int, q float64) (float64, error) {
	return analysis.ShufflingErrorPaper(n, m, q)
}

// DominationThreshold returns sqrt(b·m/n): shuffling errors above it
// dominate the Equation 6 convergence bound.
func DominationThreshold(n, m, b int) float64 {
	return analysis.DominationThreshold(n, m, b)
}

// ConvergenceBound evaluates the three Equation 6 terms.
func ConvergenceBound(n, m, b, epochs int, eps float64) (analysis.BoundTerms, error) {
	return analysis.ConvergenceBound(n, m, b, epochs, eps)
}

// --- Lower-level building blocks for custom pipelines ---

// World is an in-process set of message-passing ranks.
type World = mpi.World

// Comm is one rank's communicator endpoint.
type Comm = mpi.Comm

// NewWorld creates a message-passing world with the given rank count.
func NewWorld(size int) *World { return mpi.NewWorld(size) }

// RunWorkers runs fn once per rank, each in its own goroutine, and joins
// their errors (aborting all ranks if one fails).
func RunWorkers(n int, fn func(c *Comm) error) error { return mpi.Run(n, fn) }

// LocalStore is one worker's capacity-accounted sample storage area.
type LocalStore = store.Local

// NewLocalStore creates a store with the given byte capacity (0 =
// unlimited).
func NewLocalStore(capacity int64) *LocalStore { return store.NewLocal(capacity) }

// DiskStore is a file-backed sample storage area (one file per sample, the
// layout the paper's tool assumes).
type DiskStore = store.Disk

// NewDiskStore creates a file-backed store rooted at dir with the given
// simulated byte capacity (0 = unlimited).
func NewDiskStore(dir string, capacity int64) (*DiskStore, error) {
	return store.NewDisk(dir, capacity)
}

// ShardManifest describes an ingested on-disk sharded dataset: shard
// layout, per-shard file sizes, and the sample→shard arithmetic.
type ShardManifest = shard.Manifest

// ShardDataset is an opened ingested dataset directory — the slow "PFS"
// tier the Corgi2 cache streams shards from.
type ShardDataset = shard.Dataset

// IngestDataset writes ds into dir as an immutable sharded on-disk dataset
// (checksummed shard files plus a manifest; cmd/plsingest's engine).
func IngestDataset(dir string, ds *Dataset, samplesPerShard int) (*ShardManifest, error) {
	return shard.Ingest(dir, ds, samplesPerShard)
}

// OpenShardDataset opens a dataset directory written by IngestDataset.
func OpenShardDataset(dir string) (*ShardDataset, error) { return shard.OpenDataset(dir) }

// Scheduler drives the per-epoch sample exchange for one worker
// (Scheduling → Communicate → Synchronize → CleanLocalStorage).
type Scheduler = shuffle.Scheduler

// NewScheduler creates an exchange scheduler for one worker.
func NewScheduler(c *Comm, st *LocalStore, q float64, totalN int, seed uint64) (*Scheduler, error) {
	return shuffle.NewScheduler(c, st, q, totalN, seed)
}

// Partition splits sample IDs [0, n) across m workers with a shared-seed
// random permutation (Figure 2).
func Partition(n, m int, seed uint64) ([][]int, error) { return shuffle.Partition(n, m, seed) }

// ExchangePlan is one worker's per-epoch exchange plan (Algorithm 1).
type ExchangePlan = shuffle.ExchangePlan

// PlanExchange computes rank's balanced exchange plan for an epoch
// (Algorithm 1: shared-seed per-slot rank permutations).
func PlanExchange(rank, size int, localIDs []int, q float64, totalN int, seed uint64, epoch int) (ExchangePlan, error) {
	return shuffle.PlanExchange(rank, size, localIDs, q, totalN, seed, epoch)
}

// PlanExchangeHierarchical computes the two-level (node-aware) exchange
// plan of the Section V-F extension; groupSize must divide size.
func PlanExchangeHierarchical(rank, size, groupSize int, localIDs []int, q float64, totalN int, seed uint64, epoch int) (ExchangePlan, error) {
	return shuffle.PlanExchangeHierarchical(rank, size, groupSize, localIDs, q, totalN, seed, epoch)
}

// WeightedOrder orders ids by importance-weighted random ranking
// (Gumbel-top-k), the Section IV-B importance-sampling extension.
func WeightedOrder(ids []int, weights map[int]float64, seed uint64, epoch, rank int) []int {
	return shuffle.WeightedOrder(ids, weights, seed, epoch, rank)
}
