// Command plsingest writes a dataset into an immutable sharded on-disk
// store: checksummed shard files holding the training samples in ID order,
// one extra file for the validation split, and a JSON manifest describing
// the layout. The output directory models the slow shared "PFS" tier that
// plsrun/plsd stream from under -strategy=corgi2, with each rank pulling
// shards through its bounded node-local cache.
//
// Ingest a paper proxy dataset and train from it:
//
//	plsingest -dataset imagenet-50 -out /data/in50 -samples-per-shard 256
//	plsrun -launch 4 -strategy corgi2 -data-dir /data/in50 \
//	       -cache-bytes 16777216 -group-epochs 5 -model mlp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"plshuffle"
)

func main() {
	dataset := flag.String("dataset", "imagenet-50", "paper dataset key to ingest (see plsrun -list-datasets)")
	out := flag.String("out", "", "output directory for the sharded store (required; must not hold a dataset already)")
	perShard := flag.Int("samples-per-shard", 256, "training samples packed into each shard file")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "plsingest: -out is required")
		os.Exit(2)
	}
	if _, err := os.Stat(filepath.Join(*out, "MANIFEST.json")); err == nil {
		fmt.Fprintf(os.Stderr, "plsingest: %s already holds an ingested dataset; refusing to overwrite (remove the directory first)\n", *out)
		os.Exit(1)
	}
	ds, err := plshuffle.ProxyDataset(*dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	man, err := plshuffle.IngestDataset(*out, ds, *perShard)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var shardBytes int64
	for _, b := range man.ShardFileBytes {
		shardBytes += b
	}
	fmt.Printf("ingested %s: %d samples in %d shards (%d per shard), %d classes, dim %d\n",
		*dataset, man.NumSamples, man.NumShards, man.SamplesPerShard, man.Classes, man.FeatureDim)
	fmt.Printf("  train %d bytes on disk (largest shard %d), val %d samples (%d bytes)\n",
		shardBytes, man.MaxShardBytes(), man.NumVal, man.ValFileBytes)
	fmt.Printf("  manifest: %s\n", *out+"/MANIFEST.json")
}
