// Command plsrun runs a single distributed training configuration and
// prints the per-epoch accuracy curve and phase accounting.
//
// By default the workers are goroutines in this process (the inproc
// transport). With -launch N the same configuration runs as N OS processes
// exchanging samples and gradients over localhost TCP: plsrun reserves a
// rendezvous port, forks N-1 copies of itself as worker ranks, and plays
// rank 0 itself.
//
// Examples:
//
//	plsrun -dataset imagenet-50 -model resnet50 -workers 32 -strategy partial -q 0.3
//	plsrun -dataset cifar-100 -model inceptionv4 -workers 16 -strategy local -locality 0.9
//	plsrun -launch 4 -dataset imagenet-50 -strategy partial -q 0.25 -epochs 3 -timeout 2m
//	plsrun -launch 4 -strategy corgi2 -data-dir /data/in50 -cache-bytes 16777216 -group-epochs 5
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"plshuffle"
	"plshuffle/internal/distrun"
)

func main() {
	dataset := flag.String("dataset", "imagenet-50", "paper dataset key (see -list-datasets)")
	model := flag.String("model", "resnet50", "proxy model name")
	workers := flag.Int("workers", 8, "number of data-parallel workers")
	strategy := flag.String("strategy", "partial", "global | local | partial | corgi2")
	q := flag.Float64("q", 0.1, "exchange fraction for -strategy partial")
	autoQ := flag.Bool("auto-q", false, "with -strategy partial: retune Q online with the closed-loop controller — -q becomes the starting point, and every epoch boundary re-decides from gathered deterministic stats (no hand tuning; two same-seed runs stay bitwise identical)")
	autoQMin := flag.Float64("auto-q-min", 0, "lower clamp of the -auto-q trajectory (0 with -auto-q-max 0 = the default policy clamps)")
	autoQMax := flag.Float64("auto-q-max", 0, "upper clamp of the -auto-q trajectory")
	dataDir := flag.String("data-dir", "", "ingested on-disk dataset directory (cmd/plsingest) for -strategy corgi2; replaces -dataset")
	cacheBytes := flag.Int64("cache-bytes", 0, "per-rank node-local cache budget in bytes for -strategy corgi2 (0 = unlimited)")
	groupEpochs := flag.Int("group-epochs", 1, "corgi2 epoch-group length: shard assignments reshuffle across ranks every this many epochs")
	epochs := flag.Int("epochs", 15, "training epochs")
	batch := flag.Int("batch", 16, "local mini-batch size")
	lr := flag.Float64("lr", 0.05, "base learning rate")
	locality := flag.Float64("locality", 0.0, "partition class-locality in [0,1]")
	lars := flag.Bool("lars", false, "use the LARS optimizer")
	overlapGrads := flag.Bool("overlap-grads", true, "overlap the bucketed gradient all-reduce with backward (false = serial flat ring, the A/B baseline; weights are bitwise identical either way)")
	wireCompress := flag.Bool("wire-compress", false, "with -launch: compress large data frames on the TCP transport (negotiated per connection; mixed worlds interoperate)")
	wireDedup := flag.Bool("wire-dedup", false, "deduplicate exchange sample payloads: repeat samples travel as compact ID references (bitwise-identical training, fewer wire bytes)")
	sampleEncoding := flag.String("sample-encoding", "", "exchange sample wire format: fp32 (default, bit-exact), fp16exact (compact where bitwise lossless), fp16 (lossy half-precision)")
	seed := flag.Uint64("seed", 42, "run seed")
	launch := flag.Int("launch", 0, "run as this many OS processes over localhost TCP (0 = in-process goroutines)")
	timeout := flag.Duration("timeout", 0, "exit non-zero instead of hanging if the run makes no progress for this long (0 = no watchdog)")
	onPeerFail := flag.String("on-peer-fail", "abort", "with -launch: policy when a peer rank dies mid-run — abort (fail fast, naming the dead rank) or degrade (survivors finish with a reduced effective Q)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for atomic epoch-boundary snapshots (empty = checkpointing off)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "snapshot every Nth epoch boundary (0 = every epoch)")
	resume := flag.Bool("resume", false, "restore the newest complete snapshot under -checkpoint-dir before training; the resumed run is bitwise identical to one that never stopped")
	maxWorld := flag.Int("max-world", 0, "with -launch: elastic world capacity — rank slots [launch, max-world) stay reserved for mid-run joiners (0 = fixed world)")
	telemetryAddr := flag.String("telemetry-addr", "", "BASE host:port of the live telemetry endpoints (/metrics, /trace, /healthz, /debug/pprof); with -launch rank r serves on port+r and rank 0 additionally serves /cluster/metrics (empty = telemetry off)")
	saveWeights := flag.String("save-weights", "", "write the trained model checkpoint to this file")
	listDatasets := flag.Bool("list-datasets", false, "list dataset keys and exit")
	workerRank := flag.Int("worker-rank", -1, "internal: play one rank of a -launch world")
	rendezvous := flag.String("rendezvous", "", "internal: rendezvous address of a -launch world")
	flag.Parse()

	if *listDatasets {
		for _, k := range plshuffle.PaperDatasets() {
			info, _ := plshuffle.PaperDatasetInfo(k)
			fmt.Printf("%-14s %s (%d samples)\n", k, info.Name, info.RealN)
		}
		return
	}

	opts := distrun.Options{
		Dataset:         *dataset,
		Model:           *model,
		Strategy:        *strategy,
		Q:               *q,
		DataDir:         *dataDir,
		CacheBytes:      *cacheBytes,
		GroupEpochs:     *groupEpochs,
		Epochs:          *epochs,
		Batch:           *batch,
		LR:              *lr,
		Locality:        *locality,
		LARS:            *lars,
		OverlapGrads:    *overlapGrads,
		WireCompress:    *wireCompress,
		WireDedup:       *wireDedup,
		SampleEncoding:  *sampleEncoding,
		AutoQ:           *autoQ,
		AutoQMin:        *autoQMin,
		AutoQMax:        *autoQMax,
		Seed:            *seed,
		Timeout:         *timeout,
		OnPeerFail:      *onPeerFail,
		CheckpointDir:   *checkpointDir,
		CheckpointEvery: *checkpointEvery,
		Resume:          *resume,
		MaxWorld:        *maxWorld,
		TelemetryAddr:   *telemetryAddr,
	}

	if *workerRank >= 0 {
		// Forked worker: play one rank of the distributed world and exit.
		opts.Rank = *workerRank
		opts.World = *launch
		opts.Rendezvous = *rendezvous
		if err := distrun.Run(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *launch > 0 {
		if err := runLaunched(*launch, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	runInproc(*workers, *strategy, *q, *dataset, *model, *dataDir, *cacheBytes,
		*groupEpochs, *epochs, *batch, *lr, *locality, *lars, *overlapGrads,
		*wireDedup, *sampleEncoding, *autoQ, *autoQMin, *autoQMax, *seed,
		*timeout, *saveWeights, *telemetryAddr,
		*checkpointDir, *checkpointEvery, *resume)
}

// runLaunched forks world-1 copies of this binary as worker ranks and plays
// rank 0 itself, all connected over localhost TCP.
func runLaunched(world int, opts distrun.Options) error {
	if world < 1 {
		return fmt.Errorf("plsrun: -launch %d: need at least one rank", world)
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("plsrun: locating own binary: %w", err)
	}
	// Reserve the rendezvous port race-free: bind it here, hand the listener
	// to rank 0, and advertise the bound address to the forked workers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("plsrun: reserving rendezvous port: %w", err)
	}
	opts.Rank = 0
	opts.World = world
	opts.Rendezvous = ln.Addr().String()
	opts.RendezvousListener = ln

	args := []string{
		"-launch", strconv.Itoa(world),
		"-rendezvous", opts.Rendezvous,
		"-dataset", opts.Dataset,
		"-model", opts.Model,
		"-strategy", opts.Strategy,
		"-q", fmt.Sprint(opts.Q),
		"-epochs", strconv.Itoa(opts.Epochs),
		"-batch", strconv.Itoa(opts.Batch),
		"-lr", fmt.Sprint(opts.LR),
		"-data-dir", opts.DataDir,
		"-cache-bytes", strconv.FormatInt(opts.CacheBytes, 10),
		"-group-epochs", strconv.Itoa(opts.GroupEpochs),
		"-locality", fmt.Sprint(opts.Locality),
		"-seed", strconv.FormatUint(opts.Seed, 10),
		"-timeout", opts.Timeout.String(),
		"-on-peer-fail", opts.OnPeerFail,
		// Explicit because the flag defaults to true: every rank must agree.
		"-overlap-grads=" + strconv.FormatBool(opts.OverlapGrads),
		"-wire-compress=" + strconv.FormatBool(opts.WireCompress),
		"-wire-dedup=" + strconv.FormatBool(opts.WireDedup),
		"-sample-encoding", opts.SampleEncoding,
	}
	if opts.AutoQ {
		args = append(args,
			"-auto-q",
			"-auto-q-min", fmt.Sprint(opts.AutoQMin),
			"-auto-q-max", fmt.Sprint(opts.AutoQMax))
	}
	if opts.CheckpointDir != "" {
		args = append(args,
			"-checkpoint-dir", opts.CheckpointDir,
			"-checkpoint-every", strconv.Itoa(opts.CheckpointEvery),
			"-resume="+strconv.FormatBool(opts.Resume))
	}
	if opts.MaxWorld > 0 {
		args = append(args, "-max-world", strconv.Itoa(opts.MaxWorld))
	}
	if opts.TelemetryAddr != "" {
		// Forward the BASE address; each worker offsets the port by its rank.
		args = append(args, "-telemetry-addr", opts.TelemetryAddr)
	}
	if opts.LARS {
		args = append(args, "-lars")
	}
	cmds := make([]*exec.Cmd, 0, world-1)
	for r := 1; r < world; r++ {
		cmd := exec.Command(exe, append([]string{"-worker-rank", strconv.Itoa(r)}, args...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
				c.Wait()
			}
			return fmt.Errorf("plsrun: starting worker rank %d: %w", r, err)
		}
		cmds = append(cmds, cmd)
	}

	// Collect every rank's outcome before deciding: a failure report that
	// names each rank's exit code (each rank's stderr line already carries
	// its last completed trace phase) beats a bare first error.
	rank0Err := distrun.Run(opts, os.Stdout)
	status := make([]string, world)
	status[0] = "ok"
	if rank0Err != nil {
		status[0] = "failed: " + rank0Err.Error()
	}
	// Under -on-peer-fail=degrade a dead worker is tolerated by design: if
	// rank 0 completed, the survivors finished the run with a reduced
	// effective Q, and the launcher reports the death without failing.
	tolerateDeaths := opts.OnPeerFail == "degrade" && rank0Err == nil
	failed := rank0Err != nil
	deaths := false
	for i, cmd := range cmds {
		werr := cmd.Wait()
		switch {
		case werr == nil:
			status[i+1] = "ok (exit 0)"
		case tolerateDeaths:
			deaths = true
			status[i+1] = fmt.Sprintf("died (%v) — tolerated, world degraded", werr)
		default:
			failed = true
			var ee *exec.ExitError
			if errors.As(werr, &ee) {
				status[i+1] = fmt.Sprintf("exit %d (reason on its stderr line above)", ee.ExitCode())
			} else {
				status[i+1] = werr.Error()
			}
		}
	}
	if !failed && !deaths {
		return nil
	}
	verdict := "failed"
	if !failed {
		verdict = "completed degraded"
	}
	fmt.Fprintf(os.Stderr, "plsrun: launched world %s; per-rank report:\n", verdict)
	for r, s := range status {
		fmt.Fprintf(os.Stderr, "  rank %d: %s\n", r, s)
	}
	if !failed {
		return nil
	}
	return fmt.Errorf("plsrun: %d-rank launched world failed (per-rank report above)", world)
}

// runInproc is the original single-process path (goroutine workers).
func runInproc(workers int, strategy string, q float64, dataset, model, dataDir string,
	cacheBytes int64, groupEpochs, epochs, batch int, lr, locality float64,
	lars, overlapGrads, wireDedup bool, sampleEncoding string,
	autoQ bool, autoQMin, autoQMax float64, seed uint64,
	timeout time.Duration, saveWeights, telemetryAddr string,
	checkpointDir string, checkpointEvery int, resume bool) {
	var strat plshuffle.Strategy
	switch strategy {
	case "global":
		strat = plshuffle.Global()
	case "local":
		strat = plshuffle.Local()
	case "partial":
		strat = plshuffle.Partial(q)
	case "corgi2":
		strat = plshuffle.Corgi2(groupEpochs)
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", strategy)
		os.Exit(2)
	}

	var ds *plshuffle.Dataset
	var err error
	if strategy == "corgi2" {
		// The samples live in the ingested on-disk store; the proxy carries
		// the metadata and validation split the workers need up front.
		if dataDir == "" {
			fmt.Fprintln(os.Stderr, "plsrun: -strategy corgi2 requires -data-dir (an ingested dataset; see cmd/plsingest)")
			os.Exit(2)
		}
		sd, derr := plshuffle.OpenShardDataset(dataDir)
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			os.Exit(1)
		}
		if ds, err = sd.Proxy(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dataset = ds.Name + " (ingested " + dataDir + ")"
	} else if ds, err = plshuffle.ProxyDataset(dataset); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec, err := plshuffle.ProxyModel(model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Inproc telemetry: all workers are goroutines sharing one registry, so
	// a single server on the base address exposes the whole "world" — every
	// per-rank series is distinguished by its {rank=...} label.
	var reg *plshuffle.TelemetryRegistry
	var rec *plshuffle.TraceRecorder
	if telemetryAddr != "" {
		reg = plshuffle.NewTelemetryRegistry()
		rec = plshuffle.NewTraceRecorder()
		srv, err := plshuffle.NewTelemetryServer(plshuffle.TelemetryServerConfig{
			Addr:     telemetryAddr,
			Registry: reg,
			Trace:    rec,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "plsrun: telemetry listen %s: %v\n", telemetryAddr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /trace, /healthz, /debug/pprof)\n", srv.Addr())
	}

	type trained struct {
		res *plshuffle.TrainResult
		err error
	}
	done := make(chan trained, 1)
	go func() {
		res, err := plshuffle.Train(plshuffle.TrainConfig{
			Workers:           workers,
			Strategy:          strat,
			Dataset:           ds,
			Model:             spec.WithData(ds.FeatureDim, ds.Classes),
			Epochs:            epochs,
			BatchSize:         batch,
			BaseLR:            float32(lr),
			Momentum:          0.9,
			WeightDecay:       1e-4,
			UseLARS:           lars,
			Seed:              seed,
			DataDir:           dataDir,
			CacheBytes:        cacheBytes,
			PartitionLocality: locality,
			OverlapGrads:      overlapGrads,
			WireDedup:         wireDedup,
			SampleEncoding:    sampleEncoding,
			AutoQ:             autoQ,
			AutoQMin:          autoQMin,
			AutoQMax:          autoQMax,
			CheckpointDir:     checkpointDir,
			CheckpointEvery:   checkpointEvery,
			Resume:            resume,
			Trace:             rec,
			Telemetry:         reg,
		})
		done <- trained{res, err}
	}()
	var t trained
	if timeout > 0 {
		select {
		case t = <-done:
		case <-time.After(timeout):
			fmt.Fprintf(os.Stderr, "plsrun: run made no progress within %v; aborting instead of hanging\n", timeout)
			os.Exit(1)
		}
	} else {
		t = <-done
	}
	if t.err != nil {
		fmt.Fprintln(os.Stderr, t.err)
		os.Exit(1)
	}
	res := t.res

	fmt.Printf("%s on %s proxy, %d workers, strategy %s (locality %.2f)\n",
		model, dataset, workers, strat, locality)
	fmt.Printf("%-6s  %-8s  %-8s  %-12s  %-12s\n", "epoch", "loss", "val-acc", "local-read", "exchanged")
	for _, e := range res.Epochs {
		fmt.Printf("%-6d  %-8.4f  %-8.4f  %-12d  %-12d\n",
			e.Epoch+1, e.TrainLoss, e.ValAcc, e.LocalReadBytes, e.ExchangeBytes)
	}
	fmt.Printf("final=%.4f best=%.4f peak-storage/worker=%d bytes\n",
		res.FinalValAcc, res.BestValAcc, res.PeakStorageBytes)
	if autoQ {
		fmt.Printf("controller q trajectory:")
		for _, e := range res.Epochs {
			fmt.Printf(" %g(%s)", e.ControllerQ, e.ControllerReason)
		}
		fmt.Println()
	}
	if saveWeights != "" {
		f, err := os.Create(saveWeights)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := plshuffle.SaveWeights(f, res.FinalModel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", saveWeights)
	}
}
