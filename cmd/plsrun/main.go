// Command plsrun runs a single distributed training configuration and
// prints the per-epoch accuracy curve and phase accounting.
//
// Examples:
//
//	plsrun -dataset imagenet-50 -model resnet50 -workers 32 -strategy partial -q 0.3
//	plsrun -dataset cifar-100 -model inceptionv4 -workers 16 -strategy local -locality 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"plshuffle"
)

func main() {
	dataset := flag.String("dataset", "imagenet-50", "paper dataset key (see -list-datasets)")
	model := flag.String("model", "resnet50", "proxy model name")
	workers := flag.Int("workers", 8, "number of data-parallel workers")
	strategy := flag.String("strategy", "partial", "global | local | partial")
	q := flag.Float64("q", 0.1, "exchange fraction for -strategy partial")
	epochs := flag.Int("epochs", 15, "training epochs")
	batch := flag.Int("batch", 16, "local mini-batch size")
	lr := flag.Float64("lr", 0.05, "base learning rate")
	locality := flag.Float64("locality", 0.0, "partition class-locality in [0,1]")
	lars := flag.Bool("lars", false, "use the LARS optimizer")
	seed := flag.Uint64("seed", 42, "run seed")
	saveWeights := flag.String("save-weights", "", "write the trained model checkpoint to this file")
	listDatasets := flag.Bool("list-datasets", false, "list dataset keys and exit")
	flag.Parse()

	if *listDatasets {
		for _, k := range plshuffle.PaperDatasets() {
			info, _ := plshuffle.PaperDatasetInfo(k)
			fmt.Printf("%-14s %s (%d samples)\n", k, info.Name, info.RealN)
		}
		return
	}

	var strat plshuffle.Strategy
	switch *strategy {
	case "global":
		strat = plshuffle.Global()
	case "local":
		strat = plshuffle.Local()
	case "partial":
		strat = plshuffle.Partial(*q)
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	ds, err := plshuffle.ProxyDataset(*dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec, err := plshuffle.ProxyModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := plshuffle.Train(plshuffle.TrainConfig{
		Workers:           *workers,
		Strategy:          strat,
		Dataset:           ds,
		Model:             spec.WithData(ds.FeatureDim, ds.Classes),
		Epochs:            *epochs,
		BatchSize:         *batch,
		BaseLR:            float32(*lr),
		Momentum:          0.9,
		WeightDecay:       1e-4,
		UseLARS:           *lars,
		Seed:              *seed,
		PartitionLocality: *locality,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s on %s proxy, %d workers, strategy %s (locality %.2f)\n",
		*model, *dataset, *workers, strat, *locality)
	fmt.Printf("%-6s  %-8s  %-8s  %-12s  %-12s\n", "epoch", "loss", "val-acc", "local-read", "exchanged")
	for _, e := range res.Epochs {
		fmt.Printf("%-6d  %-8.4f  %-8.4f  %-12d  %-12d\n",
			e.Epoch+1, e.TrainLoss, e.ValAcc, e.LocalReadBytes, e.ExchangeBytes)
	}
	fmt.Printf("final=%.4f best=%.4f peak-storage/worker=%d bytes\n",
		res.FinalValAcc, res.BestValAcc, res.PeakStorageBytes)
	if *saveWeights != "" {
		f, err := os.Create(*saveWeights)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := plshuffle.SaveWeights(f, res.FinalModel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *saveWeights)
	}
}
