// Command benchhot runs the hot-path benchmark suite and records the
// results into a trajectory file (BENCH_HOTPATH.json by default), one
// labeled entry per invocation. The raw `go test -bench` output is saved
// alongside it in benchstat-compatible form, so regressions can be
// inspected with the standard tooling:
//
//	go run ./cmd/benchhot -label after -count 5
//	benchstat bench/raw-before.txt bench/raw-after.txt
//
// An existing raw file can be folded into the trajectory without re-running
// anything (used to import the pre-optimization baseline):
//
//	go run ./cmd/benchhot -label before -input bench/raw-before.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// hotPackages are the packages whose benchmarks cover the zero-allocation
// hot paths: compute kernels, the collective runtime, the wire codec, the
// transports, the storage hierarchy, and the end-to-end training epoch.
var hotPackages = []string{
	"./internal/tensor",
	"./internal/data",
	"./internal/transport",
	"./internal/transport/wirecomp",
	"./internal/transport/transporttest",
	"./internal/mpi",
	"./internal/nn",
	"./internal/shuffle",
	"./internal/store/shard",
	"./internal/store/cache",
	"./internal/checkpoint",
	"./internal/train",
}

// Result is one benchmark's aggregate over the run's repetitions.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
	// Extra holds medians of custom b.ReportMetric columns keyed by unit
	// (e.g. "wait-ns/op", "comm-ns/op" from the gradient-sync benches).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Run is one labeled invocation of the suite.
type Run struct {
	Label   string   `json:"label"`
	Date    string   `json:"date"`
	Count   int      `json:"count"`
	Results []Result `json:"results"`
}

// Trajectory is the file format of BENCH_HOTPATH.json: an append-only
// sequence of runs, oldest first.
type Trajectory struct {
	Runs []Run `json:"runs"`
}

func main() {
	var (
		label  = flag.String("label", time.Now().Format("2006-01-02"), "label for this run in the trajectory")
		count  = flag.Int("count", 5, "benchmark repetitions (-count)")
		benchP = flag.String("bench", ".", "benchmark name pattern (-bench)")
		filter = flag.String("filter", "", "run exactly one benchmark by name (anchored; overrides -bench)")
		out    = flag.String("out", "BENCH_HOTPATH.json", "trajectory file to append to")
		rawDir = flag.String("rawdir", "bench", "directory for raw benchstat-compatible output")
		input  = flag.String("input", "", "ingest an existing raw benchmark file instead of running go test")
	)
	flag.Parse()
	if *filter != "" {
		// Iterating on one kernel benchmark shouldn't pay for the whole
		// suite: anchor the name so MatMul512 doesn't also match
		// MatMul5120 and friends. The Benchmark prefix is optional.
		*benchP = "^Benchmark" + regexp.QuoteMeta(strings.TrimPrefix(*filter, "Benchmark")) + "$"
	}

	var raw []byte
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		raw = b
	} else {
		args := append([]string{"test", "-run", "^$", "-bench", *benchP, "-benchmem",
			"-count", strconv.Itoa(*count)}, hotPackages...)
		fmt.Fprintf(os.Stderr, "benchhot: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		b, err := cmd.Output()
		if err != nil {
			fatal(fmt.Errorf("go test -bench: %w", err))
		}
		raw = b
		if err := os.MkdirAll(*rawDir, 0o755); err != nil {
			fatal(err)
		}
		rawPath := filepath.Join(*rawDir, "raw-"+sanitize(*label)+".txt")
		if err := os.WriteFile(rawPath, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchhot: raw output -> %s\n", rawPath)
	}

	results := parseRaw(string(raw))
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed"))
	}
	traj := Trajectory{}
	if b, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(b, &traj); err != nil {
			fatal(fmt.Errorf("parsing existing %s: %w", *out, err))
		}
	}
	traj.Runs = append(traj.Runs, Run{
		Label:   *label,
		Date:    time.Now().UTC().Format(time.RFC3339),
		Count:   *count,
		Results: results,
	})
	b, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchhot: %d benchmarks -> %s (run %q)\n", len(results), *out, *label)
}

// benchHead matches a `go test -bench` result line's name and iteration
// count, with or without the GOMAXPROCS suffix; the value columns that
// follow (ns/op, optional MB/s, -benchmem columns, and any custom
// b.ReportMetric units like wait-ns/op) are tokenized by metricPair.
var benchHead = regexp.MustCompile(`^(Benchmark[^\s-]+)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// metricPair matches one "<value> <unit>" column of a benchmark line.
var metricPair = regexp.MustCompile(`([\d.]+(?:[eE][+-]?\d+)?)\s+(\S+)`)

var pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)`)

type sampleSet struct {
	ns, b, allocs []float64
	extra         map[string][]float64
}

// parseRaw extracts per-benchmark medians from raw `go test -bench` output.
func parseRaw(raw string) []Result {
	cur := ""
	samples := map[[2]string]*sampleSet{}
	var order [][2]string
	for _, line := range strings.Split(raw, "\n") {
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			cur = m[1]
			continue
		}
		m := benchHead.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		pairs := metricPair.FindAllStringSubmatch(m[3], -1)
		hasNs := false
		for _, p := range pairs {
			if p[2] == "ns/op" {
				hasNs = true
			}
		}
		if !hasNs {
			continue // not a result line (e.g. a benchmark log message)
		}
		key := [2]string{cur, m[1]}
		s, ok := samples[key]
		if !ok {
			s = &sampleSet{extra: map[string][]float64{}}
			samples[key] = s
			order = append(order, key)
		}
		for _, p := range pairs {
			v, unit := atof(p[1]), p[2]
			switch unit {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "B/op":
				s.b = append(s.b, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			case "MB/s":
				// throughput of the ns/op column; redundant, skip
			default:
				// Any custom b.ReportMetric column ("wait-ns/op",
				// "snapshot-B/model-B", ...) is kept keyed by its unit.
				s.extra[unit] = append(s.extra[unit], v)
			}
		}
	}
	out := make([]Result, 0, len(order))
	for _, key := range order {
		s := samples[key]
		r := Result{
			Pkg:         key[0],
			Name:        key[1],
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.b),
			AllocsPerOp: median(s.allocs),
			Samples:     len(s.ns),
		}
		if len(s.extra) > 0 {
			r.Extra = make(map[string]float64, len(s.extra))
			for unit, vs := range s.extra {
				r.Extra[unit] = median(vs)
			}
		}
		out = append(out, r)
	}
	return out
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func atof(s string) float64 {
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchhot:", err)
	os.Exit(1)
}
