// Command plsd is the single-rank worker daemon: it plays exactly one rank
// of a distributed training world over the TCP transport. Start one plsd
// per rank (on one host or many), pointing them all at the same rendezvous
// address; rank 0 binds the rendezvous and prints the run report.
//
// A 4-rank world on one machine:
//
//	plsd -rank 0 -world 4 -rendezvous 127.0.0.1:7077 -strategy partial -q 0.25 &
//	plsd -rank 1 -world 4 -rendezvous 127.0.0.1:7077 -strategy partial -q 0.25 &
//	plsd -rank 2 -world 4 -rendezvous 127.0.0.1:7077 -strategy partial -q 0.25 &
//	plsd -rank 3 -world 4 -rendezvous 127.0.0.1:7077 -strategy partial -q 0.25
//
// Every rank must be given identical training flags; the dataset, model,
// and initial partition are derived deterministically from the seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"plshuffle/internal/distrun"
)

func main() {
	rank := flag.Int("rank", 0, "this process's rank in [0, world)")
	world := flag.Int("world", 1, "number of ranks in the world")
	rendezvous := flag.String("rendezvous", "127.0.0.1:7077", "host:port rank 0 listens on for bootstrap")
	dataset := flag.String("dataset", "imagenet-50", "paper dataset key")
	model := flag.String("model", "resnet50", "proxy model name")
	strategy := flag.String("strategy", "partial", "global | local | partial | corgi2")
	q := flag.Float64("q", 0.1, "exchange fraction for -strategy partial")
	autoQ := flag.Bool("auto-q", false, "with -strategy partial: retune Q online with the closed-loop controller — -q is the starting point; decisions are broadcast so every rank re-plans identically (must match on every rank)")
	autoQMin := flag.Float64("auto-q-min", 0, "lower clamp of the -auto-q trajectory (0 with -auto-q-max 0 = the default policy clamps; must match on every rank)")
	autoQMax := flag.Float64("auto-q-max", 0, "upper clamp of the -auto-q trajectory (must match on every rank)")
	dataDir := flag.String("data-dir", "", "ingested on-disk dataset directory (cmd/plsingest) for -strategy corgi2; replaces -dataset and must name the same data on every rank")
	cacheBytes := flag.Int64("cache-bytes", 0, "this rank's node-local cache budget in bytes for -strategy corgi2 (0 = unlimited; must match on every rank)")
	groupEpochs := flag.Int("group-epochs", 1, "corgi2 epoch-group length: shard assignments reshuffle across ranks every this many epochs (must match on every rank)")
	epochs := flag.Int("epochs", 5, "training epochs")
	batch := flag.Int("batch", 16, "local mini-batch size")
	lr := flag.Float64("lr", 0.05, "base learning rate")
	locality := flag.Float64("locality", 0.0, "partition class-locality in [0,1]")
	lars := flag.Bool("lars", false, "use the LARS optimizer")
	overlapGrads := flag.Bool("overlap-grads", true, "overlap the bucketed gradient all-reduce with backward (false = serial flat ring, the A/B baseline; weights are bitwise identical either way)")
	wireCompress := flag.Bool("wire-compress", false, "compress large data frames on the TCP transport (negotiated per connection; ranks with it off interoperate)")
	wireDedup := flag.Bool("wire-dedup", false, "deduplicate exchange sample payloads: repeat samples travel as compact ID references (bitwise-identical training, fewer wire bytes; must match on every rank)")
	sampleEncoding := flag.String("sample-encoding", "", "exchange sample wire format: fp32 (default, bit-exact), fp16exact (compact where bitwise lossless), fp16 (lossy half-precision); must match on every rank")
	seed := flag.Uint64("seed", 42, "run seed (must match on every rank)")
	timeout := flag.Duration("timeout", 0, "abort with an error if the run makes no progress for this long (0 = no watchdog)")
	onPeerFail := flag.String("on-peer-fail", "abort", "policy when a peer rank dies mid-run: abort (fail fast, naming the dead rank) or degrade (survivors finish with a reduced effective Q); must match on every rank")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for atomic epoch-boundary snapshots (empty = checkpointing off; must match on every rank)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "snapshot every Nth epoch boundary (0 = every epoch)")
	resume := flag.Bool("resume", false, "restore the newest complete snapshot under -checkpoint-dir before training; the resumed run is bitwise identical to one that never stopped")
	maxWorld := flag.Int("max-world", 0, "elastic world capacity: rank slots [world, max-world) stay reserved for mid-run joiners (0 = fixed world; must match on every rank)")
	join := flag.Bool("join", false, "join an already-running elastic world instead of bootstrapping one: the root assigns a free slot and the members admit this rank at the next epoch boundary (-rank is ignored; all training flags must match the running world's)")
	telemetryAddr := flag.String("telemetry-addr", "", "BASE host:port of the per-rank telemetry endpoints; rank r serves /metrics, /trace, /healthz, and /debug/pprof on port+r, and rank 0 additionally serves /cluster/metrics (empty = telemetry off)")
	flag.Parse()

	err := distrun.Run(distrun.Options{
		Rank:            *rank,
		World:           *world,
		Rendezvous:      *rendezvous,
		Dataset:         *dataset,
		Model:           *model,
		Strategy:        *strategy,
		Q:               *q,
		DataDir:         *dataDir,
		CacheBytes:      *cacheBytes,
		GroupEpochs:     *groupEpochs,
		Epochs:          *epochs,
		Batch:           *batch,
		LR:              *lr,
		Locality:        *locality,
		LARS:            *lars,
		OverlapGrads:    *overlapGrads,
		WireCompress:    *wireCompress,
		WireDedup:       *wireDedup,
		SampleEncoding:  *sampleEncoding,
		AutoQ:           *autoQ,
		AutoQMin:        *autoQMin,
		AutoQMax:        *autoQMax,
		Seed:            *seed,
		Timeout:         *timeout,
		OnPeerFail:      *onPeerFail,
		CheckpointDir:   *checkpointDir,
		CheckpointEvery: *checkpointEvery,
		Resume:          *resume,
		MaxWorld:        *maxWorld,
		Join:            *join,
		TelemetryAddr:   *telemetryAddr,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
