// Command shuffleerr evaluates the Section IV-B shuffling-error analysis:
// ε(A,h,N), the sqrt(b·M/N) domination threshold, and the three terms of
// the Equation 6 convergence bound.
//
// Example:
//
//	shuffleerr -n 1200000 -m 512 -b 32 -q 0.1 -epochs 90
package main

import (
	"flag"
	"fmt"
	"os"

	"plshuffle"
)

func main() {
	n := flag.Int("n", 1_200_000, "dataset size |N|")
	m := flag.Int("m", 512, "workers |M|")
	b := flag.Int("b", 32, "local mini-batch size")
	q := flag.Float64("q", 0.1, "exchange fraction Q")
	epochs := flag.Int("epochs", 90, "epochs S")
	flag.Parse()

	eps, err := plshuffle.ShufflingError(*n, *m, *q)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	epsPaper, err := plshuffle.ShufflingErrorPaper(*n, *m, *q)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	thr := plshuffle.DominationThreshold(*n, *m, *b)
	terms, err := plshuffle.ConvergenceBound(*n, *m, *b, *epochs, eps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("partial local shuffling: N=%d M=%d b=%d Q=%g S=%d\n", *n, *m, *b, *q, *epochs)
	fmt.Printf("shuffling error eps            = %.6f (corrected count)\n", eps)
	fmt.Printf("shuffling error eps (Eq. 9)    = %.6f (verbatim, clamped)\n", epsPaper)
	fmt.Printf("domination threshold sqrt(bM/N) = %.6f\n", thr)
	fmt.Printf("eps dominates the bound         = %v\n", eps > thr)
	fmt.Printf("Equation 6 terms: T1=%.3g T2=%.3g T3=%.3g (dominant: %s)\n",
		terms.T1, terms.T2, terms.T3, terms.Dominant())
}
