// Command experiments regenerates the paper's tables and figures as text
// tables. Each experiment ID matches DESIGN.md's per-experiment index.
//
// Usage:
//
//	experiments -list
//	experiments -run fig5e
//	experiments -run fig1,fig9,fig10
//	experiments -run all -short
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"plshuffle/internal/experiments"
)

// writeCSVs dumps every figure of the result as <dir>/<id>-<n>.csv.
func writeCSVs(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, fig := range res.Figures {
		path := filepath.Join(dir, fmt.Sprintf("%s-%d.csv", res.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fig.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

func main() {
	list := flag.Bool("list", false, "list available experiment IDs and exit")
	run := flag.String("run", "", "comma-separated experiment IDs, or 'all'")
	short := flag.Bool("short", false, "reduced epochs for a quick pass")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = default)")
	csvDir := flag.String("csv", "", "also write each figure's series grid as CSV into this directory")
	wireDedup := flag.Bool("wire-dedup", false, "run every training config with exchange dedup on (curves must be identical — an end-to-end equivalence check)")
	sampleEncoding := flag.String("sample-encoding", "", "exchange sample wire format for every training config: fp32, fp16exact (identical curves), fp16 (lossy)")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %s\n", e.ID)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id>[,<id>...] or -run all")
		}
		return
	}

	opts := experiments.Options{Short: *short, Seed: *seed,
		WireDedup: *wireDedup, SampleEncoding: *sampleEncoding}
	var ids []string
	if *run == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		res, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s regenerated in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
