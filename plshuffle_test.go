package plshuffle_test

import (
	"testing"

	"plshuffle"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow through
// the public surface only.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := plshuffle.GenerateDataset(plshuffle.DatasetSpec{
		Name: "api", NumSamples: 512, NumVal: 128,
		Classes: 8, FeatureDim: 16, ClassSep: 5, NoiseStd: 1, Bytes: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := plshuffle.MLP("api", 32).WithData(ds.FeatureDim, ds.Classes)
	for _, strat := range []plshuffle.Strategy{plshuffle.Global(), plshuffle.Local(), plshuffle.Partial(0.25)} {
		res, err := plshuffle.Train(plshuffle.TrainConfig{
			Workers: 4, Strategy: strat, Dataset: ds, Model: model,
			Epochs: 6, BatchSize: 16, BaseLR: 0.1, Momentum: 0.9, Seed: 42,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.FinalValAcc < 0.85 {
			t.Errorf("%s: accuracy %v < 0.85", strat, res.FinalValAcc)
		}
	}
}

func TestPublicAPIPaperRegistry(t *testing.T) {
	keys := plshuffle.PaperDatasets()
	if len(keys) != 6 {
		t.Fatalf("PaperDatasets lists %d entries", len(keys))
	}
	for _, k := range keys {
		info, err := plshuffle.PaperDatasetInfo(k)
		if err != nil {
			t.Fatal(err)
		}
		if info.RealN == 0 {
			t.Errorf("%s: missing real metadata", k)
		}
	}
	ds, err := plshuffle.ProxyDataset("cifar-100")
	if err != nil || len(ds.Train) == 0 {
		t.Fatalf("ProxyDataset: %v", err)
	}
	if _, err := plshuffle.ProxyModel("resnet50"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIPerfModel(t *testing.T) {
	prof, err := plshuffle.PerfProfile("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	w := plshuffle.Workload{N: 1_281_167, BytesPerSample: 117 << 10, LocalBatch: 32, Model: prof}
	gs, err := plshuffle.EpochTime(plshuffle.ABCI(), w, 128, plshuffle.Global())
	if err != nil {
		t.Fatal(err)
	}
	ls, err := plshuffle.EpochTime(plshuffle.ABCI(), w, 128, plshuffle.Local())
	if err != nil {
		t.Fatal(err)
	}
	if gs.Total() <= ls.Total() {
		t.Fatal("global should be slower than local at 128 workers")
	}
	if plshuffle.PFSLowerBound(plshuffle.ABCI(), 8<<40) <= 0 {
		t.Fatal("PFS lower bound not positive")
	}
	if plshuffle.FitsLocalStorage(plshuffle.Fugaku(), w, 128, plshuffle.Global()) {
		t.Fatal("ImageNet replication should not fit Fugaku")
	}
}

func TestPublicAPIAnalysis(t *testing.T) {
	eps, err := plshuffle.ShufflingError(1_200_000, 512, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if eps < 0.999 {
		t.Fatalf("epsilon = %v", eps)
	}
	if thr := plshuffle.DominationThreshold(1_200_000, 512, 32); thr <= 0 || thr >= 1 {
		t.Fatalf("threshold = %v", thr)
	}
	terms, err := plshuffle.ConvergenceBound(1_200_000, 512, 32, 90, eps)
	if err != nil {
		t.Fatal(err)
	}
	if terms.Dominant() != "T3" {
		t.Fatalf("dominant = %s", terms.Dominant())
	}
	if _, err := plshuffle.ShufflingErrorPaper(1_200_000, 512, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIBuildingBlocks(t *testing.T) {
	parts, err := plshuffle.Partition(100, 4, 7)
	if err != nil || len(parts) != 4 {
		t.Fatalf("Partition: %v", err)
	}
	st := plshuffle.NewLocalStore(0)
	if err := st.Put(plshuffle.Sample{ID: 1, Features: []float32{1}, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	err = plshuffle.RunWorkers(2, func(c *plshuffle.Comm) error {
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w := plshuffle.NewWorld(3)
	if w.Size() != 3 {
		t.Fatal("NewWorld size")
	}
}
