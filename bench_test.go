// Root benchmark harness: one benchmark per table and figure of the paper
// (DESIGN.md §4), plus ablation benchmarks for the design choices of
// DESIGN.md §5. Accuracy benchmarks run the experiments in -short mode
// (fewer epochs) so a full `go test -bench=. -benchmem` pass stays
// tractable on one machine; `go run ./cmd/experiments -run all` regenerates
// the full-length versions recorded in EXPERIMENTS.md.
package plshuffle_test

import (
	"io"
	"strconv"
	"testing"

	"plshuffle"
	"plshuffle/internal/experiments"
	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
)

// runExperiment executes one registered experiment per benchmark iteration
// and reports a headline metric where one is defined.
func runExperiment(b *testing.B, id string, short bool) *experiments.Result {
	b.Helper()
	runner, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err = runner(experiments.Options{Short: short})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Render into a discard writer so the full formatting path is
	// exercised (and timed) too.
	if err := res.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
	return res
}

// finalAcc extracts the last value of a named series from a figure.
func finalAcc(b *testing.B, res *experiments.Result, figIdx int, series string) float64 {
	b.Helper()
	if figIdx >= len(res.Figures) {
		b.Fatalf("%s: missing figure %d", res.ID, figIdx)
	}
	s := res.Figures[figIdx].Lookup(series)
	if s == nil {
		b.Fatalf("%s: missing series %q", res.ID, series)
	}
	return s.Last()
}

func BenchmarkFig1(b *testing.B)   { runExperiment(b, "fig1", false) }
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", false) }

func BenchmarkFig5a(b *testing.B) {
	res := runExperiment(b, "fig5a", true)
	// Shape: LS ~= GS at the small scale; a gap at the large scale that
	// partial-0.3 closes by at least half.
	gsBig := finalAcc(b, res, 1, "global")
	lsBig := finalAcc(b, res, 1, "local")
	plsBig := finalAcc(b, res, 1, "partial-0.3")
	b.ReportMetric(gsBig-lsBig, "gap@2048")
	b.ReportMetric(gsBig-plsBig, "gap-partial@2048")
	if gsBig-lsBig < 0.02 {
		b.Errorf("fig5a: expected an LS gap at the 2048-GPU scale, got gs=%.3f ls=%.3f", gsBig, lsBig)
	}
	if plsBig-lsBig < (gsBig-lsBig)/2 {
		b.Errorf("fig5a: partial-0.3 did not close at least half the gap (gs=%.3f ls=%.3f pls=%.3f)", gsBig, lsBig, plsBig)
	}
}

func BenchmarkFig5b(b *testing.B) {
	res := runExperiment(b, "fig5b", true)
	for i := range res.Figures {
		gs := finalAcc(b, res, i, "global")
		ls := finalAcc(b, res, i, "local")
		b.ReportMetric(gs-ls, "gap")
		if gs-ls > 0.06 {
			b.Errorf("fig5b panel %d: LS should be close to GS, got gs=%.3f ls=%.3f", i, gs, ls)
		}
	}
}

func BenchmarkFig5c(b *testing.B) {
	res := runExperiment(b, "fig5c", true)
	gs := finalAcc(b, res, 0, "global")
	ls := finalAcc(b, res, 0, "local")
	b.ReportMetric(gs-ls, "gap")
	if gs-ls > 0.06 {
		b.Errorf("fig5c: WideResNet LS should match GS, got gs=%.3f ls=%.3f", gs, ls)
	}
}

func BenchmarkFig5d(b *testing.B) {
	res := runExperiment(b, "fig5d", true)
	gs := finalAcc(b, res, 0, "global")
	ls := finalAcc(b, res, 0, "local")
	b.ReportMetric(gs-ls, "gap")
	if gs-ls > 0.06 {
		b.Errorf("fig5d: pretrained fine-tuning LS should match GS, got gs=%.3f ls=%.3f", gs, ls)
	}
}

func BenchmarkFig5e(b *testing.B) {
	res := runExperiment(b, "fig5e", true)
	gs := finalAcc(b, res, 1, "global")
	ls := finalAcc(b, res, 1, "local")
	p7 := finalAcc(b, res, 1, "partial-0.7")
	p1 := finalAcc(b, res, 1, "partial-0.1")
	b.ReportMetric(gs-ls, "gap@128")
	b.ReportMetric(gs-p7, "gap-partial0.7@128")
	if gs-ls < 0.05 {
		b.Errorf("fig5e: expected a large LS gap at 128 GPUs, got gs=%.3f ls=%.3f", gs, ls)
	}
	if p7 <= p1 {
		b.Errorf("fig5e: recovery should grow with Q (partial-0.1=%.3f partial-0.7=%.3f)", p1, p7)
	}
	if p7-ls < (gs-ls)/2 {
		b.Errorf("fig5e: partial-0.7 did not close at least half the gap")
	}
}

func BenchmarkFig5f(b *testing.B) {
	res := runExperiment(b, "fig5f", true)
	gs := finalAcc(b, res, 0, "global")
	ls := finalAcc(b, res, 0, "local")
	p3 := finalAcc(b, res, 0, "partial-0.3")
	b.ReportMetric(gs-ls, "gap")
	if gs-ls < 0.02 {
		b.Errorf("fig5f: Inception-v4 should degrade under LS, got gs=%.3f ls=%.3f", gs, ls)
	}
	if p3-ls < (gs-ls)/2 {
		b.Errorf("fig5f: partial-0.3 did not recover (gs=%.3f ls=%.3f p3=%.3f)", gs, ls, p3)
	}
}

func BenchmarkFig6(b *testing.B) {
	res := runExperiment(b, "fig6", true)
	// Strong scaling: the LS gap grows with workers; partial-0.1 stays
	// close to GS at the largest scale.
	gap0 := finalAcc(b, res, 0, "global") - finalAcc(b, res, 0, "local")
	gap1 := finalAcc(b, res, 1, "global") - finalAcc(b, res, 1, "local")
	gs1 := finalAcc(b, res, 1, "global")
	p1 := finalAcc(b, res, 1, "partial-0.1")
	b.ReportMetric(gap0, "gap@2048")
	b.ReportMetric(gap1, "gap@4096")
	if gap1 <= gap0 {
		b.Errorf("fig6: LS gap should grow with scale (%.3f -> %.3f)", gap0, gap1)
	}
	ls1 := finalAcc(b, res, 1, "local")
	if p1-ls1 < gap1/3 {
		b.Errorf("fig6: partial-0.1 should recover a substantial part of the 4096-worker gap (gs=%.3f ls=%.3f p=%.3f)", gs1, ls1, p1)
	}
}

func BenchmarkFig7a(b *testing.B) {
	res := runExperiment(b, "fig7a", true)
	ls := finalAcc(b, res, 0, "local")
	p9 := finalAcc(b, res, 0, "partial-0.9")
	b.ReportMetric(p9-ls, "improvement@1024")
	if p9 < ls {
		b.Errorf("fig7a: partial shuffling should not be worse than local (ls=%.3f p9=%.3f)", ls, p9)
	}
}

func BenchmarkFig7b(b *testing.B) {
	res := runExperiment(b, "fig7b", false)
	fig := res.Figures[0]
	bound := fig.Lookup("PFS lower bound (global)").Last()
	for _, q := range []string{"partial-0.25", "partial-0.5", "partial-0.9"} {
		v := fig.Lookup(q).Last()
		if v >= bound/1.5 {
			b.Errorf("fig7b: %s epoch time %.0f s should be multiple times below the %.0f s PFS bound", q, v, bound)
		}
	}
	b.ReportMetric(bound, "pfs-bound-s")
}

func BenchmarkFig8(b *testing.B) {
	res := runExperiment(b, "fig8", true)
	upGS := finalAcc(b, res, 0, "global")
	upLS := finalAcc(b, res, 0, "local")
	downGS := finalAcc(b, res, 1, "upstream-global")
	downLS := finalAcc(b, res, 1, "upstream-local")
	b.ReportMetric(upGS-upLS, "upstream-gap")
	b.ReportMetric(downGS-downLS, "downstream-gap")
	// The downstream difference should be much smaller than the upstream one
	// whenever an upstream gap exists.
	if upGS-upLS > 0.02 && downGS-downLS > (upGS-upLS)*0.75 {
		b.Errorf("fig8: downstream gap %.3f should shrink versus upstream gap %.3f", downGS-downLS, upGS-upLS)
	}
}

func BenchmarkFig9(b *testing.B) {
	res := runExperiment(b, "fig9", false)
	fig := res.Figures[0]
	gs := fig.Lookup("global")
	ls := fig.Lookup("local")
	// 128 workers is the 4th point.
	ratio := gs.Y[3] / ls.Y[3]
	b.ReportMetric(ratio, "gs/ls@128")
	if ratio < 3 || ratio > 8 {
		b.Errorf("fig9: GS/LS at 128 workers = %.1fx, paper reports ~5x", ratio)
	}
}

func BenchmarkFig10(b *testing.B) {
	res := runExperiment(b, "fig10", false)
	if len(res.Tables) != 2 {
		b.Fatalf("fig10 should produce 2 tables, got %d", len(res.Tables))
	}
	for _, tb := range res.Tables {
		if tb.NumRows() != 9 { // local, 7 partial rates, global
			b.Errorf("fig10 table has %d rows, want 9", tb.NumRows())
		}
	}
}

func BenchmarkShufflingErrorTable(b *testing.B) {
	res := runExperiment(b, "shuffling-error", false)
	if res.Tables[0].NumRows() != 15 {
		b.Errorf("shuffling-error table rows = %d", res.Tables[0].NumRows())
	}
}

// BenchmarkNormAblation regenerates the mechanism decomposition: batch
// norm causes the LS gap; full SyncBatchNorm and GroupNorm close it;
// epoch-level stats sync does not.
func BenchmarkNormAblation(b *testing.B) {
	res := runExperiment(b, "norm-ablation", true)
	if res.Tables[0].NumRows() != 5 {
		b.Fatalf("norm-ablation rows = %d, want 5 variants", res.Tables[0].NumRows())
	}
}

// BenchmarkHierExchange regenerates the Section V-F extension table.
func BenchmarkHierExchange(b *testing.B) {
	res := runExperiment(b, "hier-exchange", false)
	if res.Tables[0].NumRows() != 5 {
		b.Fatalf("hier-exchange rows = %d", res.Tables[0].NumRows())
	}
}

// BenchmarkEventSim cross-checks the discrete-event simulator against the
// analytic model (agreement within 3x; emergent stragglers).
func BenchmarkEventSim(b *testing.B) {
	res := runExperiment(b, "eventsim", true)
	if res.Tables[0].NumRows() != 6 {
		b.Fatalf("eventsim rows = %d, want 6 (2 scales x 3 strategies in short mode)", res.Tables[0].NumRows())
	}
}

// BenchmarkImportance regenerates the importance-sampling extension table
// and asserts the weighted exchange does no harm.
func BenchmarkImportance(b *testing.B) {
	res := runExperiment(b, "importance", true)
	if res.Tables[0].NumRows() != 2 {
		b.Fatalf("importance rows = %d", res.Tables[0].NumRows())
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationExchangeBalance compares Algorithm 1's shared-seed
// per-slot rank permutations against naive uniform-random destinations:
// the balanced plan has zero receive-count spread, the naive one does not.
func BenchmarkAblationExchangeBalance(b *testing.B) {
	const n, m, q = 16384, 32, 0.3
	parts, err := shuffle.Partition(n, m, 1)
	if err != nil {
		b.Fatal(err)
	}
	var maxSpreadNaive int
	for i := 0; i < b.N; i++ {
		balanced := make([]shuffle.ExchangePlan, m)
		naive := make([]shuffle.ExchangePlan, m)
		for r := 0; r < m; r++ {
			balanced[r], err = shuffle.PlanExchange(r, m, parts[r], q, n, 1, i)
			if err != nil {
				b.Fatal(err)
			}
			naive[r], err = shuffle.PlanExchangeUnbalanced(r, m, parts[r], q, n, 1, i)
			if err != nil {
				b.Fatal(err)
			}
		}
		k := shuffle.Slots(q, n, m)
		for _, c := range shuffle.CountImbalance(balanced, m) {
			if c != k {
				b.Fatalf("balanced plan imbalanced: %d != %d", c, k)
			}
		}
		spread := 0
		for _, c := range shuffle.CountImbalance(naive, m) {
			if d := c - k; d > spread {
				spread = d
			} else if d := k - c; d > spread {
				spread = d
			}
		}
		if spread > maxSpreadNaive {
			maxSpreadNaive = spread
		}
	}
	b.ReportMetric(float64(maxSpreadNaive), "naive-max-receive-spread")
	b.ReportMetric(0, "balanced-receive-spread")
}

// BenchmarkAblationOverlapChunked and ...Bulk time the real exchange with
// per-iteration chunked posting versus one bulk epoch-boundary exchange.
func BenchmarkAblationOverlapChunked(b *testing.B) { benchOverlap(b, 8) }
func BenchmarkAblationOverlapBulk(b *testing.B)    { benchOverlap(b, 0) }

func benchOverlap(b *testing.B, chunk int) {
	const n, m, q = 4096, 8, 0.3
	ds, err := plshuffle.GenerateDataset(plshuffle.DatasetSpec{
		Name: "ablation", NumSamples: n, NumVal: 0, Classes: 4,
		FeatureDim: 8, ClassSep: 3, NoiseStd: 1, Bytes: 1000, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := shuffle.Partition(n, m, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(m, func(c *mpi.Comm) error {
			st := plshuffle.NewLocalStore(0)
			for _, id := range parts[c.Rank()] {
				if err := st.Put(ds.Train[id]); err != nil {
					return err
				}
			}
			sched, err := shuffle.NewScheduler(c, st, q, n, 9)
			if err != nil {
				return err
			}
			if err := sched.Scheduling(i); err != nil {
				return err
			}
			if chunk > 0 {
				for posted := 0; posted < sched.Slots(); posted += chunk {
					if _, err := sched.Communicate(chunk); err != nil {
						return err
					}
				}
			}
			if err := sched.Synchronize(); err != nil {
				return err
			}
			return sched.CleanLocalStorage()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllreduceRing/Naive time the two gradient-reduction
// algorithms at a model-gradient-sized buffer.
func BenchmarkAblationAllreduceRing(b *testing.B)  { benchAllreduce(b, false) }
func BenchmarkAblationAllreduceNaive(b *testing.B) { benchAllreduce(b, true) }

func benchAllreduce(b *testing.B, naive bool) {
	const m, n = 8, 65536
	b.SetBytes(int64(4 * n))
	for i := 0; i < b.N; i++ {
		err := mpi.Run(m, func(c *mpi.Comm) error {
			buf := make([]float32, n)
			if naive {
				mpi.AllreduceNaive(c, buf, mpi.OpSum)
			} else {
				mpi.Allreduce(c, buf, mpi.OpSum)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBatchNorm isolates the Section IV-A.1 mechanism: under
// class-local shards, the LS-vs-GS gap with batch normalization is larger
// than without it.
func BenchmarkAblationBatchNorm(b *testing.B) {
	ds, err := plshuffle.GenerateDataset(plshuffle.DatasetSpec{
		Name: "bn-ablation", NumSamples: 1024, NumVal: 512, Classes: 16,
		FeatureDim: 16, ClassSep: 4, NoiseStd: 1.2, Bytes: 100, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	gap := func(batchNorm bool) float64 {
		spec := plshuffle.ModelSpec{Name: "abl", Hidden: []int{32, 32}, BatchNorm: batchNorm}.
			WithData(ds.FeatureDim, ds.Classes)
		run := func(s plshuffle.Strategy) float64 {
			res, err := plshuffle.Train(plshuffle.TrainConfig{
				Workers: 16, Strategy: s, Dataset: ds, Model: spec,
				Epochs: 12, BatchSize: 8, BaseLR: 0.1, Momentum: 0.9,
				WeightDecay: 1e-4, Seed: 5, PartitionLocality: 1.0,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.FinalValAcc
		}
		return run(plshuffle.Global()) - run(plshuffle.Local())
	}
	var withBN, withoutBN float64
	for i := 0; i < b.N; i++ {
		withBN = gap(true)
		withoutBN = gap(false)
	}
	b.ReportMetric(withBN, "ls-gap-with-bn")
	b.ReportMetric(withoutBN, "ls-gap-without-bn")
	if withBN <= withoutBN {
		b.Logf("note: batch-norm gap (%.3f) did not exceed the no-BN gap (%.3f) in this short run", withBN, withoutBN)
	}
}

// BenchmarkAblationLocality sweeps the partition-locality knob, reporting
// the LS accuracy at each setting — the calibration curve behind the
// accuracy figures.
func BenchmarkAblationLocality(b *testing.B) {
	ds, err := plshuffle.ProxyDataset("imagenet-50")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := plshuffle.ProxyModel("resnet50")
	if err != nil {
		b.Fatal(err)
	}
	model := spec.WithData(ds.FeatureDim, ds.Classes)
	for i := 0; i < b.N; i++ {
		prev := 2.0
		for _, loc := range []float64{0, 0.5, 1.0} {
			res, err := plshuffle.Train(plshuffle.TrainConfig{
				Workers: 32, Strategy: plshuffle.Local(), Dataset: ds, Model: model,
				Epochs: 8, BatchSize: 16, BaseLR: 0.05, Momentum: 0.9,
				WeightDecay: 1e-4, Seed: 2022, PartitionLocality: loc,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.FinalValAcc, "ls-acc@loc-"+trim(loc))
			if res.FinalValAcc > prev+0.05 {
				b.Errorf("LS accuracy should not improve as locality grows")
			}
			prev = res.FinalValAcc
		}
	}
}

func trim(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
