module plshuffle

go 1.22
