package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndEventsOrdering(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Rank: 1, Epoch: 0, Phase: PhaseIO, Duration: time.Second})
	r.Record(Event{Rank: 0, Epoch: 1, Phase: PhaseFWBW, Duration: time.Second})
	r.Record(Event{Rank: 0, Epoch: 0, Phase: PhaseGEWU, Duration: time.Second})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Canonical export ordering is (rank, epoch, phase): each rank's
	// timeline is contiguous, epochs ascend within it.
	ev := r.Events()
	if ev[0].Rank != 0 || ev[0].Epoch != 0 || ev[0].Phase != PhaseGEWU {
		t.Fatalf("ordering wrong: ev[0] = %+v", ev[0])
	}
	if ev[1].Rank != 0 || ev[1].Epoch != 1 {
		t.Fatalf("ordering wrong: ev[1] = %+v", ev[1])
	}
	if ev[2].Rank != 1 || ev[2].Epoch != 0 {
		t.Fatalf("ordering wrong: ev[2] = %+v", ev[2])
	}
}

func TestEventsOrderPhasesWithinEpoch(t *testing.T) {
	r := NewRecorder()
	// Recorded deliberately out of execution order.
	for _, p := range []string{PhaseValidate, PhaseGEWU, PhaseFWBW, PhaseExchange, PhaseIO} {
		r.Record(Event{Rank: 0, Epoch: 0, Phase: p, Duration: time.Second})
	}
	want := []string{PhaseIO, PhaseExchange, PhaseFWBW, PhaseGEWU, PhaseValidate}
	for i, e := range r.Events() {
		if e.Phase != want[i] {
			t.Fatalf("phase[%d] = %s, want %s", i, e.Phase, want[i])
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for e := 0; e < 100; e++ {
				r.Record(Event{Rank: rank, Epoch: e, Phase: PhaseIO, Duration: time.Millisecond})
			}
		}(rank)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
}

func TestPhaseTotals(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Rank: 0, Epoch: 0, Phase: PhaseIO, Duration: 2 * time.Second})
	r.Record(Event{Rank: 1, Epoch: 0, Phase: PhaseIO, Duration: 3 * time.Second})
	r.Record(Event{Rank: 0, Epoch: 0, Phase: PhaseFWBW, Duration: time.Second})
	totals := r.PhaseTotals()
	if totals[PhaseIO] != 5*time.Second {
		t.Fatalf("io total = %v", totals[PhaseIO])
	}
	if totals[PhaseFWBW] != time.Second {
		t.Fatalf("fwbw total = %v", totals[PhaseFWBW])
	}
}

func TestEpochBreakdownAverages(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Rank: 0, Epoch: 2, Phase: PhaseExchange, Duration: 2 * time.Second})
	r.Record(Event{Rank: 1, Epoch: 2, Phase: PhaseExchange, Duration: 4 * time.Second})
	r.Record(Event{Rank: 0, Epoch: 3, Phase: PhaseExchange, Duration: 100 * time.Second})
	bd := r.EpochBreakdown(2)
	if bd[PhaseExchange] != 3*time.Second {
		t.Fatalf("epoch 2 exchange mean = %v, want 3s", bd[PhaseExchange])
	}
}

func TestJSONLRoundtrip(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Rank: 0, Epoch: 0, Phase: PhaseIO, Duration: time.Second, Bytes: 1234})
	r.Record(Event{Rank: 1, Epoch: 0, Phase: PhaseGEWU, Duration: 2 * time.Second})
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	got, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Bytes != 1234 || got[1].Phase != PhaseGEWU {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
}
