package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome-trace export: render recorded events in the Trace Event Format
// consumed by chrome://tracing and Perfetto, with one process per rank and
// one thread (track) per phase, so a run's Figure 10 style decomposition
// can be inspected interactively.
//
// The Recorder stores durations, not wall-clock timestamps (ranks record
// whole epochs at a time), so the exporter synthesizes each rank's timeline
// deterministically: events are laid out back-to-back per rank in canonical
// (epoch, phase) order, each phase starting where the previous one on that
// rank ended. Relative proportions — the thing the paper's breakdowns argue
// about — are exact; absolute alignment across ranks is nominal. Because
// the layout is a pure function of the sorted events, the JSON is
// byte-stable and golden-testable.

// chromeEvent is one Trace Event Format record. Only the fields the
// chrome://tracing and Perfetto loaders require are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events as Chrome trace JSON. Events may be in any
// order; they are re-sorted into the canonical (rank, epoch, phase) order
// first, so the output depends only on the event set.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Metadata: name each rank's process and each phase's thread so the
	// viewer shows "rank N" / phase names instead of bare ids. One thread
	// id per distinct phase, shared across ranks, allocated in canonical
	// order.
	ranks := map[int]bool{}
	type phaseKey struct {
		order int
		name  string
	}
	phaseSet := map[phaseKey]bool{}
	for _, e := range sorted {
		ranks[e.Rank] = true
		phaseSet[phaseKey{phaseOrder(e.Phase), e.Phase}] = true
	}
	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Ints(rankList)
	phases := make([]phaseKey, 0, len(phaseSet))
	for p := range phaseSet {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].order != phases[j].order {
			return phases[i].order < phases[j].order
		}
		return phases[i].name < phases[j].name
	})
	tid := make(map[string]int, len(phases))
	for i, p := range phases {
		tid[p.name] = i
	}
	for _, r := range rankList {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
		for _, p := range phases {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: r, Tid: tid[p.name],
				Args: map[string]any{"name": p.name},
			})
		}
	}

	// Timeline: complete ("X") events laid out back-to-back per rank.
	cursor := map[int]time.Duration{}
	for _, e := range sorted {
		args := map[string]any{"epoch": e.Epoch}
		if e.Bytes != 0 {
			args["bytes"] = e.Bytes
		}
		if e.EffectiveQ != 0 {
			args["effective_q"] = e.EffectiveQ
		}
		start := cursor[e.Rank]
		cursor[e.Rank] = start + e.Duration
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Phase, Cat: "phase", Ph: "X",
			Ts:  float64(start.Nanoseconds()) / 1e3,
			Dur: float64(e.Duration.Nanoseconds()) / 1e3,
			Pid: e.Rank, Tid: tid[e.Phase],
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: WriteChromeTrace: %w", err)
	}
	return nil
}

// WriteChrome writes the recorder's events as Chrome trace JSON.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChromeTrace(w, r.Events())
}
