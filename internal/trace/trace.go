// Package trace records structured per-phase events from distributed
// training runs — the instrumentation behind the Figure 10 style
// breakdowns. Workers emit one event per (epoch, phase) with duration and
// byte volume; the recorder aggregates them and can export JSON Lines for
// external analysis.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Phase names used by the trainer, matching Figure 10's decomposition.
const (
	PhaseIO       = "io"
	PhaseExchange = "exchange"
	PhaseFWBW     = "fwbw"
	PhaseGEWU     = "gewu"
	PhaseValidate = "validate"
	// PhaseDegraded marks an epoch whose exchange ran with a reduced
	// effective shuffling fraction because one or more peers died
	// (DESIGN.md §10). Bytes carries the number of forfeited exchange
	// slots; EffectiveQ the realized fraction.
	PhaseDegraded = "degraded"
)

// Event is one recorded phase execution.
type Event struct {
	Rank     int           `json:"rank"`
	Epoch    int           `json:"epoch"`
	Phase    string        `json:"phase"`
	Duration time.Duration `json:"duration_ns"`
	Bytes    int64         `json:"bytes,omitempty"`
	// EffectiveQ is the realized shuffling fraction of a PhaseDegraded
	// event: Q scaled by the live share of the epoch's exchange slots.
	EffectiveQ float64 `json:"effective_q,omitempty"`
}

// Recorder collects events from concurrent workers. The zero value is not
// usable; create recorders with NewRecorder. All methods are safe for
// concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends an event.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of all recorded events, ordered by (epoch, rank,
// phase) for deterministic output regardless of goroutine interleaving.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Epoch != out[j].Epoch {
			return out[i].Epoch < out[j].Epoch
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// PhaseTotals sums durations per phase across all ranks and epochs.
func (r *Recorder) PhaseTotals() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, e := range r.Events() {
		out[e.Phase] += e.Duration
	}
	return out
}

// EpochBreakdown returns, for one epoch, the mean per-rank duration of
// each phase — one bar of a Figure 10 style plot.
func (r *Recorder) EpochBreakdown(epoch int) map[string]time.Duration {
	sums := map[string]time.Duration{}
	counts := map[string]int{}
	for _, e := range r.Events() {
		if e.Epoch != epoch {
			continue
		}
		sums[e.Phase] += e.Duration
		counts[e.Phase]++
	}
	out := map[string]time.Duration{}
	for p, s := range sums {
		out[p] = s / time.Duration(counts[p])
	}
	return out
}

// WriteJSONL writes one JSON object per event.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: WriteJSONL: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses events written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: ReadJSONL: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}
