// Package trace records structured per-phase events from distributed
// training runs — the instrumentation behind the Figure 10 style
// breakdowns. Workers emit one event per (epoch, phase) with duration and
// byte volume; the recorder aggregates them and can export JSON Lines for
// external analysis.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Phase names used by the trainer, matching Figure 10's decomposition.
const (
	PhaseIO       = "io"
	PhaseExchange = "exchange"
	PhaseFWBW     = "fwbw"
	PhaseGEWU     = "gewu"
	PhaseValidate = "validate"
	// PhaseDegraded marks an epoch whose exchange ran with a reduced
	// effective shuffling fraction because one or more peers died
	// (DESIGN.md §10). Bytes carries the number of forfeited exchange
	// slots; EffectiveQ the realized fraction.
	PhaseDegraded = "degraded"
)

// Event is one recorded phase execution.
type Event struct {
	Rank     int           `json:"rank"`
	Epoch    int           `json:"epoch"`
	Phase    string        `json:"phase"`
	Duration time.Duration `json:"duration_ns"`
	Bytes    int64         `json:"bytes,omitempty"`
	// EffectiveQ is the realized shuffling fraction of a PhaseDegraded
	// event: Q scaled by the live share of the epoch's exchange slots.
	EffectiveQ float64 `json:"effective_q,omitempty"`
}

// Recorder collects events from concurrent workers. The zero value is not
// usable; create recorders with NewRecorder. All methods are safe for
// concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends an event.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// phaseOrder ranks the trainer's phases in execution order within an epoch
// — the canonical tiebreak for exports and the layout order of the Chrome
// trace timeline. Unknown phases sort after the known ones, alphabetically.
func phaseOrder(phase string) int {
	switch phase {
	case PhaseIO:
		return 0
	case PhaseExchange:
		return 1
	case PhaseFWBW:
		return 2
	case PhaseGEWU:
		return 3
	case PhaseValidate:
		return 4
	case PhaseDegraded:
		return 5
	default:
		return 6
	}
}

// less is the canonical deterministic event ordering: (rank, epoch, phase),
// with phases in execution order. Grouping by rank first keeps each rank's
// timeline contiguous, so JSONL exports diff cleanly run-to-run and
// rank-by-rank — golden tests and diff-based tooling depend on it.
func less(a, b Event) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if pa, pb := phaseOrder(a.Phase), phaseOrder(b.Phase); pa != pb {
		return pa < pb
	}
	return a.Phase < b.Phase
}

// Events returns a copy of all recorded events in the canonical (rank,
// epoch, phase) order — deterministic regardless of goroutine interleaving,
// so every export built on it (JSONL, Chrome trace) is byte-stable.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// PhaseTotals sums durations per phase across all ranks and epochs.
func (r *Recorder) PhaseTotals() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, e := range r.Events() {
		out[e.Phase] += e.Duration
	}
	return out
}

// EpochBreakdown returns, for one epoch, the mean per-rank duration of
// each phase — one bar of a Figure 10 style plot.
func (r *Recorder) EpochBreakdown(epoch int) map[string]time.Duration {
	sums := map[string]time.Duration{}
	counts := map[string]int{}
	for _, e := range r.Events() {
		if e.Epoch != epoch {
			continue
		}
		sums[e.Phase] += e.Duration
		counts[e.Phase]++
	}
	out := map[string]time.Duration{}
	for p, s := range sums {
		out[p] = s / time.Duration(counts[p])
	}
	return out
}

// WriteJSONL writes one JSON object per event.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: WriteJSONL: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses events written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: ReadJSONL: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}
