package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Chrome-trace golden file from the current exporter output")

// goldenEvents is a small two-rank, two-epoch run with out-of-order
// recording, a degraded epoch, and every optional field exercised.
func goldenEvents() []Event {
	return []Event{
		{Rank: 1, Epoch: 0, Phase: PhaseFWBW, Duration: 4 * time.Millisecond},
		{Rank: 0, Epoch: 1, Phase: PhaseExchange, Duration: 1500 * time.Microsecond, Bytes: 2048},
		{Rank: 0, Epoch: 0, Phase: PhaseIO, Duration: 2 * time.Millisecond, Bytes: 4096},
		{Rank: 0, Epoch: 0, Phase: PhaseGEWU, Duration: 500 * time.Microsecond, Bytes: 256},
		{Rank: 0, Epoch: 0, Phase: PhaseFWBW, Duration: 3 * time.Millisecond},
		{Rank: 1, Epoch: 0, Phase: PhaseDegraded, Duration: 0, Bytes: 2, EffectiveQ: 0.125},
		{Rank: 1, Epoch: 1, Phase: PhaseIO, Duration: time.Millisecond, Bytes: 4096},
	}
}

// TestChromeTraceGolden pins the exporter's exact output: the trace JSON is
// a pure function of the event set (canonical sorting + deterministic
// back-to-back layout), so any byte change is a deliberate format change —
// update with go test ./internal/trace/ -update-golden.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from golden %s.\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

// TestChromeTraceOrderInvariant pins determinism directly: shuffling the
// recording order must not change a single output byte.
func TestChromeTraceOrderInvariant(t *testing.T) {
	evs := goldenEvents()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, evs); err != nil {
		t.Fatal(err)
	}
	rev := make([]Event, len(evs))
	for i, e := range evs {
		rev[len(evs)-1-i] = e
	}
	if err := WriteChromeTrace(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export depends on recording order; must be a pure function of the event set")
	}
}

// TestChromeTraceShape decodes the export and checks the structural
// contract the viewers rely on: per-rank process metadata, per-phase thread
// metadata, X events with non-overlapping back-to-back intervals per rank,
// and args carrying epoch/bytes/effective_q.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder()
	for _, e := range goldenEvents() {
		rec.Record(e)
	}
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", out.DisplayTimeUnit)
	}
	procs := map[int]bool{}
	cursor := map[int]float64{}
	var xEvents, degraded int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procs[e.Pid] = true
			}
		case "X":
			xEvents++
			if e.Ts < cursor[e.Pid] {
				t.Errorf("rank %d event %q starts at %v before cursor %v (overlap)", e.Pid, e.Name, e.Ts, cursor[e.Pid])
			}
			cursor[e.Pid] = e.Ts + e.Dur
			if _, ok := e.Args["epoch"]; !ok {
				t.Errorf("X event %q missing epoch arg", e.Name)
			}
			if e.Name == PhaseDegraded {
				degraded++
				if q, ok := e.Args["effective_q"].(float64); !ok || q != 0.125 {
					t.Errorf("degraded event effective_q = %v, want 0.125", e.Args["effective_q"])
				}
			}
		default:
			t.Errorf("unexpected phase type %q", e.Ph)
		}
	}
	if !procs[0] || !procs[1] {
		t.Errorf("process metadata missing ranks: %v", procs)
	}
	if want := len(goldenEvents()); xEvents != want {
		t.Errorf("exported %d X events, want %d", xEvents, want)
	}
	if degraded != 1 {
		t.Errorf("exported %d degraded events, want 1", degraded)
	}
}
