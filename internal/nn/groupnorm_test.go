package nn

import (
	"math"
	"testing"

	"plshuffle/internal/rng"
	"plshuffle/internal/tensor"
)

func TestGroupNormNormalizesPerSample(t *testing.T) {
	r := rng.New(21)
	gn := NewGroupNorm(8, 2)
	x := tensor.New(4, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()*5 + 3
	}
	y := gn.Forward(x, true)
	// Each (row, group) segment must have ~zero mean and ~unit variance.
	for i := 0; i < 4; i++ {
		row := y.Row(i)
		for g := 0; g < 2; g++ {
			seg := row[g*4 : (g+1)*4]
			var mean, variance float64
			for _, v := range seg {
				mean += float64(v)
			}
			mean /= 4
			for _, v := range seg {
				variance += (float64(v) - mean) * (float64(v) - mean)
			}
			variance /= 4
			if math.Abs(mean) > 1e-4 {
				t.Fatalf("row %d group %d mean %v", i, g, mean)
			}
			if math.Abs(variance-1) > 0.01 {
				t.Fatalf("row %d group %d variance %v", i, g, variance)
			}
		}
	}
}

func TestGroupNormIndependentOfBatchAndMode(t *testing.T) {
	r := rng.New(22)
	gn := NewGroupNorm(4, 2)
	x1 := tensor.New(1, 4)
	for i := range x1.Data {
		x1.Data[i] = r.NormFloat32()
	}
	// Same row inside a larger batch must normalize identically — the
	// property that makes GroupNorm immune to shard bias.
	x3 := tensor.New(3, 4)
	copy(x3.Row(1), x1.Row(0))
	for _, j := range []int{0, 2} {
		for k := 0; k < 4; k++ {
			x3.Set(j, k, r.NormFloat32()*10)
		}
	}
	// Forward results are layer-owned workspaces; Clone anything retained
	// across calls (the Layer buffer-ownership contract).
	y1 := gn.Forward(x1, true).Clone()
	y3 := gn.Forward(x3, true)
	for k := 0; k < 4; k++ {
		if y1.At(0, k) != y3.At(1, k) {
			t.Fatal("GroupNorm output depends on other batch rows")
		}
	}
	// Train and eval modes are identical.
	yTrain := gn.Forward(x1, true).Clone()
	yEval := gn.Forward(x1, false)
	for k := range yTrain.Data {
		if yTrain.Data[k] != yEval.Data[k] {
			t.Fatal("GroupNorm differs between train and eval mode")
		}
	}
}

func TestGradCheckWithGroupNorm(t *testing.T) {
	r := rng.New(23)
	model := NewSequential(NewLinear(5, 8, r), NewGroupNorm(8, 2), NewReLU(), NewLinear(8, 3, r))
	x, labels := smallBatch(r, 6, 5, 3)
	gradCheck(t, model, x, labels)
}

func TestGroupNormConstructorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("groups not dividing dim did not panic")
		}
	}()
	NewGroupNorm(10, 3)
}

func TestGroupsFor(t *testing.T) {
	cases := map[int]int{48: 8, 96: 8, 40: 8, 12: 4, 6: 2, 7: 1}
	for dim, want := range cases {
		if got := groupsFor(dim); got != want {
			t.Errorf("groupsFor(%d) = %d, want %d", dim, got, want)
		}
	}
}

func TestModelSpecNormChoices(t *testing.T) {
	base := ModelSpec{Name: "t", InputDim: 8, Hidden: []int{8}, Classes: 2}
	for _, n := range []Norm{NormBatch, NormGroup, NormNone} {
		m, err := base.WithNorm(n).Build(1, 1)
		if err != nil {
			t.Fatalf("norm %q: %v", n, err)
		}
		hasBN, hasGN := false, false
		for _, l := range m.Layers {
			switch l.(type) {
			case *BatchNorm:
				hasBN = true
			case *GroupNorm:
				hasGN = true
			}
		}
		switch n {
		case NormBatch:
			if !hasBN || hasGN {
				t.Fatalf("NormBatch layers wrong: bn=%v gn=%v", hasBN, hasGN)
			}
		case NormGroup:
			if hasBN || !hasGN {
				t.Fatalf("NormGroup layers wrong: bn=%v gn=%v", hasBN, hasGN)
			}
		case NormNone:
			if hasBN || hasGN {
				t.Fatal("NormNone still has a normalization layer")
			}
		}
	}
	if err := (ModelSpec{Name: "bad", InputDim: 4, Hidden: []int{4}, Classes: 2, Norm: "layer"}).Validate(); err == nil {
		t.Fatal("unknown norm accepted")
	}
	// Legacy BatchNorm flag still works.
	m, err := ModelSpec{Name: "legacy", InputDim: 4, Hidden: []int{4}, Classes: 2, BatchNorm: true}.Build(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range m.Layers {
		if _, ok := l.(*BatchNorm); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("legacy BatchNorm flag ignored")
	}
}

func TestPerSampleLosses(t *testing.T) {
	var ce SoftmaxCrossEntropy
	logits := tensor.FromSlice(2, 2, []float32{10, 0, 0, 10})
	mean := ce.Forward(logits, []int{0, 0})
	ps := ce.PerSample()
	if len(ps) != 2 {
		t.Fatalf("per-sample count %d", len(ps))
	}
	// Row 0 is confidently correct (tiny loss); row 1 confidently wrong.
	if ps[0] > 0.01 || ps[1] < 5 {
		t.Fatalf("per-sample losses %v", ps)
	}
	if math.Abs(mean-(ps[0]+ps[1])/2) > 1e-9 {
		t.Fatalf("mean %v inconsistent with per-sample %v", mean, ps)
	}
}

func TestGroupNormLearns(t *testing.T) {
	r := rng.New(31)
	const n, dim, classes = 256, 8, 4
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim; j++ {
			v := r.NormFloat32() * 0.3
			if j == c {
				v += 2
			}
			x.Set(i, j, v)
		}
	}
	spec := ModelSpec{Name: "gn", InputDim: dim, Hidden: []int{32}, Classes: classes, Norm: NormGroup}
	model, err := spec.Build(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(0.9, 1e-4)
	var ce SoftmaxCrossEntropy
	for epoch := 0; epoch < 30; epoch++ {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
		opt.Step(model.Params(), 0.1)
	}
	if acc := Accuracy(model.Forward(x, false), labels); acc < 0.95 {
		t.Fatalf("GroupNorm model accuracy %v", acc)
	}
}
