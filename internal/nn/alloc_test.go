package nn

import (
	"testing"

	"plshuffle/internal/rng"
	"plshuffle/internal/tensor"
	"plshuffle/internal/tensor/arena"
)

// TestTrainingIterationSteadyStateAllocs pins the compute hot path's
// zero-allocation property: after the first iteration has sized every
// layer workspace (forward outputs, backward gradients, loss buffers,
// optimizer state), a full forward + loss + backward + SGD step allocates
// nothing. The model is small enough that the matmul kernels run inline
// (no goroutine fan-out), so the measurement is exact.
func TestTrainingIterationSteadyStateAllocs(t *testing.T) {
	skipIfRace(t)
	r := rng.New(41)
	model := NewSequential(
		NewLinear(8, 16, r),
		NewBatchNorm(16),
		NewReLU(),
		NewLinear(16, 4, r),
	)
	params := model.Params() // hoisted: Params() builds a fresh slice
	opt := NewSGD(0.9, 1e-4)
	var ce SoftmaxCrossEntropy
	x := tensor.New(8, 8)
	labels := make([]int, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	for i := range labels {
		labels[i] = i % 4
	}
	iter := func() {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
		opt.Step(params, 0.01)
	}
	iter() // size every workspace
	iter()
	if allocs := testing.AllocsPerRun(50, iter); allocs > 0 {
		t.Fatalf("steady-state training iteration allocates %.1f times, want 0", allocs)
	}
}

// TestTrainingIterationArenaZeroAllocs is the arena-backed variant of the
// steady-state pin: with a step arena attached (the trainer's
// configuration) and Reset at the top of every iteration, a full
// forward + loss + backward + SGD step performs zero heap allocations and
// the arena's high-water mark is stable — every workspace re-bumps the
// same backing array.
func TestTrainingIterationArenaZeroAllocs(t *testing.T) {
	skipIfRace(t)
	r := rng.New(43)
	model := NewSequential(
		NewLinear(8, 16, r),
		NewBatchNorm(16),
		NewReLU(),
		NewDropout(0.1, rng.New(7)),
		NewLinear(16, 4, r),
	)
	a := arena.New(0)
	model.SetArena(a)
	var ce SoftmaxCrossEntropy
	ce.SetArena(a)
	params := model.Params()
	opt := NewSGD(0.9, 1e-4)
	x := tensor.New(8, 8)
	labels := make([]int, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	for i := range labels {
		labels[i] = i % 4
	}
	iter := func() {
		a.Reset()
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
		opt.Step(params, 0.01)
	}
	iter() // size every workspace and grow the arena once
	iter()
	used := a.Used()
	if allocs := testing.AllocsPerRun(50, iter); allocs > 0 {
		t.Fatalf("arena-backed training iteration allocates %.1f times, want 0", allocs)
	}
	if a.Used() != used {
		t.Fatalf("arena high-water mark drifted: %d -> %d floats", used, a.Used())
	}
}

// TestArenaTrainingMatchesHeapTraining pins that attaching an arena is
// purely an allocation strategy: identical seeds and inputs produce
// bitwise-identical weights with and without it.
func TestArenaTrainingMatchesHeapTraining(t *testing.T) {
	build := func(withArena bool) []Param {
		r := rng.New(77)
		model := NewSequential(
			NewLinear(8, 16, r),
			NewBatchNorm(16),
			NewReLU(),
			NewDropout(0.1, rng.New(9)),
			NewLinear(16, 4, r),
		)
		var ce SoftmaxCrossEntropy
		var a *arena.Arena
		if withArena {
			a = arena.New(0)
			model.SetArena(a)
			ce.SetArena(a)
		}
		params := model.Params()
		opt := NewSGD(0.9, 1e-4)
		dr := rng.New(5)
		x := tensor.New(8, 8)
		labels := make([]int, 8)
		for it := 0; it < 6; it++ {
			if a != nil {
				a.Reset()
			}
			for i := range x.Data {
				x.Data[i] = dr.NormFloat32()
			}
			for i := range labels {
				labels[i] = dr.Intn(4)
			}
			logits := model.Forward(x, true)
			ce.Forward(logits, labels)
			model.Backward(ce.Backward())
			opt.Step(params, 0.01)
		}
		return params
	}
	heap := build(false)
	ar := build(true)
	for i := range heap {
		for j := range heap[i].W {
			if heap[i].W[j] != ar[i].W[j] {
				t.Fatalf("param %d[%d]: heap %v != arena %v", i, j, heap[i].W[j], ar[i].W[j])
			}
		}
	}
}

// TestBackwardKernelsSteadyStateAllocs isolates the MatMulTAInto /
// MatMulTBInto / ColSumInto trio behind Linear.Backward: with destination
// matrices reused, the kernels must not allocate.
func TestBackwardKernelsSteadyStateAllocs(t *testing.T) {
	skipIfRace(t)
	r := rng.New(42)
	a := tensor.New(8, 8)
	b := tensor.New(8, 8)
	a.Randn(r, 1)
	b.Randn(r, 1)
	dta := tensor.New(8, 8)
	dtb := tensor.New(8, 8)
	col := make([]float32, 8)
	if allocs := testing.AllocsPerRun(100, func() {
		tensor.MatMulTAInto(dta, a, b)
		tensor.MatMulTBInto(dtb, a, b)
		a.ColSumInto(col)
	}); allocs > 0 {
		t.Fatalf("Into kernels allocate %.1f times per run, want 0", allocs)
	}
}

// skipIfRace skips allocation-regression tests under the race detector
// (see raceEnabled).
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}
