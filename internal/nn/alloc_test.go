package nn

import (
	"testing"

	"plshuffle/internal/rng"
	"plshuffle/internal/tensor"
)

// TestTrainingIterationSteadyStateAllocs pins the compute hot path's
// zero-allocation property: after the first iteration has sized every
// layer workspace (forward outputs, backward gradients, loss buffers,
// optimizer state), a full forward + loss + backward + SGD step allocates
// nothing. The model is small enough that the matmul kernels run inline
// (no goroutine fan-out), so the measurement is exact.
func TestTrainingIterationSteadyStateAllocs(t *testing.T) {
	skipIfRace(t)
	r := rng.New(41)
	model := NewSequential(
		NewLinear(8, 16, r),
		NewBatchNorm(16),
		NewReLU(),
		NewLinear(16, 4, r),
	)
	params := model.Params() // hoisted: Params() builds a fresh slice
	opt := NewSGD(0.9, 1e-4)
	var ce SoftmaxCrossEntropy
	x := tensor.New(8, 8)
	labels := make([]int, 8)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	for i := range labels {
		labels[i] = i % 4
	}
	iter := func() {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
		opt.Step(params, 0.01)
	}
	iter() // size every workspace
	iter()
	if allocs := testing.AllocsPerRun(50, iter); allocs > 0 {
		t.Fatalf("steady-state training iteration allocates %.1f times, want 0", allocs)
	}
}

// TestBackwardKernelsSteadyStateAllocs isolates the MatMulTAInto /
// MatMulTBInto / ColSumInto trio behind Linear.Backward: with destination
// matrices reused, the kernels must not allocate.
func TestBackwardKernelsSteadyStateAllocs(t *testing.T) {
	skipIfRace(t)
	r := rng.New(42)
	a := tensor.New(8, 8)
	b := tensor.New(8, 8)
	a.Randn(r, 1)
	b.Randn(r, 1)
	dta := tensor.New(8, 8)
	dtb := tensor.New(8, 8)
	col := make([]float32, 8)
	if allocs := testing.AllocsPerRun(100, func() {
		tensor.MatMulTAInto(dta, a, b)
		tensor.MatMulTBInto(dtb, a, b)
		a.ColSumInto(col)
	}); allocs > 0 {
		t.Fatalf("Into kernels allocate %.1f times per run, want 0", allocs)
	}
}

// skipIfRace skips allocation-regression tests under the race detector
// (see raceEnabled).
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}
