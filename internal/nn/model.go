package nn

import (
	"fmt"

	"plshuffle/internal/rng"
)

// Norm selects the normalization layer inserted after each hidden Linear.
type Norm string

// Normalization choices. NormBatch is the paper's default (what the real
// architectures use); NormGroup is the Section IV-A.1 alternative whose
// statistics are per-sample and therefore immune to shard bias; NormNone
// disables normalization.
const (
	NormBatch Norm = "batch"
	NormGroup Norm = "group"
	NormNone  Norm = "none"
)

// ModelSpec describes an MLP proxy for one of the paper's architectures.
// Hidden lists the widths of the hidden layers; BatchNorm inserts a
// BatchNorm after every hidden Linear (before the ReLU, as in the original
// networks); Dropout, if non-zero, is applied after each activation.
// Norm, when set, overrides BatchNorm with an explicit normalization
// choice (batch, group, or none).
type ModelSpec struct {
	Name      string
	InputDim  int
	Hidden    []int
	Classes   int
	BatchNorm bool
	Norm      Norm
	Dropout   float32
}

// norm resolves the effective normalization choice.
func (s ModelSpec) norm() Norm {
	if s.Norm != "" {
		return s.Norm
	}
	if s.BatchNorm {
		return NormBatch
	}
	return NormNone
}

// Validate reports configuration errors.
func (s ModelSpec) Validate() error {
	if s.InputDim <= 0 {
		return fmt.Errorf("nn: model %q: InputDim must be positive, got %d", s.Name, s.InputDim)
	}
	if s.Classes < 2 {
		return fmt.Errorf("nn: model %q: Classes must be >= 2, got %d", s.Name, s.Classes)
	}
	for i, h := range s.Hidden {
		if h <= 0 {
			return fmt.Errorf("nn: model %q: Hidden[%d] must be positive, got %d", s.Name, i, h)
		}
	}
	if s.Dropout < 0 || s.Dropout >= 1 {
		return fmt.Errorf("nn: model %q: Dropout %v out of [0,1)", s.Name, s.Dropout)
	}
	switch s.Norm {
	case "", NormBatch, NormGroup, NormNone:
	default:
		return fmt.Errorf("nn: model %q: unknown Norm %q", s.Name, s.Norm)
	}
	return nil
}

// groupsFor picks the largest group count in {8,4,2,1} dividing dim.
func groupsFor(dim int) int {
	for _, g := range []int{8, 4, 2} {
		if dim%g == 0 {
			return g
		}
	}
	return 1
}

// Build constructs the model. Weight initialization is drawn from
// initSeed, so every worker building with the same seed starts from
// identical weights (the paper's "initialize the weights with the same
// random seed" assumption in Section IV-A). Dropout masks are drawn from
// dropSeed, which should differ per worker.
func (s ModelSpec) Build(initSeed, dropSeed uint64) (*Sequential, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	initRNG := rng.New(initSeed)
	dropRNG := rng.New(dropSeed)
	var layers []Layer
	in := s.InputDim
	for _, h := range s.Hidden {
		layers = append(layers, NewLinear(in, h, initRNG))
		switch s.norm() {
		case NormBatch:
			layers = append(layers, NewBatchNorm(h))
		case NormGroup:
			layers = append(layers, NewGroupNorm(h, groupsFor(h)))
		}
		layers = append(layers, NewReLU())
		if s.Dropout > 0 {
			layers = append(layers, NewDropout(s.Dropout, dropRNG))
		}
		in = h
	}
	layers = append(layers, NewLinear(in, s.Classes, initRNG))
	return NewSequential(layers...), nil
}

// Proxy model specs for the architectures in Table I. Widths are chosen so
// relative capacity ordering matches the real networks while keeping a full
// figure regeneration in the seconds range; BatchNorm placement mirrors the
// originals (all of them use batch normalization except the classifier
// head). InputDim and Classes are filled in from the dataset at build time
// via WithData.
var proxySpecs = map[string]ModelSpec{
	"resnet50":     {Name: "resnet50", Hidden: []int{96, 96, 48}, BatchNorm: true},
	"densenet161":  {Name: "densenet161", Hidden: []int{128, 128, 64}, BatchNorm: true},
	"wideresnet28": {Name: "wideresnet28", Hidden: []int{192, 96}, BatchNorm: true},
	"inceptionv4":  {Name: "inceptionv4", Hidden: []int{64, 64, 64, 64}, BatchNorm: true},
	"deepcam":      {Name: "deepcam", Hidden: []int{48, 48}, BatchNorm: true},
	"mlp":          {Name: "mlp", Hidden: []int{64}, BatchNorm: false},
}

// ProxySpec returns the proxy ModelSpec for one of the paper's model names
// ("resnet50", "densenet161", "wideresnet28", "inceptionv4", "deepcam",
// or the plain "mlp").
func ProxySpec(name string) (ModelSpec, error) {
	s, ok := proxySpecs[name]
	if !ok {
		return ModelSpec{}, fmt.Errorf("nn: unknown proxy model %q", name)
	}
	return s, nil
}

// ProxyNames lists the available proxy model names.
func ProxyNames() []string {
	return []string{"resnet50", "densenet161", "wideresnet28", "inceptionv4", "deepcam", "mlp"}
}

// WithData returns a copy of the spec bound to a dataset's input dimension
// and class count.
func (s ModelSpec) WithData(inputDim, classes int) ModelSpec {
	s.InputDim = inputDim
	s.Classes = classes
	return s
}

// WithBatchNorm returns a copy with batch normalization toggled; used by
// the batch-norm ablation (DESIGN.md §5).
func (s ModelSpec) WithBatchNorm(on bool) ModelSpec {
	s.BatchNorm = on
	if on {
		s.Norm = NormBatch
	} else {
		s.Norm = NormNone
	}
	return s
}

// WithNorm returns a copy using the given normalization layer; used by the
// normalization ablation (batch vs group vs none).
func (s ModelSpec) WithNorm(n Norm) ModelSpec {
	s.Norm = n
	s.BatchNorm = n == NormBatch
	return s
}
