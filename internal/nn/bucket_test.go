package nn

import (
	"fmt"
	"math"
	"testing"

	"plshuffle/internal/rng"
)

func testModel(t *testing.T, hidden []int, batchNorm bool) *Sequential {
	t.Helper()
	spec := ModelSpec{Name: "bucket-test", InputDim: 12, Classes: 5, Hidden: hidden, BatchNorm: batchNorm}
	m, err := spec.Build(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBucketPlanValidates builds plans across model shapes and byte caps
// and runs the plan's own tiling validator: buckets must cover the param
// order and the flat layout exactly, in reverse-layer order.
func TestBucketPlanValidates(t *testing.T) {
	shapes := []struct {
		hidden []int
		bn     bool
	}{
		{[]int{8}, false},
		{[]int{32, 16}, true},
		{[]int{64, 64, 32}, true},
	}
	caps := []int{0, 64, 1 << 10, 1 << 30} // default, tiny, small, one-bucket
	for _, sh := range shapes {
		for _, capBytes := range caps {
			t.Run(fmt.Sprintf("hidden=%v/bn=%v/cap=%d", sh.hidden, sh.bn, capBytes), func(t *testing.T) {
				model := testModel(t, sh.hidden, sh.bn)
				plan := NewBucketPlan(model, capBytes)
				if err := plan.Validate(model.Params()); err != nil {
					t.Fatal(err)
				}
				if len(plan.Buckets) == 0 {
					t.Fatal("plan has no buckets")
				}
				// Launch order is reverse-layer: bucket 0 ends the flat layout.
				if plan.Buckets[0].Hi != plan.NumEl {
					t.Errorf("bucket 0 ends at %d, want %d (deepest layers first)", plan.Buckets[0].Hi, plan.NumEl)
				}
				if last := plan.Buckets[len(plan.Buckets)-1]; last.Lo != 0 {
					t.Errorf("last bucket starts at %d, want 0", last.Lo)
				}
			})
		}
	}
}

// TestBucketPlanRespectsCap checks that multi-layer buckets never exceed
// the byte cap. A single layer whose parameters alone exceed the cap
// legitimately gets an oversized bucket of its own — buckets never split a
// layer — so over-cap buckets must span exactly one layer.
func TestBucketPlanRespectsCap(t *testing.T) {
	model := testModel(t, []int{64, 64, 32}, true)
	const capBytes = 4 << 10
	plan := NewBucketPlan(model, capBytes)
	if len(plan.Buckets) < 2 {
		t.Fatalf("cap %d produced %d bucket(s); test needs a multi-bucket plan", capBytes, len(plan.Buckets))
	}
	// Map param index -> layer index to tell single-layer buckets apart.
	paramLayer := make([]int, 0, len(model.Params()))
	for li, l := range model.Layers {
		for range l.Params() {
			paramLayer = append(paramLayer, li)
		}
	}
	for i, b := range plan.Buckets {
		multiLayer := paramLayer[b.FirstParam] != paramLayer[b.LastParam-1]
		if multiLayer && b.Elems()*4 > capBytes {
			t.Errorf("bucket %d groups layers %d..%d over %d bytes > cap %d",
				i, paramLayer[b.FirstParam], paramLayer[b.LastParam-1], b.Elems()*4, capBytes)
		}
	}
}

// TestBucketPlanReadyTiling checks that every bucket is readied by exactly
// one layer — its earliest contributing layer.
func TestBucketPlanReadyTiling(t *testing.T) {
	model := testModel(t, []int{32, 16}, true)
	plan := NewBucketPlan(model, 256)
	seen := make(map[int]int)
	for li := range model.Layers {
		for _, bi := range plan.ReadyAt(li) {
			seen[bi]++
			if got := plan.Buckets[bi].ReadyLayer; got != li {
				t.Errorf("bucket %d readied at layer %d but ReadyLayer=%d", bi, li, got)
			}
		}
	}
	for bi := range plan.Buckets {
		if seen[bi] != 1 {
			t.Errorf("bucket %d readied %d times, want exactly once", bi, seen[bi])
		}
	}
	if plan.ReadyAt(-1) != nil || plan.ReadyAt(len(model.Layers)) != nil {
		t.Error("out-of-range ReadyAt must return nil")
	}
}

// TestBackwardWithHookBucketGradsFinal runs a real backward pass and, at
// each bucket's ready hook, snapshots the bucket's gradient range. The
// snapshots must bitwise-match the final gradients after backward
// completes — the property that makes launching the bucket's all-reduce
// from the hook safe.
func TestBackwardWithHookBucketGradsFinal(t *testing.T) {
	model := testModel(t, []int{32, 16}, true)
	params := model.Params()
	plan := NewBucketPlan(model, 256)
	if err := plan.Validate(params); err != nil {
		t.Fatal(err)
	}

	r := rng.New(3)
	x, labels := smallBatch(r, 8, 12, 5)
	var ce SoftmaxCrossEntropy
	ce.Forward(model.Forward(x, true), labels)

	flat := make([]float32, plan.NumEl)
	snaps := make(map[int][]float32)
	var order []int
	model.BackwardWithHook(ce.Backward(), func(layer int) {
		for _, bi := range plan.ReadyAt(layer) {
			b := plan.Buckets[bi]
			FlattenGradsRange(params, flat, b.FirstParam, b.LastParam, b.Lo)
			snaps[bi] = append([]float32(nil), flat[b.Lo:b.Hi]...)
			order = append(order, bi)
		}
	})

	if len(snaps) != len(plan.Buckets) {
		t.Fatalf("hooks readied %d buckets, want %d", len(snaps), len(plan.Buckets))
	}
	// Buckets must become ready in launch order (deepest layers first).
	for i, bi := range order {
		if bi != i {
			t.Fatalf("ready order %v, want ascending bucket indices", order)
		}
	}
	final := FlattenGrads(params, nil)
	for bi, snap := range snaps {
		b := plan.Buckets[bi]
		for j, v := range snap {
			if math.Float32bits(v) != math.Float32bits(final[b.Lo+j]) {
				t.Fatalf("bucket %d grad %d changed after its ready hook: %v -> %v", bi, j, v, final[b.Lo+j])
			}
		}
	}
}

// TestFlattenGradsRangeRoundTrip checks the range variants agree with the
// whole-model flatten/unflatten.
func TestFlattenGradsRangeRoundTrip(t *testing.T) {
	model := testModel(t, []int{16, 8}, true)
	params := model.Params()
	plan := NewBucketPlan(model, 128)

	// Give every gradient a distinct value.
	v := float32(0.5)
	for _, p := range params {
		for i := range p.G {
			p.G[i] = v
			v += 0.25
		}
	}
	want := FlattenGrads(params, nil)

	got := make([]float32, plan.NumEl)
	for _, b := range plan.Buckets {
		FlattenGradsRange(params, got, b.FirstParam, b.LastParam, b.Lo)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("flat element %d: range flatten %v, full flatten %v", i, got[i], want[i])
		}
	}

	// Perturb, then unflatten back range-by-range and compare grads.
	for i := range got {
		got[i] *= 2
	}
	for _, b := range plan.Buckets {
		UnflattenGradsRange(params, got, b.FirstParam, b.LastParam, b.Lo)
	}
	back := FlattenGrads(params, nil)
	for i := range back {
		if back[i] != 2*want[i] {
			t.Fatalf("flat element %d after roundtrip: %v, want %v", i, back[i], 2*want[i])
		}
	}
}

// TestStepPartialTilingBitwise pins the optimizer contract the per-bucket
// drain relies on: stepping a tiling of [0, len(params)) in bucket order
// must be bitwise-identical to one full Step, for every optimizer,
// including across iterations (positional state: velocities, moments, and
// LAMB's bias-correction counter).
func TestStepPartialTilingBitwise(t *testing.T) {
	opts := []struct {
		name string
		mk   func() Optimizer
	}{
		{"sgd", func() Optimizer { return NewSGD(0.9, 1e-4) }},
		{"lars", func() Optimizer { return NewLARS(0.9, 1e-4, 0.001) }},
		{"lamb", func() Optimizer { return NewLAMB(1e-4) }},
	}
	for _, oc := range opts {
		t.Run(oc.name, func(t *testing.T) {
			full := testModel(t, []int{16, 8}, true)
			tiled := testModel(t, []int{16, 8}, true)
			fp, tp := full.Params(), tiled.Params()
			fo, to := oc.mk(), oc.mk()
			plan := NewBucketPlan(tiled, 128)
			if len(plan.Buckets) < 2 {
				t.Fatal("test needs a multi-bucket plan")
			}

			r := rng.New(5)
			x, labels := smallBatch(r, 8, 12, 5)
			var ce SoftmaxCrossEntropy
			for iter := 0; iter < 4; iter++ {
				lr := float32(0.05) / float32(iter+1)
				ce.Forward(full.Forward(x, true), labels)
				full.Backward(ce.Backward())
				ce.Forward(tiled.Forward(x, true), labels)
				tiled.Backward(ce.Backward())

				fo.Step(fp, lr)
				for _, b := range plan.Buckets { // drain order: reverse-layer
					to.StepPartial(tp, b.FirstParam, b.LastParam, lr)
				}
				for pi := range fp {
					for j := range fp[pi].W {
						if math.Float32bits(fp[pi].W[j]) != math.Float32bits(tp[pi].W[j]) {
							t.Fatalf("iter %d param %d coord %d: full %v, tiled %v",
								iter, pi, j, fp[pi].W[j], tp[pi].W[j])
						}
					}
				}
			}
		})
	}
}
