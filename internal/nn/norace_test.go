//go:build !race

package nn

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
