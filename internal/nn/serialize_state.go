package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"plshuffle/internal/rng"
)

// This file extends the weight checkpoint (serialize.go) to the rest of the
// training state a bitwise resume needs: the optimizer's moment buffers and
// the model's dropout RNG stream positions. Together with SaveWeights and
// the per-worker rng states, a rank's snapshot fully determines the rest of
// its run.

// CheckpointTensors lists every tensor a checkpoint stores: all learnable
// parameters plus all layer state (batch-norm running statistics), in layer
// order. It is the exported handle the trainer uses to broadcast a full
// model image to a joining rank over the wire.
func CheckpointTensors(model *Sequential) []Param { return checkpointTensors(model) }

// RNGStates captures the stream positions of every distinct RNG feeding the
// model's dropout layers, in first-use layer order. Layers built from one
// shared generator (ModelSpec.Build uses a single dropRNG) contribute one
// state; the slice is empty for dropout-free models.
func RNGStates(model *Sequential) [][4]uint64 {
	var out [][4]uint64
	seen := map[*rng.Rand]bool{}
	for _, l := range model.Layers {
		d, ok := l.(*Dropout)
		if !ok || d.rand == nil || seen[d.rand] {
			continue
		}
		seen[d.rand] = true
		out = append(out, d.rand.State())
	}
	return out
}

// SetRNGStates restores the stream positions captured by RNGStates into a
// freshly built model with the same architecture. The count must match.
func SetRNGStates(model *Sequential, states [][4]uint64) error {
	i := 0
	seen := map[*rng.Rand]bool{}
	for _, l := range model.Layers {
		d, ok := l.(*Dropout)
		if !ok || d.rand == nil || seen[d.rand] {
			continue
		}
		seen[d.rand] = true
		if i >= len(states) {
			return fmt.Errorf("nn: SetRNGStates: model has more RNG streams than the %d captured", len(states))
		}
		d.rand.SetState(states[i])
		i++
	}
	if i != len(states) {
		return fmt.Errorf("nn: SetRNGStates: captured %d RNG streams, model uses %d", len(states), i)
	}
	return nil
}

// optimizerMagic identifies the optimizer-state format ("PLSO" + version 1).
var optimizerMagic = [5]byte{'P', 'L', 'S', 'O', 1}

// Optimizer kind bytes. The kind is stored so a resume with mismatched
// flags (-lars on one side only) fails loudly instead of silently training
// with fresh moments.
const (
	optKindSGD  = 1
	optKindLAMB = 2
	optKindLARS = 3
)

// SaveOptimizerState writes o's moment buffers in a stable little-endian
// format. Lazily initialized state that has not materialized yet (no Step
// taken) is recorded as absent and restores as absent — a resume from an
// epoch-0 checkpoint matches a fresh start bit for bit.
func SaveOptimizerState(w io.Writer, o Optimizer) error {
	if _, err := w.Write(optimizerMagic[:]); err != nil {
		return fmt.Errorf("nn: SaveOptimizerState: %w", err)
	}
	var err error
	switch o := o.(type) {
	case *SGD:
		err = writeByte(w, optKindSGD)
		if err == nil {
			err = writeSlices(w, o.velocity)
		}
	case *LAMB:
		err = writeByte(w, optKindLAMB)
		if err == nil {
			err = writeSlices(w, o.m)
		}
		if err == nil {
			err = writeSlices(w, o.v)
		}
		if err == nil {
			err = binary.Write(w, binary.LittleEndian, int64(o.step))
		}
		if err == nil {
			err = binary.Write(w, binary.LittleEndian, int64(o.covered))
		}
	case *LARS:
		err = writeByte(w, optKindLARS)
		if err == nil {
			err = writeSlices(w, o.velocity)
		}
		if err == nil {
			err = writeBools(w, o.is1D)
		}
	default:
		return fmt.Errorf("nn: SaveOptimizerState: unknown optimizer type %T", o)
	}
	if err != nil {
		return fmt.Errorf("nn: SaveOptimizerState: %w", err)
	}
	return nil
}

// LoadOptimizerState restores state written by SaveOptimizerState into o,
// which must be a freshly constructed optimizer of the same kind.
func LoadOptimizerState(r io.Reader, o Optimizer) error {
	var magic [5]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: LoadOptimizerState: reading header: %w", err)
	}
	if magic != optimizerMagic {
		return fmt.Errorf("nn: LoadOptimizerState: bad magic %q (not an optimizer snapshot or wrong version)", magic)
	}
	kind, err := readByte(r)
	if err != nil {
		return fmt.Errorf("nn: LoadOptimizerState: %w", err)
	}
	switch o := o.(type) {
	case *SGD:
		if kind != optKindSGD {
			return fmt.Errorf("nn: LoadOptimizerState: snapshot kind %d, optimizer is SGD", kind)
		}
		o.velocity, err = readSlices(r)
	case *LAMB:
		if kind != optKindLAMB {
			return fmt.Errorf("nn: LoadOptimizerState: snapshot kind %d, optimizer is LAMB", kind)
		}
		o.m, err = readSlices(r)
		if err == nil {
			o.v, err = readSlices(r)
		}
		if err == nil {
			var step, covered int64
			if err = binary.Read(r, binary.LittleEndian, &step); err == nil {
				err = binary.Read(r, binary.LittleEndian, &covered)
			}
			o.step, o.covered = int(step), int(covered)
		}
		if err == nil && (o.m == nil) != (o.v == nil) {
			err = fmt.Errorf("half-initialized LAMB moments (corrupt snapshot)")
		}
	case *LARS:
		if kind != optKindLARS {
			return fmt.Errorf("nn: LoadOptimizerState: snapshot kind %d, optimizer is LARS", kind)
		}
		o.velocity, err = readSlices(r)
		if err == nil {
			o.is1D, err = readBools(r)
		}
		if err == nil && (o.velocity == nil) != (o.is1D == nil) {
			err = fmt.Errorf("half-initialized LARS state (corrupt snapshot)")
		}
	default:
		return fmt.Errorf("nn: LoadOptimizerState: unknown optimizer type %T", o)
	}
	if err != nil {
		return fmt.Errorf("nn: LoadOptimizerState: %w", err)
	}
	return nil
}

// stateLimit bounds per-field element counts when decoding attacker-shaped
// bytes, mirroring the wire codec's discipline: a corrupt length prefix
// must fail, not allocate gigabytes.
const stateLimit = 1 << 28

func writeByte(w io.Writer, b byte) error {
	_, err := w.Write([]byte{b})
	return err
}

func readByte(r io.Reader) (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(r, b[:])
	return b[0], err
}

// writeSlices encodes a lazily initialized [][]float32: a presence byte,
// then (when present) a u32 slice count and each slice as u32 length +
// float32 LE values.
func writeSlices(w io.Writer, s [][]float32) error {
	if s == nil {
		return writeByte(w, 0)
	}
	if err := writeByte(w, 1); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	for _, v := range s {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(v))); err != nil {
			return err
		}
		buf := make([]byte, 4*len(v))
		for i, f := range v {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readSlices(r io.Reader) ([][]float32, error) {
	present, err := readByte(r)
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > stateLimit {
		return nil, fmt.Errorf("implausible slice count %d", count)
	}
	out := make([][]float32, count)
	for i := range out {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > stateLimit {
			return nil, fmt.Errorf("implausible slice length %d", n)
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		v := make([]float32, n)
		for j := range v {
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		out[i] = v
	}
	return out, nil
}

func writeBools(w io.Writer, s []bool) error {
	if s == nil {
		return writeByte(w, 0)
	}
	if err := writeByte(w, 1); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	buf := make([]byte, len(s))
	for i, b := range s {
		if b {
			buf[i] = 1
		}
	}
	_, err := w.Write(buf)
	return err
}

func readBools(r io.Reader) ([]bool, error) {
	present, err := readByte(r)
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > stateLimit {
		return nil, fmt.Errorf("implausible bool count %d", count)
	}
	buf := make([]byte, count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]bool, count)
	for i, b := range buf {
		out[i] = b != 0
	}
	return out, nil
}
