package nn

import (
	"bytes"
	"testing"
)

// FuzzLoadWeights hardens checkpoint loading against corrupt or hostile
// files: it must never panic, only return errors (or succeed on the valid
// seed corpus).
func FuzzLoadWeights(f *testing.F) {
	spec := ModelSpec{Name: "fuzz", InputDim: 4, Hidden: []int{4}, Classes: 2, BatchNorm: true}
	model, err := spec.Build(1, 1)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := SaveWeights(&valid, model); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("PLSW\x01garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, buf []byte) {
		target, err := spec.Build(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		_ = LoadWeights(bytes.NewReader(buf), target) // must not panic
	})
}
