package nn

import (
	"fmt"
	"math"

	"plshuffle/internal/tensor"
	"plshuffle/internal/tensor/arena"
)

// SoftmaxCrossEntropy couples the softmax activation with the cross-entropy
// loss, the standard classification head. Forward returns the mean loss
// over the batch; Backward returns d(loss)/d(logits) already divided by the
// batch size, so gradients averaged across workers by Allreduce(Sum)/M
// reproduce Equation 1 of the paper.
type SoftmaxCrossEntropy struct {
	probs     *tensor.Matrix
	labels    []int
	perSample []float64
	grad      *tensor.Matrix // backward workspace, reused across calls
	arena     *arena.Arena
}

// SetArena moves the probability and gradient workspaces into a (nil
// detaches); see ArenaUser. probs must survive Forward→Backward, so the
// owner must not Reset between them.
func (l *SoftmaxCrossEntropy) SetArena(a *arena.Arena) { l.arena = a }

// Forward computes softmax probabilities and the mean cross-entropy loss.
func (l *SoftmaxCrossEntropy) Forward(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy: %d rows but %d labels", logits.Rows, len(labels)))
	}
	l.probs = tensor.EnsureShapeArena(l.arena, l.probs, logits.Rows, logits.Cols)
	l.labels = labels
	if cap(l.perSample) < logits.Rows {
		l.perSample = make([]float64, logits.Rows)
	}
	l.perSample = l.perSample[:logits.Rows]
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		// Subtract the max for numerical stability.
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		pr := l.probs.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			pr[j] = float32(e)
			sum += e
		}
		inv := 1 / sum
		for j := range pr {
			pr[j] = float32(float64(pr[j]) * inv)
		}
		p := float64(pr[labels[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		l.perSample[i] = -math.Log(p)
		loss += l.perSample[i]
	}
	return loss / float64(logits.Rows)
}

// PerSample returns each row's cross-entropy loss from the last Forward
// call — the importance weights for the Section IV-B sampling extension.
// The returned slice is owned by the loss and overwritten on the next
// Forward.
func (l *SoftmaxCrossEntropy) PerSample() []float64 { return l.perSample }

// Backward returns the gradient of the mean loss with respect to the
// logits: (softmax - onehot) / batch. The returned matrix is a reused
// workspace, valid until the next Backward call.
func (l *SoftmaxCrossEntropy) Backward() *tensor.Matrix {
	if l.probs == nil {
		panic("nn: SoftmaxCrossEntropy.Backward called before Forward")
	}
	l.grad = tensor.EnsureShapeArena(l.arena, l.grad, l.probs.Rows, l.probs.Cols)
	grad := l.grad
	copy(grad.Data, l.probs.Data)
	inv := 1 / float32(grad.Rows)
	for i := 0; i < grad.Rows; i++ {
		row := grad.Row(i)
		row[l.labels[i]] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
	return grad
}

// Accuracy returns the fraction of rows whose argmax logit matches the
// label.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	pred := logits.ArgmaxRows()
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
