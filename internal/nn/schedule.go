package nn

import "math"

// Schedule maps training progress (fractional epochs) to a learning rate.
// The paper keeps each model's original regime: base LR with step decay for
// ImageNet-style runs (Goyal et al.), cosine for CIFAR-style runs, and a
// linear warmup for large-batch training.
type Schedule interface {
	LR(epoch float64) float32
}

// Constant is a flat learning rate.
type Constant struct{ Base float32 }

// LR returns the constant rate.
func (s Constant) LR(epoch float64) float32 { return s.Base }

// StepDecay multiplies the base rate by Gamma at every listed milestone
// epoch (Goyal et al.'s /10 at epochs 30, 60, 80 for ImageNet).
type StepDecay struct {
	Base       float32
	Gamma      float32
	Milestones []float64
}

// LR returns the decayed rate at the given epoch.
func (s StepDecay) LR(epoch float64) float32 {
	lr := s.Base
	for _, m := range s.Milestones {
		if epoch >= m {
			lr *= s.Gamma
		}
	}
	return lr
}

// Cosine anneals the rate from Base to Min over Total epochs.
type Cosine struct {
	Base  float32
	Min   float32
	Total float64
}

// LR returns the cosine-annealed rate.
func (s Cosine) LR(epoch float64) float32 {
	if epoch >= s.Total {
		return s.Min
	}
	frac := epoch / s.Total
	return s.Min + (s.Base-s.Min)*float32((1+math.Cos(math.Pi*frac))/2)
}

// Warmup linearly ramps the rate from Base*StartFactor to the wrapped
// schedule's value over Epochs, then defers to the wrapped schedule. It is
// the standard large-batch warmup (Goyal et al.) the paper uses with LARS.
type Warmup struct {
	Inner       Schedule
	Epochs      float64
	StartFactor float32
}

// LR returns the warmed-up rate.
func (s Warmup) LR(epoch float64) float32 {
	target := s.Inner.LR(epoch)
	if epoch >= s.Epochs || s.Epochs <= 0 {
		return target
	}
	frac := float32(epoch / s.Epochs)
	return target * (s.StartFactor + (1-s.StartFactor)*frac)
}
