package nn

import (
	"fmt"
	"math"

	"plshuffle/internal/tensor"
)

// Optimizer applies one update step to a parameter set given the current
// learning rate.
type Optimizer interface {
	Step(params []Param, lr float32)
	// StepPartial applies the update to params[lo:hi] only, using the same
	// per-parameter state Step would. params must always be the FULL
	// parameter set (state is indexed by position); within one logical
	// iteration the [lo,hi) ranges must tile [0,len(params)) exactly once,
	// in any order. The bucketed gradient sync uses it to step each bucket
	// the moment its all-reduce lands; any exact tiling produces weights
	// bitwise identical to a single full Step.
	StepPartial(params []Param, lo, hi int, lr float32)
}

// SGD is stochastic gradient descent with momentum and (decoupled-from-
// schedule, coupled-to-gradient) L2 weight decay, matching PyTorch's
// torch.optim.SGD semantics used by the paper's training scripts.
type SGD struct {
	Momentum    float32
	WeightDecay float32
	Nesterov    bool
	velocity    [][]float32
}

// NewSGD creates an SGD optimizer.
func NewSGD(momentum, weightDecay float32) *SGD {
	return &SGD{Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies w -= lr * (momentum-filtered gradient + wd*w).
func (o *SGD) Step(params []Param, lr float32) { o.StepPartial(params, 0, len(params), lr) }

// StepPartial applies the SGD update to params[lo:hi]; see Optimizer.
func (o *SGD) StepPartial(params []Param, lo, hi int, lr float32) {
	if o.velocity == nil {
		o.velocity = make([][]float32, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float32, len(p.W))
		}
	}
	if len(o.velocity) != len(params) {
		panic(fmt.Sprintf("nn: SGD.Step: parameter count changed from %d to %d", len(o.velocity), len(params)))
	}
	for i := lo; i < hi; i++ {
		p := params[i]
		v := o.velocity[i]
		for j := range p.W {
			g := p.G[j] + o.WeightDecay*p.W[j]
			v[j] = o.Momentum*v[j] + g
			if o.Nesterov {
				p.W[j] -= lr * (g + o.Momentum*v[j])
			} else {
				p.W[j] -= lr * v[j]
			}
		}
	}
}

// LAMB implements layer-wise adaptive moments (You et al., ICLR 2020),
// the successor to LARS for very-large-batch training: Adam-style first
// and second moment estimates, with each tensor's update rescaled by the
// trust ratio ||w|| / ||update||. Included because the paper's large-batch
// regimes (Fig 6's 65,536 global batch) are exactly LAMB's target setting.
type LAMB struct {
	Beta1, Beta2 float32
	Eps          float32
	WeightDecay  float32
	m, v         [][]float32
	update       []float32 // per-step workspace, reused across tensors
	step         int
	// covered counts parameters stepped in the current logical iteration;
	// the step counter (bias correction) advances exactly once per full
	// tiling, so partial (per-bucket) stepping matches a single full Step
	// bit for bit.
	covered int
}

// NewLAMB creates a LAMB optimizer with the standard moment coefficients.
func NewLAMB(weightDecay float32) *LAMB {
	return &LAMB{Beta1: 0.9, Beta2: 0.999, Eps: 1e-6, WeightDecay: weightDecay}
}

// Step applies one LAMB update.
func (o *LAMB) Step(params []Param, lr float32) { o.StepPartial(params, 0, len(params), lr) }

// StepPartial applies the LAMB update to params[lo:hi]; see Optimizer. The
// bias-correction step counter advances on the first partial call of each
// iteration and the tiling is tracked by parameter count, so every bucket
// of one iteration shares the same correction factors.
func (o *LAMB) StepPartial(params []Param, lo, hi int, lr float32) {
	if o.m == nil {
		o.m = make([][]float32, len(params))
		o.v = make([][]float32, len(params))
		for i, p := range params {
			o.m[i] = make([]float32, len(p.W))
			o.v[i] = make([]float32, len(p.W))
		}
	}
	if o.covered == 0 {
		o.step++
	}
	o.covered += hi - lo
	if o.covered >= len(params) {
		o.covered = 0
	}
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.step)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.step)))
	for i := lo; i < hi; i++ {
		p := params[i]
		m, v := o.m[i], o.v[i]
		o.update = ensureVec(o.update, len(p.W))
		update := o.update
		for j, g := range p.G {
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			update[j] = mHat/(float32(math.Sqrt(float64(vHat)))+o.Eps) + o.WeightDecay*p.W[j]
		}
		wNorm := tensor.Norm2Slice(p.W)
		uNorm := tensor.Norm2Slice(update)
		trust := float32(1)
		if wNorm > 0 && uNorm > 0 {
			trust = float32(wNorm / uNorm)
		}
		for j := range p.W {
			p.W[j] -= lr * trust * update[j]
		}
	}
}

// LARS implements layer-wise adaptive rate scaling (You et al.), which the
// paper applies for large-scale runs (>512 workers for ResNet50) following
// the hyper-parameters of Mikami et al. Each parameter tensor's update is
// scaled by the trust ratio eta*||w|| / (||g|| + wd*||w||).
type LARS struct {
	Momentum    float32
	WeightDecay float32
	Eta         float32 // trust coefficient, typically 0.001..0.01
	// SkipNormOnBiasAndBN applies plain SGD to 1-D parameters (biases and
	// batch-norm scales), the standard practice.
	SkipNormOnBiasAndBN bool
	velocity            [][]float32
	is1D                []bool
}

// NewLARS creates a LARS optimizer with the given trust coefficient.
func NewLARS(momentum, weightDecay, eta float32) *LARS {
	return &LARS{Momentum: momentum, WeightDecay: weightDecay, Eta: eta, SkipNormOnBiasAndBN: true}
}

// Step applies the LARS update.
func (o *LARS) Step(params []Param, lr float32) { o.StepPartial(params, 0, len(params), lr) }

// StepPartial applies the LARS update to params[lo:hi]; see Optimizer. The
// trust ratio is per-tensor, so any tiling matches a full Step exactly.
func (o *LARS) StepPartial(params []Param, lo, hi int, lr float32) {
	if o.velocity == nil {
		o.velocity = make([][]float32, len(params))
		o.is1D = make([]bool, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float32, len(p.W))
			// Heuristic: bias and batch-norm parameter names mark 1-D params.
			o.is1D[i] = p.Name == "linear.b" || p.Name == "bn.gamma" || p.Name == "bn.beta"
		}
	}
	for i := lo; i < hi; i++ {
		p := params[i]
		v := o.velocity[i]
		localLR := lr
		wd := o.WeightDecay
		if o.SkipNormOnBiasAndBN && o.is1D[i] {
			wd = 0
		} else {
			wNorm := tensor.Norm2Slice(p.W)
			gNorm := tensor.Norm2Slice(p.G)
			if wNorm > 0 && gNorm > 0 {
				trust := float64(o.Eta) * wNorm / (gNorm + float64(o.WeightDecay)*wNorm)
				localLR = lr * float32(trust)
			}
		}
		for j := range p.W {
			g := p.G[j] + wd*p.W[j]
			v[j] = o.Momentum*v[j] + localLR*g
			p.W[j] -= v[j]
		}
	}
}
