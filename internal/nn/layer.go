// Package nn implements the small neural-network substrate used to run the
// paper's training experiments: fully-connected layers, ReLU, batch
// normalization (the mechanism Section IV-A.1 identifies as the main source
// of accuracy loss under local shuffling), dropout, softmax cross-entropy,
// SGD with momentum, LARS (used by the paper for large-batch runs), and
// learning-rate schedules with warmup.
//
// The paper trains convolutional networks in PyTorch; this package provides
// MLP proxies for those architectures (see model.go and DESIGN.md §2 for
// why the substitution preserves the studied behaviour).
package nn

import (
	"fmt"
	"math"

	"plshuffle/internal/rng"
	"plshuffle/internal/tensor"
	"plshuffle/internal/tensor/arena"
)

// ArenaUser is implemented by layers whose activation workspaces can live
// in a caller-owned bump arena instead of individual heap buffers. The
// trainer attaches one arena per worker goroutine and Resets it at the top
// of every training step (DESIGN.md §14): all workspaces for one
// forward+backward pass are bump-allocated from the same backing array and
// reclaimed wholesale, so the steady state does zero heap allocation and
// the activations of one step are packed contiguously.
//
// The contract tightens Layer's buffer-ownership rule: with an arena
// attached, matrices returned by Forward/Backward are valid only until the
// arena's next Reset. Persistent state (weights, gradients, running
// statistics, masks) never moves into the arena.
type ArenaUser interface {
	SetArena(a *arena.Arena)
}

// Param is a flat view of one learnable parameter tensor and its gradient.
// Optimizers and the gradient allreduce operate on these views, so updating
// them updates the layer in place.
type Param struct {
	Name string
	W    []float32 // weights (view into the layer's storage)
	G    []float32 // gradient, same length as W
}

// Layer is one differentiable module. Forward must be called before
// Backward for the same batch; train selects training vs inference
// behaviour (batch statistics, dropout).
//
// Buffer ownership: the matrices returned by Forward and Backward are
// layer-owned workspaces, reused on the layer's next Forward/Backward call
// (the zero-allocation steady state). Callers that retain a result across
// iterations — metrics, tests, checkpoints — must Clone it first.
type Layer interface {
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	Backward(dout *tensor.Matrix) *tensor.Matrix
	Params() []Param
}

// ensureVec returns a float32 slice of length n, reusing v's storage when
// possible. Contents are unspecified on the reused path; accumulator uses
// must zero it first.
func ensureVec(v []float32, n int) []float32 {
	if cap(v) < n {
		return make([]float32, n)
	}
	return v[:n]
}

// Linear is a fully-connected layer: y = x·W + b, with W of shape in×out.
type Linear struct {
	In, Out int
	W       *tensor.Matrix
	B       []float32
	GW      *tensor.Matrix
	GB      []float32
	x       *tensor.Matrix // cached input for backward
	y       *tensor.Matrix // forward workspace, reused across calls
	dx      *tensor.Matrix // backward workspace, reused across calls
	arena   *arena.Arena   // optional step arena for y/dx (see ArenaUser)
}

// SetArena moves the activation workspaces into a (nil detaches).
func (l *Linear) SetArena(a *arena.Arena) { l.arena = a }

// NewLinear creates a Linear layer with He (Kaiming) initialization, the
// standard choice for ReLU networks.
func NewLinear(in, out int, r *rng.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:  tensor.New(in, out),
		B:  make([]float32, out),
		GW: tensor.New(in, out),
		GB: make([]float32, out),
	}
	l.W.KaimingInit(r, in)
	return l
}

// Forward computes y = x·W + b and caches x for the backward pass.
func (l *Linear) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear.Forward: input has %d features, want %d", x.Cols, l.In))
	}
	l.x = x
	l.y = tensor.EnsureShapeArena(l.arena, l.y, x.Rows, l.Out)
	tensor.MatMulInto(l.y, x, l.W)
	l.y.AddRowVec(l.B)
	return l.y
}

// Backward computes parameter gradients (averaged over the batch is the
// caller's responsibility via the loss scaling) and returns dx = dy·Wᵀ.
// Gradients land directly in GW/GB and dx in a reused workspace: the
// steady-state backward pass allocates nothing.
func (l *Linear) Backward(dout *tensor.Matrix) *tensor.Matrix {
	tensor.MatMulTAInto(l.GW, l.x, dout) // xᵀ·dy
	dout.ColSumInto(l.GB)
	l.dx = tensor.EnsureShapeArena(l.arena, l.dx, dout.Rows, l.In)
	tensor.MatMulTBInto(l.dx, dout, l.W) // dy·Wᵀ
	return l.dx
}

// Params exposes W and b with their gradients.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: "linear.W", W: l.W.Data, G: l.GW.Data},
		{Name: "linear.b", W: l.B, G: l.GB},
	}
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask  []bool
	out   *tensor.Matrix // forward workspace
	dx    *tensor.Matrix // backward workspace
	arena *arena.Arena
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// SetArena moves the activation workspaces into a (nil detaches). The
// boolean mask stays heap-resident: the arena holds float32 only.
func (l *ReLU) SetArena(a *arena.Arena) { l.arena = a }

// Forward zeroes negative inputs.
func (l *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	l.out = tensor.EnsureShapeArena(l.arena, l.out, x.Rows, x.Cols)
	if cap(l.mask) < len(x.Data) {
		l.mask = make([]bool, len(x.Data))
	}
	l.mask = l.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v <= 0 {
			l.out.Data[i] = 0
			l.mask[i] = false
		} else {
			l.out.Data[i] = v
			l.mask[i] = true
		}
	}
	return l.out
}

// Backward zeroes the gradient where the input was non-positive.
func (l *ReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	l.dx = tensor.EnsureShapeArena(l.arena, l.dx, dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		if l.mask[i] {
			l.dx.Data[i] = v
		} else {
			l.dx.Data[i] = 0
		}
	}
	return l.dx
}

// Params returns nil: ReLU has no learnable parameters.
func (l *ReLU) Params() []Param { return nil }

// BatchNorm normalizes each feature over the mini-batch during training and
// with running statistics during inference. This layer is central to the
// reproduction: the paper (following Yang et al.) attributes the accuracy
// gap of local shuffling at scale primarily to batch statistics being
// computed on each worker's local, fixed mini-batches.
type BatchNorm struct {
	Dim      int
	Gamma    []float32
	Beta     []float32
	GGamma   []float32
	GBeta    []float32
	RunMean  []float32
	RunVar   []float32
	Momentum float32 // running-stats update rate (PyTorch default 0.1)
	Eps      float32

	// Sync, when non-nil, sums a statistics vector across all
	// data-parallel workers (an allreduce). With it set, the layer
	// computes batch statistics over the GLOBAL mini-batch — PyTorch's
	// SyncBatchNorm — in both the forward and backward passes. Every
	// worker must call Forward/Backward in lock-step (which synchronous
	// SGD guarantees). Without it, statistics are per-worker, which is
	// the standard behaviour whose shard bias Section IV-A.1 identifies
	// as the cause of local shuffling's accuracy loss.
	Sync func([]float32)

	// cached values for backward
	xhat   *tensor.Matrix
	invStd []float32
	countN float32 // batch size used in the last training forward (global when synced)

	// reusable workspaces (zero-allocation steady state)
	out      *tensor.Matrix
	dx       *tensor.Matrix
	stats    []float32 // forward sums/sumsq/count accumulator
	mean     []float32
	variance []float32
	dstats   []float32 // backward sumDy/sumDyXhat accumulator
	arena    *arena.Arena
}

// SetArena moves the batch-shaped workspaces (out, xhat, dx) into a (nil
// detaches). The per-feature statistics vectors stay heap-resident: they
// are tiny and the Sync hook may hold them across the arena's lifetime.
func (l *BatchNorm) SetArena(a *arena.Arena) { l.arena = a }

// NewBatchNorm creates a BatchNorm layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim:      dim,
		Gamma:    make([]float32, dim),
		Beta:     make([]float32, dim),
		GGamma:   make([]float32, dim),
		GBeta:    make([]float32, dim),
		RunMean:  make([]float32, dim),
		RunVar:   make([]float32, dim),
		Momentum: 0.1,
		Eps:      1e-5,
	}
	for i := range bn.Gamma {
		bn.Gamma[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Forward normalizes x per feature. In training mode it uses the batch's
// own mean/variance (the locally-biased statistics the paper discusses) and
// updates the running estimates; in inference mode it uses the running
// estimates.
func (l *BatchNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != l.Dim {
		panic(fmt.Sprintf("nn: BatchNorm.Forward: input has %d features, want %d", x.Cols, l.Dim))
	}
	l.out = tensor.EnsureShapeArena(l.arena, l.out, x.Rows, x.Cols)
	out := l.out
	n := float32(x.Rows)
	if train {
		// Accumulate per-feature sums and sums of squares; with a Sync
		// hook these are reduced across workers so the statistics cover
		// the global mini-batch.
		l.stats = ensureVec(l.stats, 2*l.Dim+1)
		stats := l.stats
		clear(stats)
		sums := stats[:l.Dim]
		sumsq := stats[l.Dim : 2*l.Dim]
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			for j, v := range row {
				sums[j] += v
				sumsq[j] += v * v
			}
		}
		stats[2*l.Dim] = n
		if l.Sync != nil {
			l.Sync(stats)
			n = stats[2*l.Dim]
		}
		l.countN = n
		l.mean = ensureVec(l.mean, l.Dim)
		l.variance = ensureVec(l.variance, l.Dim)
		mean, variance := l.mean, l.variance
		for j := range mean {
			mean[j] = sums[j] / n
			v := sumsq[j]/n - mean[j]*mean[j]
			if v < 0 {
				v = 0 // numerical cancellation guard
			}
			variance[j] = v
		}
		l.invStd = ensureVec(l.invStd, l.Dim)
		for j := range l.invStd {
			l.invStd[j] = 1 / float32(math.Sqrt(float64(variance[j]+l.Eps)))
		}
		l.xhat = tensor.EnsureShapeArena(l.arena, l.xhat, x.Rows, x.Cols)
		for i := 0; i < x.Rows; i++ {
			xr, hr, or := x.Row(i), l.xhat.Row(i), out.Row(i)
			for j := range xr {
				h := (xr[j] - mean[j]) * l.invStd[j]
				hr[j] = h
				or[j] = l.Gamma[j]*h + l.Beta[j]
			}
		}
		// Update running statistics (unbiased variance, as PyTorch does).
		unbias := n / float32(math.Max(1, float64(n-1)))
		for j := range mean {
			l.RunMean[j] = (1-l.Momentum)*l.RunMean[j] + l.Momentum*mean[j]
			l.RunVar[j] = (1-l.Momentum)*l.RunVar[j] + l.Momentum*variance[j]*unbias
		}
		return out
	}
	for i := 0; i < x.Rows; i++ {
		xr, or := x.Row(i), out.Row(i)
		for j := range xr {
			inv := 1 / float32(math.Sqrt(float64(l.RunVar[j]+l.Eps)))
			or[j] = l.Gamma[j]*(xr[j]-l.RunMean[j])*inv + l.Beta[j]
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient. With a Sync hook
// the reduction terms are summed across workers, matching the gradient of
// the globally-normalized forward pass.
func (l *BatchNorm) Backward(dout *tensor.Matrix) *tensor.Matrix {
	nRows := dout.Rows
	n := l.countN
	if n == 0 {
		n = float32(nRows)
	}
	l.dx = tensor.EnsureShapeArena(l.arena, l.dx, dout.Rows, dout.Cols)
	dx := l.dx
	// dGamma_j = sum_i dout_ij * xhat_ij ; dBeta_j = sum_i dout_ij
	l.dstats = ensureVec(l.dstats, 2*l.Dim)
	stats := l.dstats
	clear(stats)
	sumDy := stats[:l.Dim]
	sumDyXhat := stats[l.Dim:]
	for i := 0; i < nRows; i++ {
		dr, hr := dout.Row(i), l.xhat.Row(i)
		for j := range dr {
			sumDy[j] += dr[j]
			sumDyXhat[j] += dr[j] * hr[j]
		}
	}
	// Parameter gradients stay local: the trainer's gradient allreduce
	// sums them across workers (summing before and after would double
	// count).
	copy(l.GBeta, sumDy)
	copy(l.GGamma, sumDyXhat)
	if l.Sync != nil {
		l.Sync(stats)
	}
	// dx = (gamma*invStd/n) * (n*dy - sumDy - xhat*sumDyXhat)
	for i := 0; i < nRows; i++ {
		dr, hr, xr := dout.Row(i), l.xhat.Row(i), dx.Row(i)
		for j := range dr {
			xr[j] = l.Gamma[j] * l.invStd[j] / n * (n*dr[j] - sumDy[j] - hr[j]*sumDyXhat[j])
		}
	}
	return dx
}

// Params exposes gamma and beta with their gradients.
func (l *BatchNorm) Params() []Param {
	return []Param{
		{Name: "bn.gamma", W: l.Gamma, G: l.GGamma},
		{Name: "bn.beta", W: l.Beta, G: l.GBeta},
	}
}

// Dropout randomly zeroes activations during training (inverted dropout,
// so inference is the identity).
type Dropout struct {
	P     float32
	rand  *rng.Rand
	mask  []float32
	out   *tensor.Matrix // forward workspace
	dx    *tensor.Matrix // backward workspace
	arena *arena.Arena
}

// SetArena moves the activation workspaces into a (nil detaches). The
// mask persists Forward→Backward and stays heap-resident.
func (l *Dropout) SetArena(a *arena.Arena) { l.arena = a }

// NewDropout creates a dropout layer with drop probability p, drawing its
// masks from r (one generator per worker keeps runs deterministic).
func NewDropout(p float32, r *rng.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: NewDropout: p=%v out of [0,1)", p))
	}
	return &Dropout{P: p, rand: r}
}

// Forward applies the mask in training mode and is the identity otherwise.
func (l *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || l.P == 0 {
		l.mask = l.mask[:0]
		return x
	}
	l.out = tensor.EnsureShapeArena(l.arena, l.out, x.Rows, x.Cols)
	if cap(l.mask) < len(x.Data) {
		l.mask = make([]float32, len(x.Data))
	}
	l.mask = l.mask[:len(x.Data)]
	scale := 1 / (1 - l.P)
	for i, v := range x.Data {
		if l.rand.Float32() < l.P {
			l.mask[i] = 0
			l.out.Data[i] = 0
		} else {
			l.mask[i] = scale
			l.out.Data[i] = v * scale
		}
	}
	return l.out
}

// Backward applies the same mask to the gradient.
func (l *Dropout) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if len(l.mask) == 0 {
		return dout
	}
	l.dx = tensor.EnsureShapeArena(l.arena, l.dx, dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		l.dx.Data[i] = v * l.mask[i]
	}
	return l.dx
}

// Params returns nil: dropout has no learnable parameters.
func (l *Dropout) Params() []Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// SetArena attaches a step arena to every layer that supports one (see
// ArenaUser). The caller owns the arena's Reset cadence: once per
// forward+backward pass, never between a Forward and its Backward.
func (s *Sequential) SetArena(a *arena.Arena) {
	for _, l := range s.Layers {
		if u, ok := l.(ArenaUser); ok {
			u.SetArena(a)
		}
	}
}

// Forward runs the layers in order.
func (s *Sequential) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the layers in reverse order.
func (s *Sequential) Backward(dout *tensor.Matrix) *tensor.Matrix {
	return s.BackwardWithHook(dout, nil)
}

// BackwardWithHook runs the layers in reverse order, invoking hook(i)
// immediately after Layers[i].Backward returns — the moment every gradient
// of layers i..len(Layers)-1 has been written and will not change again
// this pass. The overlapped gradient sync uses it to launch a bucket's
// all-reduce while the earlier layers are still computing backward
// (DDP-style communication/computation pipelining). The hook runs on the
// caller's goroutine; time it spends is on the backward critical path, so
// it should only copy-and-launch. A nil hook makes this identical to
// Backward.
func (s *Sequential) BackwardWithHook(dout *tensor.Matrix, hook func(layer int)) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
		if hook != nil {
			hook(i)
		}
	}
	return dout
}

// Params concatenates every layer's parameters.
func (s *Sequential) Params() []Param {
	var out []Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.W)
	}
	return n
}

// FlattenGrads copies all gradients into dst (allocated if nil) in Params
// order, producing the buffer the trainer allreduces across workers.
func FlattenGrads(params []Param, dst []float32) []float32 {
	n := 0
	for _, p := range params {
		n += len(p.G)
	}
	if dst == nil || len(dst) != n {
		dst = make([]float32, n)
	}
	off := 0
	for _, p := range params {
		copy(dst[off:], p.G)
		off += len(p.G)
	}
	return dst
}

// FlattenGradsRange copies the gradients of params[first:last] into
// dst[lo:], where lo is the flat offset of params[first] in the
// FlattenGrads layout — the per-bucket flatten of the overlapped gradient
// sync. dst must already be sized for the full parameter set.
func FlattenGradsRange(params []Param, dst []float32, first, last, lo int) {
	off := lo
	for i := first; i < last; i++ {
		copy(dst[off:], params[i].G)
		off += len(params[i].G)
	}
}

// UnflattenGradsRange scatters dst[lo:] (a bucket's reduced gradients)
// back into params[first:last] — the inverse of FlattenGradsRange.
func UnflattenGradsRange(params []Param, src []float32, first, last, lo int) {
	off := lo
	for i := first; i < last; i++ {
		copy(params[i].G, src[off:off+len(params[i].G)])
		off += len(params[i].G)
	}
}

// UnflattenGrads scatters src (produced by FlattenGrads, possibly after an
// allreduce) back into the parameter gradients.
func UnflattenGrads(params []Param, src []float32) {
	off := 0
	for _, p := range params {
		copy(p.G, src[off:off+len(p.G)])
		off += len(p.G)
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: UnflattenGrads: consumed %d of %d values", off, len(src)))
	}
}

// TransferWeights copies weights from src into dst wherever the parameter
// shapes match, skipping mismatched tensors — the transfer-learning
// initializer for the Fig 8 experiment, where the pretrained backbone is
// kept and the classifier head (whose class count differs) is left at its
// fresh initialization. It returns the number of parameters transferred.
func TransferWeights(dst, src []Param) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	copied := 0
	for i := 0; i < n; i++ {
		if len(dst[i].W) == len(src[i].W) {
			copy(dst[i].W, src[i].W)
			copied++
		}
	}
	return copied
}

// CopyWeights copies all weights from src params into dst params; shapes
// must match. Used to clone model replicas across workers and for the
// pretrain/fine-tune experiment (Fig 8).
func CopyWeights(dst, src []Param) {
	if len(dst) != len(src) {
		panic("nn: CopyWeights: parameter count mismatch")
	}
	for i := range dst {
		if len(dst[i].W) != len(src[i].W) {
			panic(fmt.Sprintf("nn: CopyWeights: param %d length mismatch", i))
		}
		copy(dst[i].W, src[i].W)
	}
}
