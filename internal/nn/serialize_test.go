package nn

import (
	"bytes"
	"testing"

	"plshuffle/internal/rng"
	"plshuffle/internal/tensor"
)

func trainedModel(t *testing.T) (*Sequential, *tensor.Matrix, []int) {
	t.Helper()
	r := rng.New(51)
	spec := ModelSpec{Name: "ckpt", InputDim: 8, Hidden: []int{16, 8}, Classes: 4, BatchNorm: true}
	model, err := spec.Build(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, labels := smallBatch(r, 32, 8, 4)
	opt := NewSGD(0.9, 1e-4)
	var ce SoftmaxCrossEntropy
	for i := 0; i < 10; i++ {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
		opt.Step(model.Params(), 0.1)
	}
	return model, x, labels
}

func TestSaveLoadRoundtrip(t *testing.T) {
	model, x, labels := trainedModel(t)
	want := model.Forward(x, false)

	var buf bytes.Buffer
	if err := SaveWeights(&buf, model); err != nil {
		t.Fatal(err)
	}
	spec := ModelSpec{Name: "ckpt", InputDim: 8, Hidden: []int{16, 8}, Classes: 4, BatchNorm: true}
	fresh, err := spec.Build(99, 98) // different init: must be overwritten
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(&buf, fresh); err != nil {
		t.Fatal(err)
	}
	got := fresh.Forward(x, false)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("restored model diverges at output %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	_ = labels
}

func TestSaveIncludesRunningStats(t *testing.T) {
	model, _, _ := trainedModel(t)
	var bn *BatchNorm
	for _, l := range model.Layers {
		if b, ok := l.(*BatchNorm); ok {
			bn = b
			break
		}
	}
	if bn == nil {
		t.Fatal("no BatchNorm layer")
	}
	if bn.RunMean[0] == 0 && bn.RunMean[1] == 0 {
		t.Fatal("running stats untouched; test setup broken")
	}
	var buf bytes.Buffer
	if err := SaveWeights(&buf, model); err != nil {
		t.Fatal(err)
	}
	spec := ModelSpec{Name: "ckpt", InputDim: 8, Hidden: []int{16, 8}, Classes: 4, BatchNorm: true}
	fresh, _ := spec.Build(7, 7)
	if err := LoadWeights(&buf, fresh); err != nil {
		t.Fatal(err)
	}
	var fbn *BatchNorm
	for _, l := range fresh.Layers {
		if b, ok := l.(*BatchNorm); ok {
			fbn = b
			break
		}
	}
	for j := range bn.RunMean {
		if fbn.RunMean[j] != bn.RunMean[j] || fbn.RunVar[j] != bn.RunVar[j] {
			t.Fatal("running statistics not restored")
		}
	}
}

func TestLoadRejectsArchitectureMismatch(t *testing.T) {
	model, _, _ := trainedModel(t)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, model); err != nil {
		t.Fatal(err)
	}
	// Different hidden width.
	other, _ := ModelSpec{Name: "other", InputDim: 8, Hidden: []int{32}, Classes: 4, BatchNorm: true}.Build(1, 1)
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
	// Different norm (tensor names differ).
	gn, _ := ModelSpec{Name: "gn", InputDim: 8, Hidden: []int{16, 8}, Classes: 4, Norm: NormGroup}.Build(1, 1)
	if err := LoadWeights(bytes.NewReader(buf.Bytes()), gn); err == nil {
		t.Fatal("different normalization accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	model, _, _ := trainedModel(t)
	if err := LoadWeights(bytes.NewReader([]byte("not a checkpoint")), model); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if err := SaveWeights(&buf, model); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	fresh, _ := ModelSpec{Name: "ckpt", InputDim: 8, Hidden: []int{16, 8}, Classes: 4, BatchNorm: true}.Build(1, 1)
	if err := LoadWeights(bytes.NewReader(truncated), fresh); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestSaveDeterministic(t *testing.T) {
	model, _, _ := trainedModel(t)
	var a, b bytes.Buffer
	if err := SaveWeights(&a, model); err != nil {
		t.Fatal(err)
	}
	if err := SaveWeights(&b, model); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("checkpoint bytes are not deterministic")
	}
}
