package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Stateful is implemented by layers that carry non-parameter state which a
// checkpoint must include (batch-norm running statistics).
type Stateful interface {
	State() []Param
}

// State exposes the running statistics so checkpoints capture them; the
// gradient slots are nil (running stats receive no gradients).
func (l *BatchNorm) State() []Param {
	return []Param{
		{Name: "bn.run_mean", W: l.RunMean},
		{Name: "bn.run_var", W: l.RunVar},
	}
}

// weightsMagic identifies the checkpoint format ("PLSW" + version 1).
var weightsMagic = [5]byte{'P', 'L', 'S', 'W', 1}

// checkpointTensors lists every tensor a checkpoint stores: all learnable
// parameters plus all layer state, in layer order.
func checkpointTensors(model *Sequential) []Param {
	var out []Param
	for _, l := range model.Layers {
		out = append(out, l.Params()...)
		if s, ok := l.(Stateful); ok {
			out = append(out, s.State()...)
		}
	}
	return out
}

// SaveWeights writes the model's weights and layer state (including
// batch-norm running statistics) in a stable little-endian binary format.
func SaveWeights(w io.Writer, model *Sequential) error {
	if _, err := w.Write(weightsMagic[:]); err != nil {
		return fmt.Errorf("nn: SaveWeights: %w", err)
	}
	tensors := checkpointTensors(model)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(tensors))); err != nil {
		return fmt.Errorf("nn: SaveWeights: %w", err)
	}
	for _, p := range tensors {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return fmt.Errorf("nn: SaveWeights: %w", err)
		}
		if _, err := w.Write(name); err != nil {
			return fmt.Errorf("nn: SaveWeights: %w", err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.W))); err != nil {
			return fmt.Errorf("nn: SaveWeights: %w", err)
		}
		buf := make([]byte, 4*len(p.W))
		for i, v := range p.W {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("nn: SaveWeights: %w", err)
		}
	}
	return nil
}

// LoadWeights restores a checkpoint written by SaveWeights into the model.
// The model must have the same architecture: tensor count, names, and
// lengths are all verified before anything is modified would be ideal, but
// streaming requires incremental checks — on mismatch an error is returned
// and the model may be partially updated; rebuild it before retrying.
func LoadWeights(r io.Reader, model *Sequential) error {
	var magic [5]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: LoadWeights: reading header: %w", err)
	}
	if magic != weightsMagic {
		return fmt.Errorf("nn: LoadWeights: bad magic %q (not a plshuffle checkpoint or wrong version)", magic)
	}
	tensors := checkpointTensors(model)
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: LoadWeights: %w", err)
	}
	if int(count) != len(tensors) {
		return fmt.Errorf("nn: LoadWeights: checkpoint has %d tensors, model has %d", count, len(tensors))
	}
	for _, p := range tensors {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: LoadWeights: %w", err)
		}
		if nameLen > 1024 {
			return fmt.Errorf("nn: LoadWeights: implausible name length %d (corrupt checkpoint)", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return fmt.Errorf("nn: LoadWeights: %w", err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: LoadWeights: tensor name %q does not match model's %q (architecture mismatch)", name, p.Name)
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("nn: LoadWeights: %w", err)
		}
		if int(n) != len(p.W) {
			return fmt.Errorf("nn: LoadWeights: tensor %q has %d values, model expects %d", p.Name, n, len(p.W))
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("nn: LoadWeights: reading %q: %w", p.Name, err)
		}
		for i := range p.W {
			p.W[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}
