package nn

import "fmt"

// DefaultGradBucketBytes is the default size cap for one gradient bucket
// (float32 elements × 4 bytes). It is deliberately small relative to DDP's
// 25 MB default because the proxy models are small: the cap should yield a
// handful of buckets per model so the first all-reduces launch while most
// of the backward pass is still ahead of them.
const DefaultGradBucketBytes = 32 << 10

// GradBucket is one gradient bucket: a contiguous run of parameter tensors
// covering params[FirstParam:LastParam] of the model's Params() order and
// the flat element range [Lo, Hi) of the FlattenGrads layout. The bucket
// becomes ready — every one of its gradients written, never to change
// again this pass — the moment backward completes layer ReadyLayer (the
// earliest model layer contributing parameters to the bucket).
type GradBucket struct {
	FirstParam, LastParam int // param index range in Params() order
	Lo, Hi                int // flat element offsets in FlattenGrads layout
	ReadyLayer            int // Layers index whose backward completion readies the bucket
}

// Elems returns the number of float32 elements in the bucket.
func (b GradBucket) Elems() int { return b.Hi - b.Lo }

// BucketPlan partitions a model's parameters into size-capped gradient
// buckets in reverse-layer order: Buckets[0] holds the deepest layers'
// parameters (the first gradients backward produces), so its all-reduce
// can launch while earlier layers are still computing. Because the grouped
// layers are contiguous, every bucket is a contiguous range of both the
// Params() order and the flat FlattenGrads layout, and the buckets tile
// both exactly.
type BucketPlan struct {
	Buckets []GradBucket // launch order: reverse-layer
	NumEl   int          // total flat elements (== len(FlattenGrads result))

	// ready[i] lists the bucket indices that become ready when backward
	// completes Layers[i]; nil for layers that close no bucket.
	ready [][]int
}

// NewBucketPlan builds the bucket partition for model with the given
// per-bucket byte cap (0 = DefaultGradBucketBytes). A single layer whose
// parameters exceed the cap gets a bucket of its own — buckets never split
// a parameter tensor, which is what keeps per-tensor optimizer state
// (LARS/LAMB trust ratios) and the flat layout aligned.
func NewBucketPlan(model *Sequential, capBytes int) *BucketPlan {
	if capBytes <= 0 {
		capBytes = DefaultGradBucketBytes
	}
	capElems := capBytes / 4
	if capElems < 1 {
		capElems = 1
	}

	// Per-layer spans over the forward Params()/FlattenGrads layout.
	type span struct {
		layer               int
		firstParam, nParams int
		lo, elems           int
	}
	var spans []span
	paramIdx, off := 0, 0
	for li, l := range model.Layers {
		ps := l.Params()
		if len(ps) == 0 {
			continue
		}
		sp := span{layer: li, firstParam: paramIdx, nParams: len(ps), lo: off}
		for _, p := range ps {
			sp.elems += len(p.G)
		}
		paramIdx += len(ps)
		off += sp.elems
		spans = append(spans, sp)
	}

	plan := &BucketPlan{NumEl: off, ready: make([][]int, len(model.Layers))}
	// Walk layers in reverse, greedily filling buckets up to the cap.
	var cur *GradBucket
	flush := func() {
		if cur == nil {
			return
		}
		bi := len(plan.Buckets)
		plan.Buckets = append(plan.Buckets, *cur)
		plan.ready[cur.ReadyLayer] = append(plan.ready[cur.ReadyLayer], bi)
		cur = nil
	}
	for i := len(spans) - 1; i >= 0; i-- {
		sp := spans[i]
		if cur != nil && cur.Elems()+sp.elems > capElems {
			flush()
		}
		if cur == nil {
			cur = &GradBucket{
				FirstParam: sp.firstParam, LastParam: sp.firstParam + sp.nParams,
				Lo: sp.lo, Hi: sp.lo + sp.elems,
				ReadyLayer: sp.layer,
			}
			continue
		}
		// Prepend the earlier layer: buckets stay contiguous because we walk
		// reverse-adjacent spans.
		cur.FirstParam = sp.firstParam
		cur.Lo = sp.lo
		cur.ReadyLayer = sp.layer
	}
	flush()
	return plan
}

// ReadyAt returns the indices of the buckets that become ready when
// backward completes Layers[layer] (usually zero or one). The returned
// slice is owned by the plan; do not mutate it.
func (p *BucketPlan) ReadyAt(layer int) []int {
	if layer < 0 || layer >= len(p.ready) {
		return nil
	}
	return p.ready[layer]
}

// Validate checks the plan against a parameter set: buckets must tile both
// the param order and the flat layout exactly, in reverse order. It exists
// for tests and for defensive checks at trainer setup.
func (p *BucketPlan) Validate(params []Param) error {
	total := 0
	for _, pr := range params {
		total += len(pr.G)
	}
	if total != p.NumEl {
		return fmt.Errorf("nn: bucket plan covers %d elements, params have %d", p.NumEl, total)
	}
	nextParam, nextHi := len(params), p.NumEl
	for i, b := range p.Buckets {
		if b.LastParam != nextParam || b.Hi != nextHi {
			return fmt.Errorf("nn: bucket %d ends at (param %d, el %d), want (param %d, el %d)",
				i, b.LastParam, b.Hi, nextParam, nextHi)
		}
		if b.FirstParam >= b.LastParam || b.Lo >= b.Hi {
			return fmt.Errorf("nn: bucket %d is empty", i)
		}
		elems := 0
		for _, pr := range params[b.FirstParam:b.LastParam] {
			elems += len(pr.G)
		}
		if elems != b.Elems() {
			return fmt.Errorf("nn: bucket %d spans %d elements but its params hold %d", i, b.Elems(), elems)
		}
		nextParam, nextHi = b.FirstParam, b.Lo
	}
	if nextParam != 0 || nextHi != 0 {
		return fmt.Errorf("nn: buckets leave params[0:%d] (elements [0:%d)) uncovered", nextParam, nextHi)
	}
	return nil
}
