package nn

import (
	"bytes"
	"testing"

	"plshuffle/internal/rng"
	"plshuffle/internal/tensor"
)

// stateSpec is the architecture used by the optimizer/RNG round-trip tests:
// batch-norm for Stateful coverage plus dropout so the model carries a live
// RNG stream.
var stateSpec = ModelSpec{Name: "state", InputDim: 8, Hidden: []int{16, 8}, Classes: 4, BatchNorm: true, Dropout: 0.25}

func stateOptimizers() map[string]func() Optimizer {
	return map[string]func() Optimizer{
		"sgd":  func() Optimizer { return NewSGD(0.9, 1e-4) },
		"lamb": func() Optimizer { return NewLAMB(1e-4) },
		"lars": func() Optimizer { return NewLARS(0.9, 1e-4, 0.01) },
	}
}

// trainSteps advances (model, opt) n steps on a fixed batch, exercising the
// dropout RNG stream via train-mode forwards.
func trainSteps(model *Sequential, opt Optimizer, x *tensor.Matrix, labels []int, n int, partial bool) {
	var ce SoftmaxCrossEntropy
	for i := 0; i < n; i++ {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
		params := model.Params()
		if partial {
			// Tile the step in two buckets, as the overlapped gradient sync
			// does; the snapshot taken between iterations must still match.
			mid := len(params) / 2
			opt.StepPartial(params, 0, mid, 0.1)
			opt.StepPartial(params, mid, len(params), 0.1)
		} else {
			opt.Step(params, 0.1)
		}
	}
}

// TestOptimizerStateRoundTrip is the satellite property test: for every
// optimizer kind, a mid-run snapshot (weights + moments + RNG cursors)
// restored into a freshly built world must continue bitwise-identically to
// the uninterrupted run — the same property the checkpoint/resume layer
// asserts end to end.
func TestOptimizerStateRoundTrip(t *testing.T) {
	for name, mk := range stateOptimizers() {
		for _, partial := range []bool{false, true} {
			mode := map[bool]string{false: "flat", true: "partial"}[partial]
			t.Run(name+"/"+mode, func(t *testing.T) {
				r := rng.New(97)
				x, labels := smallBatch(r, 32, 8, 4)

				model, err := stateSpec.Build(1, 2)
				if err != nil {
					t.Fatal(err)
				}
				opt := mk()
				trainSteps(model, opt, x, labels, 7, partial)

				// Snapshot at the iteration boundary.
				var wBuf, oBuf bytes.Buffer
				if err := SaveWeights(&wBuf, model); err != nil {
					t.Fatal(err)
				}
				if err := SaveOptimizerState(&oBuf, opt); err != nil {
					t.Fatal(err)
				}
				rngStates := RNGStates(model)
				if len(rngStates) == 0 {
					t.Fatal("dropout model exposes no RNG streams; test setup broken")
				}

				// Uninterrupted reference.
				trainSteps(model, opt, x, labels, 5, partial)
				want := checkpointTensors(model)

				// Resume into a differently seeded fresh world.
				fresh, err := stateSpec.Build(99, 98)
				if err != nil {
					t.Fatal(err)
				}
				if err := LoadWeights(&wBuf, fresh); err != nil {
					t.Fatal(err)
				}
				if err := SetRNGStates(fresh, rngStates); err != nil {
					t.Fatal(err)
				}
				fopt := mk()
				if err := LoadOptimizerState(&oBuf, fopt); err != nil {
					t.Fatal(err)
				}
				trainSteps(fresh, fopt, x, labels, 5, partial)
				got := checkpointTensors(fresh)

				for i := range want {
					for j := range want[i].W {
						if got[i].W[j] != want[i].W[j] {
							t.Fatalf("resumed run diverges at tensor %q[%d]: %v vs %v",
								want[i].Name, j, got[i].W[j], want[i].W[j])
						}
					}
				}
			})
		}
	}
}

// TestOptimizerStateLazyNil pins the epoch-0 case: a snapshot taken before
// any Step records the lazily initialized state as absent, and restores as
// absent.
func TestOptimizerStateLazyNil(t *testing.T) {
	for name, mk := range stateOptimizers() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := SaveOptimizerState(&buf, mk()); err != nil {
				t.Fatal(err)
			}
			fresh := mk()
			if err := LoadOptimizerState(bytes.NewReader(buf.Bytes()), fresh); err != nil {
				t.Fatal(err)
			}
			switch o := fresh.(type) {
			case *SGD:
				if o.velocity != nil {
					t.Fatal("nil velocity materialized through the round trip")
				}
			case *LAMB:
				if o.m != nil || o.v != nil || o.step != 0 {
					t.Fatal("nil moments materialized through the round trip")
				}
			case *LARS:
				if o.velocity != nil || o.is1D != nil {
					t.Fatal("nil velocity materialized through the round trip")
				}
			}
		})
	}
}

func TestOptimizerStateKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveOptimizerState(&buf, NewSGD(0.9, 0)); err != nil {
		t.Fatal(err)
	}
	if err := LoadOptimizerState(bytes.NewReader(buf.Bytes()), NewLAMB(0)); err == nil {
		t.Fatal("SGD snapshot accepted by a LAMB optimizer")
	}
	if err := LoadOptimizerState(bytes.NewReader([]byte("garbage....")), NewSGD(0.9, 0)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSetRNGStatesCountMismatch(t *testing.T) {
	model, err := stateSpec.Build(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetRNGStates(model, nil); err == nil {
		t.Fatal("missing RNG states accepted for a dropout model")
	}
	states := RNGStates(model)
	plain, err := ModelSpec{Name: "plain", InputDim: 8, Hidden: []int{16}, Classes: 4}.Build(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetRNGStates(plain, states); err == nil {
		t.Fatal("surplus RNG states accepted for a dropout-free model")
	}
}

// FuzzOptimizerState pins the decoder against attacker-shaped bytes, like
// the wire codec fuzzers: arbitrary input may error but must never panic or
// over-allocate, and a valid snapshot must round-trip.
func FuzzOptimizerState(f *testing.F) {
	r := rng.New(3)
	x, labels := smallBatch(r, 8, 8, 4)
	for _, mk := range stateOptimizers() {
		model, err := stateSpec.Build(1, 2)
		if err != nil {
			f.Fatal(err)
		}
		opt := mk()
		trainSteps(model, opt, x, labels, 3, false)
		var buf bytes.Buffer
		if err := SaveOptimizerState(&buf, opt); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte("PLSO\x01\x02\x01\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, b []byte) {
		for _, mk := range stateOptimizers() {
			_ = LoadOptimizerState(bytes.NewReader(b), mk())
		}
	})
}
