package nn

import (
	"math"
	"testing"

	"plshuffle/internal/rng"
	"plshuffle/internal/tensor"
)

// lossOf runs a forward pass and returns the mean cross-entropy loss.
func lossOf(model *Sequential, x *tensor.Matrix, labels []int, train bool) float64 {
	var ce SoftmaxCrossEntropy
	return ce.Forward(model.Forward(x, train), labels)
}

// gradCheck compares analytic gradients against central differences for
// every parameter of the model. BatchNorm in training mode recomputes batch
// statistics on every forward, which central differences capture, so the
// check covers it too.
func gradCheck(t *testing.T, model *Sequential, x *tensor.Matrix, labels []int) {
	t.Helper()
	var ce SoftmaxCrossEntropy
	logits := model.Forward(x, true)
	ce.Forward(logits, labels)
	model.Backward(ce.Backward())

	const eps = 1e-2
	params := model.Params()
	checked := 0
	for pi, p := range params {
		// Probe a handful of coordinates per tensor to keep runtime sane.
		stride := len(p.W)/7 + 1
		for j := 0; j < len(p.W); j += stride {
			orig := p.W[j]
			p.W[j] = orig + eps
			lPlus := lossOf(model, x, labels, true)
			p.W[j] = orig - eps
			lMinus := lossOf(model, x, labels, true)
			p.W[j] = orig
			numeric := (lPlus - lMinus) / (2 * eps)
			analytic := float64(p.G[j])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1e-3, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 0.08 {
				t.Errorf("param %d (%s) coord %d: analytic %v vs numeric %v", pi, p.Name, j, analytic, numeric)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("gradCheck probed no coordinates")
	}
}

func smallBatch(r *rng.Rand, n, dim, classes int) (*tensor.Matrix, []int) {
	x := tensor.New(n, dim)
	x.Randn(r, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = r.Intn(classes)
	}
	return x, labels
}

func TestLinearForwardKnown(t *testing.T) {
	l := &Linear{In: 2, Out: 2,
		W:  tensor.FromSlice(2, 2, []float32{1, 2, 3, 4}),
		B:  []float32{10, 20},
		GW: tensor.New(2, 2), GB: make([]float32, 2)}
	x := tensor.FromSlice(1, 2, []float32{1, 1})
	y := l.Forward(x, true)
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("Linear forward got %v", y.Data)
	}
}

func TestGradCheckLinearOnly(t *testing.T) {
	r := rng.New(11)
	model := NewSequential(NewLinear(5, 4, r), NewLinear(4, 3, r))
	x, labels := smallBatch(r, 6, 5, 3)
	gradCheck(t, model, x, labels)
}

func TestGradCheckWithReLU(t *testing.T) {
	r := rng.New(12)
	model := NewSequential(NewLinear(5, 8, r), NewReLU(), NewLinear(8, 3, r))
	x, labels := smallBatch(r, 6, 5, 3)
	gradCheck(t, model, x, labels)
}

func TestGradCheckWithBatchNorm(t *testing.T) {
	r := rng.New(13)
	model := NewSequential(NewLinear(5, 6, r), NewBatchNorm(6), NewReLU(), NewLinear(6, 3, r))
	x, labels := smallBatch(r, 8, 5, 3)
	gradCheck(t, model, x, labels)
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU()
	x := tensor.FromSlice(1, 4, []float32{-1, 0, 2, -3})
	y := l.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("ReLU forward got %v", y.Data)
		}
	}
	d := l.Backward(tensor.FromSlice(1, 4, []float32{1, 1, 1, 1}))
	wantd := []float32{0, 0, 1, 0}
	for i := range wantd {
		if d.Data[i] != wantd[i] {
			t.Fatalf("ReLU backward got %v", d.Data)
		}
	}
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	r := rng.New(14)
	bn := NewBatchNorm(4)
	x := tensor.New(64, 4)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()*3 + 7 // mean 7, std 3
	}
	y := bn.Forward(x, true)
	mean := y.ColMean()
	for j, m := range mean {
		if math.Abs(float64(m)) > 1e-4 {
			t.Errorf("feature %d mean %v, want ~0", j, m)
		}
	}
	variance := make([]float64, 4)
	for i := 0; i < y.Rows; i++ {
		for j, v := range y.Row(i) {
			variance[j] += float64(v) * float64(v)
		}
	}
	for j := range variance {
		variance[j] /= float64(y.Rows)
		if math.Abs(variance[j]-1) > 0.01 {
			t.Errorf("feature %d variance %v, want ~1", j, variance[j])
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	r := rng.New(15)
	bn := NewBatchNorm(1)
	for step := 0; step < 200; step++ {
		x := tensor.New(128, 1)
		for i := range x.Data {
			x.Data[i] = r.NormFloat32()*2 + 5
		}
		bn.Forward(x, true)
	}
	if math.Abs(float64(bn.RunMean[0])-5) > 0.2 {
		t.Errorf("running mean %v, want ~5", bn.RunMean[0])
	}
	if math.Abs(float64(bn.RunVar[0])-4) > 0.5 {
		t.Errorf("running var %v, want ~4", bn.RunVar[0])
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(1)
	bn.RunMean[0] = 10
	bn.RunVar[0] = 4
	x := tensor.FromSlice(1, 1, []float32{12})
	y := bn.Forward(x, false)
	// (12-10)/sqrt(4+eps) ~= 1
	if math.Abs(float64(y.Data[0])-1) > 1e-3 {
		t.Fatalf("eval BN output %v, want ~1", y.Data[0])
	}
}

func TestBatchNormLocalStatsBias(t *testing.T) {
	// The mechanism behind the paper's LS degradation: two workers with
	// differently-biased local data accumulate different running stats.
	mk := func(offset float32) *BatchNorm {
		r := rng.New(uint64(offset) + 100)
		bn := NewBatchNorm(1)
		for step := 0; step < 100; step++ {
			x := tensor.New(32, 1)
			for i := range x.Data {
				x.Data[i] = r.NormFloat32() + offset
			}
			bn.Forward(x, true)
		}
		return bn
	}
	a, b := mk(0), mk(5)
	if math.Abs(float64(a.RunMean[0]-b.RunMean[0])) < 3 {
		t.Fatalf("expected diverged running means, got %v vs %v", a.RunMean[0], b.RunMean[0])
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	r := rng.New(16)
	d := NewDropout(0.5, r)
	x := tensor.New(100, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x, true)
	zeros := 0
	var sum float64
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
		sum += float64(v)
	}
	frac := float64(zeros) / float64(len(y.Data))
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("dropout zeroed %v of activations, want ~0.5", frac)
	}
	// Inverted dropout keeps the expectation: mean should stay ~1.
	mean := sum / float64(len(y.Data))
	if math.Abs(mean-1) > 0.1 {
		t.Errorf("dropout mean %v, want ~1", mean)
	}
	// Eval mode is identity.
	ye := d.Forward(x, false)
	for i := range ye.Data {
		if ye.Data[i] != 1 {
			t.Fatal("dropout eval mode is not identity")
		}
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	r := rng.New(17)
	d := NewDropout(0.3, r)
	x := tensor.New(10, 10)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x, true)
	ones := tensor.New(10, 10)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	g := d.Backward(ones)
	for i := range g.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	var ce SoftmaxCrossEntropy
	logits := tensor.FromSlice(1, 2, []float32{0, 0})
	loss := ce.Forward(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("uniform logits loss = %v, want ln2", loss)
	}
	grad := ce.Backward()
	// probs = [.5,.5]; grad = [.5-1, .5]/1
	if math.Abs(float64(grad.Data[0])+0.5) > 1e-6 || math.Abs(float64(grad.Data[1])-0.5) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	var ce SoftmaxCrossEntropy
	logits := tensor.FromSlice(1, 3, []float32{1000, 999, -1000})
	loss := ce.Forward(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v with large logits", loss)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 0})
	if a := Accuracy(logits, []int{0, 1, 1}); math.Abs(a-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", a)
	}
	if a := Accuracy(tensor.New(0, 2), nil); a != 0 {
		t.Fatalf("empty accuracy = %v", a)
	}
}

func TestSGDQuadraticConvergence(t *testing.T) {
	// Minimize f(w) = (w-3)^2 by hand-fed gradients.
	w := []float32{0}
	g := []float32{0}
	p := []Param{{Name: "w", W: w, G: g}}
	opt := NewSGD(0.9, 0)
	for i := 0; i < 200; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(p, 0.05)
	}
	if math.Abs(float64(w[0])-3) > 1e-3 {
		t.Fatalf("SGD converged to %v, want 3", w[0])
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	w := []float32{1}
	g := []float32{0}
	p := []Param{{Name: "w", W: w, G: g}}
	opt := NewSGD(0, 0.5)
	opt.Step(p, 0.1)
	// w -= lr * wd * w => 1 - 0.1*0.5 = 0.95
	if math.Abs(float64(w[0])-0.95) > 1e-6 {
		t.Fatalf("weight decay step got %v, want 0.95", w[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	w := []float32{0}
	g := []float32{1}
	p := []Param{{Name: "w", W: w, G: g}}
	opt := NewSGD(0.9, 0)
	opt.Step(p, 1) // v=1, w=-1
	opt.Step(p, 1) // v=1.9, w=-2.9
	if math.Abs(float64(w[0])+2.9) > 1e-6 {
		t.Fatalf("momentum got %v, want -2.9", w[0])
	}
}

func TestLARSConvergesOnQuadratic(t *testing.T) {
	w := []float32{10}
	g := []float32{0}
	p := []Param{{Name: "linear.W", W: w, G: g}}
	opt := NewLARS(0.9, 0, 0.01)
	for i := 0; i < 500; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(p, 1.0)
	}
	if math.Abs(float64(w[0])-3) > 0.1 {
		t.Fatalf("LARS converged to %v, want ~3", w[0])
	}
}

func TestLARSSkipsBiasTrustRatio(t *testing.T) {
	w := []float32{1}
	g := []float32{1}
	p := []Param{{Name: "linear.b", W: w, G: g}}
	opt := NewLARS(0, 0.5, 0.001)
	opt.Step(p, 0.1)
	// For 1-D params LARS falls back to plain SGD without weight decay:
	// w -= lr * g = 1 - 0.1
	if math.Abs(float64(w[0])-0.9) > 1e-6 {
		t.Fatalf("LARS bias step got %v, want 0.9", w[0])
	}
}

func TestSchedules(t *testing.T) {
	c := Constant{Base: 0.1}
	if c.LR(0) != 0.1 || c.LR(100) != 0.1 {
		t.Fatal("Constant schedule not constant")
	}
	sd := StepDecay{Base: 1, Gamma: 0.1, Milestones: []float64{30, 60}}
	if sd.LR(0) != 1 || sd.LR(29.9) != 1 {
		t.Fatal("StepDecay before milestone wrong")
	}
	if math.Abs(float64(sd.LR(30))-0.1) > 1e-6 || math.Abs(float64(sd.LR(60))-0.01) > 1e-6 {
		t.Fatalf("StepDecay milestones wrong: %v %v", sd.LR(30), sd.LR(60))
	}
	cos := Cosine{Base: 1, Min: 0, Total: 100}
	if cos.LR(0) != 1 {
		t.Fatalf("Cosine start = %v", cos.LR(0))
	}
	if math.Abs(float64(cos.LR(50))-0.5) > 1e-6 {
		t.Fatalf("Cosine midpoint = %v", cos.LR(50))
	}
	if cos.LR(100) != 0 || cos.LR(200) != 0 {
		t.Fatal("Cosine end wrong")
	}
	w := Warmup{Inner: Constant{Base: 1}, Epochs: 5, StartFactor: 0.1}
	if math.Abs(float64(w.LR(0))-0.1) > 1e-6 {
		t.Fatalf("Warmup start = %v", w.LR(0))
	}
	if w.LR(5) != 1 || w.LR(10) != 1 {
		t.Fatal("Warmup end wrong")
	}
	if w.LR(2.5) <= 0.1 || w.LR(2.5) >= 1 {
		t.Fatalf("Warmup midpoint = %v", w.LR(2.5))
	}
}

func TestModelSpecValidate(t *testing.T) {
	cases := []ModelSpec{
		{Name: "bad-input", InputDim: 0, Classes: 2},
		{Name: "bad-classes", InputDim: 2, Classes: 1},
		{Name: "bad-hidden", InputDim: 2, Classes: 2, Hidden: []int{0}},
		{Name: "bad-dropout", InputDim: 2, Classes: 2, Dropout: 1.5},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("spec %q validated but should not", c.Name)
		}
	}
	good := ModelSpec{Name: "ok", InputDim: 4, Classes: 3, Hidden: []int{8}}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestModelBuildDeterministicInit(t *testing.T) {
	spec := ModelSpec{Name: "t", InputDim: 6, Hidden: []int{8, 4}, Classes: 3, BatchNorm: true}
	a, err := spec.Build(42, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build(42, 2) // different dropout seed must not matter
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatalf("same init seed produced different weights at %d/%d", i, j)
			}
		}
	}
}

func TestProxySpecsExist(t *testing.T) {
	for _, name := range ProxyNames() {
		s, err := ProxySpec(name)
		if err != nil {
			t.Fatalf("ProxySpec(%q): %v", name, err)
		}
		m, err := s.WithData(16, 10).Build(1, 2)
		if err != nil {
			t.Fatalf("building %q: %v", name, err)
		}
		if m.NumParams() == 0 {
			t.Fatalf("%q has no parameters", name)
		}
	}
	if _, err := ProxySpec("nope"); err == nil {
		t.Fatal("unknown proxy name did not error")
	}
}

func TestFlattenUnflattenRoundtrip(t *testing.T) {
	r := rng.New(20)
	spec := ModelSpec{Name: "t", InputDim: 5, Hidden: []int{7}, Classes: 3, BatchNorm: true}
	m, err := spec.Build(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	for _, p := range params {
		for j := range p.G {
			p.G[j] = r.NormFloat32()
		}
	}
	flat := FlattenGrads(params, nil)
	if len(flat) != m.NumParams() {
		t.Fatalf("flat length %d, want %d", len(flat), m.NumParams())
	}
	saved := append([]float32(nil), flat...)
	for _, p := range params {
		for j := range p.G {
			p.G[j] = 0
		}
	}
	UnflattenGrads(params, saved)
	flat2 := FlattenGrads(params, flat)
	for i := range saved {
		if flat2[i] != saved[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func TestCopyWeights(t *testing.T) {
	spec := ModelSpec{Name: "t", InputDim: 4, Hidden: []int{5}, Classes: 2}
	a, _ := spec.Build(1, 1)
	b, _ := spec.Build(2, 2)
	CopyWeights(b.Params(), a.Params())
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatal("CopyWeights did not copy")
			}
		}
	}
}

// TestEndToEndLearning trains a small MLP on a linearly separable synthetic
// problem and requires high training accuracy — the learning smoke test.
func TestEndToEndLearning(t *testing.T) {
	r := rng.New(7)
	const n, dim, classes = 256, 8, 4
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim; j++ {
			v := r.NormFloat32() * 0.3
			if j == c {
				v += 2
			}
			x.Set(i, j, v)
		}
	}
	spec := ModelSpec{Name: "t", InputDim: dim, Hidden: []int{32}, Classes: classes, BatchNorm: true}
	model, err := spec.Build(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(0.9, 1e-4)
	var ce SoftmaxCrossEntropy
	for epoch := 0; epoch < 30; epoch++ {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
		opt.Step(model.Params(), 0.1)
	}
	acc := Accuracy(model.Forward(x, false), labels)
	if acc < 0.95 {
		t.Fatalf("end-to-end training accuracy %v, want >= 0.95", acc)
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	r := rng.New(1)
	spec := ModelSpec{Name: "bench", InputDim: 64, Hidden: []int{128, 128, 64}, Classes: 32, BatchNorm: true}
	model, err := spec.Build(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	x, labels := smallBatch(r, 32, 64, 32)
	var ce SoftmaxCrossEntropy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
	}
}

func TestLAMBConvergesOnQuadratic(t *testing.T) {
	w := []float32{10}
	g := []float32{0}
	p := []Param{{Name: "linear.W", W: w, G: g}}
	opt := NewLAMB(0)
	for i := 0; i < 400; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(p, 0.05)
	}
	if math.Abs(float64(w[0])-3) > 0.2 {
		t.Fatalf("LAMB converged to %v, want ~3", w[0])
	}
}

func TestLAMBTrainsModel(t *testing.T) {
	r := rng.New(61)
	const n, dim, classes = 256, 8, 4
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim; j++ {
			v := r.NormFloat32() * 0.3
			if j == c {
				v += 2
			}
			x.Set(i, j, v)
		}
	}
	spec := ModelSpec{Name: "lamb", InputDim: dim, Hidden: []int{32}, Classes: classes, BatchNorm: true}
	model, err := spec.Build(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewLAMB(1e-4)
	var ce SoftmaxCrossEntropy
	for epoch := 0; epoch < 40; epoch++ {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
		opt.Step(model.Params(), 0.01)
	}
	if acc := Accuracy(model.Forward(x, false), labels); acc < 0.9 {
		t.Fatalf("LAMB training accuracy %v", acc)
	}
}
