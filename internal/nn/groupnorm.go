package nn

import (
	"fmt"
	"math"

	"plshuffle/internal/tensor"
	"plshuffle/internal/tensor/arena"
)

// GroupNorm normalizes each sample's features within groups of channels,
// independently of the mini-batch — the alternative Section IV-A.1
// suggests for partial local shuffling: "normalization methods that are
// effective at smaller number of samples per worker, e.g. group
// normalization, could potentially be an alternative for effective
// normalization in partial local shuffling" (Wu & He, ECCV 2018).
//
// Because the statistics are per-sample, group normalization has no batch
// statistics to bias and no running estimates to diverge across workers:
// local shuffling with GroupNorm should not suffer the batch-norm
// degradation, which the norm-ablation experiment verifies.
type GroupNorm struct {
	Dim    int
	Groups int
	Gamma  []float32
	Beta   []float32
	GGamma []float32
	GBeta  []float32
	Eps    float32

	// cached for backward
	xhat   *tensor.Matrix
	invStd []float32 // per (row, group), row-major

	// reusable workspaces
	out   *tensor.Matrix
	dx    *tensor.Matrix
	arena *arena.Arena
}

// SetArena moves the batch-shaped workspaces into a (nil detaches); see
// ArenaUser.
func (l *GroupNorm) SetArena(a *arena.Arena) { l.arena = a }

// NewGroupNorm creates a GroupNorm layer over dim features in the given
// number of groups; groups must divide dim.
func NewGroupNorm(dim, groups int) *GroupNorm {
	if groups <= 0 || dim%groups != 0 {
		panic(fmt.Sprintf("nn: NewGroupNorm(%d, %d): groups must divide dim", dim, groups))
	}
	gn := &GroupNorm{
		Dim:    dim,
		Groups: groups,
		Gamma:  make([]float32, dim),
		Beta:   make([]float32, dim),
		GGamma: make([]float32, dim),
		GBeta:  make([]float32, dim),
		Eps:    1e-5,
	}
	for i := range gn.Gamma {
		gn.Gamma[i] = 1
	}
	return gn
}

// Forward normalizes each row's groups to zero mean and unit variance;
// identical in training and inference mode (no batch coupling).
func (l *GroupNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != l.Dim {
		panic(fmt.Sprintf("nn: GroupNorm.Forward: input has %d features, want %d", x.Cols, l.Dim))
	}
	gsize := l.Dim / l.Groups
	l.out = tensor.EnsureShapeArena(l.arena, l.out, x.Rows, x.Cols)
	out := l.out
	l.xhat = tensor.EnsureShapeArena(l.arena, l.xhat, x.Rows, x.Cols)
	l.invStd = ensureVec(l.invStd, x.Rows*l.Groups)
	for i := 0; i < x.Rows; i++ {
		row, hrow, orow := x.Row(i), l.xhat.Row(i), out.Row(i)
		for g := 0; g < l.Groups; g++ {
			seg := row[g*gsize : (g+1)*gsize]
			var mean float32
			for _, v := range seg {
				mean += v
			}
			mean /= float32(gsize)
			var variance float32
			for _, v := range seg {
				d := v - mean
				variance += d * d
			}
			variance /= float32(gsize)
			inv := 1 / float32(math.Sqrt(float64(variance+l.Eps)))
			l.invStd[i*l.Groups+g] = inv
			for j := g * gsize; j < (g+1)*gsize; j++ {
				h := (row[j] - mean) * inv
				hrow[j] = h
				orow[j] = l.Gamma[j]*h + l.Beta[j]
			}
		}
	}
	return out
}

// Backward implements the per-group normalization gradient.
func (l *GroupNorm) Backward(dout *tensor.Matrix) *tensor.Matrix {
	gsize := l.Dim / l.Groups
	n := float32(gsize)
	l.dx = tensor.EnsureShapeArena(l.arena, l.dx, dout.Rows, dout.Cols)
	dx := l.dx
	for j := range l.GGamma {
		l.GGamma[j] = 0
		l.GBeta[j] = 0
	}
	for i := 0; i < dout.Rows; i++ {
		drow, hrow, xrow := dout.Row(i), l.xhat.Row(i), dx.Row(i)
		for j, d := range drow {
			l.GBeta[j] += d
			l.GGamma[j] += d * hrow[j]
		}
		for g := 0; g < l.Groups; g++ {
			var sumDy, sumDyXhat float32
			for j := g * gsize; j < (g+1)*gsize; j++ {
				dy := drow[j] * l.Gamma[j]
				sumDy += dy
				sumDyXhat += dy * hrow[j]
			}
			inv := l.invStd[i*l.Groups+g]
			for j := g * gsize; j < (g+1)*gsize; j++ {
				dy := drow[j] * l.Gamma[j]
				xrow[j] = inv / n * (n*dy - sumDy - hrow[j]*sumDyXhat)
			}
		}
	}
	return dx
}

// Params exposes gamma and beta with their gradients.
func (l *GroupNorm) Params() []Param {
	return []Param{
		{Name: "gn.gamma", W: l.Gamma, G: l.GGamma},
		{Name: "gn.beta", W: l.Beta, G: l.GBeta},
	}
}
