package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"plshuffle/internal/data"
)

func newDisk(t *testing.T, capacity int64) *Disk {
	t.Helper()
	d, err := NewDisk(filepath.Join(t.TempDir(), "samples"), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func diskSample(id int, bytes int64) data.Sample {
	return data.Sample{ID: id, Label: id % 3, Features: []float32{1, 2, float32(id)}, Bytes: bytes}
}

// diskSampleBytes is diskSample's real encoded on-disk size — what Used and
// the capacity check account, regardless of the simulated Bytes field.
var diskSampleBytes = int64(len(diskSample(0, 10).Encode()))

func TestDiskPutGetDelete(t *testing.T) {
	d := newDisk(t, 0)
	s := diskSample(7, 100)
	if err := d.Put(s); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Label != s.Label || got.Features[2] != 7 {
		t.Fatalf("Get returned %+v", got)
	}
	if !d.Has(7) || d.Has(8) {
		t.Fatal("Has wrong")
	}
	if d.Len() != 1 || d.Used() != diskSampleBytes {
		t.Fatalf("Len=%d Used=%d, want Used=%d (the real encoded size, not the simulated %d)",
			d.Len(), d.Used(), diskSampleBytes, s.Bytes)
	}
	// Used must agree with what the filesystem actually holds.
	fi, err := os.Stat(filepath.Join(d.dir, "7.sample"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != d.Used() {
		t.Fatalf("file holds %d bytes but Used reports %d", fi.Size(), d.Used())
	}
	if err := d.Delete(7); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 || d.Used() != 0 {
		t.Fatal("delete did not release")
	}
	if _, err := d.Get(7); err == nil {
		t.Fatal("Get after delete succeeded")
	}
}

func TestDiskFilesActuallyOnDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "x")
	d, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(diskSample(3, 10)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "3.sample" {
		t.Fatalf("directory contents: %v", entries)
	}
	if err := d.Delete(3); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatal("file not removed")
	}
}

func TestDiskCapacityAndDuplicates(t *testing.T) {
	// Capacity is enforced against real encoded sizes: room for one sample
	// file but not two, even though the simulated Bytes would fit many.
	d := newDisk(t, diskSampleBytes+diskSampleBytes/2)
	if err := d.Put(diskSample(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(diskSample(2, 10)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("overflow error = %v", err)
	}
	if err := d.Put(diskSample(1, 1)); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestDiskPeakAndIDs(t *testing.T) {
	d := newDisk(t, 0)
	for _, id := range []int{5, 1, 3} {
		if err := d.Put(diskSample(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete(5); err != nil {
		t.Fatal(err)
	}
	if d.Peak() != 3*diskSampleBytes || d.Used() != 2*diskSampleBytes {
		t.Fatalf("peak=%d used=%d, want %d/%d", d.Peak(), d.Used(), 3*diskSampleBytes, 2*diskSampleBytes)
	}
	ids := d.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestDiskClose(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	d, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(diskSample(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("Close did not remove the directory")
	}
}

func TestDiskCorruptFileSurfaces(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "k")
	d, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(diskSample(9, 10)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "9.sample"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(9); err == nil {
		t.Fatal("corrupt sample file accepted")
	}
}

func TestDiskNegativeCapacity(t *testing.T) {
	if _, err := NewDisk(t.TempDir(), -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}
