// Package store models the storage areas of Section III-A: each worker owns
// a "predefined storage area" (node-local SSD, memory, or a slice of the
// parallel file system) holding its designated samples, with byte-level
// capacity accounting.
//
// The capacity checks make the paper's storage argument executable: partial
// local shuffling needs at most (1+Q)·N/M per worker because exchanged
// samples are received before the transmitted ones are removed, while
// global shuffling needs the full dataset reachable by every worker.
package store

import (
	"fmt"
	"sort"

	"plshuffle/internal/data"
)

// ErrCapacity is returned (wrapped) when a Put would exceed the store's
// capacity.
var ErrCapacity = fmt.Errorf("store: capacity exceeded")

// Local is one worker's sample storage area. The zero value is unusable;
// create stores with NewLocal. Local is not safe for concurrent use: each
// worker goroutine owns exactly one store, matching the paper's model.
type Local struct {
	capacity int64 // bytes; 0 means unlimited
	used     int64
	peak     int64
	samples  map[int]data.Sample
}

// NewLocal creates a store with the given byte capacity (0 = unlimited).
func NewLocal(capacity int64) *Local {
	if capacity < 0 {
		panic(fmt.Sprintf("store: NewLocal(%d): negative capacity", capacity))
	}
	return &Local{capacity: capacity, samples: make(map[int]data.Sample)}
}

// Put stores a sample, accounting for its simulated byte size. It fails
// with ErrCapacity if the store would overflow, and rejects duplicate IDs
// (a duplicate would double-count bytes and indicates an exchange bug).
func (l *Local) Put(s data.Sample) error {
	if _, ok := l.samples[s.ID]; ok {
		return fmt.Errorf("store: Put: sample %d already stored", s.ID)
	}
	if l.capacity > 0 && l.used+s.Bytes > l.capacity {
		return fmt.Errorf("%w: used %d + sample %d bytes > capacity %d", ErrCapacity, l.used, s.Bytes, l.capacity)
	}
	l.samples[s.ID] = s
	l.used += s.Bytes
	if l.used > l.peak {
		l.peak = l.used
	}
	return nil
}

// Get retrieves a sample by ID.
func (l *Local) Get(id int) (data.Sample, error) {
	s, ok := l.samples[id]
	if !ok {
		return data.Sample{}, fmt.Errorf("store: Get: sample %d not present", id)
	}
	return s, nil
}

// Has reports whether a sample is present.
func (l *Local) Has(id int) bool {
	_, ok := l.samples[id]
	return ok
}

// Delete removes a sample, releasing its bytes. Deleting an absent sample
// is an error: the scheduler must only clean samples it actually sent.
func (l *Local) Delete(id int) error {
	s, ok := l.samples[id]
	if !ok {
		return fmt.Errorf("store: Delete: sample %d not present", id)
	}
	delete(l.samples, id)
	l.used -= s.Bytes
	return nil
}

// Len returns the number of stored samples.
func (l *Local) Len() int { return len(l.samples) }

// Used returns the bytes currently occupied.
func (l *Local) Used() int64 { return l.used }

// Peak returns the high-water mark of occupied bytes — the quantity bounded
// by (1+Q)·N/M in Section III-A.
func (l *Local) Peak() int64 { return l.peak }

// Capacity returns the configured capacity (0 = unlimited).
func (l *Local) Capacity() int64 { return l.capacity }

// IDs returns the stored sample IDs in ascending order (deterministic
// iteration for the epoch samplers).
func (l *Local) IDs() []int {
	ids := make([]int, 0, len(l.samples))
	for id := range l.samples {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Samples returns the stored samples ordered by ascending ID.
func (l *Local) Samples() []data.Sample {
	ids := l.IDs()
	out := make([]data.Sample, len(ids))
	for i, id := range ids {
		out[i] = l.samples[id]
	}
	return out
}

// PFS is the shared parallel-file-system view: the full training set,
// readable by every worker (global shuffling reads from here). It is
// read-only after construction and therefore safe for concurrent reads.
type PFS struct {
	byID map[int]data.Sample
}

// NewPFS indexes the full training set.
func NewPFS(train []data.Sample) *PFS {
	p := &PFS{byID: make(map[int]data.Sample, len(train))}
	for _, s := range train {
		p.byID[s.ID] = s
	}
	return p
}

// Read fetches a sample by ID.
func (p *PFS) Read(id int) (data.Sample, error) {
	s, ok := p.byID[id]
	if !ok {
		return data.Sample{}, fmt.Errorf("store: PFS.Read: sample %d not present", id)
	}
	return s, nil
}

// Len returns the number of samples on the PFS.
func (p *PFS) Len() int { return len(p.byID) }
