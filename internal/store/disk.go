package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"plshuffle/internal/data"
)

// Disk is a file-backed worker storage area: each sample lives in its own
// file, the layout the paper's tool assumes ("datasets that manage each
// data sample in a single distinct physical file", Section III-E). It
// implements the same operations as Local with real filesystem I/O, and
// its capacity accounting uses the real encoded on-disk size of each
// sample file, so Used/Peak agree with what the filesystem holds. For the
// sharded many-samples-per-file layout with mmap'd zero-copy reads and a
// bounded cache tier in front, see internal/store/shard and
// internal/store/cache — the preferred real-storage path.
type Disk struct {
	dir      string
	capacity int64
	used     int64
	peak     int64
	sizes    map[int]int64
}

// NewDisk creates a file-backed store rooted at dir (created if missing)
// with the given simulated byte capacity (0 = unlimited).
func NewDisk(dir string, capacity int64) (*Disk, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("store: NewDisk: negative capacity %d", capacity)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: NewDisk: %w", err)
	}
	return &Disk{dir: dir, capacity: capacity, sizes: make(map[int]int64)}, nil
}

func (d *Disk) path(id int) string {
	return filepath.Join(d.dir, strconv.Itoa(id)+".sample")
}

// Put writes the sample to its file, accounting its real encoded size.
func (d *Disk) Put(s data.Sample) error {
	if _, ok := d.sizes[s.ID]; ok {
		return fmt.Errorf("store: Disk.Put: sample %d already stored", s.ID)
	}
	raw := s.Encode()
	size := int64(len(raw))
	if d.capacity > 0 && d.used+size > d.capacity {
		return fmt.Errorf("%w: used %d + sample %d bytes > capacity %d", ErrCapacity, d.used, size, d.capacity)
	}
	if err := os.WriteFile(d.path(s.ID), raw, 0o644); err != nil {
		return fmt.Errorf("store: Disk.Put: %w", err)
	}
	d.sizes[s.ID] = size
	d.used += size
	if d.used > d.peak {
		d.peak = d.used
	}
	return nil
}

// Get reads and decodes the sample's file.
func (d *Disk) Get(id int) (data.Sample, error) {
	if _, ok := d.sizes[id]; !ok {
		return data.Sample{}, fmt.Errorf("store: Disk.Get: sample %d not present", id)
	}
	raw, err := os.ReadFile(d.path(id))
	if err != nil {
		return data.Sample{}, fmt.Errorf("store: Disk.Get: %w", err)
	}
	s, err := data.DecodeSample(raw)
	if err != nil {
		return data.Sample{}, fmt.Errorf("store: Disk.Get: sample %d: %w", id, err)
	}
	return s, nil
}

// Has reports whether a sample is present.
func (d *Disk) Has(id int) bool {
	_, ok := d.sizes[id]
	return ok
}

// Delete removes the sample's file.
func (d *Disk) Delete(id int) error {
	size, ok := d.sizes[id]
	if !ok {
		return fmt.Errorf("store: Disk.Delete: sample %d not present", id)
	}
	if err := os.Remove(d.path(id)); err != nil {
		return fmt.Errorf("store: Disk.Delete: %w", err)
	}
	delete(d.sizes, id)
	d.used -= size
	return nil
}

// Len returns the number of stored samples.
func (d *Disk) Len() int { return len(d.sizes) }

// Used returns the real on-disk bytes currently occupied.
func (d *Disk) Used() int64 { return d.used }

// Peak returns the high-water mark of on-disk occupancy.
func (d *Disk) Peak() int64 { return d.peak }

// Capacity returns the configured capacity (0 = unlimited).
func (d *Disk) Capacity() int64 { return d.capacity }

// IDs returns the stored sample IDs in ascending order.
func (d *Disk) IDs() []int {
	ids := make([]int, 0, len(d.sizes))
	for id := range d.sizes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Close removes the store's directory and all sample files.
func (d *Disk) Close() error {
	d.sizes = map[int]int64{}
	d.used = 0
	return os.RemoveAll(d.dir)
}
