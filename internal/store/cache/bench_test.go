package cache

import (
	"testing"
	"time"

	"plshuffle/internal/store/shard"
)

// benchPFSOptions emulate a loaded PFS client: ~8 MB/s sustained with a
// 2 ms metadata cost per shard open — the cluster profiles' Lustre numbers
// scaled to laptop-sized shards.
var benchPFSOptions = shard.PFSOptions{BytesPerSec: 8e6, PerShardLatency: 2 * time.Millisecond}

// epochPlan builds a one-pass sequential plan over every shard.
func epochPlan(man shard.Manifest, perWindow int) (windows [][]int, bounds []int, order []shard.Ref) {
	bounds = []int{0}
	for lo := 0; lo < man.NumShards; lo += perWindow {
		hi := lo + perWindow
		if hi > man.NumShards {
			hi = man.NumShards
		}
		var win []int
		for sh := lo; sh < hi; sh++ {
			win = append(win, sh)
			for i := 0; i < man.ShardSamples(sh); i++ {
				order = append(order, shard.Ref{Shard: sh, Index: i})
			}
		}
		windows = append(windows, win)
		bounds = append(bounds, len(order))
	}
	return windows, bounds, order
}

func runEpoch(b *testing.B, tier *Tier, man shard.Manifest) {
	windows, bounds, order := epochPlan(man, 2)
	es, err := tier.OpenEpoch(windows, bounds, order)
	if err != nil {
		b.Fatal(err)
	}
	defer es.Close()
	feat := make([]float32, man.FeatureDim)
	for range order {
		if _, _, _, err := es.ReadInto(feat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochReadColdPFS reads one full epoch with a cache that can
// only hold one pinned window — every window re-fetches from the throttled
// PFS tier. This is the cold tier's service rate.
func BenchmarkEpochReadColdPFS(b *testing.B) {
	pfs := ingestTemp(b, 512, 32) // 16 shards
	pfs.SetPFSOptions(benchPFSOptions)
	man := pfs.Manifest()
	tier, err := New(pfs, 2*man.MaxShardBytes(), "")
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runEpoch(b, tier, man)
	}
}

// BenchmarkEpochReadWarmCache reads the same epoch from a fully warmed
// unlimited cache: after the untimed first pass, every read is served from
// the node-local mmap'd tier and the throttled PFS is never touched.
func BenchmarkEpochReadWarmCache(b *testing.B) {
	pfs := ingestTemp(b, 512, 32)
	pfs.SetPFSOptions(benchPFSOptions)
	man := pfs.Manifest()
	tier, err := New(pfs, 0, "")
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()
	runEpoch(b, tier, man) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runEpoch(b, tier, man)
	}
}
