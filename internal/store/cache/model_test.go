// Timing-ordering assertion; race-detector instrumentation skews wall-clock
// severalfold, so the whole file is compiled out under -race. The external
// test package breaks the cache → perfmodel → shuffle → cache cycle that an
// in-package test would create (the exchange scheduler uses cache.SampleLRU
// for wire dedup).
//go:build !race

package cache_test

import (
	"math/rand"
	"testing"
	"time"

	"plshuffle/internal/cluster"
	"plshuffle/internal/data"
	"plshuffle/internal/perfmodel"
	"plshuffle/internal/store/cache"
	"plshuffle/internal/store/shard"
)

func ingestTempExt(t testing.TB, n, perShard int) *shard.Dataset {
	t.Helper()
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "cache-test", NumSamples: n, NumVal: 8, Classes: 4,
		FeatureDim: 16, ClassSep: 3, NoiseStd: 1, Bytes: 1000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := shard.Ingest(dir, ds, perShard); err != nil {
		t.Fatal(err)
	}
	pfs, err := shard.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pfs
}

// TestMeasuredReadTimeMatchesModelOrdering cross-validates the analytic
// storage model against the real tier: one epoch's read time is measured
// at three cache sizes over a throttled PFS whose rates mirror the
// machine profile handed to perfmodel.CachedEpochReadTime, and the
// measured ordering must match the predicted ordering (bigger cache →
// faster epoch). Absolute times are laptop noise; the ORDERING is the
// model's testable claim.
func TestMeasuredReadTimeMatchesModelOrdering(t *testing.T) {
	pfs := ingestTempExt(t, 768, 16) // 48 shards
	pfs.SetPFSOptions(shard.PFSOptions{BytesPerSec: 8e6, PerShardLatency: 2 * time.Millisecond})
	man := pfs.Manifest()
	var epochBytes int64
	for _, b := range man.ShardFileBytes {
		epochBytes += b
	}
	mc := cluster.Machine{LocalSeqBW: 1e9, PFSPerClientBW: 8e6, PFSMetadataCost: 0.002}

	// measure reads two epochs through a fresh tier — the first warms the
	// cache, the second is timed — visiting shards in a fresh random order
	// each epoch (the corgi plan's behaviour), which is what makes the
	// expected hit fraction the cache's share of the epoch.
	measure := func(budget int64) time.Duration {
		tier, err := cache.New(pfs, budget, "")
		if err != nil {
			t.Fatal(err)
		}
		defer tier.Close()
		r := rand.New(rand.NewSource(42))
		epoch := func() {
			ids := r.Perm(man.NumShards)
			var windows [][]int
			var order []shard.Ref
			bounds := []int{0}
			for lo := 0; lo < len(ids); lo += 2 {
				hi := lo + 2
				if hi > len(ids) {
					hi = len(ids)
				}
				windows = append(windows, ids[lo:hi])
				for _, sh := range ids[lo:hi] {
					for i := 0; i < man.ShardSamples(sh); i++ {
						order = append(order, shard.Ref{Shard: sh, Index: i})
					}
				}
				bounds = append(bounds, len(order))
			}
			es, err := tier.OpenEpoch(windows, bounds, order)
			if err != nil {
				t.Fatal(err)
			}
			defer es.Close()
			feat := make([]float32, man.FeatureDim)
			for range order {
				if _, _, _, err := es.ReadInto(feat); err != nil {
					t.Fatal(err)
				}
			}
		}
		epoch() // warm
		start := time.Now()
		epoch()
		return time.Since(start)
	}

	budgets := []int64{epochBytes / 4, epochBytes / 2, 0} // 25%, 50%, unlimited
	var measured []time.Duration
	var predicted []float64
	for _, budget := range budgets {
		measured = append(measured, measure(budget))
		modelBudget := budget
		if modelBudget == 0 {
			modelBudget = epochBytes
		}
		p, err := perfmodel.CachedEpochReadTime(mc, perfmodel.CacheWorkload{
			EpochBytes: epochBytes, ShardBytes: man.MaxShardBytes(), CacheBytes: modelBudget,
		})
		if err != nil {
			t.Fatal(err)
		}
		predicted = append(predicted, p)
	}
	t.Logf("measured: 25%%=%v 50%%=%v unlimited=%v", measured[0], measured[1], measured[2])
	t.Logf("predicted: 25%%=%.4fs 50%%=%.4fs unlimited=%.4fs", predicted[0], predicted[1], predicted[2])

	if !(predicted[0] > predicted[1] && predicted[1] > predicted[2]) {
		t.Fatalf("model ordering broken: %v", predicted)
	}
	if !(measured[0] > measured[1] && measured[1] > measured[2]) {
		t.Fatalf("measured ordering contradicts the model: %v", measured)
	}
}
