package cache

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"plshuffle/internal/data"
	"plshuffle/internal/store/shard"
)

// ingestTemp generates and ingests a dataset, returning its PFS view.
func ingestTemp(t testing.TB, n, perShard int) *shard.Dataset {
	t.Helper()
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "cache-test", NumSamples: n, NumVal: 8, Classes: 4,
		FeatureDim: 16, ClassSep: 3, NoiseStd: 1, Bytes: 1000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := shard.Ingest(dir, ds, perShard); err != nil {
		t.Fatal(err)
	}
	pfs, err := shard.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pfs
}

func TestTierHitMissEviction(t *testing.T) {
	pfs := ingestTemp(t, 128, 16) // 8 shards
	budget := 3 * pfs.Manifest().MaxShardBytes()
	tier, err := New(pfs, budget, "")
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	for id := 0; id < 3; id++ {
		sh, err := tier.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		if sh.ID() != id {
			t.Fatalf("acquired shard %d, got ID %d", id, sh.ID())
		}
		tier.Release(id)
	}
	st := tier.Stats()
	if st.Misses != 3 || st.Hits != 0 || st.Evictions != 0 {
		t.Fatalf("after 3 cold acquires: %+v", st)
	}
	if _, err := tier.Acquire(1); err != nil { // resident
		t.Fatal(err)
	}
	tier.Release(1)
	if st = tier.Stats(); st.Hits != 1 {
		t.Fatalf("resident acquire not a hit: %+v", st)
	}
	if _, err := tier.Acquire(7); err != nil { // forces one eviction
		t.Fatal(err)
	}
	tier.Release(7)
	st = tier.Stats()
	if st.Evictions != 1 || st.Misses != 4 {
		t.Fatalf("over-budget acquire: %+v", st)
	}
	if st.UsedBytes > budget || st.PeakBytes > budget {
		t.Fatalf("budget exceeded: used=%d peak=%d budget=%d", st.UsedBytes, st.PeakBytes, budget)
	}
}

func TestTierRejectsImpossibleBudget(t *testing.T) {
	pfs := ingestTemp(t, 64, 16)
	if _, err := New(pfs, 10, ""); err == nil {
		t.Fatal("budget smaller than one shard accepted")
	}
	tier, err := New(pfs, 2*pfs.Manifest().MaxShardBytes(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	// Pin two shards, then demand a third: nothing evictable.
	for id := 0; id < 2; id++ {
		if _, err := tier.Acquire(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tier.Acquire(2); err == nil {
		t.Fatal("admission beyond an all-pinned budget succeeded")
	}
	tier.Release(0)
	tier.Release(1)
}

// TestTierBudgetInvariantProperty drives the tier with randomized
// concurrent acquire/release/prefetch traffic and asserts the core
// invariant after every operation: resident bytes never exceed the budget.
func TestTierBudgetInvariantProperty(t *testing.T) {
	pfs := ingestTemp(t, 256, 16) // 16 shards
	man := pfs.Manifest()
	for trial, budgetShards := range []int64{1, 2, 5} {
		budget := budgetShards * man.MaxShardBytes()
		tier, err := New(pfs, budget, "")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for op := 0; op < 200; op++ {
					id := r.Intn(man.NumShards)
					switch r.Intn(3) {
					case 0, 1:
						sh, err := tier.Acquire(id)
						if err != nil {
							continue // all-pinned budget: legitimate refusal
						}
						if sh.Count() != man.ShardSamples(id) {
							t.Errorf("shard %d count %d, want %d", id, sh.Count(), man.ShardSamples(id))
						}
						tier.Release(id)
					case 2:
						tier.Prefetch([]int{id})
					}
					if st := tier.Stats(); st.UsedBytes > budget {
						t.Errorf("trial %d: used %d exceeds budget %d", trial, st.UsedBytes, budget)
						return
					}
				}
			}(int64(trial*100 + g))
		}
		wg.Wait()
		st := tier.Stats()
		if st.UsedBytes > budget || st.PeakBytes > budget {
			t.Fatalf("trial %d: final used=%d peak=%d budget=%d", trial, st.UsedBytes, st.PeakBytes, budget)
		}
		tier.Close()
	}
}

func TestEpochStreamReadsPlan(t *testing.T) {
	pfs := ingestTemp(t, 96, 16) // 6 shards
	man := pfs.Manifest()
	tier, err := New(pfs, 2*man.MaxShardBytes(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	// Three windows of two shards; samples in shard order within windows.
	windows := [][]int{{0, 1}, {2, 3}, {4, 5}}
	var order []shard.Ref
	bounds := []int{0}
	for _, win := range windows {
		for _, sh := range win {
			for i := 0; i < man.ShardSamples(sh); i++ {
				order = append(order, shard.Ref{Shard: sh, Index: i})
			}
		}
		bounds = append(bounds, len(order))
	}
	es, err := tier.OpenEpoch(windows, bounds, order)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, man.FeatureDim)
	seen := make(map[int]bool)
	for {
		id, label, sim, err := es.ReadInto(feat)
		if err != nil {
			if es.Remaining() != 0 {
				t.Fatalf("read error with %d samples left: %v", es.Remaining(), err)
			}
			break
		}
		if seen[id] {
			t.Fatalf("sample %d delivered twice", id)
		}
		seen[id] = true
		if label < 0 || sim <= 0 {
			t.Fatalf("sample %d: bad metadata label=%d sim=%d", id, label, sim)
		}
	}
	if len(seen) != man.NumSamples {
		t.Fatalf("stream delivered %d samples, want %d", len(seen), man.NumSamples)
	}
	es.Close()
	st := tier.Stats()
	if st.UsedBytes > tier.Budget() {
		t.Fatalf("budget exceeded during stream: %d > %d", st.UsedBytes, tier.Budget())
	}
}

func TestOpenEpochRejectsMalformedPlans(t *testing.T) {
	pfs := ingestTemp(t, 32, 16)
	tier, err := New(pfs, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	order := []shard.Ref{{Shard: 0, Index: 0}}
	cases := []struct {
		windows [][]int
		bounds  []int
	}{
		{[][]int{{0}}, []int{0}},       // too few bounds
		{[][]int{{0}}, []int{1, 1}},    // does not start at 0
		{[][]int{{0}}, []int{0, 0}},    // does not end at len(order)
		{[][]int{{0}, {1}}, []int{0, 1, 0}}, // decreasing
	}
	for i, c := range cases {
		if _, err := tier.OpenEpoch(c.windows, c.bounds, order); err == nil {
			t.Errorf("case %d: malformed plan accepted", i)
		}
	}
	// A ref outside the pinned window must fail at read time.
	es, err := tier.OpenEpoch([][]int{{1}}, []int{0, 1}, order)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	if _, _, _, err := es.ReadInto(make([]float32, 64)); err == nil {
		t.Error("read of a shard outside the window succeeded")
	}
}

func TestTierPrefetchWarmsCache(t *testing.T) {
	pfs := ingestTemp(t, 64, 16) // 4 shards
	tier, err := New(pfs, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	tier.Prefetch([]int{0, 1, 2, 3})
	var total int64
	for _, b := range pfs.Manifest().ShardFileBytes {
		total += b
	}
	// Wait for the background worker to land all four shards.
	deadline := time.Now().Add(5 * time.Second)
	for tier.Stats().UsedBytes < total {
		if time.Now().After(deadline) {
			t.Fatalf("prefetcher stalled: %+v", tier.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for id := 0; id < 4; id++ {
		if _, err := tier.Acquire(id); err != nil {
			t.Fatal(err)
		}
		tier.Release(id)
	}
	st := tier.Stats()
	if st.Hits != 4 || st.Misses != 0 {
		t.Fatalf("prefetched shards not served as hits: %+v", st)
	}
	if st.PrefetchBytes != total || st.PFSReadBytes != total {
		t.Fatalf("prefetch accounting: %+v, want %d bytes", st, total)
	}
}
