//go:build !race

package cache

// raceEnabled reports that this binary was built with the race detector.
const raceEnabled = false
