package cache

import (
	"fmt"
	"io"

	"plshuffle/internal/store/shard"
)

// EpochStream reads one epoch's samples in a precomputed order through the
// cache tier. The order is grouped into windows of shards: all shards of
// the current window are pinned while its samples stream out, and the next
// window's shards are prefetched in the background — so under Corgi²'s
// online shuffle the PFS fetches overlap the current window's compute.
//
// The plan (windows, bounds, order) is computed upstream as a pure function
// of (seed, epoch, rank, window size); the stream only executes it, which
// is what keeps training bitwise independent of cache behaviour.
type EpochStream struct {
	t       *Tier
	windows [][]int     // windows[w] = shard IDs pinned together
	bounds  []int       // bounds[w] = index in order where window w starts; len = len(windows)+1
	order   []shard.Ref // the epoch's sample sequence
	pos     int
	win     int // current window; -1 before the first read
	cur     map[int]*shard.Shard
}

// OpenEpoch starts streaming an epoch plan. bounds must have
// len(windows)+1 entries, start at 0, end at len(order), and be
// non-decreasing; every order entry in window w must name a shard listed
// in windows[w].
func (t *Tier) OpenEpoch(windows [][]int, bounds []int, order []shard.Ref) (*EpochStream, error) {
	if len(bounds) != len(windows)+1 || len(bounds) == 0 || bounds[0] != 0 || bounds[len(bounds)-1] != len(order) {
		return nil, fmt.Errorf("cache: OpenEpoch: malformed bounds (windows=%d bounds=%d order=%d)",
			len(windows), len(bounds), len(order))
	}
	for w := 0; w < len(windows); w++ {
		if bounds[w] > bounds[w+1] {
			return nil, fmt.Errorf("cache: OpenEpoch: bounds decrease at window %d", w)
		}
	}
	return &EpochStream{
		t:       t,
		windows: windows,
		bounds:  bounds,
		order:   order,
		win:     -1,
		cur:     make(map[int]*shard.Shard),
	}, nil
}

// advance releases the previous window's pins, pins window w, and queues
// the window after next for prefetch (w+1 was queued when w-1 advanced; at
// the first window both w+1 and w+2 are queued to prime the pipeline).
func (es *EpochStream) advance(w int) error {
	for id := range es.cur {
		es.t.Release(id)
		delete(es.cur, id)
	}
	for _, id := range es.windows[w] {
		sh, err := es.t.Acquire(id)
		if err != nil {
			for pid := range es.cur {
				es.t.Release(pid)
				delete(es.cur, pid)
			}
			return err
		}
		es.cur[id] = sh
	}
	if w == 0 && w+1 < len(es.windows) {
		es.t.Prefetch(es.windows[w+1])
	}
	if w+2 < len(es.windows) {
		es.t.Prefetch(es.windows[w+2])
	}
	es.win = w
	return nil
}

// ReadInto copies the next sample's features into feat and returns its
// metadata; io.EOF after the last sample. Zero allocations in steady state.
func (es *EpochStream) ReadInto(feat []float32) (id, label int, sim int64, err error) {
	if es.pos >= len(es.order) {
		return 0, 0, 0, io.EOF
	}
	for es.win+1 < len(es.windows) && es.pos >= es.bounds[es.win+1] {
		if err := es.advance(es.win + 1); err != nil {
			return 0, 0, 0, err
		}
	}
	ref := es.order[es.pos]
	sh, ok := es.cur[ref.Shard]
	if !ok {
		return 0, 0, 0, fmt.Errorf("cache: epoch plan names shard %d outside window %d", ref.Shard, es.win)
	}
	id, label, sim, _, err = sh.ReadInto(ref.Index, feat)
	if err != nil {
		return 0, 0, 0, err
	}
	es.pos++
	return id, label, sim, nil
}

// Remaining returns how many samples are left in the epoch.
func (es *EpochStream) Remaining() int { return len(es.order) - es.pos }

// Close releases the stream's pins. The shards stay cached for the next
// epoch until the budget reclaims them.
func (es *EpochStream) Close() {
	for id := range es.cur {
		es.t.Release(id)
		delete(es.cur, id)
	}
}
