// Package cache is the node-local storage tier between the trainer and the
// shard store's "PFS": a byte-budgeted cache of whole shard files on local
// disk (mmap'd once admitted), with LRU eviction of unpinned shards and an
// asynchronous prefetcher that overlaps the next window's PFS fetches with
// compute — the Figure 4 overlap discipline applied to the storage
// hierarchy instead of the sample exchange.
//
// Admission is shard-granular: a miss fetches the whole shard from the PFS
// tier (internal/store/shard.Dataset.FetchShard), lands it as a local file,
// and maps it. The byte budget plays the (1+Q)·N/M role of Section III-A:
// the sum of cached shard file bytes never exceeds it, pinned (in-use)
// shards are never evicted, and an admission that cannot fit even after
// evicting every unpinned shard fails loudly instead of silently
// overflowing.
//
// The tier affects timing only, never values: which shards are cached,
// prefetched, or re-fetched cannot change the bytes a read returns, so
// trained weights stay bitwise identical across cache configurations.
package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"plshuffle/internal/store/shard"
)

// nowNano is time.Now().UnixNano behind a name the accounting code shares.
func nowNano() int64 { return time.Now().UnixNano() }

// Stats is a snapshot of the tier's counters. Hits are acquisitions served
// from cache (including shards an earlier prefetch already admitted);
// misses paid a synchronous PFS fetch. PFSReadBytes/PFSReadNs cover every
// PFS fetch, prefetched or not.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	PrefetchBytes int64
	PFSReadBytes  int64
	PFSReadNs     int64
	UsedBytes     int64
	PeakBytes     int64
}

// entry is one cached shard.
type entry struct {
	sh      *shard.Shard
	bytes   int64
	pins    int
	lastUse int64
	ready   chan struct{} // closed once the fetch completes (ok or not)
	err     error         // set before ready closes on a failed fetch
}

// Tier is one rank's node-local cache. Acquire/Release are safe for
// concurrent use (the prefetcher runs on its own goroutine).
type Tier struct {
	pfs    *shard.Dataset
	budget int64 // bytes; 0 = unlimited
	dir    string
	ownDir bool

	mu      sync.Mutex
	entries map[int]*entry
	clock   int64
	used    int64
	peak    int64

	hits, misses, evictions       atomic.Int64
	prefetchBytes                 atomic.Int64
	pfsReadBytes, pfsReadNs       atomic.Int64
	prefetchCh                    chan int
	quit                          chan struct{}
	wg                            sync.WaitGroup
}

// New creates a cache tier over the PFS dataset with the given byte budget
// (0 = unlimited). dir roots the cached shard files; empty creates (and
// owns) a temporary directory removed on Close. A non-zero budget must at
// least hold the dataset's largest shard, or no window could ever be
// pinned.
func New(pfs *shard.Dataset, budgetBytes int64, dir string) (*Tier, error) {
	if budgetBytes < 0 {
		return nil, fmt.Errorf("cache: negative budget %d", budgetBytes)
	}
	if max := pfs.Manifest().MaxShardBytes(); budgetBytes > 0 && budgetBytes < max {
		return nil, fmt.Errorf("cache: budget %d bytes cannot hold the largest shard (%d bytes)", budgetBytes, max)
	}
	own := false
	if dir == "" {
		d, err := os.MkdirTemp("", "plscache-")
		if err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		dir, own = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	t := &Tier{
		pfs:        pfs,
		budget:     budgetBytes,
		dir:        dir,
		ownDir:     own,
		entries:    make(map[int]*entry),
		prefetchCh: make(chan int, 256),
		quit:       make(chan struct{}),
	}
	t.wg.Add(1)
	go t.prefetchLoop()
	return t, nil
}

// Budget returns the configured byte budget (0 = unlimited).
func (t *Tier) Budget() int64 { return t.budget }

// Stats returns a consistent snapshot of the tier's counters.
func (t *Tier) Stats() Stats {
	t.mu.Lock()
	used, peak := t.used, t.peak
	t.mu.Unlock()
	return Stats{
		Hits:          t.hits.Load(),
		Misses:        t.misses.Load(),
		Evictions:     t.evictions.Load(),
		PrefetchBytes: t.prefetchBytes.Load(),
		PFSReadBytes:  t.pfsReadBytes.Load(),
		PFSReadNs:     t.pfsReadNs.Load(),
		UsedBytes:     used,
		PeakBytes:     peak,
	}
}

// localPath is where shard id's cached copy lives.
func (t *Tier) localPath(id int) string {
	return filepath.Join(t.dir, shard.FileName(id))
}

// admit reserves budget for one incoming shard of the given size, evicting
// unpinned shards in LRU order as needed. Caller holds t.mu. When the
// budget is blocked by an unpinned fetch still in flight (it cannot be
// evicted mid-fetch), admit returns that fetch's ready channel so the
// caller can wait and retry; it fails outright only when even a
// fully-drained cache cannot fit the shard next to the pinned set — the
// loud version of the Section III-A feasibility constraint.
func (t *Tier) admit(size int64) (wait chan struct{}, err error) {
	if t.budget > 0 {
		for t.used+size > t.budget {
			victim := -1
			var oldest int64
			var inflight *entry
			for id, e := range t.entries {
				if e.pins > 0 {
					continue
				}
				if e.sh == nil { // still in flight: blocks, but will settle
					inflight = e
					continue
				}
				if victim < 0 || e.lastUse < oldest {
					victim, oldest = id, e.lastUse
				}
			}
			if victim < 0 {
				if inflight != nil {
					return inflight.ready, nil
				}
				return nil, fmt.Errorf("cache: budget %d bytes exhausted by pinned shards (used %d, need %d more)",
					t.budget, t.used, size)
			}
			e := t.entries[victim]
			delete(t.entries, victim)
			t.used -= e.bytes
			e.sh.Close()
			os.Remove(t.localPath(victim))
			t.evictions.Add(1)
		}
	}
	t.used += size
	if t.used > t.peak {
		t.peak = t.used
	}
	return nil, nil
}

// fetch pulls shard id from the PFS tier, lands it locally, and maps it.
// Runs without the lock; completion is published through e.ready.
func (t *Tier) fetch(id int, e *entry) {
	defer close(e.ready)
	img, ferr := t.timedFetch(id)
	if ferr == nil {
		path := t.localPath(id)
		if werr := os.WriteFile(path, img, 0o644); werr != nil {
			ferr = fmt.Errorf("cache: landing shard %d: %w", id, werr)
		} else if sh, oerr := shard.Open(path); oerr != nil {
			ferr = oerr
		} else {
			t.mu.Lock()
			e.sh = sh
			t.mu.Unlock()
			return
		}
	}
	// Failed: release the reservation so the budget does not leak.
	t.mu.Lock()
	e.err = ferr
	t.used -= e.bytes
	delete(t.entries, id)
	t.mu.Unlock()
}

// timedFetch is FetchShard plus the PFS read accounting.
func (t *Tier) timedFetch(id int) ([]byte, error) {
	start := nowNano()
	img, err := t.pfs.FetchShard(id)
	t.pfsReadNs.Add(nowNano() - start)
	if err == nil {
		t.pfsReadBytes.Add(int64(len(img)))
	}
	return img, err
}

// Acquire returns shard id mapped and pinned: it will not be evicted until
// the matching Release. A cached or in-flight-prefetched shard is a hit; a
// cold shard pays a synchronous PFS fetch (a miss).
func (t *Tier) Acquire(id int) (*shard.Shard, error) {
	for {
		t.mu.Lock()
		t.clock++
		if e, ok := t.entries[id]; ok {
			e.pins++
			e.lastUse = t.clock
			t.mu.Unlock()
			<-e.ready
			if e.err != nil {
				return nil, e.err
			}
			t.hits.Add(1)
			return e.sh, nil
		}
		size := t.pfs.Manifest().ShardFileBytes[id]
		wait, err := t.admit(size)
		if err != nil {
			t.mu.Unlock()
			return nil, err
		}
		if wait != nil {
			// An unpinned prefetch in flight holds the budget; once it
			// settles it becomes evictable (or vanishes on error) — retry.
			t.mu.Unlock()
			<-wait
			continue
		}
		e := &entry{bytes: size, pins: 1, lastUse: t.clock, ready: make(chan struct{})}
		t.entries[id] = e
		t.mu.Unlock()

		t.misses.Add(1)
		t.fetch(id, e)
		if e.err != nil {
			return nil, e.err
		}
		return e.sh, nil
	}
}

// Release unpins a shard acquired with Acquire. The shard stays cached
// (and becomes evictable) until the budget needs its bytes.
func (t *Tier) Release(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok || e.pins <= 0 {
		panic(fmt.Sprintf("cache: Release(%d) without matching Acquire", id))
	}
	e.pins--
}

// Prefetch queues shards for asynchronous admission. Already-cached or
// queued-over-capacity shards are skipped; prefetch never evicts a pinned
// shard and never blocks the caller.
func (t *Tier) Prefetch(ids []int) {
	for _, id := range ids {
		select {
		case t.prefetchCh <- id:
		default:
			return // queue full: drop the tail, correctness is unaffected
		}
	}
}

// prefetchLoop serializes background fetches — one PFS stream per rank,
// matching the per-client bandwidth model.
func (t *Tier) prefetchLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.quit:
			return
		case id := <-t.prefetchCh:
			t.mu.Lock()
			if _, ok := t.entries[id]; ok {
				t.mu.Unlock()
				continue
			}
			size := t.pfs.Manifest().ShardFileBytes[id]
			if wait, err := t.admit(size); err != nil || wait != nil {
				// No room next to the pinned/in-flight set: skip rather than
				// block — the foreground Acquire fetches it when needed.
				t.mu.Unlock()
				continue
			}
			t.clock++
			e := &entry{bytes: size, lastUse: t.clock, ready: make(chan struct{})}
			t.entries[id] = e
			t.mu.Unlock()
			t.fetch(id, e)
			if e.err == nil {
				t.prefetchBytes.Add(size)
			}
		}
	}
}

// Close stops the prefetcher, unmaps every cached shard, and removes the
// cache directory if the tier created it.
func (t *Tier) Close() error {
	close(t.quit)
	t.wg.Wait()
	t.mu.Lock()
	for id, e := range t.entries {
		if e.sh != nil {
			e.sh.Close()
		}
		delete(t.entries, id)
	}
	t.used = 0
	t.mu.Unlock()
	if t.ownDir {
		return os.RemoveAll(t.dir)
	}
	return nil
}
