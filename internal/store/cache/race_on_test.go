//go:build race

package cache

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation skews wall-clock timing severalfold — tests that
// assert timing orderings (not correctness) skip themselves under it.
const raceEnabled = true
