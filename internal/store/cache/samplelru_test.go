package cache

import (
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/rng"
)

func lruSample(id, nfeat int) data.Sample {
	fs := make([]float32, nfeat)
	for i := range fs {
		fs[i] = float32(id) + float32(i)*0.5
	}
	return data.Sample{ID: id, Label: id % 7, Features: fs, Bytes: 1024}
}

func TestSampleLRUBasics(t *testing.T) {
	s := lruSample(1, 4)
	budget := 3 * int64(s.WireSize())
	c := NewSampleLRU(budget, true)
	for id := 1; id <= 3; id++ {
		c.Note(lruSample(id, 4))
	}
	if c.Len() != 3 || c.Bytes() != budget {
		t.Fatalf("after 3 notes: len=%d bytes=%d budget=%d", c.Len(), c.Bytes(), budget)
	}
	// Touching 1 makes it MRU; noting 4 must evict 2 (now LRU).
	if !c.Touch(1) {
		t.Fatalf("Touch(1) missed")
	}
	c.Note(lruSample(4, 4))
	if c.Has(2) {
		t.Fatalf("expected LRU entry 2 evicted")
	}
	for _, id := range []int64{1, 3, 4} {
		if !c.Has(id) {
			t.Fatalf("expected %d cached", id)
		}
	}
	got, ok := c.Get(1)
	if !ok || got.ID != 1 || len(got.Features) != 4 {
		t.Fatalf("Get(1) = %+v, %v", got, ok)
	}
	if c.Touch(99) {
		t.Fatalf("Touch on a missing id reported a hit")
	}
}

// TestSampleLRUGetIsDeepCopy: mutating a noted sample's features after Note
// must not change the cached payload (distributed-memory semantics — the
// receiver materializes refs from its own copy).
func TestSampleLRUGetIsDeepCopy(t *testing.T) {
	c := NewSampleLRU(1<<20, true)
	s := lruSample(5, 4)
	c.Note(s)
	s.Features[0] = -999
	got, _ := c.Get(5)
	if got.Features[0] == -999 {
		t.Fatalf("cached payload aliases the noted sample")
	}
}

// TestSampleLRUOversized: a sample larger than the whole budget is not
// cached but evicts nothing it shouldn't.
func TestSampleLRUOversized(t *testing.T) {
	small := lruSample(1, 2)
	c := NewSampleLRU(int64(small.WireSize()), true)
	c.Note(small)
	c.Note(lruSample(2, 100)) // far over budget: evicts 1, caches nothing
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversized note left len=%d bytes=%d", c.Len(), c.Bytes())
	}
	c.Note(small)
	if !c.Has(1) {
		t.Fatalf("cache unusable after oversized note")
	}
}

// TestSampleLRUMirrorSegmentLockstep is the protocol-critical property:
// a payload-retaining segment and a sizes-only mirror fed the identical
// Note/Touch sequence always hold exactly the same ID set.
func TestSampleLRUMirrorSegmentLockstep(t *testing.T) {
	const budget = 4096
	mirror := NewSampleLRU(budget, false)
	segment := NewSampleLRU(budget, true)
	r := rng.New(42)
	for step := 0; step < 5000; step++ {
		id := int(r.Uint64() % 64)
		if r.Uint64()%3 == 0 {
			hm, hs := mirror.Touch(int64(id)), segment.Touch(int64(id))
			if hm != hs {
				t.Fatalf("step %d: Touch(%d) mirror=%v segment=%v", step, id, hm, hs)
			}
		} else {
			s := lruSample(id, 1+id%13)
			mirror.Note(s)
			segment.Note(s)
		}
		if mirror.Len() != segment.Len() || mirror.Bytes() != segment.Bytes() {
			t.Fatalf("step %d: mirror len=%d/%dB segment len=%d/%dB",
				step, mirror.Len(), mirror.Bytes(), segment.Len(), segment.Bytes())
		}
	}
	for id := int64(0); id < 64; id++ {
		if mirror.Has(id) != segment.Has(id) {
			t.Fatalf("id %d: mirror=%v segment=%v", id, mirror.Has(id), segment.Has(id))
		}
	}
	mirror.Clear()
	segment.Clear()
	if mirror.Len() != 0 || segment.Len() != 0 || mirror.Bytes() != 0 {
		t.Fatalf("Clear left state behind")
	}
}

// TestSampleLRUEvictionOrder pins strict LRU order: the least recently
// noted/touched entry always goes first.
func TestSampleLRUEvictionOrder(t *testing.T) {
	unit := int64(lruSample(0, 4).WireSize())
	c := NewSampleLRU(4*unit, false)
	for id := 0; id < 4; id++ {
		c.Note(lruSample(id, 4))
	}
	c.Touch(0) // order now (MRU→LRU): 0, 3, 2, 1
	c.Note(lruSample(10, 4))
	if c.Has(1) {
		t.Fatalf("expected 1 evicted first")
	}
	c.Note(lruSample(11, 4))
	if c.Has(2) {
		t.Fatalf("expected 2 evicted second")
	}
	for _, id := range []int64{0, 3, 10, 11} {
		if !c.Has(id) {
			t.Fatalf("expected %d retained", id)
		}
	}
}
