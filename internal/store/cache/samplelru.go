// SampleLRU is the deterministic, byte-budgeted sample cache behind the
// exchange deduplication protocol (DESIGN.md §13): each directed rank pair
// keeps two mirrored instances — the sender's mirror (IDs and sizes only)
// and the receiver's segment (IDs and payloads) — and both are pure
// functions of the pairwise FIFO frame stream, so the sender can prove
// "the receiver still holds sample X" without any acknowledgement traffic
// and ship a compact ID reference instead of the payload.
//
// Determinism is the load-bearing property: eviction is strict LRU over an
// intrusive list, the size metric is the encoding-independent fp32 wire
// size of each sample, and there is no clock, randomness, or map-iteration
// dependence anywhere in the update path. Two instances fed the same
// Note/Touch sequence hold exactly the same IDs.
package cache

import (
	"plshuffle/internal/data"
)

// lruEntry is one cached sample in the intrusive LRU list.
type lruEntry struct {
	id         int64
	size       int64
	sample     data.Sample // retained only when the cache keeps payloads
	prev, next *lruEntry
}

// SampleLRU is a bounded most-recently-used sample cache. Not safe for
// concurrent use; each instance belongs to one scheduler goroutine.
type SampleLRU struct {
	budget  int64
	used    int64
	retain  bool // keep payloads (receiver segment) or sizes only (sender mirror)
	entries map[int64]*lruEntry
	head    *lruEntry // most recently used
	tail    *lruEntry // least recently used
}

// NewSampleLRU creates a cache holding at most budget bytes of samples
// (measured by their fp32 wire size, independent of the negotiated batch
// encoding). With retainPayloads the cache keeps deep copies of the samples
// (receiver role); without, only IDs and sizes (sender mirror role) — the
// two roles evict in lockstep because the metric is identical.
func NewSampleLRU(budget int64, retainPayloads bool) *SampleLRU {
	return &SampleLRU{
		budget:  budget,
		retain:  retainPayloads,
		entries: make(map[int64]*lruEntry),
	}
}

// sampleSize is the deterministic size metric: the sample's fp32 wire
// encoding. Both mirror and segment use it regardless of how the sample
// actually traveled, so a lossy or compressed wire never desynchronizes
// eviction order.
func sampleSize(s data.Sample) int64 { return int64(s.WireSize()) }

func (c *SampleLRU) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *SampleLRU) pushFront(e *lruEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Touch marks id most-recently-used and reports whether it is cached. Both
// sides of a pair Touch the same IDs in the same order when a reference
// frame is built/materialized, keeping recency in lockstep.
func (c *SampleLRU) Touch(id int64) bool {
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	c.unlink(e)
	c.pushFront(e)
	return true
}

// Note records s as most-recently-used, evicting least-recently-used
// entries until the budget holds. A sample larger than the whole budget is
// simply not cached (after the eviction sweep) — never a panic, never an
// overflow. Re-noting an existing ID refreshes its recency and payload.
func (c *SampleLRU) Note(s data.Sample) {
	id := int64(s.ID)
	size := sampleSize(s)
	if e, ok := c.entries[id]; ok {
		c.unlink(e)
		c.used -= e.size
		delete(c.entries, id)
	}
	for c.used+size > c.budget && c.tail != nil {
		lru := c.tail
		c.unlink(lru)
		c.used -= lru.size
		delete(c.entries, lru.id)
	}
	if c.used+size > c.budget {
		return // larger than the entire budget; uncacheable
	}
	e := &lruEntry{id: id, size: size}
	if c.retain {
		e.sample = s.Clone()
	}
	c.entries[id] = e
	c.pushFront(e)
	c.used += size
}

// Get returns the cached sample for id. It does not refresh recency — the
// protocol Touches refs explicitly, in sorted order, on both sides. Only
// meaningful on payload-retaining caches; a mirror always reports false.
func (c *SampleLRU) Get(id int64) (data.Sample, bool) {
	e, ok := c.entries[id]
	if !ok || !c.retain {
		return data.Sample{}, false
	}
	return e.sample, true
}

// Has reports whether id is cached, without touching recency.
func (c *SampleLRU) Has(id int64) bool {
	_, ok := c.entries[id]
	return ok
}

// Len returns the number of cached samples.
func (c *SampleLRU) Len() int { return len(c.entries) }

// Bytes returns the cached bytes under the fp32 size metric.
func (c *SampleLRU) Bytes() int64 { return c.used }

// Budget returns the configured byte budget.
func (c *SampleLRU) Budget() int64 { return c.budget }

// Clear discards every entry — the dedup invalidation hook: after any event
// that could desynchronize a pair (peer failure recovery, scheduler reset),
// both sides drop to the shared empty state and rebuild from live traffic.
func (c *SampleLRU) Clear() {
	c.entries = make(map[int64]*lruEntry)
	c.head, c.tail = nil, nil
	c.used = 0
}
