package store

import (
	"errors"
	"testing"
	"testing/quick"

	"plshuffle/internal/data"
)

func sample(id int, bytes int64) data.Sample {
	return data.Sample{ID: id, Label: 0, Features: []float32{1}, Bytes: bytes}
}

func TestPutGetDelete(t *testing.T) {
	l := NewLocal(0)
	if err := l.Put(sample(1, 10)); err != nil {
		t.Fatal(err)
	}
	s, err := l.Get(1)
	if err != nil || s.ID != 1 {
		t.Fatalf("Get: %v %v", s, err)
	}
	if !l.Has(1) || l.Has(2) {
		t.Fatal("Has wrong")
	}
	if l.Len() != 1 || l.Used() != 10 {
		t.Fatalf("Len=%d Used=%d", l.Len(), l.Used())
	}
	if err := l.Delete(1); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 || l.Used() != 0 {
		t.Fatal("delete did not release")
	}
	if _, err := l.Get(1); err == nil {
		t.Fatal("Get after delete succeeded")
	}
	if err := l.Delete(1); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestDuplicatePutRejected(t *testing.T) {
	l := NewLocal(0)
	if err := l.Put(sample(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(sample(1, 10)); err == nil {
		t.Fatal("duplicate Put succeeded")
	}
	if l.Used() != 10 {
		t.Fatalf("duplicate Put corrupted accounting: %d", l.Used())
	}
}

func TestCapacityEnforced(t *testing.T) {
	l := NewLocal(25)
	if err := l.Put(sample(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(sample(2, 10)); err != nil {
		t.Fatal(err)
	}
	err := l.Put(sample(3, 10))
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("overflow error = %v, want ErrCapacity", err)
	}
	if l.Len() != 2 || l.Used() != 20 {
		t.Fatal("failed Put modified state")
	}
	// After freeing space the Put succeeds.
	if err := l.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(sample(3, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	l := NewLocal(0)
	for i := 0; i < 5; i++ {
		if err := l.Put(sample(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := l.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if l.Peak() != 50 {
		t.Fatalf("Peak = %d, want 50", l.Peak())
	}
	if l.Used() != 10 {
		t.Fatalf("Used = %d, want 10", l.Used())
	}
}

func TestIDsSortedAndSamplesMatch(t *testing.T) {
	l := NewLocal(0)
	for _, id := range []int{5, 1, 9, 3} {
		if err := l.Put(sample(id, 1)); err != nil {
			t.Fatal(err)
		}
	}
	ids := l.IDs()
	want := []int{1, 3, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v", ids)
		}
	}
	ss := l.Samples()
	for i := range ss {
		if ss[i].ID != want[i] {
			t.Fatalf("Samples order wrong: %v", ss[i].ID)
		}
	}
}

func TestAccountingInvariantQuick(t *testing.T) {
	// Property: Used always equals the sum of stored sample sizes, under
	// arbitrary interleavings of Put and Delete.
	check := func(ops []uint16) bool {
		l := NewLocal(0)
		ref := map[int]int64{}
		for _, op := range ops {
			id := int(op % 64)
			if op%2 == 0 {
				b := int64(op%100) + 1
				if err := l.Put(sample(id, b)); err == nil {
					ref[id] = b
				}
			} else {
				if err := l.Delete(id); err == nil {
					delete(ref, id)
				}
			}
		}
		var want int64
		for _, b := range ref {
			want += b
		}
		return l.Used() == want && l.Len() == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPFS(t *testing.T) {
	train := []data.Sample{sample(0, 5), sample(1, 5), sample(2, 5)}
	p := NewPFS(train)
	if p.Len() != 3 {
		t.Fatalf("PFS.Len = %d", p.Len())
	}
	s, err := p.Read(2)
	if err != nil || s.ID != 2 {
		t.Fatalf("Read: %v %v", s, err)
	}
	if _, err := p.Read(99); err == nil {
		t.Fatal("Read of absent sample succeeded")
	}
}

func TestNewLocalPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLocal(-1) did not panic")
		}
	}()
	NewLocal(-1)
}
