package shard

import (
	"testing"

	"plshuffle/internal/data"
)

// FuzzFromBytes throws arbitrary byte images at the shard parser. The
// contract under fuzzing: never panic, never index out of bounds — and when
// an image IS accepted, every sample in it must be safely iterable (the
// index invariants parse() enforces are exactly what the readers rely on).
func FuzzFromBytes(f *testing.F) {
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "fuzz", NumSamples: 12, NumVal: 4, Classes: 3,
		FeatureDim: 8, ClassSep: 2, NoiseStd: 1, Bytes: 500, Seed: 11,
	})
	if err != nil {
		f.Fatal(err)
	}
	if img, err := EncodeShard(0, ds.Train); err == nil {
		f.Add(img)
	}
	if img, err := EncodeShard(5, ds.Train[:1]); err == nil {
		f.Add(img)
	}
	if img, err := EncodeShard(1, []data.Sample{{ID: 0, Label: 1, Bytes: 9}}); err == nil {
		f.Add(img) // zero-feature sample
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})

	feat := make([]float32, 64)
	f.Fuzz(func(t *testing.T, img []byte) {
		sh, err := FromBytes(img)
		if err != nil {
			return
		}
		if sh.Count() < 0 {
			t.Fatalf("accepted image with negative count %d", sh.Count())
		}
		for i := 0; i < sh.Count(); i++ {
			s, err := sh.View(i)
			if err != nil {
				t.Fatalf("accepted image but View(%d) failed: %v", i, err)
			}
			if len(s.Features) <= len(feat) {
				if _, _, _, _, err := sh.ReadInto(i, feat); err != nil {
					t.Fatalf("accepted image but ReadInto(%d) failed: %v", i, err)
				}
			}
		}
	})
}
