//go:build !unix

package shard

import "os"

// mapping is the platform handle behind an open shard's bytes. Without
// mmap the whole file is read into memory; Close just drops the reference.
type mapping struct{}

func mapFile(path string) ([]byte, mapping, error) {
	b, err := os.ReadFile(path)
	return b, mapping{}, err
}

func (m mapping) close() error { return nil }
