package shard

import (
	"path/filepath"
	"testing"
)

// BenchmarkShardReadInto measures the mmap'd zero-copy sample read — the
// innermost storage hot path every corgi2 training iteration pays per
// sample. Must stay allocation-free.
func BenchmarkShardReadInto(b *testing.B) {
	ds := genDataset(b, 256)
	path := filepath.Join(b.TempDir(), FileName(0))
	if _, err := WriteShard(path, 0, ds.Train); err != nil {
		b.Fatal(err)
	}
	sh, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer sh.Close()
	feat := make([]float32, len(ds.Train[0].Features))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := sh.ReadInto(i%sh.Count(), feat); err != nil {
			b.Fatal(err)
		}
	}
}
