package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"plshuffle/internal/data"
)

// ManifestName is the dataset descriptor file inside an ingested directory.
const ManifestName = "MANIFEST.json"

// valFileName holds the validation split as one shard file.
const valFileName = "val.pls"

// Manifest describes an ingested dataset: the metadata a worker needs to
// plan epochs (counts, dimensions, per-shard sizes) without touching any
// shard file. Every field is derived deterministically from the source
// dataset, so all ranks opening the same directory agree byte for byte.
type Manifest struct {
	FormatVersion   int    `json:"format_version"`
	Name            string `json:"name"`
	NumSamples      int    `json:"num_samples"` // training samples, IDs 0..NumSamples-1
	NumVal          int    `json:"num_val"`
	Classes         int    `json:"classes"`
	FeatureDim      int    `json:"feature_dim"`
	SampleBytes     int64  `json:"sample_bytes"` // simulated bytes per sample
	SamplesPerShard int    `json:"samples_per_shard"`
	NumShards       int    `json:"num_shards"`
	// ShardFileBytes are the real on-disk sizes of each shard file — what
	// the cache tier's byte budget accounts against.
	ShardFileBytes []int64 `json:"shard_file_bytes"`
	ValFileBytes   int64   `json:"val_file_bytes"`
}

// ShardSamples returns the number of samples in a shard (the last shard
// may be short).
func (m Manifest) ShardSamples(shardID int) int {
	if shardID < 0 || shardID >= m.NumShards {
		return 0
	}
	if shardID == m.NumShards-1 {
		if rem := m.NumSamples - shardID*m.SamplesPerShard; rem < m.SamplesPerShard {
			return rem
		}
	}
	return m.SamplesPerShard
}

// MaxShardBytes returns the largest shard file's size — the unit the cache
// tier sizes its pin windows against.
func (m Manifest) MaxShardBytes() int64 {
	var max int64
	for _, b := range m.ShardFileBytes {
		if b > max {
			max = b
		}
	}
	return max
}

// ShardOf maps a training sample ID to its (shard, index) location —
// pure arithmetic, because ingest lays samples out in ID order.
func (m Manifest) ShardOf(sampleID int) Ref {
	return Ref{Shard: sampleID / m.SamplesPerShard, Index: sampleID % m.SamplesPerShard}
}

// Ingest writes ds into dir as a sharded on-disk dataset: train samples in
// ID order packed samplesPerShard to a shard, the validation split as one
// extra shard file, and the manifest. Training sample IDs must enumerate
// 0..N-1 (the synthetic generator's layout) so location stays arithmetic.
func Ingest(dir string, ds *data.Dataset, samplesPerShard int) (*Manifest, error) {
	if samplesPerShard <= 0 {
		return nil, fmt.Errorf("shard: Ingest: samplesPerShard must be positive, got %d", samplesPerShard)
	}
	if len(ds.Train) == 0 {
		return nil, fmt.Errorf("shard: Ingest: empty training set")
	}
	for i, s := range ds.Train {
		if s.ID != i {
			return nil, fmt.Errorf("shard: Ingest: train sample %d has ID %d; IDs must enumerate 0..N-1", i, s.ID)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: Ingest: %w", err)
	}
	n := len(ds.Train)
	numShards := (n + samplesPerShard - 1) / samplesPerShard
	man := &Manifest{
		FormatVersion:   Version,
		Name:            ds.Name,
		NumSamples:      n,
		NumVal:          len(ds.Val),
		Classes:         ds.Classes,
		FeatureDim:      ds.FeatureDim,
		SampleBytes:     ds.SampleBytes,
		SamplesPerShard: samplesPerShard,
		NumShards:       numShards,
		ShardFileBytes:  make([]int64, numShards),
	}
	for sh := 0; sh < numShards; sh++ {
		lo := sh * samplesPerShard
		hi := lo + samplesPerShard
		if hi > n {
			hi = n
		}
		size, err := WriteShard(Path(dir, sh), sh, ds.Train[lo:hi])
		if err != nil {
			return nil, err
		}
		man.ShardFileBytes[sh] = size
	}
	valSize, err := WriteShard(filepath.Join(dir, valFileName), numShards, ds.Val)
	if err != nil {
		return nil, err
	}
	man.ValFileBytes = valSize

	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(b, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("shard: Ingest: %w", err)
	}
	return man, nil
}

// PFSOptions emulate the slow tier's service rate on top of the real
// files, so a laptop run exhibits the paper's PFS-vs-local gap at
// measurable magnitude. Zero values mean "no throttle" (the real device
// speed): the CLIs default to that, while the storage benchmarks and the
// perfmodel-validation test set rates mirroring a Lustre client.
type PFSOptions struct {
	// BytesPerSec caps the sustained fetch bandwidth (0 = unlimited).
	BytesPerSec float64
	// PerShardLatency is charged once per shard fetch — the metadata/open
	// cost (cluster.Machine.PFSMetadataCost's role).
	PerShardLatency time.Duration
}

// Dataset is an open ingested dataset: the manifest plus the fetch path of
// the "PFS" tier. Fetches read whole shard files and verify their CRC; the
// node-local cache tier (internal/store/cache) sits on top. Dataset is
// safe for concurrent use.
type Dataset struct {
	dir string
	man Manifest
	pfs PFSOptions
}

// OpenDataset opens an ingested dataset directory.
func OpenDataset(dir string) (*Dataset, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: OpenDataset: %w (is %s an ingested dataset? see cmd/plsingest)", err, dir)
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("shard: OpenDataset: parsing manifest: %w", err)
	}
	if man.FormatVersion != Version {
		return nil, fmt.Errorf("shard: OpenDataset: manifest format %d, want %d", man.FormatVersion, Version)
	}
	if man.NumShards <= 0 || man.SamplesPerShard <= 0 || man.NumSamples <= 0 ||
		len(man.ShardFileBytes) != man.NumShards ||
		(man.NumShards-1)*man.SamplesPerShard >= man.NumSamples ||
		man.NumShards*man.SamplesPerShard < man.NumSamples {
		return nil, fmt.Errorf("shard: OpenDataset: inconsistent manifest (shards=%d per=%d n=%d)",
			man.NumShards, man.SamplesPerShard, man.NumSamples)
	}
	return &Dataset{dir: dir, man: man}, nil
}

// SetPFSOptions installs the slow-tier emulation (benchmarks and model
// validation); call before any fetch.
func (d *Dataset) SetPFSOptions(o PFSOptions) { d.pfs = o }

// Manifest returns the dataset's manifest.
func (d *Dataset) Manifest() Manifest { return d.man }

// Dir returns the dataset directory.
func (d *Dataset) Dir() string { return d.dir }

// throttle sleeps off the emulated PFS service time not already spent.
func (d *Dataset) throttle(bytes int64, elapsed time.Duration) {
	target := d.pfs.PerShardLatency
	if d.pfs.BytesPerSec > 0 {
		target += time.Duration(float64(bytes) / d.pfs.BytesPerSec * float64(time.Second))
	}
	if target > elapsed {
		time.Sleep(target - elapsed)
	}
}

// FetchShard reads shard file shardID from the PFS tier, verifies it, and
// returns the raw image. This is the slow path the cache tier pays on a
// miss.
func (d *Dataset) FetchShard(shardID int) ([]byte, error) {
	if shardID < 0 || shardID >= d.man.NumShards {
		return nil, fmt.Errorf("shard: FetchShard: shard %d out of [0,%d)", shardID, d.man.NumShards)
	}
	start := time.Now()
	b, err := os.ReadFile(Path(d.dir, shardID))
	if err != nil {
		return nil, fmt.Errorf("shard: FetchShard: %w", err)
	}
	if err := Verify(b); err != nil {
		return nil, fmt.Errorf("shard: FetchShard %d: %w", shardID, err)
	}
	d.throttle(int64(len(b)), time.Since(start))
	return b, nil
}

// LoadVal reads and decodes the validation split (a one-time startup cost;
// validation data lives in RAM like the in-memory path's).
func (d *Dataset) LoadVal() ([]data.Sample, error) {
	sh, err := Open(filepath.Join(d.dir, valFileName))
	if err != nil {
		return nil, err
	}
	defer sh.Close()
	return sh.Samples()
}

// Proxy builds the dataset-shaped view the trainer consumes: metadata plus
// the loaded validation split. Train stays empty — training samples are
// read through the cache tier, never resident all at once.
func (d *Dataset) Proxy() (*data.Dataset, error) {
	val, err := d.LoadVal()
	if err != nil {
		return nil, err
	}
	return &data.Dataset{
		Name:        d.man.Name,
		Val:         val,
		Classes:     d.man.Classes,
		FeatureDim:  d.man.FeatureDim,
		SampleBytes: d.man.SampleBytes,
	}, nil
}
