// Package shard is the on-disk sample store: an immutable, sharded,
// checksummed file format standing in for the parallel file system tier of
// Section III-A, plus an mmap'd read path that serves zero-copy
// data.Sample views into the mapped bytes.
//
// A shard file packs a contiguous run of samples:
//
//	offset 0   magic "PLSSHRD1" (8 bytes)
//	offset 8   version  uint32 (currently 1)
//	offset 12  shard ID uint32
//	offset 16  count    uint32 (samples in this shard)
//	offset 20  reserved uint32 (zero)
//	offset 24  dataLen  uint64 (bytes of the sample data region)
//	offset 32  reserved uint64 (zero)
//	offset 40  data region: count samples back to back, each in the
//	           data.Sample wire encoding (AppendEncode)
//	...        index region: count entries of {id u64, off u64, len u64}
//	           (24 bytes each; off is relative to the data region)
//	...        crc32c   uint32 (Castagnoli, over everything before it)
//
// The trailing CRC makes every shard self-verifying: Open rejects
// truncation and any bit flip anywhere in the file. Sample encodings start
// 4-byte aligned inside the data region (the 40-byte header and the
// 28-byte per-sample header are both multiples of 4, and features are
// float32), which is what lets the reader alias feature vectors straight
// out of the mapping instead of copying.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"plshuffle/internal/data"
)

const (
	// Magic identifies a shard file ("PLSSHRD1").
	Magic = "PLSSHRD1"
	// Version is the current format version.
	Version = 1

	headerLen = 40
	indexLen  = 24 // per-sample index entry
	footerLen = 4  // trailing CRC32C
)

// castagnoli is the CRC32C table (the checksum SSDs and modern filesystems
// use; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Ref addresses one sample inside a sharded dataset: shard ID plus the
// sample's index within the shard. The corgi2 epoch plans are sequences of
// Refs.
type Ref struct {
	Shard int
	Index int
}

// EncodeShard serializes the samples as one shard file image (header, data
// region, index, trailing CRC32C).
func EncodeShard(shardID int, samples []data.Sample) ([]byte, error) {
	if shardID < 0 || shardID > 1<<31 {
		return nil, fmt.Errorf("shard: EncodeShard: shard ID %d out of range", shardID)
	}
	dataLen := 0
	for _, s := range samples {
		dataLen += s.WireSize()
	}
	total := headerLen + dataLen + len(samples)*indexLen + footerLen
	buf := make([]byte, 0, total)

	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shardID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(samples)))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(dataLen))
	buf = binary.LittleEndian.AppendUint64(buf, 0)

	offs := make([]uint64, len(samples))
	off := uint64(0)
	for i, s := range samples {
		offs[i] = off
		buf = s.AppendEncode(buf)
		off += uint64(s.WireSize())
	}
	for i, s := range samples {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.ID))
		buf = binary.LittleEndian.AppendUint64(buf, offs[i])
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.WireSize()))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// WriteShard writes the samples as a shard file at path (atomically, via a
// temp file and rename) and returns the file's byte size.
func WriteShard(path string, shardID int, samples []data.Sample) (int64, error) {
	buf, err := EncodeShard(shardID, samples)
	if err != nil {
		return 0, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return 0, fmt.Errorf("shard: WriteShard: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("shard: WriteShard: %w", err)
	}
	return int64(len(buf)), nil
}

// Verify checks a full shard file image: magic, version, region bounds,
// the trailing CRC32C, and every index entry against its sample header.
// It is what Open runs on every mapping and what the PFS tier runs on
// every fetch, so a flipped bit or a truncated transfer never reaches the
// trainer.
func Verify(buf []byte) error {
	_, err := parse(buf)
	return err
}

// parsed is the validated view of a shard image.
type parsed struct {
	shardID int
	count   int
	data    []byte // the data region
	index   []byte // the index region
}

// parse validates the image and returns region views into it.
func parse(buf []byte) (parsed, error) {
	if len(buf) < headerLen+footerLen {
		return parsed{}, fmt.Errorf("shard: file too short (%d bytes)", len(buf))
	}
	if string(buf[:8]) != Magic {
		return parsed{}, fmt.Errorf("shard: bad magic %q", buf[:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != Version {
		return parsed{}, fmt.Errorf("shard: unsupported version %d", v)
	}
	shardID := binary.LittleEndian.Uint32(buf[12:])
	count := binary.LittleEndian.Uint32(buf[16:])
	dataLen := binary.LittleEndian.Uint64(buf[24:])

	// Bounds before checksum: a hostile length must not index out of range.
	body := uint64(len(buf) - headerLen - footerLen)
	if dataLen > body || uint64(count) > (body-dataLen)/indexLen ||
		headerLen+dataLen+uint64(count)*indexLen+footerLen != uint64(len(buf)) {
		return parsed{}, fmt.Errorf("shard: inconsistent regions (count=%d dataLen=%d fileLen=%d)", count, dataLen, len(buf))
	}
	sum := binary.LittleEndian.Uint32(buf[len(buf)-footerLen:])
	if got := crc32.Checksum(buf[:len(buf)-footerLen], castagnoli); got != sum {
		return parsed{}, fmt.Errorf("shard: checksum mismatch (file %08x, computed %08x): corrupt or truncated", sum, got)
	}

	p := parsed{
		shardID: int(shardID),
		count:   int(count),
		data:    buf[headerLen : headerLen+dataLen],
		index:   buf[headerLen+dataLen : uint64(len(buf))-footerLen],
	}
	// Index entries must address well-formed sample encodings. The CRC
	// already proved the bytes are the writer's; this catches writer bugs
	// and keeps the per-read path free of bounds checks.
	for i := 0; i < p.count; i++ {
		id, off, n := p.entry(i)
		if off+n > uint64(len(p.data)) || n < sampleHeaderLen || n%4 != 0 || off%4 != 0 {
			return parsed{}, fmt.Errorf("shard: index entry %d out of bounds (off=%d len=%d data=%d)", i, off, n, len(p.data))
		}
		enc := p.data[off : off+n]
		if gotID := int64(binary.LittleEndian.Uint64(enc)); gotID != id {
			return parsed{}, fmt.Errorf("shard: index entry %d: id %d but sample header says %d", i, id, gotID)
		}
		feat := binary.LittleEndian.Uint32(enc[24:])
		if sampleHeaderLen+4*uint64(feat) != n {
			return parsed{}, fmt.Errorf("shard: index entry %d: %d features do not fill %d bytes", i, feat, n)
		}
	}
	return p, nil
}

// sampleHeaderLen mirrors the data.Sample wire header: ID, Label, Bytes
// (8 each) + feature count (4).
const sampleHeaderLen = 28

// entry returns index entry i as (sample ID, data-region offset, length).
func (p parsed) entry(i int) (id int64, off, n uint64) {
	e := p.index[i*indexLen:]
	return int64(binary.LittleEndian.Uint64(e)),
		binary.LittleEndian.Uint64(e[8:]),
		binary.LittleEndian.Uint64(e[16:])
}

// FileName returns the canonical shard file name for a shard ID.
func FileName(shardID int) string {
	return fmt.Sprintf("shard-%04d.pls", shardID)
}

// Path returns the canonical shard file path inside a dataset directory.
func Path(dir string, shardID int) string {
	return filepath.Join(dir, FileName(shardID))
}
