//go:build unix

package shard

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is the platform handle behind an open shard's bytes.
type mapping struct {
	mapped []byte
}

// mapFile memory-maps the file read-only. The kernel's page cache then
// backs every read — the node-local tier's "warm" rate is the page-cache
// rate, exactly the LocalSeqBW story of the performance model. An empty
// mapping is never needed: a valid shard file is at least header+CRC.
func mapFile(path string) ([]byte, mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, mapping{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, mapping{}, err
	}
	size := st.Size()
	if size <= 0 || size > 1<<40 {
		return nil, mapping{}, fmt.Errorf("file size %d unmappable", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, mapping{}, fmt.Errorf("mmap: %w", err)
	}
	return b, mapping{mapped: b}, nil
}

func (m mapping) close() error {
	if m.mapped == nil {
		return nil
	}
	return syscall.Munmap(m.mapped)
}
