package shard

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"plshuffle/internal/data"
)

// hostLittle reports whether this machine is little-endian — the condition
// for aliasing float32 features straight out of the mapped file bytes. On
// a big-endian host the readers fall back to an explicit decode.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Shard is an open, verified, read-only shard. The sample data stays in
// the page cache via mmap (on unix; an in-memory copy elsewhere), so
// steady-state reads allocate nothing and copy at most once — into the
// caller's batch tensor. A Shard is safe for concurrent readers.
type Shard struct {
	p   parsed
	buf []byte // the full mapping (or heap copy); nil after Close
	m   mapping
}

// Open maps the shard file at path and verifies its checksum and index.
func Open(path string) (*Shard, error) {
	buf, m, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: Open %s: %w", path, err)
	}
	p, err := parse(buf)
	if err != nil {
		m.close()
		return nil, fmt.Errorf("shard: Open %s: %w", path, err)
	}
	return &Shard{p: p, buf: buf, m: m}, nil
}

// FromBytes opens a shard from an in-memory image (no file backing). The
// image is retained; the caller must not mutate it afterwards.
func FromBytes(buf []byte) (*Shard, error) {
	p, err := parse(buf)
	if err != nil {
		return nil, err
	}
	return &Shard{p: p, buf: buf}, nil
}

// Close unmaps the shard. Samples previously viewed with View must not be
// used after Close.
func (sh *Shard) Close() error {
	sh.buf = nil
	sh.p = parsed{}
	return sh.m.close()
}

// ID returns the shard's ID from its header.
func (sh *Shard) ID() int { return sh.p.shardID }

// Count returns the number of samples in the shard.
func (sh *Shard) Count() int { return sh.p.count }

// Size returns the shard file's byte size.
func (sh *Shard) Size() int64 {
	return int64(headerLen + len(sh.p.data) + len(sh.p.index) + footerLen)
}

// header decodes sample i's fixed header fields and returns its encoding.
func (sh *Shard) header(i int) (enc []byte, id, label int, sim int64, feat int, err error) {
	if i < 0 || i >= sh.p.count {
		return nil, 0, 0, 0, 0, fmt.Errorf("shard %d: sample index %d out of [0,%d)", sh.p.shardID, i, sh.p.count)
	}
	_, off, n := sh.p.entry(i)
	enc = sh.p.data[off : off+n]
	id = int(int64(binary.LittleEndian.Uint64(enc)))
	label = int(int64(binary.LittleEndian.Uint64(enc[8:])))
	sim = int64(binary.LittleEndian.Uint64(enc[16:]))
	feat = int(binary.LittleEndian.Uint32(enc[24:]))
	return enc, id, label, sim, feat, nil
}

// View returns sample i as a data.Sample whose Features alias the mapped
// file when the host is little-endian (zero-copy; valid only until Close)
// and are decoded copies otherwise. Callers that need the sample beyond
// the shard's lifetime must Clone it.
func (sh *Shard) View(i int) (data.Sample, error) {
	enc, id, label, sim, feat, err := sh.header(i)
	if err != nil {
		return data.Sample{}, err
	}
	s := data.Sample{ID: id, Label: label, Bytes: sim}
	if feat > 0 {
		raw := enc[sampleHeaderLen:]
		if hostLittle {
			// Feature bytes start 4-aligned (header and every sample length
			// are multiples of 4), so the alias is a legal []float32 view.
			s.Features = unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), feat)
		} else {
			s.Features = make([]float32, feat)
			for j := range s.Features {
				s.Features[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
			}
		}
	}
	return s, nil
}

// ReadInto copies sample i's features into feat (which must hold at least
// the sample's feature count) and returns its metadata. It is the
// batch-assembly hot path: zero allocations, one copy into the caller's
// tensor row.
func (sh *Shard) ReadInto(i int, feat []float32) (id, label int, sim int64, n int, err error) {
	enc, id, label, sim, n, err := sh.header(i)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if n > len(feat) {
		return 0, 0, 0, 0, fmt.Errorf("shard %d: sample %d has %d features, buffer holds %d", sh.p.shardID, i, n, len(feat))
	}
	if n == 0 {
		return id, label, sim, 0, nil
	}
	raw := enc[sampleHeaderLen:]
	if hostLittle {
		src := unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), n)
		copy(feat[:n], src)
	} else {
		for j := 0; j < n; j++ {
			feat[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
		}
	}
	return id, label, sim, n, nil
}

// Samples decodes every sample in the shard (copies, not views) — the
// ingest round-trip check and the validation-set loader use it; the
// training hot path uses ReadInto instead.
func (sh *Shard) Samples() ([]data.Sample, error) {
	out := make([]data.Sample, sh.p.count)
	for i := range out {
		v, err := sh.View(i)
		if err != nil {
			return nil, err
		}
		out[i] = v.Clone()
	}
	return out, nil
}
