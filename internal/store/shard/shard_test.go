package shard

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"plshuffle/internal/data"
)

func genDataset(t testing.TB, n int) *data.Dataset {
	t.Helper()
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "shard-test", NumSamples: n, NumVal: n / 4, Classes: 4,
		FeatureDim: 16, ClassSep: 3, NoiseStd: 1.0, Bytes: 1000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestShardRoundTrip(t *testing.T) {
	ds := genDataset(t, 64)
	path := filepath.Join(t.TempDir(), FileName(3))
	if _, err := WriteShard(path, 3, ds.Train); err != nil {
		t.Fatal(err)
	}
	sh, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.ID() != 3 || sh.Count() != len(ds.Train) {
		t.Fatalf("ID=%d Count=%d, want 3, %d", sh.ID(), sh.Count(), len(ds.Train))
	}
	got, err := sh.Samples()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ds.Train {
		g := got[i]
		if g.ID != want.ID || g.Label != want.Label || g.Bytes != want.Bytes {
			t.Fatalf("sample %d metadata mismatch: %+v vs %+v", i, g, want)
		}
		for j := range want.Features {
			if math.Float32bits(g.Features[j]) != math.Float32bits(want.Features[j]) {
				t.Fatalf("sample %d feature %d mismatch", i, j)
			}
		}
	}
}

func TestShardReadInto(t *testing.T) {
	ds := genDataset(t, 16)
	img, err := EncodeShard(0, ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := FromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, ds.FeatureDim)
	for i, want := range ds.Train {
		id, label, sim, n, err := sh.ReadInto(i, feat)
		if err != nil {
			t.Fatal(err)
		}
		if id != want.ID || label != want.Label || sim != want.Bytes || n != len(want.Features) {
			t.Fatalf("sample %d: got (%d,%d,%d,%d)", i, id, label, sim, n)
		}
		for j := range want.Features {
			if math.Float32bits(feat[j]) != math.Float32bits(want.Features[j]) {
				t.Fatalf("sample %d feature %d mismatch", i, j)
			}
		}
	}
	if _, _, _, _, err := sh.ReadInto(0, make([]float32, 2)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, _, _, _, err := sh.ReadInto(len(ds.Train), feat); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestShardReadIntoAllocs pins the hot path at zero allocations.
func TestShardReadIntoAllocs(t *testing.T) {
	ds := genDataset(t, 16)
	img, err := EncodeShard(0, ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := FromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float32, ds.FeatureDim)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < sh.Count(); i++ {
			if _, _, _, _, err := sh.ReadInto(i, feat); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadInto allocates %.1f per epoch pass, want 0", allocs)
	}
}

// TestShardRejectsCorruption flips every byte of a valid image, one at a
// time, and requires the parser to reject each mutant: the trailing CRC32C
// covers the whole file, so no single-bit corruption can slip through.
func TestShardRejectsCorruption(t *testing.T) {
	ds := genDataset(t, 8)
	img, err := EncodeShard(0, ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	mutant := make([]byte, len(img))
	for i := range img {
		copy(mutant, img)
		mutant[i] ^= 0x40
		if _, err := FromBytes(mutant); err == nil {
			t.Fatalf("bit flip at byte %d/%d accepted", i, len(img))
		}
	}
}

// TestShardRejectsTruncation requires every proper prefix to be rejected.
func TestShardRejectsTruncation(t *testing.T) {
	ds := genDataset(t, 8)
	img, err := EncodeShard(0, ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(img); n++ {
		if _, err := FromBytes(img[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(img))
		}
	}
}

func TestIngestAndOpenDataset(t *testing.T) {
	ds := genDataset(t, 100)
	dir := t.TempDir()
	man, err := Ingest(dir, ds, 32)
	if err != nil {
		t.Fatal(err)
	}
	if man.NumShards != 4 || man.ShardSamples(3) != 4 || man.ShardSamples(0) != 32 {
		t.Fatalf("shard layout: shards=%d last=%d first=%d", man.NumShards, man.ShardSamples(3), man.ShardSamples(0))
	}
	opened, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := opened.Manifest(); got.NumSamples != 100 || got.NumShards != 4 {
		t.Fatalf("manifest mismatch: %+v", got)
	}
	// Every sample reachable at its arithmetic location, with the right ID.
	for id := 0; id < man.NumSamples; id++ {
		ref := man.ShardOf(id)
		img, err := opened.FetchShard(ref.Shard)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := FromBytes(img)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sh.View(ref.Index)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID != id {
			t.Fatalf("sample %d found at %+v with ID %d", id, ref, s.ID)
		}
	}
	val, err := opened.LoadVal()
	if err != nil {
		t.Fatal(err)
	}
	if len(val) != len(ds.Val) {
		t.Fatalf("val split: %d samples, want %d", len(val), len(ds.Val))
	}
	proxy, err := opened.Proxy()
	if err != nil {
		t.Fatal(err)
	}
	if len(proxy.Train) != 0 || len(proxy.Val) != len(ds.Val) || proxy.FeatureDim != ds.FeatureDim {
		t.Fatalf("proxy shape: train=%d val=%d dim=%d", len(proxy.Train), len(proxy.Val), proxy.FeatureDim)
	}
}

func TestIngestRejectsBadInput(t *testing.T) {
	ds := genDataset(t, 16)
	if _, err := Ingest(t.TempDir(), ds, 0); err == nil {
		t.Fatal("samplesPerShard=0 accepted")
	}
	bad := *ds
	bad.Train = append([]data.Sample(nil), ds.Train...)
	bad.Train[3].ID = 999
	if _, err := Ingest(t.TempDir(), &bad, 8); err == nil {
		t.Fatal("non-enumerating IDs accepted")
	}
}

func TestOpenDatasetRejectsBadManifest(t *testing.T) {
	if _, err := OpenDataset(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
	ds := genDataset(t, 16)
	dir := t.TempDir()
	if _, err := Ingest(dir, ds, 8); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(`{"format_version":1,"num_shards":-1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDataset(dir); err == nil {
		t.Fatal("inconsistent manifest accepted")
	}
}
