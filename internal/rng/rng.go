// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the shuffling library.
//
// The paper's exchange scheme (Algorithm 1) requires that every worker can
// regenerate the exact same random permutation of ranks for a given
// (seed, epoch, slot) triple without any communication. The standard library
// generators do not document cross-version stream stability, so this package
// implements xoshiro256** with a SplitMix64 seeder, both of which are fixed
// algorithms with published reference outputs.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used both to seed xoshiro256** and to mix stream identifiers.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; create one generator per goroutine (they are cheap).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from a single 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewStream returns a generator for an independent stream identified by
// (seed, stream...). Two calls with the same arguments yield identical
// sequences; differing arguments yield (statistically) independent ones.
// This is how Algorithm 1 derives the shared per-epoch, per-slot rank
// permutations: every worker calls NewStream(seed, epoch, slot).
func NewStream(seed uint64, stream ...uint64) *Rand {
	st := seed
	for _, s := range stream {
		// Fold each stream component through the SplitMix64 mixer so that
		// nearby identifiers (epoch, epoch+1) produce unrelated states.
		st = splitMix64(&st) ^ (s * 0x9e3779b97f4a7c15)
	}
	return New(st)
}

// Seed resets the generator state from a 64-bit seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro256** requires a non-zero state; SplitMix64 of any seed is
	// astronomically unlikely to produce all zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// State returns the raw xoshiro256** state. Together with SetState it
// allows a generator's stream position to be checkpointed and later resumed
// bitwise: SetState(State()) followed by the same draw sequence yields the
// same outputs.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a generator to a previously captured State. An all-zero
// state is invalid for xoshiro256** and is mapped to the same guard value
// Seed uses, so a corrupted checkpoint cannot wedge the generator.
func (r *Rand) SetState(s [4]uint64) {
	r.s = s
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate (Box–Muller; polar form is
// avoided to keep the stream consumption deterministic at two draws).
func (r *Rand) NormFloat64() float64 {
	// Box–Muller: u1 in (0,1] so that Log is finite.
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormFloat32 returns a standard normal variate as float32.
func (r *Rand) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs an in-place Fisher–Yates shuffle of n elements using the
// provided swap function, matching the semantics of math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// PermInto fills dst (len n) with a random permutation of [0, n), avoiding
// an allocation in hot loops such as the per-slot destination permutations.
func (r *Rand) PermInto(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}
