package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(7, 3, 11)
	b := NewStream(7, 3, 11)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal streams diverged at step %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	// Nearby stream identifiers must not produce correlated output.
	a := NewStream(7, 0, 0)
	b := NewStream(7, 0, 1)
	c := NewStream(7, 1, 0)
	va, vb, vc := a.Uint64(), b.Uint64(), c.Uint64()
	if va == vb || va == vc || vb == vc {
		t.Fatalf("adjacent streams collided: %d %d %d", va, vb, vc)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates more than 5 sigma from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32() = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(12345)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	a := New(77)
	b := New(77)
	p1 := a.Perm(33)
	p2 := make([]int, 33)
	b.PermInto(p2)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("PermInto diverged from Perm at %d: %d vs %d", i, p1[i], p2[i])
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of Perm(n) should be uniform over [0,n).
	r := New(2024)
	const n, draws = 8, 40000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("first-element bucket %d: count %d deviates from %v", i, c, want)
		}
	}
}

func TestShuffleZeroAndOne(t *testing.T) {
	r := New(1)
	r.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	r.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

func TestKnownAnswerStability(t *testing.T) {
	// Pin the stream so that accidental algorithm changes (which would break
	// cross-worker agreement in Algorithm 1) are caught.
	r := New(0)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(0)
	want := []uint64{r2.Uint64(), r2.Uint64(), r2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream not reproducible at %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPerm1024(b *testing.B) {
	r := New(1)
	dst := make([]int, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PermInto(dst)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 1000; i++ {
		r.Uint64() // advance to an arbitrary mid-stream position
	}
	snap := r.State()
	want := make([]uint64, 64)
	for i := range want {
		want[i] = r.Uint64()
	}
	r2 := &Rand{}
	r2.SetState(snap)
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverges at draw %d: got %d want %d", i, got, want[i])
		}
	}
	// Restoring the original generator rewinds it too.
	r.SetState(snap)
	if got := r.Uint64(); got != want[0] {
		t.Fatalf("rewind failed: got %d want %d", got, want[0])
	}
}

func TestSetStateZeroGuard(t *testing.T) {
	r := &Rand{}
	r.SetState([4]uint64{})
	// Must not be wedged at zero: xoshiro256** with all-zero state emits
	// zeros forever.
	var any uint64
	for i := 0; i < 8; i++ {
		any |= r.Uint64()
	}
	if any == 0 {
		t.Fatal("SetState accepted the invalid all-zero state")
	}
}
