// Package mpi implements an in-process message-passing runtime with MPI-like
// semantics: ranks, non-blocking point-to-point operations with tag and
// ANY_SOURCE matching, and the collectives required by distributed SGD
// (Barrier, Bcast, Reduce, Allreduce, Allgather, Alltoall, Gather).
//
// The paper's sample-exchange scheme (Algorithm 1) is specified in terms of
// MPI_Isend/MPI_Irecv with MPI_ANY_SOURCE, and the trainer relies on
// Allreduce for gradient averaging. This package reproduces those semantics
// over goroutines and channels so the full system runs on a single machine:
//
//   - Message matching follows the MPI ordering rule: messages between a
//     pair of ranks with the same tag are non-overtaking (FIFO), and a
//     posted receive matches the earliest acceptable message.
//   - Isend completes eagerly (the payload is copied into the runtime), so a
//     send request is always immediately complete, as with small-message
//     eager protocols in real MPI implementations.
//   - Collectives must be invoked by every rank of the world in the same
//     program order; they are internally sequenced so that back-to-back
//     collectives never interfere.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// AnySource matches a receive against messages from any sending rank,
// mirroring MPI_ANY_SOURCE.
const AnySource = -1

// AnyTag matches a receive against messages with any tag, mirroring
// MPI_ANY_TAG. User tags must be non-negative; negative tags are reserved
// for internal collective traffic.
const AnyTag = -1

// Status describes a completed receive: which rank the message came from and
// with which tag it was sent.
type Status struct {
	Source int
	Tag    int
}

// message is a queued in-flight message.
type message struct {
	src     int
	tag     int
	payload any
}

// pendingRecv is a posted, not-yet-matched receive.
type pendingRecv struct {
	src int // AnySource allowed
	tag int // AnyTag allowed
	req *Request
}

// Request represents an outstanding non-blocking operation. Wait blocks
// until the operation completes and returns the received payload (nil for
// sends) together with its Status.
type Request struct {
	world   *World
	done    chan struct{}
	payload any
	status  Status
}

func completedRequest() *Request {
	r := &Request{done: make(chan struct{})}
	close(r.done)
	return r
}

// abortSignal is the panic value used to unwind a rank when the world is
// aborted (another rank failed). Run recovers it and reports an abort
// error for the rank, mirroring MPI_Abort semantics.
type abortSignal struct{}

// Wait blocks until the request completes. For receives it returns the
// payload and the source/tag status; for sends payload is nil. If the
// world is aborted while waiting, Wait panics with an abort signal that
// Run converts into a per-rank error.
func (r *Request) Wait() (any, Status) {
	select {
	case <-r.done:
		return r.payload, r.status
	default:
	}
	if r.world == nil {
		<-r.done
		return r.payload, r.status
	}
	select {
	case <-r.done:
		return r.payload, r.status
	case <-r.world.abortCh:
		panic(abortSignal{})
	}
}

// Test reports whether the request has completed without blocking. When it
// returns true, payload and status carry the same values Wait would return.
func (r *Request) Test() (bool, any, Status) {
	select {
	case <-r.done:
		return true, r.payload, r.status
	default:
		return false, nil, Status{}
	}
}

// WaitAll waits for every request in reqs.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// mailbox is the per-rank matching engine: a queue of unexpected messages
// and a queue of posted receives, guarded by a mutex. Matching follows MPI
// semantics (earliest acceptable entry wins; per-(src,tag) FIFO order is
// preserved because senders append in their program order and receivers
// scan in arrival order).
type mailbox struct {
	mu         sync.Mutex
	unexpected []message
	posted     []pendingRecv
}

// deliver hands an incoming message to the engine, completing the earliest
// matching posted receive or queueing the message as unexpected.
func (mb *mailbox) deliver(m message) {
	mb.mu.Lock()
	for i, pr := range mb.posted {
		if (pr.src == AnySource || pr.src == m.src) && (pr.tag == AnyTag || pr.tag == m.tag) {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			mb.mu.Unlock()
			pr.req.payload = m.payload
			pr.req.status = Status{Source: m.src, Tag: m.tag}
			close(pr.req.done)
			return
		}
	}
	mb.unexpected = append(mb.unexpected, m)
	mb.mu.Unlock()
}

// post registers a receive, completing it immediately if a matching
// unexpected message has already arrived.
func (mb *mailbox) post(src, tag int, req *Request) {
	mb.mu.Lock()
	for i, m := range mb.unexpected {
		if (src == AnySource || src == m.src) && (tag == AnyTag || tag == m.tag) {
			mb.unexpected = append(mb.unexpected[:i], mb.unexpected[i+1:]...)
			mb.mu.Unlock()
			req.payload = m.payload
			req.status = Status{Source: m.src, Tag: m.tag}
			close(req.done)
			return
		}
	}
	mb.posted = append(mb.posted, pendingRecv{src: src, tag: tag, req: req})
	mb.mu.Unlock()
}

// World is a set of communicating ranks living in one process.
type World struct {
	size      int
	mailboxes []mailbox
	barrier   *barrier
	comms     []*Comm
	abortCh   chan struct{}
	abortOnce sync.Once
}

// NewWorld creates a world with the given number of ranks. It panics if
// size is not positive, since a world without ranks cannot host a program.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: NewWorld(%d): size must be positive", size))
	}
	w := &World{
		size:      size,
		mailboxes: make([]mailbox, size),
		barrier:   newBarrier(size),
		abortCh:   make(chan struct{}),
	}
	w.comms = make([]*Comm, size)
	for r := 0; r < size; r++ {
		w.comms[r] = &Comm{world: w, rank: r}
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Abort wakes every rank blocked in a Wait or Barrier; they unwind with an
// abort error. It is the in-process analogue of MPI_Abort and is invoked
// automatically by Run when any rank returns an error or panics, so a
// failing rank cannot strand its peers in a collective.
func (w *World) Abort() {
	w.abortOnce.Do(func() {
		close(w.abortCh)
		w.barrier.abort()
	})
}

// Comm returns the communicator endpoint for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: Comm(%d): rank out of range [0,%d)", rank, w.size))
	}
	return w.comms[rank]
}

// Comm is one rank's endpoint into a World. A Comm must only be used by the
// goroutine that owns the rank (the usual MPI single-threaded-rank model);
// the runtime itself synchronizes cross-rank delivery.
type Comm struct {
	world *World
	rank  int
	// collSeq sequences collective operations. Every rank calls collectives
	// in the same program order, so the counters stay in lock-step and the
	// derived internal tags never collide across concurrent collectives.
	collSeq int
}

// Rank returns this endpoint's rank in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Isend starts a non-blocking send of payload to rank dest with the given
// tag. The payload is copied for common slice types (see clonePayload), so
// the caller may reuse its buffers immediately. The returned request is
// already complete; Wait on it is allowed and returns instantly.
func (c *Comm) Isend(dest, tag int, payload any) *Request {
	c.checkRank(dest, "Isend")
	c.checkUserTag(tag, "Isend")
	c.world.mailboxes[dest].deliver(message{src: c.rank, tag: tag, payload: clonePayload(payload)})
	return completedRequest()
}

// Irecv posts a non-blocking receive matching the given source (or
// AnySource) and tag (or AnyTag). The returned request completes when a
// matching message arrives.
func (c *Comm) Irecv(src, tag int) *Request {
	if src != AnySource {
		c.checkRank(src, "Irecv")
	}
	if tag != AnyTag {
		c.checkUserTag(tag, "Irecv")
	}
	req := &Request{world: c.world, done: make(chan struct{})}
	c.world.mailboxes[c.rank].post(src, tag, req)
	return req
}

// Send is a blocking send (Isend + Wait).
func (c *Comm) Send(dest, tag int, payload any) {
	c.Isend(dest, tag, payload).Wait()
}

// Recv is a blocking receive (Irecv + Wait).
func (c *Comm) Recv(src, tag int) (any, Status) {
	return c.Irecv(src, tag).Wait()
}

// SendRecv performs a combined send and receive, safe against the pairwise
// exchange deadlock (both sides send first, then receive).
func (c *Comm) SendRecv(dest, sendTag int, payload any, src, recvTag int) (any, Status) {
	req := c.Irecv(src, recvTag)
	c.Isend(dest, sendTag, payload)
	return req.Wait()
}

// Barrier blocks until every rank in the world has entered the barrier.
func (c *Comm) Barrier() {
	c.world.barrier.await()
}

func (c *Comm) checkRank(r int, op string) {
	if r < 0 || r >= c.world.size {
		panic(fmt.Sprintf("mpi: %s: rank %d out of range [0,%d)", op, r, c.world.size))
	}
}

func (c *Comm) checkUserTag(tag int, op string) {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: %s: tag %d is negative; negative tags are reserved", op, tag))
	}
}

// isendInternal bypasses the user-tag check for collective traffic.
func (c *Comm) isendInternal(dest, tag int, payload any) {
	c.checkRank(dest, "isendInternal")
	c.world.mailboxes[dest].deliver(message{src: c.rank, tag: tag, payload: clonePayload(payload)})
}

func (c *Comm) irecvInternal(src, tag int) *Request {
	req := &Request{world: c.world, done: make(chan struct{})}
	c.world.mailboxes[c.rank].post(src, tag, req)
	return req
}

// barrier is a reusable counting barrier with generations and abort
// support.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	count   int
	gen     int
	aborted bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(abortSignal{})
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	aborted := b.aborted
	b.mu.Unlock()
	if aborted {
		panic(abortSignal{})
	}
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// clonePayload defensively copies the slice types commonly exchanged by the
// library (gradients, sample bytes, ID lists) so distributed-memory
// semantics hold: after a send, mutating the caller's buffer must not affect
// the receiver. Other payload types are passed by reference; callers sending
// custom types must treat them as immutable after the send.
func clonePayload(p any) any {
	switch v := p.(type) {
	case []float32:
		out := make([]float32, len(v))
		copy(out, v)
		return out
	case []float64:
		out := make([]float64, len(v))
		copy(out, v)
		return out
	case []int:
		out := make([]int, len(v))
		copy(out, v)
		return out
	case []byte:
		out := make([]byte, len(v))
		copy(out, v)
		return out
	default:
		return p
	}
}

// Run creates a world of n ranks, runs fn once per rank in its own
// goroutine, and waits for all ranks to finish. The returned error joins
// every per-rank error. If any rank returns an error or panics, the world
// is aborted: ranks blocked in Wait or Barrier unwind with an abort error
// instead of deadlocking (MPI_Abort semantics).
func Run(n int, fn func(c *Comm) error) error {
	w := NewWorld(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(abortSignal); ok {
						errs[rank] = fmt.Errorf("mpi: rank %d aborted because another rank failed", rank)
					} else {
						errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					}
					w.Abort()
				}
			}()
			if err := fn(w.Comm(rank)); err != nil {
				errs[rank] = err
				w.Abort()
			}
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}
