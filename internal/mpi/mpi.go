// Package mpi implements a message-passing runtime with MPI-like semantics:
// ranks, non-blocking point-to-point operations with tag and ANY_SOURCE
// matching, and the collectives required by distributed SGD (Barrier, Bcast,
// Reduce, Allreduce, Allgather, Alltoall, Gather).
//
// The paper's sample-exchange scheme (Algorithm 1) is specified in terms of
// MPI_Isend/MPI_Irecv with MPI_ANY_SOURCE, and the trainer relies on
// Allreduce for gradient averaging. This package reproduces those semantics
// over a pluggable transport (internal/transport): the matching engine,
// collectives, and request machinery live here; frames move over either the
// in-process backend (goroutine ranks, the default used by Run/NewWorld) or
// the TCP backend (one OS process per rank, via Connect):
//
//   - Message matching follows the MPI ordering rule: messages between a
//     pair of ranks with the same tag are non-overtaking (FIFO), and a
//     posted receive matches the earliest acceptable message.
//   - Isend completes eagerly (the payload is copied or serialized into the
//     runtime), so a send request is always immediately complete, as with
//     small-message eager protocols in real MPI implementations.
//   - Collectives must be invoked by every rank of the world in the same
//     program order; they are internally sequenced so that back-to-back
//     collectives never interfere. Barrier is a dissemination barrier built
//     from the same point-to-point machinery, so it works identically over
//     every backend.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"plshuffle/internal/transport"
	"plshuffle/internal/transport/inproc"
)

// AnySource matches a receive against messages from any sending rank,
// mirroring MPI_ANY_SOURCE.
const AnySource = -1

// AnyTag matches a receive against messages with any tag, mirroring
// MPI_ANY_TAG. User tags must be non-negative; negative tags are reserved
// for internal collective traffic.
const AnyTag = -1

// Status describes a completed receive: which rank the message came from and
// with which tag it was sent.
type Status struct {
	Source int
	Tag    int
	// Wire is the exact number of bytes the message's frame occupied on the
	// wire (compressed size if it traveled compressed; see transport.Frame).
	// Zero for self-delivered messages and on backends that don't meter
	// frames — callers fall back to transport.FrameWireSize then.
	Wire int64
}

// message is a queued in-flight message.
type message struct {
	src     int
	tag     int
	payload any
	wire    int64
}

// pendingRecv is a posted, not-yet-matched receive.
type pendingRecv struct {
	src int // AnySource allowed
	tag int // AnyTag allowed
	req *Request
}

// Request represents an outstanding non-blocking operation. Wait blocks
// until the operation completes and returns the received payload (nil for
// sends) together with its Status.
type Request struct {
	abortCh  <-chan struct{}
	closedCh <-chan struct{}
	done     chan struct{}
	payload  any
	status   Status
}

func completedRequest() *Request {
	r := &Request{done: make(chan struct{})}
	close(r.done)
	return r
}

// abortSignal is the panic value used to unwind a rank when the world is
// aborted (another rank failed). Run recovers it and reports an abort
// error for the rank, mirroring MPI_Abort semantics.
type abortSignal struct{}

// transportFailure is the panic value used to unwind a rank when its
// transport connection fails (e.g. a TCP peer is unreachable after the
// retry budget). Run and Execute recover it into a wrapped error.
type transportFailure struct{ err error }

// Wait blocks until the request completes. For receives it returns the
// payload and the source/tag status; for sends payload is nil. If the
// world is aborted while waiting, Wait panics with an abort signal that
// Run converts into a per-rank error; if the communicator is closed while
// waiting, it panics with a transport failure wrapping ErrCommClosed — so
// a Close from a watchdog goroutine wakes a blocked Recv instead of
// leaking it.
func (r *Request) Wait() (any, Status) {
	select {
	case <-r.done:
		return r.payload, r.status
	default:
	}
	if r.abortCh == nil && r.closedCh == nil {
		<-r.done
		return r.payload, r.status
	}
	// A nil channel blocks its case forever, so the select degrades
	// gracefully when only one watch channel is present.
	select {
	case <-r.done:
		return r.payload, r.status
	case <-r.abortCh:
		panic(abortSignal{})
	case <-r.closedCh:
		// Give a frame already in flight one last chance: the matching
		// engine is memory, not sockets, so a delivered message should win
		// over the teardown race.
		select {
		case <-r.done:
			return r.payload, r.status
		default:
		}
		panic(transportFailure{ErrCommClosed})
	}
}

// Test reports whether the request has completed without blocking. When it
// returns true, payload and status carry the same values Wait would return.
func (r *Request) Test() (bool, any, Status) {
	select {
	case <-r.done:
		return true, r.payload, r.status
	default:
		return false, nil, Status{}
	}
}

// WaitAll waits for every request in reqs.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// mailbox is the per-rank matching engine: a queue of unexpected messages
// and a queue of posted receives, guarded by a mutex. Matching follows MPI
// semantics (earliest acceptable entry wins; per-(src,tag) FIFO order is
// preserved because senders append in their program order and receivers
// scan in arrival order).
type mailbox struct {
	mu         sync.Mutex
	unexpected []message
	posted     []pendingRecv
}

// deliver hands an incoming message to the engine, completing the earliest
// matching posted receive or queueing the message as unexpected.
func (mb *mailbox) deliver(m message) {
	mb.mu.Lock()
	for i, pr := range mb.posted {
		if (pr.src == AnySource || pr.src == m.src) && (pr.tag == AnyTag || pr.tag == m.tag) {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			mb.mu.Unlock()
			pr.req.payload = m.payload
			pr.req.status = Status{Source: m.src, Tag: m.tag, Wire: m.wire}
			close(pr.req.done)
			return
		}
	}
	mb.unexpected = append(mb.unexpected, m)
	mb.mu.Unlock()
}

// post registers a receive, completing it immediately if a matching
// unexpected message has already arrived.
func (mb *mailbox) post(src, tag int, req *Request) {
	mb.mu.Lock()
	for i, m := range mb.unexpected {
		if (src == AnySource || src == m.src) && (tag == AnyTag || tag == m.tag) {
			mb.unexpected = append(mb.unexpected[:i], mb.unexpected[i+1:]...)
			mb.mu.Unlock()
			req.payload = m.payload
			req.status = Status{Source: m.src, Tag: m.tag, Wire: m.wire}
			close(req.done)
			return
		}
	}
	mb.posted = append(mb.posted, pendingRecv{src: src, tag: tag, req: req})
	mb.mu.Unlock()
}

// cancel withdraws a posted receive from the matching engine. It returns
// false when the receive already matched a message (the caller should then
// consume the request normally) — the cancel-versus-delivery race is
// resolved inside the mailbox lock, so a message is never half-consumed.
func (mb *mailbox) cancel(req *Request) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, pr := range mb.posted {
		if pr.req == req {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			return true
		}
	}
	return false
}

// World is a set of communicating ranks living in one process, backed by
// the inproc transport.
type World struct {
	size      int
	network   *inproc.Network
	comms     []*Comm
	abortCh   chan struct{}
	abortOnce sync.Once
}

// NewWorld creates a world with the given number of ranks. It panics if
// size is not positive, since a world without ranks cannot host a program.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: NewWorld(%d): size must be positive", size))
	}
	w := &World{
		size:    size,
		network: inproc.NewNetwork(size),
		abortCh: make(chan struct{}),
	}
	w.comms = make([]*Comm, size)
	for r := 0; r < size; r++ {
		c := &Comm{rank: r, size: size, abortCh: w.abortCh, onAbort: w.Abort,
			closedCh: make(chan struct{}), gidx: r}
		c.failures.init()
		c.conn = w.network.Attach(r, c.handleFrame)
		if fn, ok := c.conn.(transport.FailureNotifier); ok {
			fn.OnPeerFailure(c.notePeerFailure)
		}
		w.comms[r] = c
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Abort wakes every rank blocked in a Wait or Barrier; they unwind with an
// abort error. It is the in-process analogue of MPI_Abort and is invoked
// automatically by Run when any rank returns an error or panics, so a
// failing rank cannot strand its peers in a collective.
func (w *World) Abort() {
	w.abortOnce.Do(func() { close(w.abortCh) })
}

// Comm returns the communicator endpoint for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: Comm(%d): rank out of range [0,%d)", rank, w.size))
	}
	return w.comms[rank]
}

// Comm is one rank's endpoint into a world of ranks. A Comm must only be
// used by the goroutine that owns the rank (the usual MPI
// single-threaded-rank model); the runtime itself synchronizes cross-rank
// delivery.
type Comm struct {
	conn    transport.Conn
	rank    int
	size    int
	mbox    mailbox
	abortCh chan struct{}
	onAbort func()
	// closedCh is closed by Close (exactly once) and wakes any operation
	// blocked in a Wait — a watchdog's Close cannot strand a blocked Recv.
	closedCh  chan struct{}
	closeOnce sync.Once
	// group, when non-nil, is the sorted list of live world ranks this
	// communicator's collectives run over (it always contains this rank);
	// gidx is this rank's index within it. A nil group means the full world
	// — see Shrink. Point-to-point operations always address world ranks.
	group []int
	gidx  int
	// failures is the peer-failure registry fed by the transport's
	// asynchronous detectors (heartbeats, exhausted retry budgets) — see
	// failure.go for the registry and the peer-aware wait built on it.
	failures failureRegistry
	// collSeq sequences collective operations (including Barrier). Every
	// rank calls collectives in the same program order, so the counters stay
	// in lock-step and the derived internal tags never collide across
	// concurrent collectives. Only the owning goroutine advances it, but it
	// is an atomic so telemetry scrapes (CollSeq from the HTTP goroutine)
	// are race-free.
	collSeq atomic.Int64
	// inflightColl counts launched-but-unfinished non-blocking collectives
	// (IAllreduce goroutines in flight) — a live overlap-depth gauge.
	inflightColl atomic.Int64
	// boundsScratch is the ring-Allreduce chunk-bounds table, reused across
	// calls (a Comm is single-goroutine by contract, so no locking).
	boundsScratch []int
	// joins queues rendezvous join requests announced by the transport
	// (rank 0 of an elastic TCP world) until the trainer drains them at an
	// epoch boundary — see elastic.go.
	joinMu sync.Mutex
	joins  []transport.JoinRequest
}

// Connect builds a communicator over a transport connection opened by dial.
// The dial callback receives the handler that must be invoked for every
// inbound frame (wire backends call it from their reader goroutines) and
// returns the established connection. This is how one OS process becomes
// one rank of a distributed world:
//
//	comm, err := mpi.Connect(func(h transport.Handler) (transport.Conn, error) {
//	        return tcp.New(cfg, h)
//	})
func Connect(dial func(transport.Handler) (transport.Conn, error)) (*Comm, error) {
	c := &Comm{abortCh: make(chan struct{}), closedCh: make(chan struct{})}
	c.failures.init()
	var abortOnce sync.Once
	c.onAbort = func() { abortOnce.Do(func() { close(c.abortCh) }) }
	conn, err := dial(c.handleFrame)
	if err != nil {
		return nil, fmt.Errorf("mpi: Connect: %w", err)
	}
	if conn == nil {
		return nil, fmt.Errorf("mpi: Connect: dial returned a nil connection")
	}
	c.conn = conn
	c.rank = conn.Rank()
	c.size = conn.Size()
	c.gidx = c.rank
	if fn, ok := conn.(transport.FailureNotifier); ok {
		fn.OnPeerFailure(c.notePeerFailure)
	}
	if jn, ok := transport.AsJoinNotifier(conn); ok {
		jn.OnJoinRequest(c.noteJoinRequest)
	}
	return c, nil
}

// handleFrame is the transport delivery callback: it feeds inbound frames
// into the rank's matching engine.
func (c *Comm) handleFrame(f transport.Frame) {
	c.mbox.deliver(message{src: f.Src, tag: f.Tag, payload: f.Payload, wire: f.Wire})
}

// Transport exposes the underlying connection (for byte accounting and
// shutdown). It is never nil for a Comm built by NewWorld or Connect.
func (c *Comm) Transport() transport.Conn { return c.conn }

// Close shuts down the underlying transport connection, draining queued
// outbound frames first (wire backends). In-process worlds do not require
// it; distributed ranks should Close before exiting. Any operation blocked
// in a Wait when Close is called unwinds with a transport failure wrapping
// ErrCommClosed instead of deadlocking.
func (c *Comm) Close() error {
	c.closeOnce.Do(func() { close(c.closedCh) })
	return c.conn.Close()
}

// Rank returns this endpoint's rank in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.size }

// abort unwinds this rank (and, for in-process worlds, its peers).
func (c *Comm) abort() {
	if c.onAbort != nil {
		c.onAbort()
	}
}

// Abort unwinds this rank: any operation blocked in Wait (or a collective)
// panics with an abort signal that Run/Execute recover into an error. For
// in-process worlds the whole world unwinds (MPI_Abort); for distributed
// ranks only the local process does — watchdogs use it to break a rank out
// of a collective that will never complete because a peer died.
func (c *Comm) Abort() { c.abort() }

// send pushes one frame into the transport, converting a transport failure
// into a rank unwind (recovered by Run/Execute into an error). A typed peer
// failure (dead destination) is scoped: it is recorded in the failure
// registry and unwinds only this rank — never the whole in-process world —
// so survivors keep running, which is what the graceful-degradation path
// depends on. Other transport errors still abort.
func (c *Comm) send(dest, tag int, payload any) {
	if err := c.conn.Send(dest, tag, payload); err != nil {
		if pe, ok := transport.AsPeerError(err); ok {
			c.failures.note(*pe)
			panic(transportFailure{err})
		}
		c.abort()
		panic(transportFailure{err})
	}
}

// SendPeerAware sends payload to dest like Send, but a dead destination
// surfaces as a returned *transport.PeerError instead of a rank unwind —
// the sender-side twin of WaitPeerAware. Non-peer transport errors still
// unwind. The exchange scheduler uses it so a send racing a peer's death
// becomes a value it can degrade around.
func (c *Comm) SendPeerAware(dest, tag int, payload any) *transport.PeerError {
	_, pe := c.SendPeerAwareMetered(dest, tag, payload)
	return pe
}

// SendPeerAwareMetered is SendPeerAware returning the exact number of wire
// bytes the frame occupies (post-compression) when the transport meters
// sends, or the deterministic FrameWireSize estimate otherwise; 0 for
// self-sends. The exchange scheduler uses it so its byte accounting stays
// exact even when the transport compresses frames underneath.
func (c *Comm) SendPeerAwareMetered(dest, tag int, payload any) (int64, *transport.PeerError) {
	c.checkRank(dest, "SendPeerAware")
	c.checkUserTag(tag, "SendPeerAware")
	n, err := c.sendMetered(dest, tag, payload)
	if err != nil {
		if pe, ok := transport.AsPeerError(err); ok {
			c.failures.note(*pe)
			return 0, pe
		}
		c.abort()
		panic(transportFailure{err})
	}
	return n, nil
}

// sendMetered pushes one frame and reports its exact wire size when the
// outermost transport meters sends (transport.MeteredSender); otherwise it
// falls back to Send plus the deterministic FrameWireSize estimate (exact
// on uncompressed backends). Self-sends report 0 — they never touch a wire.
func (c *Comm) sendMetered(dest, tag int, payload any) (int64, error) {
	if ms, ok := transport.AsMeteredSender(c.conn); ok {
		return ms.SendMetered(dest, tag, payload)
	}
	if err := c.conn.Send(dest, tag, payload); err != nil {
		return 0, err
	}
	if dest == c.rank {
		return 0, nil
	}
	return transport.FrameWireSize(payload), nil
}

// Isend starts a non-blocking send of payload to rank dest with the given
// tag. The payload is copied for common slice types (inproc backend; see
// transport.ClonePayload) or serialized (wire backends), so the caller may
// reuse its buffers immediately. The returned request is already complete;
// Wait on it is allowed and returns instantly.
func (c *Comm) Isend(dest, tag int, payload any) *Request {
	c.checkRank(dest, "Isend")
	c.checkUserTag(tag, "Isend")
	c.send(dest, tag, payload)
	return completedRequest()
}

// IsendMetered is Isend returning the exact number of wire bytes the frame
// occupies (post-compression) when the transport meters sends, or the
// deterministic FrameWireSize estimate otherwise; 0 for self-sends.
func (c *Comm) IsendMetered(dest, tag int, payload any) (*Request, int64) {
	c.checkRank(dest, "IsendMetered")
	c.checkUserTag(tag, "IsendMetered")
	n, err := c.sendMetered(dest, tag, payload)
	if err != nil {
		if pe, ok := transport.AsPeerError(err); ok {
			c.failures.note(*pe)
			panic(transportFailure{err})
		}
		c.abort()
		panic(transportFailure{err})
	}
	return completedRequest(), n
}

// Irecv posts a non-blocking receive matching the given source (or
// AnySource) and tag (or AnyTag). The returned request completes when a
// matching message arrives.
func (c *Comm) Irecv(src, tag int) *Request {
	if src != AnySource {
		c.checkRank(src, "Irecv")
	}
	if tag != AnyTag {
		c.checkUserTag(tag, "Irecv")
	}
	req := &Request{abortCh: c.abortCh, closedCh: c.closedCh, done: make(chan struct{})}
	c.mbox.post(src, tag, req)
	return req
}

// Send is a blocking send (Isend + Wait).
func (c *Comm) Send(dest, tag int, payload any) {
	c.Isend(dest, tag, payload).Wait()
}

// Recv is a blocking receive (Irecv + Wait).
func (c *Comm) Recv(src, tag int) (any, Status) {
	return c.Irecv(src, tag).Wait()
}

// SendRecv performs a combined send and receive, safe against the pairwise
// exchange deadlock (both sides send first, then receive).
func (c *Comm) SendRecv(dest, sendTag int, payload any, src, recvTag int) (any, Status) {
	req := c.Irecv(src, recvTag)
	c.Isend(dest, sendTag, payload)
	return req.Wait()
}

// Barrier blocks until every rank in the communicator's group (the full
// world unless shrunk) has entered the barrier. It is a dissemination
// barrier over the point-to-point layer (log2(M) rounds), so the same
// implementation works across every transport backend. If a group member
// dies while the barrier is blocked, the rank unwinds with a transport
// failure carrying the peer error instead of waiting forever.
func (c *Comm) Barrier() {
	seq := c.nextSeq()
	size, rank := c.GroupSize(), c.gidx
	round := 0
	for dist := 1; dist < size; dist <<= 1 {
		to := c.worldRank((rank + dist) % size)
		from := c.worldRank((rank - dist + size) % size)
		req := c.irecvInternal(from, collTag(seq, round))
		c.isendInternal(to, collTag(seq, round), nil)
		c.collWait(req)
		round++
	}
}

func (c *Comm) checkRank(r int, op string) {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("mpi: %s: rank %d out of range [0,%d)", op, r, c.size))
	}
}

func (c *Comm) checkUserTag(tag int, op string) {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: %s: tag %d is negative; negative tags are reserved", op, tag))
	}
}

// isendInternal bypasses the user-tag check for collective traffic.
func (c *Comm) isendInternal(dest, tag int, payload any) {
	c.checkRank(dest, "isendInternal")
	c.send(dest, tag, payload)
}

func (c *Comm) irecvInternal(src, tag int) *Request {
	req := &Request{abortCh: c.abortCh, done: make(chan struct{})}
	c.mbox.post(src, tag, req)
	return req
}

// recoverRank converts the panics the runtime uses for control flow into
// per-rank errors.
func recoverRank(rank int, p any) error {
	switch v := p.(type) {
	case abortSignal:
		return fmt.Errorf("mpi: rank %d aborted because another rank failed", rank)
	case transportFailure:
		return fmt.Errorf("mpi: rank %d transport failed: %w", rank, v.err)
	default:
		return fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
	}
}

// Run creates an in-process world of n ranks, runs fn once per rank in its
// own goroutine, and waits for all ranks to finish. The returned error
// joins every per-rank error. If any rank returns an error or panics, the
// world is aborted: ranks blocked in Wait or Barrier unwind with an abort
// error instead of deadlocking (MPI_Abort semantics).
func Run(n int, fn func(c *Comm) error) error {
	w := NewWorld(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = recoverRank(rank, p)
					w.Abort()
				}
			}()
			if err := fn(w.Comm(rank)); err != nil {
				errs[rank] = err
				w.Abort()
			}
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Execute runs fn on a single communicator endpoint — the per-process
// analogue of Run for distributed worlds built with Connect. Runtime
// unwinds (transport failures, aborts) and panics are converted into
// errors; the connection is left open for the caller to Close.
func Execute(c *Comm, fn func(c *Comm) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = recoverRank(c.rank, p)
			c.abort()
		}
	}()
	return fn(c)
}
