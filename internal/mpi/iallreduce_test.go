package mpi

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"
)

// fillPseudo fills buf with rank-dependent pseudo-random float32 values
// whose sums exercise non-associativity: if the async path reduced elements
// in a different order than the flat ring, the bit patterns would differ.
func fillPseudo(buf []float32, rank int) {
	state := uint64(rank)*2654435761 + 12345
	for i := range buf {
		state = state*6364136223846793005 + 1442695040888963407
		// Map to a wide magnitude range so addition order matters.
		buf[i] = float32(int32(state>>33)) * float32(math.Pow(10, float64(i%7)-3))
	}
}

func bitsEqual(a, b []float32) (int, bool) {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// TestIAllreduceMatchesAllreduce pins the headline determinism contract:
// the non-blocking ring produces bitwise-identical results to the blocking
// one, for sizes that do and do not divide the buffer length.
func TestIAllreduceMatchesAllreduce(t *testing.T) {
	for _, elems := range []int{1, 7, 64, 1023} {
		for _, ranks := range []int{1, 2, 3, 4} {
			t.Run(fmt.Sprintf("elems=%d/ranks=%d", elems, ranks), func(t *testing.T) {
				runOrFail(t, ranks, func(c *Comm) error {
					flat := make([]float32, elems)
					async := make([]float32, elems)
					fillPseudo(flat, c.Rank())
					copy(async, flat)

					Allreduce(c, flat, OpSum)
					req := IAllreduce(c, async, OpSum)
					req.Wait()
					if !req.Test() {
						return fmt.Errorf("rank %d: Test() false after Wait", c.Rank())
					}
					if i, ok := bitsEqual(flat, async); !ok {
						return fmt.Errorf("rank %d: element %d differs: flat=%x async=%x",
							c.Rank(), i, math.Float32bits(flat[i]), math.Float32bits(async[i]))
					}
					return nil
				})
			})
		}
	}
}

// TestIAllreduceChunksInheritedBoundsBitwise is the property the bucketed
// gradient sync stands on: splitting one flat buffer into contiguous
// ranges and reducing each range with the global partition clamped to it
// reproduces the single flat Allreduce bit for bit — every element keeps
// its chunk index, hence its reduction order.
func TestIAllreduceChunksInheritedBoundsBitwise(t *testing.T) {
	const elems = 1000
	// Deliberately awkward splits: not aligned to the rank partition, with
	// ranges both smaller and larger than one chunk.
	splits := [][2]int{{0, 130}, {130, 137}, {137, 600}, {600, 1000}}
	for _, ranks := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			runOrFail(t, ranks, func(c *Comm) error {
				flat := make([]float32, elems)
				bucketed := make([]float32, elems)
				fillPseudo(flat, c.Rank())
				copy(bucketed, flat)

				Allreduce(c, flat, OpSum)

				size := c.Size()
				global := make([]int, size+1)
				fillDefaultBounds(global, elems, size)
				reqs := make([]*CollRequest, 0, len(splits))
				for _, sp := range splits {
					lo, hi := sp[0], sp[1]
					bounds := make([]int, size+1)
					for i := range bounds {
						b := global[i]
						if b < lo {
							b = lo
						}
						if b > hi {
							b = hi
						}
						bounds[i] = b - lo
					}
					reqs = append(reqs, IAllreduceChunks(c, bucketed[lo:hi], OpSum, bounds))
				}
				WaitAllColl(reqs)
				if i, ok := bitsEqual(flat, bucketed); !ok {
					return fmt.Errorf("rank %d: element %d differs: flat=%x bucketed=%x",
						c.Rank(), i, math.Float32bits(flat[i]), math.Float32bits(bucketed[i]))
				}
				return nil
			})
		})
	}
}

// TestIAllreduceOverlapsBlockingCollectives checks tag isolation: while
// several async reductions are in flight, blocking collectives (Bcast,
// Allreduce, Barrier) run to completion without cross-talk, and the async
// results are still correct afterwards.
func TestIAllreduceOverlapsBlockingCollectives(t *testing.T) {
	runOrFail(t, 4, func(c *Comm) error {
		const elems = 256
		bufs := make([][]float32, 3)
		reqs := make([]*CollRequest, 3)
		for i := range bufs {
			bufs[i] = make([]float32, elems)
			for j := range bufs[i] {
				bufs[i][j] = float32(c.Rank()*100 + i)
			}
			reqs[i] = IAllreduce(c, bufs[i], OpSum)
		}
		// Blocking traffic while the rings progress in the background.
		probe := []int32{int32(c.Rank())}
		Allreduce(c, probe, OpSum)
		if want := int32(0 + 1 + 2 + 3); probe[0] != want {
			return fmt.Errorf("rank %d: blocking Allreduce = %d, want %d", c.Rank(), probe[0], want)
		}
		b := []int32{int32(c.Rank() + 7)}
		Bcast(c, b, 2)
		if b[0] != 9 {
			return fmt.Errorf("rank %d: Bcast = %d, want 9", c.Rank(), b[0])
		}
		c.Barrier()
		WaitAllColl(reqs)
		for i := range bufs {
			// sum over ranks of (rank*100 + i) = 600 + 4i
			want := float32(600 + 4*i)
			for j, v := range bufs[i] {
				if v != want {
					return fmt.Errorf("rank %d: buf[%d][%d] = %v, want %v", c.Rank(), i, j, v, want)
				}
			}
		}
		return nil
	})
}

// TestIAllreduceInheritsProgramOrderTags checks that interleaving async
// launches with blocking collectives on the owner goroutine keeps the
// shared sequence space aligned across ranks (each launch reserves its seq
// synchronously even though the ring runs later).
func TestIAllreduceInheritsProgramOrderTags(t *testing.T) {
	runOrFail(t, 3, func(c *Comm) error {
		for iter := 0; iter < 10; iter++ {
			a := []float32{float32(c.Rank() + iter)}
			req := IAllreduce(c, a, OpSum)
			s := []int32{1}
			Allreduce(c, s, OpSum)
			req.Wait()
			if want := float32(0 + 1 + 2 + 3*iter); a[0] != want {
				return fmt.Errorf("rank %d iter %d: async = %v, want %v", c.Rank(), iter, a[0], want)
			}
		}
		return nil
	})
}

// TestIAllreduceChunksValidation pins the fail-fast contract on malformed
// partitions.
func TestIAllreduceChunksValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := make([]float32, 10)
			mustPanic("short bounds", func() { IAllreduceChunks(c, buf, OpSum, []int{0, 10}) })
			mustPanic("bad span", func() { IAllreduceChunks(c, buf, OpSum, []int{0, 5, 9}) })
			mustPanic("decreasing", func() { IAllreduceChunks(c, buf, OpSum, []int{0, 7, 5, 10}) })
		}
		c.Barrier()
		return nil
	})
}

// TestIAllreduceSingleRank pins the size-1 fast path: complete on arrival,
// zero wire bytes, no goroutine.
func TestIAllreduceSingleRank(t *testing.T) {
	runOrFail(t, 1, func(c *Comm) error {
		buf := []float32{1, 2, 3}
		req := IAllreduce(c, buf, OpSum)
		if !req.Test() {
			return fmt.Errorf("size-1 request not immediately complete")
		}
		req.Wait()
		if s, r := req.WireBytes(); s != 0 || r != 0 {
			return fmt.Errorf("size-1 wire bytes = %d/%d, want 0/0", s, r)
		}
		if buf[0] != 1 || buf[2] != 3 {
			return fmt.Errorf("size-1 buffer mutated: %v", buf)
		}
		return nil
	})
}

// TestIAllreduceNoGoroutineLeak drives many async reductions through their
// full lifecycle and checks the process goroutine count returns to its
// baseline: every collective goroutine must exit once its ring completes.
func TestIAllreduceNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	runOrFail(t, 4, func(c *Comm) error {
		buf := make([]float32, 512)
		for iter := 0; iter < 50; iter++ {
			reqs := make([]*CollRequest, 4)
			for i := range reqs {
				reqs[i] = IAllreduce(c, buf, OpSum)
				reqs[i].Wait()
			}
		}
		return nil
	})
	// The world has torn down; give exited goroutines a beat to be reaped.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIAllreduceSteadyStateAllocBound bounds the per-operation allocation
// cost of the async path on reused buffers and a precomputed partition.
// Relative to the blocking ring it adds one goroutine, one CollRequest,
// and one done channel per call — a small constant, independent of the
// element count. The budget is ~2× the measured cost across a 4-rank
// world (blocking ring ≈120 allocs/op + ≈4×5 async bookkeeping).
func TestIAllreduceSteadyStateAllocBound(t *testing.T) {
	skipIfRace(t)
	const (
		ranks = 4
		elems = 4096
		iters = 100
	)
	var perOp float64
	err := Run(ranks, func(c *Comm) error {
		buf := make([]float32, elems)
		bounds := make([]int, ranks+1)
		fillDefaultBounds(bounds, elems, ranks)
		for i := 0; i < 5; i++ {
			IAllreduceChunks(c, buf, OpSum, bounds).Wait()
		}
		c.Barrier()
		var m0, m1 runtime.MemStats
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m0)
		}
		Bcast(c, []int32{1}, 0)
		for i := 0; i < iters; i++ {
			IAllreduceChunks(c, buf, OpSum, bounds).Wait()
		}
		Gather(c, []int32{int32(c.Rank())}, 0)
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m1)
			perOp = float64(m1.Mallocs-m0.Mallocs) / iters
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 300
	if perOp > budget {
		t.Errorf("async all-reduce allocates %.1f allocs/op across %d ranks, budget %d", perOp, ranks, budget)
	}
	t.Logf("IAllreduceChunks steady state: %.1f allocs/op across %d ranks (%d elems)", perOp, ranks, elems)
}
