package mpi

import (
	"runtime"
	"testing"
)

// TestAllreduceSingleRankZeroAlloc pins the trivial fast path: a size-1
// world's Allreduce touches nothing and must not allocate.
func TestAllreduceSingleRankZeroAlloc(t *testing.T) {
	skipIfRace(t)
	err := Run(1, func(c *Comm) error {
		buf := make([]float32, 4096)
		Allreduce(c, buf, OpSum) // warm up
		if allocs := testing.AllocsPerRun(100, func() {
			Allreduce(c, buf, OpSum)
		}); allocs > 0 {
			t.Errorf("size-1 Allreduce allocates %.1f times, want 0", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllreduceSteadyStateAllocBound bounds the allocation cost of the
// ring Allreduce on a reused buffer across a 4-rank inproc world. The ring
// now sends chunk sub-slices directly (the inproc backend's defensive
// ClonePayload copy is the single remaining per-send allocation) and reuses
// the chunk-bounds scratch, so steady-state cost is a small constant per
// ring step: the clone, the Request, and mailbox bookkeeping — ≈120
// allocs/op across all four ranks for this shape (≈5 per rank per ring
// step), independent of the element count. The bound below is ~2× that
// measurement; it fails loudly if per-element or per-byte allocations ever
// sneak back in (the pre-optimization path cost roughly twice as much from
// its per-step send copies).
func TestAllreduceSteadyStateAllocBound(t *testing.T) {
	skipIfRace(t)
	const (
		ranks = 4
		elems = 4096
		iters = 100
	)
	var perOp float64
	err := Run(ranks, func(c *Comm) error {
		buf := make([]float32, elems)
		for i := range buf {
			buf[i] = float32(c.Rank())
		}
		// Warm up scratch buffers on every rank.
		for i := 0; i < 5; i++ {
			Allreduce(c, buf, OpSum)
		}
		c.Barrier()
		var m0, m1 runtime.MemStats
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m0)
		}
		// Release the world together so rank 0's baseline read precedes the
		// measured iterations (Bcast itself is inside the measured window on
		// non-root ranks only as its constant send cost — negligible noise).
		Bcast(c, []int32{1}, 0)
		for i := 0; i < iters; i++ {
			Allreduce(c, buf, OpSum)
		}
		// Gather-to-root as the stop line: rank 0 reads the end stats only
		// after every rank has finished its iterations.
		Gather(c, []int32{int32(c.Rank())}, 0)
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m1)
			perOp = float64(m1.Mallocs-m0.Mallocs) / iters
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Allocation budget per Allreduce across all 4 ranks. Each rank runs
	// 2*(ranks-1)=6 ring steps; each step costs an inproc payload clone, a
	// Request, and mailbox entries. 2× headroom over the measured ~120.
	const budget = 240
	if perOp > budget {
		t.Fatalf("steady-state Allreduce allocates %.1f times per op across %d ranks, budget %d", perOp, ranks, budget)
	}
	t.Logf("steady-state Allreduce: %.1f allocs/op across %d ranks (%d elems)", perOp, ranks, elems)
}

// skipIfRace skips allocation-regression tests under the race detector
// (see raceEnabled).
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}
