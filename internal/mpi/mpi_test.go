package mpi

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// runOrFail runs fn across n ranks and fails the test on any rank error.
func runOrFail(t *testing.T, n int, fn func(c *Comm) error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- Run(n, fn) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mpi test deadlocked (30s timeout)")
	}
}

func TestWorldBasics(t *testing.T) {
	w := NewWorld(4)
	if w.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", w.Size())
	}
	for r := 0; r < 4; r++ {
		c := w.Comm(r)
		if c.Rank() != r || c.Size() != 4 {
			t.Fatalf("rank %d: Rank()=%d Size()=%d", r, c.Rank(), c.Size())
		}
	}
}

func TestNewWorldPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecvBasic(t *testing.T) {
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []int{1, 2, 3})
			return nil
		}
		payload, st := c.Recv(0, 7)
		got := payload.([]int)
		if st.Source != 0 || st.Tag != 7 {
			return fmt.Errorf("status = %+v", st)
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			return fmt.Errorf("payload = %v", got)
		}
		return nil
	})
}

func TestSendCopiesSlices(t *testing.T) {
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float32{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not be visible to receiver
			c.Barrier()
			return nil
		}
		c.Barrier()
		payload, _ := c.Recv(0, 0)
		if got := payload.([]float32)[0]; got != 1 {
			return fmt.Errorf("receiver saw mutated buffer: %v", got)
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, "tag5")
			c.Send(1, 9, "tag9")
			return nil
		}
		// Receive in the opposite order of sending: tag matching must pick
		// the right message regardless of arrival order.
		p9, _ := c.Recv(0, 9)
		p5, _ := c.Recv(0, 5)
		if p9.(string) != "tag9" || p5.(string) != "tag5" {
			return fmt.Errorf("tag matching wrong: got %v and %v", p9, p5)
		}
		return nil
	})
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	const n = 100
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, i)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			p, _ := c.Recv(0, 3)
			if p.(int) != i {
				return fmt.Errorf("message %d arrived out of order: got %d", i, p)
			}
		}
		return nil
	})
}

func TestAnySource(t *testing.T) {
	runOrFail(t, 4, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, 1, c.Rank())
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			p, st := c.Recv(AnySource, 1)
			if p.(int) != st.Source {
				return fmt.Errorf("payload %v does not match status source %d", p, st.Source)
			}
			seen[st.Source] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("expected messages from 3 distinct sources, got %v", seen)
		}
		return nil
	})
}

func TestAnyTag(t *testing.T) {
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 42, "x")
			return nil
		}
		_, st := c.Recv(0, AnyTag)
		if st.Tag != 42 {
			return fmt.Errorf("AnyTag status.Tag = %d, want 42", st.Tag)
		}
		return nil
	})
}

func TestIrecvBeforeSend(t *testing.T) {
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			req := c.Irecv(0, 0)
			c.Barrier() // guarantee the recv is posted before the send
			p, _ := req.Wait()
			if p.(int) != 123 {
				return fmt.Errorf("got %v", p)
			}
			return nil
		}
		c.Barrier()
		c.Send(1, 0, 123)
		return nil
	})
}

func TestTestNonBlocking(t *testing.T) {
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Barrier() // let rank 1 observe "not done" first
			c.Send(1, 0, 1)
			return nil
		}
		req := c.Irecv(0, 0)
		if ok, _, _ := req.Test(); ok {
			return fmt.Errorf("Test reported completion before any send")
		}
		c.Barrier()
		for {
			if ok, p, _ := req.Test(); ok {
				if p.(int) != 1 {
					return fmt.Errorf("got %v", p)
				}
				return nil
			}
		}
	})
}

func TestSendRecvExchangeNoDeadlock(t *testing.T) {
	runOrFail(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		p, _ := c.SendRecv(other, 0, c.Rank(), other, 0)
		if p.(int) != other {
			return fmt.Errorf("exchange got %v, want %d", p, other)
		}
		return nil
	})
}

func TestWaitAll(t *testing.T) {
	runOrFail(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			reqs := make([]*Request, 10)
			for i := range reqs {
				reqs[i] = c.Irecv(1, i)
			}
			WaitAll(reqs)
			for i, r := range reqs {
				p, _ := r.Wait()
				if p.(int) != i {
					return fmt.Errorf("req %d: got %v", i, p)
				}
			}
			return nil
		}
		for i := 9; i >= 0; i-- {
			c.Send(0, i, i)
		}
		return nil
	})
}

func TestBarrierOrdering(t *testing.T) {
	var mu sync.Mutex
	phase := make(map[int]int)
	runOrFail(t, 8, func(c *Comm) error {
		for p := 0; p < 5; p++ {
			mu.Lock()
			phase[c.Rank()] = p
			// No rank may be more than one phase away from any other while
			// inside the critical section between barriers.
			for r, rp := range phase {
				if rp < p-1 || rp > p+1 {
					mu.Unlock()
					return fmt.Errorf("rank %d at phase %d while rank %d at %d", r, rp, c.Rank(), p)
				}
			}
			mu.Unlock()
			c.Barrier()
		}
		return nil
	})
}

func TestNegativeUserTagPanics(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		c.Isend(0, -5, nil)
		return nil
	})
	if err == nil {
		t.Fatal("negative user tag did not produce an error")
	}
}

func TestAbortUnblocksPeers(t *testing.T) {
	// One rank fails while its peers wait in a collective; Run must abort
	// the world instead of deadlocking (MPI_Abort semantics).
	done := make(chan error, 1)
	go func() {
		done <- Run(4, func(c *Comm) error {
			if c.Rank() == 2 {
				return fmt.Errorf("rank 2 storage full")
			}
			buf := []float64{1}
			Allreduce(c, buf, OpSum) // blocks forever without abort
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil despite rank failure")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked on rank failure")
	}
}

func TestAbortUnblocksBarrier(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(3, func(c *Comm) error {
			if c.Rank() == 0 {
				return fmt.Errorf("boom")
			}
			c.Barrier()
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil despite rank failure")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Barrier deadlocked on rank failure")
	}
}

func TestRunCollectsErrors(t *testing.T) {
	want := fmt.Errorf("boom")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return want
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank error")
	}
}

// --- collectives ---

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		for root := 0; root < size; root++ {
			size, root := size, root
			t.Run(fmt.Sprintf("size=%d/root=%d", size, root), func(t *testing.T) {
				runOrFail(t, size, func(c *Comm) error {
					buf := make([]float64, 5)
					if c.Rank() == root {
						for i := range buf {
							buf[i] = float64(root*100 + i)
						}
					}
					Bcast(c, buf, root)
					for i := range buf {
						if buf[i] != float64(root*100+i) {
							return fmt.Errorf("rank %d buf[%d]=%v", c.Rank(), i, buf[i])
						}
					}
					return nil
				})
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 6, 8, 9} {
		for root := 0; root < size; root += 2 {
			size, root := size, root
			t.Run(fmt.Sprintf("size=%d/root=%d", size, root), func(t *testing.T) {
				runOrFail(t, size, func(c *Comm) error {
					buf := []int{c.Rank() + 1, 10 * (c.Rank() + 1)}
					orig := append([]int(nil), buf...)
					Reduce(c, buf, OpSum, root)
					total := size * (size + 1) / 2
					if c.Rank() == root {
						if buf[0] != total || buf[1] != 10*total {
							return fmt.Errorf("root got %v, want [%d %d]", buf, total, 10*total)
						}
					} else if buf[0] != orig[0] || buf[1] != orig[1] {
						return fmt.Errorf("non-root buffer mutated: %v", buf)
					}
					return nil
				})
			})
		}
	}
}

func TestReduceMaxMinProd(t *testing.T) {
	runOrFail(t, 4, func(c *Comm) error {
		bmax := []int{c.Rank()}
		Reduce(c, bmax, OpMax, 0)
		if c.Rank() == 0 && bmax[0] != 3 {
			return fmt.Errorf("max got %v", bmax)
		}
		bmin := []int{c.Rank() + 5}
		Reduce(c, bmin, OpMin, 0)
		if c.Rank() == 0 && bmin[0] != 5 {
			return fmt.Errorf("min got %v", bmin)
		}
		bprod := []int{c.Rank() + 1}
		Reduce(c, bprod, OpProd, 0)
		if c.Rank() == 0 && bprod[0] != 24 {
			return fmt.Errorf("prod got %v", bprod)
		}
		return nil
	})
}

func TestAllreduceRingMatchesExpected(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8, 13} {
		for _, n := range []int{0, 1, 3, 16, 100} {
			size, n := size, n
			t.Run(fmt.Sprintf("size=%d/n=%d", size, n), func(t *testing.T) {
				runOrFail(t, size, func(c *Comm) error {
					buf := make([]float64, n)
					for i := range buf {
						buf[i] = float64((c.Rank() + 1) * (i + 1))
					}
					Allreduce(c, buf, OpSum)
					total := float64(size*(size+1)) / 2
					for i := range buf {
						want := total * float64(i+1)
						if buf[i] != want {
							return fmt.Errorf("rank %d buf[%d]=%v want %v", c.Rank(), i, buf[i], want)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestAllreduceNaiveMatchesRing(t *testing.T) {
	runOrFail(t, 5, func(c *Comm) error {
		a := make([]float32, 17)
		b := make([]float32, 17)
		for i := range a {
			a[i] = float32(c.Rank()) + float32(i)*0.5
			b[i] = a[i]
		}
		Allreduce(c, a, OpSum)
		AllreduceNaive(c, b, OpSum)
		for i := range a {
			if a[i] != b[i] {
				return fmt.Errorf("ring %v != naive %v at %d", a[i], b[i], i)
			}
		}
		return nil
	})
}

func TestAllreduceMax(t *testing.T) {
	runOrFail(t, 6, func(c *Comm) error {
		buf := []float64{float64(c.Rank()), -float64(c.Rank())}
		Allreduce(c, buf, OpMax)
		if buf[0] != 5 || buf[1] != 0 {
			return fmt.Errorf("got %v", buf)
		}
		return nil
	})
}

func TestBackToBackCollectives(t *testing.T) {
	// Stress the collective sequencing: many different collectives issued
	// immediately after one another must not cross-match.
	runOrFail(t, 4, func(c *Comm) error {
		for iter := 0; iter < 50; iter++ {
			buf := []int{c.Rank() + iter}
			Allreduce(c, buf, OpSum)
			want := 4*iter + 6
			if buf[0] != want {
				return fmt.Errorf("iter %d: got %d want %d", iter, buf[0], want)
			}
			b := []int{0}
			if c.Rank() == iter%4 {
				b[0] = iter
			}
			Bcast(c, b, iter%4)
			if b[0] != iter {
				return fmt.Errorf("iter %d: bcast got %d", iter, b[0])
			}
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	runOrFail(t, 4, func(c *Comm) error {
		out := Gather(c, []int{c.Rank(), c.Rank() * 10}, 2)
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root got non-nil gather result")
			}
			return nil
		}
		want := []int{0, 0, 1, 10, 2, 20, 3, 30}
		for i := range want {
			if out[i] != want[i] {
				return fmt.Errorf("gather out = %v", out)
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		size := size
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			runOrFail(t, size, func(c *Comm) error {
				out := Allgather(c, []int{c.Rank(), -c.Rank()})
				if len(out) != 2*size {
					return fmt.Errorf("len(out)=%d", len(out))
				}
				for r := 0; r < size; r++ {
					if out[2*r] != r || out[2*r+1] != -r {
						return fmt.Errorf("out = %v", out)
					}
				}
				return nil
			})
		})
	}
}

func TestAllgatherVarLen(t *testing.T) {
	runOrFail(t, 4, func(c *Comm) error {
		send := make([]int, c.Rank())
		for i := range send {
			send[i] = c.Rank()*100 + i
		}
		out := AllgatherVarLen(c, send)
		for r := 0; r < 4; r++ {
			if len(out[r]) != r {
				return fmt.Errorf("out[%d] has len %d, want %d", r, len(out[r]), r)
			}
			for i, v := range out[r] {
				if v != r*100+i {
					return fmt.Errorf("out[%d][%d] = %d", r, i, v)
				}
			}
		}
		return nil
	})
}

func TestAlltoallPersonalized(t *testing.T) {
	for _, size := range []int{1, 2, 4, 7} {
		size := size
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			runOrFail(t, size, func(c *Comm) error {
				send := make([][]int, size)
				for d := range send {
					// Rank r sends r*size+d copies-of-value; variable lengths.
					send[d] = make([]int, d+1)
					for i := range send[d] {
						send[d][i] = c.Rank()*1000 + d
					}
				}
				out := Alltoall(c, send)
				for src := 0; src < size; src++ {
					if len(out[src]) != c.Rank()+1 {
						return fmt.Errorf("from %d: len %d, want %d", src, len(out[src]), c.Rank()+1)
					}
					for _, v := range out[src] {
						if v != src*1000+c.Rank() {
							return fmt.Errorf("from %d got %d", src, v)
						}
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceQuickProperty(t *testing.T) {
	// Property: Allreduce(OpSum) equals the locally computed global sum for
	// arbitrary world sizes and payloads.
	check := func(seed int64, sizeRaw, nRaw uint8) bool {
		size := int(sizeRaw)%6 + 1
		n := int(nRaw) % 32
		vals := make([][]float64, size)
		want := make([]float64, n)
		for r := 0; r < size; r++ {
			vals[r] = make([]float64, n)
			for i := range vals[r] {
				vals[r][i] = float64((seed+int64(r*31+i))%1000) / 7
				want[i] += vals[r][i]
			}
		}
		ok := true
		err := Run(size, func(c *Comm) error {
			buf := append([]float64(nil), vals[c.Rank()]...)
			Allreduce(c, buf, OpSum)
			for i := range buf {
				diff := buf[i] - want[i]
				if diff < -1e-9 || diff > 1e-9 {
					return fmt.Errorf("mismatch")
				}
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllreduceRing8x4096(b *testing.B) {
	benchAllreduce(b, 8, 4096, false)
}

func BenchmarkAllreduceNaive8x4096(b *testing.B) {
	benchAllreduce(b, 8, 4096, true)
}

func benchAllreduce(b *testing.B, size, n int, naive bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := Run(size, func(c *Comm) error {
			buf := make([]float32, n)
			if naive {
				AllreduceNaive(c, buf, OpSum)
			} else {
				Allreduce(c, buf, OpSum)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2)
	var wg sync.WaitGroup
	wg.Add(2)
	stop := b.N
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		msg := make([]float32, 256)
		for i := 0; i < stop; i++ {
			c.Send(1, 0, msg)
			c.Recv(1, 1)
		}
	}()
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		msg := make([]float32, 256)
		for i := 0; i < stop; i++ {
			c.Recv(0, 0)
			c.Send(0, 1, msg)
		}
	}()
	wg.Wait()
}
