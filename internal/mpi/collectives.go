package mpi

import (
	"fmt"

	"plshuffle/internal/transport"
)

// Op identifies a reduction operator for Reduce/Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

// Number constrains the element types supported by the numeric collectives.
type Number interface {
	~int | ~int32 | ~int64 | ~float32 | ~float64
}

func reduceInto[T Number](dst, src []T, op Op) {
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	case OpProd:
		for i, v := range src {
			dst[i] *= v
		}
	default:
		panic(fmt.Sprintf("mpi: unknown reduction op %d", op))
	}
}

// collTag derives a unique internal (negative) tag for one phase of one
// collective invocation. seq is the per-comm collective sequence number,
// which advances identically on all ranks, and phase distinguishes message
// rounds within a single collective. The phase space is wide enough for
// ring algorithms on worlds of up to half a million ranks. Tags start at
// -2 so no internal tag ever equals AnyTag (-1), which would make a posted
// internal receive match arbitrary user messages.
func collTag(seq, phase int) int {
	const phaseSpace = 1 << 20
	return -(2 + seq*phaseSpace + phase)
}

// nextSeq reserves a collective sequence number on this rank.
func (c *Comm) nextSeq() int {
	return int(c.collSeq.Add(1) - 1)
}

// collRoot validates that root (a world rank) is a member of the current
// collective group and returns its group index. Collectives address roots
// by world rank so callers never have to translate, but the algorithms run
// in group coordinates after a Shrink.
func (c *Comm) collRoot(root int, op string) int {
	c.checkRank(root, op)
	gi := c.groupIndex(root)
	if gi < 0 {
		panic(fmt.Sprintf("mpi: %s: root %d is not a member of the collective group %v", op, root, c.GroupRanks()))
	}
	return gi
}

// Bcast distributes root's buffer to every group member using a binomial
// tree. Every participating rank must pass a buffer of identical length;
// non-root buffers are overwritten. root is a world rank and must belong to
// the current collective group.
func Bcast[T any](c *Comm, buf []T, root int) {
	groot := c.collRoot(root, "Bcast")
	seq := c.nextSeq()
	size, rank := c.GroupSize(), c.gidx
	if size == 1 {
		return
	}
	// Rotate group indices so the tree is rooted at 0.
	vrank := (rank - groot + size) % size
	// Receive from parent (except the root).
	if vrank != 0 {
		// Parent is vrank with the lowest set bit cleared.
		parent := c.worldRank(((vrank & (vrank - 1)) + groot) % size)
		payload, _ := c.collWait(c.irecvInternal(parent, collTag(seq, 0)))
		copy(buf, payload.([]T))
	}
	// Forward to children: vrank | (1<<k) for increasing k above our own
	// lowest set bit.
	lowBit := vrank & (-vrank)
	if vrank == 0 {
		lowBit = size // root forwards on all bits
	}
	for bit := 1; bit < lowBit && bit < size; bit <<= 1 {
		child := vrank | bit
		if child < size {
			c.isendInternal(c.worldRank((child+groot)%size), collTag(seq, 0), append([]T(nil), buf...))
		}
	}
}

// Reduce combines each rank's buffer element-wise with op into root's
// buffer. It gathers up a binomial tree. Non-root buffers are left
// unchanged (a scratch copy is reduced).
func Reduce[T Number](c *Comm, buf []T, op Op, root int) {
	groot := c.collRoot(root, "Reduce")
	seq := c.nextSeq()
	size, rank := c.GroupSize(), c.gidx
	if size == 1 {
		return
	}
	vrank := (rank - groot + size) % size
	acc := append([]T(nil), buf...)
	// Binomial tree reduction: at round k, vranks with bit k set send to
	// vrank with that bit cleared, then retire.
	for bit := 1; bit < size; bit <<= 1 {
		if vrank&bit != 0 {
			// Send the partial reduction to the partner and retire.
			dest := c.worldRank(((vrank &^ bit) + groot) % size)
			c.isendInternal(dest, collTag(seq, 0), acc)
			return
		}
		// We are a receiver in this round if our partner exists.
		partner := vrank | bit
		if partner < size {
			payload, _ := c.collWait(c.irecvInternal(c.worldRank((partner+groot)%size), collTag(seq, 0)))
			reduceInto(acc, payload.([]T), op)
		}
	}
	if c.rank == root {
		copy(buf, acc)
	}
}

// Allreduce combines every rank's buffer element-wise with op and leaves
// the result in every rank's buffer, using a bandwidth-optimal ring
// (reduce-scatter followed by allgather). Works for any world size,
// including sizes that do not divide the buffer length.
func Allreduce[T Number](c *Comm, buf []T, op Op) {
	size := c.GroupSize()
	if size == 1 {
		return
	}
	ringAllreduce(c, buf, op, c.nextSeq(), c.defaultBounds(len(buf)), false)
}

// AllreduceWire is Allreduce with exact byte accounting: it returns the
// number of wire bytes this rank sent and received for the reduction
// (frame headers included, via transport.FrameWireSize). On non-wire
// backends (inproc) both counts are zero. The trainer's flat gradient-sync
// path uses it so TCP runs attribute all-reduce traffic in the trace.
func AllreduceWire[T Number](c *Comm, buf []T, op Op) (sent, recv int64) {
	size := c.GroupSize()
	if size == 1 {
		return 0, 0
	}
	wire := c.conn.Stats().Wire
	return ringAllreduce(c, buf, op, c.nextSeq(), c.defaultBounds(len(buf)), wire)
}

// defaultBounds fills the Comm's reusable bounds table with the canonical
// flat partition of an n-element buffer into GroupSize() contiguous chunks
// (chunk i = [i*n/size, (i+1)*n/size)). The table is kept on the Comm
// (single-goroutine by contract) so repeated blocking collectives — one
// per training iteration — reuse it; async collectives must NOT use it
// (they outlive the call and would race the next one).
func (c *Comm) defaultBounds(n int) []int {
	size := c.GroupSize()
	if cap(c.boundsScratch) < size+1 {
		c.boundsScratch = make([]int, size+1)
	}
	bounds := c.boundsScratch[:size+1]
	fillDefaultBounds(bounds, n, size)
	return bounds
}

// fillDefaultBounds writes the canonical flat chunk partition into bounds
// (length size+1): bounds[i] = i*n/size.
func fillDefaultBounds(bounds []int, n, size int) {
	for i := 0; i <= size; i++ {
		bounds[i] = i * n / size
	}
}

// ringAllreduce is the shared core of every all-reduce in this package:
// the bandwidth-optimal ring (reduce-scatter followed by allgather) over
// the chunk partition described by bounds (length size+1, non-decreasing,
// bounds[0]=0, bounds[size]=len(buf)). Chunks that are empty under the
// partition are skipped entirely — bounds are identical on every rank, so
// the skip is symmetric and no message is orphaned.
//
// Determinism contract: for a fixed chunk partition, the element-wise
// reduction order depends only on the element's chunk index (chunk i is
// accumulated in ring order starting at rank i, and float addition is
// commutative), so two invocations whose partitions assign an element the
// same chunk index produce bitwise-identical results for that element.
// This is what lets the bucketed non-blocking path (IAllreduceChunks with
// inherited flat bounds) reproduce the flat path bit for bit.
//
// When wire is true, the returned sent/recv totals are the exact frame
// bytes this rank moved (transport.FrameWireSize per non-empty chunk).
// The function is safe to run on a non-owner goroutine as long as seq was
// reserved by the owning goroutine and bounds is not mutated while it
// runs: the mailbox and both transport backends are concurrency-safe, and
// internal tags derived from seq never collide with other collectives.
func ringAllreduce[T Number](c *Comm, buf []T, op Op, seq int, bounds []int, wire bool) (sent, recv int64) {
	size, rank := c.GroupSize(), c.gidx
	chunk := func(i int) []T { i = ((i % size) + size) % size; return buf[bounds[i]:bounds[i+1]] }

	// For slice types the transport defensively clones (inproc) or
	// serializes before Send returns (wire backends), ring segments can be
	// sent as direct sub-slices of buf — no per-step copy. Later steps may
	// then mutate buf freely. Types outside ClonePayload's coverage pass by
	// reference on inproc, so they keep the defensive per-send copy.
	direct := transport.CloneCovers(any(buf))
	sendChunk := func(dest, tag int, s []T) {
		if wire {
			sent += transport.FrameWireSize(any(s))
		}
		if direct {
			c.isendInternal(dest, tag, s)
		} else {
			c.isendInternal(dest, tag, append([]T(nil), s...))
		}
	}

	right := c.worldRank((rank + 1) % size)
	left := c.worldRank((rank - 1 + size) % size)

	// Phase 1: reduce-scatter. After size-1 steps, chunk (rank+1) holds the
	// fully reduced values for that segment.
	for step := 0; step < size-1; step++ {
		sendIdx := rank - step
		recvIdx := rank - step - 1
		var req *Request
		if len(chunk(recvIdx)) > 0 {
			req = c.irecvInternal(left, collTag(seq, step))
		}
		if len(chunk(sendIdx)) > 0 {
			sendChunk(right, collTag(seq, step), chunk(sendIdx))
		}
		if req != nil {
			payload, _ := c.collWait(req)
			if wire {
				recv += transport.FrameWireSize(payload)
			}
			reduceInto(chunk(recvIdx), payload.([]T), op)
		}
	}
	// Phase 2: allgather of the reduced chunks around the ring.
	for step := 0; step < size-1; step++ {
		sendIdx := rank - step + 1
		recvIdx := rank - step
		var req *Request
		if len(chunk(recvIdx)) > 0 {
			req = c.irecvInternal(left, collTag(seq, size+step))
		}
		if len(chunk(sendIdx)) > 0 {
			sendChunk(right, collTag(seq, size+step), chunk(sendIdx))
		}
		if req != nil {
			payload, _ := c.collWait(req)
			if wire {
				recv += transport.FrameWireSize(payload)
			}
			copy(chunk(recvIdx), payload.([]T))
		}
	}
	return sent, recv
}

// AllreduceNaive gathers every buffer to rank 0, reduces there, and
// broadcasts the result. It exists as the ablation baseline for the ring
// algorithm (DESIGN.md: BenchmarkAblationAllreduce).
func AllreduceNaive[T Number](c *Comm, buf []T, op Op) {
	seq := c.nextSeq()
	size, rank := c.GroupSize(), c.gidx
	if size == 1 {
		return
	}
	if rank == 0 {
		reqs := make([]*Request, size-1)
		for r := 1; r < size; r++ {
			reqs[r-1] = c.irecvInternal(c.worldRank(r), collTag(seq, 0))
		}
		for _, req := range reqs {
			payload, _ := c.collWait(req)
			reduceInto(buf, payload.([]T), op)
		}
		for r := 1; r < size; r++ {
			c.isendInternal(c.worldRank(r), collTag(seq, 1), buf)
		}
	} else {
		c.isendInternal(c.worldRank(0), collTag(seq, 0), append([]T(nil), buf...))
		payload, _ := c.collWait(c.irecvInternal(c.worldRank(0), collTag(seq, 1)))
		copy(buf, payload.([]T))
	}
}

// Gather collects each group member's send buffer at root. At root the
// return value has GroupSize()*len(send) elements ordered by group index
// (world-rank order over the group members); other ranks receive nil. root
// is a world rank and must belong to the current collective group.
func Gather[T any](c *Comm, send []T, root int) []T {
	c.collRoot(root, "Gather")
	seq := c.nextSeq()
	size, rank := c.GroupSize(), c.gidx
	if c.rank != root {
		c.isendInternal(root, collTag(seq, 0), append([]T(nil), send...))
		return nil
	}
	out := make([]T, size*len(send))
	copy(out[rank*len(send):], send)
	reqs := make(map[int]*Request, size-1)
	for g := 0; g < size; g++ {
		if g != rank {
			reqs[g] = c.irecvInternal(c.worldRank(g), collTag(seq, 0))
		}
	}
	for g, req := range reqs {
		payload, _ := c.collWait(req)
		copy(out[g*len(send):], payload.([]T))
	}
	return out
}

// Allgather collects each group member's equal-length send buffer on every
// member, ordered by group index (world-rank order over the members),
// using a ring.
func Allgather[T any](c *Comm, send []T) []T {
	seq := c.nextSeq()
	size, rank := c.GroupSize(), c.gidx
	out := make([]T, size*len(send))
	copy(out[rank*len(send):(rank+1)*len(send)], send)
	if size == 1 {
		return out
	}
	right := c.worldRank((rank + 1) % size)
	left := c.worldRank((rank - 1 + size) % size)
	k := len(send)
	for step := 0; step < size-1; step++ {
		sendIdx := ((rank-step)%size + size) % size
		recvIdx := ((rank-step-1)%size + size) % size
		req := c.irecvInternal(left, collTag(seq, step))
		c.isendInternal(right, collTag(seq, step), append([]T(nil), out[sendIdx*k:(sendIdx+1)*k]...))
		payload, _ := c.collWait(req)
		copy(out[recvIdx*k:(recvIdx+1)*k], payload.([]T))
	}
	return out
}

// AllgatherVarLen collects variable-length buffers from every group member
// on every member, returned indexed by WORLD source rank (length Size();
// entries for ranks outside the collective group are nil). It is the
// building block for metadata exchanges whose sizes differ per rank.
func AllgatherVarLen[T any](c *Comm, send []T) [][]T {
	seq := c.nextSeq()
	size := c.GroupSize()
	out := make([][]T, c.size)
	out[c.rank] = append([]T(nil), send...)
	reqs := make([]*Request, 0, size-1)
	for g := 0; g < size; g++ {
		r := c.worldRank(g)
		if r == c.rank {
			continue
		}
		c.isendInternal(r, collTag(seq, 0), append([]T(nil), send...))
		reqs = append(reqs, c.irecvInternal(r, collTag(seq, 0)))
	}
	for _, req := range reqs {
		payload, st := c.collWait(req)
		out[st.Source] = payload.([]T)
	}
	return out
}

// Alltoall performs a personalized all-to-all exchange over the collective
// group: send[i] is delivered to world rank i, and the result's element i
// is what world rank i sent to this rank. send must have length Size()
// (world-indexed); entries for ranks outside the group are ignored, and the
// result's entries for non-members are nil. Slices may have differing
// lengths (MPI_Alltoallv-style).
func Alltoall[T any](c *Comm, send [][]T) [][]T {
	seq := c.nextSeq()
	size := c.GroupSize()
	if len(send) != c.size {
		panic(fmt.Sprintf("mpi: Alltoall: len(send)=%d, want world size %d", len(send), c.size))
	}
	out := make([][]T, c.size)
	out[c.rank] = append([]T(nil), send[c.rank]...)
	reqs := make([]*Request, 0, size-1)
	for g := 0; g < size; g++ {
		r := c.worldRank(g)
		if r == c.rank {
			continue
		}
		c.isendInternal(r, collTag(seq, 0), append([]T(nil), send[r]...))
		reqs = append(reqs, c.irecvInternal(r, collTag(seq, 0)))
	}
	for _, req := range reqs {
		payload, st := c.collWait(req)
		out[st.Source] = payload.([]T)
	}
	return out
}
