//go:build !race

package mpi

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
