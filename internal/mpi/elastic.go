package mpi

// Elastic growth (DESIGN.md §15): the dual of Shrink. Where Shrink re-forms
// the collective group over the survivors of a failure, Grow re-forms it
// over an ENLARGED world after a new rank rendezvoused mid-run. The same
// contract applies: every member (including the joiner) calls Grow with the
// same arguments at a quiescent point — no collective in flight, no posted
// receives the resize could orphan — and the group's next collective rings
// over the new membership. Joiner slots are assigned monotonically above
// the original world size and never reuse a dead rank's slot, so the
// permanent failure registry can never mistake a joiner for a corpse.

import (
	"fmt"
	"sort"

	"plshuffle/internal/transport"
)

// noteJoinRequest is the transport.JoinNotifier callback registered by
// Connect. It runs on a transport goroutine and must not block.
func (c *Comm) noteJoinRequest(jr transport.JoinRequest) {
	c.joinMu.Lock()
	c.joins = append(c.joins, jr)
	c.joinMu.Unlock()
}

// NoteJoinRequest feeds a join request into the queue by hand — the
// in-process analogue of a rendezvous hello, used by elastic tests and by
// launchers that learn about joiners out of band.
func (c *Comm) NoteJoinRequest(jr transport.JoinRequest) { c.noteJoinRequest(jr) }

// PendingJoins drains and returns the queued join requests, ordered by
// arrival. Rank 0 of an elastic world polls it at each epoch boundary;
// other ranks always see an empty queue and learn about joiners from rank
// 0's broadcast.
func (c *Comm) PendingJoins() []transport.JoinRequest {
	c.joinMu.Lock()
	out := c.joins
	c.joins = nil
	c.joinMu.Unlock()
	return out
}

// AdmitPeer records a new peer's address with the underlying transport so
// point-to-point traffic toward it can flow. Backends without elastic
// support (inproc, whose worlds are wired at creation) make it a no-op —
// their tests deliver joiner traffic through pre-wired slots.
func (c *Comm) AdmitPeer(rank int, addr string, flags byte) error {
	if pa, ok := transport.AsPeerAdmitter(c.conn); ok {
		return pa.AdmitPeer(rank, addr, flags)
	}
	return nil
}

// Grow re-forms the communicator over a resized world: newSize widens (or,
// on a freshly connected joiner adopting the world view, narrows) the world
// rank space, and group lists the live world ranks exactly as Shrink does.
// group must be sorted, duplicate-free, within [0, newSize), and contain
// this rank. Like Shrink it must be called by every member with the SAME
// arguments at a quiescent point. Unlike Shrink it may introduce ranks this
// communicator has never exchanged a frame with — the caller is responsible
// for having admitted them at the transport level first (AdmitPeer).
func (c *Comm) Grow(newSize int, group []int) error {
	if newSize <= 0 {
		return fmt.Errorf("mpi: Grow: world size %d must be positive", newSize)
	}
	if len(group) == 0 {
		return fmt.Errorf("mpi: Grow: empty group")
	}
	g := append([]int(nil), group...)
	for i, r := range g {
		if r < 0 || r >= newSize {
			return fmt.Errorf("mpi: Grow: rank %d out of range [0,%d)", r, newSize)
		}
		if i > 0 && g[i-1] >= r {
			return fmt.Errorf("mpi: Grow: group not strictly sorted at index %d", i)
		}
	}
	idx := sort.SearchInts(g, c.rank)
	if idx == len(g) || g[idx] != c.rank {
		return fmt.Errorf("mpi: Grow: group does not contain this rank %d", c.rank)
	}
	c.size = newSize
	if len(g) == newSize {
		c.group, c.gidx = nil, c.rank
		return nil
	}
	c.group, c.gidx = g, idx
	return nil
}
