package mpi

import (
	"fmt"
	"sync"
	"testing"

	"plshuffle/internal/transport"
)

// TestGrowInproc exercises the latent-rank join shape the elastic trainer
// uses on the inproc backend: a 5-slot world where ranks 0..3 form the
// initial collective group (rank 4's slot is latent), run collectives, then
// every rank — including the joiner — realigns its collective sequence and
// Grows to the full world, after which collectives ring over all 5.
func TestGrowInproc(t *testing.T) {
	w := NewWorld(5)
	initial := []int{0, 1, 2, 3}
	full := []int{0, 1, 2, 3, 4}
	errs := make([]error, 5)
	var wg sync.WaitGroup
	for r := 0; r < 5; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			if r < 4 {
				if err := c.Shrink(initial); err != nil {
					errs[r] = err
					return
				}
				buf := []int64{int64(r)}
				Allreduce(c, buf, OpSum)
				if buf[0] != 0+1+2+3 {
					errs[r] = fmt.Errorf("pre-join allreduce = %d, want 6", buf[0])
					return
				}
			}
			// Join point: all members (and the joiner) realign the collective
			// sequence above every member's current value, then Grow.
			c.SetCollSeq(1 << 16)
			if err := c.Grow(5, full); err != nil {
				errs[r] = err
				return
			}
			if c.Size() != 5 || c.GroupSize() != 5 || c.GroupRank() != r {
				errs[r] = fmt.Errorf("post-grow shape: size=%d group=%d gidx=%d", c.Size(), c.GroupSize(), c.GroupRank())
				return
			}
			c.Barrier()
			buf := []int64{int64(r)}
			Allreduce(c, buf, OpSum)
			if buf[0] != 0+1+2+3+4 {
				errs[r] = fmt.Errorf("post-join allreduce = %d, want 10", buf[0])
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

// TestGrowDegradedWorld grows a world that previously shrank around a dead
// rank: the joiner's slot sits above the original world size and the dead
// rank stays excluded.
func TestGrowDegradedWorld(t *testing.T) {
	w := NewWorld(5)
	// Rank 1 is dead; ranks 0,2,3 survive, rank 4 joins later.
	grown := []int{0, 2, 3, 4}
	errs := make([]error, 5)
	var wg sync.WaitGroup
	for _, r := range grown {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			if r != 4 {
				if err := c.Shrink([]int{0, 2, 3}); err != nil {
					errs[r] = err
					return
				}
			}
			c.SetCollSeq(1 << 16)
			if err := c.Grow(5, grown); err != nil {
				errs[r] = err
				return
			}
			if c.GroupSize() != 4 {
				errs[r] = fmt.Errorf("group size %d, want 4", c.GroupSize())
				return
			}
			buf := []int64{1}
			Allreduce(c, buf, OpSum)
			if buf[0] != 4 {
				errs[r] = fmt.Errorf("allreduce over grown degraded group = %d, want 4", buf[0])
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestGrowValidation(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(0)
	for name, tc := range map[string]struct {
		size  int
		group []int
	}{
		"zero size":    {0, []int{0}},
		"empty group":  {3, nil},
		"out of range": {3, []int{0, 3}},
		"unsorted":     {3, []int{1, 0}},
		"duplicate":    {3, []int{0, 0}},
		"missing own":  {3, []int{1, 2}},
	} {
		if err := c.Grow(tc.size, tc.group); err == nil {
			t.Errorf("%s: Grow(%d, %v) accepted", name, tc.size, tc.group)
		}
	}
	// Valid growth from the full 2-world to a 3-world.
	if err := c.Grow(3, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 || c.GroupSize() != 3 {
		t.Fatalf("size=%d group=%d after Grow", c.Size(), c.GroupSize())
	}
}

func TestPendingJoinsQueue(t *testing.T) {
	w := NewWorld(1)
	c := w.Comm(0)
	if got := c.PendingJoins(); len(got) != 0 {
		t.Fatalf("fresh comm has %d pending joins", len(got))
	}
	c.NoteJoinRequest(transport.JoinRequest{Rank: 4, Addr: "127.0.0.1:1", Flags: 1})
	c.NoteJoinRequest(transport.JoinRequest{Rank: 5, Addr: "127.0.0.1:2"})
	got := c.PendingJoins()
	if len(got) != 2 || got[0].Rank != 4 || got[1].Rank != 5 {
		t.Fatalf("PendingJoins = %+v", got)
	}
	if got := c.PendingJoins(); len(got) != 0 {
		t.Fatalf("queue not drained: %+v", got)
	}
}
