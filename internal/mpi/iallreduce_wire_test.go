// External test package: it drives the async collectives through the
// transporttest harness (which itself imports mpi), covering the real TCP
// wire path that the internal tests cannot reach without an import cycle.
package mpi_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"plshuffle/internal/mpi"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/transporttest"
)

// TestIAllreduceWireBytesExact checks the request's per-operation wire
// accounting against the transport's own byte counters: with no other
// traffic in flight, the deltas must match exactly on TCP and be zero on
// inproc.
func TestIAllreduceWireBytesExact(t *testing.T) {
	for _, backend := range []transporttest.Backend{transporttest.Inproc(), transporttest.TCP()} {
		t.Run(backend.Name(), func(t *testing.T) {
			err := backend.Run(4, func(c *mpi.Comm) error {
				// Quiesce before returning even on failure: a rank that bails
				// out early would otherwise strand its peers in the harness
				// barrier and mask the real error with a timeout.
				err := checkWireBytes(c)
				c.Barrier()
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func checkWireBytes(c *mpi.Comm) error {
	buf := make([]float32, 1000)
	for i := range buf {
		buf[i] = float32(c.Rank())
	}
	wire := c.Transport().Stats().Wire
	// Entry sync. A rank exits Barrier only after receiving every frame the
	// barrier owes it (and the reader goroutine counts bytes before
	// delivery), so the receive counter read right after exit cleanly
	// excludes all barrier traffic.
	c.Barrier()
	recv0 := c.Transport().Stats().BytesRecv
	// The send counter, by contrast, advances when the writer goroutine
	// drains its queue — which can trail the Barrier — so wait for it to
	// stabilize before taking the send baseline. After this point this rank
	// sends nothing but the ring, making the send-side delta exact.
	sent0 := stableSent(c)

	req := mpi.IAllreduce(c, buf, mpi.OpSum)
	req.Wait()
	sent, recv := req.WireBytes()
	if wire {
		// Analytic expectation: 2*(size-1) ring steps, each moving one
		// 250-element chunk in and one out of this rank.
		want := int64(2*(4-1)) * transport.FrameWireSize(make([]float32, 250))
		if sent != want || recv != want {
			return fmt.Errorf("rank %d: request claims sent=%d recv=%d, want %d each", c.Rank(), sent, recv, want)
		}
		// Poll both counters up to their targets (the writer drain and a
		// peer's last frame can trail Wait). The send delta must land
		// exactly. The receive delta may legitimately overshoot by whole
		// barrier frames: a faster peer that has finished measuring enters
		// the exit barrier below and its first rounds reach us early —
		// dissemination admits at most two inbound nil frames before we
		// join. Anything else is an accounting bug.
		nilB := transport.FrameWireSize(nil)
		deadline := time.Now().Add(5 * time.Second)
		for {
			ds := c.Transport().Stats().BytesSent - sent0
			dr := c.Transport().Stats().BytesRecv - recv0
			if ds == sent && dr >= recv {
				if extra := dr - recv; extra%nilB != 0 || extra > 2*nilB {
					return fmt.Errorf("rank %d: transport recv %d bytes, request claims %d (extra %d is not 0..2 barrier frames)",
						c.Rank(), dr, recv, extra)
				}
				break
			}
			if ds > sent {
				return fmt.Errorf("rank %d: transport sent %d bytes, request claims %d", c.Rank(), ds, sent)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("rank %d: counters stuck at sent=%d/%d recv=%d/%d", c.Rank(), ds, sent, dr, recv)
			}
			time.Sleep(time.Millisecond)
		}
	} else if sent != 0 || recv != 0 {
		return fmt.Errorf("rank %d: inproc request claims %d/%d wire bytes, want 0/0", c.Rank(), sent, recv)
	}
	// The reduction itself must still be right.
	for i, v := range buf {
		if v != 6 { // 0+1+2+3
			return fmt.Errorf("rank %d: buf[%d] = %v, want 6", c.Rank(), i, v)
		}
	}
	return nil
}

// stableSent waits for the transport's send counter to go quiet (the writer
// goroutine drains asynchronously) and returns its settled value.
func stableSent(c *mpi.Comm) int64 {
	prev := c.Transport().Stats().BytesSent
	for settled := 0; settled < 5; {
		time.Sleep(10 * time.Millisecond)
		if cur := c.Transport().Stats().BytesSent; cur == prev {
			settled++
		} else {
			prev, settled = cur, 0
		}
	}
	return prev
}

// TestIAllreduceBitwiseOverTCP re-pins the determinism contract across the
// real codec/framing path: float32 payloads must round-trip bit-exactly,
// so async-vs-blocking equality holds over sockets too.
func TestIAllreduceBitwiseOverTCP(t *testing.T) {
	err := transporttest.TCP().Run(3, func(c *mpi.Comm) error {
		const elems = 257
		flat := make([]float32, elems)
		async := make([]float32, elems)
		state := uint64(c.Rank())*2654435761 + 99
		for i := range flat {
			state = state*6364136223846793005 + 1442695040888963407
			flat[i] = float32(int32(state>>33)) / float32(1<<12)
		}
		copy(async, flat)
		mpi.Allreduce(c, flat, mpi.OpSum)
		mpi.IAllreduce(c, async, mpi.OpSum).Wait()
		for i := range flat {
			if math.Float32bits(flat[i]) != math.Float32bits(async[i]) {
				return fmt.Errorf("rank %d: element %d differs over tcp: %x vs %x",
					c.Rank(), i, math.Float32bits(flat[i]), math.Float32bits(async[i]))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
