package mpi

// Failure semantics (DESIGN.md §10): the transport's asynchronous peer
// detectors (heartbeats, connection resets, exhausted redial budgets) feed
// a per-Comm failure registry; every blocking wait in the runtime watches
// it, so a dead peer surfaces as a typed error instead of an eternal block:
//
//   - Internal collective receives unwind the rank with a transportFailure
//     carrying the *transport.PeerError (recovered by Run/Execute, or by a
//     caller-level guard at a transaction boundary).
//   - User-level peer-aware receives (WaitPeerAware) return the error
//     without unwinding — the exchange scheduler uses this to degrade its
//     plan around the dead rank instead of dying.
//   - Shrink re-forms the communicator's collective group over the
//     survivors (the spirit of MPI-ULFM's MPI_Comm_shrink): subsequent
//     collectives ring over the live ranks only, while point-to-point
//     operations keep addressing world ranks.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"plshuffle/internal/transport"
)

// ErrCommClosed is the cause carried by the unwind of an operation that was
// blocked in a Wait when the communicator was closed.
var ErrCommClosed = errors.New("mpi: communicator closed")

// failureRegistry tracks which peers the transport has reported dead. The
// replace-channel idiom gives waiters an edge-triggered broadcast: each new
// failure closes the current channel and installs a fresh one, so a waiter
// snapshots (version, channel), checks its predicate, and blocks on the
// channel knowing any later failure will wake it.
type failureRegistry struct {
	mu   sync.Mutex
	dead map[int]*transport.PeerError
	ver  int
	ch   chan struct{}
}

func (fr *failureRegistry) init() {
	fr.dead = make(map[int]*transport.PeerError)
	fr.ch = make(chan struct{})
}

// note records a peer failure (idempotent per rank) and wakes all waiters.
func (fr *failureRegistry) note(pe transport.PeerError) {
	fr.mu.Lock()
	if _, dup := fr.dead[pe.Rank]; dup {
		fr.mu.Unlock()
		return
	}
	cp := pe
	fr.dead[pe.Rank] = &cp
	fr.ver++
	ch := fr.ch
	fr.ch = make(chan struct{})
	fr.mu.Unlock()
	close(ch)
}

// snapshot returns the current version and the channel that will be closed
// by the next new failure. Check predicates AFTER taking the snapshot.
func (fr *failureRegistry) snapshot() (int, <-chan struct{}) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.ver, fr.ch
}

func (fr *failureRegistry) get(rank int) *transport.PeerError {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.dead[rank]
}

func (fr *failureRegistry) ranks() []int {
	fr.mu.Lock()
	out := make([]int, 0, len(fr.dead))
	for r := range fr.dead {
		out = append(out, r)
	}
	fr.mu.Unlock()
	sort.Ints(out)
	return out
}

// notePeerFailure is the transport.FailureNotifier callback registered by
// NewWorld/Connect. It runs on a transport goroutine and must not block.
func (c *Comm) notePeerFailure(pe transport.PeerError) {
	c.failures.note(pe)
}

// NotePeerFailure lets callers above the transport (fault injectors, the
// launcher's watchdog) feed a failure into the registry by hand, with the
// same wake-all-waiters semantics as a transport-detected death.
func (c *Comm) NotePeerFailure(pe transport.PeerError) { c.failures.note(pe) }

// FailedPeers returns the sorted ranks the transport has reported dead.
func (c *Comm) FailedPeers() []int { return c.failures.ranks() }

// PeerFailure returns the recorded failure for rank, or nil if the rank has
// not been reported dead.
func (c *Comm) PeerFailure(rank int) *transport.PeerError { return c.failures.get(rank) }

// firstFailedInGroup returns the failure of the lowest-ranked dead member
// of the current collective group, or nil when every member is live.
func (c *Comm) firstFailedInGroup() *transport.PeerError {
	c.failures.mu.Lock()
	defer c.failures.mu.Unlock()
	if len(c.failures.dead) == 0 {
		return nil
	}
	if c.group == nil {
		best := -1
		for r := range c.failures.dead {
			if best < 0 || r < best {
				best = r
			}
		}
		return c.failures.dead[best]
	}
	for _, r := range c.group {
		if pe, ok := c.failures.dead[r]; ok {
			return pe
		}
	}
	return nil
}

// collWait is the wait used by every internal collective receive: it blocks
// until the request completes, and unwinds the rank (panic transportFailure
// carrying the *transport.PeerError) if any member of the current
// collective group is reported dead meanwhile. A collective cannot complete
// once a participant is gone; unwinding promptly — on EVERY survivor, since
// detection is all-to-all — is what lets a caller-level guard sacrifice the
// operation and re-form the group, and what guarantees no goroutine is left
// blocked forever.
func (c *Comm) collWait(req *Request) (any, Status) {
	for {
		_, ch := c.failures.snapshot()
		if pe := c.firstFailedInGroup(); pe != nil {
			// Withdraw the posted receive so it cannot steal a future
			// message. A failed cancel means a delivery already committed
			// (done closes imminently — deliver closes it right after
			// unhooking the receive), so consume the message normally.
			if c.mbox.cancel(req) {
				c.abortLocalColl(pe)
			}
			<-req.done
			return req.payload, req.status
		}
		select {
		case <-req.done:
			return req.payload, req.status
		case <-c.abortCh:
			panic(abortSignal{})
		case <-c.closedCh:
			if c.mbox.cancel(req) {
				panic(transportFailure{ErrCommClosed})
			}
			<-req.done
			return req.payload, req.status
		case <-ch:
			// New failure recorded; re-check the group predicate.
		}
	}
}

// abortLocalColl unwinds the current collective with the peer failure. The
// panic is recovered by Run/Execute (into a per-rank error) or by a
// transaction guard (train's degrade mode).
func (c *Comm) abortLocalColl(pe *transport.PeerError) {
	panic(transportFailure{pe})
}

// WaitPeerAware blocks until req completes and returns its payload/status,
// or returns a non-nil *transport.PeerError as error when a peer fails that
// the caller does not already know about (known reports ranks whose death
// the caller has already accounted for; nil means none). On error the
// posted receive has been withdrawn (unless it completed concurrently, in
// which case the completed message wins and no error is returned).
//
// This is the NON-unwinding failure path: the exchange scheduler uses it so
// a dead peer mid-drain surfaces as a value it can degrade around, not a
// rank unwind.
func (c *Comm) WaitPeerAware(req *Request, known func(rank int) bool) (any, Status, error) {
	for {
		_, ch := c.failures.snapshot()
		if pe := c.newFailure(known); pe != nil {
			// A failed cancel means a delivery already committed (done
			// closes imminently); the completed message wins over the error.
			if c.mbox.cancel(req) {
				return nil, Status{}, pe
			}
			<-req.done
			return req.payload, req.status, nil
		}
		select {
		case <-req.done:
			return req.payload, req.status, nil
		case <-c.abortCh:
			panic(abortSignal{})
		case <-c.closedCh:
			if c.mbox.cancel(req) {
				return nil, Status{}, fmt.Errorf("mpi: rank %d: %w", c.rank, ErrCommClosed)
			}
			<-req.done
			return req.payload, req.status, nil
		case <-ch:
		}
	}
}

// newFailure returns the lowest-ranked recorded failure not covered by
// known, or nil.
func (c *Comm) newFailure(known func(rank int) bool) *transport.PeerError {
	c.failures.mu.Lock()
	defer c.failures.mu.Unlock()
	best := -1
	for r := range c.failures.dead {
		if known != nil && known(r) {
			continue
		}
		if best < 0 || r < best {
			best = r
		}
	}
	if best < 0 {
		return nil
	}
	return c.failures.dead[best]
}

// CancelRecv withdraws a posted receive (e.g. the exchange scheduler's
// outstanding ANY_SOURCE receive once a degraded epoch's expectation is
// met). It returns true if the receive was withdrawn before matching; false
// means the request completed — the caller should consume it via Wait/Test.
func (c *Comm) CancelRecv(req *Request) bool { return c.mbox.cancel(req) }

// --- group (shrunken communicator) machinery ---

// GroupSize returns the number of ranks in the communicator's collective
// group: Size() for a full world, fewer after Shrink.
func (c *Comm) GroupSize() int {
	if c.group == nil {
		return c.size
	}
	return len(c.group)
}

// GroupRanks returns the sorted world ranks of the collective group (a
// copy). For a full world it is simply 0..Size()-1.
func (c *Comm) GroupRanks() []int {
	if c.group == nil {
		out := make([]int, c.size)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return append([]int(nil), c.group...)
}

// worldRank maps a group index to its world rank.
func (c *Comm) worldRank(i int) int {
	if c.group == nil {
		return i
	}
	return c.group[i]
}

// groupIndex returns the group index of a world rank, or -1 if the rank is
// not a member of the current group.
func (c *Comm) groupIndex(rank int) int {
	if c.group == nil {
		if rank < 0 || rank >= c.size {
			return -1
		}
		return rank
	}
	i := sort.SearchInts(c.group, rank)
	if i < len(c.group) && c.group[i] == rank {
		return i
	}
	return -1
}

// Shrink re-forms the communicator's collective group over live: subsequent
// collectives (Barrier, Allreduce, Bcast, ... and the async IAllreduce)
// ring over exactly these world ranks. live must be sorted, free of
// duplicates, within [0, Size()), and contain this rank. Every surviving
// rank must call Shrink with the SAME list before the group's next
// collective, and no collective may be in flight during the call — the
// usual re-formation contract after a failure (compare MPI-ULFM's
// MPI_Comm_shrink). Shrinking back to the full world is expressed by
// passing all ranks.
func (c *Comm) Shrink(live []int) error {
	if len(live) == 0 {
		return fmt.Errorf("mpi: Shrink: empty group")
	}
	g := append([]int(nil), live...)
	for i, r := range g {
		if r < 0 || r >= c.size {
			return fmt.Errorf("mpi: Shrink: rank %d out of range [0,%d)", r, c.size)
		}
		if i > 0 && g[i-1] >= r {
			return fmt.Errorf("mpi: Shrink: group not strictly sorted at index %d", i)
		}
	}
	idx := sort.SearchInts(g, c.rank)
	if idx == len(g) || g[idx] != c.rank {
		return fmt.Errorf("mpi: Shrink: group does not contain this rank %d", c.rank)
	}
	if len(g) == c.size {
		c.group, c.gidx = nil, c.rank
		return nil
	}
	c.group, c.gidx = g, idx
	return nil
}

// GroupRank returns this rank's index within the collective group (Rank()
// for a full world). Callers that shard work across the group — validation
// shards, per-group denominators — index by GroupRank over GroupSize so a
// shrunken world still covers the whole range.
func (c *Comm) GroupRank() int { return c.gidx }

// Guard runs fn and converts a peer-failure unwind into a returned error
// WITHOUT aborting the world — the transaction boundary for degrade-mode
// callers (train's -on-peer-fail=degrade) that intend to Shrink the group
// and continue. Any other unwind — world abort, closed communicator, a
// genuine panic — propagates unchanged, because those mean the run is over,
// not that one peer died.
func (c *Comm) Guard(fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			tf, ok := p.(transportFailure)
			if !ok {
				panic(p)
			}
			if _, isPeer := transport.AsPeerError(tf.err); !isPeer {
				panic(p)
			}
			err = fmt.Errorf("mpi: rank %d sacrificed a collective: %w", c.rank, tf.err)
		}
	}()
	return fn()
}

// CollSeq returns the communicator's next collective sequence number. After
// a recovery, survivors exchange these and realign with SetCollSeq so the
// derived internal tag spaces stay in lock-step. Safe to call from any
// goroutine (telemetry samples it as a progress gauge).
func (c *Comm) CollSeq() int { return int(c.collSeq.Load()) }

// SetCollSeq realigns the collective sequence counter. seq must be at least
// the current value on every surviving rank (typically max over survivors,
// exchanged during reconciliation) so that no future collective reuses a
// tag a sacrificed collective's stale frames still occupy. Must only be
// called by the owning goroutine with no collective in flight.
func (c *Comm) SetCollSeq(seq int) {
	if cur := int(c.collSeq.Load()); seq < cur {
		panic(fmt.Sprintf("mpi: SetCollSeq(%d): would rewind past %d and collide with stale tags", seq, cur))
	}
	c.collSeq.Store(int64(seq))
}

// InflightCollectives returns the number of non-blocking collectives
// currently in flight (launched, Wait not yet satisfied) — the live overlap
// depth of the bucketed gradient sync. Safe to call from any goroutine.
func (c *Comm) InflightCollectives() int { return int(c.inflightColl.Load()) }

// PeerErrorFrom unwraps err into the typed peer failure it carries, if any
// — the caller-level test for "a specific peer died" versus "the run is
// broken". It sees through the runtime's unwind wrappers (Run/Execute
// error text) because those wrap with %w.
func PeerErrorFrom(err error) (*transport.PeerError, bool) {
	return transport.AsPeerError(err)
}
