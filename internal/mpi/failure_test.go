package mpi

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"plshuffle/internal/transport"
)

// kill abruptly removes this rank from its world (the fault-injection
// analogue of a SIGKILLed process): peers observe a transport.PeerError.
func kill(t *testing.T, c *Comm) {
	t.Helper()
	k, ok := c.Transport().(transport.Killer)
	if !ok {
		t.Fatalf("transport %T does not implement Killer", c.Transport())
	}
	k.Kill()
}

// runWithTimeout runs fn across n ranks with a deadlock watchdog and
// returns the joined per-rank error.
func runWithTimeout(t *testing.T, n int, fn func(c *Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- Run(n, fn) }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("mpi failure test deadlocked (30s timeout)")
		return nil
	}
}

func TestShrinkValidation(t *testing.T) {
	w := NewWorld(4)
	c := w.Comm(1)
	for _, tc := range []struct {
		name string
		live []int
	}{
		{"empty", nil},
		{"out of range", []int{1, 4}},
		{"negative", []int{-1, 1}},
		{"unsorted", []int{3, 1}},
		{"duplicate", []int{1, 1, 3}},
		{"missing self", []int{0, 2}},
	} {
		if err := c.Shrink(tc.live); err == nil {
			t.Errorf("Shrink(%v) [%s]: want error, got nil", tc.live, tc.name)
		}
	}
	if err := c.Shrink([]int{0, 1, 3}); err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if got := c.GroupSize(); got != 3 {
		t.Fatalf("GroupSize() = %d, want 3", got)
	}
	if got := c.GroupRanks(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("GroupRanks() = %v, want [0 1 3]", got)
	}
	// Shrinking back to the full world restores the identity mapping.
	if err := c.Shrink([]int{0, 1, 2, 3}); err != nil {
		t.Fatalf("Shrink(full): %v", err)
	}
	if c.group != nil || c.GroupSize() != 4 {
		t.Fatalf("full-world Shrink did not restore identity: group=%v size=%d", c.group, c.GroupSize())
	}
}

// TestCollectivesOverShrunkenGroup drives every collective over a
// 4-member group of a 5-rank world (rank 2 excluded) and checks results
// match the survivor-only semantics.
func TestCollectivesOverShrunkenGroup(t *testing.T) {
	live := []int{0, 1, 3, 4}
	err := runWithTimeout(t, 5, func(c *Comm) error {
		if c.Rank() == 2 {
			return nil // excluded rank sits out
		}
		if err := c.Shrink(live); err != nil {
			return err
		}

		// Allreduce: sum of rank+1 over survivors = 1+2+4+5 = 12.
		buf := []int{c.Rank() + 1}
		Allreduce(c, buf, OpSum)
		if buf[0] != 12 {
			t.Errorf("rank %d: Allreduce = %d, want 12", c.Rank(), buf[0])
		}

		// Bcast from a shifted root (world rank 3).
		b := []int{0}
		if c.Rank() == 3 {
			b[0] = 77
		}
		Bcast(c, b, 3)
		if b[0] != 77 {
			t.Errorf("rank %d: Bcast = %d, want 77", c.Rank(), b[0])
		}

		// Reduce to world rank 4.
		r := []int{c.Rank()}
		Reduce(c, r, OpSum, 4)
		if c.Rank() == 4 && r[0] != 0+1+3+4 {
			t.Errorf("Reduce at root = %d, want 8", r[0])
		}

		// Barrier over the group.
		c.Barrier()

		// Gather at world rank 0, ordered by group index.
		g := Gather(c, []int{10 * c.Rank()}, 0)
		if c.Rank() == 0 {
			want := []int{0, 10, 30, 40}
			for i := range want {
				if g[i] != want[i] {
					t.Errorf("Gather = %v, want %v", g, want)
					break
				}
			}
		} else if g != nil {
			t.Errorf("rank %d: Gather non-root returned %v", c.Rank(), g)
		}

		// Allgather ordered by group index.
		ag := Allgather(c, []int{c.Rank()})
		want := []int{0, 1, 3, 4}
		for i := range want {
			if ag[i] != want[i] {
				t.Errorf("rank %d: Allgather = %v, want %v", c.Rank(), ag, want)
				break
			}
		}

		// AllgatherVarLen stays WORLD-indexed; the dead rank's entry is nil.
		v := make([]int, c.Rank()+1)
		av := AllgatherVarLen(c, v)
		if len(av) != 5 || av[2] != nil {
			t.Errorf("rank %d: AllgatherVarLen world indexing broken: len=%d av[2]=%v", c.Rank(), len(av), av[2])
		}
		for _, r := range live {
			if len(av[r]) != r+1 {
				t.Errorf("rank %d: AllgatherVarLen[%d] len=%d, want %d", c.Rank(), r, len(av[r]), r+1)
			}
		}

		// Alltoall stays WORLD-indexed; the dead rank's row is ignored.
		send := make([][]int, 5)
		for i := range send {
			send[i] = []int{c.Rank()*100 + i}
		}
		out := Alltoall(c, send)
		if out[2] != nil {
			t.Errorf("rank %d: Alltoall out[2] = %v, want nil", c.Rank(), out[2])
		}
		for _, r := range live {
			if len(out[r]) != 1 || out[r][0] != r*100+c.Rank() {
				t.Errorf("rank %d: Alltoall out[%d] = %v, want [%d]", c.Rank(), r, out[r], r*100+c.Rank())
			}
		}

		// Non-blocking allreduce over the group.
		ib := []float32{float32(c.Rank())}
		IAllreduce(c, ib, OpSum).Wait()
		if ib[0] != 8 {
			t.Errorf("rank %d: IAllreduce = %v, want 8", c.Rank(), ib[0])
		}

		// AllreduceNaive (the ablation baseline) over the group.
		nb := []int{1}
		AllreduceNaive(c, nb, OpSum)
		if nb[0] != 4 {
			t.Errorf("rank %d: AllreduceNaive = %d, want 4", c.Rank(), nb[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveRootOutsideGroupPanics(t *testing.T) {
	err := runWithTimeout(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			return nil
		}
		if err := c.Shrink([]int{0}); err != nil {
			return err
		}
		Bcast(c, []int{1}, 1) // root 1 is not a group member
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("want 'not a member' panic, got %v", err)
	}
}

// TestCollectiveUnwindsOnPeerDeath kills one rank while the others block
// in a full-world collective: every survivor must unwind with a typed
// peer error (or the abort that the first unwinding survivor triggers)
// instead of hanging forever.
func TestCollectiveUnwindsOnPeerDeath(t *testing.T) {
	var entered sync.WaitGroup
	entered.Add(3)
	err := runWithTimeout(t, 4, func(c *Comm) error {
		if c.Rank() == 3 {
			entered.Wait() // let the survivors commit to the collective first
			time.Sleep(10 * time.Millisecond)
			kill(t, c)
			return nil
		}
		buf := make([]float32, 1024)
		entered.Done()
		Allreduce(c, buf, OpSum) // must unwind, not block
		return errors.New("allreduce completed despite dead peer")
	})
	if err == nil {
		t.Fatal("want error from surviving ranks, got nil")
	}
	if strings.Contains(err.Error(), "completed despite") {
		t.Fatalf("collective completed with a dead member: %v", err)
	}
	pe, ok := PeerErrorFrom(err)
	if !ok || pe.Rank != 3 {
		t.Fatalf("want a peer error for rank 3 in %v", err)
	}
}

// TestIAllreduceWaitPropagatesPeerFailure: the async path must surface
// the same typed failure as the blocking one.
func TestIAllreduceWaitPropagatesPeerFailure(t *testing.T) {
	err := runWithTimeout(t, 3, func(c *Comm) error {
		if c.Rank() == 2 {
			kill(t, c)
			return nil
		}
		// Wait until the registry has seen the death so launch ordering
		// cannot race the kill.
		for len(c.FailedPeers()) == 0 {
			time.Sleep(time.Millisecond)
		}
		buf := make([]float32, 64)
		req := IAllreduce(c, buf, OpSum)
		req.Wait()
		return errors.New("IAllreduce.Wait returned despite dead peer")
	})
	if err == nil {
		t.Fatal("want error, got nil")
	}
	pe, ok := PeerErrorFrom(err)
	if !ok || pe.Rank != 2 {
		t.Fatalf("want a peer error for rank 2 in %v", err)
	}
}

// TestWaitPeerAware: an unknown failure surfaces as a value (withdrawing
// the receive); a known failure is filtered out and a real message wins.
func TestWaitPeerAware(t *testing.T) {
	const goTag, dataTag = 9, 7
	err := runWithTimeout(t, 3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			kill(t, c)
			return nil
		case 2:
			c.Recv(0, goTag) // wait until rank 0 has absorbed the failure
			c.Send(0, dataTag, []int64{42})
			return nil
		case 0:
			req := c.Irecv(AnySource, dataTag)
			_, _, werr := c.WaitPeerAware(req, nil)
			if werr == nil {
				return errors.New("WaitPeerAware: want peer error, got message")
			}
			pe, ok := transport.AsPeerError(werr)
			if !ok || pe.Rank != 1 {
				t.Errorf("WaitPeerAware error = %v, want peer error for rank 1", werr)
			}
			// The receive was withdrawn; post a fresh one that filters the
			// known death and must deliver rank 2's message.
			c.Send(2, goTag, nil)
			req = c.Irecv(AnySource, dataTag)
			payload, st, werr := c.WaitPeerAware(req, func(r int) bool { return r == 1 })
			if werr != nil {
				return werr
			}
			if st.Source != 2 || payload.([]int64)[0] != 42 {
				t.Errorf("WaitPeerAware delivered src=%d payload=%v, want src=2 [42]", st.Source, payload)
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendPeerAware(t *testing.T) {
	err := runWithTimeout(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			kill(t, c)
			return nil
		}
		// Wait until the transport reports the death, then the send must
		// surface it as a value.
		for len(c.FailedPeers()) == 0 {
			time.Sleep(time.Millisecond)
		}
		pe := c.SendPeerAware(1, 5, []int64{1})
		if pe == nil || pe.Rank != 1 {
			t.Errorf("SendPeerAware to dead rank = %v, want peer error for rank 1", pe)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCancelRecv withdraws a posted receive; a message sent afterwards is
// queued as unexpected and matched by the next receive, not the withdrawn
// one.
func TestCancelRecv(t *testing.T) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	req := c0.Irecv(1, 3)
	if !c0.CancelRecv(req) {
		t.Fatal("CancelRecv: want true for an unmatched receive")
	}
	c1.Send(0, 3, []int64{7})
	if done, _, _ := req.Test(); done {
		t.Fatal("withdrawn receive stole a message")
	}
	payload, _ := c0.Recv(1, 3)
	if payload.([]int64)[0] != 7 {
		t.Fatalf("Recv after cancel = %v, want [7]", payload)
	}
	if c0.CancelRecv(req) {
		t.Fatal("CancelRecv: want false for an already-withdrawn receive")
	}
}

// TestCloseWakesBlockedRecv: a watchdog's Close must unwind a blocked
// receive with ErrCommClosed instead of stranding the goroutine.
func TestCloseWakesBlockedRecv(t *testing.T) {
	err := runWithTimeout(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			return nil
		}
		go func() {
			time.Sleep(20 * time.Millisecond)
			c.Close()
		}()
		c.Recv(1, 4) // never satisfied; must unwind on Close
		return errors.New("Recv returned without a message")
	})
	if err == nil || !errors.Is(err, ErrCommClosed) {
		t.Fatalf("want ErrCommClosed unwind, got %v", err)
	}
}

func TestNotePeerFailureManual(t *testing.T) {
	w := NewWorld(3)
	c := w.Comm(0)
	c.NotePeerFailure(transport.PeerError{Rank: 2, Phase: transport.PhaseRecv})
	c.NotePeerFailure(transport.PeerError{Rank: 2, Phase: transport.PhaseSend}) // duplicate: ignored
	if got := c.FailedPeers(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FailedPeers = %v, want [2]", got)
	}
	if pe := c.PeerFailure(2); pe == nil || pe.Phase != transport.PhaseRecv {
		t.Fatalf("PeerFailure(2) = %v, want first-recorded phase", pe)
	}
	if pe := c.PeerFailure(1); pe != nil {
		t.Fatalf("PeerFailure(1) = %v, want nil", pe)
	}
}

func TestSetCollSeqRealign(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(0)
	c.SetCollSeq(c.CollSeq() + 5)
	if got := c.CollSeq(); got != 5 {
		t.Fatalf("CollSeq = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetCollSeq rewind: want panic")
		}
	}()
	c.SetCollSeq(1)
}
