package mpi

import (
	"fmt"
	"time"
)

// CollRequest represents an in-flight non-blocking collective operation
// (IAllreduce / IAllreduceChunks). The operation progresses on a dedicated
// goroutine; Wait blocks the caller until it completes. Unlike the
// point-to-point Request, a CollRequest also carries the operation's exact
// wire-byte accounting and its in-flight wall-clock, which is what lets
// the trainer measure how much of the gradient exchange was hidden behind
// backward compute.
type CollRequest struct {
	done    chan struct{}
	abortCh <-chan struct{}

	// Written by the collective goroutine strictly before done is closed;
	// read by the owner only after Wait/Test observes done. The channel
	// close provides the happens-before edge.
	panicVal   any
	sent, recv int64
	elapsed    time.Duration

	started time.Time
}

// completedCollRequest returns an already-complete request (size-1 worlds).
func completedCollRequest() *CollRequest {
	r := &CollRequest{done: make(chan struct{})}
	close(r.done)
	return r
}

// Wait blocks until the collective completes. If the world is aborted
// while waiting, or the collective itself unwound (abort, transport
// failure), Wait panics with the runtime's control-flow signal exactly as
// a blocking collective would — Run/Execute recover it into a per-rank
// error, so error handling is identical across the sync and async paths.
func (r *CollRequest) Wait() {
	if r.abortCh != nil {
		select {
		case <-r.done:
		case <-r.abortCh:
			panic(abortSignal{})
		}
	} else {
		<-r.done
	}
	if r.panicVal != nil {
		panic(r.panicVal)
	}
}

// Test reports whether the collective has completed without blocking. Once
// it returns true, a Wait call is non-blocking (and still required if the
// caller wants failure unwinding).
func (r *CollRequest) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// WireBytes returns the exact number of wire bytes this rank sent and
// received for the collective (frame headers included). Both are zero on
// non-wire backends. Valid only after Wait.
func (r *CollRequest) WireBytes() (sent, recv int64) { return r.sent, r.recv }

// Elapsed returns the operation's total in-flight wall-clock time, from
// launch to ring completion. Valid only after Wait. Comparing the caller's
// blocked-in-Wait time against Elapsed measures the hidden fraction of the
// communication.
func (r *CollRequest) Elapsed() time.Duration { return r.elapsed }

// IAllreduce starts a non-blocking element-wise reduction of buf across
// all ranks, using the same ring algorithm (and therefore the same
// per-element reduction order — bitwise-identical results) as the blocking
// Allreduce. The caller must not touch buf until Wait returns.
//
// Every rank must launch its collectives (blocking and non-blocking alike)
// in the same program order; the internal tag space is derived from that
// shared order, so any number of IAllreduce operations may be in flight
// concurrently, and may overlap blocking collectives, without cross-talk.
func IAllreduce[T Number](c *Comm, buf []T, op Op) *CollRequest {
	size := c.GroupSize()
	if size == 1 {
		return completedCollRequest()
	}
	bounds := make([]int, size+1)
	fillDefaultBounds(bounds, len(buf), size)
	return iallreduce(c, buf, op, bounds)
}

// IAllreduceChunks is IAllreduce with a caller-supplied chunk partition:
// bounds must have length Size()+1, be non-decreasing, and span
// [0, len(buf)] (bounds[0] = 0, bounds[Size()] = len(buf)); it must be
// identical on every rank and must not be mutated while the operation is
// in flight (precompute it once and reuse it across iterations — the
// pooled-buffer discipline of the hot paths).
//
// The partition controls the per-element reduction order (see
// ringAllreduce), which is what the bucketed gradient sync exploits: a
// bucket covering flat range [lo, hi) of a larger logical buffer passes
// the global flat partition clamped to its range, so every element is
// reduced in exactly the order the flat single-Allreduce path would use —
// the overlapped and serial paths produce bitwise-identical results.
func IAllreduceChunks[T Number](c *Comm, buf []T, op Op, bounds []int) *CollRequest {
	size := c.GroupSize()
	if len(bounds) != size+1 {
		panic(fmt.Sprintf("mpi: IAllreduceChunks: len(bounds)=%d, want group size+1=%d", len(bounds), size+1))
	}
	if bounds[0] != 0 || bounds[size] != len(buf) {
		panic(fmt.Sprintf("mpi: IAllreduceChunks: bounds span [%d,%d], want [0,%d]", bounds[0], bounds[size], len(buf)))
	}
	for i := 0; i < size; i++ {
		if bounds[i] > bounds[i+1] {
			panic(fmt.Sprintf("mpi: IAllreduceChunks: bounds[%d]=%d > bounds[%d]=%d", i, bounds[i], i+1, bounds[i+1]))
		}
	}
	if size == 1 {
		return completedCollRequest()
	}
	return iallreduce(c, buf, op, bounds)
}

// iallreduce reserves the collective's tag space on the owning goroutine
// (the sequence counter is single-goroutine by contract) and runs the ring
// on a dedicated goroutine. Runtime unwinds inside the ring — abort
// signals, transport failures — are captured and re-raised in Wait on the
// owner, so a background failure can never crash the process from an
// unrecovered goroutine.
func iallreduce[T Number](c *Comm, buf []T, op Op, bounds []int) *CollRequest {
	req := &CollRequest{
		done:    make(chan struct{}),
		abortCh: c.abortCh,
		started: time.Now(),
	}
	seq := c.nextSeq()
	wire := c.conn.Stats().Wire
	c.inflightColl.Add(1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				req.panicVal = p
			}
			req.elapsed = time.Since(req.started)
			c.inflightColl.Add(-1)
			close(req.done)
		}()
		req.sent, req.recv = ringAllreduce(c, buf, op, seq, bounds, wire)
	}()
	return req
}

// WaitAllColl waits for every request in reqs (nil entries allowed).
func WaitAllColl(reqs []*CollRequest) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
