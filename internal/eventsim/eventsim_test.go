package eventsim

import (
	"math"
	"testing"

	"plshuffle/internal/cluster"
	"plshuffle/internal/perfmodel"
	"plshuffle/internal/shuffle"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(2, func() { order = append(order, 2) })
	eng.Schedule(1, func() { order = append(order, 1) })
	eng.Schedule(3, func() { order = append(order, 3) })
	end := eng.Run()
	if end != 3 {
		t.Fatalf("final time %v", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEngineTieBreakDeterministic(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		eng.Schedule(1, func() { order = append(order, i) })
	}
	eng.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	hits := 0
	eng.Schedule(1, func() {
		eng.Schedule(1, func() {
			hits++
			if eng.Now() != 2 {
				t.Errorf("nested event at %v, want 2", eng.Now())
			}
		})
	})
	eng.Run()
	if hits != 1 {
		t.Fatal("nested event did not run")
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestPSResourceSingleJob(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, 100, 0) // 100 bytes/s
	var doneAt float64
	r.Submit(200, func() { doneAt = eng.Now() })
	eng.Run()
	if math.Abs(doneAt-2) > 1e-9 {
		t.Fatalf("single job finished at %v, want 2", doneAt)
	}
}

func TestPSResourceFairSharing(t *testing.T) {
	// Two equal jobs arriving together at capacity 100: each runs at 50,
	// both finish at t=4 for 200 bytes.
	eng := NewEngine()
	r := NewPSResource(eng, 100, 0)
	var t1, t2 float64
	r.Submit(200, func() { t1 = eng.Now() })
	r.Submit(200, func() { t2 = eng.Now() })
	eng.Run()
	if math.Abs(t1-4) > 1e-9 || math.Abs(t2-4) > 1e-9 {
		t.Fatalf("fair sharing finished at %v and %v, want 4", t1, t2)
	}
}

func TestPSResourceStaggeredArrival(t *testing.T) {
	// Job A (200 bytes) starts at 0; job B (100 bytes) arrives at t=1.
	// A runs alone for 1 s (100 done), then shares: both at 50 B/s.
	// B finishes at 1 + 100/50 = 3; A has 100-? A remaining at t=1: 100;
	// at t=3: 100 - 2*50 = 0 -> also finishes at 3.
	eng := NewEngine()
	r := NewPSResource(eng, 100, 0)
	var ta, tb float64
	r.Submit(200, func() { ta = eng.Now() })
	eng.Schedule(1, func() {
		r.Submit(100, func() { tb = eng.Now() })
	})
	eng.Run()
	if math.Abs(ta-3) > 1e-9 || math.Abs(tb-3) > 1e-9 {
		t.Fatalf("staggered: A at %v, B at %v, want both 3", ta, tb)
	}
}

func TestPSResourcePerJobCap(t *testing.T) {
	// Capacity 1000 but per-job cap 10: a lone 100-byte job takes 10 s.
	eng := NewEngine()
	r := NewPSResource(eng, 1000, 10)
	var done float64
	r.Submit(100, func() { done = eng.Now() })
	eng.Run()
	if math.Abs(done-10) > 1e-9 {
		t.Fatalf("capped job finished at %v, want 10", done)
	}
}

func TestPSResourceZeroBytes(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, 10, 0)
	ran := false
	r.Submit(0, func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("zero-byte job never completed")
	}
}

func TestBarrierReleasesAllTogether(t *testing.T) {
	eng := NewEngine()
	b := NewBarrier(eng, 3, 0.5)
	var times []float64
	arrive := func(at float64) {
		eng.Schedule(at, func() {
			b.Arrive(func() { times = append(times, eng.Now()) })
		})
	}
	arrive(1)
	arrive(2)
	arrive(5) // straggler
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("released %d", len(times))
	}
	for _, tm := range times {
		if math.Abs(tm-5.5) > 1e-9 {
			t.Fatalf("release times %v, want all 5.5", times)
		}
	}
}

func TestBarrierMultipleRounds(t *testing.T) {
	eng := NewEngine()
	b := NewBarrier(eng, 2, 0)
	rounds := 0
	var loop func(r int, n int)
	loop = func(r, n int) {
		if n == 0 {
			return
		}
		b.Arrive(func() {
			if r == 0 {
				rounds++
			}
			eng.Schedule(1, func() { loop(r, n-1) })
		})
	}
	loop(0, 3)
	loop(1, 3)
	eng.Run()
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
}

// --- full simulation ---

func imagenetWorkload(t testing.TB, model string) perfmodel.Workload {
	t.Helper()
	p, err := perfmodel.Profile(model)
	if err != nil {
		t.Fatal(err)
	}
	return perfmodel.Workload{N: 1_281_167, BytesPerSample: 117 << 10, LocalBatch: 32, Model: p}
}

func simulate(t testing.TB, workers int, s shuffle.Strategy) Result {
	t.Helper()
	res, err := SimulateEpoch(Config{
		Machine:  cluster.ABCI(),
		Workload: imagenetWorkload(t, "resnet50"),
		Workers:  workers,
		Strategy: s,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimValidation(t *testing.T) {
	cfg := Config{Machine: cluster.ABCI(), Workload: imagenetWorkload(t, "resnet50"), Workers: 0, Strategy: shuffle.LocalShuffling()}
	if _, err := SimulateEpoch(cfg); err == nil {
		t.Fatal("workers=0 accepted")
	}
	cfg.Workers = 4
	cfg.Strategy = shuffle.Partial(2)
	if _, err := SimulateEpoch(cfg); err == nil {
		t.Fatal("bad strategy accepted")
	}
	cfg.Strategy = shuffle.LocalShuffling()
	cfg.Workload.N = 0
	if _, err := SimulateEpoch(cfg); err == nil {
		t.Fatal("bad workload accepted")
	}
}

func TestSimDeterministic(t *testing.T) {
	a := simulate(t, 64, shuffle.GlobalShuffling())
	b := simulate(t, 64, shuffle.GlobalShuffling())
	if a.EpochTime != b.EpochTime || a.IOSlowest != b.IOSlowest {
		t.Fatal("simulation not deterministic")
	}
}

// TestSimGlobalSlowerThanLocal reproduces the Figure 9 ordering with
// emergent contention: at 128 workers GS should be several times slower.
func TestSimGlobalSlowerThanLocal(t *testing.T) {
	gs := simulate(t, 128, shuffle.GlobalShuffling())
	ls := simulate(t, 128, shuffle.LocalShuffling())
	ratio := gs.EpochTime / ls.EpochTime
	if ratio < 2 || ratio > 12 {
		t.Fatalf("GS/LS at 128 workers = %.2f, want a clear multiple", ratio)
	}
	if ls.Exchange != 0 || gs.Exchange != 0 {
		t.Fatal("non-PLS strategies should have no exchange time")
	}
}

// TestSimStragglersEmerge: under the PFS's heavy-tailed per-request
// jitter, the slowest reader should sit several times above the mean —
// the 11.9 s vs 142 s effect of Section V-F — without any fitted
// straggler coefficient.
func TestSimStragglersEmerge(t *testing.T) {
	gs := simulate(t, 128, shuffle.GlobalShuffling())
	spread := gs.IOSlowest / gs.IOMean
	if spread < 1.5 {
		t.Fatalf("straggler spread %.2f; expected emergent stragglers", spread)
	}
	// Straggler waiting inflates the gradient-exchange time well above the
	// pure allreduce cost.
	ls := simulate(t, 128, shuffle.LocalShuffling())
	if gs.GEWU < 2*ls.GEWU {
		t.Fatalf("GS GE+WU (%.1f) should be inflated by straggler waits vs LS (%.1f)", gs.GEWU, ls.GEWU)
	}
}

func TestSimExchangeGrowsWithQ(t *testing.T) {
	prev := -1.0
	for _, q := range []float64{0.1, 0.5, 0.9} {
		r := simulate(t, 128, shuffle.Partial(q))
		if r.Exchange < prev {
			t.Fatalf("exposed exchange decreased at q=%v", q)
		}
		prev = r.Exchange
	}
}

func TestSimPartialNearLocalAtModerateScale(t *testing.T) {
	ls := simulate(t, 128, shuffle.LocalShuffling())
	pls := simulate(t, 128, shuffle.Partial(0.1))
	if ratio := pls.EpochTime / ls.EpochTime; ratio > 1.3 {
		t.Fatalf("partial-0.1 / local at 128 workers = %.2f, want near 1", ratio)
	}
}

// TestSimAgreesWithAnalyticModel cross-validates the two performance
// substrates: totals should agree within a factor of 3 across strategies
// and scales (they share calibrated inputs but differ in mechanism).
func TestSimAgreesWithAnalyticModel(t *testing.T) {
	for _, m := range []int{64, 512} {
		for _, s := range []shuffle.Strategy{shuffle.GlobalShuffling(), shuffle.LocalShuffling(), shuffle.Partial(0.1)} {
			sim := simulate(t, m, s)
			model, err := perfmodel.EpochTime(cluster.ABCI(), imagenetWorkload(t, "resnet50"), m, s)
			if err != nil {
				t.Fatal(err)
			}
			ratio := sim.EpochTime / model.Total()
			if ratio < 1.0/3 || ratio > 3 {
				t.Errorf("M=%d %s: simulated %.1f s vs analytic %.1f s (ratio %.2f)", m, s, sim.EpochTime, model.Total(), ratio)
			}
		}
	}
}

func TestFabricCapacityShrinksPerWorker(t *testing.T) {
	mc := cluster.ABCI()
	perWorkerSmall := fabricCapacity(mc, 64) / 64
	perWorkerLarge := fabricCapacity(mc, 2048) / 2048
	if perWorkerLarge >= perWorkerSmall {
		t.Fatalf("fat-tree tapering should shrink per-worker bisection: %.0f vs %.0f", perWorkerSmall, perWorkerLarge)
	}
}

func BenchmarkSimulateEpoch512(b *testing.B) {
	w := imagenetWorkload(b, "resnet50")
	for i := 0; i < b.N; i++ {
		if _, err := SimulateEpoch(Config{
			Machine: cluster.ABCI(), Workload: w, Workers: 512,
			Strategy: shuffle.Partial(0.1), Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
