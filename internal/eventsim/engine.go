// Package eventsim is a discrete-event simulator for distributed training
// epochs. Where internal/perfmodel computes closed-form epoch times, this
// simulator plays out the epoch event by event: workers issue I/O requests
// against shared processor-sharing resources (the PFS, NICs), compute for
// modeled durations, meet in allreduce barriers, and exchange samples as
// messages through the receivers' links. Stragglers and congestion are
// EMERGENT — they arise from contention and per-request jitter rather
// than from a fitted coefficient — which makes the simulator an
// independent cross-check of the analytic model (see the eventsim-vs-model
// experiment).
package eventsim

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback.
type event struct {
	time float64
	seq  int // tie-breaker for deterministic ordering
	fn   func()
}

type eventPQ []*event

func (q eventPQ) Len() int { return len(q) }
func (q eventPQ) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventPQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventPQ) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Engine is a sequential discrete-event engine. Time is in seconds.
type Engine struct {
	now    float64
	seq    int
	queue  eventPQ
	nsteps int
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds of simulated time.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("eventsim: Schedule(%v): negative delay", delay))
	}
	e.seq++
	heap.Push(&e.queue, &event{time: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until the queue drains. It returns the final time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.time
		e.nsteps++
		if e.nsteps > 50_000_000 {
			panic("eventsim: event budget exceeded (runaway simulation)")
		}
		ev.fn()
	}
	return e.now
}

// Steps returns the number of processed events (diagnostics).
func (e *Engine) Steps() int { return e.nsteps }
