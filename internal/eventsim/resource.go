package eventsim

import "fmt"

// PSResource is a processor-sharing resource: n concurrent jobs each
// progress at min(capacity/n, perJobCap) bytes per second. It models the
// parallel file system's aggregate bandwidth (fair-shared across reading
// clients, each additionally limited by its own small-file ceiling) and
// network links.
//
// The implementation keeps each active job's remaining bytes, advances
// them lazily at every arrival/completion, and reschedules the earliest
// completion; stale completion events are invalidated by a generation
// counter.
type PSResource struct {
	eng       *Engine
	capacity  float64 // aggregate bytes/s
	perJobCap float64 // per-job ceiling, 0 = none
	jobs      map[int]*psJob
	nextID    int
	lastTime  float64
	gen       int
}

type psJob struct {
	remaining float64
	done      func()
}

// NewPSResource creates a processor-sharing resource on the engine.
func NewPSResource(eng *Engine, capacity, perJobCap float64) *PSResource {
	if capacity <= 0 {
		panic(fmt.Sprintf("eventsim: NewPSResource: capacity %v must be positive", capacity))
	}
	return &PSResource{eng: eng, capacity: capacity, perJobCap: perJobCap, jobs: map[int]*psJob{}}
}

// rate returns the current per-job rate.
func (r *PSResource) rate() float64 {
	n := float64(len(r.jobs))
	if n == 0 {
		return 0
	}
	rate := r.capacity / n
	if r.perJobCap > 0 && rate > r.perJobCap {
		rate = r.perJobCap
	}
	return rate
}

// advance progresses all active jobs to the current time.
func (r *PSResource) advance() {
	dt := r.eng.Now() - r.lastTime
	r.lastTime = r.eng.Now()
	if dt <= 0 || len(r.jobs) == 0 {
		return
	}
	progressed := r.rate() * dt
	for _, j := range r.jobs {
		j.remaining -= progressed
		if j.remaining < 0 {
			j.remaining = 0
		}
	}
}

// reschedule computes the earliest completion and schedules it.
func (r *PSResource) reschedule() {
	r.gen++
	if len(r.jobs) == 0 {
		return
	}
	minRemaining := -1.0
	for _, j := range r.jobs {
		if minRemaining < 0 || j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	delay := minRemaining / r.rate()
	gen := r.gen
	r.eng.Schedule(delay, func() {
		if gen != r.gen {
			return // superseded by a later arrival/completion
		}
		r.complete()
	})
}

// complete finishes every job whose remaining work has reached zero. The
// threshold is a *time-domain* epsilon (one nanosecond of service at the
// current rate): a pure byte epsilon stalls when float rounding leaves a
// residual smaller than the representable time step, scheduling zero-width
// events forever.
func (r *PSResource) complete() {
	r.advance()
	threshold := r.rate() * 1e-9
	var dones []func()
	for id, j := range r.jobs {
		if j.remaining <= threshold {
			dones = append(dones, j.done)
			delete(r.jobs, id)
		}
	}
	r.reschedule()
	for _, d := range dones {
		d()
	}
}

// Submit enqueues a job of the given bytes; done runs at completion.
// Zero-byte jobs complete immediately (via a zero-delay event).
func (r *PSResource) Submit(bytes float64, done func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("eventsim: Submit(%v): negative size", bytes))
	}
	if bytes == 0 {
		r.eng.Schedule(0, done)
		return
	}
	r.advance()
	r.nextID++
	r.jobs[r.nextID] = &psJob{remaining: bytes, done: done}
	r.reschedule()
}

// Active returns the number of in-flight jobs (diagnostics).
func (r *PSResource) Active() int { return len(r.jobs) }

// Barrier synchronizes n parties: when the last one arrives, all waiting
// callbacks run (after an optional fixed delay). It is reusable across
// rounds: arrivals for round k+1 may come in before round k fully drains
// as long as each party calls Arrive exactly once per round in order,
// which the lock-step training loop guarantees.
type Barrier struct {
	eng     *Engine
	n       int
	delay   float64
	waiting []func()
}

// NewBarrier creates a barrier for n parties with a completion delay
// (e.g. the allreduce transfer time).
func NewBarrier(eng *Engine, n int, delay float64) *Barrier {
	if n <= 0 {
		panic("eventsim: NewBarrier: n must be positive")
	}
	return &Barrier{eng: eng, n: n, delay: delay}
}

// Arrive registers a party; resume runs once all n of the current round
// have arrived, delayed by the barrier's completion delay.
func (b *Barrier) Arrive(resume func()) {
	b.waiting = append(b.waiting, resume)
	if len(b.waiting) >= b.n {
		batch := b.waiting[:b.n]
		b.waiting = append([]func(){}, b.waiting[b.n:]...)
		for _, r := range batch {
			r := r
			b.eng.Schedule(b.delay, r)
		}
	}
}
