package eventsim

import (
	"fmt"
	"math"

	"plshuffle/internal/cluster"
	"plshuffle/internal/perfmodel"
	"plshuffle/internal/rng"
	"plshuffle/internal/shuffle"
)

// Config describes one epoch to simulate. It reuses the machine
// descriptions and workload definitions of the analytic model so the two
// can be compared point for point.
type Config struct {
	Machine  cluster.Machine
	Workload perfmodel.Workload
	Workers  int
	Strategy shuffle.Strategy
	Seed     uint64
}

// Result is the simulated epoch outcome, in seconds.
type Result struct {
	EpochTime float64 // completion of the slowest worker
	IOMean    float64 // mean per-worker time spent reading samples
	IOSlowest float64 // slowest worker's read time (emergent straggler)
	FWBW      float64 // mean compute time
	GEWU      float64 // mean gradient-exchange time incl. barrier waits
	Exchange  float64 // mean exposed sample-exchange time
	Events    int     // processed simulation events (diagnostics)
}

// Topology constants for the interconnect fabric: a fat-tree with the
// given switch radix and 2:1 tapering per level above the edge. The
// bisection bandwidth — and with it the all-to-all exchange capacity —
// degrades as the node count forces deeper trees; this is how at-scale
// exchange congestion EMERGES in the simulator instead of being fitted.
const (
	switchRadix = 16
	taperFactor = 2.0
)

// fabricCapacity returns the aggregate exchange bandwidth available to
// nodes of the machine at the given worker count.
func fabricCapacity(mc cluster.Machine, workers int) float64 {
	nodes := (workers + mc.WorkersPerNode - 1) / mc.WorkersPerNode
	injection := float64(workers) * mc.InjectionBW
	levels := 1
	for capacity := switchRadix; capacity < nodes; capacity *= switchRadix / 2 {
		levels++
	}
	oversub := math.Pow(taperFactor, float64(levels-1))
	return injection / oversub
}

// jitter multipliers: per-request service-time noise plus a persistent
// per-worker PFS multiplier. The per-request noise is heavy-tailed but
// averages out over an epoch's hundreds of requests; the paper's 11.9 s
// fastest vs 142 s slowest reader (Section V-F) reflects *persistent*
// asymmetry — unlucky object-storage-target placement, shared-server
// contention — which the per-worker multiplier models. Both are drawn
// from seeded streams, so stragglers emerge deterministically per seed.
const (
	pfsJitterSigma       = 0.6
	pfsWorkerJitterSigma = 0.8
	localJitterSigma     = 0.08
	computeJitterSigma   = 0.04
)

func lognormal(r *rng.Rand, sigma float64) float64 {
	return math.Exp(sigma*r.NormFloat64() - sigma*sigma/2) // mean 1
}

// workerState accumulates one worker's phase times.
type workerState struct {
	io, fwbw, gewu float64
	arrived        float64 // time of the last barrier arrival
	computeDone    float64
	exchangeDone   float64
	finished       float64
}

// SimulateEpoch plays out one epoch and returns its phase decomposition.
func SimulateEpoch(cfg Config) (Result, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Strategy.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Workers <= 0 {
		return Result{}, fmt.Errorf("eventsim: workers must be positive, got %d", cfg.Workers)
	}
	mc, w, m := cfg.Machine, cfg.Workload, cfg.Workers
	spw := w.N / m
	iters := spw / w.LocalBatch
	if iters < 1 {
		iters = 1
	}
	batchBytes := float64(w.LocalBatch) * float64(w.BytesPerSample)

	eng := NewEngine()
	pfs := NewPSResource(eng, mc.PFSEffectiveBW, mc.PFSPerClientBW)
	fabric := NewPSResource(eng, fabricCapacity(mc, m), mc.InjectionBW)
	allreduce := NewBarrier(eng, m, 2*float64(w.Model.ParamBytes)/mc.AllreduceBW)

	states := make([]*workerState, m)
	rands := make([]*rng.Rand, m)
	pfsWorkerJitter := make([]float64, m)
	for i := range states {
		states[i] = &workerState{}
		rands[i] = rng.NewStream(cfg.Seed, 0xe5, uint64(i))
		pfsWorkerJitter[i] = lognormal(rands[i], pfsWorkerJitterSigma)
	}

	localBW := mc.LocalReadBW
	if w.Sequential {
		localBW = mc.LocalSeqBW
	}

	var done int
	finishWorker := func(r int) {
		st := states[r]
		st.finished = math.Max(st.computeDone, st.exchangeDone)
		done++
	}

	// Exchange: one aggregate inbound flow per worker through the fabric,
	// plus a serial per-message processing cost at the receiver.
	exchanging := cfg.Strategy.Kind == shuffle.PartialLocal && cfg.Strategy.Q > 0
	if exchanging {
		k := shuffle.Slots(cfg.Strategy.Q, w.N, m)
		for r := 0; r < m; r++ {
			r := r
			vol := float64(k) * float64(w.BytesPerSample) * lognormal(rands[r], localJitterSigma)
			perMsg := float64(k) * mc.ExchangeLatency
			fabric.Submit(vol, func() {
				eng.Schedule(perMsg, func() {
					states[r].exchangeDone = eng.Now()
					if states[r].computeDone > 0 {
						finishWorker(r)
					}
				})
			})
		}
	}

	// The per-iteration training loop, in continuation-passing style.
	var step func(r, iter int)
	step = func(r, iter int) {
		st := states[r]
		if iter == iters {
			st.computeDone = eng.Now()
			if !exchanging || st.exchangeDone > 0 {
				finishWorker(r)
			}
			return
		}
		ioStart := eng.Now()
		afterIO := func() {
			st.io += eng.Now() - ioStart
			compute := batchBytes / float64(w.BytesPerSample) * w.Model.ComputePerSample *
				lognormal(rands[r], computeJitterSigma)
			eng.Schedule(compute, func() {
				st.fwbw += compute
				st.arrived = eng.Now()
				allreduce.Arrive(func() {
					st.gewu += eng.Now() - st.arrived
					step(r, iter+1)
				})
			})
		}
		if cfg.Strategy.Kind == shuffle.Global {
			// PFS read: shared bandwidth, per-client cap, metadata cost,
			// heavy-tailed per-request jitter on top of the worker's
			// persistent placement multiplier.
			jit := pfsWorkerJitter[r] * lognormal(rands[r], pfsJitterSigma)
			meta := float64(w.LocalBatch) * mc.PFSMetadataCost
			pfs.Submit(batchBytes*jit, func() {
				eng.Schedule(meta, afterIO)
			})
		} else {
			// Node-local read: private bandwidth, light jitter.
			t := batchBytes / localBW * lognormal(rands[r], localJitterSigma)
			eng.Schedule(t, afterIO)
		}
	}
	for r := 0; r < m; r++ {
		step(r, 0)
	}
	eng.Run()
	if done != m {
		return Result{}, fmt.Errorf("eventsim: only %d of %d workers finished (simulation bug)", done, m)
	}

	var res Result
	res.Events = eng.Steps()
	for _, st := range states {
		res.IOMean += st.io
		res.FWBW += st.fwbw
		res.GEWU += st.gewu
		if st.io > res.IOSlowest {
			res.IOSlowest = st.io
		}
		if exchanging {
			res.Exchange += math.Max(0, st.exchangeDone-st.computeDone)
		}
		if st.finished > res.EpochTime {
			res.EpochTime = st.finished
		}
	}
	fm := float64(m)
	res.IOMean /= fm
	res.FWBW /= fm
	res.GEWU /= fm
	res.Exchange /= fm
	return res, nil
}
