package cluster

import "testing"

func TestTop500HasFifteenSystems(t *testing.T) {
	systems := Top500Systems()
	if len(systems) != 15 {
		t.Fatalf("Figure 1 compares 15 systems, got %d", len(systems))
	}
	names := map[string]bool{}
	for _, s := range systems {
		if s.Name == "" {
			t.Fatal("system without a name")
		}
		if names[s.Name] {
			t.Fatalf("duplicate system %q", s.Name)
		}
		names[s.Name] = true
		if s.NodeLocalBytes < 0 || s.NetworkFlashBytes < 0 {
			t.Fatalf("%s: negative capacity", s.Name)
		}
	}
	// The paper highlights these specific facts.
	if !names["Fugaku"] || !names["ABCI"] {
		t.Fatal("experiment platforms missing from Figure 1")
	}
}

func TestFigure1Facts(t *testing.T) {
	byName := map[string]System{}
	for _, s := range Top500Systems() {
		byName[s.Name] = s
	}
	// Fugaku exposes ~50 GB of node-dedicated capacity (Section II).
	if f := byName["Fugaku"]; f.NodeLocalBytes != 50*GiB || f.NetworkFlashBytes != 0 {
		t.Fatalf("Fugaku capacity %d/%d", f.NodeLocalBytes, f.NetworkFlashBytes)
	}
	// Frontera, Piz Daint, Trinity use network-attached flash, not local SSD.
	for _, n := range []string{"Frontera", "Piz Daint", "Trinity"} {
		s := byName[n]
		if s.NodeLocalBytes != 0 || s.NetworkFlashBytes == 0 {
			t.Errorf("%s should have network flash only, has %d/%d", n, s.NodeLocalBytes, s.NetworkFlashBytes)
		}
	}
	// DL-designed systems are starred, and some systems have zero capacity.
	stars, zeros := 0, 0
	for _, s := range Top500Systems() {
		if s.DLDesigned {
			stars++
		}
		if s.PerNodeBytes() == 0 {
			zeros++
		}
	}
	if stars == 0 {
		t.Fatal("no DL-designed systems starred")
	}
	if zeros == 0 {
		t.Fatal("no zero-capacity systems; Figure 1 shows several")
	}
}

func TestFitsReproducesFigure1Story(t *testing.T) {
	byName := map[string]System{}
	for _, s := range Top500Systems() {
		byName[s.Name] = s
	}
	sizes := map[string]int64{}
	for _, d := range Figure1Datasets() {
		sizes[d.Name] = d.Bytes
	}
	// ImageNet-1K fits on typical 1.6 TB node SSDs but not in Fugaku's slice.
	if !byName["Summit"].Fits(sizes["ImageNet-1K"]) {
		t.Error("ImageNet-1K should fit Summit's local SSD")
	}
	if byName["Fugaku"].Fits(sizes["ImageNet-1K"]) {
		t.Error("ImageNet-1K should not fit Fugaku's 50 GB slice")
	}
	// DeepCAM (8.2 TiB) fits nowhere, not even on DL-designed systems —
	// "even those platforms cannot satisfy storage requirements for all
	// data sets" (Section II).
	for _, s := range Top500Systems() {
		if s.Fits(sizes["DeepCAM"]) {
			t.Errorf("DeepCAM unexpectedly fits %s", s.Name)
		}
	}
}

func TestFigure1DatasetsOrdering(t *testing.T) {
	ds := Figure1Datasets()
	if len(ds) < 8 {
		t.Fatalf("Figure 1 draws at least 8 dataset lines, got %d", len(ds))
	}
	for _, d := range ds {
		if d.Bytes <= 0 {
			t.Fatalf("%s has non-positive size", d.Name)
		}
	}
}

func TestMachinePresets(t *testing.T) {
	abci := ABCI()
	if abci.WorkersPerNode != 4 || abci.Nodes != 1088 {
		t.Fatalf("ABCI shape: %d workers/node, %d nodes", abci.WorkersPerNode, abci.Nodes)
	}
	if abci.MaxWorkers() != 4352 {
		t.Fatalf("ABCI MaxWorkers = %d", abci.MaxWorkers())
	}
	fugaku := Fugaku()
	if fugaku.Nodes != 158976 {
		t.Fatalf("Fugaku nodes = %d", fugaku.Nodes)
	}
	// Fugaku's per-worker slice is far smaller than ABCI's.
	if fugaku.LocalSSDBytes >= abci.LocalSSDBytes {
		t.Fatal("Fugaku should have less local storage per worker than ABCI")
	}
	for _, m := range []Machine{abci, fugaku} {
		if m.LocalReadBW <= 0 || m.PFSEffectiveBW <= 0 || m.InjectionBW <= 0 || m.AllreduceBW <= 0 {
			t.Fatalf("%s: missing bandwidth parameters", m.Name)
		}
		if m.PFSEffectiveBW >= m.PFSPeakBW {
			t.Fatalf("%s: effective PFS bandwidth should be below peak", m.Name)
		}
	}
}

func TestMachineByName(t *testing.T) {
	if _, err := MachineByName("abci"); err != nil {
		t.Fatal(err)
	}
	if _, err := MachineByName("fugaku"); err != nil {
		t.Fatal(err)
	}
	if _, err := MachineByName("frontier"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}
