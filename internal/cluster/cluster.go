// Package cluster describes the machines of the paper's study: the fifteen
// TOP500 systems whose node-local storage Figure 1 compares against deep
// learning dataset sizes, and the two experiment platforms (ABCI and
// Fugaku) with the storage/network parameters the performance model needs.
package cluster

import "fmt"

const (
	// KiB etc. are byte units used throughout the cluster tables.
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
	TiB = int64(1) << 40
	PiB = int64(1) << 50
)

// System is one row of Figure 1: a supercomputer's per-node dedicated
// storage. Exactly one of NodeLocalBytes / NetworkFlashBytes is typically
// non-zero: dark-blue bars are SSDs physically in the compute nodes,
// light-blue bars are network-attached flash (burst buffers) prorated per
// node. Systems with neither have zero capacity.
type System struct {
	Name              string
	NodeLocalBytes    int64 // SSD physically in the compute node
	NetworkFlashBytes int64 // per-node share of network-attached flash
	DLDesigned        bool  // starred in Figure 1: designed for DL workloads
}

// PerNodeBytes returns the node's usable dedicated capacity.
func (s System) PerNodeBytes() int64 { return s.NodeLocalBytes + s.NetworkFlashBytes }

// Fits reports whether a dataset of the given size can be replicated onto
// one node's dedicated storage — the feasibility question Figure 1 poses.
func (s System) Fits(datasetBytes int64) bool { return s.PerNodeBytes() >= datasetBytes }

// Top500Systems returns the fifteen systems of Figure 1 (TOP500, November
// 2020 snapshot). Capacities are approximate public figures; the paper's
// argument depends only on their order of magnitude relative to dataset
// sizes. Fugaku's entry is the 50 GB per-node slice of the 1.6 TB SSD
// shared by each group of 16 nodes (Section II).
func Top500Systems() []System {
	return []System{
		{Name: "Fugaku", NodeLocalBytes: 50 * GiB},
		{Name: "Summit", NodeLocalBytes: 1600 * GiB},
		{Name: "Sierra", NodeLocalBytes: 1600 * GiB},
		{Name: "Sunway TaihuLight"},
		{Name: "Selene", NodeLocalBytes: 3500 * GiB, DLDesigned: true},
		{Name: "Tianhe-2A"},
		{Name: "JUWELS Booster"},
		{Name: "HPC5", NodeLocalBytes: 1600 * GiB},
		{Name: "Frontera", NetworkFlashBytes: 72 * GiB},
		{Name: "Dammam-7"},
		{Name: "Marconi-100", NodeLocalBytes: 1600 * GiB},
		{Name: "Piz Daint", NetworkFlashBytes: 80 * GiB},
		{Name: "Trinity", NetworkFlashBytes: 190 * GiB},
		{Name: "ABCI", NodeLocalBytes: 1600 * GiB, DLDesigned: true},
		{Name: "Lassen", NodeLocalBytes: 1600 * GiB},
	}
}

// DatasetSize is one red horizontal line of Figure 1.
type DatasetSize struct {
	Name  string
	Bytes int64
}

// Figure1Datasets returns the dataset-size lines of Figure 1, top to
// bottom (Section II gives the headline numbers; the rest are the cited
// datasets' published sizes, approximate).
func Figure1Datasets() []DatasetSize {
	return []DatasetSize{
		{Name: "Google OpenImages", Bytes: 18 * TiB},
		{Name: "JFT-300M (Sun et al.)", Bytes: 30 * TiB},
		{Name: "DeepCAM", Bytes: 8396 * GiB},
		{Name: "C4 (cleaned Common Crawl)", Bytes: 7 * TiB},
		{Name: "Open Catalyst 2020", Bytes: 5 * TiB},
		{Name: "YouTube-8M", Bytes: 1536 * GiB},
		{Name: "ImageNet-21K", Bytes: 1126 * GiB},
		{Name: "ImageNet-1K", Bytes: 140 * GiB},
		{Name: "FieldSafe", Bytes: 80 * GiB},
	}
}

// Machine holds the performance-model parameters for an experiment
// platform. The effective rates are calibrated against the paper's own
// measurements (see internal/perfmodel) rather than hardware peaks: deep
// learning I/O is small-file and decode-bound, so effective per-worker
// rates sit far below device peaks.
type Machine struct {
	Name           string
	WorkersPerNode int
	Nodes          int

	// Node-local storage.
	LocalSSDBytes int64   // dedicated capacity per worker
	LocalReadBW   float64 // effective per-worker sample read+decode, bytes/s (small files)
	LocalSeqBW    float64 // effective per-worker large-file sequential read, bytes/s

	// Parallel file system.
	PFSCapacity     int64
	PFSPeakBW       float64 // theoretical aggregate peak, bytes/s (Fig 7b red line)
	PFSEffectiveBW  float64 // effective aggregate under DL random small reads
	PFSPerClientBW  float64 // per-client ceiling (metadata/small-file bound)
	PFSMetadataCost float64 // seconds per file open on the PFS
	// Straggler model: slowest client's I/O time = average * (1 +
	// StragglerCoef*sqrt(clients)). The paper measured 11.9 s fastest vs
	// 142 s slowest at 512 workers on ABCI.
	StragglerCoef float64

	// Interconnect, for the personalized all-to-all sample exchange and
	// the gradient allreduce. The random pairwise exchange is "sensitive
	// to network congestion when scaling up" (Section V-F): both the
	// per-message cost and the bandwidth share degrade with log2(M), and a
	// per-rank synchronization cost grows linearly with the world size.
	InjectionBW      float64 // per-worker injection bandwidth, bytes/s
	ExchangeCongest  float64 // congestion: effective rates /= 1 + coef*log2(M)
	ExchangeLatency  float64 // per-message base cost, seconds
	ExchangeSyncCost float64 // per-rank per-epoch synchronization cost, seconds
	AllreduceBW      float64 // effective allreduce bandwidth, bytes/s
}

// ABCI returns the AI Bridging Cloud Infrastructure parameters
// (Section V-A): 1,088 nodes, 4 V100 GPUs each (one worker per GPU),
// 1.6 TB local NVMe, 35 PB Lustre.
func ABCI() Machine {
	return Machine{
		Name:             "ABCI",
		WorkersPerNode:   4,
		Nodes:            1088,
		LocalSSDBytes:    400 * GiB, // 1.6 TB shared by 4 workers
		LocalReadBW:      34e6,      // calibrated: 274 MB epoch share read in ~8 s (Fig 10)
		LocalSeqBW:       1.5e9,
		PFSCapacity:      35 * PiB,
		PFSPeakBW:        100e9,
		PFSEffectiveBW:   7.5e9, // effective aggregate under DL random small reads
		PFSPerClientBW:   12e6,  // calibrated: ~20-26 s average GS read at 512 workers
		PFSMetadataCost:  0.0015,
		StragglerCoef:    0.28,  // calibrated: ~7x avg-to-slowest spread at 512 workers
		InjectionBW:      3.1e9, // IB EDR 100 Gb/s per node / 4 workers
		ExchangeCongest:  0.55,
		ExchangeLatency:  1e-3,
		ExchangeSyncCost: 2e-3,
		AllreduceBW:      8e9,
	}
}

// Fugaku returns the Fugaku parameters (Section V-A): 158,976 A64FX nodes,
// 4 MPI ranks per node, a 1.6 TB SSD shared by 16 nodes exposed as ~50 GB
// per node ("local mode", so 12.5 GB per worker), 150 PB Lustre.
func Fugaku() Machine {
	return Machine{
		Name:             "Fugaku",
		WorkersPerNode:   4,
		Nodes:            158976,
		LocalSSDBytes:    12*GiB + 512*MiB, // 50 GB node slice / 4 workers
		LocalReadBW:      25e6,             // shared SSD, smaller per-worker share
		LocalSeqBW:       600e6,
		PFSCapacity:      150 * PiB,
		PFSPeakBW:        1.5e12,
		PFSEffectiveBW:   20e9,
		PFSPerClientBW:   8e6,
		PFSMetadataCost:  0.002,
		StragglerCoef:    0.30,
		InjectionBW:      6.8e9 / 4, // TofuD ~6.8 GB/s injection per node
		ExchangeCongest:  0.50,
		ExchangeLatency:  1.5e-3,
		ExchangeSyncCost: 2.5e-3,
		AllreduceBW:      6e9,
	}
}

// Machines returns the experiment platforms by name.
func Machines() map[string]Machine {
	return map[string]Machine{"abci": ABCI(), "fugaku": Fugaku()}
}

// MachineByName looks up "abci" or "fugaku".
func MachineByName(name string) (Machine, error) {
	m, ok := Machines()[name]
	if !ok {
		return Machine{}, fmt.Errorf("cluster: unknown machine %q (known: abci, fugaku)", name)
	}
	return m, nil
}

// MaxWorkers returns the machine's total worker slots.
func (m Machine) MaxWorkers() int { return m.WorkersPerNode * m.Nodes }
