package data

import (
	"bytes"
	"math"
	"testing"

	"plshuffle/internal/rng"
)

// TestFP16RoundTripAllPatterns pins the identity fp16FromF32(fp16ToF32(h))
// == h for every one of the 65536 half patterns — the property that makes
// EncodingFP16 idempotent and the canonical-form check well defined.
func TestFP16RoundTripAllPatterns(t *testing.T) {
	for h := 0; h <= 0xffff; h++ {
		f := fp16ToF32(uint16(h))
		back := fp16FromF32(f)
		if back != uint16(h) {
			t.Fatalf("fp16 pattern %#04x → %v → %#04x", h, f, back)
		}
		if !fp16Representable(f) {
			t.Fatalf("fp16 pattern %#04x widens to %v which reports not representable", h, f)
		}
	}
}

// TestFP16FromF32Reference cross-checks the RNE narrowing against a
// float64-arithmetic reference on random and adversarial inputs.
func TestFP16FromF32Reference(t *testing.T) {
	cases := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5, 65504, -65504, 65505, 70000, 1e-8, 6e-8,
		5.960464477539063e-08,     // smallest fp16 subnormal
		2.980232238769531e-08,     // exactly half of it (tie → 0)
		2.9802326e-08,             // just above the tie
		6.103515625e-05,           // smallest fp16 normal
		float32(math.Inf(1)),      // +Inf
		float32(math.Inf(-1)),     // -Inf
		float32(math.NaN()),       // NaN
		1.0009765625,              // 1 + 2^-10 (exact)
		1.00048828125,             // 1 + 2^-11 (tie → even → 1.0)
		1.0004883,                 // just above the tie
		2049, 2051, 4100,          // integers losing bits
	}
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		cases = append(cases, r.NormFloat32()*float32(math.Pow(2, float64(i%40-20))))
	}
	for _, f := range cases {
		got := fp16ToF32(fp16FromF32(f))
		want := refFP16(f)
		if math.IsNaN(float64(want)) {
			if !math.IsNaN(float64(got)) {
				t.Fatalf("fp16(%v): got %v, want NaN", f, got)
			}
			continue
		}
		if got != want {
			t.Fatalf("fp16(%v): got %v (bits %#04x), want %v", f, got, fp16FromF32(f), want)
		}
	}
}

// refFP16 computes round-to-nearest-even fp16 quantization via float64
// arithmetic — slow but obviously correct.
func refFP16(f float32) float32 {
	d := float64(f)
	switch {
	case math.IsNaN(d):
		return float32(math.NaN())
	case math.Abs(d) > 65519: // past the 65504↔∞ rounding boundary (incl. ±Inf)
		if math.Signbit(d) {
			return float32(math.Inf(-1))
		}
		return float32(math.Inf(1))
	case d == 0:
		return f
	}
	// Scale into [1,2), round the mantissa to the available bits, scale back.
	exp := math.Floor(math.Log2(math.Abs(d)))
	if exp < -14 {
		exp = -14 // subnormal range: fixed scale
	}
	ulp := math.Pow(2, exp-10)
	q := math.RoundToEven(d/ulp) * ulp
	return float32(q)
}

func mkSamples(n, d int, seed uint64, quantized bool) []Sample {
	r := rng.New(seed)
	out := make([]Sample, n)
	for i := range out {
		fs := make([]float32, d)
		for j := range fs {
			fs[j] = r.NormFloat32()
		}
		if quantized {
			QuantizeFeaturesFP16(fs)
		}
		out[i] = Sample{ID: i*7 + 3, Label: i % 10, Features: fs, Bytes: 117 << 10}
	}
	return out
}

// TestEncFP32MatchesLegacy pins that EncodingFP32 emits the legacy v1 bytes
// bit for bit.
func TestEncFP32MatchesLegacy(t *testing.T) {
	samples := mkSamples(17, 16, 1, false)
	legacy := EncodeSampleBatch(samples)
	enc := AppendSampleBatchEnc(nil, samples, EncodingFP32)
	if !bytes.Equal(legacy, enc) {
		t.Fatalf("EncodingFP32 bytes differ from legacy encoding")
	}
	if got, want := SampleBatchWireSizeEnc(samples, EncodingFP32), len(legacy); got != want {
		t.Fatalf("SampleBatchWireSizeEnc(fp32) = %d, want %d", got, want)
	}
}

// TestEncFP16ExactRoundTrip: arbitrary (non-representable) features survive
// EncodingFP16Exact bit for bit via the per-sample fp32 fallback.
func TestEncFP16ExactRoundTrip(t *testing.T) {
	samples := mkSamples(23, 16, 2, false)
	samples[5].Features = nil // empty-feature sample must round trip too
	buf := AppendSampleBatchEnc(nil, samples, EncodingFP16Exact)
	if got, want := len(buf), SampleBatchWireSizeEnc(samples, EncodingFP16Exact); got != want {
		t.Fatalf("encoded %d bytes, SampleBatchWireSizeEnc says %d", got, want)
	}
	dec, err := DecodeSampleBatch(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(dec), len(samples))
	}
	for i := range dec {
		if dec[i].ID != samples[i].ID || dec[i].Label != samples[i].Label || dec[i].Bytes != samples[i].Bytes {
			t.Fatalf("sample %d header mismatch: %+v vs %+v", i, dec[i], samples[i])
		}
		if len(dec[i].Features) != len(samples[i].Features) {
			t.Fatalf("sample %d: %d features, want %d", i, len(dec[i].Features), len(samples[i].Features))
		}
		for j := range dec[i].Features {
			if math.Float32bits(dec[i].Features[j]) != math.Float32bits(samples[i].Features[j]) {
				t.Fatalf("sample %d feature %d: %v != %v (fp16exact must be bitwise lossless)",
					i, j, dec[i].Features[j], samples[i].Features[j])
			}
		}
	}
}

// TestEncFP16ExactCompactOnQuantizedData: pre-quantized features ship as
// fp16 entries, cutting the batch well below half of the v1 size, and still
// round trip bit for bit.
func TestEncFP16ExactCompactOnQuantizedData(t *testing.T) {
	samples := mkSamples(64, 16, 3, true)
	v1 := SampleBatchWireSize(samples)
	buf := AppendSampleBatchEnc(nil, samples, EncodingFP16Exact)
	if len(buf)*2 > v1 {
		t.Fatalf("fp16exact on quantized data: %d bytes vs v1 %d — expected >2x reduction", len(buf), v1)
	}
	dec, err := DecodeSampleBatch(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range dec {
		for j := range dec[i].Features {
			if math.Float32bits(dec[i].Features[j]) != math.Float32bits(samples[i].Features[j]) {
				t.Fatalf("sample %d feature %d not exact", i, j)
			}
		}
	}
}

// TestEncFP16Idempotent: lossy fp16 applied twice equals once — the
// property the dedup cache relies on for bitwise equivalence.
func TestEncFP16Idempotent(t *testing.T) {
	samples := mkSamples(8, 16, 4, false)
	once, err := DecodeSampleBatch(AppendSampleBatchEnc(nil, samples, EncodingFP16))
	if err != nil {
		t.Fatalf("first decode: %v", err)
	}
	twice, err := DecodeSampleBatch(AppendSampleBatchEnc(nil, once, EncodingFP16))
	if err != nil {
		t.Fatalf("second decode: %v", err)
	}
	for i := range twice {
		for j := range twice[i].Features {
			if math.Float32bits(twice[i].Features[j]) != math.Float32bits(once[i].Features[j]) {
				t.Fatalf("sample %d feature %d: fp16 not idempotent", i, j)
			}
		}
	}
}

// TestV2DecoderRejectsNonCanonical drives the strict decoder with invalid
// and non-canonical inputs.
func TestV2DecoderRejectsNonCanonical(t *testing.T) {
	quant := mkSamples(1, 4, 5, true)
	valid := AppendSampleBatchEnc(nil, quant, EncodingFP16Exact)
	cases := map[string][]byte{
		"truncated":    valid[:len(valid)-1],
		"trailing":     append(append([]byte{}, valid...), 0),
		"bad tag":      func() []byte { b := append([]byte{}, valid...); b[4] = 2; return b }(),
		"count exceeds": func() []byte {
			b := append([]byte{}, valid...)
			b[0], b[1] = 0xff, 0xff // huge count with bit31 still set in b[3]
			return b
		}(),
	}
	// Non-canonical fp32 entry: representable features shipped as fp32.
	fp32Entry := AppendSampleBatchEnc(nil, quant, EncodingFP32)
	_ = fp32Entry // v1 bytes are fine; build the v2 non-canonical form by hand:
	var b []byte
	b = appendU32(b, uint32(1)|batchV2Flag)
	b = append(b, entryFP32)
	b = appendUvarintBytes(b, uint64(quant[0].ID))
	b = appendUvarintBytes(b, uint64(quant[0].Label))
	b = appendUvarintBytes(b, uint64(quant[0].Bytes))
	b = appendUvarintBytes(b, uint64(len(quant[0].Features)))
	for _, f := range quant[0].Features {
		b = appendU32(b, math.Float32bits(f))
	}
	cases["non-canonical fp32 entry"] = b
	// Non-minimal varint: re-encode ID with a padded two-byte varint.
	nm := append([]byte{}, valid[:5]...)
	nm = append(nm, byte(quant[0].ID)|0x80, 0) // padded form of a small ID
	nm = append(nm, valid[6:]...)
	cases["non-minimal varint"] = nm

	for name, buf := range cases {
		if _, err := DecodeSampleBatch(buf); err == nil {
			t.Errorf("%s: decoder accepted invalid input", name)
		}
	}
	if _, err := DecodeSampleBatch(valid); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendUvarintBytes(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// TestParseEncoding covers the flag spellings.
func TestParseEncoding(t *testing.T) {
	for s, want := range map[string]Encoding{"": EncodingFP32, "fp32": EncodingFP32, "fp16": EncodingFP16, "fp16exact": EncodingFP16Exact} {
		got, err := ParseEncoding(s)
		if err != nil || got != want {
			t.Errorf("ParseEncoding(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEncoding("zstd"); err == nil {
		t.Errorf("ParseEncoding accepted unknown spelling")
	}
}
