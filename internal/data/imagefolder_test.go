package data

import (
	"os"
	"path/filepath"
	"testing"
)

func TestImageFolderRoundtrip(t *testing.T) {
	ds, err := Generate(SyntheticSpec{
		Name: "ifolder", NumSamples: 64, NumVal: 16, Classes: 4,
		FeatureDim: 8, ClassSep: 3, NoiseStd: 1, Bytes: 500, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "train_dir")
	if err := WriteImageFolder(dir, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImageFolder(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Train) != 64 || len(got.Val) != 16 {
		t.Fatalf("sizes: %d train %d val", len(got.Train), len(got.Val))
	}
	if got.Classes != 4 || got.FeatureDim != 8 || got.SampleBytes != 500 {
		t.Fatalf("metadata: %+v", got)
	}
	for i := range ds.Train {
		a, b := ds.Train[i], got.Train[i]
		if a.ID != b.ID || a.Label != b.Label || a.Bytes != b.Bytes {
			t.Fatalf("train sample %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Features {
			if a.Features[j] != b.Features[j] {
				t.Fatalf("train sample %d feature %d mismatch", i, j)
			}
		}
	}
	for i := range ds.Val {
		if ds.Val[i].ID != got.Val[i].ID {
			t.Fatalf("val sample %d mismatch", i)
		}
	}
}

func TestImageFolderLayout(t *testing.T) {
	ds, _ := Generate(SyntheticSpec{
		Name: "layout", NumSamples: 8, NumVal: 2, Classes: 2,
		FeatureDim: 4, ClassSep: 3, NoiseStd: 1, Bytes: 100, Seed: 1,
	})
	dir := filepath.Join(t.TempDir(), "d")
	if err := WriteImageFolder(dir, ds); err != nil {
		t.Fatal(err)
	}
	// The paper's layout: class_file manifest + one directory per class.
	if _, err := os.Stat(filepath.Join(dir, "class_file")); err != nil {
		t.Fatal("class_file missing")
	}
	for _, sub := range []string{"class0000", "class0001", "val"} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		if len(entries) == 0 {
			t.Fatalf("%s is empty", sub)
		}
	}
}

func TestImageFolderErrors(t *testing.T) {
	if err := WriteImageFolder(t.TempDir(), nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := LoadImageFolder(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing directory accepted")
	}
	// Corrupt a sample file: the loader must fail loudly.
	ds, _ := Generate(SyntheticSpec{
		Name: "bad", NumSamples: 8, NumVal: 0, Classes: 2,
		FeatureDim: 4, ClassSep: 3, NoiseStd: 1, Bytes: 100, Seed: 1,
	})
	dir := filepath.Join(t.TempDir(), "bad")
	if err := WriteImageFolder(dir, ds); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(filepath.Join(dir, "class0000"))
	if err := os.WriteFile(filepath.Join(dir, "class0000", entries[0].Name()), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadImageFolder(dir); err == nil {
		t.Fatal("corrupt sample accepted")
	}
}

func TestImageFolderLabelDirectoryMismatch(t *testing.T) {
	ds, _ := Generate(SyntheticSpec{
		Name: "mv", NumSamples: 8, NumVal: 0, Classes: 2,
		FeatureDim: 4, ClassSep: 3, NoiseStd: 1, Bytes: 100, Seed: 1,
	})
	dir := filepath.Join(t.TempDir(), "mv")
	if err := WriteImageFolder(dir, ds); err != nil {
		t.Fatal(err)
	}
	// Move a class-0 sample into class-1's directory.
	entries, _ := os.ReadDir(filepath.Join(dir, "class0000"))
	src := filepath.Join(dir, "class0000", entries[0].Name())
	dst := filepath.Join(dir, "class0001", "999999.sample")
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadImageFolder(dir); err == nil {
		t.Fatal("label/directory mismatch accepted")
	}
}
