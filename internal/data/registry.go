package data

import "fmt"

// DatasetInfo records Table I of the paper: the real dataset's metadata and
// the models trained on it, together with the scaled-down synthetic proxy
// used by this reproduction.
type DatasetInfo struct {
	Name       string
	Models     []string // proxy model names (see nn.ProxySpec)
	RealN      int64    // number of training samples in the real dataset
	RealBytes  int64    // total size of the real dataset
	Notes      string
	Proxy      SyntheticSpec
	Pretrained bool // the paper fine-tunes a pretrained model (Stanford Cars)
}

// BytesPerSample returns the real dataset's average sample size.
func (d DatasetInfo) BytesPerSample() int64 {
	if d.RealN == 0 {
		return 0
	}
	return d.RealBytes / d.RealN
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gib = int64(1) << 30
	tib = int64(1) << 40
)

// registry holds Table I. Proxy sizes keep a full accuracy experiment in
// the seconds range while preserving the class structure; the proxy Bytes
// field carries the *real* per-sample byte size so storage accounting and
// the performance model see paper-scale volumes.
var registry = map[string]DatasetInfo{
	"imagenet-1k": {
		Name:      "ImageNet-1K",
		Models:    []string{"resnet50", "densenet161"},
		RealN:     1_281_167,
		RealBytes: 140 * gib,
		Notes:     "1000 classes; the paper's primary accuracy benchmark",
		Proxy: SyntheticSpec{
			Name: "imagenet-1k-proxy", NumSamples: 8192, NumVal: 2048,
			Classes: 32, FeatureDim: 48, ClassSep: 4, NoiseStd: 1.2,
			Bytes: 117 * kib, Seed: 1001,
		},
	},
	"imagenet-50": {
		Name:      "ImageNet-50",
		Models:    []string{"resnet50"},
		RealN:     65_000,
		RealBytes: 2 * gib,
		Notes:     "50-class subset; the paper's most shuffle-sensitive dataset",
		Proxy: SyntheticSpec{
			Name: "imagenet-50-proxy", NumSamples: 4096, NumVal: 1024,
			Classes: 64, FeatureDim: 48, ClassSep: 4, NoiseStd: 1.4,
			Bytes: 32 * kib, Seed: 1002,
		},
	},
	"imagenet-21k": {
		Name:      "ImageNet-21K",
		Models:    []string{"resnet50"},
		RealN:     9_300_000,
		RealBytes: 1126 * gib, // ~1.1 TiB
		Notes:     "pretraining corpus (classes with >=500 samples kept, per Ridnik et al.)",
		Proxy: SyntheticSpec{
			Name: "imagenet-21k-proxy", NumSamples: 12288, NumVal: 2048,
			Classes: 48, FeatureDim: 48, ClassSep: 3.5, NoiseStd: 1.3,
			Bytes: 118 * kib, Seed: 1003,
		},
	},
	"cifar-100": {
		Name:      "CIFAR-100",
		Models:    []string{"wideresnet28", "inceptionv4"},
		RealN:     50_000,
		RealBytes: 160 * mib,
		Notes:     "100 classes of 500 samples",
		Proxy: SyntheticSpec{
			Name: "cifar-100-proxy", NumSamples: 6144, NumVal: 1536,
			Classes: 40, FeatureDim: 40, ClassSep: 4, NoiseStd: 1.3,
			Bytes: 3 * kib, Seed: 1004,
		},
	},
	"stanford-cars": {
		Name:       "Stanford Cars",
		Models:     []string{"resnet50"},
		RealN:      8_144,
		RealBytes:  934 * mib,
		Notes:      "fine-grained; the paper fine-tunes a pretrained ResNet50",
		Pretrained: true,
		Proxy: SyntheticSpec{
			Name: "stanford-cars-proxy", NumSamples: 2048, NumVal: 512,
			Classes: 16, FeatureDim: 40, ClassSep: 5, NoiseStd: 1.1,
			Bytes: 115 * kib, Seed: 1005,
		},
	},
	"deepcam": {
		Name:      "DeepCAM",
		Models:    []string{"deepcam"},
		RealN:     121_266,
		RealBytes: 8396 * gib, // ~8.2 TiB
		Notes:     "climate segmentation; does not fit node-local storage, so the paper has no GS baseline",
		Proxy: SyntheticSpec{
			Name: "deepcam-proxy", NumSamples: 4096, NumVal: 1024,
			Classes: 3, FeatureDim: 40, ClassSep: 2.2, NoiseStd: 1.5,
			Bytes: 70 * mib, Seed: 1006,
		},
	},
}

// Info returns the registry entry for a dataset key ("imagenet-1k",
// "imagenet-50", "imagenet-21k", "cifar-100", "stanford-cars", "deepcam").
func Info(key string) (DatasetInfo, error) {
	d, ok := registry[key]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("data: unknown dataset %q (known: %v)", key, DatasetKeys())
	}
	return d, nil
}

// DatasetKeys lists the registry keys in Table I order.
func DatasetKeys() []string {
	return []string{"imagenet-1k", "imagenet-50", "cifar-100", "stanford-cars", "imagenet-21k", "deepcam"}
}

// LoadProxy generates the synthetic proxy dataset for a registry key.
func LoadProxy(key string) (*Dataset, error) {
	info, err := Info(key)
	if err != nil {
		return nil, err
	}
	return Generate(info.Proxy)
}
