package data

import (
	"bytes"
	"testing"
)

// FuzzDecodeSample hardens the wire format against malformed exchange
// payloads: decoding must never panic, and any buffer it accepts must
// round-trip back to identical bytes.
func FuzzDecodeSample(f *testing.F) {
	f.Add(Sample{ID: 1, Label: 2, Features: []float32{1, 2, 3}, Bytes: 99}.Encode())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, 28))
	f.Fuzz(func(t *testing.T, buf []byte) {
		s, err := DecodeSample(buf)
		if err != nil {
			return
		}
		if !bytes.Equal(s.Encode(), buf) {
			t.Fatalf("accepted buffer does not round-trip (%d bytes)", len(buf))
		}
	})
}

// FuzzDecodeSampleBatch hardens the coalesced-frame format the exchange
// scheduler ships: malformed batches must never panic, and any buffer the
// decoder accepts must re-marshal byte-identically — through
// EncodeSampleBatch for v1 input, through the canonical EncodingFP16Exact
// encoder for v2 input (bit 31 of the count word). Both decoders are
// strictly canonical, which is what makes the wire accounting in
// WireTraffic exact.
func FuzzDecodeSampleBatch(f *testing.F) {
	f.Add(EncodeSampleBatch(nil))
	f.Add(EncodeSampleBatch([]Sample{{ID: 7, Label: 1, Features: []float32{0.5}, Bytes: 10}}))
	f.Add(EncodeSampleBatch([]Sample{
		{ID: 1, Label: 0, Features: []float32{1, 2}, Bytes: 4},
		{ID: 2, Label: 3, Features: nil, Bytes: 0},
		{ID: 3, Label: 1, Features: []float32{-1}, Bytes: 8},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})          // hostile count
	f.Add([]byte{1, 0, 0, 0})                      // count 1, no sample bytes
	f.Add(append([]byte{2, 0, 0, 0}, make([]byte, 28)...)) // count 2, one header
	// v2 seeds: compact fp16 entries, mixed fp32 fallback, empty batch.
	f.Add(AppendSampleBatchEnc(nil, nil, EncodingFP16))
	f.Add(AppendSampleBatchEnc(nil, []Sample{{ID: 7, Label: 1, Features: []float32{0.5}, Bytes: 10}}, EncodingFP16))
	f.Add(AppendSampleBatchEnc(nil, []Sample{
		{ID: 1, Label: 0, Features: []float32{0.25, -2}, Bytes: 4},
		{ID: 2, Label: 3, Features: nil, Bytes: 0},
		{ID: 3, Label: 1, Features: []float32{1e-30}, Bytes: 8}, // not fp16-representable → fp32 entry
	}, EncodingFP16Exact))
	f.Fuzz(func(t *testing.T, buf []byte) {
		samples, err := DecodeSampleBatch(buf)
		if err != nil {
			return
		}
		enc := EncodingFP32
		if len(buf) >= 4 && buf[3]&0x80 != 0 {
			enc = EncodingFP16Exact
		}
		if !bytes.Equal(AppendSampleBatchEnc(nil, samples, enc), buf) {
			t.Fatalf("accepted batch of %d samples does not re-marshal identically (%d bytes)", len(samples), len(buf))
		}
		if got := SampleBatchWireSizeEnc(samples, enc); got != len(buf) {
			t.Fatalf("SampleBatchWireSizeEnc %d != accepted buffer length %d", got, len(buf))
		}
		// The append-into variant must agree with the allocating one and
		// leave the destination prefix untouched.
		prefix := []Sample{{ID: -1}}
		out, err := DecodeSampleBatchInto(prefix, buf)
		if err != nil {
			t.Fatalf("DecodeSampleBatchInto rejected a buffer DecodeSampleBatch accepted: %v", err)
		}
		if len(out) != 1+len(samples) || out[0].ID != -1 {
			t.Fatalf("DecodeSampleBatchInto mangled the destination prefix")
		}
		for i, s := range samples {
			if !bytes.Equal(out[i+1].Encode(), s.Encode()) {
				t.Fatalf("sample %d differs between decode variants", i)
			}
		}
	})
}
