package data

import (
	"bytes"
	"testing"
)

// FuzzDecodeSample hardens the wire format against malformed exchange
// payloads: decoding must never panic, and any buffer it accepts must
// round-trip back to identical bytes.
func FuzzDecodeSample(f *testing.F) {
	f.Add(Sample{ID: 1, Label: 2, Features: []float32{1, 2, 3}, Bytes: 99}.Encode())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, 28))
	f.Fuzz(func(t *testing.T, buf []byte) {
		s, err := DecodeSample(buf)
		if err != nil {
			return
		}
		if !bytes.Equal(s.Encode(), buf) {
			t.Fatalf("accepted buffer does not round-trip (%d bytes)", len(buf))
		}
	})
}
