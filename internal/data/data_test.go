package data

import (
	"math"
	"testing"
	"testing/quick"

	"plshuffle/internal/rng"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	s := Sample{ID: 42, Label: 7, Features: []float32{1.5, -2.25, 0, 3e7}, Bytes: 117 << 10}
	got, err := DecodeSample(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != s.ID || got.Label != s.Label || got.Bytes != s.Bytes {
		t.Fatalf("roundtrip metadata mismatch: %+v", got)
	}
	for i := range s.Features {
		if got.Features[i] != s.Features[i] {
			t.Fatalf("feature %d: %v != %v", i, got.Features[i], s.Features[i])
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	check := func(id, label int32, bytes int64, feats []float32) bool {
		s := Sample{ID: int(id), Label: int(label), Features: feats, Bytes: bytes}
		got, err := DecodeSample(s.Encode())
		if err != nil {
			return false
		}
		if got.ID != s.ID || got.Label != s.Label || got.Bytes != s.Bytes || len(got.Features) != len(s.Features) {
			return false
		}
		for i := range feats {
			// Compare bit patterns so NaN features round-trip too.
			if math.Float32bits(got.Features[i]) != math.Float32bits(feats[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeSample([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	s := Sample{ID: 1, Features: []float32{1, 2}}
	buf := s.Encode()
	if _, err := DecodeSample(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := Sample{ID: 1, Features: []float32{1, 2}}
	c := s.Clone()
	c.Features[0] = 99
	if s.Features[0] != 1 {
		t.Fatal("Clone shares feature storage")
	}
}

func TestGenerateShapeAndBalance(t *testing.T) {
	sp := SyntheticSpec{Name: "t", NumSamples: 1000, NumVal: 200, Classes: 10,
		FeatureDim: 16, ClassSep: 3, NoiseStd: 1, Bytes: 100, Seed: 1}
	d, err := Generate(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Train) != 1000 || len(d.Val) != 200 {
		t.Fatalf("sizes: %d train, %d val", len(d.Train), len(d.Val))
	}
	counts := make([]int, 10)
	for i, s := range d.Train {
		if s.ID != i {
			t.Fatalf("train ID %d at index %d", s.ID, i)
		}
		if len(s.Features) != 16 {
			t.Fatalf("feature dim %d", len(s.Features))
		}
		if s.Bytes != 100 {
			t.Fatalf("bytes %d", s.Bytes)
		}
		counts[s.Label]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100 (balanced)", c, n)
		}
	}
	if d.TotalBytes() != 100_000 {
		t.Fatalf("TotalBytes = %d", d.TotalBytes())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sp := SyntheticSpec{Name: "t", NumSamples: 64, NumVal: 8, Classes: 4,
		FeatureDim: 8, ClassSep: 3, NoiseStd: 1, Seed: 7}
	a, _ := Generate(sp)
	b, _ := Generate(sp)
	for i := range a.Train {
		for j := range a.Train[i].Features {
			if a.Train[i].Features[j] != b.Train[i].Features[j] {
				t.Fatal("generation is not deterministic")
			}
		}
	}
}

func TestGenerateClassesAreSeparated(t *testing.T) {
	// With high separation and low noise, a nearest-class-mean classifier
	// should get almost everything right; this guards against a generator
	// that produces unlearnable data.
	sp := SyntheticSpec{Name: "t", NumSamples: 500, NumVal: 0, Classes: 5,
		FeatureDim: 16, ClassSep: 8, NoiseStd: 0.5, Seed: 3}
	d, _ := Generate(sp)
	// Estimate class means from the data itself.
	means := make([][]float64, 5)
	counts := make([]int, 5)
	for c := range means {
		means[c] = make([]float64, 16)
	}
	for _, s := range d.Train {
		counts[s.Label]++
		for j, f := range s.Features {
			means[s.Label][j] += float64(f)
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for _, s := range d.Train {
		best, bestC := math.Inf(1), -1
		for c := range means {
			var dist float64
			for j, f := range s.Features {
				df := float64(f) - means[c][j]
				dist += df * df
			}
			if dist < best {
				best, bestC = dist, c
			}
		}
		if bestC == s.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(d.Train)); acc < 0.95 {
		t.Fatalf("nearest-mean accuracy %v, want >= 0.95", acc)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []SyntheticSpec{
		{Name: "n0", NumSamples: 0, Classes: 2, FeatureDim: 1},
		{Name: "c1", NumSamples: 10, Classes: 1, FeatureDim: 1},
		{Name: "d0", NumSamples: 10, Classes: 2, FeatureDim: 0},
		{Name: "vneg", NumSamples: 10, NumVal: -1, Classes: 2, FeatureDim: 1},
	}
	for _, sp := range bad {
		if _, err := Generate(sp); err == nil {
			t.Errorf("spec %q accepted", sp.Name)
		}
	}
}

func TestRegistryTable1(t *testing.T) {
	keys := DatasetKeys()
	if len(keys) != 6 {
		t.Fatalf("Table I has 6 datasets, registry lists %d", len(keys))
	}
	for _, k := range keys {
		info, err := Info(k)
		if err != nil {
			t.Fatalf("Info(%q): %v", k, err)
		}
		if info.RealN <= 0 || info.RealBytes <= 0 {
			t.Errorf("%s: real metadata missing", k)
		}
		if err := info.Proxy.Validate(); err != nil {
			t.Errorf("%s proxy invalid: %v", k, err)
		}
		if len(info.Models) == 0 {
			t.Errorf("%s: no models", k)
		}
	}
	if _, err := Info("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRegistryPaperNumbers(t *testing.T) {
	// Spot-check against Table I and Section III-B's worked example:
	// ImageNet-21K at 512 workers with Q=0.1 exchanges ~225 MiB per worker.
	in21k, _ := Info("imagenet-21k")
	perWorker := float64(in21k.RealBytes) / 512
	exch := 0.1 * perWorker
	if exch < 200*float64(mib) || exch > 250*float64(mib) {
		t.Fatalf("ImageNet-21K Q=0.1 exchange per worker = %.0f MiB, paper says ~225 MiB", exch/float64(mib))
	}
	dc, _ := Info("deepcam")
	if dc.BytesPerSample() < 60*mib || dc.BytesPerSample() > 80*mib {
		t.Fatalf("DeepCAM bytes/sample = %d MiB, want ~70 MiB", dc.BytesPerSample()/mib)
	}
	in1k, _ := Info("imagenet-1k")
	if in1k.BytesPerSample() < 100*kib || in1k.BytesPerSample() > 130*kib {
		t.Fatalf("ImageNet-1K bytes/sample = %d KiB, want ~117 KiB", in1k.BytesPerSample()/kib)
	}
}

func TestLoadProxy(t *testing.T) {
	d, err := LoadProxy("cifar-100")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Train) == 0 || len(d.Val) == 0 {
		t.Fatal("proxy dataset empty")
	}
	if _, err := LoadProxy("nope"); err == nil {
		t.Fatal("unknown proxy accepted")
	}
}

func TestValIDsDisjointFromTrain(t *testing.T) {
	d, err := LoadProxy("stanford-cars")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range d.Train {
		seen[s.ID] = true
	}
	for _, s := range d.Val {
		if seen[s.ID] {
			t.Fatalf("validation sample ID %d collides with training set", s.ID)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	r := rng.New(1)
	s := Sample{ID: 1, Label: 2, Features: make([]float32, 64), Bytes: 117 << 10}
	for i := range s.Features {
		s.Features[i] = r.NormFloat32()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Encode()
	}
}

func BenchmarkGenerate(b *testing.B) {
	sp := SyntheticSpec{Name: "b", NumSamples: 4096, NumVal: 512, Classes: 32,
		FeatureDim: 64, ClassSep: 4, NoiseStd: 1.2, Seed: 9}
	for i := 0; i < b.N; i++ {
		if _, err := Generate(sp); err != nil {
			b.Fatal(err)
		}
	}
}
