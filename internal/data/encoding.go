// Compact sample-batch encoding (v2): an optional wire format that halves
// feature bytes by shipping them as IEEE 754 half precision (fp16) and
// shrinks the fixed per-sample header with varints.
//
// A v2 batch is flagged by bit 31 of the uint32 count word — the legacy
// (v1) encoder bounds counts at maxBatchCount (1<<24), so the bit is never
// set by old senders and DecodeSampleBatchInto can dispatch on it. Each v2
// entry is a tag byte (entryFP32 or entryFP16), four minimal uvarints (ID,
// Label, Bytes, feature count), then the features: 4-byte fp32 words for
// entryFP32, 2-byte fp16 halves for entryFP16.
//
// Three encoder modes (Encoding):
//
//   - EncodingFP32 emits the legacy v1 bytes, bit for bit — zero adoption
//     risk, no savings.
//   - EncodingFP16 always quantizes (round-to-nearest-even). Lossy, but
//     idempotent: a value that already round-trips through fp16 is
//     unchanged, so re-sending a previously quantized sample is exact.
//   - EncodingFP16Exact quantizes a sample only when every one of its
//     features survives the fp16 round trip bit for bit, and falls back to
//     entryFP32 otherwise — compact where possible, lossless always.
//
// The v2 decoder is strictly canonical: non-minimal varints, unknown tags,
// and entryFP32 entries whose features were all fp16-representable (the
// EncodingFP16Exact encoder would have emitted entryFP16) are rejected.
// Canonicality makes decode→re-encode the identity on valid v2 input,
// which is the round-trip property the fuzz targets pin.
package data

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding selects the on-wire feature representation of a sample batch.
type Encoding uint8

const (
	// EncodingFP32 is the legacy v1 format: fixed 28-byte headers and
	// full-precision features. The default.
	EncodingFP32 Encoding = iota
	// EncodingFP16 is the v2 format with every feature quantized to half
	// precision (lossy, idempotent).
	EncodingFP16
	// EncodingFP16Exact is the v2 format with per-sample fallback to fp32:
	// bitwise lossless for arbitrary data, compact for fp16-representable
	// data.
	EncodingFP16Exact
)

// ParseEncoding maps the flag spellings ("fp32", "fp16", "fp16exact") to an
// Encoding.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "", "fp32":
		return EncodingFP32, nil
	case "fp16":
		return EncodingFP16, nil
	case "fp16exact":
		return EncodingFP16Exact, nil
	}
	return EncodingFP32, fmt.Errorf("data: unknown sample encoding %q (want fp32, fp16, or fp16exact)", s)
}

func (e Encoding) String() string {
	switch e {
	case EncodingFP32:
		return "fp32"
	case EncodingFP16:
		return "fp16"
	case EncodingFP16Exact:
		return "fp16exact"
	}
	return fmt.Sprintf("encoding(%d)", uint8(e))
}

// batchV2Flag marks the count word of a v2 batch.
const batchV2Flag = uint32(1) << 31

// v2 entry tags: the feature representation of one sample.
const (
	entryFP32 = byte(0)
	entryFP16 = byte(1)
)

// fp16Representable reports whether f survives an fp16 round trip bit for
// bit. NaNs and values beyond fp16 range do not (quantizing would change
// their bits), so EncodingFP16Exact keeps them in fp32.
func fp16Representable(f float32) bool {
	return math.Float32bits(fp16ToF32(fp16FromF32(f))) == math.Float32bits(f)
}

func featuresFP16Representable(fs []float32) bool {
	for _, f := range fs {
		if !fp16Representable(f) {
			return false
		}
	}
	return true
}

// QuantizeFeaturesFP16 rounds every feature to its nearest fp16 value in
// place (round-to-nearest-even). Datasets pre-conditioned this way ship
// every sample compact under EncodingFP16Exact while keeping that mode's
// bitwise-exactness guarantee.
func QuantizeFeaturesFP16(fs []float32) {
	for i, f := range fs {
		fs[i] = fp16ToF32(fp16FromF32(f))
	}
}

// entryTag returns the v2 tag the encoder picks for s under enc.
func entryTag(s Sample, enc Encoding) byte {
	if enc == EncodingFP16 || featuresFP16Representable(s.Features) {
		return entryFP16
	}
	return entryFP32
}

// AppendSampleBatchEnc appends the batch encoding of samples under enc to
// dst — AppendSampleBatch generalized over the wire format. EncodingFP32
// produces the legacy v1 bytes exactly.
func AppendSampleBatchEnc(dst []byte, samples []Sample, enc Encoding) []byte {
	if enc == EncodingFP32 {
		return AppendSampleBatch(dst, samples)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(samples))|batchV2Flag)
	for _, s := range samples {
		tag := entryTag(s, enc)
		dst = append(dst, tag)
		dst = binary.AppendUvarint(dst, uint64(s.ID))
		dst = binary.AppendUvarint(dst, uint64(s.Label))
		dst = binary.AppendUvarint(dst, uint64(s.Bytes))
		dst = binary.AppendUvarint(dst, uint64(len(s.Features)))
		if tag == entryFP16 {
			for _, f := range s.Features {
				dst = binary.LittleEndian.AppendUint16(dst, fp16FromF32(f))
			}
		} else {
			for _, f := range s.Features {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
			}
		}
	}
	return dst
}

// SampleBatchWireSizeEnc returns the exact encoded size of the batch under
// enc, without allocating — SampleBatchWireSize generalized over the wire
// format. The exchange scheduler's dedup accounting uses it to price
// hypothetical (unsent) batches.
func SampleBatchWireSizeEnc(samples []Sample, enc Encoding) int {
	if enc == EncodingFP32 {
		return SampleBatchWireSize(samples)
	}
	n := 4
	for _, s := range samples {
		n += 1 + uvarintLen(uint64(s.ID)) + uvarintLen(uint64(s.Label)) +
			uvarintLen(uint64(s.Bytes)) + uvarintLen(uint64(len(s.Features)))
		if entryTag(s, enc) == entryFP16 {
			n += 2 * len(s.Features)
		} else {
			n += 4 * len(s.Features)
		}
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readUvarint decodes a minimally-encoded uvarint at buf[off], rejecting
// the padded forms binary.Uvarint accepts — canonicality is what makes the
// v2 decode→re-encode round trip exact.
func readUvarint(buf []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("data: truncated or overlong varint")
	}
	if n > 1 && buf[off+n-1] == 0 {
		return 0, 0, fmt.Errorf("data: non-minimal varint")
	}
	return v, off + n, nil
}

// decodeSampleBatchV2 parses a v2 batch (count word bit 31 set), enforcing
// canonical form. Dispatch lives in DecodeSampleBatchInto.
func decodeSampleBatchV2(dst []Sample, buf []byte) ([]Sample, error) {
	count := binary.LittleEndian.Uint32(buf) &^ batchV2Flag
	if count > maxBatchCount {
		return dst, fmt.Errorf("data: DecodeSampleBatch: v2 count %d out of range", count)
	}
	// Each entry needs at least a tag byte and four one-byte varints.
	if int(count)*5 > len(buf)-4 {
		return dst, fmt.Errorf("data: DecodeSampleBatch: v2 count %d exceeds %d payload bytes", count, len(buf)-4)
	}
	off := 4
	for i := uint32(0); i < count; i++ {
		var s Sample
		var err error
		if off >= len(buf) {
			return dst, fmt.Errorf("data: DecodeSampleBatch: sample %d: truncated entry", i)
		}
		tag := buf[off]
		off++
		if tag != entryFP32 && tag != entryFP16 {
			return dst, fmt.Errorf("data: DecodeSampleBatch: sample %d: unknown entry tag %d", i, tag)
		}
		var id, label, bytes, nfeat uint64
		if id, off, err = readUvarint(buf, off); err == nil {
			if label, off, err = readUvarint(buf, off); err == nil {
				if bytes, off, err = readUvarint(buf, off); err == nil {
					nfeat, off, err = readUvarint(buf, off)
				}
			}
		}
		if err != nil {
			return dst, fmt.Errorf("data: DecodeSampleBatch: sample %d: %w", i, err)
		}
		s.ID = int(id)
		s.Label = int(label)
		s.Bytes = int64(bytes)
		width := 4
		if tag == entryFP16 {
			width = 2
		}
		if nfeat > uint64((len(buf)-off)/width) {
			return dst, fmt.Errorf("data: DecodeSampleBatch: sample %d: %d features exceed %d remaining bytes", i, nfeat, len(buf)-off)
		}
		s.Features = make([]float32, nfeat)
		if tag == entryFP16 {
			for j := range s.Features {
				s.Features[j] = fp16ToF32(binary.LittleEndian.Uint16(buf[off:]))
				off += 2
			}
		} else {
			for j := range s.Features {
				s.Features[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
			}
			if featuresFP16Representable(s.Features) {
				return dst, fmt.Errorf("data: DecodeSampleBatch: sample %d: non-canonical fp32 entry (features are fp16-representable)", i)
			}
		}
		dst = append(dst, s)
	}
	if off != len(buf) {
		return dst, fmt.Errorf("data: DecodeSampleBatch: %d trailing bytes after %d samples", len(buf)-off, count)
	}
	return dst, nil
}

// --- half-precision conversion (hand-written; the repo takes no deps) ---

// fp16ToF32 widens an IEEE 754 binary16 value. Every one of the 65536 half
// patterns maps to a distinct, exactly-representable float32 — including
// subnormals, infinities, and NaNs (payload preserved in the top mantissa
// bits) — so fp16FromF32 inverts it bit for bit (pinned by an exhaustive
// test).
func fp16ToF32(h uint16) float32 {
	sign := uint32(h>>15) << 31
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalize into the f32 exponent range.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (man&0x3ff)<<13)
	case exp == 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | man<<13) // ±Inf / NaN
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// fp16FromF32 narrows a float32 to binary16 with round-to-nearest-even.
// Overflow rounds to the like-signed infinity; NaN payloads keep their top
// 10 mantissa bits (quieted if that truncation would read as infinity).
func fp16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	e := int32(b>>23&0xff) - 127 + 15
	man := b & 0x7fffff
	if b>>23&0xff == 0xff {
		if man == 0 {
			return sign | 0x7c00 // ±Inf
		}
		m := uint16(man >> 13)
		if m == 0 {
			m = 0x200 // payload vanished; force a quiet NaN
		}
		return sign | 0x7c00 | m
	}
	if e >= 0x1f {
		return sign | 0x7c00 // overflow → ±Inf
	}
	if e <= 0 {
		if e < -10 {
			return sign // underflows past the smallest subnormal → ±0
		}
		// Subnormal result: shift the 24-bit significand down, RNE.
		man |= 0x800000
		shift := uint32(14 - e)
		m := man >> shift
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return sign | uint16(m) // m may carry into the exponent; that is correct
	}
	m := man >> 13
	rem := man & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
		m++
	}
	return sign | (uint16(e)<<10 + uint16(m)) // mantissa carry rolls the exponent
}
