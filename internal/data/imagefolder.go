package data

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file implements the on-disk dataset layout of the paper's tool:
// PLS.ImageFolder(train_dir, class_file, transformations) in Figure 3 —
// one directory per class, one file per sample, plus a class_file listing
// the class names. WriteImageFolder materializes a synthetic dataset in
// that layout and LoadImageFolder reads it back, so integration tests and
// examples can exercise the real filesystem path end to end.

// classFileName is the manifest the loader consumes (the paper's
// "class_file" argument).
const classFileName = "class_file"

// WriteImageFolder writes the dataset's training samples under dir in the
// ImageFolder layout:
//
//	dir/class_file            one class name per line, in label order
//	dir/<class>/<id>.sample   encoded samples
//	dir/val/<id>.sample       validation samples (flat)
func WriteImageFolder(dir string, d *Dataset) error {
	if d == nil || len(d.Train) == 0 {
		return fmt.Errorf("data: WriteImageFolder: empty dataset")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("data: WriteImageFolder: %w", err)
	}
	manifest, err := os.Create(filepath.Join(dir, classFileName))
	if err != nil {
		return fmt.Errorf("data: WriteImageFolder: %w", err)
	}
	w := bufio.NewWriter(manifest)
	for c := 0; c < d.Classes; c++ {
		fmt.Fprintf(w, "class%04d\n", c)
	}
	if err := w.Flush(); err != nil {
		manifest.Close()
		return fmt.Errorf("data: WriteImageFolder: %w", err)
	}
	if err := manifest.Close(); err != nil {
		return fmt.Errorf("data: WriteImageFolder: %w", err)
	}
	write := func(sub string, s Sample) error {
		p := filepath.Join(dir, sub)
		if err := os.MkdirAll(p, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(p, strconv.Itoa(s.ID)+".sample"), s.Encode(), 0o644)
	}
	for _, s := range d.Train {
		if err := write(fmt.Sprintf("class%04d", s.Label), s); err != nil {
			return fmt.Errorf("data: WriteImageFolder: %w", err)
		}
	}
	for _, s := range d.Val {
		if err := write("val", s); err != nil {
			return fmt.Errorf("data: WriteImageFolder: %w", err)
		}
	}
	return nil
}

// LoadImageFolder reads a dataset written by WriteImageFolder. Training
// samples come back sorted by ID; labels are re-derived from the class
// directories and verified against the encoded samples.
func LoadImageFolder(dir string) (*Dataset, error) {
	manifest, err := os.Open(filepath.Join(dir, classFileName))
	if err != nil {
		return nil, fmt.Errorf("data: LoadImageFolder: missing class_file: %w", err)
	}
	defer manifest.Close()
	var classes []string
	sc := bufio.NewScanner(manifest)
	for sc.Scan() {
		name := strings.TrimSpace(sc.Text())
		if name != "" {
			classes = append(classes, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: LoadImageFolder: %w", err)
	}
	if len(classes) < 2 {
		return nil, fmt.Errorf("data: LoadImageFolder: class_file lists %d classes", len(classes))
	}

	d := &Dataset{Name: filepath.Base(dir), Classes: len(classes)}
	readDir := func(sub string, wantLabel int) ([]Sample, error) {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil
			}
			return nil, err
		}
		var out []Sample
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".sample") {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, sub, e.Name()))
			if err != nil {
				return nil, err
			}
			s, err := DecodeSample(raw)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sub, e.Name(), err)
			}
			if wantLabel >= 0 && s.Label != wantLabel {
				return nil, fmt.Errorf("%s/%s: encoded label %d does not match directory class %d", sub, e.Name(), s.Label, wantLabel)
			}
			out = append(out, s)
		}
		return out, nil
	}
	for c, name := range classes {
		ss, err := readDir(name, c)
		if err != nil {
			return nil, fmt.Errorf("data: LoadImageFolder: %w", err)
		}
		d.Train = append(d.Train, ss...)
	}
	if len(d.Train) == 0 {
		return nil, fmt.Errorf("data: LoadImageFolder: no training samples under %s", dir)
	}
	sort.Slice(d.Train, func(i, j int) bool { return d.Train[i].ID < d.Train[j].ID })
	val, err := readDir("val", -1)
	if err != nil {
		return nil, fmt.Errorf("data: LoadImageFolder: %w", err)
	}
	sort.Slice(val, func(i, j int) bool { return val[i].ID < val[j].ID })
	d.Val = val
	d.FeatureDim = len(d.Train[0].Features)
	d.SampleBytes = d.Train[0].Bytes
	for _, s := range d.Train {
		if len(s.Features) != d.FeatureDim {
			return nil, fmt.Errorf("data: LoadImageFolder: inconsistent feature dimension (%d vs %d)", len(s.Features), d.FeatureDim)
		}
	}
	return d, nil
}
