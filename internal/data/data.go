// Package data provides the dataset substrate: samples, synthetic
// Gaussian-mixture classification datasets standing in for the paper's
// image datasets, and a registry carrying Table I's real metadata together
// with scaled-down proxy specifications.
//
// The paper's datasets (ImageNet-1K/-21K/-50, CIFAR-100, Stanford Cars,
// DeepCAM) cannot be redistributed or trained here; what the shuffling
// study actually depends on is the number of samples N, the number of
// classes C, the samples-per-worker ratio N/M, and the per-sample byte
// size. The synthetic generator preserves those quantities (at reduced
// scale for N) while producing a genuinely learnable classification task.
package data

import (
	"encoding/binary"
	"fmt"
	"math"

	"plshuffle/internal/rng"
)

// Sample is one training example. Features/Label drive the actual SGD
// training; Bytes is the simulated on-disk size used for storage accounting
// and the performance model (e.g. ~117 KiB for an ImageNet JPEG, ~70 MiB
// for a DeepCAM HDF5 sample).
type Sample struct {
	ID       int
	Label    int
	Features []float32
	Bytes    int64
}

// Clone returns a deep copy of the sample.
func (s Sample) Clone() Sample {
	f := make([]float32, len(s.Features))
	copy(f, s.Features)
	return Sample{ID: s.ID, Label: s.Label, Features: f, Bytes: s.Bytes}
}

// sampleHeaderLen is the fixed part of one encoded sample: ID, Label,
// Bytes (8 bytes each) plus the feature count (4 bytes).
const sampleHeaderLen = 8 + 8 + 8 + 4

// WireSize returns the exact number of bytes Encode/AppendEncode produce
// for this sample, without allocating.
func (s Sample) WireSize() int { return sampleHeaderLen + 4*len(s.Features) }

// AppendEncode appends the sample's wire encoding to dst and returns the
// extended slice — the allocation-free form of Encode for callers that
// reuse a scratch buffer across samples (e.g. the exchange scheduler's
// batched frames).
func (s Sample) AppendEncode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.ID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Label))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Bytes))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Features)))
	for _, f := range s.Features {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
	}
	return dst
}

// Encode serializes the sample to bytes (the wire format used when workers
// exchange samples through the message-passing runtime).
func (s Sample) Encode() []byte {
	return s.AppendEncode(make([]byte, 0, s.WireSize()))
}

// decodeSampleAt parses one encoded sample starting at buf[off] and returns
// it together with the offset just past its encoding.
func decodeSampleAt(buf []byte, off int) (Sample, int, error) {
	if len(buf)-off < sampleHeaderLen {
		return Sample{}, 0, fmt.Errorf("data: DecodeSample: buffer too short (%d bytes)", len(buf)-off)
	}
	var s Sample
	s.ID = int(int64(binary.LittleEndian.Uint64(buf[off:])))
	off += 8
	s.Label = int(int64(binary.LittleEndian.Uint64(buf[off:])))
	off += 8
	s.Bytes = int64(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if n < 0 || n > (len(buf)-off)/4 {
		return Sample{}, 0, fmt.Errorf("data: DecodeSample: %d features exceed %d remaining bytes", n, len(buf)-off)
	}
	s.Features = make([]float32, n)
	for i := range s.Features {
		s.Features[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return s, off, nil
}

// DecodeSample parses the wire format produced by Encode.
func DecodeSample(buf []byte) (Sample, error) {
	s, off, err := decodeSampleAt(buf, 0)
	if err != nil {
		return Sample{}, err
	}
	if off != len(buf) {
		return Sample{}, fmt.Errorf("data: DecodeSample: %d trailing bytes after sample", len(buf)-off)
	}
	return s, nil
}

// SampleBatchWireSize returns the exact encoded size of a batch of samples
// (count prefix plus each sample's encoding), without allocating. Exchange
// byte accounting uses it to size coalesced frames ahead of encoding.
func SampleBatchWireSize(samples []Sample) int {
	n := 4
	for _, s := range samples {
		n += s.WireSize()
	}
	return n
}

// AppendSampleBatch appends the batch wire encoding of samples to dst:
// a uint32 sample count followed by each sample's Encode bytes. Batching
// many samples into one frame is what lets the exchange scheduler send one
// message per (chunk, destination) instead of one per sample — the frame
// overhead the paper's communication model charges per message drops by
// the batching factor.
func AppendSampleBatch(dst []byte, samples []Sample) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(samples)))
	for _, s := range samples {
		dst = s.AppendEncode(dst)
	}
	return dst
}

// EncodeSampleBatch serializes a batch of samples into a single buffer
// (see AppendSampleBatch for the format).
func EncodeSampleBatch(samples []Sample) []byte {
	return AppendSampleBatch(make([]byte, 0, SampleBatchWireSize(samples)), samples)
}

// maxBatchCount bounds the declared sample count of a batch so a hostile
// count cannot force a giant decode loop; each sample needs at least
// sampleHeaderLen bytes, so the bound below is never the binding check for
// well-formed input.
const maxBatchCount = 1 << 24

// DecodeSampleBatch parses an EncodeSampleBatch buffer back into its
// samples. Malformed input returns an error; it never panics.
func DecodeSampleBatch(buf []byte) ([]Sample, error) {
	return DecodeSampleBatchInto(nil, buf)
}

// DecodeSampleBatchInto appends the decoded samples to dst (which may be
// nil) and returns the extended slice — the scheduler reuses its received
// slice's capacity across epochs this way. Any error leaves dst unchanged
// in the returned value's prefix but the appended tail must be discarded.
func DecodeSampleBatchInto(dst []Sample, buf []byte) ([]Sample, error) {
	if len(buf) < 4 {
		return dst, fmt.Errorf("data: DecodeSampleBatch: buffer too short (%d bytes)", len(buf))
	}
	count := binary.LittleEndian.Uint32(buf)
	if count&batchV2Flag != 0 {
		// Compact (v2) batch — see encoding.go. The legacy encoder bounds
		// counts at maxBatchCount, so bit 31 unambiguously marks v2.
		return decodeSampleBatchV2(dst, buf)
	}
	if count > maxBatchCount {
		return dst, fmt.Errorf("data: DecodeSampleBatch: count %d out of range", count)
	}
	if int(count)*sampleHeaderLen > len(buf)-4 {
		return dst, fmt.Errorf("data: DecodeSampleBatch: count %d exceeds %d payload bytes", count, len(buf)-4)
	}
	off := 4
	for i := uint32(0); i < count; i++ {
		s, next, err := decodeSampleAt(buf, off)
		if err != nil {
			return dst, fmt.Errorf("data: DecodeSampleBatch: sample %d: %w", i, err)
		}
		dst = append(dst, s)
		off = next
	}
	if off != len(buf) {
		return dst, fmt.Errorf("data: DecodeSampleBatch: %d trailing bytes after %d samples", len(buf)-off, count)
	}
	return dst, nil
}

// Dataset is an in-memory dataset with a train/validation split (the paper
// uses 80%/20% for ImageNet-21K and the standard splits elsewhere).
type Dataset struct {
	Name        string
	Train       []Sample
	Val         []Sample
	Classes     int
	FeatureDim  int
	SampleBytes int64 // simulated bytes per sample
}

// TotalBytes returns the simulated total size of the training set.
func (d *Dataset) TotalBytes() int64 {
	var t int64
	for _, s := range d.Train {
		t += s.Bytes
	}
	return t
}

// SyntheticSpec configures the Gaussian-mixture generator.
//
// The discriminative features (FeatureDim of them, separated by ClassSep)
// set the task difficulty. The optional nuisance features model what makes
// image datasets batch-norm-sensitive: directions with large between-class
// variance but no extra margin (backgrounds, color statistics, object
// scale). A worker whose small local shard covers only part of the classes
// sees strongly shifted statistics along the nuisance directions, and batch
// normalization propagates that shift into every hidden unit — the
// Section IV-A.1 mechanism behind local shuffling's accuracy loss at scale.
type SyntheticSpec struct {
	Name        string
	NumSamples  int     // training samples N
	NumVal      int     // validation samples
	Classes     int     // C
	FeatureDim  int     // discriminative dimensions D
	ClassSep    float32 // distance scale between class means (task difficulty)
	NoiseStd    float32 // within-class standard deviation
	NuisanceDim int     // extra high-between-class-variance dimensions
	NuisanceSep float32 // class-mean scale of the nuisance dimensions
	// NuisanceGroups shares one nuisance mean among C/NuisanceGroups
	// classes (0 = per-class). Grouped nuisance directions shift shard
	// statistics without adding class margin within a group, which is what
	// lets the proxy exhibit the paper's BN-driven LS degradation without
	// making the task trivially separable.
	NuisanceGroups int
	Bytes          int64 // simulated bytes per sample
	Seed           uint64
}

// TotalDim returns the full feature dimensionality.
func (sp SyntheticSpec) TotalDim() int { return sp.FeatureDim + sp.NuisanceDim }

// Validate reports configuration errors.
func (sp SyntheticSpec) Validate() error {
	if sp.NumSamples <= 0 || sp.NumVal < 0 {
		return fmt.Errorf("data: spec %q: sample counts must be positive (train=%d val=%d)", sp.Name, sp.NumSamples, sp.NumVal)
	}
	if sp.Classes < 2 {
		return fmt.Errorf("data: spec %q: need at least 2 classes, got %d", sp.Name, sp.Classes)
	}
	if sp.FeatureDim <= 0 {
		return fmt.Errorf("data: spec %q: FeatureDim must be positive, got %d", sp.Name, sp.FeatureDim)
	}
	if sp.NuisanceDim < 0 {
		return fmt.Errorf("data: spec %q: NuisanceDim must be non-negative, got %d", sp.Name, sp.NuisanceDim)
	}
	return nil
}

// Generate builds the synthetic dataset: class means are random Gaussian
// vectors scaled by ClassSep/sqrt(D); each sample is its class mean plus
// N(0, NoiseStd) noise. Labels cycle round-robin so classes are balanced,
// and sample IDs enumerate the training set 0..N-1 (validation IDs follow).
func Generate(sp SyntheticSpec) (*Dataset, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(sp.Seed)
	dim := sp.TotalDim()
	scale := sp.ClassSep / float32(math.Sqrt(float64(sp.FeatureDim)))
	means := make([][]float32, sp.Classes)
	for c := range means {
		means[c] = make([]float32, dim)
		for j := 0; j < sp.FeatureDim; j++ {
			means[c][j] = r.NormFloat32() * scale
		}
	}
	groups := sp.NuisanceGroups
	if groups <= 0 || groups > sp.Classes {
		groups = sp.Classes
	}
	groupMeans := make([][]float32, groups)
	for g := range groupMeans {
		groupMeans[g] = make([]float32, sp.NuisanceDim)
		for j := range groupMeans[g] {
			groupMeans[g][j] = r.NormFloat32() * sp.NuisanceSep
		}
	}
	for c := range means {
		copy(means[c][sp.FeatureDim:], groupMeans[c%groups])
	}
	mk := func(id int) Sample {
		c := id % sp.Classes
		f := make([]float32, dim)
		for j := range f {
			f[j] = means[c][j] + r.NormFloat32()*sp.NoiseStd
		}
		return Sample{ID: id, Label: c, Features: f, Bytes: sp.Bytes}
	}
	d := &Dataset{
		Name:        sp.Name,
		Classes:     sp.Classes,
		FeatureDim:  dim,
		SampleBytes: sp.Bytes,
		Train:       make([]Sample, sp.NumSamples),
		Val:         make([]Sample, sp.NumVal),
	}
	for i := 0; i < sp.NumSamples; i++ {
		d.Train[i] = mk(i)
	}
	for i := 0; i < sp.NumVal; i++ {
		d.Val[i] = mk(sp.NumSamples + i)
	}
	return d, nil
}
