//go:build !race

package tensor

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
