//go:build race

package tensor

// raceEnabled reports that this test binary was built with -race. The
// allocation-regression tests skip themselves under the race detector:
// instrumentation changes escape analysis, and sync.Pool deliberately
// randomizes its caching in race builds, so allocs-per-op is meaningless.
const raceEnabled = true
