// Package arena provides a bump allocator for float32 scratch memory: the
// per-goroutine workspace spine of the compute hot path (DESIGN.md §14).
//
// An Arena hands out sub-slices of one backing array with a pointer bump
// and reclaims everything at once with Reset. The training loop owns one
// arena per worker goroutine: every layer workspace and GEMM pack buffer
// is bump-allocated during the step and the whole arena is reset at the
// step boundary. After the first step has grown the backing array to the
// high-water mark, the steady state allocates nothing — Reset is a single
// integer store — which is what the alloc regression tests pin.
//
// Arenas are NOT safe for concurrent use; give each goroutine its own
// (the tensor package pools GEMM arenas for exactly this reason).
package arena

// Arena is a float32 bump allocator. The zero value is ready to use.
type Arena struct {
	buf []float32
	off int
}

// New returns an arena with capacity for at least capHint floats.
func New(capHint int) *Arena {
	a := &Arena{}
	if capHint > 0 {
		a.buf = make([]float32, capHint)
	}
	return a
}

// Floats returns a length-n slice valid until the next Reset. Contents are
// unspecified (callers overwrite fully or zero explicitly). The slice has
// capacity n, so appends never silently alias a neighbour. Growing past
// the current capacity allocates a fresh backing array; slices handed out
// earlier keep the old one and remain valid until their owners drop them.
func (a *Arena) Floats(n int) []float32 {
	if n < 0 {
		panic("arena: negative allocation")
	}
	if a.off+n > len(a.buf) {
		newCap := 2 * (a.off + n)
		if newCap < 1024 {
			newCap = 1024
		}
		a.buf = make([]float32, newCap)
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Zeroed returns a length-n slice like Floats with every element set to 0.
func (a *Arena) Zeroed(n int) []float32 {
	s := a.Floats(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Reset reclaims every outstanding allocation. Slices handed out before
// the call must not be used afterwards: the next allocations will reuse
// the same memory.
func (a *Arena) Reset() { a.off = 0 }

// Used reports the floats currently allocated since the last Reset.
func (a *Arena) Used() int { return a.off }

// Cap reports the capacity of the current backing array.
func (a *Arena) Cap() int { return len(a.buf) }
