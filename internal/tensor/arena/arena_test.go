package arena

import "testing"

func TestFloatsBumpsWithinCapacity(t *testing.T) {
	a := New(64)
	x := a.Floats(16)
	y := a.Floats(16)
	if len(x) != 16 || len(y) != 16 {
		t.Fatalf("lengths %d, %d", len(x), len(y))
	}
	x[15] = 1
	if y[0] != 0 {
		t.Fatal("second allocation overlaps the first")
	}
	if a.Used() != 32 {
		t.Fatalf("Used = %d, want 32", a.Used())
	}
}

func TestGrowKeepsOldSlicesValid(t *testing.T) {
	a := New(8)
	x := a.Floats(8)
	for i := range x {
		x[i] = float32(i)
	}
	_ = a.Floats(1 << 16) // forces a new backing array
	for i := range x {
		if x[i] != float32(i) {
			t.Fatalf("old slice corrupted at %d after grow", i)
		}
	}
}

func TestResetReusesBacking(t *testing.T) {
	a := New(0)
	a.Floats(1024)
	capBefore := a.Cap()
	a.Reset()
	if a.Used() != 0 {
		t.Fatalf("Used after Reset = %d", a.Used())
	}
	a.Floats(1024)
	if a.Cap() != capBefore {
		t.Fatalf("Reset did not reuse backing: cap %d -> %d", capBefore, a.Cap())
	}
}

func TestZeroedClearsRecycledMemory(t *testing.T) {
	a := New(0)
	x := a.Floats(32)
	for i := range x {
		x[i] = 7
	}
	a.Reset()
	y := a.Zeroed(32)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("Zeroed[%d] = %v after Reset", i, v)
		}
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	a := New(0)
	a.Floats(4096)
	a.Reset()
	if n := testing.AllocsPerRun(50, func() {
		a.Reset()
		_ = a.Floats(2048)
		_ = a.Zeroed(1024)
	}); n != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", n)
	}
}
