//go:build amd64 && !purego

package tensor

// Capability probe and assembly micro-kernel registration for amd64.
//
// The SIMD kernels vectorize across the NR (column) dimension only: each
// output element still accumulates its k-products in ascending order with
// a separate VMULPS and VADDPS per step (never FMA, which would contract
// the rounding), so they are bitwise-identical to the scalar reference on
// finite inputs. SSE is part of the amd64 baseline; AVX2 and AVX-512F are
// gated on CPUID feature bits plus XGETBV confirming the OS saves the
// wider register state.

// cpuidAsm executes CPUID for (leaf, sub). Implemented in gemm_amd64.s.
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0. Only valid when CPUID reports OSXSAVE.
func xgetbvAsm() (eax, edx uint32)

// The micro-kernels. c points at an MR×NR tile with row stride ldc
// floats; each accumulates kc packed k-steps into the tile in place.
//
//go:noescape
func microSSE8x4Asm(kc int, ap, bp, c *float32, ldc int)

//go:noescape
func microAVX28x8Asm(kc int, ap, bp, c *float32, ldc int)

//go:noescape
func microAVX5128x16Asm(kc int, ap, bp, c *float32, ldc int)

func wrapAsm(f func(kc int, ap, bp, c *float32, ldc int)) func(int, []float32, []float32, []float32, int) {
	return func(kc int, ap, bp, c []float32, ldc int) {
		f(kc, &ap[0], &bp[0], &c[0], ldc)
	}
}

// registerAsmKernels probes the CPU and prepends every usable assembly
// kernel in preference order (widest vectors first).
func registerAsmKernels() {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	var hasAVX2, hasAVX512 bool
	if maxLeaf >= 7 {
		_, _, c1, _ := cpuidAsm(1, 0)
		const osxsave, avx = 1 << 27, 1 << 28
		if c1&osxsave != 0 && c1&avx != 0 {
			xlo, _ := xgetbvAsm()
			osYMM := xlo&0x6 == 0x6        // XMM+YMM state saved
			osZMM := xlo&0xe6 == 0xe6      // + opmask and ZMM state
			b7, _, _, _ := cpuid7()
			hasAVX2 = osYMM && b7&(1<<5) != 0
			hasAVX512 = osZMM && b7&(1<<16) != 0
		}
	}
	if hasAVX512 {
		gemmKernels = append(gemmKernels,
			&microKernel{name: "avx512_8x16", mr: 8, nr: 16, kern: wrapAsm(microAVX5128x16Asm)})
	}
	if hasAVX2 {
		gemmKernels = append(gemmKernels,
			&microKernel{name: "avx2_8x8", mr: 8, nr: 8, kern: wrapAsm(microAVX28x8Asm)})
	}
	gemmKernels = append(gemmKernels,
		&microKernel{name: "sse8x4", mr: 8, nr: 4, kern: wrapAsm(microSSE8x4Asm)})
}

func cpuid7() (ebx, ecx, edx, eax uint32) {
	a, b, c, d := cpuidAsm(7, 0)
	return b, c, d, a
}
