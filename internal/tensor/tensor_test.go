package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"plshuffle/internal/rng"
)

func almostEq(a, b float32, tol float64) bool {
	return math.Abs(float64(a)-float64(b)) <= tol
}

// naiveMul is the reference O(n^3) triple loop used to validate the
// optimized kernels.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func randomMatrix(r *rng.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat32()
	}
	return m
}

func transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

func matricesClose(t *testing.T, got, want *Matrix, tol float64, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], tol) {
			t.Fatalf("%s: element %d: got %v want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {33, 17, 9}, {128, 64, 32}}
	for _, s := range shapes {
		a := randomMatrix(r, s[0], s[1])
		b := randomMatrix(r, s[1], s[2])
		matricesClose(t, MatMul(a, b), naiveMul(a, b), 1e-3, "MatMul")
	}
}

func TestMatMulTAMatchesTransposeMul(t *testing.T) {
	r := rng.New(2)
	for _, s := range [][3]int{{4, 3, 5}, {17, 9, 13}, {64, 32, 8}} {
		a := randomMatrix(r, s[0], s[1]) // k×n
		b := randomMatrix(r, s[0], s[2]) // k×m
		matricesClose(t, MatMulTA(a, b), naiveMul(transpose(a), b), 1e-3, "MatMulTA")
	}
}

func TestMatMulTBMatchesMulTranspose(t *testing.T) {
	r := rng.New(3)
	for _, s := range [][3]int{{4, 3, 5}, {17, 9, 13}, {8, 64, 32}} {
		a := randomMatrix(r, s[0], s[1]) // n×k
		b := randomMatrix(r, s[2], s[1]) // m×k
		matricesClose(t, MatMulTB(a, b), naiveMul(a, transpose(b)), 1e-3, "MatMulTB")
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		r := rng.New(seed)
		a := randomMatrix(r, n, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		out := MatMul(a, id)
		for i := range out.Data {
			if !almostEq(out.Data[i], a.Data[i], 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIntoReusesBuffer(t *testing.T) {
	r := rng.New(4)
	a := randomMatrix(r, 5, 6)
	b := randomMatrix(r, 6, 7)
	dst := New(5, 7)
	for i := range dst.Data {
		dst.Data[i] = 999 // stale garbage must be overwritten
	}
	MatMulInto(dst, a, b)
	matricesClose(t, dst, naiveMul(a, b), 1e-3, "MatMulInto")
}

func TestMatMulPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestAddAndAddScaled(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	a.Add(b)
	if a.At(1, 1) != 44 {
		t.Fatalf("Add: got %v", a.Data)
	}
	a.AddScaled(b, 0.5)
	if a.At(0, 0) != 16 {
		t.Fatalf("AddScaled: got %v", a.Data)
	}
}

func TestScale(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, -2, 3})
	a.Scale(-2)
	want := []float32{-2, 4, -6}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Scale: got %v", a.Data)
		}
	}
}

func TestAddRowVecAndColSum(t *testing.T) {
	a := New(3, 2)
	a.AddRowVec([]float32{1, 2})
	cs := a.ColSum()
	if cs[0] != 3 || cs[1] != 6 {
		t.Fatalf("ColSum after AddRowVec: %v", cs)
	}
	cm := a.ColMean()
	if cm[0] != 1 || cm[1] != 2 {
		t.Fatalf("ColMean: %v", cm)
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice(3, 3, []float32{
		0, 5, 1,
		9, 2, 3,
		-1, -5, -2,
	})
	got := a.ArgmaxRows()
	want := []int{1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgmaxRows = %v, want %v", got, want)
		}
	}
}

func TestNorm2(t *testing.T) {
	a := FromSlice(1, 2, []float32{3, 4})
	if n := a.Norm2(); math.Abs(n-5) > 1e-9 {
		t.Fatalf("Norm2 = %v, want 5", n)
	}
	if n := Norm2Slice([]float32{3, 4}); math.Abs(n-5) > 1e-9 {
		t.Fatalf("Norm2Slice = %v, want 5", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestKaimingInitVariance(t *testing.T) {
	r := rng.New(10)
	fanIn := 256
	m := New(200, fanIn)
	m.KaimingInit(r, fanIn)
	var sum, sumsq float64
	for _, v := range m.Data {
		sum += float64(v)
		sumsq += float64(v) * float64(v)
	}
	n := float64(len(m.Data))
	mean := sum / n
	variance := sumsq/n - mean*mean
	want := 2.0 / float64(fanIn)
	if math.Abs(variance-want)/want > 0.1 {
		t.Fatalf("Kaiming variance = %v, want ~%v", variance, want)
	}
}

func TestRowIsView(t *testing.T) {
	m := New(2, 3)
	m.Row(1)[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row did not return a view")
	}
}

func BenchmarkMatMul128(b *testing.B) { benchMatMul(b, 128) }
func BenchmarkMatMul512(b *testing.B) { benchMatMul(b, 512) }

func benchMatMul(b *testing.B, n int) {
	r := rng.New(1)
	a := randomMatrix(r, n, n)
	c := randomMatrix(r, n, n)
	dst := New(n, n)
	b.SetBytes(int64(2 * n * n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, c)
	}
	reportGFLOPS(b, 2*n*n*n)
}

// reportGFLOPS attaches achieved floating-point throughput to a matmul
// benchmark (flops = flop count of ONE op). The unit is per-op so the
// benchhot trajectory tooling picks it up like any other */op metric.
func reportGFLOPS(b *testing.B, flops int) {
	sec := b.Elapsed().Seconds()
	if sec <= 0 {
		return
	}
	b.ReportMetric(float64(flops)*float64(b.N)/sec/1e9, "gflops/op")
}

// BenchmarkMatMulTA256/TB256 cover the two transposed backward-pass
// kernels at a training-typical panel shape.
func BenchmarkMatMulTA256(b *testing.B) {
	r := rng.New(2)
	a := randomMatrix(r, 256, 256)
	c := randomMatrix(r, 256, 256)
	dst := New(256, 256)
	b.SetBytes(int64(2 * 256 * 256 * 256 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTAInto(dst, a, c)
	}
	reportGFLOPS(b, 2*256*256*256)
}

func BenchmarkMatMulTB256(b *testing.B) {
	r := rng.New(3)
	a := randomMatrix(r, 256, 256)
	c := randomMatrix(r, 256, 256)
	dst := New(256, 256)
	b.SetBytes(int64(2 * 256 * 256 * 256 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTBInto(dst, a, c)
	}
	reportGFLOPS(b, 2*256*256*256)
}
