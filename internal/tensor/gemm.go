// Blocked, register-tiled GEMM core (DESIGN.md §14).
//
// All three matmul entry points (MatMulInto, MatMulTAInto, MatMulTBInto)
// route through one packed kernel: A and B panels are copied into
// contiguous cache-tile buffers (padding ragged edges with zeros), and an
// MR×NR register-tiled micro-kernel drives the innermost loops. Blocking
// constants follow the classic three-level scheme:
//
//	NC — columns of B per outermost block (B panel KC×NC lives in L2/L3)
//	KC — depth of one packed panel pair (A strip MR×KC + B strip NR×KC
//	     stream through L1)
//	MC — rows of A per packed block (A panel MC×KC lives in L2)
//
// Determinism contract: every kernel — the scalar reference, the pure-Go
// tiled kernels, and the SIMD paths — accumulates each output element
// C[i,j] as fl(c + fl(a[i,k]*b[k,j])) for k strictly ascending, one
// rounding per multiply and one per add (no FMA contraction). Blocking
// over i/j never reorders a single element's reduction, and blocking over
// k only inserts exact store/load round-trips at panel boundaries, so the
// result is bitwise-identical to the naive triple loop for all finite
// inputs, independent of tile constants, kernel choice, worker count, or
// how rows are split across ranks. Zero-padding the ragged pack edges is
// equally exact: a partial sum starting from +0 can never reach -0 under
// round-to-nearest, so adding the padded ±0 products changes nothing.
// The equivalence is pinned by exhaustive small-shape tests, property
// tests over ragged shapes, and a micro-kernel fuzz target.
package tensor

import (
	"sync"

	"plshuffle/internal/tensor/arena"
)

// Blocking constants. Sized for a ~32 KiB L1d / ~1 MiB L2 x86 core: the
// packed B strip (KC·NR floats, ≤16 KiB at NR=16) plus one A strip
// (KC·MR floats, 8 KiB) stream through L1, the packed A block (MC·KC
// floats, 128 KiB) stays L2-resident across the whole jr loop.
const (
	gemmNC = 512
	gemmKC = 256
	gemmMC = 128
)

// microKernel is one register-tiled inner kernel: it accumulates an MR×NR
// C tile (row stride ldc floats) with a kc-deep packed panel pair, k
// ascending, mul and add rounded separately.
//
// ap holds kc groups of MR A-values (column k of the tile's rows), bp
// holds kc groups of NR B-values (row k of the tile's columns). c must
// hold the running partial sums on entry (the driver zeroes dst first).
type microKernel struct {
	name   string
	mr, nr int
	kern   func(kc int, ap, bp []float32, c []float32, ldc int)
}

// microGo8x4 is the portable 8×4 register-tiled micro-kernel: 32 scalar
// accumulators, manually unrolled so the compiler keeps the hot loop free
// of bounds checks. It is the default on architectures without an
// assembly path and the universal fallback everywhere.
func microGo8x4(kc int, ap, bp []float32, c []float32, ldc int) {
	r0 := c[0*ldc : 0*ldc+4 : 0*ldc+4]
	r1 := c[1*ldc : 1*ldc+4 : 1*ldc+4]
	r2 := c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r3 := c[3*ldc : 3*ldc+4 : 3*ldc+4]
	r4 := c[4*ldc : 4*ldc+4 : 4*ldc+4]
	r5 := c[5*ldc : 5*ldc+4 : 5*ldc+4]
	r6 := c[6*ldc : 6*ldc+4 : 6*ldc+4]
	r7 := c[7*ldc : 7*ldc+4 : 7*ldc+4]
	c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
	c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
	c20, c21, c22, c23 := r2[0], r2[1], r2[2], r2[3]
	c30, c31, c32, c33 := r3[0], r3[1], r3[2], r3[3]
	c40, c41, c42, c43 := r4[0], r4[1], r4[2], r4[3]
	c50, c51, c52, c53 := r5[0], r5[1], r5[2], r5[3]
	c60, c61, c62, c63 := r6[0], r6[1], r6[2], r6[3]
	c70, c71, c72, c73 := r7[0], r7[1], r7[2], r7[3]
	for k := 0; k < kc; k++ {
		a := ap[:8:8]
		b := bp[:4:4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		a0 := a[0]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		a1 := a[1]
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2 := a[2]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		a3 := a[3]
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		a4 := a[4]
		c40 += a4 * b0
		c41 += a4 * b1
		c42 += a4 * b2
		c43 += a4 * b3
		a5 := a[5]
		c50 += a5 * b0
		c51 += a5 * b1
		c52 += a5 * b2
		c53 += a5 * b3
		a6 := a[6]
		c60 += a6 * b0
		c61 += a6 * b1
		c62 += a6 * b2
		c63 += a6 * b3
		a7 := a[7]
		c70 += a7 * b0
		c71 += a7 * b1
		c72 += a7 * b2
		c73 += a7 * b3
		ap = ap[8:]
		bp = bp[4:]
	}
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
	r4[0], r4[1], r4[2], r4[3] = c40, c41, c42, c43
	r5[0], r5[1], r5[2], r5[3] = c50, c51, c52, c53
	r6[0], r6[1], r6[2], r6[3] = c60, c61, c62, c63
	r7[0], r7[1], r7[2], r7[3] = c70, c71, c72, c73
}

// microGo4x4 is the 4×4 fallback tile: 16 accumulators fit the scalar
// register file on amd64/arm64, trading tile reuse for zero spills.
func microGo4x4(kc int, ap, bp []float32, c []float32, ldc int) {
	r0 := c[0*ldc : 0*ldc+4 : 0*ldc+4]
	r1 := c[1*ldc : 1*ldc+4 : 1*ldc+4]
	r2 := c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r3 := c[3*ldc : 3*ldc+4 : 3*ldc+4]
	c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
	c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
	c20, c21, c22, c23 := r2[0], r2[1], r2[2], r2[3]
	c30, c31, c32, c33 := r3[0], r3[1], r3[2], r3[3]
	for k := 0; k < kc; k++ {
		a := ap[:4:4]
		b := bp[:4:4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		a0 := a[0]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		a1 := a[1]
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2 := a[2]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		a3 := a[3]
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		ap = ap[4:]
		bp = bp[4:]
	}
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}

// gemmOperand is one effective input matrix of the packed core, expressed
// through strides so the transposed variants share the packing code:
// element (i, k) of effective A is data[i*rowStride + k*depthStride], and
// element (k, j) of effective B is data[k*depthStride + j*rowStride].
type gemmOperand struct {
	data        []float32
	rowStride   int // stride along the output dimension (i for A, j for B)
	depthStride int // stride along the reduction dimension k
}

// gemmWS is one goroutine's workspace for a packed matmul: a bump arena
// that owns the pack buffers and the ragged-edge C scratch tile. Instances
// are pooled; steady state re-bumps the same backing array, so the packed
// path allocates nothing after warmup.
type gemmWS struct {
	a *arena.Arena
}

var gemmPool = sync.Pool{New: func() any { return &gemmWS{a: arena.New(0)} }}

// packA copies rows [i0,i1) × depth [k0,k1) of effective A into dst as
// ceil((i1-i0)/mr) strips: strip s holds, for each k ascending, the mr
// values of rows i0+s*mr .. i0+s*mr+mr-1 (zero-padded past i1).
func packA(dst []float32, a gemmOperand, i0, i1, k0, k1, mr int) {
	kc := k1 - k0
	p := 0
	for is := i0; is < i1; is += mr {
		full := is+mr <= i1
		if full && a.depthStride == 1 {
			// Contiguous k (MatMulTA's packing): copy mr k-runs row by row,
			// interleaving into the strip layout.
			base := is * a.rowStride
			for r := 0; r < mr; r++ {
				src := a.data[base+r*a.rowStride+k0 : base+r*a.rowStride+k1]
				q := p + r
				for _, v := range src {
					dst[q] = v
					q += mr
				}
			}
			p += kc * mr
			continue
		}
		for k := k0; k < k1; k++ {
			col := a.data[k*a.depthStride:]
			for r := 0; r < mr; r++ {
				i := is + r
				if i < i1 {
					dst[p] = col[i*a.rowStride]
				} else {
					dst[p] = 0
				}
				p++
			}
		}
	}
}

// packB copies depth [k0,k1) × columns [j0,j1) of effective B into dst as
// ceil((j1-j0)/nr) strips: strip s holds, for each k ascending, the nr
// values of columns j0+s*nr .. j0+s*nr+nr-1 (zero-padded past j1).
func packB(dst []float32, b gemmOperand, k0, k1, j0, j1, nr int) {
	p := 0
	for js := j0; js < j1; js += nr {
		full := js+nr <= j1
		if full && b.rowStride == 1 {
			// Contiguous columns (MatMul/MatMulTA): copy nr-wide row chunks.
			for k := k0; k < k1; k++ {
				copy(dst[p:p+nr], b.data[k*b.depthStride+js:])
				p += nr
			}
			continue
		}
		for k := k0; k < k1; k++ {
			row := b.data[k*b.depthStride:]
			for c := 0; c < nr; c++ {
				j := js + c
				if j < j1 {
					dst[p] = row[j*b.rowStride]
				} else {
					dst[p] = 0
				}
				p++
			}
		}
	}
}

// gemmRows computes rows [lo,hi) of dst = effA · effB through the packed
// core with the dispatched micro-kernel. dst rows are fully overwritten.
func gemmRows(dst *Matrix, a, b gemmOperand, n, k, lo, hi int) {
	mk := activeKernel()
	ws := gemmPool.Get().(*gemmWS)
	ar := ws.a
	ar.Reset()
	ldc := dst.Cols

	// The kernels accumulate into dst, so start every covered element at
	// +0 — same initialization as the reference triple loop.
	zero := dst.Data[lo*ldc : hi*ldc]
	for i := range zero {
		zero[i] = 0
	}
	if k == 0 || n == 0 || hi <= lo {
		gemmPool.Put(ws)
		return
	}

	mr, nr := mk.mr, mk.nr
	ap := ar.Floats(((gemmMC + mr - 1) / mr * mr) * gemmKC)
	bp := ar.Floats(((gemmNC + nr - 1) / nr * nr) * gemmKC)
	ct := ar.Floats(mr * nr)

	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for kp := 0; kp < k; kp += gemmKC {
			kc := min(gemmKC, k-kp)
			packB(bp, b, kp, kp+kc, jc, jc+nc, nr)
			for ic := lo; ic < hi; ic += gemmMC {
				mc := min(gemmMC, hi-ic)
				packA(ap, a, ic, ic+mc, kp, kp+kc, mr)
				for jr := 0; jr < nc; jr += nr {
					jw := min(nr, nc-jr)
					bstrip := bp[jr/nr*(kc*nr):]
					for ir := 0; ir < mc; ir += mr {
						iw := min(mr, mc-ir)
						astrip := ap[ir/mr*(kc*mr):]
						if iw == mr && jw == nr {
							cs := dst.Data[(ic+ir)*ldc+jc+jr:]
							mk.kern(kc, astrip, bstrip, cs, ldc)
							continue
						}
						// Ragged edge: run the full tile against a scratch
						// MR×NR block seeded with the live C values (padding
						// lanes stay zero: their packed operands are zero),
						// then copy the valid region back.
						for i := range ct {
							ct[i] = 0
						}
						for r := 0; r < iw; r++ {
							copy(ct[r*nr:r*nr+jw], dst.Data[(ic+ir+r)*ldc+jc+jr:])
						}
						mk.kern(kc, astrip, bstrip, ct, nr)
						for r := 0; r < iw; r++ {
							copy(dst.Data[(ic+ir+r)*ldc+jc+jr:(ic+ir+r)*ldc+jc+jr+jw], ct[r*nr:])
						}
					}
				}
			}
		}
	}
	gemmPool.Put(ws)
}

// gemm computes dst = effA (m×k) · effB (k×n), chunking row tiles across
// goroutines when the work amortizes the fan-out (see parallelTiles). Any
// row split yields bitwise-identical results: each output element's
// reduction schedule is a function of (k, KC) only.
func gemm(dst *Matrix, a, b gemmOperand, m, n, k int) {
	tiles := (m + gemmMC - 1) / gemmMC
	// Gate the serial path before the closure below exists: the closure is
	// captured by goroutines in parallelTiles, so constructing it
	// unconditionally would heap-allocate even when we run inline — and the
	// single-worker steady state must be 0 allocs/op.
	if serialTiles(tiles, 2*gemmMC*k*n) {
		gemmRows(dst, a, b, n, k, 0, m)
		return
	}
	parallelTiles(tiles, 2*gemmMC*k*n, func(tlo, thi int) {
		lo := tlo * gemmMC
		hi := thi * gemmMC
		if hi > m {
			hi = m
		}
		gemmRows(dst, a, b, n, k, lo, hi)
	})
}
