//go:build amd64 && !purego

#include "textflag.h"

// GEMM micro-kernels (DESIGN.md §14). Register convention shared by all
// three kernels:
//
//	CX = kc (loop counter)   AX = ap (packed A strip, MR floats per k)
//	BX = bp (packed B strip, NR floats per k)
//	DI = &c[0][0]            SI = ldc in BYTES (shifted on entry)
//	R8 = 3*ldc bytes         R9 = &c[4][0]
//
// Each kernel loads the 8×NR C tile into vector registers, accumulates kc
// k-steps with a separate multiply and add per step (NO FMA: contraction
// would change the rounding and break the bitwise-determinism gates), and
// stores the tile back. Lanes never cross: lane j of an accumulator holds
// exactly C[i][j]'s running sum, k ascending — the same reduction schedule
// as the scalar reference kernel.

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func microSSE8x4Asm(kc int, ap, bp, c *float32, ldc int)
//
// 8×4 tile in X0–X7 (one XMM row each). Baseline amd64: no feature gate.
TEXT ·microSSE8x4Asm(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), AX
	MOVQ bp+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), SI
	SHLQ $2, SI
	LEAQ (SI)(SI*2), R8
	LEAQ (DI)(SI*4), R9

	MOVUPS (DI), X0
	MOVUPS (DI)(SI*1), X1
	MOVUPS (DI)(SI*2), X2
	MOVUPS (DI)(R8*1), X3
	MOVUPS (R9), X4
	MOVUPS (R9)(SI*1), X5
	MOVUPS (R9)(SI*2), X6
	MOVUPS (R9)(R8*1), X7

sse_loop:
	MOVUPS (BX), X8

	MOVSS  (AX), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X0

	MOVSS  4(AX), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X1

	MOVSS  8(AX), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X2

	MOVSS  12(AX), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X3

	MOVSS  16(AX), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X4

	MOVSS  20(AX), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X5

	MOVSS  24(AX), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X6

	MOVSS  28(AX), X9
	SHUFPS $0x00, X9, X9
	MULPS  X8, X9
	ADDPS  X9, X7

	ADDQ $32, AX
	ADDQ $16, BX
	DECQ CX
	JNZ  sse_loop

	MOVUPS X0, (DI)
	MOVUPS X1, (DI)(SI*1)
	MOVUPS X2, (DI)(SI*2)
	MOVUPS X3, (DI)(R8*1)
	MOVUPS X4, (R9)
	MOVUPS X5, (R9)(SI*1)
	MOVUPS X6, (R9)(SI*2)
	MOVUPS X7, (R9)(R8*1)
	RET

// func microAVX28x8Asm(kc int, ap, bp, c *float32, ldc int)
//
// 8×8 tile in Y0–Y7. VBROADCASTSS from memory is a pure load µop, so the
// inner loop is bound by the two FP ports: 8 VMULPS + 8 VADDPS per k.
TEXT ·microAVX28x8Asm(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), AX
	MOVQ bp+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), SI
	SHLQ $2, SI
	LEAQ (SI)(SI*2), R8
	LEAQ (DI)(SI*4), R9

	VMOVUPS (DI), Y0
	VMOVUPS (DI)(SI*1), Y1
	VMOVUPS (DI)(SI*2), Y2
	VMOVUPS (DI)(R8*1), Y3
	VMOVUPS (R9), Y4
	VMOVUPS (R9)(SI*1), Y5
	VMOVUPS (R9)(SI*2), Y6
	VMOVUPS (R9)(R8*1), Y7

avx2_loop:
	VMOVUPS (BX), Y8

	VBROADCASTSS (AX), Y9
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y0, Y0

	VBROADCASTSS 4(AX), Y9
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y1, Y1

	VBROADCASTSS 8(AX), Y9
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y2, Y2

	VBROADCASTSS 12(AX), Y9
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y3, Y3

	VBROADCASTSS 16(AX), Y9
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y4, Y4

	VBROADCASTSS 20(AX), Y9
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y5, Y5

	VBROADCASTSS 24(AX), Y9
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y6, Y6

	VBROADCASTSS 28(AX), Y9
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y7, Y7

	ADDQ $32, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  avx2_loop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (DI)(SI*1)
	VMOVUPS Y2, (DI)(SI*2)
	VMOVUPS Y3, (DI)(R8*1)
	VMOVUPS Y4, (R9)
	VMOVUPS Y5, (R9)(SI*1)
	VMOVUPS Y6, (R9)(SI*2)
	VMOVUPS Y7, (R9)(R8*1)
	VZEROUPPER
	RET

// func microAVX5128x16Asm(kc int, ap, bp, c *float32, ldc int)
//
// 8×16 tile in Z0–Z7, one 64-byte B vector per k.
TEXT ·microAVX5128x16Asm(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), AX
	MOVQ bp+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), SI
	SHLQ $2, SI
	LEAQ (SI)(SI*2), R8
	LEAQ (DI)(SI*4), R9

	VMOVUPS (DI), Z0
	VMOVUPS (DI)(SI*1), Z1
	VMOVUPS (DI)(SI*2), Z2
	VMOVUPS (DI)(R8*1), Z3
	VMOVUPS (R9), Z4
	VMOVUPS (R9)(SI*1), Z5
	VMOVUPS (R9)(SI*2), Z6
	VMOVUPS (R9)(R8*1), Z7

avx512_loop:
	VMOVUPS (BX), Z8

	VBROADCASTSS (AX), Z9
	VMULPS       Z8, Z9, Z9
	VADDPS       Z9, Z0, Z0

	VBROADCASTSS 4(AX), Z9
	VMULPS       Z8, Z9, Z9
	VADDPS       Z9, Z1, Z1

	VBROADCASTSS 8(AX), Z9
	VMULPS       Z8, Z9, Z9
	VADDPS       Z9, Z2, Z2

	VBROADCASTSS 12(AX), Z9
	VMULPS       Z8, Z9, Z9
	VADDPS       Z9, Z3, Z3

	VBROADCASTSS 16(AX), Z9
	VMULPS       Z8, Z9, Z9
	VADDPS       Z9, Z4, Z4

	VBROADCASTSS 20(AX), Z9
	VMULPS       Z8, Z9, Z9
	VADDPS       Z9, Z5, Z5

	VBROADCASTSS 24(AX), Z9
	VMULPS       Z8, Z9, Z9
	VADDPS       Z9, Z6, Z6

	VBROADCASTSS 28(AX), Z9
	VMULPS       Z8, Z9, Z9
	VADDPS       Z9, Z7, Z7

	ADDQ $32, AX
	ADDQ $64, BX
	DECQ CX
	JNZ  avx512_loop

	VMOVUPS Z0, (DI)
	VMOVUPS Z1, (DI)(SI*1)
	VMOVUPS Z2, (DI)(SI*2)
	VMOVUPS Z3, (DI)(R8*1)
	VMOVUPS Z4, (R9)
	VMOVUPS Z5, (R9)(SI*1)
	VMOVUPS Z6, (R9)(SI*2)
	VMOVUPS Z7, (R9)(R8*1)
	VZEROUPPER
	RET
