// Package tensor provides the dense float32 matrix kernels underlying the
// neural-network substrate: parallel blocked matrix multiplication (plus the
// transposed variants needed by backpropagation), element-wise operations,
// and reductions.
//
// Matrices are row-major. Kernels parallelize across row blocks with
// goroutines once the work is large enough to amortize the fork/join cost,
// following the fan-out/drain pattern for data-parallel loops.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"plshuffle/internal/rng"
	"plshuffle/internal/tensor/arena"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: New(%d, %d): negative dimension", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// FromSlice wraps data (len r*c) as an r×c matrix without copying.
func FromSlice(r, c int, data []float32) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice: len(data)=%d, want %d", len(data), r*c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// EnsureShape returns an r×c matrix, reusing m's backing storage when its
// capacity suffices (m may be nil). The reused path leaves the element
// contents unspecified — callers either overwrite fully (the Into kernels
// do) or call Zero. This is how layers keep per-shape workspaces alive
// across iterations without reallocating, while still following batch-size
// changes (e.g. a smaller final or eval batch).
func EnsureShape(m *Matrix, r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: EnsureShape(%d, %d): negative dimension", r, c))
	}
	if m != nil && cap(m.Data) >= r*c {
		m.Rows, m.Cols, m.Data = r, c, m.Data[:r*c]
		return m
	}
	return New(r, c)
}

// EnsureShapeArena is EnsureShape with the backing storage bump-allocated
// from a (nil a falls back to EnsureShape). Unlike EnsureShape it always
// re-points m.Data at fresh arena memory: after the arena's per-step
// Reset, the previous region may be handed to any other workspace, so
// reuse-by-capacity would alias. The *Matrix header itself is recycled, so
// the steady state allocates nothing on the heap. Contents are
// unspecified; callers overwrite fully.
func EnsureShapeArena(a *arena.Arena, m *Matrix, r, c int) *Matrix {
	if a == nil {
		return EnsureShape(m, r, c)
	}
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: EnsureShapeArena(%d, %d): negative dimension", r, c))
	}
	if m == nil {
		m = &Matrix{}
	}
	m.Rows, m.Cols = r, c
	m.Data = a.Floats(r * c)
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Randn fills the matrix with normal(0, std) values from r.
func (m *Matrix) Randn(r *rng.Rand, std float32) {
	for i := range m.Data {
		m.Data[i] = r.NormFloat32() * std
	}
}

// KaimingInit fills the matrix with the He initialization used for
// ReLU networks: normal(0, sqrt(2/fanIn)).
func (m *Matrix) KaimingInit(r *rng.Rand, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	m.Randn(r, std)
}

// minParallelWork is the flop estimate below which a kernel runs serially:
// goroutine fan-out (and the closure it requires) costs more than the work.
const minParallelWork = 1 << 16

// gemmMinWork is the flop count (2·m·n·k) below which a matmul takes the
// retained reference kernel instead of the packed core: for the small
// per-layer matmuls of the training loop, packing overhead exceeds the
// blocking win. Both paths are bitwise-identical, so the cutover is purely
// a throughput decision.
const gemmMinWork = 1 << 15

// serialRows reports whether a row-parallel kernel over rows rows with
// workPerRow estimated flops per row should run on the calling goroutine.
// Kernels branch on it (or on serialTiles) before constructing the
// parallelRows closure, so the serial fast path — every small kernel in
// the training loop — allocates nothing.
func serialRows(rows, workPerRow int) bool {
	return runtime.GOMAXPROCS(0) <= 1 || rows <= 1 || rows*workPerRow < minParallelWork
}

/// serialTiles is serialRows for tile-granular kernels: the packed GEMM
// forks over whole MC-row tiles, so the fork/join decision weighs per-tile
// work units, not raw rows.
func serialTiles(tiles, workPerTile int) bool {
	return runtime.GOMAXPROCS(0) <= 1 || tiles <= 1 || tiles*workPerTile < minParallelWork
}

// parallelRows splits [0, rows) into contiguous chunks and runs fn on each
// chunk concurrently. Small workloads run inline to avoid goroutine
// overhead; work is an estimate of per-row flops. rows == 0 is a no-op
// (fn is never called with an empty range), and the chunk count never
// exceeds rows, so every invocation of fn covers at least one row.
func parallelRows(rows int, workPerRow int, fn func(lo, hi int)) {
	if rows <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows*workPerRow < minParallelWork {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rows / workers
		hi := (w + 1) * rows / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelTiles splits [0, tiles) tile indices into contiguous chunks and
// runs fn on each chunk concurrently — the tile-granular fork the packed
// GEMM chunks over (whole MC-row blocks, never raw rows, so no worker ever
// splits a pack unit). Callers gate with serialTiles first to keep the
// serial path closure-free.
func parallelTiles(tiles, workPerTile int, fn func(lo, hi int)) {
	if tiles <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > tiles {
		workers = tiles
	}
	if workers <= 1 || tiles*workPerTile < minParallelWork {
		fn(0, tiles)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * tiles / workers
		hi := (w + 1) * tiles / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func checkMul(a, b *Matrix, inner string, ak, bk int) {
	if ak != bk {
		panic(fmt.Sprintf("tensor: %s: inner dimensions %d and %d differ", inner, ak, bk))
	}
}

// MatMul returns A·B as a new (a.Rows × b.Cols) matrix.
func MatMul(a, b *Matrix) *Matrix {
	checkMul(a, b, "MatMul", a.Cols, b.Rows)
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = A·B. dst must be a.Rows × b.Cols and is
// overwritten. Large shapes route through the packed, register-tiled GEMM
// core (gemm.go); small ones take the retained reference kernel, whose
// inner loop streams both B and dst rows sequentially. The two paths are
// bitwise-identical for finite inputs (see gemm.go's determinism
// contract).
func MatMulInto(dst, a, b *Matrix) {
	checkMul(a, b, "MatMulInto", a.Cols, b.Rows)
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto: dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	if 2*n*k*m >= gemmMinWork {
		gemm(dst,
			gemmOperand{data: a.Data, rowStride: a.Cols, depthStride: 1},
			gemmOperand{data: b.Data, rowStride: 1, depthStride: b.Cols},
			n, m, k)
		return
	}
	matMulRef(dst, a, b, 0, n)
}

// matMulRef is the retained reference kernel (the pre-blocking i-k-j
/// triple loop): the semantic ground truth every packed kernel is
// equivalence-tested against, and the fast path for small shapes.
func matMulRef(dst, a, b *Matrix, lo, hi int) {
	k, m := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		di := dst.Data[i*m : (i+1)*m]
		for j := range di {
			di[j] = 0
		}
		ai := a.Data[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			av := ai[kk]
			if av == 0 {
				continue
			}
			bk := b.Data[kk*m : (kk+1)*m]
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
}

// MatMulTA returns Aᵀ·B (a is k×n, b is k×m, result n×m). This is the
// weight-gradient kernel: dW = Xᵀ·dY.
func MatMulTA(a, b *Matrix) *Matrix {
	checkMul(a, b, "MatMulTA", a.Rows, b.Rows)
	out := New(a.Cols, b.Cols)
	MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes dst = Aᵀ·B into a caller-owned matrix (dst must be
// a.Cols × b.Cols and is overwritten) — the workspace-reusing form backward
// passes call every iteration without allocating.
func MatMulTAInto(dst, a, b *Matrix) {
	checkMul(a, b, "MatMulTAInto", a.Rows, b.Rows)
	n, k, m := a.Cols, a.Rows, b.Cols
	if dst.Rows != n || dst.Cols != m {
		panic(fmt.Sprintf("tensor: MatMulTAInto: dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, n, m))
	}
	if 2*n*k*m >= gemmMinWork {
		gemm(dst,
			gemmOperand{data: a.Data, rowStride: 1, depthStride: a.Cols},
			gemmOperand{data: b.Data, rowStride: 1, depthStride: b.Cols},
			n, m, k)
		return
	}
	matMulTARef(dst, a, b, 0, n)
}

// matMulTARef is the retained Aᵀ·B reference kernel; each output row i
/// gathers contributions a[kk][i] * b[kk][:].
func matMulTARef(dst, a, b *Matrix, lo, hi int) {
	n, k, m := a.Cols, a.Rows, b.Cols
	for i := lo; i < hi; i++ {
		di := dst.Data[i*m : (i+1)*m]
		for j := range di {
			di[j] = 0
		}
	}
	for kk := 0; kk < k; kk++ {
		ak := a.Data[kk*n : (kk+1)*n]
		bk := b.Data[kk*m : (kk+1)*m]
		for i := lo; i < hi; i++ {
			av := ak[i]
			if av == 0 {
				continue
			}
			oi := dst.Data[i*m : (i+1)*m]
			for j, bv := range bk {
				oi[j] += av * bv
			}
		}
	}
}

// MatMulTB returns A·Bᵀ (a is n×k, b is m×k, result n×m). This is the
// input-gradient kernel: dX = dY·Wᵀ.
func MatMulTB(a, b *Matrix) *Matrix {
	checkMul(a, b, "MatMulTB", a.Cols, b.Cols)
	out := New(a.Rows, b.Rows)
	MatMulTBInto(out, a, b)
	return out
}

// MatMulTBInto computes dst = A·Bᵀ into a caller-owned matrix (dst must be
// a.Rows × b.Rows and is overwritten) — the workspace-reusing form of
// MatMulTB.
func MatMulTBInto(dst, a, b *Matrix) {
	checkMul(a, b, "MatMulTBInto", a.Cols, b.Cols)
	n, k, m := a.Rows, a.Cols, b.Rows
	if dst.Rows != n || dst.Cols != m {
		panic(fmt.Sprintf("tensor: MatMulTBInto: dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, n, m))
	}
	if 2*n*k*m >= gemmMinWork {
		gemm(dst,
			gemmOperand{data: a.Data, rowStride: a.Cols, depthStride: 1},
			gemmOperand{data: b.Data, rowStride: b.Cols, depthStride: 1},
			n, m, k)
		return
	}
	matMulTBRef(dst, a, b, 0, n)
}

// matMulTBRef is the retained A·Bᵀ reference kernel.
func matMulTBRef(dst, a, b *Matrix, lo, hi int) {
	k, m := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := dst.Data[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var sum float32
			for kk, av := range ai {
				sum += av * bj[kk]
			}
			oi[j] = sum
		}
	}
}

// Add computes m += other element-wise.
func (m *Matrix) Add(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: Add: shape mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// AddScaled computes m += alpha*other element-wise.
func (m *Matrix) AddScaled(other *Matrix, alpha float32) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: AddScaled: shape mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (m *Matrix) Scale(alpha float32) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// AddRowVec adds vector v (len = Cols) to every row; the bias-add kernel.
func (m *Matrix) AddRowVec(v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVec: length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range v {
			row[j] += b
		}
	}
}

// ColSum returns the per-column sums (len = Cols); the bias-gradient kernel.
func (m *Matrix) ColSum() []float32 {
	out := make([]float32, m.Cols)
	m.ColSumInto(out)
	return out
}

// colSumLineFloats is the column-chunk unit of the parallel ColSumInto
// path: one 64-byte cache line of float32 output. Splitting out[] on any
// finer boundary makes adjacent workers ping-pong the shared line
// (false sharing); chunking whole lines keeps every worker's output
// region disjoint at cache granularity.
const colSumLineFloats = 16

// ColSumInto accumulates per-column sums into out (len = Cols), which is
// zeroed first — the workspace-reusing form of ColSum. Wide matrices
// chunk columns across goroutines in whole cache lines of out (see
// colSumLineFloats); each column always accumulates its rows in ascending
// order, so the result is bitwise-identical for every worker count.
func (m *Matrix) ColSumInto(out []float32) {
	if len(out) != m.Cols {
		panic("tensor: ColSumInto: length mismatch")
	}
	lines := (m.Cols + colSumLineFloats - 1) / colSumLineFloats
	if serialTiles(lines, m.Rows*colSumLineFloats) {
		m.colSumRange(out, 0, m.Cols)
		return
	}
	parallelTiles(lines, m.Rows*colSumLineFloats, func(llo, lhi int) {
		lo, hi := llo*colSumLineFloats, lhi*colSumLineFloats
		if hi > m.Cols {
			hi = m.Cols
		}
		m.colSumRange(out, lo, hi)
	})
}

// colSumRange accumulates columns [lo, hi) of the per-column sums, rows
// ascending.
func (m *Matrix) colSumRange(out []float32, lo, hi int) {
	for j := lo; j < hi; j++ {
		out[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols+lo : i*m.Cols+hi]
		for j, v := range row {
			out[lo+j] += v
		}
	}
}

// ColMean returns per-column means (len = Cols).
func (m *Matrix) ColMean() []float32 {
	out := m.ColSum()
	inv := 1 / float32(m.Rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// ArgmaxRows returns, for each row, the column index of the maximum value.
func (m *Matrix) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bestJ := row[0], 0
		for j, v := range row {
			if v > best {
				best, bestJ = v, j
			}
		}
		out[i] = bestJ
	}
	return out
}

// Norm2 returns the Euclidean norm of all elements (accumulated in float64
// for stability; used by LARS trust ratios).
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Norm2Slice returns the Euclidean norm of a float32 vector.
func Norm2Slice(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}
