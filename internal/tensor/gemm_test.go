package tensor

// Bitwise-equivalence suite for the packed GEMM core (DESIGN.md §14).
//
// Everything downstream of these kernels — the PR-3 determinism gates, the
// corgi2/PLS weight-CRC acceptance runs — assumes MatMul* results are a
// pure function of the operands, independent of micro-kernel, tile
// constants, and worker count. So these tests compare against the retained
// reference kernels with math.Float32bits equality, never a tolerance.

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"plshuffle/internal/rng"
)

// fillMixed fills m with normal variates plus injected exact +0 and -0.
// The pre-blocking kernels special-cased zeros and the padding argument in
// DESIGN.md §14 leans on signed-zero arithmetic, so equivalence tests must
// exercise both zeros explicitly.
func fillMixed(r *rng.Rand, m *Matrix) {
	for i := range m.Data {
		switch r.Intn(12) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = float32(math.Copysign(0, -1))
		default:
			m.Data[i] = r.NormFloat32()
		}
	}
}

func matricesBitwise(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d: got %v (%#08x) want %v (%#08x)",
				label, i, got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// The gemmForced* helpers drive the packed core directly with the same
// effective-operand strides as the public entry points, bypassing the
// gemmMinWork cutoff so small shapes also exercise packing/ragged edges.
func gemmForced(dst, a, b *Matrix) {
	gemm(dst,
		gemmOperand{data: a.Data, rowStride: a.Cols, depthStride: 1},
		gemmOperand{data: b.Data, rowStride: 1, depthStride: b.Cols},
		a.Rows, b.Cols, a.Cols)
}

func gemmForcedTA(dst, a, b *Matrix) {
	gemm(dst,
		gemmOperand{data: a.Data, rowStride: 1, depthStride: a.Cols},
		gemmOperand{data: b.Data, rowStride: 1, depthStride: b.Cols},
		a.Cols, b.Cols, a.Rows)
}

func gemmForcedTB(dst, a, b *Matrix) {
	gemm(dst,
		gemmOperand{data: a.Data, rowStride: a.Cols, depthStride: 1},
		gemmOperand{data: b.Data, rowStride: b.Cols, depthStride: 1},
		a.Rows, b.Rows, a.Cols)
}

// forEachKernel runs f once per registered micro-kernel (SIMD and Go), so
// every host cross-checks every kernel it can execute, not just the
// dispatched one.
func forEachKernel(t *testing.T, f func(t *testing.T)) {
	for _, name := range GemmKernels() {
		t.Run(name, func(t *testing.T) {
			prev, err := SetGemmKernel(name)
			if err != nil {
				t.Fatal(err)
			}
			defer SetGemmKernel(prev)
			f(t)
		})
	}
}

// checkShape verifies all three matmul variants bitwise on one (n, k, m).
func checkShape(t *testing.T, r *rng.Rand, n, k, m int) {
	t.Helper()
	a := New(n, k)
	b := New(k, m)
	fillMixed(r, a)
	fillMixed(r, b)
	got, want := New(n, m), New(n, m)
	gemmForced(got, a, b)
	matMulRef(want, a, b, 0, n)
	matricesBitwise(t, got, want, "gemm")

	at := New(k, n) // effective A is atᵀ
	fillMixed(r, at)
	gemmForcedTA(got, at, b)
	matMulTARef(want, at, b, 0, n)
	matricesBitwise(t, got, want, "gemmTA")

	bt := New(m, k) // effective B is btᵀ
	fillMixed(r, bt)
	gemmForcedTB(got, a, bt)
	matMulTBRef(want, a, bt, 0, n)
	matricesBitwise(t, got, want, "gemmTB")
}

// TestGemmBitwiseExhaustiveSmall sweeps every shape with n, k, m in
// [1, 9]: all the ragged-edge permutations of every MR×NR tile fit in this
// range, for every registered kernel.
func TestGemmBitwiseExhaustiveSmall(t *testing.T) {
	forEachKernel(t, func(t *testing.T) {
		r := rng.New(42)
		for n := 1; n <= 9; n++ {
			for k := 1; k <= 9; k++ {
				for m := 1; m <= 9; m++ {
					checkShape(t, r, n, k, m)
				}
			}
		}
	})
}

// TestGemmBitwiseRagged covers shapes that straddle the blocking
// constants: multiple KC panels (k > 256), multiple MC row blocks
// (n > 128), multiple NC column blocks (m > 512), and ragged remainders
// against every tile width.
func TestGemmBitwiseRagged(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {1, 300, 1}, {8, 256, 16}, {7, 13, 9},
		{31, 63, 15}, {70, 130, 90}, {64, 256, 48}, {16, 1, 16},
		{129, 257, 17}, {130, 300, 70}, {3, 511, 600}, {140, 270, 530},
	}
	forEachKernel(t, func(t *testing.T) {
		r := rng.New(7)
		for _, s := range shapes {
			checkShape(t, r, s[0], s[1], s[2])
		}
	})
}

// TestGemmBitwiseProperty is the property-based sweep from the issue:
// random ragged shapes from 1×1×1 up to 70×130×90, bitwise against the
// reference under the dispatched (probed) kernel.
func TestGemmBitwiseProperty(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw, mRaw uint8) bool {
		n := int(nRaw)%70 + 1
		k := int(kRaw)%130 + 1
		m := int(mRaw)%90 + 1
		r := rng.New(seed)
		a := New(n, k)
		b := New(k, m)
		fillMixed(r, a)
		fillMixed(r, b)
		got, want := New(n, m), New(n, m)
		gemmForced(got, a, b)
		matMulRef(want, a, b, 0, n)
		for i := range got.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGemmParallelBitwiseIdentical pins the row-split independence claim:
// with GOMAXPROCS raised so parallelTiles actually forks, the result is
// bit-for-bit the serial result.
func TestGemmParallelBitwiseIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	r := rng.New(99)
	n, k, m := 300, 200, 180 // 3 MC tiles, work far above minParallelWork
	a := New(n, k)
	b := New(k, m)
	fillMixed(r, a)
	fillMixed(r, b)

	par := New(n, m)
	MatMulInto(par, a, b)

	runtime.GOMAXPROCS(1)
	ser := New(n, m)
	MatMulInto(ser, a, b)
	runtime.GOMAXPROCS(4)

	matricesBitwise(t, par, ser, "parallel vs serial")

	ref := New(n, m)
	matMulRef(ref, a, b, 0, n)
	matricesBitwise(t, par, ref, "parallel vs reference")
}

// TestPublicEntryPointsBitwise drives the public Into entry points (cutoff
// logic included) across the gemmMinWork boundary.
func TestPublicEntryPointsBitwise(t *testing.T) {
	r := rng.New(5)
	for _, s := range [][3]int{{4, 4, 4}, {12, 12, 12}, {40, 33, 29}, {96, 200, 64}} {
		n, k, m := s[0], s[1], s[2]
		a := New(n, k)
		b := New(k, m)
		at := New(k, n)
		bt := New(m, k)
		fillMixed(r, a)
		fillMixed(r, b)
		fillMixed(r, at)
		fillMixed(r, bt)
		got, want := New(n, m), New(n, m)

		MatMulInto(got, a, b)
		matMulRef(want, a, b, 0, n)
		matricesBitwise(t, got, want, "MatMulInto")

		MatMulTAInto(got, at, b)
		matMulTARef(want, at, b, 0, n)
		matricesBitwise(t, got, want, "MatMulTAInto")

		MatMulTBInto(got, a, bt)
		matMulTBRef(want, a, bt, 0, n)
		matricesBitwise(t, got, want, "MatMulTBInto")
	}
}

func TestSetGemmKernelUnknown(t *testing.T) {
	if _, err := SetGemmKernel("definitely-not-a-kernel"); err == nil {
		t.Fatal("SetGemmKernel accepted an unknown name")
	}
	if GemmKernelName() == "" {
		t.Fatal("dispatch left no active kernel")
	}
}

// collectRanges runs a parallel splitter and records every (lo, hi) chunk
// it hands out.
func collectRanges(split func(fn func(lo, hi int))) [][2]int {
	var mu sync.Mutex
	var got [][2]int
	split(func(lo, hi int) {
		mu.Lock()
		got = append(got, [2]int{lo, hi})
		mu.Unlock()
	})
	return got
}

// rangesPartition checks the chunks exactly tile [0, n) with no overlap
// and no empty chunk.
func rangesPartition(t *testing.T, got [][2]int, n int, label string) {
	t.Helper()
	covered := make([]int, n)
	for _, r := range got {
		if r[0] >= r[1] {
			t.Fatalf("%s: empty or inverted chunk %v", label, r)
		}
		for i := r[0]; i < r[1]; i++ {
			if i < 0 || i >= n {
				t.Fatalf("%s: chunk %v outside [0, %d)", label, r, n)
			}
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("%s: index %d covered %d times", label, i, c)
		}
	}
}

// TestParallelRowsDegenerate is the regression test for the rows<=0 and
// rows<workers cases: zero rows must not call fn at all (the old code
// could hand out empty or negative ranges), and tiny row counts must still
// partition exactly.
func TestParallelRowsDegenerate(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	for _, rows := range []int{0, -1} {
		got := collectRanges(func(fn func(lo, hi int)) { parallelRows(rows, 1 << 20, fn) })
		if len(got) != 0 {
			t.Fatalf("parallelRows(%d) called fn with %v", rows, got)
		}
	}
	for _, rows := range []int{1, 2, 3, 7, 8, 9, 63} {
		got := collectRanges(func(fn func(lo, hi int)) { parallelRows(rows, 1<<20, fn) })
		rangesPartition(t, got, rows, "parallelRows")
	}
	for _, tiles := range []int{0, 1, 2, 5, 8, 17} {
		got := collectRanges(func(fn func(lo, hi int)) { parallelTiles(tiles, 1<<20, fn) })
		if tiles == 0 {
			if len(got) != 0 {
				t.Fatalf("parallelTiles(0) called fn with %v", got)
			}
			continue
		}
		rangesPartition(t, got, tiles, "parallelTiles")
	}
}

// TestColSumIntoParallelBitwise checks the cache-line-chunked parallel
// column sums against the serial path (and a plain ascending-row loop) on
// widths that are not multiples of the chunk unit.
func TestColSumIntoParallelBitwise(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	r := rng.New(17)
	for _, shape := range [][2]int{{1024, 100}, {700, 33}, {2048, 16}, {5, 3}, {601, 131}} {
		m := New(shape[0], shape[1])
		fillMixed(r, m)

		par := make([]float32, m.Cols)
		m.ColSumInto(par)

		ser := make([]float32, m.Cols)
		m.colSumRange(ser, 0, m.Cols)

		naive := make([]float32, m.Cols)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				naive[j] += m.At(i, j)
			}
		}
		for j := range par {
			if math.Float32bits(par[j]) != math.Float32bits(ser[j]) {
				t.Fatalf("ColSumInto %v: col %d parallel %v != serial %v", shape, j, par[j], ser[j])
			}
			if math.Float32bits(par[j]) != math.Float32bits(naive[j]) {
				t.Fatalf("ColSumInto %v: col %d %v != naive %v", shape, j, par[j], naive[j])
			}
		}
	}
}

// TestMatMulPackedZeroAllocs pins the arena-backed packed path at zero
// steady-state allocations (the whole point of pooling gemmWS): one warmup
// to grow the arena, then nothing.
func TestMatMulPackedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is meaningless under -race")
	}
	prev := runtime.GOMAXPROCS(1) // the parallel fork allocates by design
	defer runtime.GOMAXPROCS(prev)

	r := rng.New(3)
	a := randomMatrix(r, 96, 200)
	b := randomMatrix(r, 200, 64)
	bt := randomMatrix(r, 64, 200)
	at := randomMatrix(r, 200, 96)
	dst := New(96, 64)

	MatMulInto(dst, a, b) // warmup: grows the pooled arena once
	if n := testing.AllocsPerRun(20, func() { MatMulInto(dst, a, b) }); n != 0 {
		t.Fatalf("MatMulInto allocs/op = %v, want 0", n)
	}
	MatMulTAInto(dst, at, b)
	if n := testing.AllocsPerRun(20, func() { MatMulTAInto(dst, at, b) }); n != 0 {
		t.Fatalf("MatMulTAInto allocs/op = %v, want 0", n)
	}
	MatMulTBInto(dst, a, bt)
	if n := testing.AllocsPerRun(20, func() { MatMulTBInto(dst, a, bt) }); n != 0 {
		t.Fatalf("MatMulTBInto allocs/op = %v, want 0", n)
	}
}

// microRef is the scalar semantics of one packed micro-kernel call: for k
// ascending, each C element adds fl(a·b) — exactly the contract every
// registered kernel must meet bit for bit.
func microRef(kc, mr, nr int, ap, bp, c []float32, ldc int) {
	for k := 0; k < kc; k++ {
		for r := 0; r < mr; r++ {
			av := ap[k*mr+r]
			for j := 0; j < nr; j++ {
				c[r*ldc+j] += av * bp[k*nr+j]
			}
		}
	}
}

// TestMicroKernelsMatchScalar drives every registered kernel's inner
// function directly on packed panels, no driver in between.
func TestMicroKernelsMatchScalar(t *testing.T) {
	r := rng.New(23)
	for _, mk := range gemmKernels {
		for _, kc := range []int{1, 2, 3, 17, 64, 256} {
			ap := make([]float32, kc*mk.mr)
			bp := make([]float32, kc*mk.nr)
			for i := range ap {
				ap[i] = r.NormFloat32()
			}
			for i := range bp {
				bp[i] = r.NormFloat32()
			}
			ldc := mk.nr + 3 // non-trivial row stride
			got := make([]float32, mk.mr*ldc)
			want := make([]float32, mk.mr*ldc)
			for i := range got {
				v := r.NormFloat32()
				got[i], want[i] = v, v
			}
			mk.kern(kc, ap, bp, got, ldc)
			microRef(kc, mk.mr, mk.nr, ap, bp, want, ldc)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%s kc=%d: element %d: got %v want %v", mk.name, kc, i, got[i], want[i])
				}
			}
		}
	}
}
