//go:build !amd64 || purego

package tensor

// registerAsmKernels is a no-op on architectures without an assembly
// micro-kernel (or with the purego build tag): dispatch falls through to
// the portable register-tiled Go kernels, which compute bit-for-bit the
// same results.
func registerAsmKernels() {}
