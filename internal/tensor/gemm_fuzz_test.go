package tensor

// Fuzz target for the packed micro-kernels: feed raw fuzz bytes in as
// float32 panels (sanitized to finite values — the bitwise contract in
// DESIGN.md §14 is scoped to finite inputs; NaN payload propagation is
// explicitly outside it) and require every registered kernel to match the
// scalar reduction bit for bit. Run continuously with
//
//	go test ./internal/tensor/ -fuzz FuzzMicroKernels
//
// CI runs a -fuzztime smoke of the same target.

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzFloat decodes 4 bytes into a finite float32, folding NaN/Inf to a
// small deterministic stand-in so the case still exercises the kernel.
func fuzzFloat(b []byte) float32 {
	v := math.Float32frombits(binary.LittleEndian.Uint32(b))
	if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		return float32(len(b)%7) - 3
	}
	return v
}

func FuzzMicroKernels(f *testing.F) {
	f.Add(uint8(1), []byte{})
	f.Add(uint8(17), []byte{0, 0, 0, 0, 0, 0, 0, 0x80, 1, 2, 3, 4})
	f.Add(uint8(64), []byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0x00, 0x80, 0xff})
	f.Fuzz(func(t *testing.T, kcRaw uint8, raw []byte) {
		kc := int(kcRaw)%96 + 1
		at := func(i int) float32 {
			if len(raw) < 4 {
				return float32(i%5) - 2
			}
			off := (i * 4) % (len(raw) - 3)
			return fuzzFloat(raw[off : off+4])
		}
		for _, mk := range gemmKernels {
			ap := make([]float32, kc*mk.mr)
			bp := make([]float32, kc*mk.nr)
			for i := range ap {
				ap[i] = at(i)
			}
			for i := range bp {
				bp[i] = at(i + len(ap))
			}
			ldc := mk.nr + 1
			got := make([]float32, mk.mr*ldc)
			want := make([]float32, mk.mr*ldc)
			for i := range got {
				v := at(i + len(ap) + len(bp))
				got[i], want[i] = v, v
			}
			mk.kern(kc, ap, bp, got, ldc)
			microRef(kc, mk.mr, mk.nr, ap, bp, want, ldc)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%s kc=%d: element %d: got %x want %x",
						mk.name, kc, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	})
}
