// GEMM kernel dispatch (DESIGN.md §14): the micro-kernel is selected once
// at startup by a capability probe. Every registered kernel is
// bitwise-equivalent on finite inputs (same per-element reduction order,
// no FMA contraction), so the choice is purely a throughput decision —
// training results do not depend on which host ran where.
//
// Selection order: architecture-specific SIMD paths registered by the
// build-tagged probe (AVX-512F > AVX2 > SSE on amd64), then the portable
// register-tiled Go kernels (8×4, then 4×4). The PLS_GEMM_KERNEL
// environment variable forces a specific kernel by name; tests use
// SetGemmKernel to cross-check all of them against the reference.
package tensor

import (
	"fmt"
	"os"
)

// gemmKernels is the preference-ordered kernel registry: asm kernels are
// prepended by the per-architecture registerAsmKernels, the portable Go
// kernels are always present and always last.
var gemmKernels []*microKernel

// curKernel is the dispatched kernel. It is set once during init (and by
// SetGemmKernel in tests); the hot path reads it without synchronization.
var curKernel *microKernel

func init() {
	registerAsmKernels()
	gemmKernels = append(gemmKernels,
		&microKernel{name: "go8x4", mr: 8, nr: 4, kern: microGo8x4},
		&microKernel{name: "go4x4", mr: 4, nr: 4, kern: microGo4x4},
	)
	curKernel = gemmKernels[0]
	if want := os.Getenv("PLS_GEMM_KERNEL"); want != "" {
		if _, err := SetGemmKernel(want); err != nil {
			// An unknown name falls back to the probed default rather than
			// failing startup: the env knob is a tuning aid, not config.
			fmt.Fprintf(os.Stderr, "tensor: ignoring PLS_GEMM_KERNEL: %v\n", err)
		}
	}
}

func activeKernel() *microKernel { return curKernel }

// GemmKernelName reports the dispatched micro-kernel.
func GemmKernelName() string { return curKernel.name }

// GemmKernels lists every kernel available on this host, in dispatch
// preference order.
func GemmKernels() []string {
	out := make([]string, len(gemmKernels))
	for i, k := range gemmKernels {
		out[i] = k.name
	}
	return out
}

// SetGemmKernel selects the named micro-kernel and returns the previous
// selection. All kernels are bitwise-equivalent; this exists for tests and
// benchmarks. Not safe to call concurrently with running matmuls.
func SetGemmKernel(name string) (prev string, err error) {
	prev = curKernel.name
	for _, k := range gemmKernels {
		if k.name == name {
			curKernel = k
			return prev, nil
		}
	}
	return prev, fmt.Errorf("tensor: unknown GEMM kernel %q (have %v)", name, GemmKernels())
}
