package perfmodel

import (
	"testing"

	"plshuffle/internal/cluster"
	"plshuffle/internal/shuffle"
)

// imagenet1k returns the ImageNet-1K/ResNet50 workload on ABCI that Figures
// 9 and 10 measure.
func imagenet1k(t testing.TB, model string) Workload {
	t.Helper()
	p, err := Profile(model)
	if err != nil {
		t.Fatal(err)
	}
	return Workload{N: 1_281_167, BytesPerSample: 117 << 10, LocalBatch: 32, Model: p}
}

func deepcam(t testing.TB) Workload {
	t.Helper()
	p, err := Profile("deepcam")
	if err != nil {
		t.Fatal(err)
	}
	return Workload{N: 121_266, BytesPerSample: 70 << 20, LocalBatch: 8, Model: p, Sequential: true}
}

func epoch(t testing.TB, mc cluster.Machine, w Workload, workers int, s shuffle.Strategy) Breakdown {
	t.Helper()
	b, err := EpochTime(mc, w, workers, s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestProfileLookup(t *testing.T) {
	for _, name := range []string{"resnet50", "densenet161", "wideresnet28", "inceptionv4", "deepcam"} {
		p, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.ParamBytes <= 0 || p.ComputePerSample <= 0 {
			t.Fatalf("%s profile incomplete: %+v", name, p)
		}
	}
	if _, err := Profile("vgg"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestValidation(t *testing.T) {
	mc := cluster.ABCI()
	w := imagenet1k(t, "resnet50")
	if _, err := EpochTime(mc, w, 0, shuffle.LocalShuffling()); err == nil {
		t.Fatal("zero workers accepted")
	}
	bad := w
	bad.N = 0
	if _, err := EpochTime(mc, bad, 8, shuffle.LocalShuffling()); err == nil {
		t.Fatal("bad workload accepted")
	}
	if _, err := EpochTime(mc, w, 8, shuffle.Partial(2)); err == nil {
		t.Fatal("bad strategy accepted")
	}
}

// TestFig9GlobalVsLocalRatio checks the headline Figure 9 claim: "global
// shuffling on 128 workers is almost 5x slower than local shuffling".
func TestFig9GlobalVsLocalRatio(t *testing.T) {
	mc := cluster.ABCI()
	w := imagenet1k(t, "resnet50")
	gs := epoch(t, mc, w, 128, shuffle.GlobalShuffling())
	ls := epoch(t, mc, w, 128, shuffle.LocalShuffling())
	ratio := gs.Total() / ls.Total()
	if ratio < 3 || ratio > 8 {
		t.Fatalf("GS/LS epoch-time ratio at 128 workers = %.2f, paper reports ~5x", ratio)
	}
}

// TestFig10IOCalibration checks the Section V-F measurements at 512
// workers: DenseNet LS reads in ~8 s, GS averages ~19.6 s with a spread
// reaching ~142 s on the slowest worker.
func TestFig10IOCalibration(t *testing.T) {
	mc := cluster.ABCI()
	w := imagenet1k(t, "densenet161")
	ls := epoch(t, mc, w, 512, shuffle.LocalShuffling())
	if ls.IO < 5 || ls.IO > 12 {
		t.Fatalf("LS I/O at 512 = %.1f s, paper reports ~8 s", ls.IO)
	}
	gs := epoch(t, mc, w, 512, shuffle.GlobalShuffling())
	if gs.IO < 15 || gs.IO > 40 {
		t.Fatalf("GS average I/O at 512 = %.1f s, paper reports ~19.6 s", gs.IO)
	}
	if gs.IOSlowest < 100 || gs.IOSlowest > 250 {
		t.Fatalf("GS slowest I/O at 512 = %.1f s, paper reports ~142 s", gs.IOSlowest)
	}
	spread := gs.IOSlowest / gs.IO
	if spread < 5 || spread > 10 {
		t.Fatalf("GS straggler spread = %.1fx, paper implies ~7x", spread)
	}
	// The stragglers inflate the gradient-exchange wait (paper: ~70 s).
	if gs.GEWU < 50 || gs.GEWU > 250 {
		t.Fatalf("GS GE+WU at 512 = %.1f s, paper reports ~70 s", gs.GEWU)
	}
	if ls.GEWU > 20 {
		t.Fatalf("LS GE+WU at 512 = %.1f s, should be small", ls.GEWU)
	}
}

// TestFig9PartialMatchesLocalUntil512 checks that partial-0.1 tracks local
// shuffling up to 512 workers, then degrades at 1,024 and 2,048 as the
// overlap window shrinks (Section V-F).
func TestFig9PartialMatchesLocalUntil512(t *testing.T) {
	mc := cluster.ABCI()
	w := imagenet1k(t, "resnet50")
	ratioAt := func(workers int) float64 {
		p := epoch(t, mc, w, workers, shuffle.Partial(0.1))
		l := epoch(t, mc, w, workers, shuffle.LocalShuffling())
		return p.Total() / l.Total()
	}
	for _, m := range []int{16, 32, 64, 128, 256, 512} {
		if r := ratioAt(m); r > 1.10 {
			t.Errorf("partial-0.1 / local at %d workers = %.3f, want ~1", m, r)
		}
	}
	r1024, r2048 := ratioAt(1024), ratioAt(2048)
	if r1024 < 1.03 {
		t.Errorf("partial-0.1 / local at 1024 = %.3f, paper shows degradation", r1024)
	}
	if r2048 < 1.15 {
		t.Errorf("partial-0.1 / local at 2048 = %.3f, paper shows significant degradation", r2048)
	}
	if r2048 <= r1024 {
		t.Errorf("degradation should grow with scale: 1024=%.3f 2048=%.3f", r1024, r2048)
	}
}

// TestFig10ExchangeGrowsWithQ checks the Figure 10 sweep at 512 workers:
// FW+BW constant, EXCHANGE growing with Q, total degradation bounded by
// ~1.37x.
func TestFig10ExchangeGrowsWithQ(t *testing.T) {
	mc := cluster.ABCI()
	for _, model := range []string{"resnet50", "densenet161"} {
		w := imagenet1k(t, model)
		ls := epoch(t, mc, w, 512, shuffle.LocalShuffling())
		prevExch := -1.0
		maxRatio := 0.0
		for _, q := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
			b := epoch(t, mc, w, 512, shuffle.Partial(q))
			if b.FWBW != ls.FWBW {
				t.Fatalf("%s: FW+BW changed with Q", model)
			}
			if b.IO != ls.IO {
				t.Fatalf("%s: PLS I/O should equal LS I/O (same local volume)", model)
			}
			if b.Exchange < prevExch {
				t.Fatalf("%s: EXCHANGE not monotone in Q: %f after %f", model, b.Exchange, prevExch)
			}
			prevExch = b.Exchange
			if r := b.Total() / ls.Total(); r > maxRatio {
				maxRatio = r
			}
		}
		if maxRatio < 1.05 || maxRatio > 1.5 {
			t.Errorf("%s: max PLS degradation = %.2fx, paper reports up to 1.37x", model, maxRatio)
		}
	}
}

// TestFig7bDeepCAM checks that PLS epoch times on DeepCAM sit well below
// the paper's PFS lower-bound line ("we still perform multiple times
// better"), with the exchange overhead growing with Q.
func TestFig7bDeepCAM(t *testing.T) {
	mc := cluster.ABCI()
	w := deepcam(t)
	bound := PFSLowerBound(mc, int64(w.N)*w.BytesPerSample)
	if bound < 60 || bound > 140 {
		t.Fatalf("DeepCAM PFS lower bound = %.0f s; 8.2 TiB over a ~100 GB/s peak should be ~90 s", bound)
	}
	prev := -1.0
	for _, q := range []float64{0.25, 0.5, 0.9} {
		b := epoch(t, mc, w, 1024, shuffle.Partial(q))
		if b.Total() >= bound/1.5 {
			t.Errorf("PLS q=%v total %.0f s not multiple times better than bound %.0f s", q, b.Total(), bound)
		}
		if b.Exchange < prev {
			t.Errorf("DeepCAM exchange overhead should grow with Q")
		}
		if b.Exchange <= 0 {
			t.Errorf("DeepCAM q=%v: exchange overhead should be noticeable", q)
		}
		prev = b.Exchange
	}
	ls := epoch(t, mc, w, 1024, shuffle.LocalShuffling())
	if ls.Exchange != 0 {
		t.Fatal("LS has exchange cost")
	}
}

func TestStorageRequired(t *testing.T) {
	w := imagenet1k(t, "resnet50")
	total := int64(w.N) * w.BytesPerSample
	if got := StorageRequired(w, 512, shuffle.GlobalShuffling()); got != total {
		t.Fatalf("GS storage = %d, want full dataset %d", got, total)
	}
	if got := StorageRequired(w, 512, shuffle.LocalShuffling()); got != total/512 {
		t.Fatalf("LS storage = %d, want %d", got, total/512)
	}
	pls := StorageRequired(w, 512, shuffle.Partial(0.3))
	if pls <= total/512 || pls > total/512*2 {
		t.Fatalf("PLS storage = %d, want within (N/M, 2N/M]", pls)
	}
}

// TestStorageFeasibility reproduces the storage arguments: DeepCAM cannot
// be replicated for GS on ABCI; ImageNet-1K cannot be replicated on
// Fugaku's 50 GB slices but its LS partition fits at 4,096 workers
// (0.03%·(1+Q) of the dataset, Section V-E).
func TestStorageFeasibility(t *testing.T) {
	abci, fugaku := cluster.ABCI(), cluster.Fugaku()
	dc := deepcam(t)
	if FitsLocalStorage(abci, dc, 1024, shuffle.GlobalShuffling()) {
		t.Fatal("DeepCAM GS should not fit ABCI local storage")
	}
	if !FitsLocalStorage(abci, dc, 1024, shuffle.Partial(0.9)) {
		t.Fatal("DeepCAM PLS should fit ABCI local storage at 1024 workers")
	}
	in := imagenet1k(t, "resnet50")
	if FitsLocalStorage(fugaku, in, 4096, shuffle.GlobalShuffling()) {
		t.Fatal("ImageNet-1K replication should not fit Fugaku's 50 GB slice")
	}
	if !FitsLocalStorage(fugaku, in, 4096, shuffle.Partial(0.1)) {
		t.Fatal("ImageNet-1K partial-0.1 should fit Fugaku at 4096 workers")
	}
	// Section V-E: at 4,096 workers with Q=0.1 each worker stores ~0.03%
	// of the dataset.
	frac := float64(StorageRequired(in, 4096, shuffle.Partial(0.1))) / float64(int64(in.N)*in.BytesPerSample)
	if frac < 0.0002 || frac > 0.0004 {
		t.Fatalf("per-worker storage fraction = %.5f%%, paper says ~0.03%%", frac*100)
	}
}

func TestEpochTimeShrinksWithWorkers(t *testing.T) {
	mc := cluster.ABCI()
	w := imagenet1k(t, "resnet50")
	prev := 1e18
	for _, m := range []int{16, 64, 256, 1024} {
		b := epoch(t, mc, w, m, shuffle.LocalShuffling())
		if b.Total() >= prev {
			t.Fatalf("LS epoch time not shrinking with workers at %d", m)
		}
		prev = b.Total()
	}
}

func TestPartialQZeroEqualsLocal(t *testing.T) {
	mc := cluster.ABCI()
	w := imagenet1k(t, "resnet50")
	p := epoch(t, mc, w, 128, shuffle.Partial(0))
	l := epoch(t, mc, w, 128, shuffle.LocalShuffling())
	if p.Total() != l.Total() {
		t.Fatalf("partial-0 %.2f != local %.2f", p.Total(), l.Total())
	}
}

func BenchmarkEpochTime(b *testing.B) {
	mc := cluster.ABCI()
	w := imagenet1k(b, "resnet50")
	for i := 0; i < b.N; i++ {
		if _, err := EpochTime(mc, w, 512, shuffle.Partial(0.3)); err != nil {
			b.Fatal(err)
		}
	}
}
