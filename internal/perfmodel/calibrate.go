package perfmodel

// Kernel-calibrated compute profiles. The paper-machine profiles in
// perfmodel.go describe V100 workers; when the model costs a run of THIS
// repo's own trainer (the event simulator replaying a local configuration,
// capacity planning for the TCP harness), the per-sample compute time must
// come from the machine actually executing the kernels. This file derives
// it the same way the paper profiles are derived — flop count divided by
// achieved throughput — but measures the throughput live on the dispatched
// GEMM kernel (internal/tensor, DESIGN.md §14) instead of reading it off a
// datasheet.

import (
	"time"

	"plshuffle/internal/nn"
	"plshuffle/internal/tensor"
)

// MeasuredGFLOPS times forward-shaped matmuls (batch×in · in×out) for each
// consecutive layer pair of dims on the dispatched GEMM kernel and returns
// the achieved throughput in GFLOP/s. Measuring at the training shapes —
// not a square peak-throughput shape — keeps the calibration honest for
// skinny batch panels, which run well below large-GEMM rates. reps is
// raised as needed so the timed region is long enough to trust.
func MeasuredGFLOPS(batch int, dims []int, reps int) float64 {
	if batch <= 0 || len(dims) < 2 {
		return 0
	}
	if reps < 1 {
		reps = 1
	}
	type layer struct{ x, w, y *tensor.Matrix }
	layers := make([]layer, 0, len(dims)-1)
	var flopsPerRep float64
	for i := 0; i+1 < len(dims); i++ {
		in, out := dims[i], dims[i+1]
		l := layer{x: tensor.New(batch, in), w: tensor.New(in, out), y: tensor.New(batch, out)}
		for j := range l.x.Data {
			l.x.Data[j] = float32(j%13) * 0.1
		}
		for j := range l.w.Data {
			l.w.Data[j] = float32(j%7) * 0.05
		}
		layers = append(layers, l)
		flopsPerRep += 2 * float64(batch) * float64(in) * float64(out)
	}
	run := func(n int) time.Duration {
		t0 := time.Now()
		for r := 0; r < n; r++ {
			for _, l := range layers {
				tensor.MatMulInto(l.y, l.x, l.w)
			}
		}
		return time.Since(t0)
	}
	run(1) // warm the packed-workspace pool
	el := run(reps)
	// Stretch short measurements: below ~20ms the timer noise and one-off
	// effects dominate.
	for el < 20*time.Millisecond && reps < 1<<20 {
		reps *= 4
		el = run(reps)
	}
	sec := el.Seconds()
	if sec <= 0 {
		return 0
	}
	return flopsPerRep * float64(reps) / sec / 1e9
}

// mlpDims flattens a ModelSpec into its Linear-layer dimension chain.
func mlpDims(spec nn.ModelSpec) []int {
	dims := make([]int, 0, len(spec.Hidden)+2)
	dims = append(dims, spec.InputDim)
	dims = append(dims, spec.Hidden...)
	return append(dims, spec.Classes)
}

// MLPFlopsPerSample returns the forward+backward matmul flop count per
// sample of the MLP proxy: 2·in·out forward per Linear, plus 2·in·out each
// for the weight-gradient (xᵀ·dy) and input-gradient (dy·Wᵀ) matmuls — 6×
// the forward count. Normalization, activations, and bias adds are O(dim)
// per layer and omitted; the matmuls dominate.
func MLPFlopsPerSample(spec nn.ModelSpec) float64 {
	dims := mlpDims(spec)
	var f float64
	for i := 0; i+1 < len(dims); i++ {
		f += 6 * float64(dims[i]) * float64(dims[i+1])
	}
	return f
}

// MLPParamBytes returns the float32 parameter volume of the MLP proxy
// (weights, biases, and the per-feature scale/shift of a normalization
// layer when the spec uses one) — the gradient-allreduce payload.
func MLPParamBytes(spec nn.ModelSpec) int64 {
	dims := mlpDims(spec)
	var n int64
	for i := 0; i+1 < len(dims); i++ {
		n += int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	if spec.BatchNorm || spec.Norm == nn.NormBatch || spec.Norm == nn.NormGroup {
		for _, h := range spec.Hidden {
			n += 2 * int64(h)
		}
	}
	return 4 * n
}

// CalibratedProfile builds a ModelProfile for spec on the machine running
// this process: per-sample compute is the proxy's flop count divided by
// the throughput the dispatched GEMM kernel actually achieves at the
// training batch shape. This replaces any hard-coded seconds-per-sample
// guess for local runs — when the kernels get faster, the model follows.
func CalibratedProfile(spec nn.ModelSpec, batch int) (ModelProfile, error) {
	if err := spec.Validate(); err != nil {
		return ModelProfile{}, err
	}
	if batch <= 0 {
		batch = 16
	}
	gf := MeasuredGFLOPS(batch, mlpDims(spec), 8)
	if gf <= 0 {
		return ModelProfile{}, errNoThroughput
	}
	return ModelProfile{
		Name:             spec.Name + "-calibrated",
		ParamBytes:       MLPParamBytes(spec),
		ComputePerSample: MLPFlopsPerSample(spec) / (gf * 1e9),
	}, nil
}
