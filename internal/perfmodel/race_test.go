//go:build race

package perfmodel

// raceEnabled reports that this test binary was built with -race. The
// calibration cross-validation compares wall-clock timings; race
// instrumentation slows the two sides by different factors, so the
// comparison is skipped.
const raceEnabled = true
