package perfmodel

import (
	"testing"
	"time"

	"plshuffle/internal/nn"
	"plshuffle/internal/rng"
	"plshuffle/internal/tensor"
)

var calSmall = nn.ModelSpec{
	Name: "cal-small", InputDim: 256, Hidden: []int{256}, Classes: 10,
}

var calLarge = nn.ModelSpec{
	Name: "cal-large", InputDim: 256, Hidden: []int{1024, 1024}, Classes: 10,
}

func TestMLPFlopsAndParams(t *testing.T) {
	// 6·(256·256 + 256·10) forward+backward matmul flops.
	if got, want := MLPFlopsPerSample(calSmall), 6.0*(256*256+256*10); got != want {
		t.Fatalf("MLPFlopsPerSample = %v, want %v", got, want)
	}
	// Weights + biases, no norm layers in the spec.
	if got, want := MLPParamBytes(calSmall), int64(4*(256*256+256+256*10+10)); got != want {
		t.Fatalf("MLPParamBytes = %d, want %d", got, want)
	}
	withBN := calSmall
	withBN.BatchNorm = true
	if got, want := MLPParamBytes(withBN), int64(4*(256*256+256+256*10+10+2*256)); got != want {
		t.Fatalf("MLPParamBytes with BatchNorm = %d, want %d", got, want)
	}
}

func TestCalibratedProfileOrdering(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-based calibration under -race")
	}
	small, err := CalibratedProfile(calSmall, 16)
	if err != nil {
		t.Fatal(err)
	}
	large, err := CalibratedProfile(calLarge, 16)
	if err != nil {
		t.Fatal(err)
	}
	if small.ComputePerSample <= 0 || large.ComputePerSample <= 0 {
		t.Fatalf("non-positive calibrated compute: %v, %v", small.ComputePerSample, large.ComputePerSample)
	}
	if small.ComputePerSample >= large.ComputePerSample {
		t.Fatalf("calibration ordering inverted: small %v >= large %v",
			small.ComputePerSample, large.ComputePerSample)
	}
	if small.ParamBytes >= large.ParamBytes {
		t.Fatalf("param ordering inverted: %d >= %d", small.ParamBytes, large.ParamBytes)
	}
}

// timedPerSample trains the REAL model (forward, loss, backward) for iters
// mini-batches and returns measured seconds per sample.
func timedPerSample(t *testing.T, spec nn.ModelSpec, batch, iters int) float64 {
	t.Helper()
	model, err := spec.Build(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ce nn.SoftmaxCrossEntropy
	r := rng.New(9)
	x := tensor.New(batch, spec.InputDim)
	labels := make([]int, batch)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	for i := range labels {
		labels[i] = r.Intn(spec.Classes)
	}
	step := func() {
		logits := model.Forward(x, true)
		ce.Forward(logits, labels)
		model.Backward(ce.Backward())
	}
	step() // size the workspaces outside the timed region
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		step()
	}
	return time.Since(t0).Seconds() / float64(iters*batch)
}

// TestCalibrationCrossValidatesRealEpoch is the satellite's teeth: the
// calibrated per-sample compute must track a real timed training epoch on
// the same machine. The model omits activation/normalization/loss work and
// the backward pass's transposed-matmul shapes, so the comparison asserts
// ordering and a generous agreement band, not equality.
func TestCalibrationCrossValidatesRealEpoch(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-based cross-validation under -race")
	}
	const batch = 16
	for _, spec := range []nn.ModelSpec{calSmall, calLarge} {
		prof, err := CalibratedProfile(spec, batch)
		if err != nil {
			t.Fatal(err)
		}
		real := timedPerSample(t, spec, batch, 40)
		ratio := real / prof.ComputePerSample
		t.Logf("%s: modeled %.3gs/sample, measured %.3gs/sample (ratio %.2f)", spec.Name, prof.ComputePerSample, real, ratio)
		// The real step can only be slower than the matmul-only model, and
		// on any sane machine not by more than ~10x.
		if ratio < 0.8 {
			t.Errorf("%s: real epoch faster than the matmul-only model (ratio %.2f) — calibration overestimates compute", spec.Name, ratio)
		}
		if ratio > 10 {
			t.Errorf("%s: real epoch %.1fx the model — calibration lost touch with the kernels", spec.Name, ratio)
		}
	}
	// Ordering: the wider model must be slower both modeled and measured.
	ps, _ := CalibratedProfile(calSmall, batch)
	pl, _ := CalibratedProfile(calLarge, batch)
	rs := timedPerSample(t, calSmall, batch, 40)
	rl := timedPerSample(t, calLarge, batch, 40)
	if !(ps.ComputePerSample < pl.ComputePerSample && rs < rl) {
		t.Fatalf("ordering broken: modeled %v < %v = %v, measured %v < %v = %v",
			ps.ComputePerSample, pl.ComputePerSample, ps.ComputePerSample < pl.ComputePerSample,
			rs, rl, rs < rl)
	}
}
