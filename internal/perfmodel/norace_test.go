//go:build !race

package perfmodel

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
