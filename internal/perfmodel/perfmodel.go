// Package perfmodel is the analytic epoch-time model that regenerates the
// paper's performance results (Figures 7b, 9, and 10). The paper's own
// global-shuffling number for DeepCAM is exactly this kind of model ("a
// lower bound estimate based on the theoretical peak bandwidth of the
// PFS"), so an analytic model is the faithful substitute for the authors'
// 1,088-node testbed.
//
// The model decomposes an epoch into the four phases of Figure 10:
//
//	IO       — reading the worker's N/M samples (local SSD or PFS)
//	EXCHANGE — the exposed (non-overlapped) part of the PLS sample exchange
//	FW+BW    — forward and backward propagation
//	GE+WU    — gradient exchange and weight update, including the
//	           collective's wait for I/O stragglers under global shuffling
//
// Machine parameters live in internal/cluster and are calibrated against
// the paper's reported measurements: LS reads its 512-worker ImageNet share
// in ~8 s, GS averages ~20 s with an 11.9–142 s spread, the GS gradient
// exchange inflates to ~70+ s from straggler waiting, GS is ~5x slower
// overall at 128 workers, and partial-0.1 matches LS up to 512 workers but
// degrades at 1,024–2,048 where only 40 and 20 iterations per epoch remain
// to overlap with (Section V-F).
package perfmodel

import (
	"fmt"
	"math"

	"plshuffle/internal/cluster"
	"plshuffle/internal/shuffle"
)

// ModelProfile carries the two numbers the performance model needs about a
// network: the gradient volume per allreduce and the per-sample
// forward+backward compute time on one worker of the target machine.
type ModelProfile struct {
	Name             string
	ParamBytes       int64
	ComputePerSample float64 // seconds
}

// paperProfile derives a model's per-sample compute the same way the
// calibrated local profiles do (calibrate.go): a per-sample flop count
// divided by an achieved-throughput figure, instead of an opaque
// seconds-per-sample constant. FlopsPerSample is forward+backward (≈3×
// the published forward inference count); EffectiveGFLOPS is the
// throughput that reproduces the per-GPU training rates published for an
// ABCI V100 worker — well under the datasheet peak, as real per-model
// efficiency always is.
type paperProfile struct {
	ParamBytes      int64
	FlopsPerSample  float64
	EffectiveGFLOPS float64
}

// profiles approximate the paper's models on an ABCI V100 worker
// (parameters x 4 bytes).
var profiles = map[string]paperProfile{
	"resnet50":     {ParamBytes: 102e6, FlopsPerSample: 12.3e9, EffectiveGFLOPS: 1447},
	"densenet161":  {ParamBytes: 115e6, FlopsPerSample: 23.4e9, EffectiveGFLOPS: 1671},
	"wideresnet28": {ParamBytes: 146e6, FlopsPerSample: 15.8e9, EffectiveGFLOPS: 2633},
	"inceptionv4":  {ParamBytes: 170e6, FlopsPerSample: 36.9e9, EffectiveGFLOPS: 3075},
	"deepcam":      {ParamBytes: 225e6, FlopsPerSample: 130e9, EffectiveGFLOPS: 1300},
}

// errNoThroughput reports a failed throughput measurement.
var errNoThroughput = fmt.Errorf("perfmodel: throughput measurement returned no signal")

// Profile returns the performance profile for one of the paper's models,
// with compute derived as flops / effective throughput.
func Profile(name string) (ModelProfile, error) {
	p, ok := profiles[name]
	if !ok {
		return ModelProfile{}, fmt.Errorf("perfmodel: unknown model %q", name)
	}
	return ModelProfile{
		Name:             name,
		ParamBytes:       p.ParamBytes,
		ComputePerSample: p.FlopsPerSample / (p.EffectiveGFLOPS * 1e9),
	}, nil
}

// Workload describes one training configuration to cost.
type Workload struct {
	N              int   // training samples
	BytesPerSample int64 // real on-disk sample size
	LocalBatch     int   // per-worker mini-batch b
	Model          ModelProfile
	// Sequential marks large-file datasets (DeepCAM) whose local reads run
	// at the SSD's sequential rate instead of the small-file+decode rate.
	Sequential bool
	// ExchangeGroupSize, when non-zero, models the hierarchical two-level
	// exchange (Section V-F's proposed remedy): per-slot traffic is
	// aligned into M/groupSize group-pairs, so the congestion and
	// synchronization terms scale with the group count instead of the full
	// world size.
	ExchangeGroupSize int
}

// Validate reports configuration errors.
func (w Workload) Validate() error {
	if w.N <= 0 || w.BytesPerSample <= 0 || w.LocalBatch <= 0 {
		return fmt.Errorf("perfmodel: workload fields must be positive: N=%d bytes=%d b=%d", w.N, w.BytesPerSample, w.LocalBatch)
	}
	if w.Model.ComputePerSample <= 0 || w.Model.ParamBytes <= 0 {
		return fmt.Errorf("perfmodel: model profile %q incomplete", w.Model.Name)
	}
	return nil
}

// Breakdown is the Figure 10 decomposition of one epoch, in seconds.
type Breakdown struct {
	IO        float64 // average per-worker sample read time
	IOSlowest float64 // slowest worker's read time (straggler)
	Exchange  float64 // exposed PLS exchange overhead
	FWBW      float64 // forward + backward propagation
	GEWU      float64 // gradient exchange + weight update (incl. straggler wait)
}

// Total returns the modeled epoch time.
func (b Breakdown) Total() float64 { return b.IO + b.Exchange + b.FWBW + b.GEWU }

// overlapIterRef is the iteration count below which exchange/compute
// overlap loses effectiveness; at 1,024 and 2,048 ABCI workers the paper
// observes 40 and 20 iterations per epoch and attributes the partial-0.1
// slowdown to the shrunken overlap window.
const overlapIterRef = 50.0

// overlapCap bounds how much of the exchange even a long epoch can hide;
// the residue reproduces the visible EXCHANGE bars of Figure 10.
const overlapCap = 0.5

// EpochTime models one epoch of synchronous data-parallel SGD with the
// given shuffling strategy on workers ranks of machine mc.
func EpochTime(mc cluster.Machine, w Workload, workers int, strat shuffle.Strategy) (Breakdown, error) {
	if err := w.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := strat.Validate(); err != nil {
		return Breakdown{}, err
	}
	if workers <= 0 {
		return Breakdown{}, fmt.Errorf("perfmodel: workers must be positive, got %d", workers)
	}
	spw := float64(w.N) / float64(workers) // samples per worker per epoch
	iters := spw / float64(w.LocalBatch)
	if iters < 1 {
		iters = 1
	}
	var b Breakdown
	b.FWBW = spw * w.Model.ComputePerSample

	// Gradient exchange: one ring allreduce of the gradient volume per
	// iteration (2x traffic for reduce-scatter + allgather).
	b.GEWU = iters * 2 * float64(w.Model.ParamBytes) / mc.AllreduceBW

	switch strat.Kind {
	case shuffle.Global:
		// Every worker reads its epoch share from the PFS: per-client rate
		// is the smaller of the client ceiling and an even share of the
		// effective aggregate, plus a metadata operation per sample file.
		rate := math.Min(mc.PFSPerClientBW, mc.PFSEffectiveBW/float64(workers))
		b.IO = spw*float64(w.BytesPerSample)/rate + spw*mc.PFSMetadataCost
		b.IOSlowest = b.IO * (1 + mc.StragglerCoef*math.Sqrt(float64(workers)))
		// Workers wait for each other in the gradient collectives; the
		// slowest reader delays everyone (Section V-F's 70 s GE average).
		b.GEWU += b.IOSlowest - b.IO
	case shuffle.Local, shuffle.PartialLocal, shuffle.Corgi2:
		// Corgi2's steady-state read path is the node-local tier (its PFS
		// miss traffic depends on the cache budget — model that dimension
		// with CachedEpochReadTime).
		localBW := mc.LocalReadBW
		if w.Sequential {
			localBW = mc.LocalSeqBW
		}
		b.IO = spw * float64(w.BytesPerSample) / localBW
		b.IOSlowest = b.IO
		if strat.Kind == shuffle.PartialLocal && strat.Q > 0 {
			k := float64(shuffle.Slots(strat.Q, w.N, workers))
			// Congestion and synchronization scale with the number of
			// independent communication endpoints: the full world for the
			// flat exchange, the group count for the hierarchical one.
			endpoints := float64(workers)
			if w.ExchangeGroupSize > 0 && workers > w.ExchangeGroupSize {
				endpoints = float64(workers) / float64(w.ExchangeGroupSize)
			}
			congest := 1 + mc.ExchangeCongest*math.Log2(endpoints)
			tExch := k*float64(w.BytesPerSample)/(mc.InjectionBW/congest) +
				k*mc.ExchangeLatency*congest +
				endpoints*mc.ExchangeSyncCost
			// Overlap with forward/backward (Figure 4): effectiveness is
			// capped and shrinks when few iterations remain to hide behind.
			overlapEff := overlapCap * math.Min(1, iters/overlapIterRef)
			exposed := math.Max(tExch-overlapEff*b.FWBW, tExch*(1-overlapEff))
			b.Exchange = exposed
		}
	}
	return b, nil
}

// CacheWorkload describes one rank's epoch read through the storage
// hierarchy (the Corgi2 path): EpochBytes of shard files read per epoch,
// in shards of ShardBytes, with CacheBytes of node-local capacity.
type CacheWorkload struct {
	EpochBytes int64
	ShardBytes int64
	CacheBytes int64 // 0 = unlimited (everything hits after the first epoch)
}

// CachedEpochReadTime models one steady-state epoch's read time through
// the two-tier hierarchy: the cached fraction streams at the node-local
// sequential rate, the rest re-fetches whole shards from the PFS at the
// per-client rate plus a metadata operation per shard. With LRU over a
// uniformly re-shuffled shard order, the expected hit fraction is the
// cache's share of the epoch's bytes.
func CachedEpochReadTime(mc cluster.Machine, w CacheWorkload) (float64, error) {
	if w.EpochBytes <= 0 || w.ShardBytes <= 0 || w.CacheBytes < 0 {
		return 0, fmt.Errorf("perfmodel: CachedEpochReadTime: bad workload %+v", w)
	}
	hitFrac := 1.0
	if w.CacheBytes > 0 && w.CacheBytes < w.EpochBytes {
		hitFrac = float64(w.CacheBytes) / float64(w.EpochBytes)
	}
	hitBytes := hitFrac * float64(w.EpochBytes)
	missBytes := float64(w.EpochBytes) - hitBytes
	missShards := missBytes / float64(w.ShardBytes)
	t := hitBytes / mc.LocalSeqBW
	t += missBytes/mc.PFSPerClientBW + missShards*mc.PFSMetadataCost
	return t, nil
}

// PFSLowerBound returns the paper's Figure 7b red line: the minimum epoch
// time for PFS-based global shuffling, datasetBytes / PFS theoretical peak.
func PFSLowerBound(mc cluster.Machine, datasetBytes int64) float64 {
	return float64(datasetBytes) / mc.PFSPeakBW
}

// StorageRequired returns the per-worker bytes each strategy needs
// (Section III-A): GS must reach the full dataset, LS stores N/M, PLS
// peaks at (1+Q)·N/M.
func StorageRequired(w Workload, workers int, strat shuffle.Strategy) int64 {
	totalBytes := int64(w.N) * w.BytesPerSample
	perWorker := totalBytes / int64(workers)
	switch strat.Kind {
	case shuffle.Global:
		return totalBytes
	case shuffle.Local:
		return perWorker
	default:
		return int64(float64(perWorker) * (1 + strat.Q))
	}
}

// FitsLocalStorage reports whether the strategy's storage requirement fits
// the machine's per-worker dedicated capacity — the feasibility check that
// rules out GS for DeepCAM on ABCI and everything beyond ~50 GB on Fugaku.
func FitsLocalStorage(mc cluster.Machine, w Workload, workers int, strat shuffle.Strategy) bool {
	return StorageRequired(w, workers, strat) <= mc.LocalSSDBytes
}
