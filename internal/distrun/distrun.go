// Package distrun runs one rank of a distributed training world over the
// TCP transport. It is the shared engine behind cmd/plsd (one rank per
// process, launched manually or by a scheduler) and cmd/plsrun's -launch
// mode (which forks a local world and plays rank 0 itself).
//
// Every rank receives the identical Options; datasets, models, and the
// initial partition are derived deterministically from the seed, so no
// state crosses processes except the MPI traffic itself.
package distrun

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"time"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/store/shard"
	"plshuffle/internal/telemetry"
	"plshuffle/internal/trace"
	"plshuffle/internal/train"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/tcp"
)

// Options describes one rank's share of a distributed run. The training
// fields must be identical on every rank.
type Options struct {
	Rank       int
	World      int
	Rendezvous string
	// RendezvousListener, when non-nil on rank 0, is a pre-bound listener —
	// the launcher reserves the port race-free before forking workers.
	RendezvousListener net.Listener

	Dataset  string // paper dataset key (data.LoadProxy)
	Model    string // proxy model name (nn.ProxySpec)
	Strategy string // global | local | partial | corgi2
	Q        float64
	// DataDir is the ingested on-disk dataset (cmd/plsingest) the corgi2
	// strategy streams from; it replaces Dataset for that strategy.
	DataDir string
	// CacheBytes bounds each rank's node-local cache tier under corgi2
	// (0 = unlimited).
	CacheBytes int64
	// GroupEpochs is corgi2's epoch-group length: shard assignments
	// reshuffle across ranks every GroupEpochs epochs (0 = 1).
	GroupEpochs int
	Epochs      int
	Batch       int
	LR          float64
	Locality    float64
	LARS        bool
	Seed        uint64
	// OverlapGrads selects the bucketed non-blocking gradient all-reduce
	// that pipelines with backward (train.Config.OverlapGrads); false runs
	// the serial flat ring, the A/B baseline. Results are bitwise identical
	// either way, so the flag is purely a performance choice.
	OverlapGrads bool

	// WireCompress enables per-connection negotiated compression of large
	// data frames on the TCP transport (tcp.Config.Compress). Mixed worlds
	// interoperate: each directed link compresses only if both ends opted in.
	WireCompress bool
	// WireDedup enables the exchange deduplication protocol
	// (train.Config.WireDedup): repeat samples travel as ID references.
	// Training results are bitwise identical; only wire volume changes.
	WireDedup bool
	// SampleEncoding selects the exchange sample wire format
	// (train.Config.SampleEncoding): "" or "fp32", "fp16exact", "fp16".
	// Every rank must agree.
	SampleEncoding string

	// AutoQ enables the closed-loop shuffle controller
	// (train.Config.AutoQ; DESIGN.md §16): Q is retuned at every epoch
	// boundary from gathered deterministic stats, with the decision
	// broadcast so every rank re-plans identically. partial strategy only;
	// every rank must agree.
	AutoQ bool
	// AutoQMin / AutoQMax clamp the controller's trajectory
	// (0,0 = the default policy clamps).
	AutoQMin, AutoQMax float64

	// Timeout bounds the whole run. When it expires — typically because a
	// peer died before reaching a collective — the rank unwinds with a clear
	// error instead of blocking forever. Zero means no watchdog.
	Timeout time.Duration

	// OnPeerFail selects what a rank does when the transport declares a
	// peer dead mid-run (train.Config.OnPeerFail; DESIGN.md §10):
	// "abort" (default) fails fast with a typed error naming the dead
	// rank, "degrade" completes the run among the survivors with a
	// reduced effective Q. Every rank must agree.
	OnPeerFail string

	// CheckpointDir, when non-empty, enables deterministic checkpointing
	// (train.Config.CheckpointDir; DESIGN.md §15): every rank commits an
	// atomic, CRC-checksummed snapshot of its replica state at epoch
	// boundaries. Every rank must agree (typically a shared filesystem
	// path, or per-host paths that survive the rank's restart).
	CheckpointDir string
	// CheckpointEvery snapshots every Nth epoch boundary (0 = every epoch).
	CheckpointEvery int
	// Resume restores the newest complete snapshot under CheckpointDir
	// before training (train.Config.Resume). The relaunched world must have
	// either the snapshot's full world size or exactly its live-group size
	// (a degraded world resumes shrunken; rank i adopts group member i's
	// state). The resumed run is bitwise identical to one that never
	// stopped.
	Resume bool

	// MaxWorld, when greater than World, makes the world elastic
	// (tcp.Config.MaxSize): rank slots [World, MaxWorld) stay reserved for
	// mid-run joiners, and the running members admit them at epoch
	// boundaries. Must be identical on every rank.
	MaxWorld int
	// Join connects this rank to an already-running elastic world instead
	// of bootstrapping one (tcp.Config.Join): the root assigns a free slot,
	// the members admit the rank at the next epoch boundary, and it trains
	// the remaining epochs as a full member. Rank is ignored; World and
	// MaxWorld must match the running world's.
	Join bool

	// TelemetryAddr, when non-empty, is the BASE listen address of the
	// per-rank telemetry endpoints (DESIGN.md §11): rank r serves
	// /metrics, /trace, /healthz, and /debug/pprof on port+r (the same
	// port-offset rule the launcher uses), and rank 0 additionally serves
	// /cluster/metrics, the concatenated exposition of every rank. Empty
	// disables telemetry entirely — zero observers, zero overhead beyond
	// the always-on atomic counters.
	TelemetryAddr string
}

func (o Options) strategy() (shuffle.Strategy, error) {
	switch o.Strategy {
	case "global":
		return shuffle.GlobalShuffling(), nil
	case "local":
		return shuffle.LocalShuffling(), nil
	case "partial":
		return shuffle.Partial(o.Q), nil
	case "corgi2":
		g := o.GroupEpochs
		if g <= 0 {
			g = 1
		}
		return shuffle.Corgi2Shuffling(g), nil
	default:
		return shuffle.Strategy{}, fmt.Errorf("distrun: unknown strategy %q (want global, local, partial, or corgi2)", o.Strategy)
	}
}

// Run executes one rank to completion: connect over TCP, train, verify the
// sample balance, report on rank 0, and tear the transport down. out
// receives rank 0's run report (other ranks write nothing).
func Run(o Options, out io.Writer) error {
	strat, err := o.strategy()
	if err != nil {
		return err
	}
	var ds *data.Dataset
	if strat.Kind == shuffle.Corgi2 {
		// The dataset lives on disk (cmd/plsingest); the proxy carries its
		// metadata and validation split, training samples stream through the
		// cache tier inside train.RunRank.
		if o.DataDir == "" {
			return fmt.Errorf("distrun: -strategy corgi2 requires -data-dir (an ingested dataset; see cmd/plsingest)")
		}
		sd, derr := shard.OpenDataset(o.DataDir)
		if derr != nil {
			return derr
		}
		if ds, err = sd.Proxy(); err != nil {
			return err
		}
	} else if ds, err = data.LoadProxy(o.Dataset); err != nil {
		return err
	}
	spec, err := nn.ProxySpec(o.Model)
	if err != nil {
		return err
	}

	if o.Join && o.MaxWorld <= o.World {
		return fmt.Errorf("distrun: -join requires an elastic world (-max-world greater than -world, identical to the running members')")
	}
	if o.Resume && o.CheckpointDir == "" {
		return fmt.Errorf("distrun: -resume requires -checkpoint-dir")
	}

	bootstrap := 30 * time.Second
	if o.Timeout > 0 && o.Timeout < bootstrap {
		bootstrap = o.Timeout
	}
	comm, err := mpi.Connect(func(h transport.Handler) (transport.Conn, error) {
		return tcp.New(tcp.Config{
			Rank:               o.Rank,
			Size:               o.World,
			MaxSize:            o.MaxWorld,
			Join:               o.Join,
			Rendezvous:         o.Rendezvous,
			RendezvousListener: o.RendezvousListener,
			BootstrapTimeout:   bootstrap,
			// Liveness detection is always on for real multi-process runs: a
			// killed rank must surface as a typed PeerError within a few
			// seconds — feeding abort's fail-fast report or degrade's shrink —
			// never as an eternal block that only the watchdog breaks.
			HeartbeatInterval: 500 * time.Millisecond,
			PeerTimeout:       2 * time.Second,
			RetryTimeout:      10 * time.Second,
			DrainTimeout:      5 * time.Second,
			Compress:          o.WireCompress,
		}, h)
	})
	if err != nil {
		// One clear line, not a raw panic or a hang: the most common cause is
		// a rendezvous that never formed (rank 0 absent, wrong address, or a
		// rank missing from the world).
		return fmt.Errorf("distrun: rank %d/%d: bootstrap failed (rendezvous %s): %w", o.Rank, o.World, o.Rendezvous, err)
	}
	if o.Join {
		// A joiner's rank is assigned by the rendezvous root at bootstrap;
		// adopt it so telemetry ports and failure reports name the real slot.
		o.Rank = comm.Rank()
	}

	// Every rank records phase trace events so a watchdog report can name
	// where each rank last made progress, not just that it stopped.
	rec := trace.NewRecorder()

	// Telemetry plane (DESIGN.md §11): one HTTP server per rank on
	// base-port+rank, sharing the registry the trainer will populate. The
	// health view reflects the transport's peer-failure registry, so
	// /healthz flips to 503 the moment a peer is declared dead.
	var reg *telemetry.Registry
	if o.TelemetryAddr != "" {
		addr, aerr := telemetry.OffsetAddr(o.TelemetryAddr, o.Rank)
		if aerr != nil {
			comm.Close()
			return fmt.Errorf("distrun: rank %d: telemetry: %w", o.Rank, aerr)
		}
		reg = telemetry.NewRegistry()
		sc := telemetry.ServerConfig{
			Addr:     addr,
			Registry: reg,
			Trace:    rec,
			Health: func() telemetry.Health {
				fp := comm.FailedPeers()
				return telemetry.Health{OK: len(fp) == 0, Rank: o.Rank, FailedPeers: fp}
			},
		}
		if o.Rank == 0 && o.World > 1 {
			targets := telemetryTargets(o.TelemetryAddr, o.World)
			sc.ClusterTargets = func() []string { return targets }
		}
		tsrv, serr := telemetry.NewServer(sc)
		if serr != nil {
			comm.Close()
			return fmt.Errorf("distrun: rank %d: telemetry listen %s: %w", o.Rank, addr, serr)
		}
		defer tsrv.Close()
	}

	done := make(chan error, 1)
	go func() {
		done <- mpi.Execute(comm, func(c *mpi.Comm) error {
			if err := trainRank(c, o, strat, ds, spec, rec, reg, out); err != nil {
				return err
			}
			// Quiesce before teardown: no rank may close its transport while
			// peers still expect frames.
			c.Barrier()
			return nil
		})
	}()

	if o.Timeout > 0 {
		select {
		case err = <-done:
		case <-time.After(o.Timeout):
			// Break the rank out of whatever collective it is stuck in, then
			// tear the transport down so peers unstick too.
			comm.Abort()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
			}
			comm.Close()
			return fmt.Errorf("distrun: rank %d: no progress within %v (last completed phase: %s) — a peer likely exited before reaching a collective; aborting instead of hanging",
				o.Rank, o.Timeout, lastPhase(rec))
		}
	} else {
		err = <-done
	}
	if pe, ok := mpi.PeerErrorFrom(err); ok {
		// Name the culprit in one line so a multi-process failure report
		// reads as a story, not a stack of timeouts.
		err = fmt.Errorf("distrun: rank %d: peer rank %d died during %s (last completed phase here: %s): %w",
			o.Rank, pe.Rank, pe.Phase, lastPhase(rec), err)
	}
	if cerr := comm.Close(); err == nil && cerr != nil {
		if _, isPeer := transport.AsPeerError(cerr); isPeer {
			// err == nil means this rank cleared the final barrier, so every
			// peer was alive through the whole run. A peer "failure" that
			// surfaces only at close is therefore shutdown ordering — a rank
			// that finished and exited before our last heartbeat reached it —
			// or, in degrade mode, the sticky record of a death the run
			// already tolerated. Neither is a failure of this rank.
			return nil
		}
		err = fmt.Errorf("distrun: rank %d: close: %w", o.Rank, cerr)
	}
	return err
}

// lastPhase names the most recently recorded trace phase, e.g.
// "exchange (epoch 2)", or "bootstrap (no phase completed)" for a rank
// that stalled before finishing its first epoch.
func lastPhase(rec *trace.Recorder) string {
	events := rec.Events()
	if len(events) == 0 {
		return "bootstrap (no phase completed)"
	}
	// Events() sorts by (rank, epoch, phase) with phases in execution
	// order; the frontier is the last event of the maximum epoch. Scanning
	// explicitly keeps this correct even for multi-rank recorders.
	last := events[0]
	for _, e := range events[1:] {
		if e.Epoch >= last.Epoch {
			last = e
		}
	}
	return fmt.Sprintf("%s (epoch %d)", last.Phase, last.Epoch)
}

// telemetryTargets derives every rank's scrape URL from the base address
// using the same port-offset rule each rank applies to itself, so rank 0's
// /cluster/metrics can aggregate the whole world. Unspecified listen hosts
// (empty, 0.0.0.0, ::) are scraped via loopback — the launcher's workers
// are local processes.
func telemetryTargets(base string, world int) []string {
	targets := make([]string, 0, world)
	for r := 0; r < world; r++ {
		addr, err := telemetry.OffsetAddr(base, r)
		if err != nil {
			continue
		}
		host, port, err := net.SplitHostPort(addr)
		if err != nil {
			continue
		}
		switch host {
		case "", "0.0.0.0", "::":
			host = "127.0.0.1"
		}
		targets = append(targets, "http://"+net.JoinHostPort(host, port))
	}
	return targets
}

// trainRank is the per-rank program: train, gather balance/peak/byte
// accounting at the lowest surviving rank, and print the report there.
func trainRank(c *mpi.Comm, o Options, strat shuffle.Strategy, ds *data.Dataset, spec nn.ModelSpec, rec *trace.Recorder, reg *telemetry.Registry, out io.Writer) error {
	cfg := train.Config{
		Workers:           c.Size(),
		Strategy:          strat,
		Dataset:           ds,
		Model:             spec.WithData(ds.FeatureDim, ds.Classes),
		Epochs:            o.Epochs,
		BatchSize:         o.Batch,
		BaseLR:            float32(o.LR),
		Momentum:          0.9,
		WeightDecay:       1e-4,
		UseLARS:           o.LARS,
		Seed:              o.Seed,
		DataDir:           o.DataDir,
		CacheBytes:        o.CacheBytes,
		PartitionLocality: o.Locality,
		OverlapGrads:      o.OverlapGrads,
		WireDedup:         o.WireDedup,
		SampleEncoding:    o.SampleEncoding,
		AutoQ:             o.AutoQ,
		AutoQMin:          o.AutoQMin,
		AutoQMax:          o.AutoQMax,
		OnPeerFail:        o.OnPeerFail,
		CheckpointDir:     o.CheckpointDir,
		CheckpointEvery:   o.CheckpointEvery,
		Resume:            o.Resume,
		Elastic:           o.MaxWorld > o.World || o.Join,
		Trace:             rec,
		Telemetry:         reg,
	}
	var rr *train.RankResult
	var err error
	if o.Join {
		// A joiner parks until the members admit it at an epoch boundary,
		// then trains the remaining epochs as a full member; its post-join
		// group is the grown world, so the gather/report path below works
		// unchanged.
		rr, err = train.JoinRank(c, cfg)
	} else {
		rr, err = train.RunRank(c, cfg)
	}
	if err != nil {
		return err
	}
	degraded := 0
	for _, e := range rr.Epochs {
		degraded += e.DegradedSlots
	}

	// Cross-rank accounting: final local sample counts (the balance
	// invariant), storage peaks, and real wire traffic. After a degraded
	// run the collective group is the survivors, so gather at the lowest
	// surviving rank — rank 0 itself may be the one that died.
	live := c.GroupRanks()
	root := live[0]
	st := c.Transport().Stats()
	counts := mpi.Gather(c, []int64{int64(rr.FinalLocalSamples)}, root)
	peaks := mpi.Gather(c, []int64{rr.PeakStorageBytes}, root)
	wire := mpi.Gather(c, []int64{st.BytesSent, st.BytesRecv}, root)
	var cstat []int64
	if cs := rr.Cache; cs != nil {
		cstat = []int64{cs.Hits, cs.Misses, cs.Evictions, cs.PrefetchBytes, cs.PFSReadBytes}
	} else {
		cstat = make([]int64, 5)
	}
	cgather := mpi.Gather(c, cstat, root)
	var xw, dh, dsv int64
	for _, e := range rr.Epochs {
		xw += e.ExchangeWireBytes
		dh += int64(e.DedupHits)
		dsv += e.DedupBytesSaved
	}
	lean := mpi.Gather(c, []int64{xw, dh, dsv}, root)
	if c.Rank() != root {
		return nil
	}

	dsLabel := o.Dataset
	if strat.Kind == shuffle.Corgi2 {
		dsLabel = ds.Name + " (ingested " + o.DataDir + ")"
	}
	fmt.Fprintf(out, "%s on %s proxy, %d ranks over tcp, strategy %s (locality %.2f)\n",
		o.Model, dsLabel, c.Size(), strat, o.Locality)
	fmt.Fprintf(out, "%-6s  %-8s  %-8s  %-14s\n", "epoch", "loss", "val-acc", "exchange-wire")
	for _, e := range rr.Epochs {
		fmt.Fprintf(out, "%-6d  %-8.4f  %-8.4f  %-14d\n", e.Epoch+1, e.TrainLoss, e.ValAcc, e.ExchangeWireBytes)
	}

	var peak, sent, recv int64
	for g := range live {
		if peaks[g] > peak {
			peak = peaks[g]
		}
		sent += wire[2*g]
		recv += wire[2*g+1]
	}
	final := rr.Epochs[len(rr.Epochs)-1]
	fmt.Fprintf(out, "final=%.4f peak-storage/rank=%d bytes  wire sent=%d recv=%d bytes\n",
		final.ValAcc, peak, sent, recv)
	var exchWire, dedupHits, dedupSaved int64
	for g := range live {
		exchWire += lean[3*g]
		dedupHits += lean[3*g+1]
		dedupSaved += lean[3*g+2]
	}
	if strat.Kind == shuffle.PartialLocal {
		fmt.Fprintf(out, "exchange wire=%d bytes  dedup hits=%d saved=%d bytes\n",
			exchWire, dedupHits, dedupSaved)
	}
	if o.AutoQ {
		// The controller's per-epoch trajectory: the fraction each epoch
		// planned with and the decision that set it. Two same-seed auto-Q
		// worlds print identical lines — the decisions are deterministic.
		fmt.Fprintf(out, "controller q trajectory:")
		for _, e := range rr.Epochs {
			fmt.Fprintf(out, " %g(%s)", e.ControllerQ, e.ControllerReason)
		}
		fmt.Fprintln(out)
	}
	// Checksum of the trained weights (CRC32C over the float bits, LE): two
	// same-seed worlds must print the same value regardless of -wire-compress
	// / -wire-dedup / -sample-encoding=fp16exact — the cheap handle on the
	// bitwise-determinism guarantee across real processes.
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	var wb [4]byte
	for _, p := range rr.FinalParams {
		for _, v := range p.W {
			binary.LittleEndian.PutUint32(wb[:], math.Float32bits(v))
			h.Write(wb[:])
		}
	}
	fmt.Fprintf(out, "weights crc32c=%08x\n", h.Sum32())

	if strat.Kind == shuffle.Corgi2 {
		var hits, misses, ev, pf, pfsb int64
		for g := range live {
			hits += cgather[5*g]
			misses += cgather[5*g+1]
			ev += cgather[5*g+2]
			pf += cgather[5*g+3]
			pfsb += cgather[5*g+4]
		}
		fmt.Fprintf(out, "cache: hits=%d misses=%d evictions=%d prefetch=%d bytes pfs-read=%d bytes\n",
			hits, misses, ev, pf, pfsb)
	}

	if len(live) < c.Size() || degraded > 0 {
		// The run lost ranks and completed among the survivors: the fair-share
		// invariant intentionally no longer holds (retained samples stay with
		// their would-have-been senders), so report the degradation instead.
		lastQ := final.EffectiveQ
		fmt.Fprintf(out, "DEGRADED: %d/%d ranks survived, %d exchange slots forfeited, final effective Q=%.3f (configured %.3f)\n",
			len(live), c.Size(), degraded, lastQ, o.Q)
		return nil
	}

	// Balance check: for the local-family strategies every rank must end the
	// run holding its fair share, N/M rounded either way (Algorithm 1's
	// slot-balanced exchange guarantees it; GS holds no local samples, and
	// corgi2 balances shards rather than samples).
	if strat.Kind == shuffle.Local || strat.Kind == shuffle.PartialLocal {
		n, m := len(ds.Train), c.Size()
		lo, hi := int64(n/m), int64((n+m-1)/m)
		for r := 0; r < m; r++ {
			if counts[r] < lo || counts[r] > hi {
				return fmt.Errorf("distrun: rank %d ended with %d samples, want N/M in [%d,%d] (N=%d M=%d)",
					r, counts[r], lo, hi, n, m)
			}
		}
		fmt.Fprintf(out, "sample balance OK: every rank holds N/M = %d..%d of %d samples\n", lo, hi, n)
	}
	return nil
}
