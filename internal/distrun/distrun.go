// Package distrun runs one rank of a distributed training world over the
// TCP transport. It is the shared engine behind cmd/plsd (one rank per
// process, launched manually or by a scheduler) and cmd/plsrun's -launch
// mode (which forks a local world and plays rank 0 itself).
//
// Every rank receives the identical Options; datasets, models, and the
// initial partition are derived deterministically from the seed, so no
// state crosses processes except the MPI traffic itself.
package distrun

import (
	"fmt"
	"io"
	"net"
	"time"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/train"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/tcp"
)

// Options describes one rank's share of a distributed run. The training
// fields must be identical on every rank.
type Options struct {
	Rank       int
	World      int
	Rendezvous string
	// RendezvousListener, when non-nil on rank 0, is a pre-bound listener —
	// the launcher reserves the port race-free before forking workers.
	RendezvousListener net.Listener

	Dataset  string // paper dataset key (data.LoadProxy)
	Model    string // proxy model name (nn.ProxySpec)
	Strategy string // global | local | partial
	Q        float64
	Epochs   int
	Batch    int
	LR       float64
	Locality float64
	LARS     bool
	Seed     uint64
	// OverlapGrads selects the bucketed non-blocking gradient all-reduce
	// that pipelines with backward (train.Config.OverlapGrads); false runs
	// the serial flat ring, the A/B baseline. Results are bitwise identical
	// either way, so the flag is purely a performance choice.
	OverlapGrads bool

	// Timeout bounds the whole run. When it expires — typically because a
	// peer died before reaching a collective — the rank unwinds with a clear
	// error instead of blocking forever. Zero means no watchdog.
	Timeout time.Duration
}

func (o Options) strategy() (shuffle.Strategy, error) {
	switch o.Strategy {
	case "global":
		return shuffle.GlobalShuffling(), nil
	case "local":
		return shuffle.LocalShuffling(), nil
	case "partial":
		return shuffle.Partial(o.Q), nil
	default:
		return shuffle.Strategy{}, fmt.Errorf("distrun: unknown strategy %q (want global, local, or partial)", o.Strategy)
	}
}

// Run executes one rank to completion: connect over TCP, train, verify the
// sample balance, report on rank 0, and tear the transport down. out
// receives rank 0's run report (other ranks write nothing).
func Run(o Options, out io.Writer) error {
	strat, err := o.strategy()
	if err != nil {
		return err
	}
	ds, err := data.LoadProxy(o.Dataset)
	if err != nil {
		return err
	}
	spec, err := nn.ProxySpec(o.Model)
	if err != nil {
		return err
	}

	bootstrap := 30 * time.Second
	if o.Timeout > 0 && o.Timeout < bootstrap {
		bootstrap = o.Timeout
	}
	comm, err := mpi.Connect(func(h transport.Handler) (transport.Conn, error) {
		return tcp.New(tcp.Config{
			Rank:               o.Rank,
			Size:               o.World,
			Rendezvous:         o.Rendezvous,
			RendezvousListener: o.RendezvousListener,
			BootstrapTimeout:   bootstrap,
		}, h)
	})
	if err != nil {
		return fmt.Errorf("distrun: rank %d: %w", o.Rank, err)
	}

	done := make(chan error, 1)
	go func() {
		done <- mpi.Execute(comm, func(c *mpi.Comm) error {
			if err := trainRank(c, o, strat, ds, spec, out); err != nil {
				return err
			}
			// Quiesce before teardown: no rank may close its transport while
			// peers still expect frames.
			c.Barrier()
			return nil
		})
	}()

	if o.Timeout > 0 {
		select {
		case err = <-done:
		case <-time.After(o.Timeout):
			// Break the rank out of whatever collective it is stuck in, then
			// tear the transport down so peers unstick too.
			comm.Abort()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
			}
			comm.Close()
			return fmt.Errorf("distrun: rank %d: no progress within %v — a peer likely exited before reaching a collective; aborting instead of hanging", o.Rank, o.Timeout)
		}
	} else {
		err = <-done
	}
	if cerr := comm.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("distrun: rank %d: close: %w", o.Rank, cerr)
	}
	return err
}

// trainRank is the per-rank program: train, gather balance/peak/byte
// accounting at rank 0, and print the report there.
func trainRank(c *mpi.Comm, o Options, strat shuffle.Strategy, ds *data.Dataset, spec nn.ModelSpec, out io.Writer) error {
	rr, err := train.RunRank(c, train.Config{
		Workers:           c.Size(),
		Strategy:          strat,
		Dataset:           ds,
		Model:             spec.WithData(ds.FeatureDim, ds.Classes),
		Epochs:            o.Epochs,
		BatchSize:         o.Batch,
		BaseLR:            float32(o.LR),
		Momentum:          0.9,
		WeightDecay:       1e-4,
		UseLARS:           o.LARS,
		Seed:              o.Seed,
		PartitionLocality: o.Locality,
		OverlapGrads:      o.OverlapGrads,
	})
	if err != nil {
		return err
	}

	// Cross-rank accounting: final local sample counts (the balance
	// invariant), storage peaks, and real wire traffic.
	st := c.Transport().Stats()
	counts := mpi.Gather(c, []int64{int64(rr.FinalLocalSamples)}, 0)
	peaks := mpi.Gather(c, []int64{rr.PeakStorageBytes}, 0)
	wire := mpi.Gather(c, []int64{st.BytesSent, st.BytesRecv}, 0)
	if c.Rank() != 0 {
		return nil
	}

	fmt.Fprintf(out, "%s on %s proxy, %d ranks over tcp, strategy %s (locality %.2f)\n",
		o.Model, o.Dataset, c.Size(), strat, o.Locality)
	fmt.Fprintf(out, "%-6s  %-8s  %-8s  %-14s\n", "epoch", "loss", "val-acc", "exchange-wire")
	for _, e := range rr.Epochs {
		fmt.Fprintf(out, "%-6d  %-8.4f  %-8.4f  %-14d\n", e.Epoch+1, e.TrainLoss, e.ValAcc, e.ExchangeWireBytes)
	}

	var peak, sent, recv int64
	for r := 0; r < c.Size(); r++ {
		if peaks[r] > peak {
			peak = peaks[r]
		}
		sent += wire[2*r]
		recv += wire[2*r+1]
	}
	final := rr.Epochs[len(rr.Epochs)-1]
	fmt.Fprintf(out, "final=%.4f peak-storage/rank=%d bytes  wire sent=%d recv=%d bytes\n",
		final.ValAcc, peak, sent, recv)

	// Balance check: for the local-family strategies every rank must end the
	// run holding its fair share, N/M rounded either way (Algorithm 1's
	// slot-balanced exchange guarantees it; GS holds no local samples).
	if strat.Kind != shuffle.Global {
		n, m := len(ds.Train), c.Size()
		lo, hi := int64(n/m), int64((n+m-1)/m)
		for r := 0; r < m; r++ {
			if counts[r] < lo || counts[r] > hi {
				return fmt.Errorf("distrun: rank %d ended with %d samples, want N/M in [%d,%d] (N=%d M=%d)",
					r, counts[r], lo, hi, n, m)
			}
		}
		fmt.Fprintf(out, "sample balance OK: every rank holds N/M = %d..%d of %d samples\n", lo, hi, n)
	}
	return nil
}
