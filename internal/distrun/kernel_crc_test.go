package distrun

import (
	"testing"
	"time"
)

// Golden weight checksums for the four acceptance configurations
// (PLS/corgi2 × flat/overlap allreduce), captured on the pre-blocking
// scalar kernels and required to survive every compute-kernel change
// since: the packed GEMM core (DESIGN.md §14) promises bitwise-identical
// training, so these constants are the end-to-end teeth of that promise.
// Overlap and flat allreduce converge to the same bits by PR-4's
// bucket-order argument, hence one golden value per strategy.
const (
	goldenPLSWeightsCRC    = "930e840f"
	goldenCorgi2WeightsCRC = "a78e1d7e"
)

// TestKernelWeightCRCGolden runs full 4-rank TCP trainings and pins the
// final weights crc32c to the golden values above. Any kernel, blocking,
// or dispatch change that alters a single bit of any weight fails here.
func TestKernelWeightCRCGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP end-to-end in -short mode")
	}
	dir, maxShard := ingestCorgiDataset(t)
	pls := Options{
		World: 4, Dataset: "cifar-100", Model: "mlp", Strategy: "partial",
		Q: 0.25, Epochs: 3, Batch: 16, LR: 0.05, Seed: 11,
		Timeout: 2 * time.Minute, OnPeerFail: "abort",
	}
	corgi := Options{
		World: 4, Model: "mlp", Strategy: "corgi2", DataDir: dir,
		CacheBytes: 3 * maxShard, GroupEpochs: 3, Epochs: 6, Batch: 16,
		LR: 0.05, Seed: 11, Timeout: 2 * time.Minute, OnPeerFail: "abort",
	}
	for _, tc := range []struct {
		name    string
		opts    Options
		overlap bool
		want    string
	}{
		{"pls-flat", pls, false, goldenPLSWeightsCRC},
		{"pls-overlap", pls, true, goldenPLSWeightsCRC},
		{"corgi2-flat", corgi, false, goldenCorgi2WeightsCRC},
		{"corgi2-overlap", corgi, true, goldenCorgi2WeightsCRC},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opts
			o.OverlapGrads = tc.overlap
			out := runCorgiWorld(t, o)
			m := weightsLine.FindStringSubmatch(out)
			if m == nil {
				t.Fatalf("no weights line:\n%s", out)
			}
			if m[1] != tc.want {
				t.Fatalf("weights crc32c=%s, want golden %s (kernel change broke bitwise determinism)", m[1], tc.want)
			}
		})
	}
}
