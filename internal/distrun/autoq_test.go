package distrun

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

var trajLine = regexp.MustCompile(`controller q trajectory:([^\n]*)`)

// TestAutoQWorldsTCP is the distrun acceptance gate for the closed-loop
// controller: two identically-seeded 4-rank -auto-q worlds over real TCP
// must print the same decided Q trajectory and the same weights checksum —
// the QDecision broadcast makes the trajectory a pure function of (config,
// seed), never of wall-clock timing.
func TestAutoQWorldsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP end-to-end in -short mode")
	}
	opts := Options{
		World:      4,
		Dataset:    "cifar-100",
		Model:      "mlp",
		Strategy:   "partial",
		Q:          0.2,
		AutoQ:      true,
		AutoQMin:   0.05,
		AutoQMax:   0.5,
		Epochs:     3,
		Batch:      16,
		LR:         0.05,
		Locality:   0.8,
		Seed:       11,
		Timeout:    2 * time.Minute,
		OnPeerFail: "abort",
	}

	run := func() (crc, traj string) {
		out, errs := runWorld(t, opts)
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		m := trajLine.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("rank 0 report has no controller trajectory line:\n%s", out)
		}
		return weightsCRC(t, out), strings.TrimSpace(m[1])
	}

	crcA, trajA := run()
	crcB, trajB := run()
	if crcA != crcB {
		t.Errorf("same-seed auto-Q worlds disagree on weights: crc32c %s vs %s", crcA, crcB)
	}
	if trajA != trajB {
		t.Errorf("same-seed auto-Q worlds decided different trajectories:\n%s\n%s", trajA, trajB)
	}
	if trajA == "" || len(strings.Fields(trajA)) != opts.Epochs {
		t.Errorf("trajectory %q does not cover all %d epochs", trajA, opts.Epochs)
	}
}
