package distrun

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// pickBasePort reserves `count` consecutive localhost TCP ports and returns
// the base, so a port-offset telemetry world can bind rank r on base+r.
// There is an unavoidable close-to-rebind window; retry absorbs it.
func pickBasePort(t *testing.T, count int) int {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := ln.Addr().(*net.TCPAddr).Port
		lns := []net.Listener{ln}
		ok := base+count-1 <= 65535
		for p := base + 1; ok && p < base+count; p++ {
			l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p))
			if err != nil {
				ok = false
				break
			}
			lns = append(lns, l)
		}
		for _, l := range lns {
			l.Close()
		}
		if ok {
			return base
		}
	}
	t.Fatal("could not reserve a consecutive port range")
	return 0
}

// TestRunWorldWithTelemetry drives the full distrun stack end to end: a
// 3-rank world (one goroutine per rank, each calling Run exactly as plsd
// does) over real TCP, with the telemetry plane live on port-offset
// endpoints. While the run is in flight the test scrapes each rank's
// /metrics and /healthz and rank 0's /cluster/metrics, which must aggregate
// every rank's series under a single set of family headers.
func TestRunWorldWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP + HTTP end-to-end in -short mode")
	}
	const world = 3
	base := pickBasePort(t, world)

	// Reserve the rendezvous race-free, like the launcher does.
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	opts := Options{
		World:         world,
		Rendezvous:    rln.Addr().String(),
		Dataset:       "cifar-100",
		Model:         "mlp",
		Strategy:      "partial",
		Q:             0.25,
		Epochs:        40,
		Batch:         16,
		LR:            0.05,
		Seed:          7,
		Timeout:       2 * time.Minute,
		OnPeerFail:    "abort",
		TelemetryAddr: fmt.Sprintf("127.0.0.1:%d", base),
	}

	var out bytes.Buffer
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := opts
			o.Rank = rank
			w := io.Discard
			if rank == 0 {
				o.RendezvousListener = rln
				w = &out
			}
			errs[rank] = Run(o, w)
		}(r)
	}
	runDone := make(chan struct{})
	go func() { wg.Wait(); close(runDone) }()

	// Mid-run probes. Poll until every rank's /metrics answers and the
	// cluster view carries all three ranks, or the run ends first.
	type probe struct {
		perRank  [world]bool
		healthz  [world]bool
		cluster  bool
		clusterN int
	}
	var pr probe
	client := &http.Client{Timeout: 2 * time.Second}
	get := func(url string) (int, string) {
		resp, err := client.Get(url)
		if err != nil {
			return 0, ""
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
poll:
	for {
		select {
		case <-runDone:
			break poll
		default:
		}
		for r := 0; r < world; r++ {
			if !pr.perRank[r] {
				if code, body := get(fmt.Sprintf("http://127.0.0.1:%d/metrics", base+r)); code == 200 &&
					strings.Contains(body, fmt.Sprintf(`pls_train_epoch{rank="%d"}`, r)) {
					pr.perRank[r] = true
				}
			}
			if !pr.healthz[r] {
				if code, body := get(fmt.Sprintf("http://127.0.0.1:%d/healthz", base+r)); code == 200 &&
					strings.Contains(body, `"ok":true`) {
					pr.healthz[r] = true
				}
			}
		}
		if !pr.cluster {
			if code, body := get(fmt.Sprintf("http://127.0.0.1:%d/cluster/metrics", base)); code == 200 {
				n := 0
				for r := 0; r < world; r++ {
					if strings.Contains(body, fmt.Sprintf(`pls_train_epoch{rank="%d"}`, r)) {
						n++
					}
				}
				if n == world && strings.Count(body, "# TYPE pls_train_epoch ") == 1 {
					pr.cluster = true
					pr.clusterN = n
				}
			}
		}
		all := pr.cluster
		for r := 0; r < world; r++ {
			all = all && pr.perRank[r] && pr.healthz[r]
		}
		if all {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-runDone

	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < world; r++ {
		if !pr.perRank[r] {
			t.Errorf("rank %d /metrics never answered with its own series during the run", r)
		}
		if !pr.healthz[r] {
			t.Errorf("rank %d /healthz never reported ok during the run", r)
		}
	}
	if !pr.cluster {
		t.Error("rank 0 /cluster/metrics never aggregated all ranks under deduplicated headers")
	}
	if !strings.Contains(out.String(), "sample balance OK") {
		t.Errorf("rank 0 report missing the balance check:\n%s", out.String())
	}

	// After the run every telemetry server is down: the ports must refuse.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if code, _ := get(fmt.Sprintf("http://127.0.0.1:%d/metrics", base)); code == 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Error("rank 0 telemetry server still answering after Run returned")
}

// TestTelemetryTargets pins the scrape-URL derivation, including the
// unspecified-host loopback substitution.
func TestTelemetryTargets(t *testing.T) {
	got := telemetryTargets("0.0.0.0:9100", 3)
	want := []string{"http://127.0.0.1:9100", "http://127.0.0.1:9101", "http://127.0.0.1:9102"}
	if len(got) != len(want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("targets[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if ts := telemetryTargets("192.168.1.5:9100", 2); ts[1] != "http://192.168.1.5:9101" {
		t.Fatalf("explicit host mangled: %v", ts)
	}
}

// TestOptionsStrategyValidation pins the CLI-facing error for an unknown
// strategy string.
func TestOptionsStrategyValidation(t *testing.T) {
	_, err := Options{Strategy: "bogus"}.strategy()
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v, want unknown-strategy naming bogus", err)
	}
	for _, s := range []string{"global", "local", "partial"} {
		if _, err := (Options{Strategy: s, Q: 0.1}).strategy(); err != nil {
			t.Fatalf("strategy %q rejected: %v", s, err)
		}
	}
}
