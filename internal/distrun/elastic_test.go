package distrun

import (
	"bytes"
	"io"
	"net"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// runWorld plays every member rank of opts' world as a goroutine (each
// calling Run exactly as plsd does) and returns rank 0's report plus the
// per-rank errors. extra ranks (joiners) are appended after the members.
func runWorld(t *testing.T, opts Options, extra ...Options) (string, []error) {
	t.Helper()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts.Rendezvous = rln.Addr().String()

	var out bytes.Buffer
	errs := make([]error, opts.World+len(extra))
	var wg sync.WaitGroup
	for r := 0; r < opts.World; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := opts
			o.Rank = rank
			w := io.Discard
			if rank == 0 {
				o.RendezvousListener = rln
				w = &out
			}
			errs[rank] = Run(o, w)
		}(r)
	}
	for i, jo := range extra {
		wg.Add(1)
		go func(slot int, o Options) {
			defer wg.Done()
			// Give the members a head start so the joiner's rendezvous hello
			// lands on a formed world (its bootstrap retries either way).
			time.Sleep(100 * time.Millisecond)
			o.Rendezvous = opts.Rendezvous
			errs[slot] = Run(o, io.Discard)
		}(opts.World+i, jo)
	}
	wg.Wait()
	return out.String(), errs
}

var crcLine = regexp.MustCompile(`weights crc32c=([0-9a-f]{8})`)

func weightsCRC(t *testing.T, report string) string {
	t.Helper()
	m := crcLine.FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("rank 0 report has no weights crc32c line:\n%s", report)
	}
	return m[1]
}

// TestElasticResumeTCP is the distrun-level elastic gate: a 4-rank world
// over real TCP checkpoints every epoch, stops at the epoch-2 boundary, and
// a relaunched world resumes from the snapshot — the resumed run's weights
// checksum must equal an uninterrupted reference's, bitwise, across real
// processes-worth of transport. Then the same checkpoint directory carries
// the world through a growth: a 5th rank joins mid-run via -join and the
// grown world finishes with the full sample balance.
func TestElasticResumeTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP end-to-end in -short mode")
	}
	base := Options{
		World:      4,
		Dataset:    "cifar-100",
		Model:      "mlp",
		Strategy:   "partial",
		Q:          0.25,
		Epochs:     4,
		Batch:      16,
		LR:         0.05,
		Seed:       11,
		Timeout:    2 * time.Minute,
		OnPeerFail: "abort",
	}

	// Uninterrupted reference.
	refOut, errs := runWorld(t, base)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reference rank %d: %v", r, err)
		}
	}
	refCRC := weightsCRC(t, refOut)

	// Interrupted run: train only the first two epochs, checkpointing at
	// every boundary, then stop — the state a killed world leaves behind.
	ckptDir := t.TempDir()
	interrupted := base
	interrupted.Epochs = 2
	interrupted.CheckpointDir = ckptDir
	if _, errs = runWorld(t, interrupted); errs[0] != nil || errs[1] != nil || errs[2] != nil || errs[3] != nil {
		t.Fatalf("interrupted run failed: %v", errs)
	}

	// Resume to the full horizon: bitwise identical to the reference.
	resumed := base
	resumed.CheckpointDir = ckptDir
	resumed.Resume = true
	resOut, errs := runWorld(t, resumed)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("resumed rank %d: %v", r, err)
		}
	}
	if got := weightsCRC(t, resOut); got != refCRC {
		t.Fatalf("resumed weights crc32c=%s, want the uninterrupted reference's %s", got, refCRC)
	}

	// Growth: relaunch the 4 members elastic (-max-world 5) and rendezvous a
	// 5th rank mid-run via -join. The grown world must finish at full size
	// with the dataset balanced across all five ranks.
	grown := base
	grown.Epochs = 30
	grown.MaxWorld = 5
	joiner := grown
	joiner.Join = true
	grownOut, errs := runWorld(t, grown, joiner)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("grown-world rank %d: %v", r, err)
		}
	}
	if !strings.Contains(grownOut, "5 ranks over tcp") {
		t.Errorf("grown world report does not show 5 ranks:\n%s", grownOut)
	}
	if !strings.Contains(grownOut, "sample balance OK") {
		t.Errorf("grown world report missing the balance check:\n%s", grownOut)
	}
}

// TestElasticOptionValidation pins the CLI-facing preflight errors.
func TestElasticOptionValidation(t *testing.T) {
	o := Options{World: 4, Dataset: "cifar-100", Model: "mlp", Strategy: "partial", Q: 0.1, Join: true, MaxWorld: 4}
	if err := Run(o, io.Discard); err == nil || !strings.Contains(err.Error(), "max-world") {
		t.Fatalf("join without elastic capacity: err = %v, want -max-world guidance", err)
	}
	o = Options{World: 1, Dataset: "cifar-100", Model: "mlp", Strategy: "partial", Q: 0.1, Resume: true}
	if err := Run(o, io.Discard); err == nil || !strings.Contains(err.Error(), "checkpoint-dir") {
		t.Fatalf("resume without checkpoint dir: err = %v, want -checkpoint-dir guidance", err)
	}
}
