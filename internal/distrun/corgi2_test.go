package distrun

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"plshuffle/internal/data"
	"plshuffle/internal/store/shard"
)

// ingestCorgiDataset generates a learnable synthetic dataset and ingests it
// into a temp directory as the on-disk "PFS" tier, returning the directory
// and the largest shard's file size (the cache-budget unit).
func ingestCorgiDataset(t *testing.T) (dir string, maxShard int64) {
	t.Helper()
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "corgi-distrun", NumSamples: 512, NumVal: 128, Classes: 4,
		FeatureDim: 16, ClassSep: 5, NoiseStd: 1.0, Bytes: 1000, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir = filepath.Join(t.TempDir(), "dataset")
	man, err := shard.Ingest(dir, ds, 32)
	if err != nil {
		t.Fatal(err)
	}
	return dir, man.MaxShardBytes()
}

// runCorgiWorld runs one full 4-rank corgi2 world over real TCP (one
// goroutine per rank, each calling Run exactly as plsd does) and returns
// rank 0's report.
func runCorgiWorld(t *testing.T, opts Options) string {
	t.Helper()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts.Rendezvous = rln.Addr().String()

	var out bytes.Buffer
	errs := make([]error, opts.World)
	var wg sync.WaitGroup
	for r := 0; r < opts.World; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := opts
			o.Rank = rank
			w := io.Discard
			if rank == 0 {
				o.RendezvousListener = rln
				w = &out
			}
			errs[rank] = Run(o, w)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return out.String()
}

var (
	weightsLine = regexp.MustCompile(`(?m)^weights crc32c=([0-9a-f]{8})$`)
	cacheLine   = regexp.MustCompile(`(?m)^cache: hits=(\d+) misses=(\d+) evictions=(\d+) prefetch=(\d+) bytes pfs-read=(\d+) bytes$`)
)

// TestCorgi2WorldDeterministicWithTelemetry is the acceptance run for the
// storage hierarchy: a real 4-rank TCP world training from an ingested
// on-disk dataset through the bounded cache tier under -strategy=corgi2.
// The same-seed world runs twice and must report bitwise-identical weights
// (the crc32c handle); the first run's live /metrics must expose the
// pls_store_* cache series while the ranks are training.
func TestCorgi2WorldDeterministicWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP + on-disk storage end-to-end in -short mode")
	}
	const world = 4
	dir, maxShard := ingestCorgiDataset(t)
	base := pickBasePort(t, world)

	opts := Options{
		World:       world,
		Model:       "mlp",
		Strategy:    "corgi2",
		DataDir:     dir,
		CacheBytes:  3 * maxShard, // each rank holds 4 shards: evictions happen
		GroupEpochs: 3,            // several offline reshuffles across 12 epochs
		Epochs:      12,
		Batch:       16,
		LR:          0.05,
		Seed:        11,
		Timeout:     2 * time.Minute,
		OnPeerFail:  "abort",
	}

	// --- run 1: telemetry on, scraped mid-run ---
	first := func() string {
		o := opts
		o.TelemetryAddr = fmt.Sprintf("127.0.0.1:%d", base)
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		o.Rendezvous = rln.Addr().String()

		var out bytes.Buffer
		errs := make([]error, world)
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ro := o
				ro.Rank = rank
				w := io.Discard
				if rank == 0 {
					ro.RendezvousListener = rln
					w = &out
				}
				errs[rank] = Run(ro, w)
			}(r)
		}
		runDone := make(chan struct{})
		go func() { wg.Wait(); close(runDone) }()

		// Live scrape: every rank's /metrics must expose its own cache-tier
		// series while the run is in flight.
		scraped := [world]bool{}
		client := &http.Client{Timeout: 2 * time.Second}
	poll:
		for {
			select {
			case <-runDone:
				break poll
			default:
			}
			all := true
			for r := 0; r < world; r++ {
				if scraped[r] {
					continue
				}
				resp, err := client.Get(fmt.Sprintf("http://127.0.0.1:%d/metrics", base+r))
				if err == nil {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if strings.Contains(string(b), fmt.Sprintf(`pls_store_cache_hits_total{rank="%d"}`, r)) &&
						strings.Contains(string(b), fmt.Sprintf(`pls_store_pfs_read_bytes_total{rank="%d"}`, r)) {
						scraped[r] = true
						continue
					}
				}
				all = false
			}
			if all {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		<-runDone
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		for r := 0; r < world; r++ {
			if !scraped[r] {
				t.Errorf("rank %d /metrics never exposed the pls_store_* cache series during the run", r)
			}
		}
		return out.String()
	}()

	// The report must carry the storage tier's accounting: real cache hits
	// and real bytes pulled from the PFS tier.
	m := cacheLine.FindStringSubmatch(first)
	if m == nil {
		t.Fatalf("rank 0 report missing the cache line:\n%s", first)
	}
	if m[1] == "0" {
		t.Errorf("corgi2 world reported zero cache hits:\n%s", first)
	}
	if m[5] == "0" {
		t.Errorf("corgi2 world reported zero PFS read bytes:\n%s", first)
	}
	if !strings.Contains(first, "(ingested "+dir+")") {
		t.Errorf("report header does not name the ingested dataset:\n%s", first)
	}

	// --- run 2: same seed, no telemetry — weights must be bitwise equal ---
	second := runCorgiWorld(t, opts)

	w1 := weightsLine.FindStringSubmatch(first)
	w2 := weightsLine.FindStringSubmatch(second)
	if w1 == nil || w2 == nil {
		t.Fatalf("weights checksum line missing:\nrun1:\n%s\nrun2:\n%s", first, second)
	}
	if w1[1] != w2[1] {
		t.Fatalf("same-seed worlds diverged: weights crc32c %s vs %s", w1[1], w2[1])
	}
}

// TestCorgi2OptionsValidation pins the CLI-facing strategy plumbing.
func TestCorgi2OptionsValidation(t *testing.T) {
	s, err := (Options{Strategy: "corgi2", GroupEpochs: 4}).strategy()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "corgi2-g4" {
		t.Fatalf("strategy = %q, want corgi2-g4", got)
	}
	// GroupEpochs defaults to 1 so a bare -strategy=corgi2 just works.
	s, err = (Options{Strategy: "corgi2"}).strategy()
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupEpochs != 1 {
		t.Fatalf("default GroupEpochs = %d, want 1", s.GroupEpochs)
	}
}
