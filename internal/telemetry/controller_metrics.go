package telemetry

// ControllerMetrics is the telemetry bundle of the closed-loop shuffle
// controller (DESIGN.md §16): the exchange fraction currently in force and
// one decision counter per canonical reason label. Decisions happen once
// per epoch, but the bundle keeps the registry's allocation-free contract
// anyway — all labels are formatted at Register time, and Note only touches
// atomics.
type ControllerMetrics struct {
	// Q mirrors the fraction the next Scheduling will plan with — the
	// pls_controller_q gauge.
	Q Gauge

	reasons   []string
	decisions []Counter
	index     map[string]int
}

// NewControllerMetrics builds the bundle for the given canonical reason set
// (analysis.QReasons plus any runtime-only labels like "schedule").
func NewControllerMetrics(reasons []string) *ControllerMetrics {
	m := &ControllerMetrics{
		reasons:   append([]string(nil), reasons...),
		decisions: make([]Counter, len(reasons)),
		index:     make(map[string]int, len(reasons)),
	}
	for i, r := range m.reasons {
		m.index[r] = i
	}
	return m
}

// Register binds the bundle into reg under the canonical pls_controller_*
// names with a rank label. Call once per (registry, rank).
func (m *ControllerMetrics) Register(reg *Registry, rank int) {
	l := rankLabel(rank)
	reg.GaugeFunc("pls_controller_q",
		"Exchange fraction the closed-loop controller currently has in force.", l,
		func() float64 { return m.Q.Load() })
	for i, r := range m.reasons {
		c := &m.decisions[i]
		lr := Labels{"rank": l["rank"], "reason": r}
		reg.CounterFunc("pls_controller_decisions_total",
			"Controller Q decisions applied, by reason.", lr,
			func() float64 { return float64(c.Load()) })
	}
}

// Note records one applied decision: the new Q and the reason's counter.
// Unknown reasons update only the gauge.
func (m *ControllerMetrics) Note(q float64, reason string) {
	m.Q.Set(q)
	if i, ok := m.index[reason]; ok {
		m.decisions[i].Add(1)
	}
}
