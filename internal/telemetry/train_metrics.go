package telemetry

import (
	"strconv"
	"time"
)

// TrainMetrics is the bundle of atomic series the training loop updates on
// its hot path. Every field is a plain atomic word: the per-iteration cost
// of full instrumentation is a handful of uncontended atomic adds and
// stores — 0 allocs/op, guarded by the trainer's alloc-regression tests.
//
// The trainer holds the struct directly (no registry lookups at runtime);
// Register binds each field into a Registry under the canonical metric
// names (DESIGN.md §11's name registry) with a rank label.
type TrainMetrics struct {
	// Progress. Epoch/Iteration are the positions currently being
	// trained; EpochsTotal is the configured horizon.
	Epoch       Gauge
	Iteration   Gauge
	EpochsTotal Gauge
	// Samples counts training samples consumed (batch size per
	// iteration, summed).
	Samples Counter

	// Cumulative per-phase wall-clock, in nanoseconds (exported as
	// seconds). These mirror EpochStats' IOTime/ExchangeTime/FWBWTime/
	// GEWUTime but accumulate live, iteration by iteration, instead of at
	// epoch close.
	IONs, ExchangeNs, FWBWNs, GEWUNs Counter
	// GEWUWaitNs is the EXPOSED portion of the gradient exchange (blocked
	// in Wait); GEWUCommNs the total in-flight time. Their live ratio is
	// the overlap efficiency an operator watches during a run.
	GEWUWaitNs, GEWUCommNs Counter

	// Exact wire volume of the gradient all-reduce (sent + received frame
	// bytes, zero on inproc), mirroring EpochStats.GradWireBytes.
	GradWireBytes Counter

	// Elastic-world shape (DESIGN.md §15): the collective group's current
	// member count and the membership generation (bumped by every shrink or
	// join). WorldSize tracks GroupSize, not the rank name space.
	WorldSize  Gauge
	Generation Gauge
	// Checkpoint accounting: snapshots committed by this rank, cumulative
	// wall-clock spent encoding+writing them, and cumulative snapshot bytes.
	CheckpointWrites Counter
	CheckpointNs     Counter
	CheckpointBytes  Counter

	// start anchors the lifetime samples/sec gauge.
	start time.Time
}

// Register binds the bundle into reg under the canonical train_* names with
// a rank label. Call once per (registry, rank).
func (m *TrainMetrics) Register(reg *Registry, rank int) {
	m.start = time.Now()
	l := rankLabel(rank)
	reg.GaugeFunc("pls_train_epoch", "Epoch currently being trained on this rank.", l,
		func() float64 { return m.Epoch.Load() })
	reg.GaugeFunc("pls_train_iteration", "Iteration of the current epoch being trained.", l,
		func() float64 { return m.Iteration.Load() })
	reg.GaugeFunc("pls_train_epochs_total", "Configured number of training epochs.", l,
		func() float64 { return m.EpochsTotal.Load() })
	reg.CounterFunc("pls_train_samples_total", "Training samples consumed.", l,
		func() float64 { return float64(m.Samples.Load()) })
	reg.GaugeFunc("pls_train_samples_per_second", "Lifetime mean training throughput.", l,
		func() float64 {
			el := time.Since(m.start).Seconds()
			if el <= 0 {
				return 0
			}
			return float64(m.Samples.Load()) / el
		})
	phase := func(name string, c *Counter, p string) {
		lp := Labels{"rank": l["rank"], "phase": p}
		reg.CounterFunc(name, "Cumulative wall-clock spent in each training phase, seconds.", lp,
			func() float64 { return float64(c.Load()) / 1e9 })
	}
	phase("pls_train_phase_seconds_total", &m.IONs, "io")
	phase("pls_train_phase_seconds_total", &m.ExchangeNs, "exchange")
	phase("pls_train_phase_seconds_total", &m.FWBWNs, "fwbw")
	phase("pls_train_phase_seconds_total", &m.GEWUNs, "gewu")
	reg.CounterFunc("pls_train_gewu_wait_seconds_total",
		"Exposed (blocked-in-Wait) portion of the gradient exchange, seconds.", l,
		func() float64 { return float64(m.GEWUWaitNs.Load()) / 1e9 })
	reg.CounterFunc("pls_train_gewu_comm_seconds_total",
		"Total in-flight wall-clock of the gradient all-reduce, seconds.", l,
		func() float64 { return float64(m.GEWUCommNs.Load()) / 1e9 })
	reg.CounterFunc("pls_train_grad_wire_bytes_total",
		"Exact wire bytes moved by the gradient all-reduce (sent+recv, frame headers included).", l,
		func() float64 { return float64(m.GradWireBytes.Load()) })
	reg.GaugeFunc("pls_world_size", "Live members of the collective group (shrinks on failure, grows on join).", l,
		func() float64 { return m.WorldSize.Load() })
	reg.GaugeFunc("pls_world_generation", "Membership generation: re-formations of the collective group (shrink or grow).", l,
		func() float64 { return m.Generation.Load() })
	reg.CounterFunc("pls_checkpoint_writes_total", "Checkpoint snapshots committed by this rank.", l,
		func() float64 { return float64(m.CheckpointWrites.Load()) })
	reg.CounterFunc("pls_checkpoint_seconds_total", "Cumulative wall-clock spent encoding and writing checkpoints, seconds.", l,
		func() float64 { return float64(m.CheckpointNs.Load()) / 1e9 })
	reg.CounterFunc("pls_checkpoint_bytes_total", "Cumulative snapshot image bytes committed by this rank.", l,
		func() float64 { return float64(m.CheckpointBytes.Load()) })
}

// rankLabel renders the shared {rank="N"} label set.
func rankLabel(rank int) Labels {
	return Labels{"rank": strconv.Itoa(rank)}
}
