// Package telemetry is the runtime's live observability plane (DESIGN.md
// §11): a per-rank metric registry with allocation-free atomic counters and
// gauges, a Prometheus text-format exposition, and an HTTP server exposing
// /metrics, /trace (Chrome chrome://tracing JSON of the trace.Recorder),
// /healthz (peer-failure state), and /debug/pprof.
//
// The paper's whole argument rests on measuring where epoch time goes —
// exchange vs fwbw vs GEWU — and this package makes those signals visible
// while a run is in flight instead of only in a post-hoc trace dump. The
// design constraint throughout is the PR 2 invariant: instrumented hot
// paths must stay 0 allocs/op. Hot paths therefore hold direct *Counter /
// *Gauge pointers and touch a single atomic word; all naming, labeling, and
// formatting happens at registration or scrape time, never on the training
// iteration.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; Add and Load are single atomic operations and never allocate, so a
// counter may sit directly on a training or transport hot path.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta (which should be non-negative).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits in one
// atomic word. The zero value is ready to use and reads as 0.
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge value. It is a single atomic store — safe and
// allocation-free on hot paths.
func (g *Gauge) Set(val float64) { g.v.Store(math.Float64bits(val)) }

// SetInt stores an integer gauge value.
func (g *Gauge) SetInt(val int64) { g.Set(float64(val)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.v.Load()) }

// Labels name one metric series. They are rendered once at registration —
// scrapes only copy the prebuilt string — and sorted by key so the
// exposition is deterministic regardless of map iteration order.
type Labels map[string]string

// kind is the Prometheus metric type of a family.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
)

func (k kind) String() string {
	if k == kindCounter {
		return "counter"
	}
	return "gauge"
}

// series is one (name, labels) time series and its value source.
type series struct {
	labels string // prerendered `{k="v",...}` or ""
	read   func() float64
}

// family groups every series sharing a metric name under one HELP/TYPE
// header, as the Prometheus exposition format requires.
type family struct {
	name   string
	help   string
	kind   kind
	series []series
}

// Registry holds the metric families of one process (typically one rank;
// in-process multi-rank worlds register every rank into a single registry
// with a rank label). Registration takes a lock and may allocate; it
// happens once at startup. Scraping (WritePrometheus) takes the same lock
// but only reads atomics and prebuilt strings — it never contends with hot
// paths, which touch their own atomic words without any registry access.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order
	index    map[string]*family
	seen     map[string]bool // name+labels duplicates
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family), seen: make(map[string]bool)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// renderLabels produces the canonical `{k="v",...}` string (empty when
// there are no labels), with keys sorted and values escaped.
func renderLabels(labels Labels) (string, error) {
	if len(labels) == 0 {
		return "", nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRe.MatchString(k) {
			return "", fmt.Errorf("telemetry: invalid label name %q", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		v := labels[k]
		for _, r := range v {
			switch r {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(r)
			}
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), nil
}

// register adds one series, creating its family on first sight. It returns
// an error for invalid names, duplicate series, or a name re-registered
// with a different type or help string.
func (r *Registry) register(name, help string, k kind, labels Labels, read func() float64) error {
	if !nameRe.MatchString(name) {
		return fmt.Errorf("telemetry: invalid metric name %q", name)
	}
	ls, err := renderLabels(labels)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + ls
	if r.seen[key] {
		return fmt.Errorf("telemetry: duplicate series %s%s", name, ls)
	}
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.index[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		return fmt.Errorf("telemetry: metric %s re-registered as %s, was %s", name, k, f.kind)
	}
	r.seen[key] = true
	f.series = append(f.series, series{labels: ls, read: read})
	return nil
}

// mustRegister panics on registration errors — registration happens once at
// startup with programmer-controlled names, so a failure is a bug.
func (r *Registry) mustRegister(name, help string, k kind, labels Labels, read func() float64) {
	if err := r.register(name, help, k, labels, read); err != nil {
		panic(err)
	}
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.mustRegister(name, help, kindCounter, labels, func() float64 { return float64(c.Load()) })
	return c
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.mustRegister(name, help, kindGauge, labels, func() float64 { return g.Load() })
	return g
}

// GaugeFunc registers a gauge whose value is sampled by fn at scrape time.
// fn runs on the scraper's goroutine and must be safe to call concurrently
// with the instrumented code (read atomics, take no long-held locks).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mustRegister(name, help, kindGauge, labels, fn)
}

// CounterFunc registers a counter whose cumulative value is sampled by fn
// at scrape time — the pull-model bridge for subsystems that already keep
// their own atomic counters (e.g. the TCP transport's byte accounting).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.mustRegister(name, help, kindCounter, labels, fn)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, one line per
// series, families in registration order, series in registration order
// within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family/series structure so sampling below runs without
	// blocking registration; series slices are append-only.
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b []byte
	for _, f := range fams {
		b = b[:0]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind.String()...)
		b = append(b, '\n')
		for _, s := range f.series {
			b = append(b, f.name...)
			b = append(b, s.labels...)
			b = append(b, ' ')
			b = appendValue(b, s.read())
			b = append(b, '\n')
		}
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("telemetry: writing exposition: %w", err)
		}
	}
	return nil
}

// appendValue renders a sample value: integers exactly (counters are exact
// cross-check targets for the wire-byte conformance tests), other floats in
// shortest-round-trip form.
func appendValue(b []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
