package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"plshuffle/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerEndpoints walks every route of one rank's plane: /metrics
// content type and body, /healthz flipping 200→503 when the health source
// records a dead peer, /trace in both formats, and /debug/pprof.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pls_test_total", "t", Labels{"rank": "0"})
	c.Add(41)

	rec := trace.NewRecorder()
	rec.Record(trace.Event{Rank: 0, Epoch: 0, Phase: trace.PhaseIO, Duration: time.Millisecond, Bytes: 64})

	var dead atomic.Bool
	srv, err := NewServer(ServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Trace:    rec,
		Health: func() Health {
			if dead.Load() {
				return Health{OK: false, Rank: 0, FailedPeers: []int{2}}
			}
			return Health{OK: true, Rank: 0}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	if !strings.Contains(string(body), `pls_test_total{rank="0"} 41`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	if code, body := get(t, srv.URL()+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	dead.Store(true)
	code, hb := get(t, srv.URL()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/healthz after failure = %d, want 503", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(hb), &h); err != nil || h.OK || len(h.FailedPeers) != 1 || h.FailedPeers[0] != 2 {
		t.Errorf("/healthz body = %q, want failed_peers [2] (err %v)", hb, err)
	}

	if code, body := get(t, srv.URL()+"/trace"); code != http.StatusOK || !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/trace = %d, want Chrome JSON:\n%s", code, body)
	}
	if code, body := get(t, srv.URL()+"/trace?format=jsonl"); code != http.StatusOK || !strings.Contains(body, `"phase":"io"`) {
		t.Errorf("/trace?format=jsonl = %d %q, want one io event line", code, body)
	}
	if code, _ := get(t, srv.URL()+"/trace?format=nope"); code != http.StatusBadRequest {
		t.Errorf("/trace?format=nope = %d, want 400", code)
	}
	if code, _ := get(t, srv.URL()+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d, want 200", code)
	}
}

// TestTraceJSONLDeterministic pins satellite 5 end to end: events recorded
// in scrambled order come back in canonical (rank, epoch, phase) order, and
// repeated scrapes are byte-identical.
func TestTraceJSONLDeterministic(t *testing.T) {
	rec := trace.NewRecorder()
	// Scrambled on purpose.
	rec.Record(trace.Event{Rank: 1, Epoch: 0, Phase: trace.PhaseFWBW, Duration: 3})
	rec.Record(trace.Event{Rank: 0, Epoch: 1, Phase: trace.PhaseIO, Duration: 2})
	rec.Record(trace.Event{Rank: 0, Epoch: 0, Phase: trace.PhaseGEWU, Duration: 1})
	rec.Record(trace.Event{Rank: 0, Epoch: 0, Phase: trace.PhaseExchange, Duration: 4})

	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Registry: NewRegistry(), Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	_, first := get(t, srv.URL()+"/trace?format=jsonl")
	_, second := get(t, srv.URL()+"/trace?format=jsonl")
	if first != second {
		t.Fatalf("two scrapes differ:\n%s\nvs\n%s", first, second)
	}
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4:\n%s", len(lines), first)
	}
	type key struct {
		Rank  int    `json:"rank"`
		Epoch int    `json:"epoch"`
		Phase string `json:"phase"`
	}
	want := []key{
		{0, 0, "exchange"}, // exchange precedes gewu in execution order
		{0, 0, "gewu"},
		{0, 1, "io"},
		{1, 0, "fwbw"},
	}
	for i, line := range lines {
		var k key
		if err := json.Unmarshal([]byte(line), &k); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if k != want[i] {
			t.Fatalf("line %d = %+v, want %+v", i, k, want[i])
		}
	}
}

// TestClusterAggregation spins three per-rank servers and asserts rank 0's
// /cluster/metrics is a valid single exposition: every rank's series
// present, one HELP/TYPE header per family, and a readable comment for an
// unreachable target rather than a failed scrape.
func TestClusterAggregation(t *testing.T) {
	var targets []string
	var servers []*Server
	for rank := 0; rank < 3; rank++ {
		reg := NewRegistry()
		c := reg.Counter("pls_cluster_total", "cluster test", Labels{"rank": fmt.Sprint(rank)})
		c.Add(int64(100 + rank))
		cfg := ServerConfig{Addr: "127.0.0.1:0", Registry: reg}
		if rank == 0 {
			cfg.ClusterTargets = func() []string { return targets }
		}
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		targets = append(targets, srv.URL())
	}
	// One dead target: must degrade to a comment, not an error.
	targets = append(targets, "http://127.0.0.1:1")

	code, body := get(t, servers[0].URL()+"/cluster/metrics")
	if code != http.StatusOK {
		t.Fatalf("/cluster/metrics = %d, want 200", code)
	}
	for rank := 0; rank < 3; rank++ {
		want := fmt.Sprintf(`pls_cluster_total{rank="%d"} %d`, rank, 100+rank)
		if !strings.Contains(body, want) {
			t.Errorf("aggregation missing %q:\n%s", want, body)
		}
	}
	if n := strings.Count(body, "# HELP pls_cluster_total"); n != 1 {
		t.Errorf("HELP header appears %d times in aggregation, want exactly 1:\n%s", n, body)
	}
	if n := strings.Count(body, "# TYPE pls_cluster_total"); n != 1 {
		t.Errorf("TYPE header appears %d times in aggregation, want exactly 1:\n%s", n, body)
	}
	if !strings.Contains(body, "unreachable") {
		t.Errorf("dead target not reported as a comment:\n%s", body)
	}
}

// TestServerCloseNoGoroutineLeak pins the shutdown contract: Close returns
// only after the serve goroutine exits, so repeated start/stop cycles leave
// the goroutine count flat.
func TestServerCloseNoGoroutineLeak(t *testing.T) {
	reg := NewRegistry()
	// Warm up the http package's lazy singletons outside the measured window.
	srv0, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	get(t, srv0.URL()+"/metrics")
	srv0.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		get(t, srv.URL()+"/metrics")
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Idle HTTP client keep-alive reapers settle asynchronously; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 5 server start/stop cycles", before, runtime.NumGoroutine())
		}
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
	}
}
