package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"plshuffle/internal/trace"
)

// Health is one rank's liveness verdict, served by /healthz. OK means every
// peer the transport tracks is believed alive; FailedPeers lists the world
// ranks reported dead (DESIGN.md §10's failure registry).
type Health struct {
	OK          bool  `json:"ok"`
	Rank        int   `json:"rank"`
	FailedPeers []int `json:"failed_peers,omitempty"`
}

// ServerConfig wires a Server's endpoints.
type ServerConfig struct {
	// Addr is the listen address (host:port). Port 0 binds an ephemeral
	// port (Addr() reports the bound one).
	Addr string
	// Registry backs /metrics. Required.
	Registry *Registry
	// Trace, when non-nil, backs /trace: Chrome chrome://tracing JSON by
	// default, the JSONL export with ?format=jsonl.
	Trace *trace.Recorder
	// Health, when non-nil, backs /healthz: 200 while OK, 503 once a peer
	// failure is recorded. When nil, /healthz always reports OK (an
	// inproc world has no independent peers to lose).
	Health func() Health
	// ClusterTargets, when non-nil, enables /cluster/metrics: the handler
	// scrapes each returned base URL's /metrics and streams the
	// concatenation — the rank-0 aggregation point of a distributed world.
	ClusterTargets func() []string
	// ScrapeTimeout bounds one upstream scrape of /cluster/metrics.
	// Default 2s.
	ScrapeTimeout time.Duration
}

// Server is one rank's telemetry HTTP endpoint. Create it with NewServer;
// it serves until Close, which shuts the listener and handlers down
// cleanly (no goroutine survives Close — the shutdown-leak test pins it).
type Server struct {
	cfg      ServerConfig
	ln       net.Listener
	srv      *http.Server
	done     chan struct{} // closed when Serve returns
	closeOne sync.Once
	closeErr error
}

// NewServer binds addr and starts serving the telemetry endpoints:
//
//	/metrics         Prometheus text exposition of cfg.Registry
//	/trace           Chrome trace JSON (?format=jsonl for JSON Lines)
//	/healthz         peer-failure state, 200 ok / 503 degraded
//	/debug/pprof/*   the standard Go profiling handlers
//	/cluster/metrics rank-0 aggregation (only with ClusterTargets)
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("telemetry: NewServer: nil Registry")
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 2 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.Trace != nil {
		mux.HandleFunc("/trace", s.handleTrace)
	}
	if cfg.ClusterTargets != nil {
		mux.HandleFunc("/cluster/metrics", s.handleCluster)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		// Serve returns http.ErrServerClosed on Shutdown/Close — the
		// normal path; anything else died on its own and is surfaced by
		// Close.
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.closeErr = err
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (resolves port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL, e.g. "http://127.0.0.1:8090".
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down: the listener closes immediately, in-flight
// handlers get a short grace period, and Close returns only after the serve
// goroutine has exited — the run's teardown leaks nothing.
func (s *Server) Close() error {
	s.closeOne.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil {
			// Stragglers past the grace period are cut off hard.
			s.srv.Close()
		}
		<-s.done
	})
	return s.closeErr
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Registry.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{OK: true}
	if s.cfg.Health != nil {
		h = s.cfg.Health()
	}
	w.Header().Set("Content-Type", "application/json")
	if !h.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	events := s.cfg.Trace.Events()
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChromeTrace(w, events)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range events {
			if enc.Encode(e) != nil {
				return
			}
		}
	default:
		http.Error(w, "unknown format (want chrome or jsonl)", http.StatusBadRequest)
	}
}

// handleCluster streams the concatenation of every target rank's /metrics.
// Per-rank series already carry a rank label, so plain concatenation is a
// valid exposition as long as each family's HELP/TYPE header appears only
// once — headers after the first occurrence are filtered out here.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	client := &http.Client{Timeout: s.cfg.ScrapeTimeout}
	seenHeader := make(map[string]bool)
	for i, base := range s.cfg.ClusterTargets() {
		body, err := scrape(client, base+"/metrics")
		if err != nil {
			fmt.Fprintf(w, "# cluster target %d (%s) unreachable: %v\n", i, base, err)
			continue
		}
		writeFiltered(w, body, seenHeader)
	}
}

func scrape(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// writeFiltered copies an exposition, dropping HELP/TYPE lines for families
// already emitted.
func writeFiltered(w io.Writer, body []byte, seen map[string]bool) {
	for len(body) > 0 {
		line := body
		if i := indexByte(body, '\n'); i >= 0 {
			line = body[:i+1]
			body = body[i+1:]
		} else {
			body = nil
		}
		if len(line) > 2 && line[0] == '#' {
			name := headerFamily(line)
			if name != "" {
				key := string(line[:min(len(line), 7)]) + name // "# HELP "/"# TYPE " + family
				if seen[key] {
					continue
				}
				seen[key] = true
			}
		}
		w.Write(line)
	}
}

// headerFamily extracts the family name from a "# HELP name ..." or
// "# TYPE name ..." line, or returns "".
func headerFamily(line []byte) string {
	const prefixLen = len("# HELP ")
	if len(line) < prefixLen {
		return ""
	}
	rest := line[prefixLen:]
	end := indexByte(rest, ' ')
	if end < 0 {
		if end = indexByte(rest, '\n'); end < 0 {
			end = len(rest)
		}
	}
	return string(rest[:end])
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// OffsetAddr returns addr with its port shifted by rank — the per-rank
// port-offset rule of a -launch world: the base -telemetry-addr names rank
// 0's endpoint, and rank r serves on port+r, so the launcher (and the
// rank-0 cluster aggregator) can address every rank's plane without any
// extra coordination.
func OffsetAddr(addr string, rank int) (string, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: address %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("telemetry: address %q: non-numeric port: %w", addr, err)
	}
	if rank != 0 && port == 0 {
		return "", fmt.Errorf("telemetry: address %q: port 0 cannot be rank-offset (pick a fixed base port)", addr)
	}
	shifted := port
	if port != 0 {
		shifted = port + rank
		if shifted > 65535 {
			return "", fmt.Errorf("telemetry: address %q: port %d+%d exceeds 65535", addr, port, rank)
		}
	}
	return net.JoinHostPort(host, strconv.Itoa(shifted)), nil
}
