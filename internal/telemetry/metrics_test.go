package telemetry

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pls_test_total", "a counter", nil)
	g := reg.Gauge("pls_test_gauge", "a gauge", nil)
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	g.Set(2.5)
	if got := g.Load(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.SetInt(-3)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %v, want -3", got)
	}
}

func scrapeText(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestWritePrometheusFormat pins the exposition contract: one HELP/TYPE
// header per family (even with many series), sorted+escaped labels, exact
// integer rendering (the wire-byte conformance tests diff these values
// bitwise against int64 accounting), and shortest-round-trip floats.
func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	for _, rank := range []string{"0", "1"} {
		c := reg.Counter("pls_bytes_total", "bytes", Labels{"rank": rank, "direction": "sent"})
		if rank == "1" {
			c.Add(999999999999999) // largest magnitude rendered as an exact integer
		}
	}
	g := reg.Gauge("pls_q", "effective q", Labels{"weird": "a\\b\"c\nd"})
	g.Set(0.25)

	text := scrapeText(t, reg)
	if n := strings.Count(text, "# HELP pls_bytes_total"); n != 1 {
		t.Errorf("HELP header appears %d times, want 1\n%s", n, text)
	}
	if n := strings.Count(text, "# TYPE pls_bytes_total counter"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1\n%s", n, text)
	}
	for _, want := range []string{
		`pls_bytes_total{direction="sent",rank="0"} 0` + "\n", // keys sorted
		`pls_bytes_total{direction="sent",rank="1"} 999999999999999` + "\n",
		`pls_q{weird="a\\b\"c\nd"} 0.25` + "\n",
		"# TYPE pls_q gauge\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestFuncMetricsSampleAtScrape pins the pull model: GaugeFunc/CounterFunc
// read their source at scrape time, not at registration.
func TestFuncMetricsSampleAtScrape(t *testing.T) {
	reg := NewRegistry()
	v := 1.0
	reg.GaugeFunc("pls_live", "sampled", nil, func() float64 { return v })
	if !strings.Contains(scrapeText(t, reg), "pls_live 1\n") {
		t.Fatal("first scrape should read 1")
	}
	v = 42
	if !strings.Contains(scrapeText(t, reg), "pls_live 42\n") {
		t.Fatal("second scrape should read the updated 42")
	}
}

func TestRegisterErrors(t *testing.T) {
	reg := NewRegistry()
	if err := reg.register("0bad", "h", kindCounter, nil, nil); err == nil {
		t.Error("invalid metric name accepted")
	}
	if err := reg.register("pls_ok", "h", kindCounter, Labels{"0bad": "v"}, nil); err == nil {
		t.Error("invalid label name accepted")
	}
	read := func() float64 { return 0 }
	if err := reg.register("pls_dup", "h", kindCounter, Labels{"a": "b"}, read); err != nil {
		t.Fatal(err)
	}
	if err := reg.register("pls_dup", "h", kindCounter, Labels{"a": "b"}, read); err == nil {
		t.Error("duplicate series accepted")
	}
	if err := reg.register("pls_dup", "h", kindGauge, Labels{"a": "c"}, read); err == nil {
		t.Error("kind mismatch within a family accepted")
	}
	// Same family, different labels: fine.
	if err := reg.register("pls_dup", "h", kindCounter, Labels{"a": "c"}, read); err != nil {
		t.Errorf("second series of a family rejected: %v", err)
	}
}

func TestOffsetAddr(t *testing.T) {
	cases := []struct {
		addr string
		rank int
		want string
		err  bool
	}{
		{"127.0.0.1:9000", 0, "127.0.0.1:9000", false},
		{"127.0.0.1:9000", 3, "127.0.0.1:9003", false},
		{":9000", 2, ":9002", false},
		{"[::1]:9000", 1, "[::1]:9001", false},
		{"127.0.0.1:0", 0, "127.0.0.1:0", false}, // ephemeral ok for rank 0
		{"127.0.0.1:0", 1, "", true},             // but cannot be offset
		{"127.0.0.1:65535", 1, "", true},         // overflow
		{"no-port", 0, "", true},
		{"127.0.0.1:http", 0, "", true},
	}
	for _, tc := range cases {
		got, err := OffsetAddr(tc.addr, tc.rank)
		if tc.err {
			if err == nil {
				t.Errorf("OffsetAddr(%q, %d) = %q, want error", tc.addr, tc.rank, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("OffsetAddr(%q, %d): %v", tc.addr, tc.rank, err)
			continue
		}
		if got != tc.want {
			t.Errorf("OffsetAddr(%q, %d) = %q, want %q", tc.addr, tc.rank, got, tc.want)
		}
	}
}

// TestHotPathOpsZeroAlloc pins the PR 2 invariant at the source: the only
// operations instrumented hot paths perform — Counter.Add, Gauge.Set/SetInt,
// and the Load side sampled by scrapes — must not allocate.
func TestHotPathOpsZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pls_hot_total", "h", Labels{"rank": "0"})
	g := reg.Gauge("pls_hot_gauge", "h", Labels{"rank": "0"})
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Add(128)
		g.Set(0.5)
		g.SetInt(7)
		_ = c.Load()
		_ = g.Load()
	}); allocs > 0 {
		t.Fatalf("hot-path metric ops allocate %.1f times per run, want 0", allocs)
	}
}
