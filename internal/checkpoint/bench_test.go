package checkpoint

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchSections builds a realistic per-rank snapshot for a model of the
// given weight size: weights plus one momentum buffer of the same shape,
// a few RNG streams, and an 8K-sample store-ID list — the layout
// train.snapshotSections produces.
func benchSections(modelBytes int) map[string][]byte {
	rng := rand.New(rand.NewSource(1))
	blob := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	return map[string][]byte{
		"weights":   blob(modelBytes),
		"optimizer": blob(modelBytes),
		"rng":       blob(256),
		"store_ids": blob(4 + 8*8192),
	}
}

// BenchmarkEncodeSnapshot measures the snapshot codec alone: sectioning,
// length-prefixing, and the crc32c footer over a model-sized payload. The
// snapshot-bytes/model-byte column is the format's size overhead — how many
// durable bytes one byte of model state costs (moments and cursors
// included), the satellite metric for checkpoint capacity planning.
func BenchmarkEncodeSnapshot(b *testing.B) {
	for _, mb := range []int{1 << 16, 1 << 20, 8 << 20} {
		sections := benchSections(mb)
		var in int64
		for _, s := range sections {
			in += int64(len(s))
		}
		b.Run(fmt.Sprintf("model%dKB", mb>>10), func(b *testing.B) {
			img := EncodeSnapshot(sections)
			b.SetBytes(in)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				img = EncodeSnapshot(sections)
			}
			b.ReportMetric(float64(len(img))/float64(mb), "snapshot-B/model-B")
		})
	}
}

// BenchmarkWriteRestore measures the durable round-trip a training step
// actually pays at a checkpoint boundary: encode, fsync'd temp write,
// atomic commit, then the resume side's read-back with CRC verification.
func BenchmarkWriteRestore(b *testing.B) {
	for _, mb := range []int{1 << 16, 1 << 20, 8 << 20} {
		sections := benchSections(mb)
		b.Run(fmt.Sprintf("model%dKB", mb>>10), func(b *testing.B) {
			dir := b.TempDir()
			img := EncodeSnapshot(sections)
			b.SetBytes(int64(len(img)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := RankPath(dir, i%64)
				if err := WriteTemp(path, img); err != nil {
					b.Fatal(err)
				}
				if err := Commit(path); err != nil {
					b.Fatal(err)
				}
				if _, err := ReadRankFile(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
