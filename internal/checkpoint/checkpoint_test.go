package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sampleSections() map[string][]byte {
	return map[string][]byte{
		"weights":   bytes.Repeat([]byte{1, 2, 3, 4}, 64),
		"optimizer": {9, 8, 7},
		"rng":       {},
		"store_ids": {42},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := sampleSections()
	img := EncodeSnapshot(in)
	if !bytes.Equal(img, EncodeSnapshot(in)) {
		t.Fatal("snapshot encoding is not deterministic")
	}
	out, err := DecodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("section count %d != %d", len(out), len(in))
	}
	for k, v := range in {
		if !bytes.Equal(out[k], v) {
			t.Fatalf("section %q corrupted", k)
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	img := EncodeSnapshot(sampleSections())
	for _, tc := range []struct {
		name string
		muck func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"badmagic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"badversion", func(b []byte) []byte { b[4] = Version + 1; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.muck(append([]byte(nil), img...))
			if _, err := DecodeSnapshot(b); err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
		})
	}
}

// writeSnapshot commits a complete snapshot directory for the given ranks.
func writeSnapshot(t *testing.T, base string, nextEpoch int, ranks []int, meta Meta) string {
	t.Helper()
	dir := Dir(base, nextEpoch)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	meta.NextEpoch = nextEpoch
	for _, r := range ranks {
		img := EncodeSnapshot(map[string][]byte{"rank": {byte(r), byte(nextEpoch)}})
		path := RankPath(dir, r)
		if err := WriteTemp(path, img); err != nil {
			t.Fatal(err)
		}
		if err := Commit(path); err != nil {
			t.Fatal(err)
		}
		meta.Ranks = append(meta.Ranks, RankFile{Rank: r, CRC: CRC(img), Size: int64(len(img))})
	}
	if err := WriteManifest(dir, meta); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLoadLatestPicksNewestComplete(t *testing.T) {
	base := t.TempDir()
	writeSnapshot(t, base, 2, []int{0, 1}, Meta{WorldSize: 2, Seed: 7})
	writeSnapshot(t, base, 5, []int{0, 1}, Meta{WorldSize: 2, Seed: 7})

	dir, meta, err := LoadLatest(base)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NextEpoch != 5 || dir != Dir(base, 5) {
		t.Fatalf("loaded %s (next epoch %d), want the epoch-5 snapshot", dir, meta.NextEpoch)
	}
	sections, err := ReadRankFile(RankPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sections["rank"], []byte{1, 5}) {
		t.Fatal("rank file contents wrong")
	}
}

// TestLoadLatestIgnoresTornSnapshot is the crash-mid-checkpoint contract:
// a snapshot directory holding only temp files (some torn) and no committed
// manifest is invisible, and the previous complete snapshot loads.
func TestLoadLatestIgnoresTornSnapshot(t *testing.T) {
	base := t.TempDir()
	writeSnapshot(t, base, 3, []int{0, 1}, Meta{WorldSize: 2, Seed: 7})

	// A later snapshot that died mid-write: rank 0's temp file is torn in
	// half, rank 1 never renamed, no manifest.
	dir := Dir(base, 6)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	img := EncodeSnapshot(map[string][]byte{"rank": {0, 6}})
	if err := WriteTemp(RankPath(dir, 0), img[:len(img)/2]); err != nil {
		t.Fatal(err)
	}
	if err := WriteTemp(RankPath(dir, 1), img); err != nil {
		t.Fatal(err)
	}

	_, meta, err := LoadLatest(base)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NextEpoch != 3 {
		t.Fatalf("loaded next epoch %d, want the previous complete snapshot (3)", meta.NextEpoch)
	}
}

// TestLoadLatestSkipsCorruptedNewest: a committed manifest whose rank file
// was later damaged fails Verify, and the scan falls back to an older one.
func TestLoadLatestSkipsCorruptedNewest(t *testing.T) {
	base := t.TempDir()
	writeSnapshot(t, base, 2, []int{0}, Meta{WorldSize: 1})
	dir := writeSnapshot(t, base, 4, []int{0}, Meta{WorldSize: 1})
	if err := os.Truncate(RankPath(dir, 0), 5); err != nil {
		t.Fatal(err)
	}
	_, meta, err := LoadLatest(base)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NextEpoch != 2 {
		t.Fatalf("loaded next epoch %d, want fallback snapshot (2)", meta.NextEpoch)
	}
}

func TestLoadLatestEmpty(t *testing.T) {
	base := t.TempDir()
	if _, _, err := LoadLatest(base); err == nil {
		t.Fatal("empty base directory yielded a snapshot")
	}
	if err := os.WriteFile(filepath.Join(base, "ckpt-junk"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(base); err == nil {
		t.Fatal("junk entries yielded a snapshot")
	}
}

// TestDegradedGroupRecorded pins the satellite fix: the manifest carries the
// post-shrink group, and LiveRanks resolves it.
func TestDegradedGroupRecorded(t *testing.T) {
	base := t.TempDir()
	writeSnapshot(t, base, 7, []int{0, 2, 3}, Meta{WorldSize: 4, Group: []int{0, 2, 3}, Generation: 1})
	_, meta, err := LoadLatest(base)
	if err != nil {
		t.Fatal(err)
	}
	got := meta.LiveRanks()
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("LiveRanks = %v, want [0 2 3]", got)
	}
	full := Meta{WorldSize: 3}
	if lr := full.LiveRanks(); len(lr) != 3 || lr[2] != 2 {
		t.Fatalf("full-world LiveRanks = %v", lr)
	}
}

func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot(sampleSections()))
	f.Add(EncodeSnapshot(map[string][]byte{}))
	img := EncodeSnapshot(sampleSections())
	f.Add(img[:len(img)-2])
	f.Fuzz(func(t *testing.T, b []byte) {
		sections, err := DecodeSnapshot(b)
		if err == nil {
			// Valid decodes must re-encode to an image that decodes equal.
			if _, err := DecodeSnapshot(EncodeSnapshot(sections)); err != nil {
				t.Fatalf("re-encode of valid snapshot failed: %v", err)
			}
		}
	})
}
