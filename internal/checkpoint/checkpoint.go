// Package checkpoint implements the on-disk format of the elastic trainer's
// snapshots (DESIGN.md §15): one directory per snapshot containing a
// CRC-checksummed, versioned file per rank plus a JSON manifest that rank 0
// commits last. Every write follows the shard store's discipline — write to
// a temp name, fsync, rename — so a crash at any instant leaves either the
// previous complete snapshot or a torn temp file that loading ignores, never
// a half-written snapshot that parses.
//
// The commit protocol (driven by internal/train) is:
//
//  1. every rank encodes its sections and writes rank-<r>.snap.tmp (fsync);
//  2. every rank reports (crc32c, size) to rank 0 over the wire;
//  3. every rank renames its temp file into place;
//  4. rank 0, having gathered all reports, writes MANIFEST.json atomically;
//  5. a barrier releases the world back into training.
//
// A snapshot without a manifest, or whose files disagree with the manifest's
// checksums, is invisible to LoadLatest — the previous snapshot wins.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Version is the snapshot format version, stored in both the per-rank file
// magic and the manifest; either mismatching rejects the snapshot.
const Version = 1

// ManifestName is the snapshot directory's manifest file, whose atomic
// appearance is the snapshot's commit point.
const ManifestName = "MANIFEST.json"

// snapMagic identifies a per-rank snapshot file ("PLSC" + Version).
var snapMagic = [5]byte{'P', 'L', 'S', 'C', Version}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RankFile is one rank's entry in the manifest: the checksum and size the
// committed snapshot file must match.
type RankFile struct {
	Rank int    `json:"rank"`
	CRC  uint32 `json:"crc32c"`
	Size int64  `json:"size"`
}

// Meta is the manifest (MANIFEST.json), written atomically by rank 0 after
// every rank has durably written its snapshot file. It records everything a
// resume needs to rebuild the world shape before any rank state is read —
// including the post-shrink group of a degraded world, so a resume restores
// the degraded partition rather than silently reverting to the pre-failure
// one.
type Meta struct {
	Version   int `json:"version"`
	NextEpoch int `json:"next_epoch"` // first epoch the resumed run executes
	WorldSize int `json:"world_size"` // world size at snapshot time (rank name space)
	// Group lists the live world ranks at snapshot time, sorted; nil means
	// the full world [0, WorldSize). A degraded world (post-Shrink) has
	// len(Group) < WorldSize, and a resume must relaunch len(Group) ranks,
	// mapping new rank i onto Group[i]'s snapshot.
	Group      []int  `json:"group,omitempty"`
	Generation int    `json:"generation"` // collective-epoch salt at snapshot time
	Seed       uint64 `json:"seed"`
	// Fingerprint is an opaque digest of the run configuration (dataset,
	// model, strategy, Q, batch, ...); resume refuses a snapshot whose
	// fingerprint differs from the resuming run's.
	Fingerprint string     `json:"fingerprint"`
	Ranks       []RankFile `json:"ranks"`
}

// LiveRanks returns the manifest's group resolved to an explicit sorted
// slice ([0, WorldSize) when Group is nil).
func (m *Meta) LiveRanks() []int {
	if m.Group != nil {
		return m.Group
	}
	out := make([]int, m.WorldSize)
	for i := range out {
		out[i] = i
	}
	return out
}

// Dir returns the directory of the snapshot taken before nextEpoch under
// the checkpoint base directory.
func Dir(base string, nextEpoch int) string {
	return filepath.Join(base, fmt.Sprintf("ckpt-%08d", nextEpoch))
}

// RankPath returns the committed per-rank snapshot path inside a snapshot
// directory.
func RankPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank-%d.snap", rank))
}

// EncodeSnapshot serializes named sections into a self-verifying file
// image: magic | u64 payload length | payload | u32 crc32c over everything
// before it. Sections are sorted by name, so the image is deterministic.
func EncodeSnapshot(sections map[string][]byte) []byte {
	names := make([]string, 0, len(sections))
	for k := range sections {
		names = append(names, k)
	}
	sort.Strings(names)
	n := 4
	for _, name := range names {
		n += 4 + len(name) + 8 + len(sections[name])
	}
	buf := make([]byte, 0, len(snapMagic)+8+n+4)
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(sections[name])))
		buf = append(buf, sections[name]...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf
}

// DecodeSnapshot parses and verifies a file image written by EncodeSnapshot.
// Any truncation, bit flip, or version mismatch returns an error.
func DecodeSnapshot(buf []byte) (map[string][]byte, error) {
	if len(buf) < len(snapMagic)+8+4+4 {
		return nil, fmt.Errorf("checkpoint: snapshot too short (%d bytes)", len(buf))
	}
	if [5]byte(buf[:5]) != snapMagic {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a snapshot or wrong version)", buf[:5])
	}
	body, footer := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(footer); got != want {
		return nil, fmt.Errorf("checkpoint: crc mismatch (%08x != %08x): torn or corrupt snapshot", got, want)
	}
	payloadLen := binary.LittleEndian.Uint64(buf[5:13])
	if int(payloadLen) != len(body)-13 {
		return nil, fmt.Errorf("checkpoint: payload length %d does not match file size", payloadLen)
	}
	p := body[13:]
	if len(p) < 4 {
		return nil, fmt.Errorf("checkpoint: truncated section table")
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]
	sections := make(map[string][]byte, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 4 {
			return nil, fmt.Errorf("checkpoint: truncated section %d", i)
		}
		nameLen := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if nameLen > 1024 || int(nameLen) > len(p) {
			return nil, fmt.Errorf("checkpoint: implausible section name length %d", nameLen)
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		if len(p) < 8 {
			return nil, fmt.Errorf("checkpoint: truncated section %q", name)
		}
		dataLen := binary.LittleEndian.Uint64(p)
		p = p[8:]
		if dataLen > uint64(len(p)) {
			return nil, fmt.Errorf("checkpoint: section %q claims %d bytes, %d remain", name, dataLen, len(p))
		}
		sections[name] = p[:dataLen:dataLen]
		p = p[dataLen:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after sections", len(p))
	}
	return sections, nil
}

// CRC returns the crc32c a manifest records for a file image.
func CRC(image []byte) uint32 { return crc32.Checksum(image, castagnoli) }

// WriteTemp durably writes the image to path+".tmp" (fsync before return)
// without committing it: a crash after WriteTemp leaves a torn or complete
// temp file that loading never looks at. Commit renames it into place.
func WriteTemp(path string, image []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: WriteTemp: %w", err)
	}
	if _, err := f.Write(image); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: WriteTemp: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: WriteTemp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: WriteTemp: %w", err)
	}
	return nil
}

// Commit renames path+".tmp" (written by WriteTemp) into place and fsyncs
// the containing directory so the rename is durable.
func Commit(path string) error {
	if err := os.Rename(path+".tmp", path); err != nil {
		return fmt.Errorf("checkpoint: Commit: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// ReadRankFile loads and verifies one committed per-rank snapshot.
func ReadRankFile(path string) (map[string][]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return DecodeSnapshot(buf)
}

// WriteManifest atomically commits the manifest, completing the snapshot.
func WriteManifest(dir string, meta Meta) error {
	meta.Version = Version
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: WriteManifest: %w", err)
	}
	path := filepath.Join(dir, ManifestName)
	if err := WriteTemp(path, append(b, '\n')); err != nil {
		return err
	}
	return Commit(path)
}

// ReadManifest loads and validates a snapshot directory's manifest.
func ReadManifest(dir string) (Meta, error) {
	var meta Meta
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return meta, fmt.Errorf("checkpoint: %w", err)
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		return meta, fmt.Errorf("checkpoint: parsing manifest in %s: %w", dir, err)
	}
	if meta.Version != Version {
		return meta, fmt.Errorf("checkpoint: manifest version %d, this build reads %d", meta.Version, Version)
	}
	if len(meta.Ranks) == 0 {
		return meta, fmt.Errorf("checkpoint: manifest in %s lists no ranks", dir)
	}
	return meta, nil
}

// Verify checks every rank file a manifest lists against its recorded
// checksum and size. It reads each file fully; a snapshot that passes
// Verify will load.
func Verify(dir string, meta Meta) error {
	for _, rf := range meta.Ranks {
		path := RankPath(dir, rf.Rank)
		buf, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if int64(len(buf)) != rf.Size {
			return fmt.Errorf("checkpoint: %s is %d bytes, manifest says %d", path, len(buf), rf.Size)
		}
		if got := CRC(buf); got != rf.CRC {
			return fmt.Errorf("checkpoint: %s crc %08x, manifest says %08x", path, got, rf.CRC)
		}
	}
	return nil
}

// LoadLatest scans the checkpoint base directory for the newest snapshot
// (highest NextEpoch) whose manifest is committed and whose rank files all
// verify. Torn temp files and manifest-less directories are skipped; if an
// otherwise-newest snapshot fails verification, older ones are tried. A
// base with no loadable snapshot returns os.ErrNotExist.
func LoadLatest(base string) (string, Meta, error) {
	entries, err := os.ReadDir(base)
	if err != nil {
		return "", Meta{}, fmt.Errorf("checkpoint: %w", err)
	}
	var epochs []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "ckpt-") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "ckpt-"))
		if err != nil {
			continue
		}
		epochs = append(epochs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))
	var firstErr error
	for _, ep := range epochs {
		dir := Dir(base, ep)
		meta, err := ReadManifest(dir)
		if err == nil {
			err = Verify(dir, meta)
		}
		if err == nil {
			return dir, meta, nil
		}
		if firstErr == nil && !os.IsNotExist(err) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return "", Meta{}, fmt.Errorf("checkpoint: no loadable snapshot under %s (newest failure: %w)", base, firstErr)
	}
	return "", Meta{}, fmt.Errorf("checkpoint: no snapshot under %s: %w", base, os.ErrNotExist)
}

// syncDir fsyncs a directory so a rename within it is durable. Filesystems
// that refuse directory fsync (some CI overlays) are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
