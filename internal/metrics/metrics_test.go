package metrics

import (
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Max() != 0 {
		t.Fatal("empty series accessors wrong")
	}
	s.Add(1, 0.5)
	s.Add(2, 0.9)
	s.Add(3, 0.7)
	if s.Last() != 0.7 {
		t.Fatalf("Last = %v", s.Last())
	}
	if s.Max() != 0.9 {
		t.Fatalf("Max = %v", s.Max())
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("Fig 5(a)", "epoch", "top-1 acc")
	g := f.AddSeries("global")
	l := f.AddSeries("local")
	g.Add(1, 0.10)
	g.Add(2, 0.30)
	l.Add(1, 0.08)
	l.Add(2, 0.25)
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig 5(a)", "global", "local", "0.3", "0.25", "epoch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
	if f.Lookup("global") != g || f.Lookup("nope") != nil {
		t.Fatal("Lookup wrong")
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("f", "x", "y")
	a := f.AddSeries("a")
	a.Add(1, 2)
	a.Add(3, 4)
	b := f.AddSeries("b")
	b.Add(1, 5)
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,2,5" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "3,4," {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("Title")
	tb.Header("name", "value")
	tb.Row("short", "1")
	tb.Row("a-much-longer-name", "22")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), b.String())
	}
	// The value column must start at the same offset in both data rows.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Fatalf("columns not aligned:\n%s", b.String())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:            "512 B",
		2048:           "2.0 KiB",
		140 << 30:      "140.0 GiB",
		8396 << 30:     "8.2 TiB",
		1 << 50:        "1.0 PiB",
		117*1024 + 512: "117.5 KiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		142:  "142 s",
		19.6: "19.6 s",
		0.25: "250 ms",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}
