// Package metrics provides the result containers and text/CSV rendering
// used by the experiment harness: accuracy curves per strategy, epoch-time
// breakdowns, and aligned tables matching the rows/series of the paper's
// figures.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one line of a figure: a named sequence of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Last returns the final y value (0 if empty).
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// Max returns the maximum y value (0 if empty).
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.Y {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Figure is a named collection of series (one per strategy, typically).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Lookup returns the series with the given name, or nil.
func (f *Figure) Lookup(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Render writes the figure as an aligned text table: one row per x value,
// one column per series — the closest text analogue of the paper's plots.
func (f *Figure) Render(w io.Writer) error {
	// Collect the union of x values across series.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	tb := NewTable(f.Title + " — " + f.YLabel + " vs " + f.XLabel)
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	tb.Header(headers...)
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		tb.Row(row...)
	}
	return tb.Render(w)
}

// WriteCSV emits the same grid in CSV form.
func (f *Figure) WriteCSV(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(x float64) string {
	return fmt.Sprintf("%g", x)
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title.
func NewTable(title string) *Table { return &Table{Title: title} }

// Header sets the column headers.
func (t *Table) Header(cols ...string) { t.headers = cols }

// Row appends a row.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		b.WriteString(strings.Repeat("-", total) + "\n")
	}
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// FormatSeconds renders a duration in seconds with adaptive precision.
func FormatSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.1f s", s)
	default:
		return fmt.Sprintf("%.0f ms", s*1000)
	}
}
