package train

// Chaos soak (DESIGN.md §10): multi-epoch PLS training under scripted,
// seeded transport faults — random frame delays everywhere, periodic
// connection resets (TCP), and one rank crashed mid-Communicate — on both
// the inproc and TCP backends. The survivors must finish every epoch in
// degrade mode with a reduced effective Q, conserve samples (none lost
// among survivors, none duplicated), agree bitwise on the final weights,
// and leak no goroutines; in abort mode every survivor must fail with the
// typed peer error naming the dead rank.
//
// Every random decision derives from -chaos-seed, so a failing run
// reproduces exactly:
//
//	go test ./internal/train/ -run TestChaos -chaos-seed=7

import (
	"errors"
	"flag"
	"runtime"
	"sync"
	"testing"
	"time"

	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/faultinject"
	"plshuffle/internal/transport/tcp"
	"plshuffle/internal/transport/transporttest"
)

var chaosSeed = flag.Int64("chaos-seed", 1, "base seed for the chaos-injection soak tests (CI runs a fixed matrix; vary locally to explore)")

// chaosScripts builds one fault script per rank from the base seed: every
// rank suffers random frame delays; survivors on wire backends additionally
// suffer periodic connection resets; the victim crashes on its Nth exchange
// frame of killEpoch — i.e. mid-Communicate of that epoch, since the PLS
// exchange stamps frames with the epoch as tag.
func chaosScripts(n, victim, killEpoch int, resets bool) []faultinject.Script {
	scripts := make([]faultinject.Script, n)
	for r := range scripts {
		scripts[r] = faultinject.Script{
			Seed:      *chaosSeed<<8 + int64(r),
			DelayProb: 0.2,
			MaxDelay:  2 * time.Millisecond,
		}
		if resets && r != victim {
			scripts[r].ResetEvery = 40
		}
	}
	scripts[victim].CrashTag = killEpoch
	scripts[victim].CrashCount = 2
	return scripts
}

func chaosWrap(scripts []faultinject.Script, conns []*faultinject.Conn) transporttest.WrapConn {
	return func(rank int, inner transport.Conn) transport.Conn {
		c := faultinject.New(inner, scripts[rank])
		conns[rank] = c
		return c
	}
}

// chaosTCPConfig enables the failure detectors with test-sized budgets: a
// dead peer is detected within a few seconds instead of the production
// defaults.
func chaosTCPConfig(rank int, cfg *tcp.Config) {
	cfg.HeartbeatInterval = 200 * time.Millisecond
	cfg.PeerTimeout = 2 * time.Second
	cfg.RetryTimeout = 5 * time.Second
	cfg.DrainTimeout = 2 * time.Second
}

// runChaosWorld trains one rank per goroutine over the backend's
// communicators and returns per-rank results and errors. Unlike mpi.Run,
// each rank has its own abort domain, so the scripted crash unwinds only
// the victim — exactly like a dead process in a distributed world.
func runChaosWorld(t *testing.T, b transporttest.Backend, n int, cfg Config) ([]*RankResult, []error) {
	t.Helper()
	comms, cleanup, err := b.Open(n)
	if err != nil {
		t.Fatal(err)
	}
	rrs := make([]*RankResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = mpi.Execute(comms[rank], func(c *mpi.Comm) error {
				rr, err := RunRank(c, cfg)
				rrs[rank] = rr
				return err
			})
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		cleanup() // wake anything still blocked so the process can report
		for r, err := range errs {
			t.Logf("rank %d error at timeout: %v", r, err)
		}
		t.Fatal("chaos world deadlocked")
	}
	cleanup()
	return rrs, errs
}

// assertChaosSurvivors checks the degrade-mode postconditions: all epochs
// recorded, effective Q reduced from the disruption onward, bitwise
// identical weights, and sample conservation among the survivors.
func assertChaosSurvivors(t *testing.T, rrs []*RankResult, errs []error, n, victim, killEpoch, epochs, datasetN int, q float64) {
	t.Helper()
	var survivors []*RankResult
	for r := 0; r < n; r++ {
		if r == victim {
			if errs[r] == nil {
				t.Fatalf("victim rank %d did not fail despite the scripted crash", r)
			}
			if !errors.Is(errs[r], faultinject.ErrCrashed) {
				t.Fatalf("victim rank %d failed with %v, want the scripted crash", r, errs[r])
			}
			continue
		}
		if errs[r] != nil {
			t.Fatalf("survivor rank %d failed: %v", r, errs[r])
		}
		if rrs[r] == nil {
			t.Fatalf("survivor rank %d produced no result", r)
		}
		survivors = append(survivors, rrs[r])
	}

	for i, rr := range survivors {
		if len(rr.Epochs) != epochs {
			t.Fatalf("survivor %d recorded %d epochs, want %d", i, len(rr.Epochs), epochs)
		}
		degradedSomewhere := false
		for e := killEpoch; e < epochs; e++ {
			es := rr.Epochs[e]
			if es.Skipped {
				continue // a boundary-straddling failure may skip one epoch
			}
			if es.DegradedSlots > 0 && es.EffectiveQ > 0 && es.EffectiveQ < q {
				degradedSomewhere = true
			}
		}
		if !degradedSomewhere {
			t.Errorf("survivor %d shows no degraded epoch after the kill at epoch %d", i, killEpoch)
		}
	}

	// Exactly synchronous SGD over the survivors: bitwise identical weights.
	ref := survivors[0].FinalParams
	for i, rr := range survivors[1:] {
		for p := range ref {
			for j := range ref[p].W {
				if rr.FinalParams[p].W[j] != ref[p].W[j] {
					t.Fatalf("survivor %d diverged at param %d[%d]: %v vs %v",
						i+1, p, j, rr.FinalParams[p].W[j], ref[p].W[j])
				}
			}
		}
	}

	// Sample conservation: no ID on two survivors, every ID in range, and
	// the only samples missing from the union are the ones that died with
	// the victim's storage area (at most its (1+Q)·N/M capacity).
	seen := make(map[int]int)
	total := 0
	for i, rr := range survivors {
		for _, id := range rr.FinalLocalIDs {
			if id < 0 || id >= datasetN {
				t.Fatalf("survivor %d holds out-of-range sample %d", i, id)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("sample %d held by survivors %d and %d", id, prev, i)
			}
			seen[id] = i
			total++
		}
	}
	perRank := datasetN / n
	maxLost := int(float64(perRank)*(1+q)) + n // victim capacity + rounding slack
	if total < datasetN-maxLost {
		t.Errorf("survivors hold %d samples of %d; more than the dead rank's %d-sample capacity went missing",
			total, datasetN, maxLost)
	}
	if total > datasetN {
		t.Errorf("survivors hold %d samples of a %d-sample dataset", total, datasetN)
	}
}

// waitGoroutines fails the test if the goroutine count does not return to
// (near) its pre-world baseline — a leaked reader, writer, heartbeat, or
// delay-queue goroutine would keep it elevated.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after chaos run: %d running, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestChaosSoakDegradeInproc(t *testing.T) {
	const (
		workers   = 4
		victim    = 2
		q         = 0.5
		epochs    = 3
		killEpoch = 1
		samples   = 512
	)
	base := runtime.NumGoroutine()
	ds := testDataset(t, samples, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
	cfg.Epochs = epochs
	cfg.OnPeerFail = "degrade"

	scripts := chaosScripts(workers, victim, killEpoch, false)
	conns := make([]*faultinject.Conn, workers)
	b := transporttest.InprocWrapped("chaos-inproc", chaosWrap(scripts, conns))

	rrs, errs := runChaosWorld(t, b, workers, cfg)
	assertChaosSurvivors(t, rrs, errs, workers, victim, killEpoch, epochs, samples, q)
	if !conns[victim].Injected().Crashed {
		t.Error("victim's injector reports no crash")
	}
	for r, c := range conns {
		if r != victim && c.Injected().Delays == 0 {
			t.Errorf("rank %d suffered no delays; script ineffective", r)
		}
	}
	waitGoroutines(t, base)
}

func TestChaosSoakDegradeTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak over real sockets in -short mode")
	}
	const (
		workers   = 4
		victim    = 1
		q         = 0.5
		epochs    = 3
		killEpoch = 1
		samples   = 384
	)
	base := runtime.NumGoroutine()
	ds := testDataset(t, samples, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
	cfg.Epochs = epochs
	cfg.OnPeerFail = "degrade"

	scripts := chaosScripts(workers, victim, killEpoch, true)
	conns := make([]*faultinject.Conn, workers)
	b := transporttest.TCPWrapped("chaos-tcp", chaosWrap(scripts, conns), chaosTCPConfig)

	rrs, errs := runChaosWorld(t, b, workers, cfg)
	assertChaosSurvivors(t, rrs, errs, workers, victim, killEpoch, epochs, samples, q)
	if !conns[victim].Injected().Crashed {
		t.Error("victim's injector reports no crash")
	}
	resets := int64(0)
	for r, c := range conns {
		if r != victim {
			resets += c.Injected().Resets
		}
	}
	if resets == 0 {
		t.Error("no connection resets were injected; the soak did not exercise redial")
	}
	waitGoroutines(t, base)
}

// TestChaosSoakDegradeTCPCompressedDedup repeats the TCP degrade soak with
// the full wire-lean stack live: wirecomp-compressed batch frames, pairwise
// dedup reference frames, and fp16exact sample encoding. The victim dies
// mid-Communicate of epoch 1 — after the dedup caches warmed up in epoch 0,
// so KindDataZ and KindDataRef frames are in flight when the failure hits.
// Recovery must invalidate every survivor's pair state (a survivor that
// kept its mirror would emit refs its peer can no longer resolve) and the
// survivors must still agree bitwise and conserve samples.
func TestChaosSoakDegradeTCPCompressedDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak over real sockets in -short mode")
	}
	const (
		workers   = 4
		victim    = 2
		q         = 0.5
		epochs    = 4
		killEpoch = 1
		samples   = 384
	)
	base := runtime.NumGoroutine()
	ds := testDataset(t, samples, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
	cfg.Epochs = epochs
	cfg.OnPeerFail = "degrade"
	cfg.WireDedup = true
	cfg.SampleEncoding = "fp16exact"

	scripts := chaosScripts(workers, victim, killEpoch, true)
	conns := make([]*faultinject.Conn, workers)
	b := transporttest.TCPWrapped("chaos-tcp-z-dedup", chaosWrap(scripts, conns),
		func(rank int, cfg *tcp.Config) {
			chaosTCPConfig(rank, cfg)
			cfg.Compress = true
		})

	rrs, errs := runChaosWorld(t, b, workers, cfg)
	assertChaosSurvivors(t, rrs, errs, workers, victim, killEpoch, epochs, samples, q)
	if !conns[victim].Injected().Crashed {
		t.Error("victim's injector reports no crash")
	}
	// The soak is only meaningful if the lean wire paths actually carried
	// traffic before and around the failure: at least one survivor must have
	// scored dedup hits across the run.
	hits := 0
	for r, rr := range rrs {
		if r == victim || rr == nil {
			continue
		}
		for _, es := range rr.Epochs {
			hits += es.DedupHits
		}
	}
	if hits == 0 {
		t.Error("no survivor recorded a single dedup hit; the soak never exercised reference frames")
	}
	waitGoroutines(t, base)
}

func TestChaosAbortTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos abort over real sockets in -short mode")
	}
	const (
		workers   = 3
		victim    = 0 // rank 0 dying exercises detection by ranks that never dial it first
		q         = 0.4
		killEpoch = 1
		samples   = 384
	)
	ds := testDataset(t, samples, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
	cfg.Epochs = 3 // plenty of run left when the victim dies

	scripts := chaosScripts(workers, victim, killEpoch, false)
	conns := make([]*faultinject.Conn, workers)
	b := transporttest.TCPWrapped("chaos-abort-tcp", chaosWrap(scripts, conns), chaosTCPConfig)

	_, errs := runChaosWorld(t, b, workers, cfg)
	for r := 0; r < workers; r++ {
		if r == victim {
			if !errors.Is(errs[r], faultinject.ErrCrashed) {
				t.Fatalf("victim rank %d failed with %v, want the scripted crash", r, errs[r])
			}
			continue
		}
		if errs[r] == nil {
			t.Fatalf("survivor rank %d succeeded; abort policy must propagate the peer death", r)
		}
		pe, ok := mpi.PeerErrorFrom(errs[r])
		if !ok {
			t.Fatalf("survivor rank %d error carries no PeerError: %v", r, errs[r])
		}
		if pe.Rank != victim {
			t.Fatalf("survivor rank %d blames rank %d, want %d", r, pe.Rank, victim)
		}
	}
}
