package train

// Trainer-level fault tolerance (DESIGN.md §10): a peer dies mid-epoch and
// the -on-peer-fail policy decides the outcome. In degrade mode the
// survivors finish every epoch over a shrunken collective group with a
// reduced effective shuffling fraction; in abort mode every rank fails with
// the typed peer error so a launcher can report it and exit non-zero.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/trace"
	"plshuffle/internal/transport"
)

// errKilled is the sentinel the victim's iteration hook returns after
// killing its own transport — the in-process stand-in for a process death.
var errKilled = errors.New("victim killed by test hook")

// runWorldWithVictim trains a world in which victim kills its transport at
// (killEpoch, killIter). It returns the survivors' rank results and the
// survivors' per-rank errors.
func runWorldWithVictim(t *testing.T, cfg Config, workers, victim, killEpoch, killIter int) ([]*RankResult, []error) {
	t.Helper()
	rrs := make([]*RankResult, workers)
	errs := make([]error, workers)
	done := make(chan error, 1)
	go func() {
		done <- mpi.Run(workers, func(c *mpi.Comm) error {
			rankCfg := cfg
			if c.Rank() == victim {
				rankCfg.testIterHook = func(epoch, iter int) error {
					if epoch == killEpoch && iter == killIter {
						c.Transport().(transport.Killer).Kill()
						return errKilled
					}
					return nil
				}
			}
			rr, err := RunRank(c, rankCfg)
			if c.Rank() == victim {
				if err == nil || !errors.Is(err, errKilled) {
					return fmt.Errorf("victim rank %d: want the kill sentinel, got %v", victim, err)
				}
				return nil // the "process" died; its error is not the world's
			}
			if err != nil {
				t.Logf("survivor rank %d error: %v", c.Rank(), err)
			}
			rrs[c.Rank()], errs[c.Rank()] = rr, err
			if cfg.OnPeerFail == "degrade" {
				return err // a survivor failure aborts the world (no hang)
			}
			return nil // abort policy: errors are the expected outcome

		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("world error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("world deadlocked after peer death")
	}
	return rrs, errs
}

func TestDegradeModeSurvivesPeerDeath(t *testing.T) {
	const (
		workers   = 4
		victim    = 2
		q         = 0.5
		epochs    = 4
		killEpoch = 1
	)
	ds := testDataset(t, 512, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
	cfg.Epochs = epochs
	cfg.OnPeerFail = "degrade"
	rec := trace.NewRecorder()
	cfg.Trace = rec

	rrs, errs := runWorldWithVictim(t, cfg, workers, victim, killEpoch, 1)

	var survivors []*RankResult
	for r := 0; r < workers; r++ {
		if r == victim {
			continue
		}
		if errs[r] != nil {
			t.Fatalf("survivor rank %d failed: %v", r, errs[r])
		}
		if rrs[r] == nil {
			t.Fatalf("survivor rank %d produced no result", r)
		}
		survivors = append(survivors, rrs[r])
	}

	for i, rr := range survivors {
		if len(rr.Epochs) != epochs {
			t.Fatalf("survivor %d recorded %d epochs, want %d", i, len(rr.Epochs), epochs)
		}
		// The disrupted epoch and every later one forfeit the dead rank's
		// exchange slots: effective Q must drop below the configured Q.
		for e := killEpoch; e < epochs; e++ {
			es := rr.Epochs[e]
			if es.Skipped {
				continue // boundary-straddling failures may skip one epoch
			}
			if es.DegradedSlots <= 0 {
				t.Errorf("survivor %d epoch %d: DegradedSlots = %d, want > 0", i, e, es.DegradedSlots)
			}
			if !(es.EffectiveQ > 0 && es.EffectiveQ < q) {
				t.Errorf("survivor %d epoch %d: EffectiveQ = %v, want in (0, %v)", i, e, es.EffectiveQ, q)
			}
		}
		for e := 0; e < killEpoch; e++ {
			if rr.Epochs[e].DegradedSlots != 0 || rr.Epochs[e].Disrupted {
				t.Errorf("survivor %d epoch %d degraded before the kill", i, e)
			}
			if rr.Epochs[e].EffectiveQ != q {
				t.Errorf("survivor %d epoch %d: EffectiveQ = %v, want %v", i, e, rr.Epochs[e].EffectiveQ, q)
			}
		}
	}

	// Exactly synchronous SGD over the survivors: final weights must be
	// bitwise identical on every surviving rank.
	ref := survivors[0].FinalParams
	for i, rr := range survivors[1:] {
		for p := range ref {
			for j := range ref[p].W {
				if rr.FinalParams[p].W[j] != ref[p].W[j] {
					t.Fatalf("survivor %d param %d[%d] diverged: %v vs %v",
						i+1, p, j, rr.FinalParams[p].W[j], ref[p].W[j])
				}
			}
		}
	}

	// Training still works after the group shrank.
	last := survivors[0].Epochs[epochs-1]
	if !last.Skipped && last.ValAcc < 0.8 {
		t.Errorf("final accuracy %v after degradation, want >= 0.8 on easy task", last.ValAcc)
	}

	// The degradation left its mark in the trace.
	found := false
	for _, ev := range rec.Events() {
		if ev.Phase == trace.PhaseDegraded && ev.Bytes > 0 && ev.EffectiveQ < q {
			found = true
		}
	}
	if !found {
		t.Error("no PhaseDegraded trace event recorded")
	}
}

// TestDegradeModeKillAtFirstIteration kills the victim before it finishes a
// single iteration of epoch 0 — the survivors must absorb a peer that never
// shipped a full chunk.
func TestDegradeModeKillAtFirstIteration(t *testing.T) {
	const (
		workers = 3
		victim  = 0 // rank 0 dying also exercises group-root re-election
		q       = 0.4
	)
	ds := testDataset(t, 384, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
	cfg.Epochs = 3
	cfg.OnPeerFail = "degrade"

	rrs, errs := runWorldWithVictim(t, cfg, workers, victim, 0, 0)
	for r := 1; r < workers; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor rank %d failed: %v", r, errs[r])
		}
		if got := len(rrs[r].Epochs); got != 3 {
			t.Fatalf("survivor rank %d recorded %d epochs, want 3", r, got)
		}
	}
	for p := range rrs[1].FinalParams {
		for j := range rrs[1].FinalParams[p].W {
			if rrs[1].FinalParams[p].W[j] != rrs[2].FinalParams[p].W[j] {
				t.Fatalf("survivors diverged at param %d[%d]", p, j)
			}
		}
	}
}

// TestDegradeModeOverlappedGrads exercises the recovery path with in-flight
// bucketed all-reduces: the bucket rings must settle (no leaked goroutine,
// no stale tag reuse) and the rebuilt bounds must match the shrunken group.
func TestDegradeModeOverlappedGrads(t *testing.T) {
	const (
		workers = 4
		victim  = 1
		q       = 0.3
	)
	ds := testDataset(t, 512, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
	cfg.Epochs = 3
	cfg.OnPeerFail = "degrade"
	cfg.OverlapGrads = true
	cfg.GradBucketBytes = 4 << 10

	rrs, errs := runWorldWithVictim(t, cfg, workers, victim, 1, 2)
	var survivors []*RankResult
	for r := 0; r < workers; r++ {
		if r == victim {
			continue
		}
		if errs[r] != nil {
			t.Fatalf("survivor rank %d failed: %v", r, errs[r])
		}
		survivors = append(survivors, rrs[r])
	}
	ref := survivors[0].FinalParams
	for i, rr := range survivors[1:] {
		for p := range ref {
			for j := range ref[p].W {
				if rr.FinalParams[p].W[j] != ref[p].W[j] {
					t.Fatalf("survivor %d diverged at param %d[%d]", i+1, p, j)
				}
			}
		}
	}
}

// TestAbortModePropagatesPeerDeath: the default policy fails every survivor
// with the typed peer error — what a launcher turns into a non-zero exit
// and a per-rank report.
func TestAbortModePropagatesPeerDeath(t *testing.T) {
	const (
		workers = 3
		victim  = 1
	)
	ds := testDataset(t, 384, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(0.4))
	cfg.Epochs = 3 // plenty of run left when the victim dies

	_, errs := runWorldWithVictim(t, cfg, workers, victim, 0, 1)
	for r := 0; r < workers; r++ {
		if r == victim {
			continue
		}
		if errs[r] == nil {
			t.Fatalf("survivor rank %d succeeded; abort policy must propagate the failure", r)
		}
		pe, ok := mpi.PeerErrorFrom(errs[r])
		if !ok {
			t.Fatalf("survivor rank %d error carries no PeerError: %v", r, errs[r])
		}
		if pe.Rank != victim {
			t.Fatalf("survivor rank %d blames rank %d, want %d", r, pe.Rank, victim)
		}
	}
}

func TestValidateRejectsBadOnPeerFail(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.Partial(0.3))
	for _, ok := range []string{"", "abort", "degrade"} {
		cfg.OnPeerFail = ok
		if err := cfg.Validate(); err != nil {
			t.Errorf("OnPeerFail=%q rejected: %v", ok, err)
		}
	}
	cfg.OnPeerFail = "retry"
	if err := cfg.Validate(); err == nil {
		t.Error("OnPeerFail=retry accepted")
	}
}
