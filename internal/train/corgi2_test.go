package train

import (
	"math"
	"path/filepath"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/store/shard"
)

// ingestTestDataset generates a learnable dataset and ingests it into a
// temp directory, returning the directory.
func ingestTestDataset(t testing.TB, n, classes, samplesPerShard int) string {
	t.Helper()
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "corgi-test", NumSamples: n, NumVal: n / 4, Classes: classes,
		FeatureDim: 16, ClassSep: 5, NoiseStd: 1.0, Bytes: 1000, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "dataset")
	if _, err := shard.Ingest(dir, ds, samplesPerShard); err != nil {
		t.Fatal(err)
	}
	return dir
}

func corgiConfig(dir string, workers int) Config {
	return Config{
		Workers:  workers,
		Strategy: shuffle.Corgi2Shuffling(2),
		DataDir:  dir,
		Model: nn.ModelSpec{Name: "t", Hidden: []int{32}, BatchNorm: true}.
			WithData(16, 4),
		Epochs:      5,
		BatchSize:   16,
		BaseLR:      0.1,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Seed:        5,
	}
}

// TestCorgi2TrainsAndLearns runs the full hybrid path end-to-end in-process
// and checks that the model actually learns from the on-disk store.
func TestCorgi2TrainsAndLearns(t *testing.T) {
	dir := ingestTestDataset(t, 512, 4, 32)
	res, err := Run(corgiConfig(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValAcc < 0.5 {
		t.Fatalf("corgi2 final accuracy %.3f, want at least 0.5", res.FinalValAcc)
	}
	if res.PeakStorageBytes <= 0 {
		t.Fatalf("peak storage not accounted: %d", res.PeakStorageBytes)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.LocalReadBytes <= 0 {
		t.Fatalf("local (cache) read bytes not accounted: %d", last.LocalReadBytes)
	}
	if res.Epochs[0].PFSReadBytes <= 0 {
		t.Fatalf("first epoch fetched nothing from the PFS tier")
	}
}

// TestCorgi2BitwiseDeterministic trains the same corgi2 world twice per
// configuration — once with an unlimited cache, once under a tight budget
// where evictions and refetches happen — and requires bitwise-identical
// weights within each pair: the cache's runtime behaviour (hit/miss
// timing, eviction order, prefetch races) must never leak into values.
// (Different budgets legitimately produce different weights: the window
// size, Corgi²'s online-shuffle mixing radius, is derived from the budget
// and is part of the epoch plan.)
func TestCorgi2BitwiseDeterministic(t *testing.T) {
	dir := ingestTestDataset(t, 512, 4, 32)

	run := func(cacheBytes int64) []float32 {
		cfg := corgiConfig(dir, 4)
		cfg.CacheBytes = cacheBytes
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var flat []float32
		for _, p := range res.FinalParams {
			flat = append(flat, p.W...)
		}
		if len(flat) == 0 {
			t.Fatal("no parameters")
		}
		return flat
	}
	assertSame := func(label string, a, b []float32) {
		if len(a) != len(b) {
			t.Fatalf("%s: parameter count mismatch: %d vs %d", label, len(a), len(b))
		}
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%s: runs diverge at param %d: %x vs %x",
					label, i, math.Float32bits(a[i]), math.Float32bits(b[i]))
			}
		}
	}

	assertSame("unlimited cache", run(0), run(0))
	// Budget for ~3 shards out of each rank's 4: evictions and refetches
	// happen, weights must not move between the two runs.
	man, err := shard.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	tight := 3 * man.Manifest().MaxShardBytes()
	assertSame("tight cache", run(tight), run(tight))
}

// TestCorgi2ValidateRejections covers the configurations the hybrid path
// cannot honor.
func TestCorgi2ValidateRejections(t *testing.T) {
	dir := ingestTestDataset(t, 256, 4, 32)
	cases := []func(c *Config){
		func(c *Config) { c.DataDir = "" },
		func(c *Config) { c.ImportanceSampling = true },
		func(c *Config) { c.OnPeerFail = "degrade" },
		func(c *Config) { c.PartitionLocality = 0.5 },
		func(c *Config) { c.Strategy.GroupEpochs = 0 },
	}
	for i, mutate := range cases {
		cfg := corgiConfig(dir, 4)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad corgi2 config accepted", i)
		}
	}
}
