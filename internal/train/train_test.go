package train

import (
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
)

// testDataset builds a small learnable dataset quickly.
func testDataset(t testing.TB, n, classes int) *data.Dataset {
	t.Helper()
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "train-test", NumSamples: n, NumVal: n / 4, Classes: classes,
		FeatureDim: 16, ClassSep: 5, NoiseStd: 1.0, Bytes: 1000, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig(t testing.TB, ds *data.Dataset, workers int, strat shuffle.Strategy) Config {
	t.Helper()
	return Config{
		Workers:  workers,
		Strategy: strat,
		Dataset:  ds,
		Model: nn.ModelSpec{Name: "t", Hidden: []int{32}, BatchNorm: true}.
			WithData(ds.FeatureDim, ds.Classes),
		Epochs:      5,
		BatchSize:   16,
		BaseLR:      0.1,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Seed:        5,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	ds := testDataset(t, 256, 4)
	good := baseConfig(t, ds, 4, shuffle.GlobalShuffling())
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(c *Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Dataset = nil },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.BaseLR = 0 },
		func(c *Config) { c.Strategy = shuffle.Partial(2) },
		func(c *Config) { c.Model.InputDim = 0 },
		func(c *Config) { c.Workers = 10000 },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGlobalTrainingLearns(t *testing.T) {
	ds := testDataset(t, 512, 4)
	res, err := Run(baseConfig(t, ds, 4, shuffle.GlobalShuffling()))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValAcc < 0.9 {
		t.Fatalf("GS validation accuracy %v, want >= 0.9 on easy task", res.FinalValAcc)
	}
	if len(res.Epochs) != 5 {
		t.Fatalf("epochs recorded: %d", len(res.Epochs))
	}
	// Loss should decrease from first to last epoch.
	if res.Epochs[4].TrainLoss >= res.Epochs[0].TrainLoss {
		t.Fatalf("loss did not decrease: %v -> %v", res.Epochs[0].TrainLoss, res.Epochs[4].TrainLoss)
	}
}

func TestAllStrategiesLearnOnEasyTask(t *testing.T) {
	ds := testDataset(t, 512, 4)
	for _, strat := range []shuffle.Strategy{
		shuffle.GlobalShuffling(), shuffle.LocalShuffling(), shuffle.Partial(0.3),
	} {
		res, err := Run(baseConfig(t, ds, 4, strat))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.FinalValAcc < 0.9 {
			t.Errorf("%s: accuracy %v < 0.9", strat, res.FinalValAcc)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
	cfg.Epochs = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].TrainLoss != b.Epochs[i].TrainLoss {
			t.Fatalf("epoch %d loss differs across identical runs: %v vs %v",
				i, a.Epochs[i].TrainLoss, b.Epochs[i].TrainLoss)
		}
		if a.Epochs[i].ValAcc != b.Epochs[i].ValAcc {
			t.Fatalf("epoch %d accuracy differs across identical runs", i)
		}
	}
}

func TestByteAccounting(t *testing.T) {
	ds := testDataset(t, 256, 4)

	gs, err := Run(baseConfig(t, ds, 4, shuffle.GlobalShuffling()))
	if err != nil {
		t.Fatal(err)
	}
	e := gs.Epochs[0]
	// GS reads only from the PFS: 64 samples x 1000 bytes per worker.
	if e.PFSReadBytes != 64_000 || e.LocalReadBytes != 0 {
		t.Fatalf("GS bytes: pfs=%d local=%d", e.PFSReadBytes, e.LocalReadBytes)
	}
	if e.ExchangeBytes != 0 {
		t.Fatalf("GS exchanged %d bytes", e.ExchangeBytes)
	}

	ls, err := Run(baseConfig(t, ds, 4, shuffle.LocalShuffling()))
	if err != nil {
		t.Fatal(err)
	}
	e = ls.Epochs[0]
	if e.LocalReadBytes != 64_000 || e.PFSReadBytes != 0 {
		t.Fatalf("LS bytes: pfs=%d local=%d", e.PFSReadBytes, e.LocalReadBytes)
	}

	pls, err := Run(baseConfig(t, ds, 4, shuffle.Partial(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	e = pls.Epochs[0]
	want := int64(shuffle.Slots(0.5, 256, 4)) * 1000
	if e.ExchangeBytes != want {
		t.Fatalf("PLS exchanged %d bytes, want %d", e.ExchangeBytes, want)
	}
	if e.LocalReadBytes != 64_000 {
		t.Fatalf("PLS local reads %d", e.LocalReadBytes)
	}
}

func TestPeakStorageBound(t *testing.T) {
	ds := testDataset(t, 256, 4)
	const q = 0.5
	res, err := Run(baseConfig(t, ds, 4, shuffle.Partial(q)))
	if err != nil {
		t.Fatal(err)
	}
	perWorker := int64(256/4) * 1000
	bound := int64(float64(perWorker) * (1 + q))
	if res.PeakStorageBytes > bound {
		t.Fatalf("peak storage %d exceeds (1+Q)N/M = %d", res.PeakStorageBytes, bound)
	}
	if res.PeakStorageBytes <= perWorker {
		t.Fatalf("peak storage %d never exceeded N/M=%d", res.PeakStorageBytes, perWorker)
	}
}

func TestCapacityFailureSurfaces(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.Partial(0.5))
	cfg.LocalCapacityBytes = 64_000 // exactly N/M: no headroom for the exchange
	if _, err := Run(cfg); err == nil {
		t.Fatal("capacity-starved PLS run succeeded")
	}
	// LS fits exactly.
	cfg.Strategy = shuffle.LocalShuffling()
	if _, err := Run(cfg); err != nil {
		t.Fatalf("LS with exact capacity failed: %v", err)
	}
}

func TestWarmStartUsesGivenWeights(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.GlobalShuffling())
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fine-tune from the trained weights with zero additional epochs of
	// drift: 1 epoch at tiny LR should keep high accuracy from epoch 1.
	cfg2 := cfg
	cfg2.WarmStart = first.FinalParams
	cfg2.Epochs = 1
	cfg2.BaseLR = 1e-4
	second, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if second.Epochs[0].ValAcc < first.FinalValAcc-0.05 {
		t.Fatalf("warm start accuracy %v, expected near %v", second.Epochs[0].ValAcc, first.FinalValAcc)
	}
}

// TestLocalityGapAndPartialRecovery is the scientific core: with
// class-local shards, local shuffling loses accuracy while partial local
// shuffling with a sufficient exchange fraction recovers it (the Fig 5(e)
// shape at test scale).
func TestLocalityGapAndPartialRecovery(t *testing.T) {
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "gap", NumSamples: 1024, NumVal: 512, Classes: 16,
		FeatureDim: 16, ClassSep: 4, NoiseStd: 1.2, Bytes: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(strat shuffle.Strategy) float64 {
		cfg := baseConfig(t, ds, 16, strat)
		cfg.Epochs = 12
		cfg.BatchSize = 8
		cfg.PartitionLocality = 1.0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalValAcc
	}
	gs := run(shuffle.GlobalShuffling())
	ls := run(shuffle.LocalShuffling())
	pls := run(shuffle.Partial(0.7))
	t.Logf("gs=%.3f ls=%.3f partial-0.7=%.3f", gs, ls, pls)
	if gs-ls < 0.05 {
		t.Fatalf("expected a local-shuffling gap: gs=%.3f ls=%.3f", gs, ls)
	}
	if pls-ls < (gs-ls)/2 {
		t.Fatalf("partial-0.7 did not recover at least half the gap: gs=%.3f ls=%.3f pls=%.3f", gs, ls, pls)
	}
}

func TestPartitionLocalityZeroMatchesPartition(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.LocalShuffling())
	cfg.Epochs = 2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PartitionLocality = 0
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].TrainLoss != b.Epochs[i].TrainLoss {
			t.Fatal("locality=0 does not match default partition")
		}
	}
}

func TestLARSRuns(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.GlobalShuffling())
	cfg.UseLARS = true
	cfg.Schedule = nn.Warmup{Inner: nn.Constant{Base: cfg.BaseLR}, Epochs: 2, StartFactor: 0.25}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValAcc < 0.5 {
		t.Fatalf("LARS run accuracy %v", res.FinalValAcc)
	}
}

func TestPhaseTimesRecorded(t *testing.T) {
	ds := testDataset(t, 256, 4)
	res, err := Run(baseConfig(t, ds, 4, shuffle.Partial(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	e := res.Epochs[0]
	if e.FWBWTime <= 0 || e.GEWUTime <= 0 || e.IOTime <= 0 {
		t.Fatalf("phase times missing: %+v", e)
	}
}

func TestOddWorkerCountAndNonDivisibleN(t *testing.T) {
	ds := testDataset(t, 250, 5) // 250 samples over 3 workers
	cfg := baseConfig(t, ds, 3, shuffle.Partial(0.4))
	cfg.BatchSize = 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValAcc <= 0.2 {
		t.Fatalf("non-divisible config failed to learn: %v", res.FinalValAcc)
	}
}

func BenchmarkTrainEpochGS(b *testing.B)  { benchTrain(b, shuffle.GlobalShuffling()) }
func BenchmarkTrainEpochPLS(b *testing.B) { benchTrain(b, shuffle.Partial(0.3)) }

func benchTrain(b *testing.B, strat shuffle.Strategy) {
	ds := testDataset(b, 512, 4)
	cfg := baseConfig(b, ds, 4, strat)
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
