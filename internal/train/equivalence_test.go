package train

import (
	"math"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
)

// TestGradientEquivalenceFullBatch is the executable analogue of the
// Section IV-A argument: the epoch-level averaged gradient of global and
// partial-local shuffling is a sum over the SAME sample set, merely
// permuted across workers, so by commutativity of addition the updates
// coincide. With one full-batch iteration per epoch (b = N/M) and no
// batch normalization (whose batch statistics are the explicitly listed
// exception in Section IV-A.1), every strategy must therefore produce the
// same weights up to float32 summation-order noise.
func TestGradientEquivalenceFullBatch(t *testing.T) {
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "equiv", NumSamples: 256, NumVal: 64, Classes: 4,
		FeatureDim: 8, ClassSep: 3, NoiseStd: 1, Bytes: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	model := nn.ModelSpec{Name: "equiv", Hidden: []int{16}}. // no batch norm
									WithData(ds.FeatureDim, ds.Classes)
	weightsOf := func(s shuffle.Strategy) []float32 {
		res, err := Run(Config{
			Workers:   workers,
			Strategy:  s,
			Dataset:   ds,
			Model:     model,
			Epochs:    5,
			BatchSize: len(ds.Train) / workers, // full local batch: 1 iteration/epoch
			BaseLR:    0.1,
			Momentum:  0.9,
			Seed:      21,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []float32
		for _, p := range res.FinalParams {
			out = append(out, p.W...)
		}
		return out
	}
	gs := weightsOf(shuffle.GlobalShuffling())
	ls := weightsOf(shuffle.LocalShuffling())
	pls := weightsOf(shuffle.Partial(0.5))
	if len(gs) != len(ls) || len(gs) != len(pls) {
		t.Fatal("weight vector lengths differ")
	}
	maxAbs := func(a, b []float32) float64 {
		m := 0.0
		for i := range a {
			d := math.Abs(float64(a[i]) - float64(b[i]))
			if d > m {
				m = d
			}
		}
		return m
	}
	// Float32 summation-order noise across 5 epochs stays far below any
	// meaningful weight difference.
	if d := maxAbs(gs, ls); d > 1e-3 {
		t.Fatalf("GS and LS full-batch weights diverged by %v; Section IV-A equivalence broken", d)
	}
	if d := maxAbs(gs, pls); d > 1e-3 {
		t.Fatalf("GS and PLS full-batch weights diverged by %v; Section IV-A equivalence broken", d)
	}
}

// TestEquivalenceBreaksWithBatchNorm is the flip side: with batch
// normalization (mini-batches, per-worker statistics), the strategies are
// NOT weight-identical — the "limitations of the equivalence" of
// Section IV-A.1.
func TestEquivalenceBreaksWithBatchNorm(t *testing.T) {
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "equiv-bn", NumSamples: 256, NumVal: 64, Classes: 4,
		FeatureDim: 8, ClassSep: 3, NoiseStd: 1, Bytes: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := nn.ModelSpec{Name: "equiv-bn", Hidden: []int{16}, BatchNorm: true}.
		WithData(ds.FeatureDim, ds.Classes)
	weightsOf := func(s shuffle.Strategy) []float32 {
		res, err := Run(Config{
			Workers: 4, Strategy: s, Dataset: ds, Model: model,
			Epochs: 5, BatchSize: 16, BaseLR: 0.1, Momentum: 0.9, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []float32
		for _, p := range res.FinalParams {
			out = append(out, p.W...)
		}
		return out
	}
	gs := weightsOf(shuffle.GlobalShuffling())
	ls := weightsOf(shuffle.LocalShuffling())
	diff := 0.0
	for i := range gs {
		diff += math.Abs(float64(gs[i]) - float64(ls[i]))
	}
	if diff < 1e-3 {
		t.Fatalf("GS and LS mini-batch BN weights identical (%v); expected the Section IV-A.1 divergence", diff)
	}
}
