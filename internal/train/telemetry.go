package train

import (
	"strconv"
	"time"

	"plshuffle/internal/analysis"
	"plshuffle/internal/telemetry"
	"plshuffle/internal/transport"
)

// registerTelemetry binds this rank's live metrics into the registry
// (DESIGN.md §11). Everything allocated or formatted happens HERE, once at
// startup: the training hot path only performs atomic adds on w.tm's
// fields, and the pull-model metrics (GaugeFunc/CounterFunc) sample
// scrape-safe atomics owned by their subsystems — mpi's collective
// sequence, the exchange scheduler's mirrors, the transport's counters —
// only when an HTTP scrape happens.
//
// Naming (the canonical pls_* registry):
//
//	pls_train_*                        progress + per-phase time (TrainMetrics)
//	pls_exchange_wire_bytes_total      PLS exchange wire volume {direction}
//	pls_exchange_effective_q           realized shuffling fraction (gauge)
//	pls_exchange_degraded_slots        forfeited slots this epoch {direction}
//	pls_exchange_epoch                 most recently scheduled exchange epoch
//	pls_store_cache_*                  Corgi2 cache tier hits/misses/evictions,
//	                                   prefetch volume, used bytes
//	pls_store_pfs_read_bytes_total     bytes fetched from the PFS tier
//	pls_store_pfs_read_seconds         cumulative PFS fetch wall-clock
//	pls_mpi_collectives_total          collective sequence number
//	pls_mpi_inflight_collectives       non-blocking collectives in flight
//	pls_mpi_failed_peers               peers the failure registry knows dead
//	pls_transport_bytes_total          wire bytes {direction}
//	pls_transport_frames_total         frames {direction}
//	pls_transport_frames_by_kind_total frames {direction,kind}
//	pls_transport_peer_silence_seconds seconds since a peer was last heard {peer}
//	pls_controller_q                   exchange fraction in force (gauge)
//	pls_controller_decisions_total     controller decisions applied {reason}
func (w *worker) registerTelemetry(reg *telemetry.Registry) {
	rank := w.comm.Rank()
	l := telemetry.Labels{"rank": strconv.Itoa(rank)}

	w.tm = &telemetry.TrainMetrics{}
	w.tm.Register(reg, rank)
	w.tm.EpochsTotal.SetInt(int64(w.cfg.Epochs))
	w.tm.WorldSize.SetInt(int64(w.comm.GroupSize()))
	w.tm.Generation.SetInt(int64(w.generation))

	// --- mpi runtime ---
	c := w.comm
	reg.CounterFunc("pls_mpi_collectives_total",
		"Collective operations launched (the internal sequence number).", l,
		func() float64 { return float64(c.CollSeq()) })
	reg.GaugeFunc("pls_mpi_inflight_collectives",
		"Non-blocking collectives currently in flight (gradient-overlap depth).", l,
		func() float64 { return float64(c.InflightCollectives()) })
	reg.GaugeFunc("pls_mpi_failed_peers",
		"World ranks the failure registry has recorded dead.", l,
		func() float64 { return float64(len(c.FailedPeers())) })

	// --- exchange scheduler (PLS only) ---
	if ex := w.exchanger; ex != nil {
		for _, dir := range []string{"sent", "recv"} {
			dir := dir
			ld := telemetry.Labels{"rank": l["rank"], "direction": dir}
			reg.CounterFunc("pls_exchange_wire_bytes_total",
				"Cumulative exchange wire volume (frame overhead included, self-sends excluded).", ld,
				func() float64 {
					s, r := ex.CumulativeWireTraffic()
					if dir == "sent" {
						return float64(s)
					}
					return float64(r)
				})
			reg.GaugeFunc("pls_exchange_degraded_slots",
				"Exchange slots the current epoch forfeited to dead peers.", ld,
				func() float64 {
					s, r := ex.ObservedDegradedSlots()
					if dir == "sent" {
						return float64(s)
					}
					return float64(r)
				})
		}
		reg.GaugeFunc("pls_exchange_effective_q",
			"Shuffling fraction the current epoch actually realizes (q scaled by surviving slots).", l,
			func() float64 { return ex.ObservedEffectiveQ() })
		reg.GaugeFunc("pls_exchange_epoch",
			"Most recently scheduled exchange epoch.", l,
			func() float64 { return float64(ex.ObservedEpoch()) })
		reg.CounterFunc("pls_exchange_dedup_hits",
			"Exchange samples shipped as dedup ID references instead of payloads (cumulative).", l,
			func() float64 { h, _ := ex.CumulativeDedup(); return float64(h) })
		reg.CounterFunc("pls_exchange_bytes_saved",
			"Exchange wire bytes the dedup references elided (cumulative; hypothetical full frames minus metered frames).", l,
			func() float64 { _, s := ex.CumulativeDedup(); return float64(s) })
	}

	// --- closed-loop shuffle controller (AutoQ / QSchedule; DESIGN.md §16) ---
	if w.ctrl != nil || len(w.cfg.QSchedule) > 0 {
		w.cm = telemetry.NewControllerMetrics(append(analysis.QReasons(), ReasonSchedule))
		w.cm.Register(reg, rank)
		w.cm.Q.Set(w.ctrlQ)
	}

	// --- storage hierarchy (Corgi2 only) ---
	if tr := w.tier; tr != nil {
		reg.CounterFunc("pls_store_cache_hits_total",
			"Shard acquisitions served from the node-local cache tier.", l,
			func() float64 { return float64(tr.Stats().Hits) })
		reg.CounterFunc("pls_store_cache_misses_total",
			"Shard acquisitions that paid a synchronous PFS fetch.", l,
			func() float64 { return float64(tr.Stats().Misses) })
		reg.CounterFunc("pls_store_cache_evictions_total",
			"Shards evicted from the cache tier to make room under the byte budget.", l,
			func() float64 { return float64(tr.Stats().Evictions) })
		reg.CounterFunc("pls_store_prefetch_bytes_total",
			"Bytes the background prefetcher pulled from the PFS tier ahead of use.", l,
			func() float64 { return float64(tr.Stats().PrefetchBytes) })
		reg.CounterFunc("pls_store_pfs_read_bytes_total",
			"Bytes fetched from the PFS tier (misses plus prefetches; real file bytes).", l,
			func() float64 { return float64(tr.Stats().PFSReadBytes) })
		reg.GaugeFunc("pls_store_pfs_read_seconds",
			"Cumulative wall-clock spent fetching shards from the PFS tier.", l,
			func() float64 { return float64(tr.Stats().PFSReadNs) / 1e9 })
		reg.GaugeFunc("pls_store_cache_used_bytes",
			"Bytes of shard files currently resident in the cache tier.", l,
			func() float64 { return float64(tr.Stats().UsedBytes) })
	}

	// --- transport ---
	conn := w.comm.Transport()
	for _, dir := range []string{"sent", "recv"} {
		dir := dir
		ld := telemetry.Labels{"rank": l["rank"], "direction": dir}
		reg.CounterFunc("pls_transport_bytes_total",
			"Bytes moved by the transport (real wire bytes on TCP, estimated encoded sizes inproc).", ld,
			func() float64 {
				st := conn.Stats()
				if dir == "sent" {
					return float64(st.BytesSent)
				}
				return float64(st.BytesRecv)
			})
		reg.CounterFunc("pls_transport_frames_total",
			"Frames moved by the transport.", ld,
			func() float64 {
				st := conn.Stats()
				if dir == "sent" {
					return float64(st.FramesSent)
				}
				return float64(st.FramesRecv)
			})
	}
	if ks, ok := transport.AsKindStatser(conn); ok {
		kindNames := [transport.NumKinds]string{"data", "hello", "table", "bye", "ping", "dataz", "dataref"}
		for k := 0; k < transport.NumKinds; k++ {
			k := k
			for _, dir := range []string{"sent", "recv"} {
				dir := dir
				lk := telemetry.Labels{"rank": l["rank"], "direction": dir, "kind": kindNames[k]}
				reg.CounterFunc("pls_transport_frames_by_kind_total",
					"Frames moved by the transport, by wire kind (data, hello, table, bye, ping, dataz, dataref).", lk,
					func() float64 {
						st := ks.FramesByKind()
						if dir == "sent" {
							return float64(st.Sent[k])
						}
						return float64(st.Recv[k])
					})
				reg.CounterFunc("pls_transport_frame_bytes_by_kind_total",
					"Wire bytes moved by the transport, by wire kind (post-compression frame sizes; zero on inproc).", lk,
					func() float64 {
						st := ks.FramesByKind()
						if dir == "sent" {
							return float64(st.SentBytes[k])
						}
						return float64(st.RecvBytes[k])
					})
			}
		}
	}
	if cs, ok := transport.AsCompressionStatser(conn); ok {
		reg.CounterFunc("pls_transport_compress_raw_bytes_total",
			"Payload-section bytes that entered the wire compressor (pre-compression).", l,
			func() float64 { raw, _ := cs.CompressionStats(); return float64(raw) })
		reg.CounterFunc("pls_transport_compress_wire_bytes_total",
			"Payload-section bytes the wire compressor actually shipped (post-compression).", l,
			func() float64 { _, wire := cs.CompressionStats(); return float64(wire) })
		reg.GaugeFunc("pls_transport_compression_ratio",
			"Raw/wire ratio over all frames the compressor shrank (1 = nothing compressed yet).", l,
			func() float64 {
				raw, wire := cs.CompressionStats()
				if wire == 0 {
					return 1
				}
				return float64(raw) / float64(wire)
			})
	}
	if ls, ok := transport.AsLivenessStatser(conn); ok {
		for peer := 0; peer < w.comm.Size(); peer++ {
			if peer == rank {
				continue
			}
			peer := peer
			lp := telemetry.Labels{"rank": l["rank"], "peer": strconv.Itoa(peer)}
			reg.GaugeFunc("pls_transport_peer_silence_seconds",
				"Seconds since the transport last heard anything from the peer (-1 = never).", lp,
				func() float64 {
					t := ls.LastHeard(peer)
					if t.IsZero() {
						return -1
					}
					return time.Since(t).Seconds()
				})
		}
	}
}
