// Closed-loop shuffle controller wiring (DESIGN.md §16). The decision
// geometry is analysis.DecideQ and the trajectory bookkeeping is
// control.Controller; this file owns the protocol that makes one decision
// per epoch bitwise-identical on every rank:
//
//  1. After epoch e's collectives settle, every rank records two
//     DETERMINISTIC observations — the total-variation distance between
//     the labels it trained on and the global label distribution, and a
//     MODELED exchange/compute cost ratio at fixed reference rates. Never
//     wall-clock: two same-seed worlds observe identically.
//  2. One Gather ships the observations to the group root; the root steps
//     control.Controller.Decide and sends the resulting
//     transport.QDecision to each member on the reserved control tag.
//  3. Every member validates the decision's (generation, epoch) stamp,
//     Adopts the root's float64 verbatim, and applies it with
//     Scheduler.SetQ before epoch e+1's Scheduling re-plans from the
//     shared seed at the new fraction.
//
// The step runs under the same Guard/reconcile machinery as the epoch
// itself, so a peer death mid-protocol funnels into the ordinary degrade
// recovery, which re-broadcasts the new root's Q (train.go step 5).
package train

import (
	"fmt"

	"plshuffle/internal/analysis"
	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle/control"
	"plshuffle/internal/transport"
)

// ReasonSchedule is the trajectory label of an open-loop QSchedule replay —
// the one reason the closed loop never emits (see analysis.QReasons for the
// decision reasons proper).
const ReasonSchedule = "schedule"

// Fixed reference rates for the modeled cost ratio. The absolute values are
// a nominal 1 GB/s interconnect against 10 GFLOP/s of compute; only their
// RATIO matters (it scales where "exchange stops hiding behind compute"
// trips), and fixing both keeps the observation a pure function of the
// run's configuration and seed.
const (
	refWireBytesPerSec = 1e9
	refFlopsPerSec     = 1e10
)

// ctrlTag is the reserved tag of epoch's QDecision messages. Bit 23 keys the
// control plane: exchange tags are the raw epoch (< 2^20), admission tags
// live at 2^22+rank, and checkpoint tags are (generation+1)<<24 + nextEpoch
// with bit 23 clear — so a generation-salted tag with bit 23 set can alias
// none of them, and a stale decision from before a group re-formation can
// never be mistaken for a live one.
func ctrlTag(generation, epoch int) int {
	return (generation+1)<<24 | 1<<23 | epoch
}

// initController builds the worker's controller from the run configuration:
// the default policy with the operator's clamps, the dataset's global label
// histogram, and Strategy.Q as the trajectory's (clamped) starting point,
// applied to the exchange scheduler before the first epoch plans.
func (w *worker) initController() error {
	cfg := w.cfg
	pol := analysis.DefaultQPolicy()
	if cfg.AutoQMin != 0 || cfg.AutoQMax != 0 {
		pol.MinQ, pol.MaxQ = cfg.AutoQMin, cfg.AutoQMax
	}
	ctrl, err := control.New(control.Config{
		N: len(cfg.Dataset.Train), M: w.comm.GroupSize(), B: cfg.BatchSize, Policy: pol,
	}, cfg.Strategy.Q)
	if err != nil {
		return err
	}
	w.ctrl = ctrl
	w.ctrlQ, w.ctrlReason = ctrl.Q(), analysis.ReasonHold
	if err := w.exchanger.SetQ(w.ctrlQ); err != nil {
		return err
	}
	n := len(cfg.Dataset.Train)
	w.globalHist = make([]float64, cfg.Dataset.Classes)
	for _, s := range cfg.Dataset.Train {
		w.globalHist[s.Label]++
	}
	for i := range w.globalHist {
		w.globalHist[i] /= float64(n)
	}
	return nil
}

// observeEpoch records the epoch's controller observations from the sample
// IDs this rank trained on and the epoch's final exchange volume.
func (w *worker) observeEpoch(trained []int, es *EpochStats) {
	// Label-exposure skew: total-variation distance between the epoch's
	// trained-label distribution and the global one. Zero for a perfectly
	// representative epoch, approaching one when the rank saw only classes
	// the rest of the world barely holds.
	hist := make([]float64, len(w.globalHist))
	for _, id := range trained {
		if l := w.cfg.Dataset.Train[id].Label; l >= 0 && l < len(hist) {
			hist[l]++
		}
	}
	var skew float64
	if n := float64(len(trained)); n > 0 {
		for c, g := range w.globalHist {
			d := hist[c]/n - g
			if d < 0 {
				d = -d
			}
			skew += d
		}
		skew /= 2
	}
	// Modeled cost ratio: the epoch's simulated exchange bytes at the
	// reference wire rate against its compute at ~6 flops per parameter per
	// sample (forward + backward). Above 1, the exchange could no longer
	// hide behind compute on this rank even in the overlapped schedule.
	comm := 0.0
	if flops := float64(len(trained)) * 6 * float64(w.paramCount()); flops > 0 {
		comm = (float64(es.ExchangeBytes) / refWireBytesPerSec) /
			(flops / refFlopsPerSec)
	}
	w.obsSkew, w.obsComm = skew, comm
}

func (w *worker) paramCount() int {
	n := 0
	for _, p := range w.params {
		n += len(p.W)
	}
	return n
}

// controllerStep runs the epoch-boundary control round described in the
// file header. Call it under a Guard after epoch's stats are final and
// before the checkpoint for epoch+1 snapshots.
func (w *worker) controllerStep(epoch int) error {
	group := w.comm.GroupRanks()
	root := group[0]
	obs := mpi.Gather(w.comm, []float64{w.obsSkew, w.obsComm}, root)
	tag := ctrlTag(w.generation, epoch)
	var dec transport.QDecision
	if w.comm.Rank() == root {
		all := make([]control.Obs, 0, len(group))
		for g := 0; g < len(group); g++ {
			all = append(all, control.Obs{Skew: obs[2*g], CommRatio: obs[2*g+1]})
		}
		d, err := w.ctrl.Decide(epoch, all)
		if err != nil {
			return err
		}
		dec = transport.QDecision{
			Generation: int64(w.generation),
			Epoch:      int64(epoch),
			Q:          d.Q,
			Reason:     analysis.ReasonCode(d.Reason),
		}
		for _, r := range group {
			if r == root {
				continue
			}
			if pe := w.comm.SendPeerAware(r, tag, dec); pe != nil {
				return pe
			}
		}
	} else {
		inGroup := make(map[int]bool, len(group))
		for _, r := range group {
			inGroup[r] = true
		}
		req := w.comm.Irecv(root, tag)
		payload, _, err := w.comm.WaitPeerAware(req, func(r int) bool { return !inGroup[r] })
		if err != nil {
			return fmt.Errorf("receiving Q decision for epoch %d: %w", epoch, err)
		}
		got, ok := payload.(transport.QDecision)
		if !ok {
			return fmt.Errorf("malformed Q decision for epoch %d: %T", epoch, payload)
		}
		if got.Generation != int64(w.generation) || got.Epoch != int64(epoch) {
			return fmt.Errorf("stale Q decision: got (gen %d, epoch %d), want (gen %d, epoch %d)",
				got.Generation, got.Epoch, w.generation, epoch)
		}
		dec = got
		// Adopt the root's float64 verbatim — the trajectory is the root's,
		// bit for bit.
		w.ctrl.Adopt(dec.Q)
	}
	return w.applyQDecision(dec)
}

// applyQDecision installs a decided (or adopted) fraction: the scheduler
// re-plans the NEXT epoch from the shared seed at this Q, and the stats and
// telemetry trajectory advance. The exchange window is closed at every call
// site (epoch boundary, post-recovery), so SetQ cannot race a live plan.
func (w *worker) applyQDecision(dec transport.QDecision) error {
	if err := w.exchanger.SetQ(dec.Q); err != nil {
		return err
	}
	w.ctrlQ = dec.Q
	w.ctrlReason = analysis.ReasonFromCode(dec.Reason)
	if w.cm != nil {
		w.cm.Note(w.ctrlQ, w.ctrlReason)
	}
	return nil
}
