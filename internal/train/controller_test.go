package train

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"plshuffle/internal/analysis"
	"plshuffle/internal/checkpoint"
	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/telemetry"
	"plshuffle/internal/transport/faultinject"
	"plshuffle/internal/transport/transporttest"
)

// autoQConfig is the shared fixture for the controller suite: a skewed
// partition (high class locality) so the label-skew observation actually
// pushes the controller off its starting Q, giving the replay tests a
// non-trivial trajectory to pin.
func autoQConfig(t *testing.T, samples, workers int, q float64) Config {
	t.Helper()
	cfg := baseConfig(t, testDataset(t, samples, 4), workers, shuffle.Partial(q))
	cfg.PartitionLocality = 0.8
	cfg.AutoQ = true
	return cfg
}

// trajectory flattens the per-epoch controller decisions of a run.
func trajectory(epochs []EpochStats) []float64 {
	qs := make([]float64, 0, len(epochs))
	for _, es := range epochs {
		qs = append(qs, es.ControllerQ)
	}
	return qs
}

func TestControllerConfigValidation(t *testing.T) {
	ds := testDataset(t, 256, 4)
	good := baseConfig(t, ds, 4, shuffle.Partial(0.2))
	good.AutoQ = true
	if err := good.Validate(); err != nil {
		t.Fatalf("auto-Q config rejected: %v", err)
	}
	sched := baseConfig(t, ds, 4, shuffle.Partial(0.2))
	sched.QSchedule = []float64{0.1, 0.2}
	if err := sched.Validate(); err != nil {
		t.Fatalf("schedule config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"auto-q-needs-pls", func(c *Config) { c.Strategy = shuffle.GlobalShuffling(); c.AutoQ = true }},
		{"schedule-needs-pls", func(c *Config) { c.Strategy = shuffle.LocalShuffling(); c.QSchedule = []float64{0.1} }},
		{"auto-q-xor-schedule", func(c *Config) { c.AutoQ = true; c.QSchedule = []float64{0.1} }},
		{"clamps-inverted", func(c *Config) { c.AutoQ = true; c.AutoQMin = 0.5; c.AutoQMax = 0.1 }},
		{"clamp-above-one", func(c *Config) { c.AutoQ = true; c.AutoQMax = 1.5 }},
		{"schedule-entry-range", func(c *Config) { c.QSchedule = []float64{0.1, 1.5} }},
	}
	for _, tc := range cases {
		c := baseConfig(t, ds, 4, shuffle.Partial(0.2))
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestQSchedulePinsPerEpochQ: the open-loop schedule is the replay harness
// the bitwise acceptance rests on, so first prove it does what it says —
// epoch e trains with schedule[min(e, len-1)], recorded in EpochStats.
func TestQSchedulePinsPerEpochQ(t *testing.T) {
	cfg := baseConfig(t, testDataset(t, 256, 4), 4, shuffle.Partial(0.3))
	cfg.Epochs = 4
	cfg.QSchedule = []float64{0.1, 0.3, 0.2} // shorter than Epochs: last entry holds
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.3, 0.2, 0.2}
	for e, es := range res.Epochs {
		if es.ControllerQ != want[e] {
			t.Errorf("epoch %d trained at q=%v, schedule says %v", e, es.ControllerQ, want[e])
		}
		if es.ControllerReason != ReasonSchedule {
			t.Errorf("epoch %d reason %q, want %q", e, es.ControllerReason, ReasonSchedule)
		}
	}
}

// TestAutoQSameSeedWorldsIdentical: two identically-seeded auto-Q worlds
// must decide the same trajectory and land on bitwise-identical weights —
// the controller adds no nondeterminism (all observations are modeled,
// never wall-clock).
func TestAutoQSameSeedWorldsIdentical(t *testing.T) {
	cfg := autoQConfig(t, 512, 4, 0.2)
	cfg.Epochs = 5
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.Epochs {
		if a.Epochs[e].ControllerQ != b.Epochs[e].ControllerQ ||
			a.Epochs[e].ControllerReason != b.Epochs[e].ControllerReason {
			t.Fatalf("epoch %d decisions differ across identical runs: %v(%s) vs %v(%s)",
				e, a.Epochs[e].ControllerQ, a.Epochs[e].ControllerReason,
				b.Epochs[e].ControllerQ, b.Epochs[e].ControllerReason)
		}
	}
	requireBitwiseEqual(t, "same-seed auto-q weights", flatWeights(a.FinalParams), flatWeights(b.FinalParams))

	traj := trajectory(a.Epochs)
	moved := false
	for _, q := range traj {
		if q != traj[0] {
			moved = true
		}
	}
	if !moved {
		t.Errorf("controller never moved Q on a skewed partition; trajectory %v", traj)
	}
}

// TestAutoQMatchesScheduleReplayBitwise is the bitwise acceptance gate: the
// closed-loop run's decided trajectory, replayed open-loop through
// QSchedule, must reproduce the exact same weights — on inproc and with
// every frame (including the QDecision control round) crossing real TCP.
func TestAutoQMatchesScheduleReplayBitwise(t *testing.T) {
	backends := []transporttest.Backend{transporttest.Inproc()}
	if !testing.Short() {
		backends = append(backends, transporttest.TCP())
	}
	for _, b := range backends {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			const workers = 4
			cfg := autoQConfig(t, 384, workers, 0.2)
			cfg.Epochs = 4

			run := func(c Config) ([]float64, []float32) {
				t.Helper()
				var mu sync.Mutex
				var traj []float64
				var weights []float32
				err := b.Run(workers, func(comm *mpi.Comm) error {
					rr, err := RunRank(comm, c)
					if err != nil {
						return err
					}
					mu.Lock()
					defer mu.Unlock()
					if comm.Rank() == 0 {
						traj = trajectory(rr.Epochs)
						weights = flatWeights(rr.FinalParams)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				return traj, weights
			}

			closedTraj, closedW := run(cfg)

			replay := cfg
			replay.AutoQ = false
			replay.AutoQMin, replay.AutoQMax = 0, 0
			replay.QSchedule = closedTraj
			openTraj, openW := run(replay)

			for e := range closedTraj {
				if openTraj[e] != closedTraj[e] {
					t.Fatalf("epoch %d: schedule replayed q=%v, controller decided %v", e, openTraj[e], closedTraj[e])
				}
			}
			requireBitwiseEqual(t, b.Name()+" auto-q vs schedule replay", closedW, openW)
		})
	}
}

// TestAutoQCheckpointResumeBitwise: kill the run at an epoch boundary and
// resume from the snapshot — the controller section must replay the exact Q
// trajectory, and the resumed world's weights must be bitwise identical to
// a world that never stopped. This is why the controller steps at the FINAL
// boundary too: the stopped run's last snapshot already carries the
// decision the uninterrupted run made there.
func TestAutoQCheckpointResumeBitwise(t *testing.T) {
	const epochs = 6
	mk := func() Config {
		cfg := autoQConfig(t, 512, 4, 0.2)
		cfg.Epochs = epochs
		return cfg
	}

	ref, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first := mk()
	first.Epochs = epochs / 2
	first.CheckpointDir = dir
	first.CheckpointEvery = epochs / 2
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(checkpoint.Dir(dir, epochs/2), checkpoint.ManifestName)); err != nil {
		t.Fatalf("interrupted run left no complete snapshot: %v", err)
	}

	resumed := mk()
	resumed.CheckpointDir = dir
	resumed.Resume = true
	resRes, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(resRes.Epochs) != epochs-epochs/2 {
		t.Fatalf("resumed run recorded %d epochs, want %d", len(resRes.Epochs), epochs-epochs/2)
	}
	refTail := trajectory(ref.Epochs[epochs/2:])
	resTraj := trajectory(resRes.Epochs)
	for e := range refTail {
		if resTraj[e] != refTail[e] {
			t.Fatalf("resumed epoch %d trained at q=%v, uninterrupted run used %v (tail %v vs %v)",
				epochs/2+e, resTraj[e], refTail[e], resTraj, refTail)
		}
	}
	requireBitwiseEqual(t, "auto-q resume", flatWeights(ref.FinalParams), flatWeights(resRes.FinalParams))
}

// TestAutoQChaosSoak: a rank dies mid-exchange while the controller is
// live. The survivors must recover (degrade), re-agree on the controller
// state over the new root's broadcast, keep deciding in lockstep — same
// post-recovery trajectory, bitwise-identical weights — finish every epoch,
// and leak no goroutines. Run under -race in CI ("Controller (race)").
func TestAutoQChaosSoak(t *testing.T) {
	backends := []struct {
		name string
		mk   func(scripts []faultinject.Script, conns []*faultinject.Conn) transporttest.Backend
	}{
		{"inproc", func(s []faultinject.Script, c []*faultinject.Conn) transporttest.Backend {
			return transporttest.InprocWrapped("ctrl-chaos-inproc", chaosWrap(s, c))
		}},
	}
	if !testing.Short() {
		backends = append(backends, struct {
			name string
			mk   func(scripts []faultinject.Script, conns []*faultinject.Conn) transporttest.Backend
		}{"tcp", func(s []faultinject.Script, c []*faultinject.Conn) transporttest.Backend {
			return transporttest.TCPWrapped("ctrl-chaos-tcp", chaosWrap(s, c), chaosTCPConfig)
		}})
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			const (
				workers   = 4
				victim    = 2
				epochs    = 4
				killEpoch = 1
			)
			base := runtime.NumGoroutine()
			cfg := autoQConfig(t, 512, workers, 0.3)
			cfg.Epochs = epochs
			cfg.OnPeerFail = "degrade"

			scripts := chaosScripts(workers, victim, killEpoch, false)
			conns := make([]*faultinject.Conn, workers)
			b := be.mk(scripts, conns)

			rrs, errs := runChaosWorld(t, b, workers, cfg)

			if !errors.Is(errs[victim], faultinject.ErrCrashed) {
				t.Fatalf("victim rank %d: err %v, want injected crash", victim, errs[victim])
			}
			var survivors []*RankResult
			for r := 0; r < workers; r++ {
				if r == victim {
					continue
				}
				if errs[r] != nil {
					t.Fatalf("survivor rank %d failed: %v", r, errs[r])
				}
				if len(rrs[r].Epochs) != epochs {
					t.Fatalf("survivor rank %d recorded %d epochs, want %d", r, len(rrs[r].Epochs), epochs)
				}
				survivors = append(survivors, rrs[r])
			}

			// Post-recovery agreement: every survivor decided the same Q at
			// every boundary — the QDecision broadcast and the recovery-time
			// adoption kept the controllers in lockstep.
			ref := trajectory(survivors[0].Epochs)
			for i, rr := range survivors[1:] {
				got := trajectory(rr.Epochs)
				for e := range ref {
					if got[e] != ref[e] {
						t.Fatalf("survivors 0 and %d disagree on epoch %d Q: %v vs %v (trajectories %v vs %v)",
							i+1, e, ref[e], got[e], ref, got)
					}
				}
			}
			last := survivors[0].Epochs[epochs-1]
			if last.ControllerQ <= 0 || last.ControllerReason == "" {
				t.Errorf("post-recovery controller state empty: q=%v reason=%q", last.ControllerQ, last.ControllerReason)
			}

			// Still exactly synchronous SGD: bitwise-identical weights.
			w0 := flatWeights(survivors[0].FinalParams)
			for i, rr := range survivors[1:] {
				requireBitwiseEqual(t, fmt.Sprintf("survivor %d weights", i+1), w0, flatWeights(rr.FinalParams))
			}
			waitGoroutines(t, base)
		})
	}
}

// TestAutoQReachesGSParityWithFewerBytes is the headline claim in
// miniature: on the easy synthetic task the self-tuned run must reach the
// same accuracy bar as global shuffling while moving far fewer bytes than
// GS's every-epoch PFS re-read — with no hand-picked Q.
func TestAutoQReachesGSParityWithFewerBytes(t *testing.T) {
	ds := testDataset(t, 512, 4)
	gsCfg := baseConfig(t, ds, 4, shuffle.GlobalShuffling())
	gsCfg.PartitionLocality = 0.8
	gs, err := Run(gsCfg)
	if err != nil {
		t.Fatal(err)
	}
	autoCfg := baseConfig(t, ds, 4, shuffle.Partial(0.2))
	autoCfg.PartitionLocality = 0.8
	autoCfg.AutoQ = true
	auto, err := Run(autoCfg)
	if err != nil {
		t.Fatal(err)
	}

	if gs.FinalValAcc < 0.9 {
		t.Fatalf("GS reference failed to learn: %v", gs.FinalValAcc)
	}
	if auto.FinalValAcc < 0.9 {
		t.Errorf("auto-Q accuracy %v below the 0.9 GS-parity bar (GS got %v)", auto.FinalValAcc, gs.FinalValAcc)
	}
	var gsBytes, autoBytes int64
	for _, es := range gs.Epochs {
		gsBytes += es.PFSReadBytes
	}
	for _, es := range auto.Epochs {
		autoBytes += es.ExchangeBytes
	}
	if gsBytes == 0 {
		t.Fatal("GS recorded no PFS reads; byte accounting broken")
	}
	if autoBytes == 0 || autoBytes >= gsBytes {
		t.Errorf("auto-Q moved %d bytes vs GS's %d; want strictly fewer (and non-zero)", autoBytes, gsBytes)
	}
}

// TestControllerTelemetryScrape: the decided trajectory must be scrape-able
// — pls_controller_q ends at the final decision and the per-reason decision
// counters sum to one decision per epoch boundary.
func TestControllerTelemetryScrape(t *testing.T) {
	const (
		n      = 2
		epochs = 3
	)
	cfg := autoQConfig(t, 256, n, 0.2)
	cfg.Epochs = epochs
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg

	rrs, _, cleanup := runTelemetryWorld(t, transporttest.Inproc(), n, cfg)
	defer cleanup()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, buf.String())
	for r := 0; r < n; r++ {
		rl := fmt.Sprintf(`rank="%d"`, r)
		// The gauge ends at the decision for the (never-run) next epoch, one
		// controllerStep past the last recorded EpochStats — so just pin its
		// presence and clamp range here; the exact trajectory is pinned via
		// EpochStats above.
		got, ok := m[`pls_controller_q{`+rl+`}`]
		if !ok {
			t.Fatalf("rank %d: no pls_controller_q series", r)
		}
		if got <= 0 || got > 1 {
			t.Errorf("rank %d: pls_controller_q=%v outside (0,1]", r, got)
		}
		var decisions float64
		for _, reason := range append(analysis.QReasons(), ReasonSchedule) {
			decisions += m[`pls_controller_decisions_total{`+rl+`,reason="`+reason+`"}`]
		}
		if decisions != epochs {
			t.Errorf("rank %d: %v decisions recorded, want %d (one per boundary)", r, decisions, epochs)
		}
		if len(rrs[r].Epochs) != epochs {
			t.Errorf("rank %d recorded %d epochs", r, len(rrs[r].Epochs))
		}
	}
}
