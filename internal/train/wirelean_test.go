package train

// Acceptance test B for the wire-lean exchange (ISSUE 7): a full 4-rank
// PLS training run over real TCP sockets with the complete lean stack on —
// wirecomp compression, pairwise dedup, fp16exact sample encoding — must
// produce final weights whose crc32c (and every bit) matches the stock-wire
// run, while the scheduler-accounted exchange volume drops at least 2x.
//
// The dataset's features are pre-snapped to an fp16-representable grid so
// EncodingFP16Exact is lossless end to end; both runs train on the very
// same quantized dataset, which is what makes bit-equality a fair demand.

import (
	"hash/crc32"
	"math"
	"sync"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/transport/tcp"
	"plshuffle/internal/transport/transporttest"
)

// fp16GridDataset builds a learnable dataset whose every feature sits on a
// coarse fp16-exact grid (multiples of 1/2). The grid keeps the class
// structure intact, makes fp16exact quantization a no-op bit-wise, and
// gives the wirecomp codec realistic repetition to chew on.
func fp16GridDataset(t testing.TB, n int) *data.Dataset {
	t.Helper()
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "wirelean", NumSamples: n, NumVal: n / 4, Classes: 4,
		FeatureDim: 128, ClassSep: 5, NoiseStd: 1.0, Bytes: 1000, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := func(samples []data.Sample) {
		for i := range samples {
			fs := samples[i].Features
			for j := range fs {
				fs[j] = float32(math.Round(float64(fs[j])*2) / 2)
			}
			data.QuantizeFeaturesFP16(fs)
		}
	}
	snap(ds.Train)
	snap(ds.Val)
	return ds
}

func TestTrainWireLeanEquivalenceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("full training over real sockets in -short mode")
	}
	const (
		workers = 4
		q       = 0.25
		epochs  = 8
		samples = 384
	)
	ds := fp16GridDataset(t, samples)

	type runOut struct {
		weights []float32
		wire    int64 // scheduler-accounted exchange bytes, all ranks
		hits    int64
	}
	run := func(lean bool) runOut {
		cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
		cfg.Epochs = epochs
		if lean {
			cfg.WireDedup = true
			cfg.SampleEncoding = "fp16exact"
		}
		backend := transporttest.TCP()
		if lean {
			backend = transporttest.TCPWrapped("tcp-lean", nil,
				func(rank int, c *tcp.Config) { c.Compress = true })
		}
		var mu sync.Mutex
		out := runOut{}
		err := backend.Run(workers, func(c *mpi.Comm) error {
			rr, err := RunRank(c, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			for _, es := range rr.Epochs {
				out.wire += es.ExchangeWireBytes
				out.hits += int64(es.DedupHits)
			}
			if c.Rank() == 0 {
				out.weights = flatWeights(rr.FinalParams)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	base := run(false)
	lean := run(true)

	crc := func(ws []float32) uint32 {
		h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
		var buf [4]byte
		for _, w := range ws {
			bits := math.Float32bits(w)
			buf[0], buf[1], buf[2], buf[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
			h.Write(buf[:])
		}
		return h.Sum32()
	}
	if len(base.weights) == 0 || len(base.weights) != len(lean.weights) {
		t.Fatalf("weight vectors missing or mismatched: %d vs %d", len(base.weights), len(lean.weights))
	}
	for i := range base.weights {
		if math.Float32bits(base.weights[i]) != math.Float32bits(lean.weights[i]) {
			t.Fatalf("weight %d diverged: %v (baseline) vs %v (lean)", i, base.weights[i], lean.weights[i])
		}
	}
	bc, lc := crc(base.weights), crc(lean.weights)
	if bc != lc {
		t.Fatalf("weights crc32c diverged: %08x vs %08x", bc, lc)
	}
	if lean.hits == 0 {
		t.Errorf("lean training run scored zero dedup hits over %d epochs", epochs)
	}
	ratio := float64(base.wire) / float64(lean.wire)
	t.Logf("exchange wire bytes: baseline %d, lean %d (%.2fx, %d dedup hits, weights crc32c=%08x)",
		base.wire, lean.wire, ratio, lean.hits, lc)
	if ratio < 2 {
		t.Fatalf("lean training moved %d exchange bytes vs baseline %d: %.2fx, want >= 2x",
			lean.wire, base.wire, ratio)
	}
}
