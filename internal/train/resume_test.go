package train

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"plshuffle/internal/checkpoint"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/transport/faultinject"
	"plshuffle/internal/transport/transporttest"
)

// TestResumeBitwise is the tentpole gate: a run interrupted at an epoch
// boundary and resumed from its checkpoint must end bitwise identical to
// the uninterrupted run — for the PLS exchange with flat and overlapped
// gradient sync, for importance sampling (the loss table is part of the
// snapshot), and for the corgi2 hybrid path.
func TestResumeBitwise(t *testing.T) {
	const epochs = 6
	corgiDir := ingestTestDataset(t, 512, 4, 32)
	cases := []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"pls-flat", func(t *testing.T) Config {
			return baseConfig(t, testDataset(t, 512, 4), 4, shuffle.Partial(0.3))
		}},
		{"pls-overlap", func(t *testing.T) Config {
			cfg := baseConfig(t, testDataset(t, 512, 4), 4, shuffle.Partial(0.3))
			cfg.OverlapGrads = true
			return cfg
		}},
		{"pls-importance", func(t *testing.T) Config {
			cfg := baseConfig(t, testDataset(t, 512, 4), 4, shuffle.Partial(0.3))
			cfg.ImportanceSampling = true
			return cfg
		}},
		{"local", func(t *testing.T) Config {
			return baseConfig(t, testDataset(t, 512, 4), 4, shuffle.LocalShuffling())
		}},
		{"corgi2", func(t *testing.T) Config {
			return corgiConfig(corgiDir, 4)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.cfg(t)
			ref.Epochs = epochs
			refRes, err := Run(ref)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			first := tc.cfg(t)
			first.Epochs = epochs / 2
			first.CheckpointDir = dir
			first.CheckpointEvery = epochs / 2
			if _, err := Run(first); err != nil {
				t.Fatal(err)
			}
			snap := checkpoint.Dir(dir, epochs/2)
			if _, err := os.Stat(filepath.Join(snap, checkpoint.ManifestName)); err != nil {
				t.Fatalf("interrupted run left no complete snapshot: %v", err)
			}

			resumed := tc.cfg(t)
			resumed.Epochs = epochs
			resumed.CheckpointDir = dir
			resumed.Resume = true
			resRes, err := Run(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if len(resRes.Epochs) != epochs-epochs/2 {
				t.Fatalf("resumed run recorded %d epochs, want %d", len(resRes.Epochs), epochs-epochs/2)
			}
			requireBitwiseEqual(t, tc.name, flatWeights(refRes.FinalParams), flatWeights(resRes.FinalParams))
		})
	}
}

// TestCheckpointCadence checks CheckpointEvery: only the owed epoch
// boundaries get snapshot directories, each with a verifiable manifest.
func TestCheckpointCadence(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
	cfg.Epochs = 4
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 2
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 4; e++ {
		dir := checkpoint.Dir(cfg.CheckpointDir, e)
		_, err := os.Stat(dir)
		if e%2 == 0 {
			if err != nil {
				t.Fatalf("epoch boundary %d owed a snapshot: %v", e, err)
			}
			meta, err := checkpoint.ReadManifest(dir)
			if err != nil {
				t.Fatalf("snapshot %d manifest: %v", e, err)
			}
			if err := checkpoint.Verify(dir, meta); err != nil {
				t.Fatalf("snapshot %d does not verify: %v", e, err)
			}
			if meta.NextEpoch != e || meta.WorldSize != 4 || len(meta.Ranks) != 4 || meta.Group != nil {
				t.Fatalf("snapshot %d manifest wrong: %+v", e, meta)
			}
		} else if err == nil {
			t.Fatalf("epoch boundary %d wrote an unowed snapshot", e)
		}
	}
	latest, meta, err := checkpoint.LoadLatest(cfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != checkpoint.Dir(cfg.CheckpointDir, 4) || meta.NextEpoch != 4 {
		t.Fatalf("LoadLatest picked %s (next epoch %d), want the epoch-4 snapshot", latest, meta.NextEpoch)
	}
}

// TestResumeRejections covers the resume preflight: an empty checkpoint
// directory, a hyperparameter drift (fingerprint mismatch), and a world
// size matching neither the snapshot's full nor live shape must all fail
// loudly instead of silently diverging.
func TestResumeRejections(t *testing.T) {
	ds := testDataset(t, 256, 4)
	ckptDir := t.TempDir()
	seeded := baseConfig(t, ds, 4, shuffle.Partial(0.25))
	seeded.Epochs = 2
	seeded.CheckpointDir = ckptDir
	if _, err := Run(seeded); err != nil {
		t.Fatal(err)
	}

	t.Run("empty-dir", func(t *testing.T) {
		cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
		cfg.CheckpointDir = t.TempDir()
		cfg.Resume = true
		if _, err := Run(cfg); err == nil {
			t.Fatal("resume from an empty checkpoint directory succeeded")
		}
	})
	t.Run("fingerprint-drift", func(t *testing.T) {
		cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
		cfg.CheckpointDir = ckptDir
		cfg.Resume = true
		cfg.BaseLR = 0.05
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), "fingerprint") {
			t.Fatalf("resume with drifted hyperparameters: %v, want fingerprint mismatch", err)
		}
	})
	t.Run("wrong-world-size", func(t *testing.T) {
		cfg := baseConfig(t, ds, 2, shuffle.Partial(0.25))
		cfg.CheckpointDir = ckptDir
		cfg.Resume = true
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), "world size") {
			t.Fatalf("resume with 2 ranks onto a 4-rank snapshot: %v, want world-size error", err)
		}
	})
	t.Run("resume-without-dir", func(t *testing.T) {
		cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
		cfg.Resume = true
		if err := cfg.Validate(); err == nil {
			t.Fatal("Resume without CheckpointDir validated")
		}
	})
}

// TestDegradedCheckpointResume is the first satellite: a world that lost a
// rank checkpoints its post-shrink group into the manifest, and a relaunch
// with exactly the surviving count adopts the degraded partition (rank i
// takes live member i's state) instead of restoring the pre-failure one.
func TestDegradedCheckpointResume(t *testing.T) {
	const (
		workers   = 4
		victim    = 2
		epochs    = 3
		killEpoch = 1
		samples   = 512
	)
	base := runtime.NumGoroutine()
	ds := testDataset(t, samples, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(0.5))
	cfg.Epochs = epochs
	cfg.OnPeerFail = "degrade"
	cfg.CheckpointDir = t.TempDir()

	scripts := chaosScripts(workers, victim, killEpoch, false)
	conns := make([]*faultinject.Conn, workers)
	b := transporttest.InprocWrapped("ckpt-degrade", chaosWrap(scripts, conns))
	rrs, errs := runChaosWorld(t, b, workers, cfg)
	assertChaosSurvivors(t, rrs, errs, workers, victim, killEpoch, epochs, samples, 0.5)
	waitGoroutines(t, base)

	// The last snapshot was committed by the shrunken group and must say so.
	dir, meta, err := checkpoint.LoadLatest(cfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NextEpoch != epochs {
		t.Fatalf("latest snapshot is for epoch %d, want %d", meta.NextEpoch, epochs)
	}
	if meta.WorldSize != workers {
		t.Fatalf("snapshot world size %d, want %d", meta.WorldSize, workers)
	}
	live := meta.LiveRanks()
	if len(live) != workers-1 {
		t.Fatalf("snapshot group has %d live ranks, want %d: %+v", len(live), workers-1, meta.Group)
	}
	for _, r := range live {
		if r == victim {
			t.Fatalf("dead rank %d recorded live in %v", victim, live)
		}
	}
	var survivorIDs int
	for _, r := range live {
		sections, err := checkpoint.ReadRankFile(checkpoint.RankPath(dir, r))
		if err != nil {
			t.Fatalf("rank %d snapshot: %v", r, err)
		}
		ids, err := decodeIDs(sections["store"])
		if err != nil {
			t.Fatal(err)
		}
		survivorIDs += len(ids)
	}

	// Relaunching at the FULL pre-failure size must be refused: the dead
	// rank's unexchanged samples are gone.
	full := baseConfig(t, ds, workers, shuffle.Partial(0.5))
	full.Epochs = epochs + 2
	full.CheckpointDir = cfg.CheckpointDir
	full.Resume = true
	if _, err := Run(full); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("full-size resume of a degraded snapshot: %v, want degraded-group refusal", err)
	}

	// Relaunch with the surviving count: new rank i adopts live[i]'s state
	// and the run completes on the short stores.
	resumed := baseConfig(t, ds, workers-1, shuffle.Partial(0.5))
	resumed.Epochs = epochs + 2
	resumed.CheckpointDir = cfg.CheckpointDir
	resumed.Resume = true
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("degraded resume trained %d epochs, want 2", len(res.Epochs))
	}
}

// TestChaosCrashMidCheckpoint is the second satellite: a rank dies exactly
// while reporting its checkpoint CRC to the root. The half-born snapshot —
// a torn temp file, committed peers, no manifest — must stay invisible, and
// a fresh world must resume from the previous complete snapshot and land
// bitwise on the uninterrupted run.
func TestChaosCrashMidCheckpoint(t *testing.T) {
	const (
		workers = 4
		victim  = 2
		epochs  = 4
		samples = 256
	)
	base := runtime.NumGoroutine()
	ds := testDataset(t, samples, 4)

	ref := baseConfig(t, ds, workers, shuffle.Partial(0.5))
	ref.Epochs = epochs
	refRes, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	cfg := baseConfig(t, ds, workers, shuffle.Partial(0.5))
	cfg.Epochs = epochs
	cfg.CheckpointDir = t.TempDir()

	// Crash the victim on its first frame tagged with the epoch-2 boundary's
	// checkpoint tag: that is the CRC report sent AFTER its temp file was
	// durably written but BEFORE the rename — the torn-file window.
	scripts := make([]faultinject.Script, workers)
	scripts[victim] = faultinject.Script{CrashTag: ckptTag(0, 2), CrashCount: 1}
	conns := make([]*faultinject.Conn, workers)
	b := transporttest.InprocWrapped("ckpt-crash", chaosWrap(scripts, conns))
	_, errs := runChaosWorld(t, b, workers, cfg)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d survived a mid-checkpoint crash (abort policy)", r)
		}
	}
	if !errors.Is(errs[victim], faultinject.ErrCrashed) {
		t.Fatalf("victim failed with %v, want the scripted crash", errs[victim])
	}
	waitGoroutines(t, base)

	// Forensics: epoch-1's snapshot is complete; epoch-2's directory holds
	// the victim's torn temp file and no manifest.
	goodDir := checkpoint.Dir(cfg.CheckpointDir, 1)
	if meta, err := checkpoint.ReadManifest(goodDir); err != nil {
		t.Fatalf("epoch-1 snapshot manifest: %v", err)
	} else if err := checkpoint.Verify(goodDir, meta); err != nil {
		t.Fatalf("epoch-1 snapshot does not verify: %v", err)
	}
	tornDir := checkpoint.Dir(cfg.CheckpointDir, 2)
	if _, err := os.Stat(filepath.Join(tornDir, checkpoint.ManifestName)); !os.IsNotExist(err) {
		t.Fatalf("half-born snapshot has a manifest (err=%v)", err)
	}
	if _, err := os.Stat(checkpoint.RankPath(tornDir, victim) + ".tmp"); err != nil {
		t.Fatalf("victim's torn temp file missing: %v", err)
	}
	dir, meta, err := checkpoint.LoadLatest(cfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if dir != goodDir || meta.NextEpoch != 1 {
		t.Fatalf("LoadLatest picked %s (next epoch %d), want the complete epoch-1 snapshot", dir, meta.NextEpoch)
	}

	// Resume from the surviving snapshot; the final weights must be bitwise
	// the uninterrupted run's.
	resumed := baseConfig(t, ds, workers, shuffle.Partial(0.5))
	resumed.Epochs = epochs
	resumed.CheckpointDir = cfg.CheckpointDir
	resumed.Resume = true
	resRes, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(resRes.Epochs) != epochs-1 {
		t.Fatalf("resume trained %d epochs, want %d", len(resRes.Epochs), epochs-1)
	}
	requireBitwiseEqual(t, "crash-resume", flatWeights(refRes.FinalParams), flatWeights(resRes.FinalParams))
}
