package train

// Mid-run rank join (DESIGN.md §15). The transport's rendezvous root keeps
// answering hellos after bootstrap; a joiner that rendezvoused sits parked
// with a rank slot but no group membership until the trainers admit it at
// an epoch boundary:
//
//	members (admitJoiners)               joiner (JoinRank)
//	────────────────────────             ─────────────────────────
//	root drains PendingJoins             blocks on Irecv(admitTag)
//	Bcast join list over group
//	AdmitPeer each joiner
//	generation++, SetCollSeq,
//	Grow(newSize, newGroup)
//	root sends admission ──────────────▶ adopts generation/SetCollSeq,
//	                                     Grow(newSize, newGroup)
//	Barrier over grown group ◀─────────▶ Barrier
//	Bcast weights from group root ─────▶ receives weights
//	Rebalance stored samples ◀─────────▶ Rebalance (receives its share)
//	train epoch e                        train() from startEpoch = e
//
// The admission message is point-to-point on a per-joiner tag, so a joiner
// can never confuse another joiner's admission (or a stale epoch's) with
// its own. After the join every member — joiner included — derives the same
// iteration counts, exchange plans, and collective schedule from the grown
// group, and the rebalance restores the balanced-disjoint-store invariant
// those derivations assume.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/transport"
)

// admitTag is the user-tag space of join admissions, keyed by the JOINER's
// world rank (not an epoch: a joiner listens before it knows the epoch).
func admitTag(rank int) int { return 1<<22 + rank }

// admitMsg is what the group root sends a joiner: the grown world shape,
// the generation to align the collective sequence to, and the epoch the
// grown group trains next. short propagates the members' shortData flag so
// the joiner runs the identical per-epoch collectives.
type admitMsg struct {
	size       int
	generation int
	epoch      int
	short      bool
	group      []int
}

func encodeAdmit(m admitMsg) []byte {
	buf := make([]byte, 4*(5+len(m.group)))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(m.size))
	le.PutUint32(buf[4:], uint32(m.generation))
	le.PutUint32(buf[8:], uint32(m.epoch))
	var s uint32
	if m.short {
		s = 1
	}
	le.PutUint32(buf[12:], s)
	le.PutUint32(buf[16:], uint32(len(m.group)))
	for i, r := range m.group {
		le.PutUint32(buf[20+4*i:], uint32(r))
	}
	return buf
}

func decodeAdmit(b []byte) (admitMsg, error) {
	var m admitMsg
	if len(b) < 20 {
		return m, fmt.Errorf("train: admission message truncated (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	m.size = int(le.Uint32(b[0:]))
	m.generation = int(le.Uint32(b[4:]))
	m.epoch = int(le.Uint32(b[8:]))
	m.short = le.Uint32(b[12:]) != 0
	n := int(le.Uint32(b[16:]))
	if len(b) != 4*(5+n) {
		return m, fmt.Errorf("train: admission message is %d bytes, want %d for %d group ranks", len(b), 4*(5+n), n)
	}
	m.group = make([]int, n)
	for i := range m.group {
		m.group[i] = int(le.Uint32(b[20+4*i:]))
	}
	return m, nil
}

// admitJoiners runs on every member at the top of an elastic epoch: the
// group root drains the transport's pending join requests and broadcasts
// them; if any arrived, every member applies the grow in lock-step. Joiner
// traffic (the broadcast, the grow, the weight sync, the rebalance) all
// happens before the epoch's first exchange or gradient collective.
func (w *worker) admitJoiners(epoch int) error {
	return w.comm.Guard(func() error {
		root := w.comm.GroupRanks()[0]
		var blob []byte
		if w.comm.Rank() == root {
			if joins := w.comm.PendingJoins(); len(joins) > 0 {
				b, err := json.Marshal(joins)
				if err != nil {
					return err
				}
				blob = b
			}
		}
		n := []int{len(blob)}
		mpi.Bcast(w.comm, n, root)
		if n[0] == 0 {
			return nil
		}
		if w.comm.Rank() != root {
			blob = make([]byte, n[0])
		}
		mpi.Bcast(w.comm, blob, root)
		var joins []transport.JoinRequest
		if err := json.Unmarshal(blob, &joins); err != nil {
			return err
		}
		return w.applyJoins(epoch, joins)
	})
}

// applyJoins grows the collective group over the joiners and brings them to
// the members' state. Every member executes it with the identical join list
// (the root's broadcast).
func (w *worker) applyJoins(epoch int, joins []transport.JoinRequest) error {
	group := w.comm.GroupRanks()
	newSize := w.comm.Size()
	for _, jr := range joins {
		// Inproc worlds are wired at creation and note joins with an empty
		// address; the transport-level admission is then a no-op.
		if jr.Addr != "" {
			if err := w.comm.AdmitPeer(jr.Rank, jr.Addr, jr.Flags); err != nil {
				return err
			}
		}
		group = unionSorted(group, []int{jr.Rank})
		if jr.Rank+1 > newSize {
			newSize = jr.Rank + 1
		}
	}
	w.generation++
	base := w.generation << 32
	if base <= w.comm.CollSeq() {
		return fmt.Errorf("collective sequence space exhausted (seq %d)", w.comm.CollSeq())
	}
	w.comm.SetCollSeq(base)
	if err := w.comm.Grow(newSize, group); err != nil {
		return err
	}
	root := group[0]
	if w.comm.Rank() == root {
		for _, jr := range joins {
			w.comm.Isend(jr.Rank, admitTag(jr.Rank), encodeAdmit(admitMsg{
				size: newSize, generation: w.generation, epoch: epoch,
				short: w.shortData, group: group,
			}))
		}
	}
	// First collective over the grown group; the joiners' Grow + Barrier
	// rendezvous with it.
	w.comm.Barrier()
	for _, p := range w.params {
		mpi.Bcast(w.comm, p.W, root)
	}
	if w.ctrl != nil {
		// The joiner adopts the running controller trajectory the same way
		// it adopts the weights: the group root's Q wins, bit for bit, and
		// every member's threshold moves with the grown world.
		qbuf := []float64{w.ctrl.Q()}
		mpi.Bcast(w.comm, qbuf, root)
		w.ctrl.Adopt(qbuf[0])
		w.ctrl.SetWorld(w.comm.GroupSize())
		if err := w.exchanger.SetQ(qbuf[0]); err != nil {
			return err
		}
		w.ctrlQ = qbuf[0]
		if w.cm != nil {
			w.cm.Q.Set(w.ctrlQ)
		}
	}
	// Re-created optimizer state (zeroed moments) is the one state every
	// member and joiner can agree on without shipping buffers — the same
	// convention the failure-recovery path uses.
	w.opt = newOptimizer(w.cfg)
	if w.cfg.OverlapGrads {
		w.setupOverlap()
	}
	if w.exchanger != nil {
		w.exchanger.InvalidateDedup()
	}
	// Corgi2 shard assignments depend on the world size: force a recompute
	// at the next epoch so every member (and the joiner) re-derives them.
	w.assignedGroup = -1
	if w.tm != nil {
		w.tm.WorldSize.SetInt(int64(w.comm.GroupSize()))
		w.tm.Generation.SetInt(int64(w.generation))
	}
	if w.local != nil {
		if _, err := shuffle.Rebalance(w.comm, w.local, w.cfg.Seed, epoch); err != nil {
			return err
		}
	}
	return nil
}

// JoinRank enters an already-running elastic world as a fresh rank: it
// blocks until the group root admits this rank at an epoch boundary, adopts
// the broadcast world shape, receives the current weights, takes its share
// of the stored samples through the rebalance, and trains the remaining
// epochs as a full member. cfg must be the configuration the running world
// was launched with; Workers (if non-zero) must equal this communicator's
// world size, which is the post-join rank name space.
func JoinRank(c *mpi.Comm, cfg Config) (*RankResult, error) {
	if cfg.Workers == 0 {
		cfg.Workers = c.Size()
	}
	if cfg.Workers != c.Size() {
		return nil, fmt.Errorf("train: cfg.Workers = %d but world size is %d", cfg.Workers, c.Size())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg, sched, _, pfs, err := prepareRank(cfg)
	if err != nil {
		return nil, err
	}
	adm, err := waitAdmission(c)
	if err != nil {
		return nil, err
	}
	c.SetCollSeq(adm.generation << 32)
	if err := c.Grow(adm.size, adm.group); err != nil {
		return nil, err
	}
	w, err := newWorker(c, cfg, sched, nil, pfs, nil)
	if err != nil {
		return nil, err
	}
	if w.tier != nil {
		defer w.tier.Close()
	}
	w.generation = adm.generation
	w.startEpoch = adm.epoch
	w.joinedEpoch = adm.epoch
	w.shortData = adm.short
	if w.tm != nil {
		w.tm.WorldSize.SetInt(int64(c.GroupSize()))
		w.tm.Generation.SetInt(int64(w.generation))
	}
	// Rendezvous with the members' post-grow Barrier, then adopt the
	// current replica state and take this rank's share of the samples.
	c.Barrier()
	root := adm.group[0]
	for _, p := range w.params {
		mpi.Bcast(c, p.W, root)
	}
	if w.ctrl != nil {
		// Counterpart of the members' trajectory broadcast in applyJoins:
		// the joiner's freshly built controller adopts the running Q.
		qbuf := []float64{w.ctrl.Q()}
		mpi.Bcast(c, qbuf, root)
		w.ctrl.Adopt(qbuf[0])
		w.ctrl.SetWorld(c.GroupSize())
		if err := w.exchanger.SetQ(qbuf[0]); err != nil {
			return nil, err
		}
		w.ctrlQ = qbuf[0]
		if w.cm != nil {
			w.cm.Q.Set(w.ctrlQ)
		}
	}
	if w.local != nil {
		if _, err := shuffle.Rebalance(c, w.local, cfg.Seed, adm.epoch); err != nil {
			return nil, err
		}
	}
	return w.run()
}

// waitAdmission blocks until the admission message for this rank arrives.
// Peer failures recorded while waiting (a member of the world this rank is
// joining may die, or the whole run may finish and tear down) do not match
// the receive; they accumulate until either the admission arrives or every
// other rank is known dead — the joiner's only way to learn the world is
// gone.
func waitAdmission(c *mpi.Comm) (admitMsg, error) {
	known := make(map[int]bool)
	for {
		req := c.Irecv(mpi.AnySource, admitTag(c.Rank()))
		payload, _, err := c.WaitPeerAware(req, func(r int) bool { return known[r] })
		if err == nil {
			b, ok := payload.([]byte)
			if !ok {
				return admitMsg{}, fmt.Errorf("train: JoinRank: admission payload is %T, want []byte", payload)
			}
			return decodeAdmit(b)
		}
		pe, isPeer := mpi.PeerErrorFrom(err)
		if !isPeer {
			return admitMsg{}, err
		}
		known[pe.Rank] = true
		if len(known) >= c.Size()-1 {
			return admitMsg{}, fmt.Errorf("train: JoinRank: every peer failed before admission (world gone or run complete): %w", err)
		}
	}
}
