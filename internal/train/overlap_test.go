package train

import (
	"math"
	"runtime"
	"testing"
	"time"

	"plshuffle/internal/mpi"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/transport/transporttest"
)

// flatWeights concatenates a param set's weights.
func flatWeights(params []nn.Param) []float32 {
	var out []float32
	for _, p := range params {
		out = append(out, p.W...)
	}
	return out
}

// requireBitwiseEqual fails unless a and b are bit-for-bit identical.
func requireBitwiseEqual(t *testing.T, label string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: weight vector lengths differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s: weight %d differs: %v (%x) vs %v (%x)",
				label, i, a[i], math.Float32bits(a[i]), b[i], math.Float32bits(b[i]))
		}
	}
}

// TestOverlapBitwiseEquivalence is the PR's headline acceptance check on
// the in-process runtime: a 4-rank run with the overlapped bucketed
// gradient sync must produce bit-for-bit the same weights, losses, and
// accuracies as the serial flat all-reduce, across optimizers and bucket
// sizes (including caps tiny enough to force one bucket per layer).
func TestOverlapBitwiseEquivalence(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cases := []struct {
		name        string
		lars        bool
		bucketBytes int
	}{
		{"sgd-default-buckets", false, 0},
		{"sgd-tiny-buckets", false, 512},
		{"lars-tiny-buckets", true, 512},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
			cfg.Epochs = 3
			cfg.UseLARS = tc.lars

			flat := cfg
			flat.OverlapGrads = false
			fres, err := Run(flat)
			if err != nil {
				t.Fatal(err)
			}

			over := cfg
			over.OverlapGrads = true
			over.GradBucketBytes = tc.bucketBytes
			ores, err := Run(over)
			if err != nil {
				t.Fatal(err)
			}

			requireBitwiseEqual(t, "final weights", flatWeights(fres.FinalParams), flatWeights(ores.FinalParams))
			for e := range fres.Epochs {
				fe, oe := fres.Epochs[e], ores.Epochs[e]
				if fe.TrainLoss != oe.TrainLoss || fe.ValAcc != oe.ValAcc {
					t.Fatalf("epoch %d: flat loss/acc %v/%v, overlapped %v/%v",
						e, fe.TrainLoss, fe.ValAcc, oe.TrainLoss, oe.ValAcc)
				}
			}
		})
	}
}

// TestOverlapBitwiseEquivalenceOverTCP repeats the determinism check with
// every frame crossing real localhost TCP sockets — codec, framing, and
// the per-peer writer queues included. Two worlds run per mode (flat,
// overlapped); rank 0's final weights must match bit for bit.
func TestOverlapBitwiseEquivalenceOverTCP(t *testing.T) {
	ds := testDataset(t, 192, 4)
	run := func(overlap bool) []float32 {
		t.Helper()
		var w []float32
		err := transporttest.TCP().Run(4, func(c *mpi.Comm) error {
			cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
			cfg.Epochs = 3
			cfg.OverlapGrads = overlap
			cfg.GradBucketBytes = 512
			rr, err := RunRank(c, cfg)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				w = flatWeights(rr.FinalParams)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	requireBitwiseEqual(t, "tcp final weights", run(false), run(true))
}

// TestOverlapStats checks the new accounting: the overlapped path must
// report in-flight communication time for every epoch, zero gradient wire
// bytes on inproc, and real wire bytes on TCP (where flat and overlapped
// runs must also agree on the total, since they move identical frames).
func TestOverlapStats(t *testing.T) {
	ds := testDataset(t, 192, 4)
	mkcfg := func(overlap bool) Config {
		cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
		cfg.Epochs = 2
		cfg.OverlapGrads = overlap
		return cfg
	}

	t.Run("inproc", func(t *testing.T) {
		res, err := Run(mkcfg(true))
		if err != nil {
			t.Fatal(err)
		}
		for e, es := range res.Epochs {
			if es.GradWireBytes != 0 {
				t.Errorf("epoch %d: inproc GradWireBytes = %d, want 0", e, es.GradWireBytes)
			}
			if es.GEWUCommTime <= 0 {
				t.Errorf("epoch %d: GEWUCommTime = %v, want > 0", e, es.GEWUCommTime)
			}
			if es.GEWUWaitTime < 0 {
				t.Errorf("epoch %d: GEWUWaitTime = %v, want >= 0", e, es.GEWUWaitTime)
			}
		}
	})

	t.Run("tcp", func(t *testing.T) {
		gradBytes := func(overlap bool) []int64 {
			t.Helper()
			var out []int64
			err := transporttest.TCP().Run(4, func(c *mpi.Comm) error {
				rr, err := RunRank(c, mkcfg(overlap))
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					for _, es := range rr.Epochs {
						out = append(out, es.GradWireBytes)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		fb, ob := gradBytes(false), gradBytes(true)
		if len(fb) != len(ob) {
			t.Fatalf("epoch counts differ: %d vs %d", len(fb), len(ob))
		}
		for e := range fb {
			if fb[e] <= 0 || ob[e] <= 0 {
				t.Errorf("epoch %d: GradWireBytes flat=%d overlapped=%d, want both > 0", e, fb[e], ob[e])
			}
			if fb[e] != ob[e] {
				t.Errorf("epoch %d: flat moved %d gradient wire bytes, overlapped %d — identical frames expected",
					e, fb[e], ob[e])
			}
		}
	})
}

// TestOverlapNoGoroutineLeak runs a full overlapped training and checks the
// goroutine count returns to its baseline: every per-bucket collective
// goroutine must exit once its epoch's drain completes.
func TestOverlapNoGoroutineLeak(t *testing.T) {
	ds := testDataset(t, 192, 4)
	base := runtime.NumGoroutine()
	cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
	cfg.Epochs = 3
	cfg.OverlapGrads = true
	cfg.GradBucketBytes = 512 // several buckets per iteration
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOverlapValidate pins config validation for the new knobs.
func TestOverlapValidate(t *testing.T) {
	ds := testDataset(t, 192, 4)
	cfg := baseConfig(t, ds, 2, shuffle.GlobalShuffling())
	cfg.OverlapGrads = true
	cfg.GradBucketBytes = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative GradBucketBytes accepted")
	}
	cfg.GradBucketBytes = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero GradBucketBytes rejected: %v", err)
	}
}
