package train

import (
	"testing"
	"time"

	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
)

// benchGradSync measures the gradient-synchronization cost of a 4-rank,
// one-epoch training on a model large enough for backward compute to be a
// real overlap window. Besides the standard ns/op it reports:
//
//	wait-ns/op — rank 0's EXPOSED gradient-sync time (blocked in the GEWU
//	             drain) per epoch: the number the overlapped path exists
//	             to shrink (the ISSUE's ≥30% acceptance metric).
//	comm-ns/op — rank 0's total in-flight all-reduce wall-clock per epoch,
//	             for the hidden-fraction 1 − wait/comm.
func benchGradSync(b *testing.B, overlap bool) {
	ds := testDataset(b, 512, 4)
	cfg := baseConfig(b, ds, 4, shuffle.Partial(0.3))
	cfg.Model = nn.ModelSpec{Name: "bench-sync", Hidden: []int{256, 128}, BatchNorm: true}.
		WithData(ds.FeatureDim, ds.Classes)
	cfg.Epochs = 1
	cfg.BatchSize = 64
	cfg.OverlapGrads = overlap
	b.ResetTimer()
	var wait, comm time.Duration
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, es := range res.Epochs {
			wait += es.GEWUWaitTime
			comm += es.GEWUCommTime
		}
	}
	b.ReportMetric(float64(wait.Nanoseconds())/float64(b.N), "wait-ns/op")
	b.ReportMetric(float64(comm.Nanoseconds())/float64(b.N), "comm-ns/op")
}

func BenchmarkGradSyncFlat(b *testing.B)    { benchGradSync(b, false) }
func BenchmarkGradSyncOverlap(b *testing.B) { benchGradSync(b, true) }

// BenchmarkTrainIterOverlap is the end-to-end A/B partner of
// BenchmarkTrainEpochPLS: the identical 4-rank PLS epoch with the bucketed
// overlapped gradient sync enabled. It reports the same wait-ns/op /
// comm-ns/op metrics as the GradSync pair so the exposed-wait comparison
// against the GradSyncFlat baseline lives in BENCH_HOTPATH.json.
func BenchmarkTrainIterOverlap(b *testing.B) {
	ds := testDataset(b, 512, 4)
	cfg := baseConfig(b, ds, 4, shuffle.Partial(0.3))
	cfg.Epochs = 1
	cfg.OverlapGrads = true
	b.ResetTimer()
	var wait, comm time.Duration
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, es := range res.Epochs {
			wait += es.GEWUWaitTime
			comm += es.GEWUCommTime
		}
	}
	b.ReportMetric(float64(wait.Nanoseconds())/float64(b.N), "wait-ns/op")
	b.ReportMetric(float64(comm.Nanoseconds())/float64(b.N), "comm-ns/op")
}
