//go:build !race

package train

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
