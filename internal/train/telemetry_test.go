package train

// Telemetry conformance (DESIGN.md §11): the observability plane must be a
// faithful witness, not an estimate. These tests scrape /metrics over real
// HTTP during and after live multi-rank runs and diff the scraped counters
// BITWISE against the run's own internal accounting — the scheduler's wire
// traffic, EpochStats.GradWireBytes, and the TCP transport's byte counters
// — plus the concurrency and zero-allocation guarantees the hot paths make.

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/telemetry"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/faultinject"
	"plshuffle/internal/transport/tcp"
	"plshuffle/internal/transport/transporttest"
)

// parseMetrics reads a Prometheus text exposition into a map keyed by the
// full series line prefix, e.g. `pls_train_epoch{rank="0"}`.
func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func scrapeURL(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// runTelemetryWorld trains n ranks (one goroutine each) over the backend
// with a shared registry, returning per-rank results and the still-open
// comms; the caller owns cleanup. The world barriers before returning, so
// every counter is quiescent when the final scrape happens.
func runTelemetryWorld(t *testing.T, b transporttest.Backend, n int, cfg Config) ([]*RankResult, []*mpi.Comm, func()) {
	t.Helper()
	comms, cleanup, err := b.Open(n)
	if err != nil {
		t.Fatal(err)
	}
	rrs := make([]*RankResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = mpi.Execute(comms[rank], func(c *mpi.Comm) error {
				rr, err := RunRank(c, cfg)
				rrs[rank] = rr
				if err != nil {
					return err
				}
				c.Barrier()
				return nil
			})
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		cleanup()
		t.Fatal("telemetry world deadlocked")
	}
	for r, err := range errs {
		if err != nil {
			cleanup()
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return rrs, comms, cleanup
}

// TestTelemetryConformanceTCP is the acceptance gate: a live 4-rank world
// over real TCP sockets, scraped over real HTTP mid-run and after
// completion. The post-run scrape must match the run's internal accounting
// exactly — same int64s, no estimates:
//
//	pls_exchange_wire_bytes_total (sent+recv)  == Σ EpochStats.ExchangeWireBytes
//	pls_train_grad_wire_bytes_total            == Σ EpochStats.GradWireBytes
//	pls_transport_bytes_total                  == transport.Stats() at scrape time
//	Σ_kind pls_transport_frames_by_kind_total  == pls_transport_frames_total
func TestTelemetryConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP conformance in -short mode")
	}
	const (
		n      = 4
		epochs = 3
		q      = 0.3
	)
	ds := testDataset(t, 512, 4)
	cfg := baseConfig(t, ds, n, shuffle.Partial(q))
	cfg.Epochs = epochs
	cfg.OverlapGrads = true

	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	srv, err := telemetry.NewServer(telemetry.ServerConfig{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Mid-run scrapes: poll until the trainer's series appear, proving the
	// plane is live while training is in flight (not a post-hoc dump).
	sawLive := make(chan bool, 1)
	go func() {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(srv.URL() + "/metrics")
			if err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if strings.Contains(string(body), "pls_train_epoch{") {
					sawLive <- true
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		sawLive <- false
	}()

	rrs, comms, cleanup := runTelemetryWorld(t, transporttest.TCP(), n, cfg)
	defer cleanup()
	if !<-sawLive {
		t.Error("never scraped a live pls_train_epoch series during the run")
	}

	m := parseMetrics(t, scrapeURL(t, srv.URL()+"/metrics"))
	for r := 0; r < n; r++ {
		rl := fmt.Sprintf(`rank="%d"`, r)

		// Exchange wire volume: scraped sent+recv vs the per-epoch sums the
		// run reported (both fed by the identical scheduler counters).
		var wantExchange int64
		var wantGrad int64
		for _, e := range rrs[r].Epochs {
			wantExchange += e.ExchangeWireBytes
			wantGrad += e.GradWireBytes
		}
		gotExchange := int64(m[`pls_exchange_wire_bytes_total{direction="sent",`+rl+`}`]) +
			int64(m[`pls_exchange_wire_bytes_total{direction="recv",`+rl+`}`])
		if gotExchange != wantExchange {
			t.Errorf("rank %d: scraped exchange wire bytes %d != accounted %d", r, gotExchange, wantExchange)
		}
		if got := int64(m[`pls_train_grad_wire_bytes_total{`+rl+`}`]); got != wantGrad {
			t.Errorf("rank %d: scraped grad wire bytes %d != accounted %d", r, got, wantGrad)
		}
		if wantExchange == 0 || wantGrad == 0 {
			t.Errorf("rank %d: zero wire traffic (exchange %d, grad %d); conformance check vacuous", r, wantExchange, wantGrad)
		}

		// Transport byte counters: scraped == Stats() right now (the world
		// barriered and heartbeats are off, so the counters are quiescent).
		st := comms[r].Transport().Stats()
		if got := int64(m[`pls_transport_bytes_total{direction="sent",`+rl+`}`]); got != st.BytesSent {
			t.Errorf("rank %d: scraped transport sent %d != Stats %d", r, got, st.BytesSent)
		}
		if got := int64(m[`pls_transport_bytes_total{direction="recv",`+rl+`}`]); got != st.BytesRecv {
			t.Errorf("rank %d: scraped transport recv %d != Stats %d", r, got, st.BytesRecv)
		}

		// Frames by kind vs the frame totals. The two families count at
		// different layers by design: frames_total is the app-frame view
		// (every frame the write loop ships; only DATA frames delivered to
		// the handler on receive), while frames_by_kind sees every wire
		// frame including the bootstrap hellos that bypass the write loop.
		// The exact relations:
		//
		//	frames_total{sent} == Σ_kind by_kind{sent} − by_kind{hello,sent}
		//	frames_total{recv} == by_kind{data,recv}
		byKind := func(dir, kind string) int64 {
			return int64(m[fmt.Sprintf(`pls_transport_frames_by_kind_total{direction=%q,kind=%q,%s}`, dir, kind, rl)])
		}
		var sentAll int64
		for _, kind := range []string{"data", "hello", "table", "bye", "ping"} {
			sentAll += byKind("sent", kind)
		}
		if got := int64(m[`pls_transport_frames_total{direction="sent",`+rl+`}`]); got != sentAll-byKind("sent", "hello") {
			t.Errorf("rank %d: frames_total{sent} %d != Σ by_kind %d − hello %d", r, got, sentAll, byKind("sent", "hello"))
		}
		if got := int64(m[`pls_transport_frames_total{direction="recv",`+rl+`}`]); got != byKind("recv", "data") {
			t.Errorf("rank %d: frames_total{recv} %d != by_kind{data,recv} %d", r, got, byKind("recv", "data"))
		}
		if byKind("sent", "hello") == 0 && byKind("recv", "hello") == 0 {
			t.Errorf("rank %d: no hello frames in either direction; kind attribution broken", r)
		}

		// Progress gauges at completion.
		if got := m[`pls_train_epoch{`+rl+`}`]; got != epochs-1 {
			t.Errorf("rank %d: final epoch gauge %v, want %d", r, got, epochs-1)
		}
		if got := m[`pls_train_epochs_total{`+rl+`}`]; got != epochs {
			t.Errorf("rank %d: epochs_total %v, want %d", r, got, epochs)
		}
		if got := m[`pls_train_samples_total{`+rl+`}`]; got < float64(epochs*len(ds.Train)/n) {
			t.Errorf("rank %d: samples_total %v, want ≥ %d", r, got, epochs*len(ds.Train)/n)
		}

		// Healthy world: the realized Q is the configured one and the mpi
		// sequence mirrors the scraped counter exactly.
		if got := m[`pls_exchange_effective_q{`+rl+`}`]; got != q {
			t.Errorf("rank %d: effective q %v, want %v (no degradation happened)", r, got, q)
		}
		if got := int64(m[`pls_mpi_collectives_total{`+rl+`}`]); got != int64(comms[r].CollSeq()) || got == 0 {
			t.Errorf("rank %d: scraped collectives %d != CollSeq %d (or zero)", r, got, comms[r].CollSeq())
		}
		if got := m[`pls_mpi_failed_peers{`+rl+`}`]; got != 0 {
			t.Errorf("rank %d: failed peers %v, want 0", r, got)
		}
	}
}

// TestTelemetryWireLeanConformanceTCP extends the conformance gate to the
// wire-lean exchange plane: a live 4-rank TCP world with compression,
// dedup, and fp16exact encoding all on, scraped over real HTTP after the
// run. Every scraped dedup and compression counter must equal the run's
// internal accounting bitwise — the same int64s the scheduler and the TCP
// transport report, no estimates.
func TestTelemetryWireLeanConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank TCP conformance in -short mode")
	}
	const (
		n      = 4
		epochs = 6
		q      = 0.25
	)
	ds := fp16GridDataset(t, 384)
	cfg := baseConfig(t, ds, n, shuffle.Partial(q))
	cfg.Epochs = epochs
	cfg.WireDedup = true
	cfg.SampleEncoding = "fp16exact"

	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	srv, err := telemetry.NewServer(telemetry.ServerConfig{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	backend := transporttest.TCPWrapped("tcp-lean", nil,
		func(rank int, c *tcp.Config) { c.Compress = true })
	rrs, comms, cleanup := runTelemetryWorld(t, backend, n, cfg)
	defer cleanup()

	m := parseMetrics(t, scrapeURL(t, srv.URL()+"/metrics"))
	var worldHits, worldRefFrames, worldZFrames int64
	for r := 0; r < n; r++ {
		rl := fmt.Sprintf(`rank="%d"`, r)

		// Dedup counters: the per-epoch sums the run reported and the scraped
		// cumulative series are fed by the same scheduler atomics.
		var wantHits, wantSaved int64
		for _, e := range rrs[r].Epochs {
			wantHits += int64(e.DedupHits)
			wantSaved += e.DedupBytesSaved
		}
		if got := int64(m[`pls_exchange_dedup_hits{`+rl+`}`]); got != wantHits {
			t.Errorf("rank %d: scraped dedup hits %d != accounted %d", r, got, wantHits)
		}
		if got := int64(m[`pls_exchange_bytes_saved{`+rl+`}`]); got != wantSaved {
			t.Errorf("rank %d: scraped bytes saved %d != accounted %d", r, got, wantSaved)
		}
		if wantHits > 0 && wantSaved <= 0 {
			t.Errorf("rank %d: %d dedup hits saved %d bytes; accounting broken", r, wantHits, wantSaved)
		}
		worldHits += wantHits

		// Compression counters: scraped == CompressionStats() right now (the
		// world barriered, so the counters are quiescent).
		cs, ok := transport.AsCompressionStatser(comms[r].Transport())
		if !ok {
			t.Fatalf("rank %d: tcp transport lost CompressionStatser", r)
		}
		raw, wire := cs.CompressionStats()
		if got := int64(m[`pls_transport_compress_raw_bytes_total{`+rl+`}`]); got != raw {
			t.Errorf("rank %d: scraped compress raw %d != Stats %d", r, got, raw)
		}
		if got := int64(m[`pls_transport_compress_wire_bytes_total{`+rl+`}`]); got != wire {
			t.Errorf("rank %d: scraped compress wire %d != Stats %d", r, got, wire)
		}
		if raw <= wire || wire <= 0 {
			t.Errorf("rank %d: compression never engaged (raw %d, wire %d)", r, raw, wire)
		}
		if got := m[`pls_transport_compression_ratio{`+rl+`}`]; got < 1 {
			t.Errorf("rank %d: compression ratio gauge %v < 1 with raw %d wire %d", r, got, raw, wire)
		}

		// Per-kind byte counters for the new kinds: scraped == FramesByKind
		// bitwise, and the lean kinds actually carried traffic somewhere.
		ks, ok := transport.AsKindStatser(comms[r].Transport())
		if !ok {
			t.Fatalf("rank %d: tcp transport lost KindStatser", r)
		}
		s := ks.FramesByKind()
		for kind, name := range map[uint8]string{
			transport.KindDataZ:   "dataz",
			transport.KindDataRef: "dataref",
		} {
			sentKey := fmt.Sprintf(`pls_transport_frame_bytes_by_kind_total{direction="sent",kind=%q,%s}`, name, rl)
			if got := int64(m[sentKey]); got != s.SentBytes[kind] {
				t.Errorf("rank %d: scraped %s %d != counter %d", r, sentKey, got, s.SentBytes[kind])
			}
		}
		worldZFrames += s.Sent[transport.KindDataZ]
		worldRefFrames += s.Sent[transport.KindDataRef]
	}
	if worldHits == 0 {
		t.Error("no rank scored a dedup hit; the conformance check never saw the dedup plane live")
	}
	if worldZFrames == 0 {
		t.Error("no compressed frame crossed the world; the conformance check never saw KindDataZ live")
	}
	if worldRefFrames == 0 {
		t.Error("no reference frame crossed the world; the conformance check never saw KindDataRef live")
	}
}

// TestTelemetryScrapeUnderChaos is the concurrency guard (run under -race
// in CI): several goroutines hammer /metrics and /healthz over HTTP while a
// 4-rank inproc world trains under scripted faults and loses a rank
// mid-run. Afterward /healthz must report the dead peer with a 503 and the
// scraped effective Q must have dropped below the configured one.
func TestTelemetryScrapeUnderChaos(t *testing.T) {
	const (
		workers   = 4
		victim    = 2
		q         = 0.5
		epochs    = 3
		killEpoch = 1
	)
	baseGoroutines := runtime.NumGoroutine()
	ds := testDataset(t, 512, 4)
	cfg := baseConfig(t, ds, workers, shuffle.Partial(q))
	cfg.Epochs = epochs
	cfg.OnPeerFail = "degrade"

	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg

	scripts := chaosScripts(workers, victim, killEpoch, false)
	conns := make([]*faultinject.Conn, workers)
	b := transporttest.InprocWrapped("chaos-telemetry", chaosWrap(scripts, conns))

	comms, cleanup, err := b.Open(workers)
	if err != nil {
		t.Fatal(err)
	}
	// Health reflects survivor rank 0's failure registry, exactly as
	// distrun wires it.
	srv, err := telemetry.NewServer(telemetry.ServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Health: func() telemetry.Health {
			fp := comms[0].FailedPeers()
			return telemetry.Health{OK: len(fp) == 0, Rank: 0, FailedPeers: fp}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Scrape hammer: 4 goroutines polling both endpoints for the whole run.
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	var scrapes atomic64
	for i := 0; i < 4; i++ {
		hammer.Add(1)
		go func() {
			defer hammer.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/healthz"} {
					resp, err := client.Get(srv.URL() + path)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						scrapes.add(1)
					}
				}
			}
		}()
	}

	rrs := make([]*RankResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = mpi.Execute(comms[rank], func(c *mpi.Comm) error {
				rr, err := RunRank(c, cfg)
				rrs[rank] = rr
				return err
			})
		}(r)
	}
	wg.Wait()

	// The victim must have failed; the survivors must have finished.
	if errs[victim] == nil {
		t.Fatal("victim survived the scripted crash")
	}
	for r := 0; r < workers; r++ {
		if r != victim && errs[r] != nil {
			t.Fatalf("survivor rank %d failed: %v", r, errs[r])
		}
	}

	// Post-kill plane state: 503 with the victim named, and a degraded Q.
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz after the kill = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), fmt.Sprintf("[%d]", victim)) {
		t.Errorf("/healthz does not name the dead rank %d: %s", victim, body)
	}
	m := parseMetrics(t, scrapeURL(t, srv.URL()+"/metrics"))
	for _, r := range []int{0, 1, 3} {
		rl := fmt.Sprintf(`rank="%d"`, r)
		if got := m[`pls_exchange_effective_q{`+rl+`}`]; got <= 0 || got >= q {
			t.Errorf("survivor %d: effective q %v, want in (0, %v) after losing a rank", r, got, q)
		}
		if got := m[`pls_mpi_failed_peers{`+rl+`}`]; got != 1 {
			t.Errorf("survivor %d: failed peers gauge %v, want 1", r, got)
		}
	}

	close(stop)
	hammer.Wait()
	if scrapes.load() == 0 {
		t.Error("scrape hammer never completed a request; concurrency guard vacuous")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	cleanup()
	waitGoroutines(t, baseGoroutines)
}

// TestTelemetryBitwiseNeutral pins the observer-effect contract over the
// full 2×2 matrix {flat, overlap} × {telemetry off, on}: three epochs of
// PLS training must produce bitwise identical weights in all four cells —
// attaching the observability plane changes nothing about the computation.
func TestTelemetryBitwiseNeutral(t *testing.T) {
	ds := testDataset(t, 256, 4)
	weightsOf := func(overlap, instrumented bool) []float32 {
		cfg := baseConfig(t, ds, 4, shuffle.Partial(0.5))
		cfg.Epochs = 3
		cfg.OverlapGrads = overlap
		if instrumented {
			cfg.Telemetry = telemetry.NewRegistry() // fresh per run: rank series re-register
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []float32
		for _, p := range res.FinalParams {
			out = append(out, p.W...)
		}
		return out
	}
	ref := weightsOf(false, false)
	for _, tc := range []struct {
		name                  string
		overlap, instrumented bool
	}{
		{"flat+telemetry", false, true},
		{"overlap", true, false},
		{"overlap+telemetry", true, true},
	} {
		got := weightsOf(tc.overlap, tc.instrumented)
		if len(got) != len(ref) {
			t.Fatalf("%s: weight count %d != %d", tc.name, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s: weight[%d] = %v != baseline %v — telemetry/overlap must be bitwise neutral",
					tc.name, i, got[i], ref[i])
			}
		}
	}
}

// TestTelemetryIterationOpsZeroAlloc pins the PR 2 invariant for the exact
// set of operations one instrumented training iteration adds: gauge stores
// and counter adds on registered series — including while a concurrent
// scraper is reading them — must allocate nothing.
func TestTelemetryIterationOpsZeroAlloc(t *testing.T) {
	skipIfRace(t)
	reg := telemetry.NewRegistry()
	tm := &telemetry.TrainMetrics{}
	tm.Register(reg, 0)

	// Concurrent scraper: sampling must not force the hot path to allocate.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.WritePrometheus(io.Discard)
			}
		}
	}()

	iteration := func() {
		// The per-iteration instrumentation of runEpoch, verbatim.
		tm.Iteration.SetInt(7)
		tm.IONs.Add(1000)
		tm.Samples.Add(16)
		tm.ExchangeNs.Add(1000)
		tm.FWBWNs.Add(1000)
		tm.GEWUNs.Add(1000)
		tm.GEWUWaitNs.Add(500)
		tm.GEWUCommNs.Add(800)
		tm.GradWireBytes.Add(4096)
	}
	iteration() // warm up
	if allocs := testing.AllocsPerRun(1000, iteration); allocs > 0 {
		t.Errorf("instrumented iteration ops allocate %.1f times per run, want 0", allocs)
	}
	close(stop)
	wg.Wait()
}

// skipIfRace skips allocation-regression tests under the race detector
// (see raceEnabled).
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

// atomic64 is a tiny counter for test bookkeeping.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

var _ = transport.NumKinds // document the kind-partition dependency above
