package train

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"plshuffle/internal/checkpoint"
	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/transporttest"
)

// TestElasticJoinInproc grows a running 4-rank world by a 5th rank mid-run.
// The inproc mesh is opened at the full capacity of 5; the four members
// narrow their collective group to [0..3] before training (exactly the view
// a bootstrap at -world 4 -max-world 5 produces), and the joiner parks in
// JoinRank until rank 0 notes its join request during epoch 0. The members
// admit it at the epoch-1 boundary; from there the joiner is a full member:
// same weights every step, a fair share of the samples, full exchange Q.
func TestElasticJoinInproc(t *testing.T) {
	const (
		members  = 4
		capacity = 5
		epochs   = 4
		samples  = 512
	)
	base := runtime.NumGoroutine()
	ds := testDataset(t, samples, 4)

	b := transporttest.Inproc()
	comms, cleanup, err := b.Open(capacity)
	if err != nil {
		t.Fatal(err)
	}

	rrs := make([]*RankResult, capacity)
	errs := make([]error, capacity)
	var joinOnce sync.Once
	var wg sync.WaitGroup
	for r := 0; r < capacity; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = mpi.Execute(comms[rank], func(c *mpi.Comm) error {
				if rank < members {
					if err := c.Grow(members, []int{0, 1, 2, 3}); err != nil {
						return err
					}
					cfg := baseConfig(t, ds, members, shuffle.Partial(0.3))
					cfg.Epochs = epochs
					cfg.Elastic = true
					if rank == 0 {
						// Surface the join request mid-epoch-0, as the TCP
						// bootstrap's rendezvous callback would; the members
						// admit the joiner at the next epoch boundary.
						cfg.testIterHook = func(epoch, iter int) error {
							if epoch == 0 && iter == 2 {
								joinOnce.Do(func() {
									c.NoteJoinRequest(transport.JoinRequest{Rank: members})
								})
							}
							return nil
						}
					}
					rr, err := RunRank(c, cfg)
					rrs[rank] = rr
					return err
				}
				cfg := baseConfig(t, ds, capacity, shuffle.Partial(0.3))
				cfg.Epochs = epochs
				cfg.Elastic = true
				rr, err := JoinRank(c, cfg)
				rrs[rank] = rr
				return err
			})
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		cleanup()
		for r, err := range errs {
			t.Logf("rank %d error at timeout: %v", r, err)
		}
		t.Fatal("elastic world deadlocked")
	}
	cleanup()

	for r := 0; r < capacity; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d failed: %v", r, errs[r])
		}
		if rrs[r] == nil {
			t.Fatalf("rank %d returned no result", r)
		}
	}
	// Members trained every epoch; the joiner entered at the epoch-1
	// boundary and trained the rest.
	for r := 0; r < members; r++ {
		if len(rrs[r].Epochs) != epochs {
			t.Errorf("member %d recorded %d epochs, want %d", r, len(rrs[r].Epochs), epochs)
		}
	}
	if len(rrs[members].Epochs) != epochs-1 {
		t.Errorf("joiner recorded %d epochs, want %d (joined before epoch 1)",
			len(rrs[members].Epochs), epochs-1)
	}
	// Replica consistency: every member — the joiner included — ends with
	// bit-identical weights.
	ref := flatWeights(rrs[0].FinalParams)
	for r := 1; r < capacity; r++ {
		requireBitwiseEqual(t, "post-join weights", ref, flatWeights(rrs[r].FinalParams))
	}
	// Sample conservation and balance: the five stores are a disjoint
	// partition of the dataset, with shares differing by at most one — the
	// admission rebalance gave the joiner a full share.
	var all []int
	minShare, maxShare := samples, 0
	for r := 0; r < capacity; r++ {
		n := len(rrs[r].FinalLocalIDs)
		if n < minShare {
			minShare = n
		}
		if n > maxShare {
			maxShare = n
		}
		all = append(all, rrs[r].FinalLocalIDs...)
	}
	sort.Ints(all)
	if len(all) != samples {
		t.Fatalf("stores hold %d samples in total, want %d", len(all), samples)
	}
	for i, id := range all {
		if id != i {
			t.Fatalf("stores are not a disjoint cover: position %d holds id %d", i, id)
		}
	}
	if maxShare-minShare > 1 {
		t.Errorf("stores unbalanced after join: shares range %d..%d", minShare, maxShare)
	}
	waitGoroutines(t, base)
}

// TestElasticJoinWithCheckpoint drives the full elastic lifecycle the CI
// gate scripts end-to-end: a checkpointing world is grown mid-run and the
// post-join snapshot records the full five-rank world, resumable at size 5.
func TestElasticJoinWithCheckpoint(t *testing.T) {
	const (
		members  = 4
		capacity = 5
		epochs   = 4
		samples  = 512
	)
	ds := testDataset(t, samples, 4)
	ckptDir := t.TempDir()

	b := transporttest.Inproc()
	comms, cleanup, err := b.Open(capacity)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, capacity)
	var joinOnce sync.Once
	var wg sync.WaitGroup
	for r := 0; r < capacity; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = mpi.Execute(comms[rank], func(c *mpi.Comm) error {
				workers := members
				if rank >= members {
					workers = capacity
				}
				cfg := baseConfig(t, ds, workers, shuffle.Partial(0.3))
				cfg.Epochs = epochs
				cfg.Elastic = true
				cfg.CheckpointDir = ckptDir
				if rank >= members {
					_, err := JoinRank(c, cfg)
					return err
				}
				if err := c.Grow(members, []int{0, 1, 2, 3}); err != nil {
					return err
				}
				if rank == 0 {
					cfg.testIterHook = func(epoch, iter int) error {
						if epoch == 0 && iter == 2 {
							joinOnce.Do(func() {
								c.NoteJoinRequest(transport.JoinRequest{Rank: members})
							})
						}
						return nil
					}
				}
				_, err := RunRank(c, cfg)
				return err
			})
		}(r)
	}
	wg.Wait()
	cleanup()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed: %v", r, err)
		}
	}

	// The final snapshot was committed by the grown world: five rank files,
	// world size 5, and it resumes with five ranks.
	_, meta, err := checkpoint.LoadLatest(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.WorldSize != capacity || len(meta.Ranks) != capacity || meta.Group != nil {
		t.Fatalf("post-join snapshot shape: %+v, want a full %d-rank world", meta, capacity)
	}
	if meta.NextEpoch != epochs {
		t.Fatalf("latest snapshot is for epoch %d, want %d", meta.NextEpoch, epochs)
	}
	resumed := baseConfig(t, ds, capacity, shuffle.Partial(0.3))
	resumed.Epochs = epochs + 2
	resumed.CheckpointDir = ckptDir
	resumed.Resume = true
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("resume of the grown world trained %d epochs, want 2", len(res.Epochs))
	}
}
