package train

import (
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/trace"
)

// gapDataset builds the class-local stress setting used by the mechanism
// tests (small shards, full class locality).
func gapDataset(t testing.TB) *data.Dataset {
	t.Helper()
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "mech", NumSamples: 1024, NumVal: 512, Classes: 16,
		FeatureDim: 16, ClassSep: 4, NoiseStd: 1.2, Bytes: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func gapWith(t *testing.T, ds *data.Dataset, model nn.ModelSpec, mutate func(*Config)) float64 {
	t.Helper()
	run := func(s shuffle.Strategy) float64 {
		cfg := Config{
			Workers: 16, Strategy: s, Dataset: ds, Model: model,
			Epochs: 12, BatchSize: 8, BaseLR: 0.1, Momentum: 0.9,
			WeightDecay: 1e-4, Seed: 5, PartitionLocality: 1.0,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalValAcc
	}
	return run(shuffle.GlobalShuffling()) - run(shuffle.LocalShuffling())
}

// TestFullSyncBatchNormClosesGap isolates the Section IV-A.1 mechanism:
// computing batch statistics over the global mini-batch (SyncBatchNorm)
// removes the per-shard statistics entirely and should close most of the
// LS accuracy penalty — demonstrating that the damage comes from the
// train-time batch statistics.
func TestFullSyncBatchNormClosesGap(t *testing.T) {
	ds := gapDataset(t)
	model := nn.ModelSpec{Name: "m", Hidden: []int{32}, BatchNorm: true}.
		WithData(ds.FeatureDim, ds.Classes)
	plain := gapWith(t, ds, model, nil)
	synced := gapWith(t, ds, model, func(c *Config) { c.FullSyncBatchNorm = true })
	t.Logf("LS gap: plain BN %.4f, full-sync BN %.4f", plain, synced)
	if plain < 0.04 {
		t.Fatalf("stress setting produced no baseline gap (%.4f); mechanism test void", plain)
	}
	if synced > plain*0.4 {
		t.Fatalf("SyncBatchNorm should close most of the gap: %.4f -> %.4f", plain, synced)
	}
}

// TestEpochStatsSyncIsWeaker documents the second half of the finding:
// synchronizing only the *running* statistics at epoch boundaries barely
// helps, because evaluation-time statistics are not the dominant term.
func TestEpochStatsSyncIsWeaker(t *testing.T) {
	ds := gapDataset(t)
	model := nn.ModelSpec{Name: "m", Hidden: []int{32}, BatchNorm: true}.
		WithData(ds.FeatureDim, ds.Classes)
	plain := gapWith(t, ds, model, nil)
	statsSynced := gapWith(t, ds, model, func(c *Config) { c.SyncBatchNormStats = true })
	t.Logf("LS gap: plain %.4f, epoch-stats-synced %.4f", plain, statsSynced)
	if statsSynced > plain+0.05 {
		t.Fatalf("epoch-level stats sync made things substantially worse: %.4f -> %.4f", plain, statsSynced)
	}
}

// TestGroupNormAvoidsGap checks the paper's suggested alternative: with
// per-sample group normalization there are no batch statistics to bias,
// so the LS gap shrinks versus batch norm.
func TestGroupNormAvoidsGap(t *testing.T) {
	ds := gapDataset(t)
	bnModel := nn.ModelSpec{Name: "m", Hidden: []int{32}, BatchNorm: true}.
		WithData(ds.FeatureDim, ds.Classes)
	gnModel := bnModel.WithNorm(nn.NormGroup)
	bnGap := gapWith(t, ds, bnModel, nil)
	gnGap := gapWith(t, ds, gnModel, nil)
	t.Logf("LS gap: batch norm %.4f, group norm %.4f", bnGap, gnGap)
	if bnGap < 0.04 {
		t.Fatalf("no baseline batch-norm gap (%.4f)", bnGap)
	}
	if gnGap > bnGap*0.8 {
		t.Fatalf("group norm should shrink the gap: BN %.4f vs GN %.4f", bnGap, gnGap)
	}
}

func TestHierarchicalExchangeTraining(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 8, shuffle.Partial(0.3))
	cfg.ExchangeGroupSize = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValAcc < 0.9 {
		t.Fatalf("hierarchical exchange accuracy %v", res.FinalValAcc)
	}
	if res.Epochs[0].ExchangeBytes == 0 {
		t.Fatal("hierarchical exchange moved no bytes")
	}
	// Invalid group size must surface.
	bad := cfg
	bad.ExchangeGroupSize = 3
	if _, err := Run(bad); err == nil {
		t.Fatal("group size 3 accepted for 8 workers")
	}
}

func TestImportanceSamplingTrains(t *testing.T) {
	ds := testDataset(t, 512, 4)
	cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
	cfg.ImportanceSampling = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValAcc < 0.9 {
		t.Fatalf("importance-sampling run accuracy %v", res.FinalValAcc)
	}
	// Deterministic like everything else.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Epochs {
		if res.Epochs[i].TrainLoss != res2.Epochs[i].TrainLoss {
			t.Fatal("importance sampling broke determinism")
		}
	}
}

func TestImportanceSamplingWithGlobal(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.GlobalShuffling())
	cfg.ImportanceSampling = true
	cfg.Epochs = 3
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSyncBNWithoutBNIsNoop(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.LocalShuffling())
	cfg.Model = nn.ModelSpec{Name: "plain", Hidden: []int{16}}.WithData(ds.FeatureDim, ds.Classes)
	cfg.SyncBatchNormStats = true
	cfg.Epochs = 2
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecorderReceivesEvents(t *testing.T) {
	ds := testDataset(t, 256, 4)
	cfg := baseConfig(t, ds, 4, shuffle.Partial(0.25))
	cfg.Epochs = 2
	rec := trace.NewRecorder()
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// 4 ranks x 2 epochs x 5 phases.
	if rec.Len() != 40 {
		t.Fatalf("trace events = %d, want 40", rec.Len())
	}
	totals := rec.PhaseTotals()
	for _, phase := range []string{trace.PhaseIO, trace.PhaseExchange, trace.PhaseFWBW, trace.PhaseGEWU, trace.PhaseValidate} {
		if _, ok := totals[phase]; !ok {
			t.Errorf("phase %q missing from trace", phase)
		}
	}
	// Exchange events carry the byte volume.
	bytes := int64(0)
	for _, e := range rec.Events() {
		if e.Phase == trace.PhaseExchange {
			bytes += e.Bytes
		}
	}
	if bytes == 0 {
		t.Fatal("exchange trace events carry no bytes")
	}
}

func TestOptimizerSelection(t *testing.T) {
	ds := testDataset(t, 256, 4)
	for _, name := range []string{"", "sgd", "lars", "lamb"} {
		cfg := baseConfig(t, ds, 4, shuffle.GlobalShuffling())
		cfg.Optimizer = name
		cfg.Epochs = 4
		if name == "lamb" {
			cfg.BaseLR = 0.02
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if res.FinalValAcc < 0.7 {
			t.Errorf("optimizer %q accuracy %v", name, res.FinalValAcc)
		}
	}
	bad := baseConfig(t, ds, 4, shuffle.GlobalShuffling())
	bad.Optimizer = "adamw"
	if _, err := Run(bad); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}
