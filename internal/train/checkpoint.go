package train

// Deterministic checkpoint/resume (DESIGN.md §15). Every rank's replica
// state is a pure function of (config, seed, epoch) plus the mutable pieces
// this file snapshots: weights (batch-norm running statistics included),
// optimizer moments, the dropout RNG cursors, the stored sample set of the
// local-family strategies, and the per-sample loss table of importance
// sampling. Restoring exactly those pieces and re-entering the training
// loop at the snapshot's NextEpoch reproduces the uninterrupted run bit for
// bit — the elastic CI gate compares weight checksums to prove it.
//
// Commit protocol (all ranks at the same epoch boundary):
//
//  1. Every rank encodes its sections and durably writes rank-R.snap.tmp
//     (write + fsync; checkpoint.WriteTemp).
//  2. Non-root ranks report {crc32c, size} to the group root on the
//     checkpoint tag, then rename .tmp → .snap (checkpoint.Commit).
//  3. The root commits its own file, gathers every member's report with
//     failure-aware waits, and atomically writes MANIFEST.json.
//  4. Barrier: nobody trains past the boundary until the snapshot
//     generation is fully on disk.
//
// The manifest is the snapshot's commit point: LoadLatest ignores
// directories without one and verifies every listed rank file against its
// recorded checksum, so a crash anywhere in the protocol — a torn .tmp, a
// committed rank file with no manifest, a manifest racing a commit — leaves
// the previous complete snapshot as the one that loads.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"time"

	"plshuffle/internal/analysis"
	"plshuffle/internal/checkpoint"
	"plshuffle/internal/mpi"
	"plshuffle/internal/nn"
)

// ckptTag is the user-tag space of checkpoint CRC reports, above the
// exchange tags (= epoch, < 2^20), the admission space (2^22) and the
// rebalance space (2^23). The membership generation salts the tag: a
// snapshot re-taken after a mid-checkpoint death (the group shrank, the
// replica state was re-synchronized) must not gather a stale report a rank
// sent for the same epoch boundary before the failure.
func ckptTag(generation, nextEpoch int) int { return (generation+1)<<24 + nextEpoch }

var fingerprintTable = crc32.MakeTable(crc32.Castagnoli)

// configFingerprint digests the configuration facets that must match
// between the checkpointing run and a resuming one. World shape and the
// epoch horizon are deliberately excluded: a degraded world resumes with
// fewer ranks, and a resume may extend Epochs.
func configFingerprint(cfg Config) string {
	n := 0
	if cfg.Dataset != nil {
		n = len(cfg.Dataset.Train)
	}
	desc := fmt.Sprintf("v2|n=%d|model=%+v|strat=%+v|b=%d|lr=%g|mom=%g|wd=%g|opt=%s|lars=%t|eta=%g|seed=%d|is=%t|enc=%s|sync=%t|full=%t|loc=%g|egs=%d|autoq=%t|qmin=%g|qmax=%g|qsched=%v",
		n, cfg.Model, cfg.Strategy, cfg.BatchSize, cfg.BaseLR, cfg.Momentum,
		cfg.WeightDecay, cfg.Optimizer, cfg.UseLARS, cfg.LARSEta, cfg.Seed,
		cfg.ImportanceSampling, cfg.SampleEncoding, cfg.SyncBatchNormStats,
		cfg.FullSyncBatchNorm, cfg.PartitionLocality, cfg.ExchangeGroupSize,
		cfg.AutoQ, cfg.AutoQMin, cfg.AutoQMax, cfg.QSchedule)
	return fmt.Sprintf("%08x", crc32.Checksum([]byte(desc), fingerprintTable))
}

// checkpointDue reports whether a snapshot is owed before nextEpoch runs.
func (w *worker) checkpointDue(nextEpoch int) bool {
	if w.cfg.CheckpointDir == "" {
		return false
	}
	every := w.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	return nextEpoch%every == 0
}

// snapshotSections encodes this rank's replica state as named sections.
func (w *worker) snapshotSections() (map[string][]byte, error) {
	sections := make(map[string][]byte)
	var buf bytes.Buffer
	if err := nn.SaveWeights(&buf, w.model); err != nil {
		return nil, err
	}
	sections["weights"] = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := nn.SaveOptimizerState(&buf, w.opt); err != nil {
		return nil, err
	}
	sections["optimizer"] = append([]byte(nil), buf.Bytes()...)
	sections["rng"] = encodeRNG(nn.RNGStates(w.model))
	if w.local != nil {
		sections["store"] = encodeIDs(w.local.IDs())
	}
	if w.lossByID != nil {
		sections["loss"] = encodeLossMap(w.lossByID)
	}
	if w.ctrl != nil {
		// The controller's trajectory position. The boundary decides the
		// NEXT epoch's Q before the snapshot is taken (train loop order), so
		// a resume re-enters Scheduling with exactly the fraction the
		// uninterrupted run would have used — the Q trajectory replays
		// bitwise from any snapshot.
		sections["controller"] = encodeControllerState(w.ctrlQ, w.ctrlReason)
	}
	return sections, nil
}

// saveCheckpoint runs the commit protocol described at the top of the file.
// Call it under a Guard at an epoch boundary. Disk failures are fatal to the
// rank in every mode; peer failures are fatal under "abort", while the
// degrade path in train() funnels them into the usual shrink-and-continue
// recovery (a fast rank can be dead in the NEXT epoch's exchange while slow
// ranks still sit in this barrier).
func (w *worker) saveCheckpoint(nextEpoch int) error {
	t0 := time.Now()
	dir := checkpoint.Dir(w.cfg.CheckpointDir, nextEpoch)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sections, err := w.snapshotSections()
	if err != nil {
		return err
	}
	image := checkpoint.EncodeSnapshot(sections)
	crc := checkpoint.CRC(image)
	rank := w.comm.Rank()
	path := checkpoint.RankPath(dir, rank)
	if err := checkpoint.WriteTemp(path, image); err != nil {
		return err
	}
	group := w.comm.GroupRanks()
	root := group[0]
	tag := ckptTag(w.generation, nextEpoch)
	if rank != root {
		// Report the durably-written temp to the root, then commit. The
		// chaos tests crash a rank exactly at this send: its torn .tmp is
		// never renamed and the root never writes a manifest, so the
		// half-born snapshot stays invisible to LoadLatest.
		if pe := w.comm.SendPeerAware(root, tag, []int{int(crc), len(image)}); pe != nil {
			return pe
		}
		if err := checkpoint.Commit(path); err != nil {
			return err
		}
	} else {
		if err := checkpoint.Commit(path); err != nil {
			return err
		}
		inGroup := make(map[int]bool, len(group))
		for _, r := range group {
			inGroup[r] = true
		}
		known := func(r int) bool { return !inGroup[r] }
		ranks := []checkpoint.RankFile{{Rank: rank, CRC: crc, Size: int64(len(image))}}
		for _, r := range group {
			if r == root {
				continue
			}
			req := w.comm.Irecv(r, tag)
			payload, _, err := w.comm.WaitPeerAware(req, known)
			if err != nil {
				return fmt.Errorf("gathering checkpoint report from rank %d: %w", r, err)
			}
			rep, ok := payload.([]int)
			if !ok || len(rep) != 2 {
				return fmt.Errorf("malformed checkpoint report from rank %d: %T", r, payload)
			}
			ranks = append(ranks, checkpoint.RankFile{Rank: r, CRC: uint32(rep[0]), Size: int64(rep[1])})
		}
		sort.Slice(ranks, func(i, j int) bool { return ranks[i].Rank < ranks[j].Rank })
		meta := checkpoint.Meta{
			NextEpoch:   nextEpoch,
			WorldSize:   w.comm.Size(),
			Generation:  w.generation,
			Seed:        w.cfg.Seed,
			Fingerprint: configFingerprint(w.cfg),
			Ranks:       ranks,
		}
		if len(group) != w.comm.Size() {
			// Satellite of DESIGN.md §15: a degraded world persists its
			// post-shrink group so a resume restores the shrunken partition
			// instead of silently reverting to the pre-failure one.
			meta.Group = append([]int(nil), group...)
		}
		if err := checkpoint.WriteManifest(dir, meta); err != nil {
			return err
		}
	}
	w.comm.Barrier()
	if w.tm != nil {
		w.tm.CheckpointWrites.Add(1)
		w.tm.CheckpointNs.Add(int64(time.Since(t0)))
		w.tm.CheckpointBytes.Add(int64(len(image)))
	}
	return nil
}

// resumeState is a loaded snapshot: the manifest and this rank's decoded
// sections, resolved by loadResume before the worker is built.
type resumeState struct {
	dir      string
	meta     checkpoint.Meta
	sections map[string][]byte
}

// loadResume finds the newest complete snapshot, checks the configuration
// fingerprint, and maps this rank onto a snapshot rank: a world of the
// snapshot's full size resumes rank-for-rank; a world of exactly the
// snapshot's live-group size resumes degraded (new rank i adopts Group[i]).
func loadResume(c *mpi.Comm, cfg Config) (*resumeState, error) {
	dir, meta, err := checkpoint.LoadLatest(cfg.CheckpointDir)
	if err != nil {
		return nil, err
	}
	if fp := configFingerprint(cfg); meta.Fingerprint != fp {
		return nil, fmt.Errorf("train: resume: snapshot fingerprint %s does not match this run's %s (different dataset, model, or hyperparameters?)", meta.Fingerprint, fp)
	}
	live := meta.LiveRanks()
	var snapRank int
	switch c.Size() {
	case meta.WorldSize:
		if meta.Group != nil {
			// The snapshot world was degraded: resuming at full world size
			// would hand the dead ranks' slots state that no longer exists.
			return nil, fmt.Errorf("train: resume: snapshot has a degraded group of %d/%d ranks; relaunch %d ranks (rank i adopts group member i's state)", len(live), meta.WorldSize, len(live))
		}
		snapRank = c.Rank()
	case len(live):
		snapRank = live[c.Rank()]
	default:
		return nil, fmt.Errorf("train: resume: world size %d matches neither the snapshot's world size %d nor its live group of %d", c.Size(), meta.WorldSize, len(live))
	}
	sections, err := checkpoint.ReadRankFile(checkpoint.RankPath(dir, snapRank))
	if err != nil {
		return nil, err
	}
	return &resumeState{dir: dir, meta: meta, sections: sections}, nil
}

// applyResume restores the in-memory replica state from a loaded snapshot.
// The store restore happened during staging (newWorker); everything here is
// layered onto the freshly built model and optimizer.
func (w *worker) applyResume(rs *resumeState) error {
	sec := func(name string) ([]byte, error) {
		b, ok := rs.sections[name]
		if !ok {
			return nil, fmt.Errorf("train: resume: snapshot missing %q section", name)
		}
		return b, nil
	}
	wb, err := sec("weights")
	if err != nil {
		return err
	}
	if err := nn.LoadWeights(bytes.NewReader(wb), w.model); err != nil {
		return fmt.Errorf("train: resume: %w", err)
	}
	ob, err := sec("optimizer")
	if err != nil {
		return err
	}
	if err := nn.LoadOptimizerState(bytes.NewReader(ob), w.opt); err != nil {
		return fmt.Errorf("train: resume: %w", err)
	}
	rb, err := sec("rng")
	if err != nil {
		return err
	}
	states, err := decodeRNG(rb)
	if err != nil {
		return err
	}
	if err := nn.SetRNGStates(w.model, states); err != nil {
		return fmt.Errorf("train: resume: %w", err)
	}
	if w.lossByID != nil {
		if lb, ok := rs.sections["loss"]; ok {
			m, err := decodeLossMap(lb)
			if err != nil {
				return err
			}
			w.lossByID = m
		}
	}
	if rs.meta.NextEpoch >= w.cfg.Epochs {
		return fmt.Errorf("train: resume: snapshot is already at epoch %d of %d — nothing left to train (raise Epochs to extend the run)",
			rs.meta.NextEpoch, w.cfg.Epochs)
	}
	if w.ctrl != nil {
		cb, err := sec("controller")
		if err != nil {
			return err
		}
		q, reason, err := decodeControllerState(cb)
		if err != nil {
			return err
		}
		w.ctrl.Adopt(q)
		if err := w.exchanger.SetQ(q); err != nil {
			return fmt.Errorf("train: resume: %w", err)
		}
		w.ctrlQ, w.ctrlReason = q, reason
	}
	w.startEpoch = rs.meta.NextEpoch
	w.generation = rs.meta.Generation
	if rs.meta.Group != nil {
		w.shortData = true
	}
	return nil
}

// --- section encodings (all little-endian, length-prefixed) ---

func encodeIDs(ids []int) []byte {
	buf := make([]byte, 4+8*len(ids))
	binary.LittleEndian.PutUint32(buf, uint32(len(ids)))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(buf[4+8*i:], uint64(id))
	}
	return buf
}

func decodeIDs(b []byte) ([]int, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("train: resume: truncated store section (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+8*n {
		return nil, fmt.Errorf("train: resume: store section is %d bytes, want %d for %d ids", len(b), 4+8*n, n)
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = int(binary.LittleEndian.Uint64(b[4+8*i:]))
	}
	return ids, nil
}

func encodeRNG(states [][4]uint64) []byte {
	buf := make([]byte, 4+32*len(states))
	binary.LittleEndian.PutUint32(buf, uint32(len(states)))
	for i, st := range states {
		for j, v := range st {
			binary.LittleEndian.PutUint64(buf[4+32*i+8*j:], v)
		}
	}
	return buf
}

func decodeRNG(b []byte) ([][4]uint64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("train: resume: truncated rng section (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+32*n {
		return nil, fmt.Errorf("train: resume: rng section is %d bytes, want %d for %d states", len(b), 4+32*n, n)
	}
	states := make([][4]uint64, n)
	for i := range states {
		for j := 0; j < 4; j++ {
			states[i][j] = binary.LittleEndian.Uint64(b[4+32*i+8*j:])
		}
	}
	return states, nil
}

// encodeControllerState serializes the controller's trajectory position:
// the exchange fraction's exact float64 bits plus the canonical reason code
// of the decision that set it (analysis.ReasonCode).
func encodeControllerState(q float64, reason string) []byte {
	buf := make([]byte, 9)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(q))
	buf[8] = analysis.ReasonCode(reason)
	return buf
}

func decodeControllerState(b []byte) (float64, string, error) {
	if len(b) != 9 {
		return 0, "", fmt.Errorf("train: resume: controller section is %d bytes, want 9", len(b))
	}
	q := math.Float64frombits(binary.LittleEndian.Uint64(b))
	if q < 0 || q > 1 || q != q {
		return 0, "", fmt.Errorf("train: resume: controller fraction %v out of [0,1]", q)
	}
	return q, analysis.ReasonFromCode(b[8]), nil
}

// encodeLossMap serializes the importance-sampling loss table sorted by
// sample ID, so the snapshot image stays deterministic.
func encodeLossMap(m map[int]float64) []byte {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	buf := make([]byte, 4+16*len(ids))
	binary.LittleEndian.PutUint32(buf, uint32(len(ids)))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(buf[4+16*i:], uint64(id))
		binary.LittleEndian.PutUint64(buf[4+16*i+8:], math.Float64bits(m[id]))
	}
	return buf
}

func decodeLossMap(b []byte) (map[int]float64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("train: resume: truncated loss section (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+16*n {
		return nil, fmt.Errorf("train: resume: loss section is %d bytes, want %d for %d entries", len(b), 4+16*n, n)
	}
	m := make(map[int]float64, n)
	for i := 0; i < n; i++ {
		id := int(binary.LittleEndian.Uint64(b[4+16*i:]))
		m[id] = math.Float64frombits(binary.LittleEndian.Uint64(b[4+16*i+8:]))
	}
	return m, nil
}
