// Package train runs distributed synchronous SGD over the message-passing
// runtime with any of the paper's shuffling strategies. One goroutine plays
// each worker: it holds a model replica (identical initial weights via a
// shared seed, as Section IV-A assumes), draws batches according to the
// strategy, averages gradients with a ring allreduce every iteration
// (Equation 1), and — for partial local shuffling — drives the exchange
// scheduler chunk-by-chunk so the sample traffic interleaves with the
// forward/backward phases (Figure 4).
//
// By default batch-norm statistics are per-worker, matching standard
// data-parallel practice; this is the mechanism Section IV-A.1 identifies
// as the main source of accuracy loss under local shuffling, and keeping
// it faithful is what lets the accuracy experiments reproduce the paper's
// shapes. The FullSyncBatchNorm and SyncBatchNormStats options switch the
// statistics handling to isolate that mechanism (see the norm-ablation
// experiment).
package train

import (
	"fmt"
	"runtime"
	"time"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/shuffle/control"
	"plshuffle/internal/store"
	"plshuffle/internal/store/cache"
	"plshuffle/internal/store/shard"
	"plshuffle/internal/telemetry"
	"plshuffle/internal/tensor"
	"plshuffle/internal/tensor/arena"
	"plshuffle/internal/trace"
	"plshuffle/internal/transport"
)

// DefaultWireDedupBudget is the per-directed-pair byte budget the exchange
// dedup caches use when Config.WireDedup is on and no explicit budget is
// given. 8 MiB per pair keeps a 32-rank world under ~0.5 GiB of cache per
// rank while holding several epochs' worth of typical exchange traffic.
const DefaultWireDedupBudget = 8 << 20

// Config describes one training run.
type Config struct {
	Workers  int
	Strategy shuffle.Strategy
	Dataset  *data.Dataset
	Model    nn.ModelSpec // input dim / classes already bound (WithData)

	Epochs    int
	BatchSize int // local mini-batch b per worker

	BaseLR      float32
	Schedule    nn.Schedule // nil = Constant{BaseLR}
	Momentum    float32
	WeightDecay float32
	UseLARS     bool
	LARSEta     float32 // 0 = default 0.01
	// Optimizer selects the update rule by name: "" or "sgd", "lars" (same
	// as UseLARS), or "lamb". The large-batch optimizers are what the
	// paper's biggest configurations require (LARS per Mikami et al.).
	Optimizer string

	// DataDir points at an ingested on-disk dataset (cmd/plsingest) for the
	// Corgi2 strategy, which streams training samples through the storage
	// hierarchy instead of holding them in memory. With Corgi2, Dataset may
	// be nil — it is derived from the dataset's manifest and validation
	// shard.
	DataDir string
	// CacheBytes bounds the Corgi2 node-local cache tier per rank
	// (0 = unlimited). It must hold at least the dataset's largest shard.
	CacheBytes int64
	// ShardStore, if non-nil, is the already-open ingested dataset to use
	// instead of opening DataDir — how tests and benchmarks inject PFS
	// throttling (shard.Dataset.SetPFSOptions).
	ShardStore *shard.Dataset

	Seed uint64
	// PartitionLocality biases the initial partition toward class-contiguous
	// shards (0 = the paper's uniform random permutation, 1 = fully
	// class-sorted). It calibrates shard-statistics divergence so the
	// Gaussian proxies match the divergence of small shards of real image
	// data; see shuffle.PartitionWithLocality.
	PartitionLocality float64
	// LocalCapacityBytes bounds each worker's storage area (0 = unlimited);
	// exceeding it fails the run, reproducing the feasibility constraints.
	LocalCapacityBytes int64
	// ExchangeGroupSize, when non-zero, uses the hierarchical two-level
	// exchange (Section V-F) with groups of that many workers; it must
	// divide Workers.
	ExchangeGroupSize int
	// WireDedup enables the exchange deduplication protocol (DESIGN.md §13):
	// each directed rank pair maintains mirrored bounded caches of the
	// samples that crossed it, and a sample the sender can prove the
	// receiver still holds travels as a compact ID reference instead of a
	// payload. Training input is bitwise identical either way; only the
	// wire volume changes. Applies to the partial-local exchange only.
	WireDedup bool
	// WireDedupBudget bounds each directed pair's dedup cache in bytes
	// (0 = DefaultWireDedupBudget). Memory cost per rank is at most
	// 2·(Workers−1)·budget: one payload-retaining segment per source and
	// one ID-only mirror per destination.
	WireDedupBudget int64
	// SampleEncoding selects the exchange sample wire format: "" or "fp32"
	// (the legacy bit-exact encoding), "fp16exact" (compact half-precision
	// entries only for samples whose features are bitwise-losslessly
	// representable — exact by construction), or "fp16" (lossy round-to-
	// nearest-even half-precision quantization of every feature).
	SampleEncoding string
	// SyncBatchNormStats averages batch-norm running statistics across
	// workers after every epoch. Standard data-parallel training does NOT
	// do this — which is exactly why local shuffling degrades (Section
	// IV-A.1). Enabling it isolates that mechanism: with synchronized
	// statistics the LS-vs-GS gap shrinks (see the norm-ablation
	// experiment).
	SyncBatchNormStats bool
	// FullSyncBatchNorm computes batch-norm statistics over the GLOBAL
	// mini-batch every iteration (PyTorch SyncBatchNorm): forward and
	// backward reductions cross workers. This removes the per-shard batch
	// statistics entirely and — as the mechanism experiments show — it is
	// the train-time statistics, not the running estimates, that cause
	// local shuffling's accuracy loss. It costs two extra allreduces per
	// BatchNorm layer per iteration.
	FullSyncBatchNorm bool
	// OverlapGrads enables the bucketed, non-blocking gradient all-reduce
	// that pipelines with the backward pass (DESIGN.md §9): parameters are
	// partitioned into size-capped buckets in reverse-layer order, and each
	// bucket's ring all-reduce launches the moment its last layer's
	// gradients are written — while earlier layers are still computing
	// backward. The resulting weights are bitwise identical to the serial
	// flat path (false), which is kept as the A/B baseline
	// (-overlap-grads=false on the CLIs).
	OverlapGrads bool
	// GradBucketBytes caps each gradient bucket's size in bytes
	// (0 = nn.DefaultGradBucketBytes). Only meaningful with OverlapGrads.
	GradBucketBytes int
	// ImportanceSampling enables the Section IV-B extension: per-sample
	// losses weight both the local iteration order (hard samples first)
	// and the selection of samples pushed into the global exchange (hard
	// samples circulate between workers).
	ImportanceSampling bool
	// WarmStart, if non-nil, initializes every worker's weights from these
	// parameters instead of random init (Fig 8 downstream training and the
	// pretrained ResNet50 of Fig 5d). Lengths must match the built model's.
	WarmStart []nn.Param
	// Trace, if non-nil, receives one event per (rank, epoch, phase) with
	// duration and byte volume — the Figure 10 instrumentation.
	Trace *trace.Recorder
	// Telemetry, if non-nil, registers this rank's live metrics (DESIGN.md
	// §11): training progress and per-phase time, the exchange scheduler's
	// EffectiveQ/DegradedSlots and cumulative wire volume, the runtime's
	// collective sequence and overlap depth, and the transport's byte/frame
	// counters. The hot path only touches preallocated atomic words — the
	// steady-state training iteration stays 0 allocs/op with telemetry on,
	// and the trained weights are bitwise identical either way.
	Telemetry *telemetry.Registry
	// OnPeerFail selects the policy when the transport reports a peer dead
	// mid-run (DESIGN.md §10). "abort" (or "") propagates the typed
	// transport.PeerError and fails the rank — the launcher reports it and
	// exits non-zero. "degrade" keeps the survivors training: the exchange
	// scheduler forfeits the dead rank's slots (reduced effective Q), the
	// collective group shrinks over the survivors (mpi.Shrink), weights are
	// re-synchronized from the lowest surviving rank, and the epoch in
	// flight when the failure struck is completed without further gradient
	// steps.
	OnPeerFail string

	// CheckpointDir, when non-empty, enables deterministic checkpointing
	// (DESIGN.md §15): every CheckpointEvery epochs each rank durably writes
	// an atomic snapshot of its replica state — weights including batch-norm
	// running statistics, optimizer moments, dropout RNG cursors, and the
	// stored sample IDs — and the group root commits a manifest binding every
	// member's checksum. A run restarted with Resume continues bitwise
	// identically to one that was never interrupted.
	CheckpointDir string
	// CheckpointEvery is the snapshot period in epochs (0 = every epoch).
	CheckpointEvery int
	// Resume restores the newest complete snapshot under CheckpointDir
	// before training starts. The resuming world must have either the
	// snapshot's full world size or exactly its live-group size (degraded
	// resume: new rank i adopts state from Group[i]'s snapshot).
	Resume bool
	// Elastic polls for rendezvoused joiners at every epoch boundary and
	// grows the collective group mid-run (DESIGN.md §15): the group root
	// broadcasts the admitted joiners, every member Grows, each joiner
	// adopts the current weights, and the stored samples rebalance over the
	// new membership. A fresh rank enters a running world through JoinRank.
	Elastic bool

	// AutoQ enables the closed-loop shuffle controller (DESIGN.md §16):
	// after every epoch the group root gathers each rank's deterministic
	// observations (label-exposure skew and the modeled exchange/compute
	// cost ratio), steps the pure decision function analysis.DecideQ, and
	// broadcasts the new exchange fraction on a reserved control tag before
	// the next Scheduling. Strategy.Q becomes the starting point of the
	// trajectory rather than a fixed constant. PartialLocal only.
	AutoQ bool
	// AutoQMin / AutoQMax clamp the controller's trajectory (0,0 = the
	// default policy clamps [0.05, 0.5]). Both must lie in [0,1] with
	// AutoQMin ≤ AutoQMax.
	AutoQMin, AutoQMax float64
	// QSchedule, when non-empty, pins epoch e's exchange fraction to
	// QSchedule[min(e, len-1)] — a deterministic open-loop replay of a
	// recorded controller trajectory (the bitwise acceptance harness:
	// an AutoQ run and a QSchedule replay of its trajectory must produce
	// crc32c-identical weights). Mutually exclusive with AutoQ;
	// PartialLocal only.
	QSchedule []float64

	// testIterHook, when non-nil, runs at the top of every training
	// iteration (after the epoch's exchange is scheduled). Tests use it to
	// inject deterministic faults — e.g. kill this rank's transport at a
	// chosen (epoch, iteration). A non-nil return unwinds the rank with
	// that error.
	testIterHook func(epoch, iter int) error
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("train: Workers must be positive, got %d", c.Workers)
	}
	if c.Strategy.Kind == shuffle.Corgi2 {
		// Corgi2 streams training samples from the on-disk shard store; the
		// in-memory training split stays empty.
		if c.DataDir == "" && c.ShardStore == nil {
			return fmt.Errorf("train: corgi2 needs DataDir (an ingested dataset; see cmd/plsingest) or ShardStore")
		}
		if c.ImportanceSampling {
			return fmt.Errorf("train: ImportanceSampling is not supported with corgi2 (the epoch order is fixed by the shard plan)")
		}
		if c.OnPeerFail == "degrade" {
			return fmt.Errorf("train: OnPeerFail=degrade is not supported with corgi2 (shard assignments are static within an epoch group)")
		}
		if c.PartitionLocality != 0 {
			return fmt.Errorf("train: PartitionLocality does not apply to corgi2 (ingest fixes the shard layout)")
		}
	} else {
		if c.Dataset == nil || len(c.Dataset.Train) == 0 {
			return fmt.Errorf("train: empty dataset")
		}
		if len(c.Dataset.Train) < c.Workers {
			return fmt.Errorf("train: %d samples over %d workers", len(c.Dataset.Train), c.Workers)
		}
	}
	if c.Epochs <= 0 || c.BatchSize <= 0 {
		return fmt.Errorf("train: Epochs and BatchSize must be positive (%d, %d)", c.Epochs, c.BatchSize)
	}
	if c.BaseLR <= 0 {
		return fmt.Errorf("train: BaseLR must be positive, got %v", c.BaseLR)
	}
	if err := c.Strategy.Validate(); err != nil {
		return err
	}
	switch c.Optimizer {
	case "", "sgd", "lars", "lamb":
	default:
		return fmt.Errorf("train: unknown optimizer %q (want sgd, lars, or lamb)", c.Optimizer)
	}
	if c.GradBucketBytes < 0 {
		return fmt.Errorf("train: GradBucketBytes must be non-negative, got %d", c.GradBucketBytes)
	}
	switch c.OnPeerFail {
	case "", "abort", "degrade":
	default:
		return fmt.Errorf("train: unknown OnPeerFail policy %q (want abort or degrade)", c.OnPeerFail)
	}
	if _, err := data.ParseEncoding(c.SampleEncoding); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	if c.WireDedupBudget < 0 {
		return fmt.Errorf("train: WireDedupBudget must be non-negative, got %d", c.WireDedupBudget)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("train: CheckpointEvery must be non-negative, got %d", c.CheckpointEvery)
	}
	if c.Resume && c.CheckpointDir == "" {
		return fmt.Errorf("train: Resume requires CheckpointDir")
	}
	if c.AutoQ || len(c.QSchedule) > 0 {
		if c.Strategy.Kind != shuffle.PartialLocal {
			return fmt.Errorf("train: AutoQ/QSchedule retune the exchange fraction and need strategy pls")
		}
		if c.AutoQ && len(c.QSchedule) > 0 {
			return fmt.Errorf("train: AutoQ and QSchedule are mutually exclusive (closed loop vs open-loop replay)")
		}
	}
	if c.AutoQMin < 0 || c.AutoQMax > 1 || c.AutoQMin > c.AutoQMax {
		return fmt.Errorf("train: AutoQ clamps [%v, %v] out of order or out of [0,1]", c.AutoQMin, c.AutoQMax)
	}
	for i, q := range c.QSchedule {
		if q < 0 || q > 1 {
			return fmt.Errorf("train: QSchedule[%d] = %v out of [0,1]", i, q)
		}
	}
	return c.Model.Validate()
}

// EpochStats records one epoch's outcome and phase accounting.
type EpochStats struct {
	Epoch     int
	TrainLoss float64 // mean loss across workers and iterations
	ValAcc    float64 // top-1 validation accuracy (sharded evaluation)

	// Simulated byte volumes (per worker, using Sample.Bytes).
	LocalReadBytes int64
	PFSReadBytes   int64
	ExchangeBytes  int64
	// ExchangeWireBytes is the real number of bytes that crossed the network
	// during this epoch's exchange phases (frame headers included). It is
	// zero on the inproc backend, whose Stats report Wire=false; over TCP it
	// is what the trace's PhaseExchange events carry.
	ExchangeWireBytes int64
	// GradWireBytes is the real number of bytes the gradient all-reduce
	// moved over the network this epoch (sent + received, exact frame sizes
	// per bucket — or per flat ring segment on the serial path — mirroring
	// ExchangeWireBytes). Zero on the inproc backend. Raw transport counter
	// deltas cannot attribute this traffic once the bucket rings overlap
	// with backward compute; the collective engine accounts it at the frame
	// level instead.
	GradWireBytes int64

	// DedupHits counts exchange samples this epoch that traveled as compact
	// ID references instead of payloads (WireDedup), and DedupBytesSaved is
	// the exact wire volume those references elided (hypothetical full-batch
	// frame size minus the metered ref + residual frames).
	DedupHits       int
	DedupBytesSaved int64

	// Wall-clock phase times on this process (for the testing.B benches;
	// the paper-scale times come from internal/perfmodel).
	IOTime, ExchangeTime, FWBWTime, GEWUTime time.Duration
	// DegradedSlots counts the exchange slots this epoch forfeited because
	// their partner rank was dead (send slots whose destination died plus
	// receive slots whose sender died). Zero in a healthy run.
	DegradedSlots int
	// EffectiveQ is the shuffling fraction the epoch actually realized:
	// Q scaled by the live share of the exchange slots. Equal to the
	// configured Q while every peer is alive; meaningful only for the
	// partial-local strategy (zero otherwise).
	EffectiveQ float64
	// ControllerQ is the exchange fraction this epoch actually planned with
	// — the controller's (or QSchedule's) trajectory, scrape-able live as
	// pls_controller_q. Zero when neither AutoQ nor QSchedule is in force.
	// ControllerReason is the canonical label of the decision that set it
	// ("hold", "raise-skew", "raise-clamp", "lower-hidden", "lower-clamp",
	// or "schedule" for open-loop replay).
	ControllerQ      float64
	ControllerReason string
	// Disrupted marks the epoch during which a peer failure unwound this
	// rank's collectives in degrade mode: its remaining gradient steps
	// were abandoned while the survivors re-formed the group, and its
	// ValAcc was not measured. Skipped marks an epoch the recovery jumped
	// over entirely to keep survivors aligned (possible when the failure
	// lands exactly on an epoch boundary).
	Disrupted, Skipped bool

	// GEWUWaitTime is the EXPOSED portion of the gradient exchange: time
	// the rank's main goroutine spent blocked waiting for all-reduce
	// results (the whole ring on the flat path; only the drain waits on the
	// overlapped path). GEWUCommTime is the TOTAL wall-clock the gradient
	// all-reduce spent in flight (sum over buckets of launch→completion).
	// 1 − GEWUWaitTime/GEWUCommTime is the fraction of gradient
	// communication hidden behind backward compute.
	GEWUWaitTime, GEWUCommTime time.Duration
}

// Result aggregates a run.
type Result struct {
	Strategy    shuffle.Strategy
	Epochs      []EpochStats
	FinalValAcc float64
	BestValAcc  float64
	// PeakStorageBytes is the maximum over workers of the storage
	// high-water mark — bounded by (1+Q)·N/M·sampleBytes for PLS.
	PeakStorageBytes int64
	// FinalParams are rank 0's weights after training (for downstream
	// fine-tuning in the Fig 8 experiment).
	FinalParams []nn.Param
	// FinalModel is rank 0's trained replica, including batch-norm running
	// statistics — what a checkpoint saves (nn.SaveWeights).
	FinalModel *nn.Sequential
}

// Run executes the configured training over the in-process runtime and
// returns aggregated statistics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.Workers
	perRank := make([]*RankResult, m)
	err := mpi.Run(m, func(c *mpi.Comm) error {
		rr, err := RunRank(c, cfg)
		if err != nil {
			return err
		}
		perRank[c.Rank()] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Strategy: cfg.Strategy, Epochs: perRank[0].Epochs,
		FinalParams: perRank[0].FinalParams, FinalModel: perRank[0].FinalModel}
	for _, rr := range perRank {
		if rr.PeakStorageBytes > res.PeakStorageBytes {
			res.PeakStorageBytes = rr.PeakStorageBytes
		}
	}
	for _, e := range res.Epochs {
		if e.ValAcc > res.BestValAcc {
			res.BestValAcc = e.ValAcc
		}
	}
	if len(res.Epochs) > 0 {
		res.FinalValAcc = res.Epochs[len(res.Epochs)-1].ValAcc
	}
	return res, nil
}

// RankResult is one rank's outcome of a training run.
type RankResult struct {
	Epochs           []EpochStats
	PeakStorageBytes int64
	FinalParams      []nn.Param
	FinalModel       *nn.Sequential
	// FinalLocalSamples is the number of samples in this rank's storage area
	// after the last epoch (0 for GS, which streams from the PFS). The
	// distributed launcher gathers it to check the N/M balance invariant.
	FinalLocalSamples int
	// FinalLocalIDs is the sorted list of sample IDs in this rank's storage
	// area after the last epoch (nil for GS). The chaos tests use it to
	// prove sample conservation across survivors after a peer death: no ID
	// held twice, every surviving ID in range.
	FinalLocalIDs []int
	// Cache is the Corgi2 cache tier's final counters (nil for the other
	// strategies).
	Cache *cache.Stats
}

// RunRank executes one rank's share of the configured training on an
// already-connected communicator — the entry point for distributed worlds
// where each rank is its own OS process (cmd/plsd). Every rank must pass an
// identical Config: the initial partition is derived deterministically from
// the seed, so no rank needs to see another's memory. cfg.Workers may be
// zero (it defaults to the communicator's world size) but must otherwise
// match it.
func RunRank(c *mpi.Comm, cfg Config) (*RankResult, error) {
	if cfg.Workers == 0 {
		cfg.Workers = c.Size()
	}
	if cfg.Workers != c.Size() {
		return nil, fmt.Errorf("train: cfg.Workers = %d but world size is %d", cfg.Workers, c.Size())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg, sched, parts, pfs, err := prepareRank(cfg)
	if err != nil {
		return nil, err
	}
	var rs *resumeState
	if cfg.Resume {
		if rs, err = loadResume(c, cfg); err != nil {
			return nil, err
		}
	}
	w, err := newWorker(c, cfg, sched, parts, pfs, rs)
	if err != nil {
		return nil, err
	}
	if w.tier != nil {
		defer w.tier.Close()
	}
	return w.run()
}

// prepareRank resolves the derived run inputs every entry point (RunRank,
// JoinRank) shares: the Corgi2 shard store and proxy dataset, the LR
// schedule, the initial partition of the local-family strategies, and the
// PFS view.
func prepareRank(cfg Config) (Config, nn.Schedule, [][]int, *store.PFS, error) {
	if cfg.Strategy.Kind == shuffle.Corgi2 {
		if cfg.ShardStore == nil {
			sd, err := shard.OpenDataset(cfg.DataDir)
			if err != nil {
				return cfg, nil, nil, nil, err
			}
			cfg.ShardStore = sd
		}
		if cfg.Dataset == nil {
			ds, err := cfg.ShardStore.Proxy()
			if err != nil {
				return cfg, nil, nil, nil, err
			}
			cfg.Dataset = ds
		}
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = nn.Constant{Base: cfg.BaseLR}
	}

	// Initial partition for the local-family strategies — deterministic in
	// (n, Workers, Seed), hence identical across processes. Corgi2 assigns
	// shards, not samples, and re-derives the assignment per epoch group.
	var parts [][]int
	if cfg.Strategy.Kind != shuffle.Global && cfg.Strategy.Kind != shuffle.Corgi2 {
		n := len(cfg.Dataset.Train)
		var err error
		if cfg.PartitionLocality > 0 {
			labels := make([]int, n)
			for i, s := range cfg.Dataset.Train {
				labels[i] = s.Label
			}
			parts, err = shuffle.PartitionWithLocality(labels, cfg.Workers, cfg.PartitionLocality, cfg.Seed)
		} else {
			parts, err = shuffle.Partition(n, cfg.Workers, cfg.Seed)
		}
		if err != nil {
			return cfg, nil, nil, nil, err
		}
	}
	return cfg, sched, parts, store.NewPFS(cfg.Dataset.Train), nil
}

// run trains and assembles the rank's result — the shared tail of RunRank
// and JoinRank.
func (w *worker) run() (*RankResult, error) {
	stats, err := w.train()
	if err != nil {
		return nil, fmt.Errorf("rank %d: %w", w.comm.Rank(), err)
	}
	rr := &RankResult{Epochs: stats, FinalParams: w.model.Params(), FinalModel: w.model}
	if w.local != nil {
		rr.PeakStorageBytes = w.local.Peak()
		rr.FinalLocalIDs = w.local.IDs()
		rr.FinalLocalSamples = len(rr.FinalLocalIDs)
	}
	if w.tier != nil {
		st := w.tier.Stats()
		rr.PeakStorageBytes = st.PeakBytes
		rr.Cache = &st
	}
	return rr, nil
}

// worker is one rank's training state.
type worker struct {
	cfg    Config
	sched  nn.Schedule
	comm   *mpi.Comm
	model  *nn.Sequential
	params []nn.Param
	opt    nn.Optimizer
	loss   nn.SoftmaxCrossEntropy

	local     *store.Local       // LS/PLS storage area
	exchanger *shuffle.Scheduler // PLS only
	pfs       *store.PFS

	// Corgi2 state: the node-local cache tier over the shard store, the
	// epoch's open sample stream, and the current epoch group's shard
	// assignment. corgiWindow is the online-shuffle mixing radius in shards
	// (sized so two windows fit the cache budget: one pinned, one
	// prefetching); pfsAccounted snapshots the tier's cumulative PFS bytes
	// so each epoch records only its own delta.
	tier          *cache.Tier
	stream        *cache.EpochStream
	assigned      []int
	assignedGroup int
	corgiWindow   int
	corgiMinLocal int
	pfsAccounted  int64

	gradBuf []float32
	xBuf    *tensor.Matrix
	yBuf    []int

	// arena is this worker's step arena (DESIGN.md §14): every layer and
	// loss workspace for one forward+backward pass is bump-allocated from
	// it and reclaimed wholesale by the Reset at the top of the next
	// iteration — the steady-state training step does zero heap
	// allocation. valBuf is the arena-backed eval input batch.
	arena  *arena.Arena
	valBuf *tensor.Matrix

	// Overlapped gradient sync state (cfg.OverlapGrads; DESIGN.md §9).
	// plan partitions the parameters into reverse-layer buckets;
	// bucketBounds[i] is bucket i's ring-chunk partition — the global flat
	// partition clamped to the bucket's range, precomputed once so the
	// steady state allocates nothing and every element keeps the flat
	// path's reduction order (bitwise-identical results). bucketReqs holds
	// the in-flight requests, indexed by bucket (== launch order);
	// bucketHook is the per-layer Backward completion hook, bound once so
	// the steady state does not re-create the method value.
	plan         *nn.BucketPlan
	bucketBounds [][]int
	bucketReqs   []*mpi.CollRequest
	bucketHook   func(layer int)

	// lossByID holds the latest per-sample loss, the importance weight of
	// the ImportanceSampling extension.
	lossByID map[int]float64

	// tm is the rank's live-metric bundle (nil when cfg.Telemetry is nil).
	// Hot-path updates are single atomic adds on its fields; all naming and
	// labeling happened at registration (registerTelemetry).
	tm *telemetry.TrainMetrics

	// Fault-tolerance and elasticity state (DESIGN.md §10, §15).
	// exchEpoch is the epoch whose exchange is currently open (-1 when no
	// Scheduling…CleanLocalStorage window is in flight) — the recovery path
	// uses it to decide whether the disrupted epoch's exchange must be
	// completed or abandoned. generation counts group re-formations (shrinks
	// AND grows); it seeds the deterministic collective-sequence realignment
	// every member computes without communicating, and it is persisted in
	// checkpoints so a resumed world keeps counting from where it left off.
	exchEpoch  int
	generation int
	// startEpoch is the first epoch this rank trains — non-zero after a
	// resume (the snapshot's NextEpoch) or a mid-run join (the epoch the
	// admission message named).
	startEpoch int
	// joinedEpoch is the epoch this rank was admitted at (-1 for founding
	// and resumed ranks). The joiner skips its own admission round for that
	// epoch: the members drained the join queue in the very round that
	// admitted it, so a fresh broadcast would have no counterpart.
	joinedEpoch int
	// shortData marks a world whose stores may hold fewer than N/M samples
	// (resumed from a degraded snapshot: the dead ranks' unexchanged samples
	// are gone). Per-epoch iteration counts then come from a group-min over
	// the actual stores instead of the static N/M floor. The root's
	// admission message propagates the flag to joiners so every member runs
	// the same collectives.
	shortData bool

	// Closed-loop controller state (DESIGN.md §16). ctrl owns the Q
	// trajectory (nil unless cfg.AutoQ); every rank holds one so survivors
	// and joiners can adopt the running Q without re-deriving it, but only
	// the group root Decides. ctrlQ/ctrlReason mirror the fraction the next
	// Scheduling will plan with and the decision that set it (QSchedule
	// replays stamp reason "schedule"). globalHist is the dataset's global
	// label distribution, fixed at construction; obsSkew/obsComm are the
	// epoch's deterministic observations (label-exposure total variation
	// and the modeled exchange/compute cost ratio) the control gather
	// ships to the root. cm is the controller's telemetry bundle.
	ctrl             *control.Controller
	ctrlQ            float64
	ctrlReason       string
	globalHist       []float64
	obsSkew, obsComm float64
	cm               *telemetry.ControllerMetrics
}

func newWorker(c *mpi.Comm, cfg Config, sched nn.Schedule, parts [][]int, pfs *store.PFS, rs *resumeState) (*worker, error) {
	// Same init seed on every rank: identical starting weights. Dropout
	// streams differ per rank.
	model, err := cfg.Model.Build(cfg.Seed, cfg.Seed+uint64(1000+c.Rank()))
	if err != nil {
		return nil, err
	}
	if cfg.WarmStart != nil {
		nn.CopyWeights(model.Params(), cfg.WarmStart)
	}
	w := &worker{
		cfg:           cfg,
		sched:         sched,
		comm:          c,
		model:         model,
		params:        model.Params(),
		pfs:           pfs,
		exchEpoch:     -1,
		assignedGroup: -1,
		joinedEpoch:   -1,
		arena:         arena.New(0),
	}
	w.model.SetArena(w.arena)
	w.loss.SetArena(w.arena)
	if cfg.ImportanceSampling {
		w.lossByID = make(map[int]float64)
	}
	if cfg.FullSyncBatchNorm {
		for _, layer := range model.Layers {
			if bn, ok := layer.(*nn.BatchNorm); ok {
				bn.Sync = func(stats []float32) {
					mpi.Allreduce(c, stats, mpi.OpSum)
				}
			}
		}
	}
	if cfg.OverlapGrads {
		w.setupOverlap()
	}
	w.opt = newOptimizer(cfg)
	if cfg.Strategy.Kind == shuffle.Corgi2 {
		w.tier, err = cache.New(cfg.ShardStore, cfg.CacheBytes, "")
		if err != nil {
			return nil, err
		}
		// Window size: half the budget in shards, so the next window can
		// prefetch while the current one is pinned; 0 = whole assignment in
		// one window (unlimited cache).
		if cfg.CacheBytes > 0 {
			w.corgiWindow = int(cfg.CacheBytes / (2 * cfg.ShardStore.Manifest().MaxShardBytes()))
			if w.corgiWindow < 1 {
				w.corgiWindow = 1
			}
		}
	} else if cfg.Strategy.Kind != shuffle.Global {
		w.local = store.NewLocal(cfg.LocalCapacityBytes)
		// A resumed rank restores the sample set its snapshot recorded (the
		// exchange has moved samples since the initial partition); a joiner
		// (nil parts, nil rs) starts empty and receives its share through
		// the post-admission rebalance.
		var stage []int
		switch {
		case rs != nil:
			ids, err := decodeIDs(rs.sections["store"])
			if err != nil {
				return nil, fmt.Errorf("restoring stored sample set: %w", err)
			}
			stage = ids
		case parts != nil:
			stage = parts[c.Rank()]
		}
		for _, id := range stage {
			s, err := pfs.Read(id)
			if err != nil {
				return nil, err
			}
			if err := w.local.Put(s); err != nil {
				return nil, fmt.Errorf("staging initial partition: %w", err)
			}
		}
		if cfg.Strategy.Kind == shuffle.PartialLocal {
			w.exchanger, err = shuffle.NewScheduler(c, w.local, cfg.Strategy.Q, len(cfg.Dataset.Train), cfg.Seed)
			if err != nil {
				return nil, err
			}
			if cfg.ExchangeGroupSize > 0 {
				if err := w.exchanger.UseHierarchical(cfg.ExchangeGroupSize); err != nil {
					return nil, err
				}
			}
			if cfg.OnPeerFail == "degrade" {
				w.exchanger.SetDegradeOnPeerFailure(true)
			}
			enc, err := data.ParseEncoding(cfg.SampleEncoding)
			if err != nil {
				return nil, err
			}
			if err := w.exchanger.SetSampleEncoding(enc); err != nil {
				return nil, err
			}
			if cfg.WireDedup {
				budget := cfg.WireDedupBudget
				if budget == 0 {
					budget = DefaultWireDedupBudget
				}
				if err := w.exchanger.SetWireDedup(budget); err != nil {
					return nil, err
				}
			}
			if cfg.AutoQ {
				if err := w.initController(); err != nil {
					return nil, err
				}
			} else if len(cfg.QSchedule) > 0 {
				// Open-loop replay: the trajectory is the schedule itself;
				// epoch 0's value applies before the first Scheduling.
				w.ctrlQ, w.ctrlReason = cfg.QSchedule[0], ReasonSchedule
				if err := w.exchanger.SetQ(w.ctrlQ); err != nil {
					return nil, err
				}
			}
		}
	}
	if rs != nil {
		if err := w.applyResume(rs); err != nil {
			return nil, err
		}
	}
	if cfg.Telemetry != nil {
		w.registerTelemetry(cfg.Telemetry)
	}
	return w, nil
}

// newOptimizer builds the configured update rule. The recovery path re-runs
// it after a group re-formation: re-created state (zeroed momentum) is the
// one optimizer state every survivor can agree on without shipping buffers.
func newOptimizer(cfg Config) nn.Optimizer {
	switch {
	case cfg.Optimizer == "lamb":
		return nn.NewLAMB(cfg.WeightDecay)
	case cfg.Optimizer == "lars" || (cfg.Optimizer == "" && cfg.UseLARS):
		eta := cfg.LARSEta
		if eta == 0 {
			eta = 0.01
		}
		return nn.NewLARS(cfg.Momentum, cfg.WeightDecay, eta)
	default:
		return nn.NewSGD(cfg.Momentum, cfg.WeightDecay)
	}
}

// setupOverlap builds the bucketed gradient-sync state: the reverse-layer
// bucket plan, the full flat gradient buffer, and each bucket's ring-chunk
// bounds. Bucket i's bounds are the GLOBAL flat partition (chunk r =
// [r·n/M, (r+1)·n/M) over all n parameters) clamped to the bucket's
// [Lo, Hi) range and re-based — so every element keeps the chunk index it
// has under the flat single-Allreduce path, and with it the exact
// reduction order (see mpi.IAllreduceChunks). Chunks outside the bucket
// clamp to empty and the ring skips them symmetrically.
func (w *worker) setupOverlap() {
	w.plan = nn.NewBucketPlan(w.model, w.cfg.GradBucketBytes)
	w.gradBuf = make([]float32, w.plan.NumEl)
	w.bucketReqs = make([]*mpi.CollRequest, len(w.plan.Buckets))
	// Group size, not world size: after a degrade-mode Shrink the bucket
	// rings run over the survivors, and IAllreduceChunks requires bounds
	// sized to the collective group. The recovery path re-runs setupOverlap.
	size := w.comm.GroupSize()
	global := make([]int, size+1)
	for i := 0; i <= size; i++ {
		global[i] = i * w.plan.NumEl / size
	}
	w.bucketBounds = make([][]int, len(w.plan.Buckets))
	for bi, b := range w.plan.Buckets {
		bounds := make([]int, size+1)
		for i := 0; i <= size; i++ {
			g := global[i]
			if g < b.Lo {
				g = b.Lo
			}
			if g > b.Hi {
				g = b.Hi
			}
			bounds[i] = g - b.Lo
		}
		w.bucketBounds[bi] = bounds
	}
	w.bucketHook = w.launchReadyBuckets
}

// launchReadyBuckets is the Sequential.BackwardWithHook callback: when
// backward completes a layer that closes one or more buckets, it flattens
// just those buckets' gradients and launches their non-blocking
// all-reduces. It runs on the backward critical path, so it only copies
// and launches; the rings progress on their own goroutines while earlier
// layers keep computing.
func (w *worker) launchReadyBuckets(layer int) {
	launched := false
	for _, bi := range w.plan.ReadyAt(layer) {
		b := w.plan.Buckets[bi]
		nn.FlattenGradsRange(w.params, w.gradBuf, b.FirstParam, b.LastParam, b.Lo)
		w.bucketReqs[bi] = mpi.IAllreduceChunks(w.comm, w.gradBuf[b.Lo:b.Hi], mpi.OpSum, w.bucketBounds[bi])
		launched = true
	}
	if launched {
		// Give in-flight rings a scheduling slot at each bucket boundary.
		// Backward's layer kernels have no yield points, so on oversubscribed
		// or single-P runtimes a launched ring could otherwise starve until
		// the drain — exactly the exposure this path exists to remove. The
		// yield is nanoseconds when there is nothing runnable.
		runtime.Gosched()
	}
}

// drainBuckets completes the overlapped GEWU phase: wait for each bucket's
// all-reduce in launch order, average, scatter the reduced gradients back,
// and step just that bucket's parameters (Optimizer.StepPartial), so the
// weight update of early buckets overlaps the still-in-flight later ones.
// Exposed wait, total in-flight time, and exact wire bytes are accounted
// per bucket.
func (w *worker) drainBuckets(es *EpochStats, lr float32) {
	inv := 1 / float32(w.comm.GroupSize())
	for bi, req := range w.bucketReqs {
		b := w.plan.Buckets[bi]
		tw := time.Now()
		req.Wait()
		wait := time.Since(tw)
		es.GEWUWaitTime += wait
		es.GEWUCommTime += req.Elapsed()
		sent, recv := req.WireBytes()
		es.GradWireBytes += sent + recv
		if w.tm != nil {
			w.tm.GEWUWaitNs.Add(int64(wait))
			w.tm.GEWUCommNs.Add(int64(req.Elapsed()))
			w.tm.GradWireBytes.Add(sent + recv)
		}
		seg := w.gradBuf[b.Lo:b.Hi]
		for i := range seg {
			seg[i] *= inv
		}
		nn.UnflattenGradsRange(w.params, w.gradBuf, b.FirstParam, b.LastParam, b.Lo)
		w.opt.StepPartial(w.params, b.FirstParam, b.LastParam, lr)
		w.bucketReqs[bi] = nil
	}
}

func (w *worker) train() ([]EpochStats, error) {
	stats := make([]EpochStats, 0, w.cfg.Epochs)
	for epoch := w.startEpoch; epoch < w.cfg.Epochs; epoch++ {
		// Elastic worlds admit rendezvoused joiners at the epoch boundary —
		// a quiescent point: no exchange window open, no collective in
		// flight — so the grown group runs this whole epoch together.
		if w.cfg.Elastic && epoch != w.joinedEpoch {
			if err := w.admitJoiners(epoch); err != nil {
				return nil, fmt.Errorf("admitting joiners before epoch %d: %w", epoch, err)
			}
		}
		es := EpochStats{Epoch: epoch}
		// The whole per-epoch block runs under a Guard: in degrade mode a
		// peer death unwinds the current collective on every survivor
		// (mpi.collWait) and surfaces here as a typed error instead of
		// killing the rank — the transaction boundary at which the group
		// re-forms.
		err := w.comm.Guard(func() error {
			if err := w.runEpoch(epoch, &es); err != nil {
				return err
			}
			if w.cfg.SyncBatchNormStats {
				w.syncBatchNormStats()
			}
			tv := time.Now()
			es.ValAcc = w.validate()
			w.emitTrace(epoch, es, time.Since(tv))
			return nil
		})
		trained := err == nil
		if err == nil {
			stats = append(stats, es)
			// The controller retunes Q at this boundary — after the epoch's
			// collectives settle, BEFORE the snapshot — so the checkpoint
			// already carries the next epoch's decided fraction and a resume
			// replays the trajectory bitwise (DESIGN.md §16). It runs at the
			// FINAL boundary too: a run stopped at Epochs=k and resumed must
			// see the same decision the uninterrupted run made there. A peer
			// death during the gather or broadcast funnels into the same
			// recovery as a mid-epoch one.
			if w.ctrl != nil {
				if cerr := w.comm.Guard(func() error { return w.controllerStep(epoch) }); cerr != nil {
					err = fmt.Errorf("controller step after epoch %d: %w", epoch, cerr)
				}
			}
		}
		if err == nil {
			// Snapshot AFTER the epoch's collectives settle: every rank
			// reaches this point at the same step, so all ranks snapshot the
			// same state. A peer may still die while the boundary drains (a
			// slow rank can sit in the commit barrier while a fast one is
			// already deep in the next epoch's exchange); in degrade mode
			// that death funnels into the same recovery as a mid-epoch one.
			if w.checkpointDue(epoch + 1) {
				if cerr := w.comm.Guard(func() error { return w.saveCheckpoint(epoch + 1) }); cerr != nil {
					err = fmt.Errorf("checkpoint before epoch %d: %w", epoch+1, cerr)
				}
			}
		}
		if err != nil {
			pe, isPeer := mpi.PeerErrorFrom(err)
			if !isPeer || w.cfg.OnPeerFail != "degrade" {
				return nil, err // abort policy (or a non-failure error)
			}
			resume, rerr := w.recoverPeerFailure(epoch, pe, &es)
			if rerr != nil {
				return nil, fmt.Errorf("recovering from death of rank %d: %w", pe.Rank, rerr)
			}
			if !trained {
				es.Disrupted = true
				w.emitTrace(epoch, es, 0)
				stats = append(stats, es)
			}
			// A failure straddling an epoch boundary can leave part of the
			// group one epoch ahead; the resume point skips past the
			// furthest progress so no epoch (and no exchange tag space) is
			// ever re-entered.
			for skip := epoch + 1; skip < resume && skip < w.cfg.Epochs; skip++ {
				stats = append(stats, EpochStats{Epoch: skip, Skipped: true,
					DegradedSlots: es.DegradedSlots, EffectiveQ: es.EffectiveQ})
			}
			epoch = resume - 1
			// Every recovery of a checkpointing run commits a post-shrink
			// snapshot at the agreed resume boundary: the degraded group is
			// durably recorded the moment it forms (a resume restores the
			// shrunken partition, never the pre-failure one), and a snapshot
			// generation interrupted by the death — whichever protocol step
			// it reached — is superseded by a complete one. All survivors
			// reach here with the same resume point, whether the failure
			// surfaced in their epoch or in their checkpoint barrier.
			if w.cfg.CheckpointDir != "" && resume <= w.cfg.Epochs {
				if cerr := w.checkpointAfterRecovery(resume); cerr != nil {
					return nil, cerr
				}
			}
			continue
		}
	}
	return stats, nil
}

// checkpointAfterRecovery commits the post-shrink snapshot, riding out
// further deaths with bounded retries: each failed attempt re-forms the
// group (the generation bump re-salts the checkpoint tag, so a retry can
// never gather a stale report from the failed attempt) and tries again.
func (w *worker) checkpointAfterRecovery(resume int) error {
	const maxAttempts = 4
	for attempt := 0; ; attempt++ {
		err := w.comm.Guard(func() error { return w.saveCheckpoint(resume) })
		if err == nil {
			return nil
		}
		pe, isPeer := mpi.PeerErrorFrom(err)
		if !isPeer || attempt == maxAttempts-1 {
			return fmt.Errorf("post-recovery checkpoint before epoch %d: %w", resume, err)
		}
		var es EpochStats
		if _, rerr := w.recoverPeerFailure(resume-1, pe, &es); rerr != nil {
			return fmt.Errorf("recovering from death of rank %d during post-recovery checkpoint: %w", pe.Rank, rerr)
		}
	}
}

// emitTrace records the epoch's phase durations and byte volumes.
func (w *worker) emitTrace(epoch int, es EpochStats, valTime time.Duration) {
	rec := w.cfg.Trace
	if rec == nil {
		return
	}
	rank := w.comm.Rank()
	// On a wire backend the exchange event carries the measured number of
	// bytes that actually crossed the network; on inproc it carries the
	// simulated volume (Sample.Bytes), preserving the modeling semantics.
	exchangeBytes := es.ExchangeBytes
	if es.ExchangeWireBytes > 0 {
		exchangeBytes = es.ExchangeWireBytes
	}
	rec.Record(trace.Event{Rank: rank, Epoch: epoch, Phase: trace.PhaseIO,
		Duration: es.IOTime, Bytes: es.LocalReadBytes + es.PFSReadBytes})
	rec.Record(trace.Event{Rank: rank, Epoch: epoch, Phase: trace.PhaseExchange,
		Duration: es.ExchangeTime, Bytes: exchangeBytes})
	rec.Record(trace.Event{Rank: rank, Epoch: epoch, Phase: trace.PhaseFWBW,
		Duration: es.FWBWTime})
	// The GEWU event carries the gradient all-reduce's exact wire volume
	// (zero on inproc): bucket rings overlap with backward compute, so only
	// frame-level accounting (mpi.CollRequest.WireBytes / AllreduceWire)
	// can attribute the traffic to this phase.
	rec.Record(trace.Event{Rank: rank, Epoch: epoch, Phase: trace.PhaseGEWU,
		Duration: es.GEWUTime, Bytes: es.GradWireBytes})
	rec.Record(trace.Event{Rank: rank, Epoch: epoch, Phase: trace.PhaseValidate,
		Duration: valTime})
	if es.DegradedSlots > 0 || es.Disrupted {
		rec.Record(trace.Event{Rank: rank, Epoch: epoch, Phase: trace.PhaseDegraded,
			Bytes: int64(es.DegradedSlots), EffectiveQ: es.EffectiveQ})
	}
}

// finishExchange completes the open epoch's exchange: Synchronize, record
// the epoch's volumes and degradation, apply the storage swap, and close
// the Scheduling…CleanLocalStorage window. It is pure point-to-point work —
// the recovery path calls it too, after the survivors have agreed that
// every one of them reached this epoch's exchange.
func (w *worker) finishExchange(es *EpochStats) error {
	if err := w.exchanger.Synchronize(); err != nil {
		return err
	}
	// On a wire backend, record the exchange's true network volume (exact
	// frame sizes; the traffic itself overlaps with compute, so transport
	// counter deltas cannot attribute it to this phase).
	if w.comm.Transport().Stats().Wire {
		sent, recv := w.exchanger.WireTraffic()
		es.ExchangeWireBytes += sent + recv
	}
	for _, s := range w.exchanger.Received() {
		es.ExchangeBytes += s.Bytes
	}
	hits, saved := w.exchanger.DedupStats()
	es.DedupHits += hits
	es.DedupBytesSaved += saved
	ds, dr := w.exchanger.DegradedSlots()
	es.DegradedSlots = ds + dr
	es.EffectiveQ = w.exchanger.EffectiveQ()
	if err := w.exchanger.CleanLocalStorage(); err != nil {
		return err
	}
	w.exchEpoch = -1
	return nil
}

// recoverPeerFailure re-forms the world around the dead peer(s) and returns
// the epoch at which every survivor resumes. It runs on every survivor —
// the failure registry unwinds the same collective on each of them (they
// are at most ONE collective apart, because every trainer collective is a
// ring that cannot complete without all members) — and performs, in
// lock-step:
//
//  1. Drain any in-flight gradient buckets (their rings unwind on the
//     failure registry; waiting here is what keeps the no-leaked-goroutine
//     guarantee).
//  2. Shrink the collective group to the survivors and realign the
//     collective sequence counter to a generation-salted base every
//     survivor derives locally, so stale frames from the sacrificed
//     collective can never alias a future tag.
//  3. Reconcile over the shrunken group (one AllgatherVarLen): each
//     survivor shares its current epoch and its known-dead set. If the
//     dead sets disagree (a survivor learned of the death late), everyone
//     adopts the union and repeats with the next generation.
//  4. Resolve the disrupted epoch's exchange: if every survivor had opened
//     it, complete it (Synchronize + CleanLocalStorage — the no-lost/no-dup
//     invariant's normal path); if some survivor never entered the epoch,
//     the ranks that did ABANDON it (Scheduler.Reset — the store is
//     untouched, so their unreceived sends stay conserved at the sender)
//     and the resume point skips past it so its tag space is never
//     re-entered.
//  5. Re-synchronize state: broadcast weights from the lowest surviving
//     rank (survivors can be one gradient step apart), reset optimizer
//     state (zeroed momentum is the
//     one state all survivors agree on without shipping buffers), and
//     rebuild the overlap bucket bounds for the new group size.
func (w *worker) recoverPeerFailure(epoch int, first *transport.PeerError, es *EpochStats) (resume int, err error) {
	// Step 1: settle in-flight bucket all-reduces. Each either completed
	// before the death or unwinds on the failure registry; both are fine.
	for bi, req := range w.bucketReqs {
		if req == nil {
			continue
		}
		r := req
		_ = w.comm.Guard(func() error { r.Wait(); return nil })
		w.bucketReqs[bi] = nil
	}

	// Steps 2-3: shrink + reconcile, repeating if the death sets disagree
	// or another peer dies during the reconciliation itself.
	const maxGenerations = 4
	var gathered [][]int
	for attempt := 0; ; attempt++ {
		if attempt == maxGenerations {
			return 0, fmt.Errorf("reconciliation did not converge after %d generations", maxGenerations)
		}
		dead := w.comm.FailedPeers()
		live := subtractSorted(w.comm.GroupRanks(), dead)
		if len(live) == 0 {
			return 0, fmt.Errorf("no survivors")
		}
		if err := w.comm.Shrink(live); err != nil {
			return 0, err
		}
		w.generation++
		base := w.generation << 32
		if base <= w.comm.CollSeq() {
			return 0, fmt.Errorf("collective sequence space exhausted (seq %d)", w.comm.CollSeq())
		}
		w.comm.SetCollSeq(base)
		var g [][]int
		gerr := w.comm.Guard(func() error {
			g = mpi.AllgatherVarLen(w.comm, append([]int{epoch}, dead...))
			return nil
		})
		if gerr != nil {
			continue // another death mid-reconciliation: next generation
		}
		union := append([]int(nil), dead...)
		agreed := true
		for _, r := range live {
			union = unionSorted(union, g[r][1:])
		}
		for _, r := range live {
			if !equalInts(g[r][1:], union) {
				agreed = false
			}
		}
		if !agreed {
			// Adopt the union and repeat — every survivor sees the same
			// gathered sets, so every survivor repeats with the same
			// generation counter.
			for _, dr := range union {
				if w.comm.PeerFailure(dr) == nil {
					w.comm.NotePeerFailure(transport.PeerError{Rank: dr, Phase: "reconciliation"})
				}
			}
			continue
		}
		gathered = g
		break
	}

	// Step 4: resolve the disrupted epoch's exchange and the resume point.
	minCur, maxCur := epoch, epoch
	for _, r := range w.comm.GroupRanks() {
		if c := gathered[r][0]; c < minCur {
			minCur = c
		} else if c > maxCur {
			maxCur = c
		}
	}
	if maxCur-minCur > 1 {
		return 0, fmt.Errorf("survivors diverged by %d epochs (min %d, max %d)", maxCur-minCur, minCur, maxCur)
	}
	resume = maxCur + 1
	if w.exchEpoch >= 0 {
		if epoch == minCur {
			// Everyone reached this epoch's exchange (ranks further along
			// completed it already): finish it properly so sent samples
			// commit and received ones are saved.
			if ferr := w.finishExchange(es); ferr != nil {
				return 0, ferr
			}
		} else {
			// Some survivor never opened this epoch: abandon it. The store
			// is untouched (no sample was deleted), so what we sent and
			// they never received survives here — conserved, not duplicated
			// (their copies rot undecoded in the mailbox; the epoch's tag
			// is never used again because resume skips past it).
			ds, dr := w.exchanger.DegradedSlots()
			es.DegradedSlots = ds + dr
			es.EffectiveQ = w.exchanger.EffectiveQ()
			w.exchanger.Reset()
			w.exchEpoch = -1
		}
	} else if w.exchanger != nil {
		ds, dr := w.exchanger.DegradedSlots()
		es.DegradedSlots = ds + dr
		es.EffectiveQ = w.exchanger.EffectiveQ()
	}
	if w.exchanger != nil {
		// The pair dedup caches are pure functions of each pair's delivered
		// frame stream, and a recovery leaves different survivors at
		// different points in that stream (some completed the disrupted
		// epoch's exchange, some abandoned it). Every survivor drops its
		// dedup state to the shared empty state; the caches rebuild from
		// live traffic in the next epoch.
		w.exchanger.InvalidateDedup()
	}

	// Step 5: re-synchronize replica state across the survivors. They are
	// at most one applied gradient step apart; the lowest survivor's
	// weights win.
	// Batch-norm RUNNING statistics are deliberately left alone: they are
	// per-worker by design (the paper's central mechanism) and were never
	// synchronized, so they carry no cross-rank consistency requirement.
	root := w.comm.GroupRanks()[0]
	for _, p := range w.params {
		mpi.Bcast(w.comm, p.W, root)
	}
	if w.ctrl != nil {
		// The controller trajectory survives the shrink: the new root's Q
		// wins (survivors can be one decision apart if the death struck
		// inside the control broadcast), and the non-domination threshold
		// moves with the smaller world. SetQ is legal here — recovery left
		// the exchange window closed (finishExchange or Reset above).
		qbuf := []float64{w.ctrl.Q()}
		mpi.Bcast(w.comm, qbuf, root)
		w.ctrl.Adopt(qbuf[0])
		w.ctrl.SetWorld(w.comm.GroupSize())
		if serr := w.exchanger.SetQ(qbuf[0]); serr != nil {
			return 0, serr
		}
		w.ctrlQ = qbuf[0]
		if w.cm != nil {
			w.cm.Q.Set(w.ctrlQ) // adoption, not a decision: gauge only
		}
	}
	w.opt = newOptimizer(w.cfg)
	if w.cfg.OverlapGrads {
		w.setupOverlap()
	}
	if w.tm != nil {
		w.tm.WorldSize.SetInt(int64(w.comm.GroupSize()))
		w.tm.Generation.SetInt(int64(w.generation))
	}
	return resume, nil
}

// subtractSorted returns a minus b; both must be sorted ascending.
func subtractSorted(a, b []int) []int {
	out := a[:0:0]
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// unionSorted merges two sorted ascending slices without duplicates.
func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// syncBatchNormStats averages every BatchNorm layer's running mean and
// variance across all workers (one allreduce over the concatenated
// statistics).
func (w *worker) syncBatchNormStats() {
	var stats []float32
	var layers []*nn.BatchNorm
	for _, l := range w.model.Layers {
		if bn, ok := l.(*nn.BatchNorm); ok {
			layers = append(layers, bn)
			stats = append(stats, bn.RunMean...)
			stats = append(stats, bn.RunVar...)
		}
	}
	if len(layers) == 0 {
		return
	}
	mpi.Allreduce(w.comm, stats, mpi.OpSum)
	inv := 1 / float32(w.comm.GroupSize())
	off := 0
	for _, bn := range layers {
		for j := range bn.RunMean {
			bn.RunMean[j] = stats[off+j] * inv
		}
		off += len(bn.RunMean)
		for j := range bn.RunVar {
			bn.RunVar[j] = stats[off+j] * inv
		}
		off += len(bn.RunVar)
	}
}

// epochIDs returns the sample IDs this worker trains on this epoch, in
// iteration order.
func (w *worker) epochIDs(epoch int) ([]int, error) {
	if w.cfg.Strategy.Kind == shuffle.Global {
		parts, err := shuffle.GlobalEpochPartition(len(w.cfg.Dataset.Train), w.comm.Size(), w.cfg.Seed, epoch)
		if err != nil {
			return nil, err
		}
		if w.lossByID != nil {
			return shuffle.WeightedOrder(parts[w.comm.Rank()], w.lossByID, w.cfg.Seed, epoch, w.comm.Rank()), nil
		}
		return parts[w.comm.Rank()], nil
	}
	if w.lossByID != nil {
		return shuffle.WeightedOrder(w.local.IDs(), w.lossByID, w.cfg.Seed, epoch, w.comm.Rank()), nil
	}
	return shuffle.EpochOrder(w.local.IDs(), w.cfg.Seed, epoch, w.comm.Rank()), nil
}

func (w *worker) readSample(id int, es *EpochStats) (data.Sample, error) {
	if w.cfg.Strategy.Kind == shuffle.Global {
		s, err := w.pfs.Read(id)
		if err == nil {
			es.PFSReadBytes += s.Bytes
		}
		return s, err
	}
	s, err := w.local.Get(id)
	if err == nil {
		es.LocalReadBytes += s.Bytes
	}
	return s, err
}

func (w *worker) runEpoch(epoch int, es *EpochStats) error {
	// Iteration count and effective batch are derived from the GLOBAL
	// shape (drop-last semantics): every rank must execute the same number
	// of collectives per epoch, even when N is not divisible by M and
	// local counts differ by one.
	b := w.cfg.BatchSize
	var ids []int
	var minLocal int
	if w.cfg.Strategy.Kind == shuffle.Corgi2 {
		var err error
		if minLocal, err = w.beginCorgiEpoch(epoch); err != nil {
			return err
		}
		defer func() {
			if w.stream != nil {
				w.stream.Close()
				w.stream = nil
			}
		}()
	} else {
		var err error
		if ids, err = w.epochIDs(epoch); err != nil {
			return err
		}
		minLocal = len(w.cfg.Dataset.Train) / w.comm.Size()
	}
	if w.comm.GroupSize() < w.comm.Size() || w.shortData {
		// Degraded world (or one resumed from a degraded snapshot): the dead
		// ranks' unexchanged samples are gone, so stores can dip below N/M
		// (retention and forfeiture also skew them independently). The
		// members agree on the smallest store with one group-min all-reduce
		// — same iteration count everywhere, and no rank slices past its own
		// sample list.
		buf := []int{len(ids)}
		mpi.Allreduce(w.comm, buf, mpi.OpMin)
		if buf[0] < minLocal {
			minLocal = buf[0]
		}
		if minLocal == 0 {
			return fmt.Errorf("epoch %d: a surviving rank has no local samples left", epoch)
		}
	}
	if b > minLocal {
		b = minLocal
	}
	iters := minLocal / b

	// Plan this epoch's exchange and derive the per-iteration chunk
	// (Q·b samples per iteration, Section III-C).
	chunk := 0
	if w.exchanger != nil {
		if sch := w.cfg.QSchedule; len(sch) > 0 {
			// Open-loop replay: pin this epoch's fraction from the schedule
			// before planning (past the end, the last entry holds).
			idx := epoch
			if idx >= len(sch) {
				idx = len(sch) - 1
			}
			if err := w.exchanger.SetQ(sch[idx]); err != nil {
				return err
			}
			w.ctrlQ, w.ctrlReason = sch[idx], ReasonSchedule
			if w.cm != nil {
				w.cm.Note(w.ctrlQ, w.ctrlReason)
			}
		}
		if w.lossByID != nil {
			w.exchanger.SetSendPriority(w.lossByID)
		}
		if err := w.exchanger.Scheduling(epoch); err != nil {
			return err
		}
		w.exchEpoch = epoch
		chunk = (w.exchanger.Slots() + iters - 1) / iters
		if w.ctrl != nil || len(w.cfg.QSchedule) > 0 {
			// The fraction this epoch actually planned with — the controller
			// (or schedule) trajectory the stats and telemetry expose.
			es.ControllerQ, es.ControllerReason = w.ctrlQ, w.ctrlReason
		}
	}

	lr := w.sched.LR(float64(epoch))
	if w.tm != nil {
		w.tm.Epoch.SetInt(int64(epoch))
	}
	var lossSum float64
	for it := 0; it < iters; it++ {
		if w.cfg.testIterHook != nil {
			if err := w.cfg.testIterHook(epoch, it); err != nil {
				return err
			}
		}
		if w.tm != nil {
			w.tm.Iteration.SetInt(int64(it))
		}
		// Phase: I/O — assemble the mini-batch from storage (the in-memory
		// stores, or the cache-tier stream under Corgi2).
		t0 := time.Now()
		var batch []int
		if w.stream != nil {
			if err := w.loadBatchStream(b, es); err != nil {
				return fmt.Errorf("epoch %d iteration %d: %w", epoch, it, err)
			}
		} else {
			batch = ids[it*b : (it+1)*b]
			if err := w.loadBatch(batch, es); err != nil {
				return fmt.Errorf("epoch %d iteration %d: %w", epoch, it, err)
			}
		}
		d := time.Since(t0)
		es.IOTime += d
		if w.tm != nil {
			w.tm.IONs.Add(int64(d))
			w.tm.Samples.Add(int64(b))
		}

		// Phase: overlapped sample exchange (post this iteration's chunk).
		if w.exchanger != nil && chunk > 0 {
			t0 = time.Now()
			if _, err := w.exchanger.Communicate(chunk); err != nil {
				return err
			}
			d = time.Since(t0)
			es.ExchangeTime += d
			if w.tm != nil {
				w.tm.ExchangeNs.Add(int64(d))
			}
		}

		// Phase: forward + backward. With OverlapGrads the backward pass
		// launches each gradient bucket's non-blocking all-reduce as soon as
		// its last layer's gradients land (Figure 4's overlap discipline,
		// applied to the gradient exchange): the bucket rings progress on
		// background goroutines while the earlier layers keep computing.
		t0 = time.Now()
		// Reclaim the previous step's activation workspaces wholesale.
		// Nothing arena-backed is live across this boundary: the last
		// iteration's outputs, gradients-of-activations, and loss buffers
		// are all dead once its optimizer step ran.
		w.arena.Reset()
		logits := w.model.Forward(w.xBuf, true)
		lossSum += w.loss.Forward(logits, w.yBuf)
		if w.lossByID != nil {
			for bi, l := range w.loss.PerSample() {
				w.lossByID[batch[bi]] = l
			}
		}
		w.model.BackwardWithHook(w.loss.Backward(), w.bucketHook)
		d = time.Since(t0)
		es.FWBWTime += d
		if w.tm != nil {
			w.tm.FWBWNs.Add(int64(d))
		}

		// Phase: gradient exchange + weight update (Equation 1: average
		// the per-worker gradients, then step). Overlapped: drain the
		// bucket requests in launch order, averaging and stepping
		// per-bucket. Flat fallback: one blocking ring over the whole
		// buffer (exposed wait == total comm, the A/B baseline).
		t0 = time.Now()
		if w.plan != nil {
			w.drainBuckets(es, lr)
		} else {
			w.gradBuf = nn.FlattenGrads(w.params, w.gradBuf)
			tw := time.Now()
			sent, recv := mpi.AllreduceWire(w.comm, w.gradBuf, mpi.OpSum)
			dw := time.Since(tw)
			es.GEWUWaitTime += dw
			es.GEWUCommTime += dw
			es.GradWireBytes += sent + recv
			if w.tm != nil {
				w.tm.GEWUWaitNs.Add(int64(dw))
				w.tm.GEWUCommNs.Add(int64(dw))
				w.tm.GradWireBytes.Add(sent + recv)
			}
			inv := 1 / float32(w.comm.GroupSize())
			for i := range w.gradBuf {
				w.gradBuf[i] *= inv
			}
			nn.UnflattenGrads(w.params, w.gradBuf)
			w.opt.Step(w.params, lr)
		}
		d = time.Since(t0)
		es.GEWUTime += d
		if w.tm != nil {
			w.tm.GEWUNs.Add(int64(d))
		}
	}

	// Epoch boundary: finish the exchange and swap storage.
	if w.exchanger != nil {
		t0 := time.Now()
		if err := w.finishExchange(es); err != nil {
			return err
		}
		d := time.Since(t0)
		es.ExchangeTime += d
		if w.tm != nil {
			w.tm.ExchangeNs.Add(int64(d))
		}
	}
	if w.ctrl != nil {
		// Record the epoch's deterministic controller observations now that
		// the exchange volumes are final; the control gather at the epoch
		// boundary ships them to the root.
		w.observeEpoch(ids[:iters*b], es)
	}
	if w.stream != nil {
		w.stream.Close()
		w.stream = nil
		// The epoch's PFS traffic is the tier's cumulative delta (real file
		// bytes — the misses plus prefetches this epoch actually paid for).
		st := w.tier.Stats()
		es.PFSReadBytes += st.PFSReadBytes - w.pfsAccounted
		w.pfsAccounted = st.PFSReadBytes
		// Warm the next epoch's first window behind validation — the
		// storage-tier analogue of the Figure 4 overlap. Only within the
		// same epoch group: a group boundary reassigns shards anyway.
		if next := epoch + 1; next < w.cfg.Epochs && w.cfg.Strategy.EpochGroup(next) == w.assignedGroup {
			plan := shuffle.Corgi2EpochPlan(w.assigned, w.cfg.ShardStore.Manifest().ShardSamples,
				w.corgiWindow, w.cfg.Seed, next, w.comm.Rank())
			if len(plan.Windows) > 0 {
				w.tier.Prefetch(plan.Windows[0])
			}
		}
	}

	// Average the reported loss across workers so every rank logs the
	// same curve.
	buf := []float64{lossSum / float64(iters)}
	mpi.Allreduce(w.comm, buf, mpi.OpSum)
	es.TrainLoss = buf[0] / float64(w.comm.GroupSize())
	return nil
}

// beginCorgiEpoch derives the epoch's shard assignment and read plan and
// opens the cache-tier stream. It returns the iteration floor: the minimum
// over ranks of assigned-sample totals, which every rank computes locally
// from the shared-seed assignment (no communication) so all ranks agree on
// the epoch's collective count.
func (w *worker) beginCorgiEpoch(epoch int) (int, error) {
	man := w.cfg.ShardStore.Manifest()
	group := w.cfg.Strategy.EpochGroup(epoch)
	if group != w.assignedGroup {
		assign, err := shuffle.Corgi2Assign(man.NumShards, w.comm.Size(), w.cfg.Seed, group)
		if err != nil {
			return 0, err
		}
		w.assigned = assign[w.comm.Rank()]
		w.assignedGroup = group
		w.corgiMinLocal = 0
		for r, shards := range assign {
			total := 0
			for _, sh := range shards {
				total += man.ShardSamples(sh)
			}
			if r == 0 || total < w.corgiMinLocal {
				w.corgiMinLocal = total
			}
		}
	}
	plan := shuffle.Corgi2EpochPlan(w.assigned, man.ShardSamples, w.corgiWindow, w.cfg.Seed, epoch, w.comm.Rank())
	stream, err := w.tier.OpenEpoch(plan.Windows, plan.Bounds, plan.Order)
	if err != nil {
		return 0, err
	}
	w.stream = stream
	return w.corgiMinLocal, nil
}

// loadBatchStream fills the reusable batch tensors from the cache-tier
// stream: features land directly in the batch tensor's rows (ReadInto, one
// copy, zero allocations in steady state).
func (w *worker) loadBatchStream(n int, es *EpochStats) error {
	dim := w.cfg.Dataset.FeatureDim
	if w.xBuf == nil || w.xBuf.Rows != n {
		w.xBuf = tensor.New(n, dim)
		w.yBuf = make([]int, n)
	}
	for i := 0; i < n; i++ {
		_, label, sim, err := w.stream.ReadInto(w.xBuf.Row(i))
		if err != nil {
			return err
		}
		w.yBuf[i] = label
		es.LocalReadBytes += sim
	}
	return nil
}

// loadBatch fills the reusable batch tensors from storage.
func (w *worker) loadBatch(ids []int, es *EpochStats) error {
	dim := w.cfg.Dataset.FeatureDim
	if w.xBuf == nil || w.xBuf.Rows != len(ids) {
		w.xBuf = tensor.New(len(ids), dim)
		w.yBuf = make([]int, len(ids))
	}
	for i, id := range ids {
		s, err := w.readSample(id, es)
		if err != nil {
			return err
		}
		copy(w.xBuf.Row(i), s.Features)
		w.yBuf[i] = s.Label
	}
	return nil
}

// validate evaluates the model on a shard of the validation set and
// combines correct counts across workers. Each worker evaluates with its
// own replica — weights are identical, but batch-norm running statistics
// are local, so a worker whose statistics drifted (the LS failure mode)
// drags the global accuracy down exactly as in real data-parallel eval.
func (w *worker) validate() float64 {
	val := w.cfg.Dataset.Val
	if len(val) == 0 {
		return 0
	}
	// Shard over the collective GROUP so a shrunken world still covers the
	// whole validation set (dead ranks' shards are re-spread).
	m, r := w.comm.GroupSize(), w.comm.GroupRank()
	lo := r * len(val) / m
	hi := (r + 1) * len(val) / m
	correct := 0
	const evalBatch = 256
	for start := lo; start < hi; start += evalBatch {
		end := start + evalBatch
		if end > hi {
			end = hi
		}
		// Eval batches share the step arena: reset per batch, so a long
		// validation shard never grows the arena past one batch's worth.
		w.arena.Reset()
		w.valBuf = tensor.EnsureShapeArena(w.arena, w.valBuf, end-start, w.cfg.Dataset.FeatureDim)
		x := w.valBuf
		y := make([]int, end-start)
		for i := start; i < end; i++ {
			copy(x.Row(i-start), val[i].Features)
			y[i-start] = val[i].Label
		}
		logits := w.model.Forward(x, false)
		pred := logits.ArgmaxRows()
		for i := range pred {
			if pred[i] == y[i] {
				correct++
			}
		}
	}
	buf := []float64{float64(correct)}
	mpi.Allreduce(w.comm, buf, mpi.OpSum)
	return buf[0] / float64(len(val))
}
