package shuffle

import (
	"fmt"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/store"
	"plshuffle/internal/transport"
)

// Scheduler manages the per-epoch global exchange for one worker, mirroring
// the PLS.Scheduler lifecycle the paper adds to PyTorch training scripts
// (Figure 3):
//
//	sched.Scheduling(epoch)      // plan this epoch's exchange
//	// training loop; optionally sched.Communicate(chunk) per iteration
//	sched.Communicate(-1)        // post any remaining non-blocking traffic
//	sched.Synchronize()          // wait for the exchange to finish
//	sched.CleanLocalStorage()    // remove sent samples, store received ones
//
// Posting the traffic in per-iteration chunks (Q·b samples per iteration,
// Section III-C / Figure 4) overlaps the exchange with the forward and
// backward phases; Synchronize at the epoch boundary then has little left
// to wait for.
type Scheduler struct {
	comm      *mpi.Comm
	st        *store.Local
	q         float64
	totalN    int
	seed      uint64
	groupSize int // 0 = flat exchange; >0 = hierarchical (Section V-F)

	epoch    int
	plan     ExchangePlan
	posted   int          // slots whose sends have been posted
	expected int          // samples this rank receives this epoch (= Slots())
	pending  *mpi.Request // the single outstanding posted receive, or nil
	received []data.Sample
	state    schedState

	// Reusable scratch, retained across epochs so the steady-state exchange
	// allocates nothing on the send side: destSlots groups a chunk's slot
	// indices by destination, batchShip stages the samples of one outgoing
	// batch, batchBuf holds its encoding, and sentScratch is the
	// CleanLocalStorage sent-ID set.
	destSlots   [][]int
	batchShip   []data.Sample
	batchBuf    []byte
	sentScratch map[int]bool

	// wireSent/wireRecv are the exact wire sizes (frame overhead included)
	// of this epoch's exchanged sample frames, excluding self-sends, which
	// never touch a network. On a wire backend these equal the bytes the TCP
	// transport moves for the exchange — the trainer's per-phase accounting.
	wireSent int64
	wireRecv int64

	// sendPriority, when non-nil, biases which local samples enter the
	// global exchange: Scheduling draws the send set by importance-weighted
	// sampling without replacement instead of a uniform permutation
	// (the Section IV-B importance-sampling extension).
	sendPriority map[int]float64
}

type schedState int

const (
	stateIdle schedState = iota
	stateScheduled
	stateSynchronized
)

// NewScheduler creates a scheduler for one worker. totalN is the global
// number of training samples (used to derive the shared slot count); q is
// the exchange fraction.
func NewScheduler(comm *mpi.Comm, st *store.Local, q float64, totalN int, seed uint64) (*Scheduler, error) {
	if comm == nil || st == nil {
		return nil, fmt.Errorf("shuffle: NewScheduler: nil communicator or store")
	}
	if q < 0 || q > 1 {
		return nil, fmt.Errorf("shuffle: NewScheduler: fraction %v out of [0,1]", q)
	}
	if totalN <= 0 {
		return nil, fmt.Errorf("shuffle: NewScheduler: totalN must be positive, got %d", totalN)
	}
	return &Scheduler{comm: comm, st: st, q: q, totalN: totalN, seed: seed}, nil
}

// UseHierarchical switches the scheduler to the two-level exchange with
// the given group size (the workers sharing one node); groupSize must
// divide the world size. Call it before the first Scheduling.
func (s *Scheduler) UseHierarchical(groupSize int) error {
	if groupSize <= 0 || s.comm.Size()%groupSize != 0 {
		return fmt.Errorf("shuffle: UseHierarchical: group size %d must divide world size %d", groupSize, s.comm.Size())
	}
	if s.state != stateIdle {
		return fmt.Errorf("shuffle: UseHierarchical: cannot switch modes mid-epoch")
	}
	s.groupSize = groupSize
	return nil
}

// SetSendPriority installs per-sample importance weights (typically the
// latest per-sample losses); subsequent epochs select the exchanged
// samples by weighted sampling without replacement instead of uniformly.
// Pass nil to return to the uniform Algorithm 1 selection.
func (s *Scheduler) SetSendPriority(weights map[int]float64) {
	s.sendPriority = weights
}

// Scheduling plans the exchange for the given epoch from the worker's
// current local sample set. It must be called once per epoch before
// Communicate.
func (s *Scheduler) Scheduling(epoch int) error {
	if s.state == stateScheduled {
		return fmt.Errorf("shuffle: Scheduling(%d): previous epoch %d not yet synchronized and cleaned", epoch, s.epoch)
	}
	ids := s.st.IDs()
	if s.sendPriority != nil {
		// Importance-weighted send selection: pass the ids pre-ordered by
		// weighted ranking; the planners take a private permutation of the
		// given order, so we substitute the permutation source instead.
		ids = WeightedOrder(ids, s.sendPriority, s.seed, epoch, s.comm.Rank())
	}
	var plan ExchangePlan
	var err error
	if s.groupSize > 0 {
		plan, err = PlanExchangeHierarchical(s.comm.Rank(), s.comm.Size(), s.groupSize, ids, s.q, s.totalN, s.seed, epoch)
	} else {
		plan, err = PlanExchange(s.comm.Rank(), s.comm.Size(), ids, s.q, s.totalN, s.seed, epoch)
	}
	if err != nil {
		return err
	}
	if s.sendPriority != nil && plan.Slots() > 0 {
		// Override the planner's uniform pick: send exactly the top-k of
		// the weighted ranking (the destinations keep the balanced
		// shared-seed permutations).
		copy(plan.SendIDs, ids[:plan.Slots()])
	}
	s.epoch = epoch
	s.plan = plan
	s.posted = 0
	s.expected = plan.Slots()
	s.pending = nil
	s.received = s.received[:0] // capacity reused across epochs
	s.wireSent, s.wireRecv = 0, 0
	s.state = stateScheduled
	return nil
}

// Slots returns the number of samples this epoch's plan exchanges.
func (s *Scheduler) Slots() int { return s.plan.Slots() }

// Communicate posts non-blocking sends for up to n slots (n < 0 posts
// everything remaining) and returns the number of inbound samples still in
// flight toward this rank. Calling it repeatedly with small n from the
// training loop implements the Figure 4 overlap; a single Communicate(-1)
// matches the plain non-blocking exchange of Figure 3.
//
// Slots sharing a destination within one Communicate call are coalesced
// into a single multi-sample frame (data.AppendSampleBatch), so a bulk
// Communicate(-1) posts at most M frames instead of Q·N/M, and a chunked
// call posts at most min(n, M). Inbound traffic is likewise batched:
// Communicate opportunistically drains any frames that have already
// arrived (without blocking), so decode work overlaps compute too.
func (s *Scheduler) Communicate(n int) (int, error) {
	if s.state != stateScheduled {
		return 0, fmt.Errorf("shuffle: Communicate called without a scheduled epoch")
	}
	end := s.plan.Slots()
	if n >= 0 && s.posted+n < end {
		end = s.posted + n
	}
	if end > s.posted {
		if len(s.destSlots) != s.comm.Size() {
			s.destSlots = make([][]int, s.comm.Size())
		}
		for i := s.posted; i < end; i++ {
			d := s.plan.Dests[i]
			s.destSlots[d] = append(s.destSlots[d], i)
		}
		for dest, slots := range s.destSlots {
			if len(slots) == 0 {
				continue
			}
			s.batchShip = s.batchShip[:0]
			for _, slot := range slots {
				sample, err := s.st.Get(s.plan.SendIDs[slot])
				if err != nil {
					return 0, fmt.Errorf("shuffle: Communicate: slot %d: %w", slot, err)
				}
				s.batchShip = append(s.batchShip, sample)
			}
			s.batchBuf = data.AppendSampleBatch(s.batchBuf[:0], s.batchShip)
			if dest != s.comm.Rank() {
				s.wireSent += transport.FrameWireSize(s.batchBuf)
			}
			// Safe to reuse batchBuf across destinations: the inproc backend
			// clones []byte payloads synchronously and the TCP backend
			// serializes before Send returns (the transport contract).
			s.comm.Isend(dest, exchangeTag(s.epoch), s.batchBuf)
			s.destSlots[dest] = slots[:0]
		}
		s.posted = end
	}
	if err := s.drainReceives(false); err != nil {
		return 0, err
	}
	return s.expected - len(s.received), nil
}

// drainReceives consumes inbound exchange frames until the epoch's expected
// sample count is met (block=true) or no further frame has arrived yet
// (block=false). Termination is count-based: the balanced plan guarantees
// this rank receives exactly expected samples, every frame carries at least
// one, and at most one receive is posted at a time — so no posted receive
// can dangle into the next epoch's tag space.
func (s *Scheduler) drainReceives(block bool) error {
	for len(s.received) < s.expected {
		if s.pending == nil {
			s.pending = s.comm.Irecv(mpi.AnySource, exchangeTag(s.epoch))
		}
		var payload any
		var st mpi.Status
		if block {
			payload, st = s.pending.Wait()
		} else {
			ok, p, pst := s.pending.Test()
			if !ok {
				return nil
			}
			payload, st = p, pst
		}
		s.pending = nil
		buf, ok := payload.([]byte)
		if !ok {
			return fmt.Errorf("shuffle: exchange frame carries %T, want []byte", payload)
		}
		before := len(s.received)
		var err error
		s.received, err = data.DecodeSampleBatchInto(s.received, buf)
		if err != nil {
			return fmt.Errorf("shuffle: decoding received sample batch: %w", err)
		}
		if len(s.received) == before {
			return fmt.Errorf("shuffle: peer sent an empty sample batch")
		}
		if len(s.received) > s.expected {
			return fmt.Errorf("shuffle: received %d samples, plan expects %d", len(s.received), s.expected)
		}
		if st.Source != s.comm.Rank() {
			s.wireRecv += transport.FrameWireSize(buf)
		}
	}
	return nil
}

// Synchronize posts any remaining traffic and waits until every expected
// sample has arrived and been decoded (line 7 of Algorithm 1).
func (s *Scheduler) Synchronize() error {
	if s.state != stateScheduled {
		return fmt.Errorf("shuffle: Synchronize called without a scheduled epoch")
	}
	if _, err := s.Communicate(-1); err != nil {
		return err
	}
	if err := s.drainReceives(true); err != nil {
		return err
	}
	s.state = stateSynchronized
	return nil
}

// Received returns the samples obtained in the last synchronized exchange
// (valid between Synchronize and CleanLocalStorage).
func (s *Scheduler) Received() []data.Sample { return s.received }

// WireTraffic returns the exact wire volume of the current epoch's exchange
// (sent and received sample frames, headers included, self-sends excluded).
// The counters reset at Scheduling; read them after Synchronize.
func (s *Scheduler) WireTraffic() (sent, recv int64) { return s.wireSent, s.wireRecv }

// CleanLocalStorage applies the exchange to the local store: received
// samples are saved and transmitted samples removed. Receives are applied
// before deletes — that ordering is what makes the worker's peak storage
// (1+Q)·N/M rather than N/M (Section III-A), and the store's Peak()
// measures it. Self-sends (a slot whose shared permutation maps this rank
// to itself) cancel out and leave the sample in place.
func (s *Scheduler) CleanLocalStorage() error {
	if s.state != stateSynchronized {
		return fmt.Errorf("shuffle: CleanLocalStorage called before Synchronize")
	}
	if s.sentScratch == nil {
		s.sentScratch = make(map[int]bool, len(s.plan.SendIDs))
	} else {
		clear(s.sentScratch)
	}
	sent := s.sentScratch
	for _, id := range s.plan.SendIDs {
		sent[id] = true
	}
	for _, sample := range s.received {
		if sent[sample.ID] && s.st.Has(sample.ID) {
			// Self-send: the sample never left; cancel the delete.
			delete(sent, sample.ID)
			continue
		}
		if err := s.st.Put(sample); err != nil {
			return fmt.Errorf("shuffle: CleanLocalStorage: storing received sample %d: %w", sample.ID, err)
		}
	}
	for id := range sent {
		if err := s.st.Delete(id); err != nil {
			return fmt.Errorf("shuffle: CleanLocalStorage: removing sent sample %d: %w", id, err)
		}
	}
	s.state = stateIdle
	return nil
}

// RunEpochExchange is the convenience bundle Scheduling → Communicate(-1)
// → Synchronize → CleanLocalStorage for callers that do not overlap.
func (s *Scheduler) RunEpochExchange(epoch int) error {
	if err := s.Scheduling(epoch); err != nil {
		return err
	}
	if err := s.Synchronize(); err != nil {
		return err
	}
	return s.CleanLocalStorage()
}
