package shuffle

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/store"
	"plshuffle/internal/store/cache"
	"plshuffle/internal/transport"
)

// Scheduler manages the per-epoch global exchange for one worker, mirroring
// the PLS.Scheduler lifecycle the paper adds to PyTorch training scripts
// (Figure 3):
//
//	sched.Scheduling(epoch)      // plan this epoch's exchange
//	// training loop; optionally sched.Communicate(chunk) per iteration
//	sched.Communicate(-1)        // post any remaining non-blocking traffic
//	sched.Synchronize()          // wait for the exchange to finish
//	sched.CleanLocalStorage()    // remove sent samples, store received ones
//
// Posting the traffic in per-iteration chunks (Q·b samples per iteration,
// Section III-C / Figure 4) overlaps the exchange with the forward and
// backward phases; Synchronize at the epoch boundary then has little left
// to wait for.
type Scheduler struct {
	comm      *mpi.Comm
	st        *store.Local
	q         float64
	totalN    int
	seed      uint64
	groupSize int // 0 = flat exchange; >0 = hierarchical (Section V-F)

	epoch    int
	plan     ExchangePlan
	posted   int          // slots whose sends have been posted
	expected int          // samples this rank receives this epoch (= Slots())
	pending  *mpi.Request // the single outstanding posted receive, or nil
	received []data.Sample
	state    schedState

	// Reusable scratch, retained across epochs so the steady-state exchange
	// allocates nothing on the send side: destSlots groups a chunk's slot
	// indices by destination, batchShip stages the samples of one outgoing
	// batch, batchBuf holds its encoding, shipScratch/refShip split a batch
	// into shipped samples and dedup references, and sentScratch is the
	// CleanLocalStorage sent-ID set.
	destSlots   [][]int
	batchShip   []data.Sample
	shipScratch []data.Sample
	batchBuf    []byte
	refShip     transport.SampleRefs
	sentScratch map[int]bool

	// Wire-lean exchange (DESIGN.md §13). encoding selects the sample batch
	// wire format; dedupBudget > 0 enables the pairwise dedup protocol:
	// sendMirror[r] mirrors (IDs and sizes only) the segment rank r keeps of
	// samples this rank sent it, and recvSegment[r] is this rank's segment
	// (IDs and payloads) of samples received from r. Both sides of a pair
	// apply identical Note/Touch sequences derived from the pairwise FIFO
	// frame stream, so a mirror hit proves the receiver can materialize the
	// sample locally and a compact reference frame replaces the payload.
	encoding    data.Encoding
	dedupBudget int64
	sendMirror  map[int]*cache.SampleLRU
	recvSegment map[int]*cache.SampleLRU

	epochDedupHits  int
	epochDedupSaved int64

	// wireSent/wireRecv are the exact wire sizes (frame overhead included)
	// of this epoch's exchanged sample frames, excluding self-sends, which
	// never touch a network. On a wire backend these equal the bytes the TCP
	// transport moves for the exchange — the trainer's per-phase accounting.
	wireSent int64
	wireRecv int64

	// sendPriority, when non-nil, biases which local samples enter the
	// global exchange: Scheduling draws the send set by importance-weighted
	// sampling without replacement instead of a uniform permutation
	// (the Section IV-B importance-sampling extension).
	sendPriority map[int]float64

	// Graceful degradation (DESIGN.md §10). When degrade is set, a peer
	// failure observed during the exchange does not unwind the rank:
	// the scheduler cancels the dead rank's slots — send slots toward it
	// are retained locally, inbound slots from it are forfeited (capped by
	// what already arrived) — and the epoch completes with a reduced
	// effective exchange fraction. The Q spectrum is what makes this
	// principled: a smaller realized Q is still a valid PLS configuration.
	degrade  bool
	dead     map[int]bool // ranks this scheduler treats as dead
	senders  []int        // per-slot inbound source (lazy, built on first death)
	recvFrom map[int]int  // samples decoded per source rank this epoch

	degradedSend int // send slots canceled: their samples stay local
	degradedRecv int // inbound slots forfeited to a death

	// Telemetry mirrors (DESIGN.md §11): scrape-safe atomic shadows of the
	// single-goroutine state above, updated at the same mutation points.
	// The wire counters are CUMULATIVE across epochs (Prometheus counters
	// never reset), unlike wireSent/wireRecv which Scheduling zeroes; the
	// rest are gauges of the current epoch. A scraper on the HTTP goroutine
	// reads these without touching the scheduler's own fields.
	telWireSent     atomic.Int64
	telWireRecv     atomic.Int64
	telEffQ         atomic.Uint64 // float64 bits; 0 ⇒ not yet scheduled, read as configured q
	telEffQSet      atomic.Bool
	telDegradedSend atomic.Int64
	telDegradedRecv atomic.Int64
	telEpoch        atomic.Int64
	telDedupHits    atomic.Int64
	telDedupSaved   atomic.Int64
}

type schedState int

const (
	stateIdle schedState = iota
	stateScheduled
	stateSynchronized
)

// NewScheduler creates a scheduler for one worker. totalN is the global
// number of training samples (used to derive the shared slot count); q is
// the exchange fraction.
func NewScheduler(comm *mpi.Comm, st *store.Local, q float64, totalN int, seed uint64) (*Scheduler, error) {
	if comm == nil || st == nil {
		return nil, fmt.Errorf("shuffle: NewScheduler: nil communicator or store")
	}
	if q < 0 || q > 1 {
		return nil, fmt.Errorf("shuffle: NewScheduler: fraction %v out of [0,1]", q)
	}
	if totalN <= 0 {
		return nil, fmt.Errorf("shuffle: NewScheduler: totalN must be positive, got %d", totalN)
	}
	return &Scheduler{comm: comm, st: st, q: q, totalN: totalN, seed: seed}, nil
}

// UseHierarchical switches the scheduler to the two-level exchange with
// the given group size (the workers sharing one node); groupSize must
// divide the world size. Call it before the first Scheduling.
func (s *Scheduler) UseHierarchical(groupSize int) error {
	if groupSize <= 0 || s.comm.Size()%groupSize != 0 {
		return fmt.Errorf("shuffle: UseHierarchical: group size %d must divide world size %d", groupSize, s.comm.Size())
	}
	if s.state != stateIdle {
		return fmt.Errorf("shuffle: UseHierarchical: cannot switch modes mid-epoch")
	}
	s.groupSize = groupSize
	return nil
}

// SetSampleEncoding selects the wire encoding of exchanged sample batches
// (data.EncodingFP32, the default, is the legacy format). Call it before
// the first Scheduling; every rank must configure the same encoding.
func (s *Scheduler) SetSampleEncoding(enc data.Encoding) error {
	if s.state != stateIdle {
		return fmt.Errorf("shuffle: SetSampleEncoding: cannot reconfigure mid-epoch")
	}
	s.encoding = enc
	return nil
}

// SetQ retunes the exchange fraction for the NEXT epoch (the closed-loop
// controller of DESIGN.md §16, or a fixed per-epoch schedule). It is legal
// only between epochs — after Reset or CleanLocalStorage, before the next
// Scheduling — because a mid-epoch change would desynchronize the
// shared-seed plan the ranks already agreed on. Every rank must apply the
// same Q before the same Scheduling; the controller's broadcast protocol
// guarantees that.
func (s *Scheduler) SetQ(q float64) error {
	if s.state != stateIdle {
		return fmt.Errorf("shuffle: SetQ: cannot retune mid-epoch")
	}
	if q < 0 || q > 1 {
		return fmt.Errorf("shuffle: SetQ: fraction %v out of [0,1]", q)
	}
	s.q = q
	return nil
}

// Q returns the exchange fraction the next Scheduling will plan with.
func (s *Scheduler) Q() float64 { return s.q }

// SetWireDedup enables exchange deduplication with the given per-directed-
// pair byte budget (≤ 0 disables). Every rank must configure the same
// budget — the protocol's correctness rests on sender mirror and receiver
// segment evicting in lockstep. Call it before the first Scheduling.
func (s *Scheduler) SetWireDedup(budgetBytes int64) error {
	if s.state != stateIdle {
		return fmt.Errorf("shuffle: SetWireDedup: cannot reconfigure mid-epoch")
	}
	if budgetBytes <= 0 {
		s.dedupBudget = 0
		s.sendMirror, s.recvSegment = nil, nil
		return nil
	}
	s.dedupBudget = budgetBytes
	s.sendMirror = make(map[int]*cache.SampleLRU)
	s.recvSegment = make(map[int]*cache.SampleLRU)
	return nil
}

// InvalidateDedup drops every pairwise dedup cache (both roles). It must
// run on EVERY surviving rank whenever any event could desynchronize a
// pair's mirror and segment — an abandoned epoch (Reset calls it), a peer
// failure recovery — after which both sides rebuild from live traffic. An
// unnecessary invalidation costs only warm-up hits, never correctness.
func (s *Scheduler) InvalidateDedup() {
	for _, c := range s.sendMirror {
		c.Clear()
	}
	for _, c := range s.recvSegment {
		c.Clear()
	}
}

// dedupMirror returns (lazily creating) the sender-side mirror of dest's
// segment for this directed pair.
func (s *Scheduler) dedupMirror(dest int) *cache.SampleLRU {
	c := s.sendMirror[dest]
	if c == nil {
		c = cache.NewSampleLRU(s.dedupBudget, false)
		s.sendMirror[dest] = c
	}
	return c
}

// dedupSegment returns (lazily creating) the receiver-side segment of
// samples src has sent this rank.
func (s *Scheduler) dedupSegment(src int) *cache.SampleLRU {
	c := s.recvSegment[src]
	if c == nil {
		c = cache.NewSampleLRU(s.dedupBudget, true)
		s.recvSegment[src] = c
	}
	return c
}

// DedupStats reports the current epoch's deduplication outcome: exchange
// slots satisfied by reference frames instead of payloads, and the wire
// bytes that avoided — the plain full-batch frame size minus what actually
// shipped (references plus residual batch, post-compression when the
// transport compresses). Reset by Scheduling.
func (s *Scheduler) DedupStats() (hits int, savedBytes int64) {
	return s.epochDedupHits, s.epochDedupSaved
}

// CumulativeDedup returns the dedup totals across ALL epochs (same
// accounting as DedupStats, never reset). Safe from any goroutine — it
// backs the pls_exchange_dedup_* telemetry counters.
func (s *Scheduler) CumulativeDedup() (hits, savedBytes int64) {
	return s.telDedupHits.Load(), s.telDedupSaved.Load()
}

// SetSendPriority installs per-sample importance weights (typically the
// latest per-sample losses); subsequent epochs select the exchanged
// samples by weighted sampling without replacement instead of uniformly.
// Pass nil to return to the uniform Algorithm 1 selection.
func (s *Scheduler) SetSendPriority(weights map[int]float64) {
	s.sendPriority = weights
}

// Scheduling plans the exchange for the given epoch from the worker's
// current local sample set. It must be called once per epoch before
// Communicate.
func (s *Scheduler) Scheduling(epoch int) error {
	if s.state == stateScheduled {
		return fmt.Errorf("shuffle: Scheduling(%d): previous epoch %d not yet synchronized and cleaned", epoch, s.epoch)
	}
	ids := s.st.IDs()
	if s.sendPriority != nil {
		// Importance-weighted send selection: pass the ids pre-ordered by
		// weighted ranking; the planners take a private permutation of the
		// given order, so we substitute the permutation source instead.
		ids = WeightedOrder(ids, s.sendPriority, s.seed, epoch, s.comm.Rank())
	}
	var plan ExchangePlan
	var err error
	if s.groupSize > 0 {
		plan, err = PlanExchangeHierarchical(s.comm.Rank(), s.comm.Size(), s.groupSize, ids, s.q, s.totalN, s.seed, epoch)
	} else {
		plan, err = PlanExchange(s.comm.Rank(), s.comm.Size(), ids, s.q, s.totalN, s.seed, epoch)
	}
	if err != nil {
		return err
	}
	if s.sendPriority != nil && plan.Slots() > 0 {
		// Override the planner's uniform pick: send exactly the top-k of
		// the weighted ranking (the destinations keep the balanced
		// shared-seed permutations).
		copy(plan.SendIDs, ids[:plan.Slots()])
	}
	s.epoch = epoch
	s.plan = plan
	s.posted = 0
	s.expected = plan.Slots()
	s.pending = nil
	s.received = s.received[:0] // capacity reused across epochs
	s.wireSent, s.wireRecv = 0, 0
	s.epochDedupHits, s.epochDedupSaved = 0, 0
	s.senders = nil // per-epoch permutations; rebuilt lazily on demand
	s.degradedSend, s.degradedRecv = 0, 0
	clear(s.recvFrom)
	s.state = stateScheduled
	s.telEpoch.Store(int64(epoch))
	if len(s.dead) > 0 {
		// Deaths absorbed in earlier epochs persist: rebuild this epoch's
		// expectation around them before any traffic flows.
		s.recomputeExpectation()
	} else {
		s.mirrorDegradation()
	}
	return nil
}

// SetDegradeOnPeerFailure selects the scheduler's failure policy. With
// degrade on, a *transport.PeerError observed while sending or draining
// the exchange is absorbed (the epoch completes over the survivors, with
// DegradedSlots accounting the canceled traffic); with it off (the
// default) the failure unwinds the rank like any other transport error.
func (s *Scheduler) SetDegradeOnPeerFailure(on bool) { s.degrade = on }

// DeadRanks returns the sorted ranks this scheduler has absorbed as dead.
func (s *Scheduler) DeadRanks() []int {
	out := make([]int, 0, len(s.dead))
	for r := range s.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// DegradedSlots reports the current epoch's canceled exchange slots:
// sendSlots had a dead destination (their samples are retained locally),
// recvSlots had a dead sender and were forfeited (samples that landed
// before the death still count as received). Both are zero when every
// peer is live. Valid after Synchronize; reset by Scheduling.
func (s *Scheduler) DegradedSlots() (sendSlots, recvSlots int) {
	return s.degradedSend, s.degradedRecv
}

// EffectiveQ returns the exchange fraction the current epoch actually
// realized: q scaled by the surviving fraction of the plan's slots
// (averaging the send and receive directions, which degrade
// independently). With no deaths it equals the configured q.
func (s *Scheduler) EffectiveQ() float64 {
	k := s.plan.Slots()
	if k == 0 {
		return s.q
	}
	return s.q * float64(2*k-s.degradedSend-s.degradedRecv) / float64(2*k)
}

// absorbFailure marks rank dead and rebuilds the epoch's receive
// expectation around the survivors. It first scoops any frames that
// already landed (they may carry the dead rank's last samples), so the
// forfeit count is no larger than necessary.
func (s *Scheduler) absorbFailure(rank int) error {
	if s.dead == nil {
		s.dead = make(map[int]bool)
	}
	if s.dead[rank] {
		return nil
	}
	s.dead[rank] = true
	if err := s.drainLanded(); err != nil {
		return err
	}
	s.recomputeExpectation()
	return nil
}

// drainLanded consumes every exchange frame that has already arrived
// without blocking (no expectation check — it runs while the expectation
// is being rebuilt).
func (s *Scheduler) drainLanded() error {
	for {
		if s.pending == nil {
			s.pending = s.comm.Irecv(mpi.AnySource, exchangeTag(s.epoch))
		}
		ok, payload, st := s.pending.Test()
		if !ok {
			return nil
		}
		s.pending = nil
		if err := s.ingestFrame(payload, st); err != nil {
			return err
		}
	}
}

// recomputeExpectation rebuilds expected from the shared-seed sender
// permutations: slots whose sender is live stay expected; slots whose
// sender is dead are expected only up to what that sender already
// delivered. Locally computable on every survivor — no consensus round.
func (s *Scheduler) recomputeExpectation() {
	k := s.plan.Slots()
	if s.senders == nil {
		s.senders = ExpectedSenders(s.comm.Rank(), s.comm.Size(), s.groupSize, k, s.seed, s.epoch)
	}
	fromDead := make(map[int]int, len(s.dead))
	expected := 0
	for _, src := range s.senders {
		if s.dead[src] {
			fromDead[src]++
		} else {
			expected++
		}
	}
	if s.recvFrom == nil {
		s.recvFrom = make(map[int]int)
	}
	for src, slots := range fromDead {
		if got := s.recvFrom[src]; got < slots {
			expected += got
		} else {
			expected += slots
		}
	}
	s.degradedRecv = k - expected
	// Send-side mirror: slots toward a dead destination are canceled and
	// their samples retained by CleanLocalStorage.
	s.degradedSend = 0
	for _, d := range s.plan.Dests {
		if s.dead[d] {
			s.degradedSend++
		}
	}
	s.expected = expected
	s.mirrorDegradation()
}

// mirrorDegradation refreshes the telemetry shadows of the degradation
// state (DegradedSlots and EffectiveQ) from the current epoch's values. It
// runs on the owning goroutine at every mutation point; scrapers read the
// atomics from any goroutine.
func (s *Scheduler) mirrorDegradation() {
	s.telDegradedSend.Store(int64(s.degradedSend))
	s.telDegradedRecv.Store(int64(s.degradedRecv))
	s.telEffQ.Store(math.Float64bits(s.EffectiveQ()))
	s.telEffQSet.Store(true)
}

// Slots returns the number of samples this epoch's plan exchanges.
func (s *Scheduler) Slots() int { return s.plan.Slots() }

// Communicate posts non-blocking sends for up to n slots (n < 0 posts
// everything remaining) and returns the number of inbound samples still in
// flight toward this rank. Calling it repeatedly with small n from the
// training loop implements the Figure 4 overlap; a single Communicate(-1)
// matches the plain non-blocking exchange of Figure 3.
//
// Slots sharing a destination within one Communicate call are coalesced
// into a single multi-sample frame (data.AppendSampleBatch), so a bulk
// Communicate(-1) posts at most M frames instead of Q·N/M, and a chunked
// call posts at most min(n, M). Inbound traffic is likewise batched:
// Communicate opportunistically drains any frames that have already
// arrived (without blocking), so decode work overlaps compute too.
func (s *Scheduler) Communicate(n int) (int, error) {
	if s.state != stateScheduled {
		return 0, fmt.Errorf("shuffle: Communicate called without a scheduled epoch")
	}
	if s.degrade {
		// Absorb deaths the transport detected since the last call, so the
		// send loop below never aims at a known-dead rank.
		for _, r := range s.comm.FailedPeers() {
			if !s.dead[r] {
				if err := s.absorbFailure(r); err != nil {
					return 0, err
				}
			}
		}
	}
	end := s.plan.Slots()
	if n >= 0 && s.posted+n < end {
		end = s.posted + n
	}
	if end > s.posted {
		if len(s.destSlots) != s.comm.Size() {
			s.destSlots = make([][]int, s.comm.Size())
		}
		for i := s.posted; i < end; i++ {
			d := s.plan.Dests[i]
			if s.dead[d] {
				continue // canceled slot: CleanLocalStorage retains the sample
			}
			s.destSlots[d] = append(s.destSlots[d], i)
		}
		for dest, slots := range s.destSlots {
			if len(slots) == 0 {
				continue
			}
			s.batchShip = s.batchShip[:0]
			for _, slot := range slots {
				sample, err := s.st.Get(s.plan.SendIDs[slot])
				if err != nil {
					return 0, fmt.Errorf("shuffle: Communicate: slot %d: %w", slot, err)
				}
				s.batchShip = append(s.batchShip, sample)
			}
			if err := s.shipBatch(dest); err != nil {
				return 0, err
			}
			s.destSlots[dest] = slots[:0]
		}
		s.posted = end
	}
	if err := s.drainReceives(false); err != nil {
		return 0, err
	}
	return s.expected - len(s.received), nil
}

// shipBatch encodes and sends the staged s.batchShip toward dest, applying
// the pairwise dedup protocol (DESIGN.md §13) when enabled: samples the
// sender's mirror proves resident in the receiver's segment travel as a
// compact ID-reference frame, and only the remainder ships as a payload
// batch. The reference frame always precedes the payload frame for the same
// destination, so both sides replay the identical Touch-then-Note sequence
// against their pair caches. Self-sends bypass dedup entirely (they never
// touch a wire) but still round-trip the negotiated encoding, keeping lossy
// modes uniform across all delivered samples.
func (s *Scheduler) shipBatch(dest int) error {
	ship := s.batchShip
	self := dest == s.comm.Rank()
	var refs transport.SampleRefs
	var hypo int64
	if s.dedupBudget > 0 && !self {
		mirror := s.dedupMirror(dest)
		s.refShip = s.refShip[:0]
		s.shipScratch = s.shipScratch[:0]
		for _, sample := range s.batchShip {
			if mirror.Has(int64(sample.ID)) {
				s.refShip = append(s.refShip, int64(sample.ID))
			} else {
				s.shipScratch = append(s.shipScratch, sample)
			}
		}
		if len(s.refShip) > 0 {
			// What the whole batch would cost as one payload frame under the
			// same encoding — the baseline for the bytes-saved counter — vs
			// the ref frame plus the residual batch. With few hits on small
			// samples the ref frame's fixed overhead can exceed the payload
			// it elides; the sender then simply ships the full batch (a
			// sender-local choice: no ref frame means the receiver replays
			// plain Notes, so the caches stay in lockstep either way).
			hypo = transport.FrameWireSize([]byte(nil)) +
				int64(data.SampleBatchWireSizeEnc(s.batchShip, s.encoding))
			sort.Slice(s.refShip, func(i, j int) bool { return s.refShip[i] < s.refShip[j] })
			refCost := transport.FrameWireSize(s.refShip)
			if len(s.shipScratch) > 0 {
				refCost += transport.FrameWireSize([]byte(nil)) +
					int64(data.SampleBatchWireSizeEnc(s.shipScratch, s.encoding))
			}
			if refCost < hypo {
				ship, refs = s.shipScratch, s.refShip
				for _, id := range refs {
					mirror.Touch(id)
				}
			}
		}
	}
	var wire int64
	if len(refs) > 0 {
		n, dead, err := s.sendExchangeFrame(dest, refs)
		if err != nil || dead {
			return err
		}
		wire += n
	}
	if len(ship) > 0 {
		s.batchBuf = data.AppendSampleBatchEnc(s.batchBuf[:0], ship, s.encoding)
		// Safe to reuse batchBuf across destinations: the inproc backend
		// clones []byte payloads synchronously and the TCP backend
		// serializes before Send returns (the transport contract).
		n, dead, err := s.sendExchangeFrame(dest, s.batchBuf)
		if err != nil || dead {
			return err
		}
		wire += n
	}
	if self {
		return nil
	}
	s.wireSent += wire
	s.telWireSent.Add(wire)
	if s.dedupBudget > 0 {
		mirror := s.dedupMirror(dest)
		for _, sample := range ship {
			mirror.Note(sample)
		}
		if len(refs) > 0 {
			s.epochDedupHits += len(refs)
			s.telDedupHits.Add(int64(len(refs)))
			if saved := hypo - wire; saved > 0 {
				s.epochDedupSaved += saved
				s.telDedupSaved.Add(saved)
			}
		}
	}
	return nil
}

// sendExchangeFrame posts one frame of the current epoch's exchange toward
// dest and returns its metered wire size. Under degraded operation a peer
// death is absorbed in place and reported via dead=true so the caller skips
// the rest of this destination's work — the pair's dedup state is moot once
// the peer is gone (InvalidateDedup clears it during recovery anyway).
func (s *Scheduler) sendExchangeFrame(dest int, payload any) (wire int64, dead bool, err error) {
	if s.degrade {
		n, pe := s.comm.SendPeerAwareMetered(dest, exchangeTag(s.epoch), payload)
		if pe != nil {
			// The destination died under the send: absorb and retain this
			// batch's samples (the receiver is gone, so the local copies are
			// the only ones among survivors).
			if aerr := s.absorbFailure(pe.Rank); aerr != nil {
				return 0, true, aerr
			}
			return 0, true, nil
		}
		return n, false, nil
	}
	_, n := s.comm.IsendMetered(dest, exchangeTag(s.epoch), payload)
	return n, false, nil
}

// drainReceives consumes inbound exchange frames until the epoch's expected
// sample count is met (block=true) or no further frame has arrived yet
// (block=false). Termination is count-based: the balanced plan guarantees
// this rank receives exactly expected samples, every frame carries at least
// one, and at most one receive is posted at a time — so no posted receive
// can dangle into the next epoch's tag space.
func (s *Scheduler) drainReceives(block bool) error {
	for len(s.received) < s.expected {
		if s.pending == nil {
			s.pending = s.comm.Irecv(mpi.AnySource, exchangeTag(s.epoch))
		}
		var payload any
		var st mpi.Status
		if block && s.degrade {
			// The peer-aware wait: a death the scheduler has not yet
			// absorbed surfaces as a value (the receive is withdrawn), the
			// plan degrades around it, and the drain continues toward the
			// reduced expectation — instead of blocking forever on a sender
			// that will never speak again.
			p, pst, err := s.comm.WaitPeerAware(s.pending, func(r int) bool { return s.dead[r] })
			if err != nil {
				s.pending = nil
				pe, ok := transport.AsPeerError(err)
				if !ok {
					return err
				}
				if aerr := s.absorbFailure(pe.Rank); aerr != nil {
					return aerr
				}
				continue
			}
			payload, st = p, pst
		} else if block {
			payload, st = s.pending.Wait()
		} else {
			ok, p, pst := s.pending.Test()
			if !ok {
				return nil
			}
			payload, st = p, pst
		}
		s.pending = nil
		if err := s.ingestFrame(payload, st); err != nil {
			return err
		}
	}
	return nil
}

// ingestFrame decodes one exchange frame into the received set and updates
// the per-source accounting the degradation path depends on. Two frame
// shapes exist: a sample batch ([]byte) carrying payloads, and a dedup
// reference frame (transport.SampleRefs) whose samples this rank
// materializes from the per-source segment it has been maintaining — a ref
// naming a sample absent from the segment is a protocol error, never a
// silent drop, because both sides compute the segment deterministically.
func (s *Scheduler) ingestFrame(payload any, st mpi.Status) error {
	before := len(s.received)
	switch buf := payload.(type) {
	case []byte:
		var err error
		s.received, err = data.DecodeSampleBatchInto(s.received, buf)
		if err != nil {
			return fmt.Errorf("shuffle: decoding received sample batch: %w", err)
		}
		if s.dedupBudget > 0 && st.Source != s.comm.Rank() {
			seg := s.dedupSegment(st.Source)
			for _, sample := range s.received[before:] {
				seg.Note(sample)
			}
		}
	case transport.SampleRefs:
		if s.dedupBudget <= 0 {
			return fmt.Errorf("shuffle: rank %d sent a dedup reference frame but dedup is disabled here", st.Source)
		}
		if st.Source == s.comm.Rank() {
			return fmt.Errorf("shuffle: self-send carried a dedup reference frame")
		}
		seg := s.dedupSegment(st.Source)
		for _, id := range buf {
			if !seg.Touch(id) {
				return fmt.Errorf("shuffle: rank %d referenced sample %d absent from its segment (dedup state diverged)", st.Source, id)
			}
			sample, _ := seg.Get(id)
			s.received = append(s.received, sample.Clone())
		}
	default:
		return fmt.Errorf("shuffle: exchange frame carries %T, want []byte or transport.SampleRefs", payload)
	}
	n := len(s.received) - before
	if n == 0 {
		return fmt.Errorf("shuffle: peer sent an empty sample batch")
	}
	if s.recvFrom == nil {
		s.recvFrom = make(map[int]int)
	}
	s.recvFrom[st.Source] += n
	if st.Source != s.comm.Rank() {
		w := st.Wire
		if w <= 0 {
			w = transport.FrameWireSize(payload)
		}
		s.wireRecv += w
		s.telWireRecv.Add(w)
	}
	if s.dead[st.Source] {
		// A dead sender's straggler landed after its slots were forfeited:
		// accept the samples and restore the expectation they satisfy.
		s.recomputeExpectation()
	}
	if len(s.received) > s.expected {
		return fmt.Errorf("shuffle: received %d samples, plan expects %d", len(s.received), s.expected)
	}
	return nil
}

// Synchronize posts any remaining traffic and waits until every expected
// sample has arrived and been decoded (line 7 of Algorithm 1).
func (s *Scheduler) Synchronize() error {
	if s.state != stateScheduled {
		return fmt.Errorf("shuffle: Synchronize called without a scheduled epoch")
	}
	if _, err := s.Communicate(-1); err != nil {
		return err
	}
	if err := s.drainReceives(true); err != nil {
		return err
	}
	// A degraded epoch can meet its (reduced) expectation while a receive
	// is still posted; withdraw it so it cannot dangle into later epochs.
	if s.pending != nil {
		if !s.comm.CancelRecv(s.pending) {
			// A frame matched concurrently; the completed message wins.
			payload, st := s.pending.Wait()
			if err := s.ingestFrame(payload, st); err != nil {
				return err
			}
		}
		s.pending = nil
	}
	s.state = stateSynchronized
	return nil
}

// Reset abandons the current epoch after a failed exchange, returning the
// scheduler to the idle state so a later Scheduling can start fresh. The
// outstanding receive (if any) is withdrawn and this epoch's received
// samples are discarded. The local store is untouched — no sample has been
// deleted, because CleanLocalStorage only runs after a successful
// Synchronize — so the abandoned epoch loses no local data. Frames already
// delivered for the abandoned epoch rot harmlessly in the mailbox: epoch
// tags are never reused.
func (s *Scheduler) Reset() {
	if s.pending != nil {
		if !s.comm.CancelRecv(s.pending) {
			s.pending.Wait() // matched concurrently: consume and discard
		}
		s.pending = nil
	}
	s.received = s.received[:0]
	clear(s.recvFrom)
	s.posted = 0
	s.expected = 0
	s.degradedSend, s.degradedRecv = 0, 0
	s.mirrorDegradation()
	// An abandoned epoch may have updated some pair caches but not others;
	// drop all dedup state on both sides' next contact rather than risk a
	// silent mirror/segment divergence.
	s.InvalidateDedup()
	s.state = stateIdle
}

// Received returns the samples obtained in the last synchronized exchange
// (valid between Synchronize and CleanLocalStorage).
func (s *Scheduler) Received() []data.Sample { return s.received }

// WireTraffic returns the exact wire volume of the current epoch's exchange
// (sent and received sample frames, headers included, self-sends excluded).
// The counters reset at Scheduling; read them after Synchronize.
func (s *Scheduler) WireTraffic() (sent, recv int64) { return s.wireSent, s.wireRecv }

// CumulativeWireTraffic returns the total exchange wire volume across ALL
// epochs so far (same accounting as WireTraffic, never reset). Unlike the
// other accessors it is safe to call from any goroutine — it backs the
// pls_exchange_wire_bytes_total telemetry counters.
func (s *Scheduler) CumulativeWireTraffic() (sent, recv int64) {
	return s.telWireSent.Load(), s.telWireRecv.Load()
}

// ObservedEffectiveQ is the scrape-safe mirror of EffectiveQ: the exchange
// fraction the current epoch is realizing, from any goroutine. Before the
// first Scheduling it reports the configured q.
func (s *Scheduler) ObservedEffectiveQ() float64 {
	if !s.telEffQSet.Load() {
		return s.q
	}
	return math.Float64frombits(s.telEffQ.Load())
}

// ObservedDegradedSlots is the scrape-safe mirror of DegradedSlots.
func (s *Scheduler) ObservedDegradedSlots() (sendSlots, recvSlots int64) {
	return s.telDegradedSend.Load(), s.telDegradedRecv.Load()
}

// ObservedEpoch returns the most recently scheduled epoch, from any
// goroutine.
func (s *Scheduler) ObservedEpoch() int { return int(s.telEpoch.Load()) }

// CleanLocalStorage applies the exchange to the local store: received
// samples are saved and transmitted samples removed. Receives are applied
// before deletes — that ordering is what makes the worker's peak storage
// (1+Q)·N/M rather than N/M (Section III-A), and the store's Peak()
// measures it. Self-sends (a slot whose shared permutation maps this rank
// to itself) cancel out and leave the sample in place.
func (s *Scheduler) CleanLocalStorage() error {
	if s.state != stateSynchronized {
		return fmt.Errorf("shuffle: CleanLocalStorage called before Synchronize")
	}
	if s.degrade {
		// Deleting a sent sample is the irreversible step of the exchange:
		// once a death is known, samples shipped to the dead rank must be
		// retained (the receiver died holding the only other copy). Absorb
		// every death the transport has reported up to this moment, so the
		// retention decision below uses the freshest knowledge. A death
		// detected only after this commit point loses the samples the dead
		// rank had already received — exactly the semantics of a node dying
		// with its share of the data.
		changed := false
		for _, r := range s.comm.FailedPeers() {
			if !s.dead[r] {
				if s.dead == nil {
					s.dead = make(map[int]bool)
				}
				s.dead[r] = true
				changed = true
			}
		}
		if changed {
			s.recomputeExpectation() // refresh the DegradedSlots accounting
		}
	}
	if s.sentScratch == nil {
		s.sentScratch = make(map[int]bool, len(s.plan.SendIDs))
	} else {
		clear(s.sentScratch)
	}
	sent := s.sentScratch
	for i, id := range s.plan.SendIDs {
		if s.dead[s.plan.Dests[i]] {
			// Canceled slot: whether or not the sample was already shipped
			// before the destination died, the receiver is gone — the local
			// copy is the only one among the survivors, so retain it. This
			// is the no-sample-lost half of the degradation invariant; the
			// no-duplicate half holds because the dead rank is not a
			// survivor.
			continue
		}
		sent[id] = true
	}
	for _, sample := range s.received {
		if sent[sample.ID] && s.st.Has(sample.ID) {
			// Self-send: the sample never left; cancel the delete.
			delete(sent, sample.ID)
			continue
		}
		if err := s.st.Put(sample); err != nil {
			return fmt.Errorf("shuffle: CleanLocalStorage: storing received sample %d: %w", sample.ID, err)
		}
	}
	for id := range sent {
		if err := s.st.Delete(id); err != nil {
			return fmt.Errorf("shuffle: CleanLocalStorage: removing sent sample %d: %w", id, err)
		}
	}
	s.state = stateIdle
	return nil
}

// RunEpochExchange is the convenience bundle Scheduling → Communicate(-1)
// → Synchronize → CleanLocalStorage for callers that do not overlap.
func (s *Scheduler) RunEpochExchange(epoch int) error {
	if err := s.Scheduling(epoch); err != nil {
		return err
	}
	if err := s.Synchronize(); err != nil {
		return err
	}
	return s.CleanLocalStorage()
}
