package shuffle_test

import (
	"fmt"
	"sort"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/store"
	"plshuffle/internal/transport/transporttest"
)

// TestRunEpochExchangeOverTCP drives the full Algorithm 1 epoch exchange
// across a 4-rank world whose every frame crosses real localhost TCP
// sockets, for Q ∈ {0, 0.25, 1}. After each epoch every rank must hold
// exactly N/M samples (the balance invariant), the union of all local
// stores must still be exactly the dataset, and each rank's storage
// high-water mark must respect the paper's (1+Q)·N/M bound.
func TestRunEpochExchangeOverTCP(t *testing.T) {
	const (
		m           = 4
		perRank     = 32
		n           = m * perRank
		epochs      = 3
		sampleBytes = int64(1000)
		seed        = uint64(7)
	)
	for _, q := range []float64{0, 0.25, 1} {
		q := q
		t.Run(fmt.Sprintf("Q=%v", q), func(t *testing.T) {
			t.Parallel()
			err := transporttest.TCP().Run(m, func(c *mpi.Comm) error {
				// Deterministic initial partition, identical on every rank.
				parts, err := shuffle.Partition(n, m, seed)
				if err != nil {
					return err
				}
				st := store.NewLocal(0)
				for _, id := range parts[c.Rank()] {
					s := data.Sample{ID: id, Label: id % 10, Features: []float32{float32(id), -float32(id)}, Bytes: sampleBytes}
					if err := st.Put(s); err != nil {
						return err
					}
				}
				sched, err := shuffle.NewScheduler(c, st, q, n, seed)
				if err != nil {
					return err
				}
				for epoch := 0; epoch < epochs; epoch++ {
					if err := sched.RunEpochExchange(epoch); err != nil {
						return fmt.Errorf("rank %d epoch %d: %w", c.Rank(), epoch, err)
					}
					if got := st.Len(); got != perRank {
						return fmt.Errorf("rank %d epoch %d: %d samples, want exactly N/M = %d", c.Rank(), epoch, got, perRank)
					}
				}

				// Peak storage bound: N/M resident plus at most Q·N/M received
				// before the sent samples are deleted (Section III-A).
				limit := int64(float64(perRank)*(1+q)) * sampleBytes
				if st.Peak() > limit {
					return fmt.Errorf("rank %d: peak storage %d bytes exceeds (1+%v)·N/M = %d", c.Rank(), st.Peak(), q, limit)
				}

				// Coverage: the union of the local stores is exactly 0..N-1.
				ids := st.IDs()
				local := make([]int64, perRank)
				for i, id := range ids {
					local[i] = int64(id)
				}
				all := mpi.Gather(c, local, 0)
				if c.Rank() == 0 {
					sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
					for i, id := range all {
						if id != int64(i) {
							return fmt.Errorf("after %d epochs sample ids are not a permutation of 0..%d (position %d holds %d)", epochs, n-1, i, id)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
