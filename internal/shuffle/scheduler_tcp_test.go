package shuffle_test

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/store"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/tcp"
	"plshuffle/internal/transport/transporttest"
)

// TestExchangeWireLeanAcceptanceTCP is the PR's acceptance gate for the
// wire-lean exchange: a 4-rank Q=0.25 exchange over real TCP sockets, run
// once with the stock wire (fp32, no dedup, no compression) and once with
// the full lean stack (fp16exact encoding, pairwise dedup, wirecomp
// compression). Three properties are machine-checked:
//
//  1. Exactness — per rank, the scheduler's metered wire accounting equals
//     the transport's per-kind socket byte counters (data+dataz+dataref)
//     bit for bit, in both directions, in both runs.
//  2. Equivalence — every rank's final store is bitwise identical between
//     the two runs: the lean wire changes not a single sample bit.
//  3. The win — the lean run moves at most half the exchange bytes of the
//     baseline (the ISSUE's ≥2× bar).
func TestExchangeWireLeanAcceptanceTCP(t *testing.T) {
	const (
		m       = 4
		perRank = 32
		n       = m * perRank
		q       = 0.25
		epochs  = 8
		featDim = 128
		seed    = uint64(23)
	)
	type rankOut struct {
		wire        int64 // exchange bytes sent+recv per the scheduler
		dedupHits   int64
		fingerprint string // canonical dump of the final store, bits included
	}

	// Feature values are small integers: exactly representable in fp16, so
	// the fp16exact encoder quantizes every sample and the decode is still
	// bit-identical to the fp32 original.
	mkSample := func(id int) data.Sample {
		feats := make([]float32, featDim)
		for j := range feats {
			feats[j] = float32((id*7 + j) % 23)
		}
		return data.Sample{ID: id, Label: id % 10, Features: feats, Bytes: 1000}
	}
	fingerprint := func(st *store.Local) string {
		ids := st.IDs()
		var b []byte
		for _, id := range ids {
			s, err := st.Get(id)
			if err != nil {
				return fmt.Sprintf("get %d: %v", id, err)
			}
			b = append(b, fmt.Sprintf("%d/%d/%d:", s.ID, s.Label, s.Bytes)...)
			for _, f := range s.Features {
				b = append(b, fmt.Sprintf("%08x,", math.Float32bits(f))...)
			}
			b = append(b, '\n')
		}
		return string(b)
	}

	run := func(lean bool) [m]rankOut {
		backend := transporttest.TCP()
		if lean {
			backend = transporttest.TCPWrapped("tcp-lean", nil,
				func(rank int, cfg *tcp.Config) { cfg.Compress = true })
		}
		var out [m]rankOut
		err := backend.Run(m, func(c *mpi.Comm) error {
			parts, err := shuffle.Partition(n, m, seed)
			if err != nil {
				return err
			}
			st := store.NewLocal(0)
			for _, id := range parts[c.Rank()] {
				if err := st.Put(mkSample(id)); err != nil {
					return err
				}
			}
			sched, err := shuffle.NewScheduler(c, st, q, n, seed)
			if err != nil {
				return err
			}
			if lean {
				enc, err := data.ParseEncoding("fp16exact")
				if err != nil {
					return err
				}
				if err := sched.SetSampleEncoding(enc); err != nil {
					return err
				}
				if err := sched.SetWireDedup(8 << 20); err != nil {
					return err
				}
			}
			for epoch := 0; epoch < epochs; epoch++ {
				if err := sched.RunEpochExchange(epoch); err != nil {
					return fmt.Errorf("rank %d epoch %d: %w", c.Rank(), epoch, err)
				}
			}
			sent, recv := sched.CumulativeWireTraffic()

			// Exactness needs a quiesced window (see coalesce_test.go for the
			// full argument): until the staged handshake below, the only
			// data-plane frames this rank has sent or received are exchange
			// frames, so the scheduler's totals must equal the transport's
			// data-kind socket counters exactly. The handshake go-token is one
			// KindData frame, accounted for explicitly.
			const (
				tagGo      = 9001
				tagAck     = 9002
				tagRelease = 9003
			)
			token := []byte{1}
			var verdict error
			snapshot := func(extraRecv int64) {
				ks, ok := transport.AsKindStatser(c.Transport())
				if !ok {
					verdict = fmt.Errorf("rank %d: tcp transport lost KindStatser", c.Rank())
					return
				}
				s := ks.FramesByKind()
				dataSent := s.SentBytes[transport.KindData] + s.SentBytes[transport.KindDataZ] + s.SentBytes[transport.KindDataRef]
				dataRecv := s.RecvBytes[transport.KindData] + s.RecvBytes[transport.KindDataZ] + s.RecvBytes[transport.KindDataRef]
				if dataSent != sent {
					verdict = fmt.Errorf("rank %d: transport sent %d data-kind bytes, scheduler accounts for %d", c.Rank(), dataSent, sent)
				} else if dataRecv != recv+extraRecv {
					verdict = fmt.Errorf("rank %d: transport received %d data-kind bytes, scheduler accounts for %d", c.Rank(), dataRecv, recv+extraRecv)
				} else if recv == 0 {
					verdict = fmt.Errorf("rank %d: no exchange wire traffic across %d epochs", c.Rank(), epochs)
				}
			}
			if c.Rank() == 0 {
				snapshot(0)
				for r := 1; r < m; r++ {
					c.Send(r, tagGo, token)
				}
				for r := 1; r < m; r++ {
					c.Recv(r, tagAck)
				}
				for r := 1; r < m; r++ {
					c.Send(r, tagRelease, token)
				}
			} else {
				c.Recv(0, tagGo)
				snapshot(transport.FrameWireSize(token))
				c.Send(0, tagAck, token)
				c.Recv(0, tagRelease)
			}
			if verdict != nil {
				return verdict
			}
			hits, _ := sched.CumulativeDedup()
			out[c.Rank()] = rankOut{wire: sent + recv, dedupHits: hits, fingerprint: fingerprint(st)}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	base := run(false)
	lean := run(true)

	var baseWire, leanWire, hits int64
	for r := 0; r < m; r++ {
		if base[r].fingerprint != lean[r].fingerprint {
			t.Fatalf("rank %d: final store differs between baseline and lean wire:\nbaseline:\n%s\nlean:\n%s",
				r, base[r].fingerprint, lean[r].fingerprint)
		}
		baseWire += base[r].wire
		leanWire += lean[r].wire
		hits += lean[r].dedupHits
	}
	if hits == 0 {
		t.Errorf("lean run scored zero dedup hits over %d epochs; the reference-frame path went unexercised", epochs)
	}
	ratio := float64(baseWire) / float64(leanWire)
	t.Logf("exchange wire bytes: baseline %d, lean %d (%.2fx, %d dedup hits)", baseWire, leanWire, ratio, hits)
	if ratio < 2 {
		t.Fatalf("lean exchange moved %d bytes vs baseline %d: %.2fx, want >= 2x", leanWire, baseWire, ratio)
	}
}

// BenchmarkExchangeWireTCPQ25 measures one full Q=0.25 epoch exchange over
// real TCP sockets for the stock wire and the lean wire (fp16exact + dedup
// + compression), reporting the exchange volume as wire-bytes/op so the
// before/after benchhot ledger records the byte win alongside the time.
func BenchmarkExchangeWireTCPQ25(b *testing.B) {
	const (
		m       = 4
		perRank = 32
		n       = m * perRank
		q       = 0.25
		featDim = 128
		seed    = uint64(23)
	)
	mkSample := func(id int) data.Sample {
		feats := make([]float32, featDim)
		for j := range feats {
			feats[j] = float32((id*7 + j) % 23)
		}
		return data.Sample{ID: id, Label: id % 10, Features: feats, Bytes: 1000}
	}
	for _, lean := range []bool{false, true} {
		name := "baseline"
		backend := transporttest.TCP()
		if lean {
			name = "lean"
			backend = transporttest.TCPWrapped("tcp-lean", nil,
				func(rank int, cfg *tcp.Config) { cfg.Compress = true })
		}
		b.Run(name, func(b *testing.B) {
			var wireBytes int64
			for i := 0; i < b.N; i++ {
				var iterBytes [m]int64
				err := backend.Run(m, func(c *mpi.Comm) error {
					parts, err := shuffle.Partition(n, m, seed)
					if err != nil {
						return err
					}
					st := store.NewLocal(0)
					for _, id := range parts[c.Rank()] {
						if err := st.Put(mkSample(id)); err != nil {
							return err
						}
					}
					sched, err := shuffle.NewScheduler(c, st, q, n, seed)
					if err != nil {
						return err
					}
					if lean {
						enc, err := data.ParseEncoding("fp16exact")
						if err != nil {
							return err
						}
						if err := sched.SetSampleEncoding(enc); err != nil {
							return err
						}
						if err := sched.SetWireDedup(8 << 20); err != nil {
							return err
						}
					}
					for epoch := 0; epoch < 2; epoch++ {
						if err := sched.RunEpochExchange(epoch); err != nil {
							return err
						}
					}
					sent, _ := sched.CumulativeWireTraffic()
					iterBytes[c.Rank()] = sent
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, v := range iterBytes {
					wireBytes += v
				}
			}
			b.ReportMetric(float64(wireBytes)/float64(b.N), "wire-bytes/op")
		})
	}
}

// TestRunEpochExchangeOverTCP drives the full Algorithm 1 epoch exchange
// across a 4-rank world whose every frame crosses real localhost TCP
// sockets, for Q ∈ {0, 0.25, 1}. After each epoch every rank must hold
// exactly N/M samples (the balance invariant), the union of all local
// stores must still be exactly the dataset, and each rank's storage
// high-water mark must respect the paper's (1+Q)·N/M bound.
func TestRunEpochExchangeOverTCP(t *testing.T) {
	const (
		m           = 4
		perRank     = 32
		n           = m * perRank
		epochs      = 3
		sampleBytes = int64(1000)
		seed        = uint64(7)
	)
	for _, q := range []float64{0, 0.25, 1} {
		q := q
		t.Run(fmt.Sprintf("Q=%v", q), func(t *testing.T) {
			t.Parallel()
			err := transporttest.TCP().Run(m, func(c *mpi.Comm) error {
				// Deterministic initial partition, identical on every rank.
				parts, err := shuffle.Partition(n, m, seed)
				if err != nil {
					return err
				}
				st := store.NewLocal(0)
				for _, id := range parts[c.Rank()] {
					s := data.Sample{ID: id, Label: id % 10, Features: []float32{float32(id), -float32(id)}, Bytes: sampleBytes}
					if err := st.Put(s); err != nil {
						return err
					}
				}
				sched, err := shuffle.NewScheduler(c, st, q, n, seed)
				if err != nil {
					return err
				}
				for epoch := 0; epoch < epochs; epoch++ {
					if err := sched.RunEpochExchange(epoch); err != nil {
						return fmt.Errorf("rank %d epoch %d: %w", c.Rank(), epoch, err)
					}
					if got := st.Len(); got != perRank {
						return fmt.Errorf("rank %d epoch %d: %d samples, want exactly N/M = %d", c.Rank(), epoch, got, perRank)
					}
				}

				// Peak storage bound: N/M resident plus at most Q·N/M received
				// before the sent samples are deleted (Section III-A).
				limit := int64(float64(perRank)*(1+q)) * sampleBytes
				if st.Peak() > limit {
					return fmt.Errorf("rank %d: peak storage %d bytes exceeds (1+%v)·N/M = %d", c.Rank(), st.Peak(), q, limit)
				}

				// Coverage: the union of the local stores is exactly 0..N-1.
				ids := st.IDs()
				local := make([]int64, perRank)
				for i, id := range ids {
					local[i] = int64(id)
				}
				all := mpi.Gather(c, local, 0)
				if c.Rank() == 0 {
					sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
					for i, id := range all {
						if id != int64(i) {
							return fmt.Errorf("after %d epochs sample ids are not a permutation of 0..%d (position %d holds %d)", epochs, n-1, i, id)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
